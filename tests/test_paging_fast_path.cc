/**
 * @file
 * The demand-paging fault fast path and its parallel service lanes.
 *
 * Device level: directed tests for the pooled NVMe command/completion
 * nodes (exhaustion, recycling, zero steady-state growth), doorbell
 * coalescing, and tick-for-tick parity of the fast path against the
 * event-per-hop reference under fault-injection sites (dropped
 * doorbells, channel stalls, error completions) and mixed
 * snooped/interrupt queues.
 *
 * Machine level: whole-machine differential fast==legacy across
 * osdp/hwdp/swsmu for FIO and YCSB-A, clean and under a 1% fault
 * plan — byte-identical stats dumps and equal logical-state hashes.
 *
 * Lane level: per-device service lanes on 2- and 4-socket machines
 * must be bit-identical for simThreads {1, 2, 4}, clean and faulted.
 *
 * Checkpoint level: a device holding live pooled completions must
 * refuse to serialize; after draining, the blob round-trips.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/serialize.hh"
#include "ssd/ssd_device.hh"
#include "ssd/ssd_profile.hh"
#include "system/system.hh"
#include "testing/fault_plan.hh"
#include "testing/invariants.hh"
#include "testing/machine_differ.hh"
#include "workloads/fio.hh"
#include "workloads/kv_store.hh"
#include "workloads/ycsb.hh"

using namespace hwdp;
using namespace hwdp::ssd;
namespace ht = hwdp::testing;

namespace {

// ---- Device-level harness --------------------------------------------------

SsdProfile
flatProfile()
{
    SsdProfile p;
    p.name = "flat";
    p.cmdFetch = 100;
    p.readMedia = 1000;
    p.writeMedia = 5000;
    p.xfer4k = 50;
    p.cqeWrite = 10;
    p.channels = 2;
    p.mediaCv = 0.0;
    p.interruptLatency = 30;
    return p;
}

SsdProfile
jitteryProfile()
{
    SsdProfile p = flatProfile();
    p.mediaCv = 0.25; // exercise the RNG draw-order argument
    return p;
}

/** Scripted injector hitting the FaultPlan sites deterministically. */
struct ScriptedInjector final : IoFaultInjector
{
    Tick dropEvery = 0;   ///< Drop delay on every Nth doorbell.
    Tick dropDelay = 0;
    Tick stallEvery = 0;  ///< Channel stall on every Nth command.
    Tick stallTicks = 0;
    unsigned errEvery = 0; ///< Error status on every Nth command.
    std::uint64_t nDoorbells = 0;
    std::uint64_t nCommands = 0;

    IoFaultDecision
    onCommand(const nvme::SubmissionEntry &, std::uint16_t) override
    {
        ++nCommands;
        IoFaultDecision d;
        if (stallEvery && nCommands % stallEvery == 0)
            d.channelStall = stallTicks;
        if (errEvery && nCommands % errEvery == 0)
            d.status = 0x0281; // media error
        return d;
    }

    Tick
    doorbellDropDelay(std::uint16_t) override
    {
        ++nDoorbells;
        return (dropEvery && nDoorbells % dropEvery == 0) ? dropDelay
                                                          : 0;
    }
};

struct DeviceHarness
{
    sim::EventQueue eq;
    SsdDevice dev;
    std::vector<std::pair<std::uint16_t, Tick>> completions;

    DeviceHarness(const SsdProfile &prof, bool fast,
                  std::uint64_t seed = 1)
        : dev("ssd", eq, prof, sim::Rng(seed))
    {
        dev.setFastPath(fast);
    }

    std::uint16_t
    makeQueue(nvme::Priority prio, bool irq, std::uint16_t depth = 256)
    {
        std::uint16_t qid = dev.createQueuePair(depth, prio, irq);
        dev.setCompletionListener(
            qid,
            [this](std::uint16_t q, const nvme::CompletionEntry &c) {
                completions.emplace_back(c.cid, eq.now());
                if (dev.queuePair(q).cqHasWork())
                    dev.queuePair(q).popCqe();
            });
        return qid;
    }

    void
    push(std::uint16_t qid, std::uint16_t cid, Lba lba,
         nvme::Opcode op = nvme::Opcode::read)
    {
        nvme::SubmissionEntry e;
        e.opcode = op;
        e.cid = cid;
        e.slba = lba;
        ASSERT_TRUE(dev.queuePair(qid).pushSqe(e));
    }
};

/**
 * Drive an identical two-queue storm (snooped urgent + interrupt
 * normal, interleaved rings, both opcodes, several doorbells per
 * fetch window) through one device and return the completion record.
 */
std::vector<std::pair<std::uint16_t, Tick>>
runStorm(const SsdProfile &prof, bool fast, ScriptedInjector *inj)
{
    DeviceHarness h(prof, fast);
    if (inj)
        h.dev.setFaultInjector(inj);
    std::uint16_t snoop = h.makeQueue(nvme::Priority::urgent, false);
    std::uint16_t irq = h.makeQueue(nvme::Priority::medium, true);

    std::uint16_t cid = 0;
    for (int round = 0; round < 12; ++round) {
        // A clump of snooped reads across both channels...
        for (int i = 0; i < 3; ++i) {
            h.push(snoop, cid, static_cast<Lba>(cid));
            ++cid;
        }
        h.dev.ringSqDoorbell(snoop);
        // ...an interrupt-queue read and write racing it...
        h.push(irq, cid, static_cast<Lba>(cid));
        ++cid;
        h.push(irq, cid, static_cast<Lba>(cid), nvme::Opcode::write);
        ++cid;
        h.dev.ringSqDoorbell(irq);
        // ...and a second snoop ring inside the same fetch window.
        h.push(snoop, cid, static_cast<Lba>(cid));
        ++cid;
        h.dev.ringSqDoorbell(snoop);
        h.eq.run();
    }
    return h.completions;
}

// ---- Machine-level harness -------------------------------------------------

system::MachineConfig
machineConfig(system::PagingMode mode, bool fast, unsigned sockets = 1,
              unsigned sim_threads = 1)
{
    system::MachineConfig cfg;
    cfg.mode = mode;
    cfg.nLogical = sockets > 2 ? 8 : 4;
    cfg.nPhysical = sockets > 2 ? 4 : 2;
    cfg.memFrames = 32 * 1024;
    cfg.smu.freeQueueCapacity = 512;
    cfg.kpooldPeriod = milliseconds(1.0);
    cfg.kptedPeriod = milliseconds(4.0);
    cfg.sockets = sockets;
    cfg.simThreads = sim_threads;
    cfg.faultFastPath = fast;
    return cfg;
}

struct MachineResult
{
    ht::MachineState state;
    std::string stats;
    std::uint64_t inlineMisses = 0;
    std::uint64_t inlineFetches = 0;
    std::uint64_t deferredBatches = 0;
};

MachineResult
runMachine(system::MachineConfig cfg, char wl, double fault_rate)
{
    system::System sys(cfg);
    sys.caches().setParallelMinLines(1);
    ht::FaultPlan plan("plan", sys.eventQueue(), wl == 'I' ? 97 : 101);
    std::vector<std::unique_ptr<workloads::KvStore>> stores;
    for (unsigned s = 0; s < cfg.sockets; ++s) {
        auto mf = sys.mapDataset("f" + std::to_string(s), 8 * 1024,
                                 nullptr, s);
        workloads::Workload *w;
        if (wl == 'I') {
            w = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 1200);
        } else {
            auto *walf =
                sys.createFile("wal" + std::to_string(s), 4 * 1024, s);
            stores.push_back(std::make_unique<workloads::KvStore>(
                mf.vma, walf, 8 * 1024));
            w = sys.makeWorkload<workloads::YcsbWorkload>(
                'A', *stores.back(), 1000);
        }
        sys.addThread(*w, s * cfg.coresPerSocket(), *mf.as);
    }
    if (fault_rate > 0.0) {
        plan.attach(sys);
        plan.armAllAtRate(fault_rate);
    }
    EXPECT_TRUE(sys.runUntilThreadsDone(seconds(30.0)));
    ht::quiesce(sys);
    auto inv = ht::checkInvariants(sys);
    EXPECT_TRUE(inv.empty()) << inv.front();

    MachineResult r;
    r.state = ht::snapshot(sys, pagingModeName(cfg.mode));
    std::ostringstream os;
    ht::dumpMachineStats(sys, os);
    r.stats = os.str();
    for (unsigned s = 0; s < sys.numSockets(); ++s)
        if (core::Smu *smu = sys.smuAt(s))
            r.inlineMisses += smu->inlineMisses();
    for (unsigned d = 0; d < sys.numSsds(); ++d) {
        r.inlineFetches += sys.ssdAt(d).inlineFetches();
        r.deferredBatches += sys.ssdAt(d).serviceBatchesDeferred();
    }
    return r;
}

void
expectIdentical(const MachineResult &a, const MachineResult &b,
                const std::string &what)
{
    auto d = ht::diff(a.state, b.state);
    EXPECT_TRUE(d.equivalent) << what << ": " << d.report;
    EXPECT_EQ(a.state.stateHash, b.state.stateHash) << what;
    EXPECT_EQ(a.stats, b.stats) << what;
}

} // namespace

// ---- Directed device tests -------------------------------------------------

TEST(PagingFastPath, CommandPoolGrowsOnceAndRecycles)
{
    DeviceHarness h(flatProfile(), true);
    std::uint16_t snoop = h.makeQueue(nvme::Priority::urgent, false);

    // First storm: 32 simultaneous snooped commands grow the pool to
    // the batch's width.
    for (std::uint16_t c = 0; c < 32; ++c)
        h.push(snoop, c, c);
    h.dev.ringSqDoorbell(snoop);
    h.eq.run();
    ASSERT_EQ(h.completions.size(), 32u);
    std::uint64_t nodes = h.dev.pooledNodesCreated();
    EXPECT_GT(nodes, 0u);
    EXPECT_LE(nodes, 32u);
    EXPECT_EQ(h.dev.pooledPendingHighWater(), nodes);

    // Steady state: storm after storm, the pool never grows again.
    for (int round = 0; round < 8; ++round) {
        for (std::uint16_t c = 0; c < 32; ++c)
            h.push(snoop, c, static_cast<Lba>(c + round));
        h.dev.ringSqDoorbell(snoop);
        h.eq.run();
        EXPECT_EQ(h.dev.pooledNodesCreated(), nodes)
            << "pool grew in steady state (round " << round << ")";
    }
    EXPECT_EQ(h.completions.size(), 32u * 9);
}

TEST(PagingFastPath, DoorbellsCoalesceWithinFetchWindow)
{
    DeviceHarness h(flatProfile(), true);
    std::uint16_t snoop = h.makeQueue(nvme::Priority::urgent, false);

    // A pending event before the fetch tick defeats the inline gate,
    // forcing a scheduled fetch; further rings inside the window must
    // coalesce onto it instead of posting their own.
    h.eq.post(1, [] {}, "blocker");
    for (std::uint16_t c = 0; c < 4; ++c) {
        h.push(snoop, c, c);
        h.dev.ringSqDoorbell(snoop);
    }
    EXPECT_EQ(h.dev.doorbellRings(), 4u);
    EXPECT_EQ(h.dev.doorbellsCoalesced(), 3u);
    EXPECT_EQ(h.dev.inlineFetches(), 0u);
    h.eq.run();
    // One fetch drained all four commands.
    EXPECT_EQ(h.completions.size(), 4u);
}

TEST(PagingFastPath, InlineFetchRunsWhenGateAllows)
{
    DeviceHarness h(flatProfile(), true);
    std::uint16_t snoop = h.makeQueue(nvme::Priority::urgent, false);
    // A ring arriving ahead of the clock (the inline fault chain's
    // shape: doorbell delay already applied, nothing left to push)
    // with an empty queue: nothing can beat the fetch tick, so the
    // doorbell fetches inline without an "ssd.fetch" event.
    h.push(snoop, 7, 7);
    h.dev.ringSqDoorbellAt(snoop, 5);
    EXPECT_EQ(h.dev.inlineFetches(), 1u);
    h.eq.run();
    ASSERT_EQ(h.completions.size(), 1u);
    // Same CQ-write tick as the reference path computes.
    DeviceHarness ref(flatProfile(), false);
    std::uint16_t rq = ref.makeQueue(nvme::Priority::urgent, false);
    ref.push(rq, 7, 7);
    ref.dev.ringSqDoorbellAt(rq, 5);
    ref.eq.run();
    ASSERT_EQ(ref.completions.size(), 1u);
    EXPECT_EQ(h.completions[0], ref.completions[0]);

    // A host-context ring at now() must NOT fetch inline even when the
    // gate would allow it: code still executing may push more
    // same-instant commands that the scheduled fetch would coalesce.
    DeviceHarness host(flatProfile(), true);
    std::uint16_t hq = host.makeQueue(nvme::Priority::urgent, false);
    host.push(hq, 8, 8);
    host.dev.ringSqDoorbell(hq);
    EXPECT_EQ(host.dev.inlineFetches(), 0u);
    host.eq.run();
    EXPECT_EQ(host.completions.size(), 1u);
}

TEST(PagingFastPath, StormParityFastVsReferenceFlat)
{
    auto fast = runStorm(flatProfile(), true, nullptr);
    auto ref = runStorm(flatProfile(), false, nullptr);
    EXPECT_EQ(fast, ref);
}

TEST(PagingFastPath, StormParityFastVsReferenceJittered)
{
    // Media jitter draws from the device RNG: parity here proves the
    // fast path preserves the draw order command-for-command.
    auto fast = runStorm(jitteryProfile(), true, nullptr);
    auto ref = runStorm(jitteryProfile(), false, nullptr);
    EXPECT_EQ(fast, ref);
}

TEST(PagingFastPath, StormParityUnderFaultSites)
{
    // Dropped doorbells, channel stalls and error completions all at
    // once — every injector query must happen at the same point in
    // the canonical order on both paths.
    for (const SsdProfile &prof : {flatProfile(), jitteryProfile()}) {
        ScriptedInjector fi;
        fi.dropEvery = 3;
        fi.dropDelay = 777;
        fi.stallEvery = 4;
        fi.stallTicks = 1500;
        fi.errEvery = 5;
        auto fast = runStorm(prof, true, &fi);

        ScriptedInjector ri;
        ri.dropEvery = 3;
        ri.dropDelay = 777;
        ri.stallEvery = 4;
        ri.stallTicks = 1500;
        ri.errEvery = 5;
        auto ref = runStorm(prof, false, &ri);

        EXPECT_EQ(fast, ref) << prof.name;
        EXPECT_EQ(fi.nDoorbells, ri.nDoorbells) << prof.name;
        EXPECT_EQ(fi.nCommands, ri.nCommands) << prof.name;
    }
}

TEST(PagingFastPath, SerializeRefusesLivePooledCommands)
{
    DeviceHarness h(flatProfile(), true);
    std::uint16_t snoop = h.makeQueue(nvme::Priority::urgent, false);
    h.push(snoop, 1, 1);
    h.dev.ringSqDoorbellAt(snoop, 1);
    // The inline fetch already serviced the command into the pending
    // pool; its CQ write still waits on the drain event.
    EXPECT_GT(h.dev.pooledPendingHighWater(), 0u);
    sim::Serializer s = sim::Serializer::saver();
    EXPECT_THROW(h.dev.serialize(s), sim::SerializeError);

    // Drained, the device serializes and round-trips.
    h.eq.run();
    sim::Serializer s2 = sim::Serializer::saver();
    h.dev.serialize(s2);
    std::vector<std::uint8_t> blob = s2.takeBlob();
    DeviceHarness twin(flatProfile(), true);
    twin.makeQueue(nvme::Priority::urgent, false);
    sim::Serializer l = sim::Serializer::loader(blob);
    twin.dev.serialize(l);
    EXPECT_EQ(twin.dev.readsCompleted(), h.dev.readsCompleted());
}

// ---- Whole-machine differential: fast == legacy ----------------------------

TEST(PagingFastPath, FastVsLegacyFioAllModes)
{
    for (auto mode : {system::PagingMode::osdp, system::PagingMode::hwdp,
                      system::PagingMode::swsmu}) {
        auto fast = runMachine(machineConfig(mode, true), 'I', 0.0);
        auto legacy = runMachine(machineConfig(mode, false), 'I', 0.0);
        expectIdentical(fast, legacy,
                        std::string("fio/") + pagingModeName(mode));
        if (mode == system::PagingMode::hwdp) {
            // The fast path must actually engage, or this test proves
            // nothing.
            EXPECT_GT(fast.inlineMisses, 0u);
            EXPECT_GT(fast.inlineFetches, 0u);
            EXPECT_EQ(legacy.inlineMisses, 0u);
        }
    }
}

TEST(PagingFastPath, FastVsLegacyYcsbAllModes)
{
    for (auto mode : {system::PagingMode::osdp, system::PagingMode::hwdp,
                      system::PagingMode::swsmu}) {
        auto fast = runMachine(machineConfig(mode, true), 'A', 0.0);
        auto legacy = runMachine(machineConfig(mode, false), 'A', 0.0);
        expectIdentical(fast, legacy,
                        std::string("ycsb/") + pagingModeName(mode));
    }
}

TEST(PagingFastPath, FastVsLegacyUnderFaultPlan)
{
    auto fast = runMachine(machineConfig(system::PagingMode::hwdp, true),
                           'I', 0.01);
    auto legacy = runMachine(
        machineConfig(system::PagingMode::hwdp, false), 'I', 0.01);
    expectIdentical(fast, legacy, "fio+faults/hwdp");

    auto fa = runMachine(machineConfig(system::PagingMode::swsmu, true),
                         'A', 0.01);
    auto la = runMachine(machineConfig(system::PagingMode::swsmu, false),
                         'A', 0.01);
    expectIdentical(fa, la, "ycsb+faults/swsmu");
}

// ---- Parallel service lanes ------------------------------------------------

TEST(PagingFastPath, LaneIdentityMultiSocketCleanAndFaulted)
{
    for (unsigned sockets : {2u, 4u}) {
        for (double rate : {0.0, 0.01}) {
            auto serial = runMachine(
                machineConfig(system::PagingMode::hwdp, true, sockets, 1),
                'I', rate);
            for (unsigned threads : {2u, 4u}) {
                auto par = runMachine(
                    machineConfig(system::PagingMode::hwdp, true,
                                  sockets, threads),
                    'I', rate);
                std::ostringstream what;
                what << "sockets=" << sockets << " rate=" << rate
                     << " simThreads=" << threads;
                expectIdentical(serial, par, what.str());
                // Lanes exist only when a pool does; the serial run
                // must service everything synchronously.
                EXPECT_EQ(serial.deferredBatches, 0u) << what.str();
            }
        }
    }
}

TEST(PagingFastPath, LanesActuallyDeferOnParallelHwdpMachines)
{
    auto par = runMachine(
        machineConfig(system::PagingMode::hwdp, true, 2, 4), 'I', 0.0);
    EXPECT_GT(par.deferredBatches, 0u)
        << "no fetch batch took a service lane; the lane wiring is "
           "dead";
}

#include "os/page_table.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::os {

namespace {

/** Bytes of virtual address space one entry covers at each level. */
constexpr std::uint64_t
levelSpan(PtLevel level)
{
    return 1ULL << (pageShift +
                    PageTable::bitsPerLevel * static_cast<unsigned>(level));
}

} // namespace

PageTable::PageTable()
    // Symbolic, process-unique table addresses: high "kernel" range.
    : nextTableBase(0xffff'8000'0000'0000ULL)
{
    root = std::make_unique<Table>();
    root->base = nextTableBase;
    nextTableBase += pageSize;
    nTables = 1;
}

PageTable::~PageTable() = default;

unsigned
PageTable::levelIndex(VAddr vaddr, PtLevel level)
{
    unsigned shift =
        pageShift + bitsPerLevel * static_cast<unsigned>(level);
    return static_cast<unsigned>((vaddr >> shift) & (entriesPerTable - 1));
}

PageTable::Table *
PageTable::childTable(Table &t, unsigned idx, bool allocate)
{
    // A 2 MB leaf terminates the walk at its own entry: the child
    // table (kept allocated across promote/demote cycles so entry
    // addresses never change) is unreachable while the leaf is live.
    if (pte::isHugeLeaf(t.e[idx])) {
        if (allocate)
            panic("page table: walk would descend through a 2 MB leaf; "
                  "demote it first");
        return nullptr;
    }
    if (!t.child[idx]) {
        if (!allocate)
            return nullptr;
        t.child[idx] = std::make_unique<Table>();
        t.child[idx]->base = nextTableBase;
        nextTableBase += pageSize;
        ++nTables;
        // The upper entry becomes a present table pointer.
        t.e[idx] |= pte::presentBit;
    }
    return t.child[idx].get();
}

pte::Entry
PageTable::readPte(VAddr vaddr) const
{
    const Table *t = root.get();
    for (int level = 3; level >= 1; --level) {
        unsigned idx = levelIndex(vaddr, static_cast<PtLevel>(level));
        if (level == 1 && pte::isHugeLeaf(t->e[idx])) {
            // Synthesize the covered 4 KB view: same flags, exact
            // frame. Readers that never learned about huge pages keep
            // working; reach-aware ones test psBit.
            pte::Entry leaf = t->e[idx];
            Pfn pfn = pte::pfnOf(leaf) +
                      ((vaddr >> pageShift) & (pmdLeafPages - 1));
            return (leaf & ~pte::pfnMask) |
                   ((static_cast<pte::Entry>(pfn) << pte::pfnShift) &
                    pte::pfnMask);
        }
        const Table *c = t->child[idx].get();
        if (!c)
            return 0;
        t = c;
    }
    return t->e[levelIndex(vaddr, PtLevel::pt)];
}

void
PageTable::writePte(VAddr vaddr, pte::Entry e)
{
    Table *t = root.get();
    for (int level = 3; level >= 1; --level) {
        unsigned idx = levelIndex(vaddr, static_cast<PtLevel>(level));
        t = childTable(*t, idx, true);
    }
    t->e[levelIndex(vaddr, PtLevel::pt)] = e;
}

EntryRef
PageTable::hugeLeafRef(VAddr vaddr, bool allocate)
{
    Table *pgd = root.get();
    Table *pud = childTable(*pgd, levelIndex(vaddr, PtLevel::pgd),
                            allocate);
    if (!pud)
        return {};
    Table *pmd = childTable(*pud, levelIndex(vaddr, PtLevel::pud),
                            allocate);
    if (!pmd)
        return {};
    unsigned idx = levelIndex(vaddr, PtLevel::pmd);
    return {&pmd->e[idx], pmd->base + idx * sizeof(pte::Entry)};
}

void
PageTable::writeHugeLeaf(VAddr vaddr, pte::Entry leaf)
{
    Table *pgd = root.get();
    Table *pud = childTable(*pgd, levelIndex(vaddr, PtLevel::pgd), true);
    Table *pmd = childTable(*pud, levelIndex(vaddr, PtLevel::pud), true);
    unsigned idx = levelIndex(vaddr, PtLevel::pmd);
    // A kept-from-earlier child table becomes unreachable; clear its
    // entries so nothing stale survives a later demotion or scan.
    if (pmd->child[idx])
        pmd->child[idx]->e.fill(0);
    pmd->e[idx] = leaf;
}

void
PageTable::splitHugeLeaf(VAddr vaddr)
{
    Table *pgd = root.get();
    Table *pud = childTable(*pgd, levelIndex(vaddr, PtLevel::pgd), true);
    Table *pmd = childTable(*pud, levelIndex(vaddr, PtLevel::pud), true);
    unsigned idx = levelIndex(vaddr, PtLevel::pmd);
    pte::Entry leaf = pmd->e[idx];
    if (!pte::isHugeLeaf(leaf))
        panic("page table: splitHugeLeaf on a non-leaf PMD entry");
    // Demote the entry to a table pointer *first* so childTable is
    // willing to descend (allocating or reviving the kept table).
    pmd->e[idx] = pte::presentBit;
    Table *pt = childTable(*pmd, idx, true);
    Pfn base = pte::pfnOf(leaf);
    pte::Entry flags = leaf & ~(pte::pfnMask | pte::psBit);
    for (unsigned i = 0; i < entriesPerTable; ++i)
        pt->e[i] = (flags & ~pte::pfnMask) |
                   ((static_cast<pte::Entry>(base + i) << pte::pfnShift) &
                    pte::pfnMask);
}

void
PageTable::forEachHugeLeaf(VAddr start, VAddr end,
                           const std::function<void(VAddr, EntryRef)> &fn)
{
    constexpr VAddr span = levelSpan(PtLevel::pmd);
    for (VAddr va = start & ~(span - 1); va < end; va += span) {
        EntryRef ref = hugeLeafRef(va, false);
        if (ref.valid() && pte::isHugeLeaf(ref.value()))
            fn(va, ref);
    }
}

WalkRefs
PageTable::walkRefs(VAddr vaddr, bool allocate)
{
    WalkRefs refs;
    Table *pgd = root.get();
    unsigned pgd_idx = levelIndex(vaddr, PtLevel::pgd);
    Table *pud = childTable(*pgd, pgd_idx, allocate);
    if (!pud)
        return refs;

    unsigned pud_idx = levelIndex(vaddr, PtLevel::pud);
    refs.pud.slot = &pud->e[pud_idx];
    refs.pud.addr = pud->base + pud_idx * sizeof(pte::Entry);

    Table *pmd = childTable(*pud, pud_idx, allocate);
    if (!pmd)
        return refs;

    unsigned pmd_idx = levelIndex(vaddr, PtLevel::pmd);
    refs.pmd.slot = &pmd->e[pmd_idx];
    refs.pmd.addr = pmd->base + pmd_idx * sizeof(pte::Entry);

    Table *pt = childTable(*pmd, pmd_idx, allocate);
    if (!pt)
        return refs;

    unsigned pt_idx = levelIndex(vaddr, PtLevel::pt);
    refs.pte.slot = &pt->e[pt_idx];
    refs.pte.addr = pt->base + pt_idx * sizeof(pte::Entry);
    return refs;
}

void
PageTable::markUpperLba(VAddr vaddr)
{
    WalkRefs refs = walkRefs(vaddr, false);
    if (!refs.pud.valid() || !refs.pmd.valid())
        panic("markUpperLba on unpopulated tree at vaddr ", vaddr);
    refs.pmd.write(pte::setLbaBit(refs.pmd.value()));
    refs.pud.write(pte::setLbaBit(refs.pud.value()));
}

std::uint64_t
PageTable::scanImpl(VAddr start, VAddr end, bool guided,
                    const std::function<void(VAddr, EntryRef)> &fn,
                    std::uint64_t *entries_visited)
{
    std::uint64_t synced = 0;
    std::uint64_t visited = 0;

    constexpr std::uint64_t pud_span = levelSpan(PtLevel::pud);
    constexpr std::uint64_t pmd_span = levelSpan(PtLevel::pmd);

    for (VAddr va = start & ~(levelSpan(PtLevel::pgd) - 1); va < end;
         va += levelSpan(PtLevel::pgd)) {
        unsigned pgd_idx = levelIndex(va, PtLevel::pgd);
        Table *pud_t = root->child[pgd_idx].get();
        ++visited;
        if (!pud_t)
            continue;

        VAddr pud_lo = std::max<VAddr>(va, start & ~(pud_span - 1));
        for (VAddr pva = pud_lo; pva < end && pva < va +
                 levelSpan(PtLevel::pgd); pva += pud_span) {
            unsigned pud_idx = levelIndex(pva, PtLevel::pud);
            ++visited;
            Table *pmd_t = pud_t->child[pud_idx].get();
            if (!pmd_t)
                continue;
            if (guided) {
                if (!pte::hasLbaBit(pud_t->e[pud_idx]))
                    continue;
                // Clear before descending so a concurrent hardware
                // miss re-marks the entry (scan-condition guarantee,
                // Section IV-C).
                pud_t->e[pud_idx] = pte::clearLbaBit(pud_t->e[pud_idx]);
            }

            VAddr pmd_lo = std::max<VAddr>(pva, start & ~(pmd_span - 1));
            for (VAddr mva = pmd_lo; mva < end && mva < pva + pud_span;
                 mva += pmd_span) {
                unsigned pmd_idx = levelIndex(mva, PtLevel::pmd);
                ++visited;
                Table *pt_t = pmd_t->child[pmd_idx].get();
                if (!pt_t)
                    continue;
                if (guided) {
                    if (!pte::hasLbaBit(pmd_t->e[pmd_idx]))
                        continue;
                    pmd_t->e[pmd_idx] =
                        pte::clearLbaBit(pmd_t->e[pmd_idx]);
                }

                // In-range entry window, hoisted out of the loop
                // (same entries the per-entry va check would pass).
                unsigned i_lo = 0, i_hi = entriesPerTable;
                if (start > mva) {
                    i_lo = static_cast<unsigned>(
                        (start - mva + pageSize - 1) / pageSize);
                }
                if (end < mva + pmd_span) {
                    i_hi = static_cast<unsigned>(std::min<std::uint64_t>(
                        entriesPerTable,
                        (end - mva + pageSize - 1) / pageSize));
                }
                visited += i_hi > i_lo ? i_hi - i_lo : 0;
                const pte::Entry *arr = pt_t->e.data();
                for (unsigned i = i_lo; i < i_hi;) {
                    // Sync-needing entries are rare (a few per leaf
                    // table between scans), so test eight at a time:
                    // the predicate needs *both* the present and LBA
                    // bits, and if their union lacks either bit no
                    // entry in the block can have both.
                    if (i + 8 <= i_hi) {
                        pte::Entry u = arr[i] | arr[i + 1] | arr[i + 2] |
                                       arr[i + 3] | arr[i + 4] |
                                       arr[i + 5] | arr[i + 6] |
                                       arr[i + 7];
                        if (!pte::needsMetadataSync(u)) {
                            i += 8;
                            continue;
                        }
                    }
                    if (pte::needsMetadataSync(arr[i])) {
                        EntryRef ref{&pt_t->e[i],
                                     pt_t->base + i * sizeof(pte::Entry)};
                        fn(mva + static_cast<VAddr>(i) * pageSize, ref);
                        ++synced;
                    }
                    ++i;
                }
            }
        }
    }
    if (entries_visited)
        *entries_visited = visited;
    return synced;
}

std::uint64_t
PageTable::scanUnsynced(VAddr start, VAddr end,
                        const std::function<void(VAddr, EntryRef)> &fn,
                        std::uint64_t *entries_visited)
{
    return scanImpl(start, end, true, fn, entries_visited);
}

std::uint64_t
PageTable::scanUnsyncedFull(VAddr start, VAddr end,
                            const std::function<void(VAddr, EntryRef)> &fn,
                            std::uint64_t *entries_visited)
{
    return scanImpl(start, end, false, fn, entries_visited);
}

void
PageTable::serializeTable(sim::Serializer &s, Table &t)
{
    PAddr base = t.base;
    s.io(base);
    if (s.loading()) {
        if (t.base == 0)
            t.base = base; // table recreated from the blob
        else if (base != t.base)
            throw sim::SerializeError(
                "page table base divergence: restore target was not "
                "booted with the saved machine's recipe");
    }
    s.io(t.e);

    std::array<std::uint64_t, entriesPerTable / 64> mask{};
    for (unsigned i = 0; i < entriesPerTable; ++i)
        if (t.child[i])
            mask[i / 64] |= std::uint64_t(1) << (i % 64);
    std::array<std::uint64_t, entriesPerTable / 64> stored = mask;
    s.io(stored);
    if (s.loading()) {
        for (unsigned i = 0; i < entriesPerTable; ++i) {
            bool inBlob =
                (stored[i / 64] >> (i % 64)) & 1;
            bool live = (mask[i / 64] >> (i % 64)) & 1;
            if (live && !inBlob)
                throw sim::SerializeError(
                    "restore target has page tables the checkpoint "
                    "lacks (target must be freshly booted)");
            if (inBlob && !live) {
                // The saved machine grew this subtree after boot;
                // recreate it. Its base is read inside the recursion.
                t.child[i] = std::make_unique<Table>();
                ++nTables;
            }
        }
    }
    for (unsigned i = 0; i < entriesPerTable; ++i)
        if ((stored[i / 64] >> (i % 64)) & 1)
            serializeTable(s, *t.child[i]);
}

void
PageTable::serialize(sim::Serializer &s)
{
    s.section("pagetable");
    if (s.loading() && root->base != 0xffff'8000'0000'0000ULL)
        throw sim::SerializeError("page table root base unexpected");
    serializeTable(s, *root);
    s.io(nTables);
    s.io(nextTableBase);
}

void
PageTable::forEachPte(VAddr start, VAddr end,
                      const std::function<void(VAddr, EntryRef)> &fn)
{
    for (VAddr va = start; va < end; va += pageSize) {
        WalkRefs refs = walkRefs(va, false);
        if (!refs.pte.valid()) {
            // Skip to the next leaf-table boundary to avoid a
            // page-by-page crawl over unpopulated gigabytes.
            VAddr span = levelSpan(PtLevel::pmd);
            VAddr next = (va & ~(span - 1)) + span;
            if (next <= va)
                break;
            va = next - pageSize;
            continue;
        }
        fn(va, refs.pte);
    }
}

} // namespace hwdp::os

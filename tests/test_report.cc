/**
 * @file
 * Tests for the bench table renderer.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

#include "metrics/report.hh"

using namespace hwdp;
using namespace hwdp::metrics;

TEST(Report, AlignsColumns)
{
    Table t({"a", "long_header"});
    t.addRow({"wide_cell", "x"});
    t.addRow({"y", "z"});
    std::string s = t.toString();
    // Every line has the same width.
    std::size_t first = s.find('\n');
    std::size_t w = first;
    std::size_t pos = 0;
    int lines = 0;
    while (pos < s.size()) {
        std::size_t next = s.find('\n', pos);
        if (next == std::string::npos)
            break;
        // Separator can be shorter; data/header rows must match.
        if (s[pos] != '-' && s.substr(pos, 2) != "  -")
            EXPECT_LE(next - pos, w + 4);
        pos = next + 1;
        ++lines;
    }
    EXPECT_EQ(lines, 4); // header + separator + 2 rows
}

TEST(Report, RowWidthMismatchPanics)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only_one"}), PanicError);
}

TEST(Report, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Report, PctFormatsFraction)
{
    EXPECT_EQ(Table::pct(0.373), "37.3%");
    EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

TEST(Report, ContainsAllCells)
{
    Table t({"h1", "h2"});
    t.addRow({"alpha", "beta"});
    std::string s = t.toString();
    EXPECT_NE(s.find("h1"), std::string::npos);
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("beta"), std::string::npos);
}

#include "metrics/latency_reservoir.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::metrics {

LatencyReservoir::LatencyReservoir(std::size_t capacity) : cap(capacity)
{
    if (cap < 2)
        fatal("latency reservoir: capacity must be >= 2");
    samples.reserve(cap);
}

void
LatencyReservoir::record(double v)
{
    if (seq % stride == 0) {
        samples.push_back(v);
        if (samples.size() >= cap) {
            // Renormalize: keep the even-index retained samples. They
            // are exactly the arrivals at seq % (2 * stride) == 0, so
            // the retained set stays the deterministic stride
            // subsample of the whole stream.
            std::size_t w = 0;
            for (std::size_t i = 0; i < samples.size(); i += 2)
                samples[w++] = samples[i];
            samples.resize(w);
            stride *= 2;
        }
        sortedValid = false;
    }
    ++seq;
}

const std::vector<double> &
LatencyReservoir::view() const
{
    if (!sortedValid) {
        sorted = samples;
        std::sort(sorted.begin(), sorted.end());
        sortedValid = true;
    }
    return sorted;
}

double
LatencyReservoir::quantile(double q) const
{
    const std::vector<double> &v = view();
    if (v.empty())
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    auto idx = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(v.size())));
    if (idx > 0)
        --idx; // nearest-rank: ceil(q*n)-th order statistic, 1-based
    return v[std::min(idx, v.size() - 1)];
}

double
LatencyReservoir::min() const
{
    const std::vector<double> &v = view();
    return v.empty() ? 0.0 : v.front();
}

double
LatencyReservoir::max() const
{
    const std::vector<double> &v = view();
    return v.empty() ? 0.0 : v.back();
}

double
LatencyReservoir::mean() const
{
    if (samples.empty())
        return 0.0;
    double s = 0.0;
    for (double x : samples)
        s += x;
    return s / static_cast<double>(samples.size());
}

double
LatencyReservoir::quantileAcross(
    const std::vector<const LatencyReservoir *> &rs, double q)
{
    // Weighted nearest-rank: each retained sample stands for its
    // reservoir's stride arrivals.
    std::vector<std::pair<double, std::uint64_t>> wv;
    std::uint64_t total = 0;
    for (const LatencyReservoir *r : rs) {
        if (!r)
            continue;
        for (double x : r->samples)
            wv.emplace_back(x, r->stride);
        total += r->stride * r->samples.size();
    }
    if (wv.empty())
        return 0.0;
    std::sort(wv.begin(), wv.end());
    q = std::clamp(q, 0.0, 1.0);
    auto want = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total)));
    if (want == 0)
        want = 1;
    std::uint64_t cum = 0;
    for (const auto &[x, w] : wv) {
        cum += w;
        if (cum >= want)
            return x;
    }
    return wv.back().first;
}

void
LatencyReservoir::serialize(sim::Serializer &s)
{
    s.section("latency_reservoir");
    std::uint64_t c = cap;
    s.check(c, "reservoir capacity");
    s.io(stride);
    s.io(seq);
    s.io(samples);
    if (s.loading())
        sortedValid = false;
}

} // namespace hwdp::metrics

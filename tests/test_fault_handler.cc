/**
 * @file
 * Tests for the OSDP page-fault path.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "system/system.hh"
#include "workloads/fio.hh"

using namespace hwdp;

namespace {

system::MachineConfig
tinyConfig()
{
    system::MachineConfig cfg;
    cfg.mode = system::PagingMode::osdp;
    cfg.nLogical = 4;
    cfg.nPhysical = 2;
    cfg.memFrames = 2048;
    return cfg;
}

struct ReadList : workloads::Workload
{
    std::vector<VAddr> addrs;
    std::size_t i = 0;
    bool write = false;
    explicit ReadList(std::vector<VAddr> a, bool w = false)
        : addrs(std::move(a)), write(w)
    {
    }
    workloads::Op
    next(sim::Rng &) override
    {
        if (i >= addrs.size())
            return workloads::Op::makeDone();
        return workloads::Op::makeMem(addrs[i++], write, true);
    }
    const char *label() const override { return "readlist"; }
};

} // namespace

TEST(FaultHandler, MajorFaultInstallsPageAndCounts)
{
    system::System sys(tinyConfig());
    auto mf = sys.mapDataset("f", 64);
    auto *wl = sys.makeWorkload<ReadList>(
        std::vector<VAddr>{mf.vma->start});
    sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(1.0)));

    EXPECT_EQ(sys.kernel().majorFaults(), 1u);
    EXPECT_EQ(sys.kernel().minorFaults(), 0u);
    os::pte::Entry e = mf.as->pageTable().readPte(mf.vma->start);
    ASSERT_TRUE(os::pte::isPresent(e));
    Pfn pfn = os::pte::pfnOf(e);
    EXPECT_TRUE(sys.kernel().page(pfn).inPageCache);
    EXPECT_TRUE(sys.kernel().page(pfn).lruLinked);
    EXPECT_EQ(sys.ssd().readsCompleted(), 1u);
}

TEST(FaultHandler, FaultLatencyMatchesCalibration)
{
    system::System sys(tinyConfig());
    auto mf = sys.mapDataset("f", 256);
    std::vector<VAddr> addrs;
    for (int i = 0; i < 100; ++i)
        addrs.push_back(mf.vma->start + i * pageSize);
    auto *wl = sys.makeWorkload<ReadList>(addrs);
    sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(2.0)));

    // Device 10.9 us + ~8.4 us of kernel work (Figure 3).
    double mean = sys.kernel().faultLatencyUs().mean();
    EXPECT_GT(mean, 17.0);
    EXPECT_LT(mean, 22.0);
}

TEST(FaultHandler, SecondTouchIsMinorFaultAfterUnmap)
{
    system::System sys(tinyConfig());
    auto mf = sys.mapDataset("f", 64);
    auto *wl = sys.makeWorkload<ReadList>(
        std::vector<VAddr>{mf.vma->start});
    sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(1.0)));

    // Clear the PTE but keep the page cached: the next fault must be
    // minor (page-cache hit) with no new device read.
    os::pte::Entry e = mf.as->pageTable().readPte(mf.vma->start);
    Pfn pfn = os::pte::pfnOf(e);
    sys.kernel().rmap().clearMapping(sys.kernel().page(pfn));
    mf.as->pageTable().writePte(mf.vma->start, 0);
    sys.core(0).mmu().tlb().invalidate(mf.vma->start);

    auto *wl2 = sys.makeWorkload<ReadList>(
        std::vector<VAddr>{mf.vma->start});
    sys.addThread(*wl2, 1, *mf.as);
    sys.eventQueue().runWhile([&] { return sys.totalAppOps() < 2; },
                              seconds(1.0));
    EXPECT_EQ(sys.kernel().minorFaults(), 1u);
    EXPECT_EQ(sys.ssd().readsCompleted(), 1u); // still just one read
}

TEST(FaultHandler, ConcurrentFaultsOnSamePageShareOneIo)
{
    system::System sys(tinyConfig());
    auto mf = sys.mapDataset("f", 64);
    // Four threads all fault the same page simultaneously.
    for (unsigned t = 0; t < 4; ++t) {
        auto *wl = sys.makeWorkload<ReadList>(
            std::vector<VAddr>{mf.vma->start + t * 8});
        sys.addThread(*wl, t, *mf.as);
    }
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(1.0)));
    EXPECT_EQ(sys.ssd().readsCompleted(), 1u);
    EXPECT_EQ(sys.totalAppOps(), 4u);
    EXPECT_EQ(sys.physMem().allocatedFrames(), 1u);
}

TEST(FaultHandler, WriteFaultMarksPageDirty)
{
    system::System sys(tinyConfig());
    auto mf = sys.mapDataset("f", 64);
    auto *wl = sys.makeWorkload<ReadList>(
        std::vector<VAddr>{mf.vma->start}, true);
    sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(1.0)));
    os::pte::Entry e = mf.as->pageTable().readPte(mf.vma->start);
    EXPECT_TRUE(sys.kernel().page(os::pte::pfnOf(e)).dirty);
}

TEST(FaultHandler, KernelWorkIsAttributedToCategories)
{
    system::System sys(tinyConfig());
    auto mf = sys.mapDataset("f", 64);
    std::vector<VAddr> addrs;
    for (int i = 0; i < 10; ++i)
        addrs.push_back(mf.vma->start + i * pageSize);
    auto *wl = sys.makeWorkload<ReadList>(addrs);
    sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(1.0)));

    auto &ke = sys.kernel().kexec();
    EXPECT_GT(ke.instructions(os::KernelCostCat::faultPath), 0u);
    EXPECT_GT(ke.instructions(os::KernelCostCat::ioStack), 0u);
    EXPECT_GT(ke.instructions(os::KernelCostCat::contextSwitch), 0u);
    EXPECT_GT(ke.instructions(os::KernelCostCat::irq), 0u);
    EXPECT_GT(ke.instructions(os::KernelCostCat::metadata), 0u);
    EXPECT_EQ(ke.instructions(os::KernelCostCat::kpted), 0u);
}

TEST(FaultHandler, DirectReclaimKicksInWhenMemoryExhausted)
{
    auto cfg = tinyConfig();
    cfg.memFrames = 256; // tiny memory
    system::System sys(cfg);
    auto mf = sys.mapDataset("f", 1024);
    std::vector<VAddr> addrs;
    for (int i = 0; i < 600; ++i)
        addrs.push_back(mf.vma->start + i * pageSize);
    auto *wl = sys.makeWorkload<ReadList>(addrs);
    sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(30.0)));
    EXPECT_EQ(sys.kernel().majorFaults(), 600u);
    EXPECT_GT(sys.kernel().reclaimer().pagesEvicted(), 300u);
}

#include "metrics/report.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "core/kcoalesced.hh"
#include "cpu/core.hh"
#include "cpu/mmu.hh"
#include "cpu/tlb.hh"
#include "os/kernel.hh"
#include "os/kernel_phases.hh"
#include "sim/logging.hh"
#include "sim/shard_pool.hh"
#include "system/system.hh"

namespace hwdp::metrics {

Table::Table(std::vector<std::string> headers) : hdr(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != hdr.size())
        panic("report table: row width ", cells.size(),
              " != header width ", hdr.size());
    rows.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision,
                  fraction * 100.0);
    return buf;
}

std::string
Table::toString() const
{
    std::vector<std::size_t> w(hdr.size());
    for (std::size_t c = 0; c < hdr.size(); ++c)
        w[c] = hdr[c].size();
    for (const auto &r : rows) {
        for (std::size_t c = 0; c < r.size(); ++c)
            w[c] = std::max(w[c], r[c].size());
    }

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << "  " << cells[c];
            for (std::size_t p = cells[c].size(); p < w[c]; ++p)
                os << ' ';
        }
        os << '\n';
    };
    emit(hdr);
    std::size_t total = 0;
    for (std::size_t c = 0; c < w.size(); ++c)
        total += w[c] + 2;
    os << "  ";
    for (std::size_t i = 2; i < total; ++i)
        os << '-';
    os << '\n';
    for (const auto &r : rows)
        emit(r);
    return os.str();
}

void
Table::print() const
{
    std::fputs(toString().c_str(), stdout);
}

Table
pollutionProbeTable(const os::KernelExec &kexec)
{
    Table t({"category", "tag probes", "bp updates"});
    auto n_cats = static_cast<unsigned>(os::KernelCostCat::numCats);
    for (unsigned c = 0; c < n_cats; ++c) {
        auto cat = static_cast<os::KernelCostCat>(c);
        std::uint64_t probes = kexec.pollutionProbes(cat);
        std::uint64_t branches = kexec.pollutionBranchUpdates(cat);
        if (probes == 0 && branches == 0)
            continue;
        t.addRow({os::kernelCostCatName(cat), std::to_string(probes),
                  std::to_string(branches)});
    }
    t.addRow({"total", std::to_string(kexec.totalPollutionProbes()),
              std::to_string(kexec.totalPollutionBranchUpdates())});
    return t;
}

Table
shardPoolTable(const sim::ShardPool &pool)
{
    Table t({"lanes", "regions", "region tasks", "async tasks"});
    t.addRow({std::to_string(pool.lanes()),
              std::to_string(pool.regionsRun()),
              std::to_string(pool.regionTasksRun()),
              std::to_string(pool.asyncTasksRun())});
    return t;
}

Table
checkpointTable(const std::vector<CheckpointRow> &ops)
{
    Table t({"checkpoint", "op", "blob bytes", "ticks skipped"});
    std::uint64_t bytes = 0, ticks = 0, restores = 0;
    for (const CheckpointRow &r : ops) {
        t.addRow({r.label, r.op, std::to_string(r.blobBytes),
                  std::to_string(r.ticksSkipped)});
        if (r.op == "restore") {
            ++restores;
            ticks += r.ticksSkipped;
        }
        bytes += r.blobBytes;
    }
    t.addRow({"total", std::to_string(restores) + " restores",
              std::to_string(bytes), std::to_string(ticks)});
    return t;
}

Table
pagingPathTable(system::System &sys)
{
    std::uint64_t inl_miss = 0, inl_db = 0, ev_db = 0;
    std::uint64_t inl_cpl = 0, ev_cpl = 0;
    for (unsigned s = 0; s < sys.numSockets(); ++s) {
        core::Smu *smu = sys.smuAt(s);
        if (!smu)
            continue;
        inl_miss += smu->inlineMisses();
        const core::NvmeHostController &hc = smu->hostController();
        inl_db += hc.inlineDoorbells();
        ev_db += hc.eventDoorbells();
        inl_cpl += hc.inlineCompletions();
        ev_cpl += hc.eventCompletions();
    }

    std::uint64_t rings = 0, coalesced = 0, fetches = 0;
    std::uint64_t nodes = 0, high_water = 0, deferred = 0;
    for (unsigned d = 0; d < sys.numSsds(); ++d) {
        const ssd::SsdDevice &dev = sys.ssdAt(d);
        rings += dev.doorbellRings();
        coalesced += dev.doorbellsCoalesced();
        fetches += dev.inlineFetches();
        nodes += dev.pooledNodesCreated();
        high_water = std::max(high_water, dev.pooledPendingHighWater());
        deferred += dev.serviceBatchesDeferred();
    }

    Table t({"paging path", "count"});
    t.addRow({"inline fault lookups", std::to_string(inl_miss)});
    t.addRow({"inline nvme doorbells", std::to_string(inl_db)});
    t.addRow({"evented nvme doorbells", std::to_string(ev_db)});
    t.addRow({"inline completions", std::to_string(inl_cpl)});
    t.addRow({"evented completions", std::to_string(ev_cpl)});
    t.addRow({"device doorbell rings", std::to_string(rings)});
    t.addRow({"  coalesced onto a fetch", std::to_string(coalesced)});
    t.addRow({"  coalesce ratio",
              Table::pct(rings ? double(coalesced) / double(rings)
                               : 0.0)});
    t.addRow({"inline device fetches", std::to_string(fetches)});
    t.addRow({"pooled completion nodes", std::to_string(nodes)});
    t.addRow({"  occupancy high-water", std::to_string(high_water)});
    t.addRow({"service batches on lanes", std::to_string(deferred)});
    if (const sim::ShardPool *pool = sys.shardPool()) {
        for (unsigned s = 1; s < sim::ShardPool::maxAsyncSlots; ++s) {
            std::uint64_t posted = pool->asyncPosted(s);
            if (posted == 0)
                continue;
            std::uint64_t runs = pool->asyncWorkerRuns(s);
            t.addRow({"lane " + std::to_string(s) + " batches",
                      std::to_string(posted)});
            t.addRow({"  overlapped on a worker",
                      std::to_string(runs) + " (" +
                          Table::pct(double(runs) / double(posted)) +
                          ")"});
        }
    }
    return t;
}

Table
translationReachTable(system::System &sys)
{
    const os::Kernel &kern = sys.kernel();
    std::uint64_t lookups = 0, misses = 0;
    for (unsigned i = 0; i < sys.config().nLogical; ++i) {
        const cpu::Tlb &tlb = sys.core(i).mmu().tlb();
        lookups += tlb.lookups();
        misses += tlb.misses();
    }
    std::uint64_t hits = lookups - misses;
    std::uint64_t wide = sys.totalTlbWideHits();

    Table t({"translation reach", "count"});
    t.addRow({"tlb hits", std::to_string(hits)});
    t.addRow({"  served by wide entries", std::to_string(wide)});
    t.addRow({"  wide hit share",
              Table::pct(hits ? double(wide) / double(hits) : 0.0)});
    t.addRow({"thp fault allocations", std::to_string(kern.thpFaults())});
    t.addRow({"napot promotions", std::to_string(kern.napotPromotions())});
    t.addRow({"napot breaks", std::to_string(kern.napotBreaks())});
    t.addRow({"2MB promotions", std::to_string(kern.hugePromotions())});
    t.addRow({"2MB splits", std::to_string(kern.hugeSplits())});
    t.addRow({"2MB whole-unit reclaims",
              std::to_string(kern.hugeReclaims())});
    if (const core::Kcoalesced *kc = sys.kcoalesced()) {
        t.addRow({"kcoalesced windows scanned",
                  std::to_string(kc->windowsScanned())});
        t.addRow({"kcoalesced windows promoted",
                  std::to_string(kc->windowsPromoted())});
        t.addRow({"kcoalesced promotions aborted",
                  std::to_string(kc->promotionsAborted())});
        t.addRow({"kcoalesced shootdown IPIs",
                  std::to_string(kc->shootdownIpisSent())});
    }
    t.addRow({"wide shootdowns delayed",
              std::to_string(sys.wideShootdownsDelayed())});
    return t;
}

void
banner(const std::string &title, const std::string &subtitle)
{
    std::printf("\n==== %s ====\n", title.c_str());
    if (!subtitle.empty())
        std::printf("     %s\n", subtitle.c_str());
    std::printf("\n");
}

} // namespace hwdp::metrics

/**
 * @file
 * Sweep harness scaling check: run the same multi-configuration bench
 * sweep sequentially (1 job) and in parallel (HWDP_BENCH_JOBS /
 * hardware concurrency), verify the results are byte-identical, and
 * report the wall-clock speedup.
 *
 * This is the determinism gate for every converted figure bench: a
 * System seeds its own RNG from MachineConfig::seed and owns all of
 * its components, so thread interleaving must not be observable in
 * any reported number.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_common.hh"

using namespace hwdp;

namespace {

/** One bench point's full observable output, as a POD for memcmp. */
struct PointResult
{
    std::uint64_t appOps;
    std::uint64_t faultedOps;
    std::uint64_t userInstructions;
    std::uint64_t finalTick;
    double meanFaultLatencyUs;
};

PointResult
runPoint(std::size_t i)
{
    // Eight distinct machines: paging mode x dataset pressure x seed.
    auto cfg = bench::paperConfig(i % 2 ? system::PagingMode::hwdp
                                        : system::PagingMode::osdp);
    cfg.seed = 42 + static_cast<std::uint64_t>(i);
    system::System sys(cfg);
    auto mf = sys.mapDataset(
        "f", (4 + 4 * (i / 2)) * bench::defaultMemFrames);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 1500);
    auto *tc = sys.addThread(*wl, 0, *mf.as);
    sys.runUntilThreadsDone(seconds(30.0));
    PointResult r;
    std::memset(&r, 0, sizeof(r)); // padding too, so memcmp is exact
    r.appOps = tc->appOps();
    r.faultedOps = tc->faultedOps();
    r.userInstructions = tc->userInstructions();
    r.finalTick = sys.now();
    r.meanFaultLatencyUs = tc->faultedOpLatencyUs().mean();
    return r;
}

double
sweep(unsigned jobs, std::vector<PointResult> &out, std::size_t n)
{
    bench::SweepRunner runner(jobs);
    auto t0 = std::chrono::steady_clock::now();
    out = runner.map<PointResult>(n, runPoint);
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main()
{
    constexpr std::size_t points = 8;
    unsigned jobs = bench::sweepJobs();
    metrics::banner("Sweep harness: sequential vs parallel",
                    "same configs, same seeds — outputs must be "
                    "byte-identical");

    std::vector<PointResult> seq, par;
    double seqSec = sweep(1, seq, points);
    double parSec = sweep(jobs, par, points);

    bool identical =
        seq.size() == par.size() &&
        std::memcmp(seq.data(), par.data(),
                    seq.size() * sizeof(PointResult)) == 0;

    metrics::Table t({"run", "jobs", "wall s", "speedup"});
    t.addRow({"sequential", "1", metrics::Table::num(seqSec, 3), "1.00x"});
    t.addRow({"parallel", std::to_string(jobs),
              metrics::Table::num(parSec, 3),
              metrics::Table::num(seqSec / parSec) + "x"});
    t.print();

    std::printf("\nbyte-identical results: %s\n",
                identical ? "yes" : "NO — DETERMINISM VIOLATION");
    std::printf("{\"bench\": \"sweep_scaling\", \"points\": %zu, "
                "\"jobs\": %u, \"seq_s\": %.3f, \"par_s\": %.3f, "
                "\"speedup\": %.2f, \"identical\": %s}\n",
                points, jobs, seqSec, parSec, seqSec / parSec,
                identical ? "true" : "false");
    return identical ? 0 : 1;
}

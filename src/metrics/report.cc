#include "metrics/report.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "os/kernel_phases.hh"
#include "sim/logging.hh"
#include "sim/shard_pool.hh"

namespace hwdp::metrics {

Table::Table(std::vector<std::string> headers) : hdr(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != hdr.size())
        panic("report table: row width ", cells.size(),
              " != header width ", hdr.size());
    rows.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision,
                  fraction * 100.0);
    return buf;
}

std::string
Table::toString() const
{
    std::vector<std::size_t> w(hdr.size());
    for (std::size_t c = 0; c < hdr.size(); ++c)
        w[c] = hdr[c].size();
    for (const auto &r : rows) {
        for (std::size_t c = 0; c < r.size(); ++c)
            w[c] = std::max(w[c], r[c].size());
    }

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << "  " << cells[c];
            for (std::size_t p = cells[c].size(); p < w[c]; ++p)
                os << ' ';
        }
        os << '\n';
    };
    emit(hdr);
    std::size_t total = 0;
    for (std::size_t c = 0; c < w.size(); ++c)
        total += w[c] + 2;
    os << "  ";
    for (std::size_t i = 2; i < total; ++i)
        os << '-';
    os << '\n';
    for (const auto &r : rows)
        emit(r);
    return os.str();
}

void
Table::print() const
{
    std::fputs(toString().c_str(), stdout);
}

Table
pollutionProbeTable(const os::KernelExec &kexec)
{
    Table t({"category", "tag probes", "bp updates"});
    auto n_cats = static_cast<unsigned>(os::KernelCostCat::numCats);
    for (unsigned c = 0; c < n_cats; ++c) {
        auto cat = static_cast<os::KernelCostCat>(c);
        std::uint64_t probes = kexec.pollutionProbes(cat);
        std::uint64_t branches = kexec.pollutionBranchUpdates(cat);
        if (probes == 0 && branches == 0)
            continue;
        t.addRow({os::kernelCostCatName(cat), std::to_string(probes),
                  std::to_string(branches)});
    }
    t.addRow({"total", std::to_string(kexec.totalPollutionProbes()),
              std::to_string(kexec.totalPollutionBranchUpdates())});
    return t;
}

Table
shardPoolTable(const sim::ShardPool &pool)
{
    Table t({"lanes", "regions", "region tasks", "async tasks"});
    t.addRow({std::to_string(pool.lanes()),
              std::to_string(pool.regionsRun()),
              std::to_string(pool.regionTasksRun()),
              std::to_string(pool.asyncTasksRun())});
    return t;
}

Table
checkpointTable(const std::vector<CheckpointRow> &ops)
{
    Table t({"checkpoint", "op", "blob bytes", "ticks skipped"});
    std::uint64_t bytes = 0, ticks = 0, restores = 0;
    for (const CheckpointRow &r : ops) {
        t.addRow({r.label, r.op, std::to_string(r.blobBytes),
                  std::to_string(r.ticksSkipped)});
        if (r.op == "restore") {
            ++restores;
            ticks += r.ticksSkipped;
        }
        bytes += r.blobBytes;
    }
    t.addRow({"total", std::to_string(restores) + " restores",
              std::to_string(bytes), std::to_string(ticks)});
    return t;
}

void
banner(const std::string &title, const std::string &subtitle)
{
    std::printf("\n==== %s ====\n", title.c_str());
    if (!subtitle.empty())
        std::printf("     %s\n", subtitle.c_str());
    std::printf("\n");
}

} // namespace hwdp::metrics

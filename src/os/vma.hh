/**
 * @file
 * Virtual memory areas and per-process address spaces.
 *
 * An AddressSpace owns a page table and a sorted list of VMAs. The
 * fast-mmap flag on a VMA is the paper's new mmap() flag (Section
 * IV-B): it opts the area into hardware-based demand paging, causing
 * every PTE in the area to be populated with either a resident frame
 * or an LBA-augmented entry at map time.
 */

#ifndef HWDP_OS_VMA_HH
#define HWDP_OS_VMA_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "os/page_table.hh"
#include "os/pte.hh"
#include "sim/types.hh"

namespace hwdp::os {

class File;

struct Vma
{
    VAddr start = 0;
    VAddr end = 0; // exclusive

    File *file = nullptr;           ///< nullptr => anonymous.
    std::uint64_t filePageOffset = 0;

    bool fastMmap = false;          ///< Paper's new mmap() flag.
    pte::Entry prot = pte::writableBit | pte::userBit;

    std::uint64_t numPages() const { return (end - start) >> pageShift; }
    bool contains(VAddr va) const { return va >= start && va < end; }

    /** Page index within the backing file for @p va. */
    std::uint64_t
    fileIndexOf(VAddr va) const
    {
        return filePageOffset + ((va - start) >> pageShift);
    }
};

class AddressSpace
{
  public:
    explicit AddressSpace(std::uint32_t id);

    std::uint32_t id() const { return asid; }
    PageTable &pageTable() { return pt; }
    const PageTable &pageTable() const { return pt; }

    /**
     * Reserve a VMA for @p n_pages of @p file starting at file page
     * @p file_page_offset. PTE population is the kernel's job.
     */
    Vma *addVma(File *file, std::uint64_t file_page_offset,
                std::uint64_t n_pages, bool fast_mmap, pte::Entry prot);

    /** Remove a VMA (after the kernel tears down its PTEs). */
    void removeVma(Vma *vma);

    /** VMA covering @p va, or nullptr. */
    Vma *findVma(VAddr va);

    const std::vector<std::unique_ptr<Vma>> &vmas() const { return areas; }

    /**
     * Checkpoint the space: the VMA layout is boot structure (verified
     * per area, including backing-file identity), the page table and
     * the map-base allocator round-trip.
     */
    void serialize(sim::Serializer &s);

  private:
    std::uint32_t asid;
    PageTable pt;
    std::vector<std::unique_ptr<Vma>> areas;
    VAddr nextMapBase = 0x0000'7f00'0000'0000ULL;
};

} // namespace hwdp::os

#endif // HWDP_OS_VMA_HH

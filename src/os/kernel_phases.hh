/**
 * @file
 * Kernel-execution phase model.
 *
 * Every stretch of kernel work the simulator charges — page-fault
 * handling, the I/O stack, context switches, interrupt handling,
 * metadata updates, kpted/kpoold batches — is described by a
 * KernelPhase: a calibrated cycle/instruction budget plus a
 * microarchitectural footprint (instruction lines, data lines and
 * branches it touches). Running a phase advances time by its cycle
 * budget and *pollutes* the executing core's caches and branch
 * predictor, which is how the paper's indirect cost (user-level IPC
 * loss, Figures 4/14) emerges in the model.
 *
 * The cycle budgets are calibrated so that an OSDP page fault
 * reproduces Figure 3: ~2.2 us of kernel work before the device I/O,
 * ~6.1 us after it, against a 10.9 us Z-SSD device time (76.3% total
 * overhead).
 */

#ifndef HWDP_OS_KERNEL_PHASES_HH
#define HWDP_OS_KERNEL_PHASES_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mem/branch_predictor.hh"
#include "mem/cache_hierarchy.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace hwdp::sim {
class Serializer;
class ShardPool;
}

namespace hwdp::os {

/** Attribution buckets for Figure 15 (kernel cost breakdown). */
enum class KernelCostCat : unsigned {
    faultPath = 0,   ///< Exception entry/exit, VMA lookup, PTE update.
    ioStack,         ///< Submission and completion through the block layer.
    contextSwitch,   ///< Switch-out, wakeup, switch-in.
    irq,             ///< Interrupt delivery.
    metadata,        ///< LRU / rmap / page-cache bookkeeping.
    syscall,         ///< read/write/mmap and friends.
    kpted,           ///< Background metadata-sync thread.
    kpoold,          ///< Background free-page refill thread.
    reclaim,         ///< Page replacement and writeback.
    other,
    numCats
};

const char *kernelCostCatName(KernelCostCat cat);

struct KernelPhase
{
    const char *name;
    Cycles cycles;             ///< Calibrated latency contribution.
    std::uint64_t instructions;
    std::uint16_t icLines;     ///< Distinct instruction lines touched.
    std::uint16_t dcLines;     ///< Distinct data lines touched.
    std::uint16_t branches;    ///< Branches executed (pollute the BP).
    KernelCostCat cat;
};

/**
 * The calibrated phase table. Kept as data (not constants sprinkled
 * through the code) so benches can print it and tests can check the
 * calibration invariants against the paper's fractions.
 */
namespace phases {

// --- OSDP page-fault critical path (Figure 3) ------------------------
extern const KernelPhase exceptionEntry;   ///< Trap + early fault entry.
extern const KernelPhase vmaLookup;        ///< find_vma + policy checks.
extern const KernelPhase pageAlloc;        ///< Buddy/per-cpu allocation.
extern const KernelPhase ioSubmit;         ///< FS + block + NVMe driver.
extern const KernelPhase contextSwitch;    ///< One direction of a switch.
extern const KernelPhase irqDeliver;       ///< MSI-X to handler entry.
extern const KernelPhase ioComplete;       ///< Block completion + unlock.
extern const KernelPhase wakeupSched;      ///< try_to_wake_up + enqueue.
extern const KernelPhase metadataUpdate;   ///< LRU/rmap/page-cache insert.
extern const KernelPhase pteUpdateReturn;  ///< Set PTE + iret.

// --- Minor faults and syscalls ---------------------------------------
extern const KernelPhase minorFaultFill;   ///< Page-cache hit fault.
extern const KernelPhase syscallEntryExit;
extern const KernelPhase writeSyscall;     ///< Buffered 4KB write + copy.
extern const KernelPhase mmapSetupPerPage; ///< PTE population at mmap.

// --- Reclaim ----------------------------------------------------------
extern const KernelPhase reclaimScanPage;  ///< Clock-hand work per page.
extern const KernelPhase writebackSubmit;  ///< Per dirty page written.
extern const KernelPhase writebackComplete; ///< Write-I/O completion.

// --- HWDP control plane ------------------------------------------------
extern const KernelPhase kptedPerPage;     ///< Batched metadata sync.
extern const KernelPhase kptedScanEntry;   ///< Per page-table entry visit.
extern const KernelPhase kpooldPerPage;    ///< Batched free-page refill.
extern const KernelPhase shootdownIpi;     ///< Cross-socket TLB/PWC IPI.

// --- Transparent coalescing (kcoalesced, pageMode=coalesce) -----------
extern const KernelPhase coalesceScan;     ///< Per 2 MB window check.
extern const KernelPhase coalescePromote;  ///< Collapse 512 PTEs to a leaf.

// --- Software-emulated SMU (Figure 17 baseline) -----------------------
extern const KernelPhase swSmuSubmit;      ///< Emulated PMSHR + NVMe cmd.
extern const KernelPhase swSmuWake;        ///< mwait wakeup.
extern const KernelPhase swSmuComplete;    ///< Emulated completion + PTE.

} // namespace phases

/**
 * Executes kernel phases: charges time, applies cache/branch-predictor
 * pollution on the executing physical core, and accumulates the
 * per-category instruction/cycle totals Figure 15 reports.
 */
class KernelExec
{
  public:
    KernelExec(mem::CacheHierarchy &caches,
               std::vector<mem::BranchPredictor> &bps, Tick cycle_period,
               sim::Rng rng);

    /**
     * Run @p phase on physical core @p phys_core.
     * @return the phase duration in ticks.
     */
    Tick run(unsigned phys_core, const KernelPhase &phase);

    /** Run a phase @p n times (batch loops), returning total ticks. */
    Tick runBatch(unsigned phys_core, const KernelPhase &phase,
                  std::uint64_t n);

    std::uint64_t instructions(KernelCostCat cat) const;
    Cycles cycles(KernelCostCat cat) const;
    std::uint64_t totalInstructions() const;
    Cycles totalCycles() const;

    void resetAccounting();

    Tick cyclePeriod() const { return period; }

    /** Pollution can be disabled for pure-latency experiments. */
    void setPollutionEnabled(bool on) { pollute = on; }

    /**
     * Select the batched pollution path (the default) or the per-line
     * reference path. Both produce bit-identical simulated state and
     * statistics; the reference path exists so the differential suite
     * can prove that, and for bisecting host-perf regressions.
     */
    void setBatchEnabled(bool on) { batch = on; }
    bool batchEnabled() const { return batch; }

    /**
     * Attach the parallel-mode worker pool: large pollution batches
     * then run their branch-predictor update on the pool's side lane,
     * overlapped with the cache passes of the same phase (the
     * predictor and the tag arrays share no state, and the outcome
     * stream is pre-drawn, so the overlap cannot change simulated
     * results). nullptr restores fully serial execution.
     */
    void setShardPool(sim::ShardPool *p) { pool = p; }

    /**
     * Cache tag-array probes (across all three levels) issued by
     * pollution on behalf of @p cat — the simulator-hot-path cost the
     * batch path exists to cut, surfaced so benches can report where
     * the probes come from. Counted identically by both paths.
     */
    std::uint64_t pollutionProbes(KernelCostCat cat) const;
    std::uint64_t totalPollutionProbes() const;

    /** Branch-predictor updates issued by pollution for @p cat. */
    std::uint64_t pollutionBranchUpdates(KernelCostCat cat) const;
    std::uint64_t totalPollutionBranchUpdates() const;

    /**
     * Checkpoint the accounting arrays, the invocation counter and
     * the pollution rng. The footprint memo and draw scratch are
     * host-side caches rebuilt on demand and are not serialized.
     */
    void serialize(sim::Serializer &s);

  private:
    mem::CacheHierarchy &caches;
    std::vector<mem::BranchPredictor> &bps;
    Tick period;
    sim::Rng rng;
    bool pollute = true;
    bool batch = true;
    sim::ShardPool *pool = nullptr;

    std::uint64_t instrByCat[static_cast<unsigned>(KernelCostCat::numCats)] =
        {};
    Cycles cyclesByCat[static_cast<unsigned>(KernelCostCat::numCats)] = {};
    std::uint64_t probesByCat[static_cast<unsigned>(KernelCostCat::numCats)] =
        {};
    std::uint64_t branchesByCat[static_cast<unsigned>(
        KernelCostCat::numCats)] = {};

    /** Monotone counter that spreads per-invocation data addresses. */
    std::uint64_t invocation = 0;

    /**
     * Memoized per-phase footprint: everything about a phase's
     * pollution that does not vary per invocation. The FNV name hash
     * and the derived text/data bases are computed once; the
     * instruction-line run, the stable (even-index) data lines and
     * the branch-PC cycle are flattened into address vectors the
     * batch path streams directly. Odd data slots are per-invocation
     * and rewritten in bulk before each use. Vectors grow on demand
     * because runBatch scales dcLines/branches per call.
     */
    struct Footprint
    {
        std::uint64_t textBase = 0;
        std::uint64_t dataBase = 0;
        std::vector<std::uint64_t> text;
        std::vector<std::uint64_t> data;
        std::vector<std::uint64_t> branchPcs; // cycle: min(branches,1024)
    };

    /**
     * Keyed by the phase's name pointer: phases are static table
     * entries (runBatch's scaled copies share the table entry's name),
     * so pointer identity is both stable and cheaper than hashing the
     * string per invocation.
     */
    std::unordered_map<const char *, Footprint> footprints;

    /** Scratch for the bulk Bernoulli draws (taken flags). */
    std::vector<std::uint8_t> takenScratch;

    Footprint &footprint(const KernelPhase &phase);

    void applyPollution(unsigned phys_core, const KernelPhase &phase);
    void applyPollutionBatch(unsigned phys_core, const KernelPhase &phase,
                             Footprint &fp);
};

} // namespace hwdp::os

#endif // HWDP_OS_KERNEL_PHASES_HH

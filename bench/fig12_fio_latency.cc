/**
 * @file
 * Figure 12: demand paging performance (FIO 4 KB mmap read latency)
 * with 1/2/4/8 threads, OSDP vs HWDP.
 *
 * Paper: HWDP reduces the latency by up to 37.0% at one thread,
 * narrowing to 27.0% at eight threads (all physical cores busy,
 * device queueing grows the common base).
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace hwdp;
using metrics::Table;

int
main()
{
    sim::Rng unused(0);
    metrics::banner("Figure 12: FIO 4KB mmap read latency vs threads",
                    "paper: HWDP -37.0% @1 thread ... -27.0% @8 threads");

    Table t({"threads", "OSDP us", "HWDP us", "reduction",
             "paper reduction"});
    const char *paper[] = {"37.0%", "~34%", "~30%", "27.0%"};
    int pi = 0;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        auto osdp = bench::runFio(
            bench::paperConfig(system::PagingMode::osdp), threads, 12000);
        auto hwdp = bench::runFio(
            bench::paperConfig(system::PagingMode::hwdp), threads, 12000);
        double red = 1.0 - hwdp.meanLatencyUs / osdp.meanLatencyUs;
        t.addRow({std::to_string(threads), Table::num(osdp.meanLatencyUs),
                  Table::num(hwdp.meanLatencyUs), Table::pct(red),
                  paper[pi++]});
    }
    t.print();
    return 0;
}

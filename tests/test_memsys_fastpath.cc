/**
 * @file
 * Memory-system fast path verification.
 *
 * The zero-event hit path (DESIGN.md section 6e) batches TLB hits and
 * present-PTE walks synchronously under a per-thread logical clock.
 * Correctness claim: with memQuantum = 1 the same code degenerates to
 * event-per-op pacing, and any quantum must produce a bit-identical
 * machine — same end state, same per-thread cycle/latency statistics.
 * These tests run the claim differentially across paging modes and
 * workloads, and pin the fast path's no-allocation property with a
 * counting global operator new.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "system/system.hh"
#include "testing/invariants.hh"
#include "testing/machine_differ.hh"
#include "workloads/fio.hh"
#include "workloads/kv_store.hh"
#include "workloads/ycsb.hh"

using namespace hwdp;
namespace ht = hwdp::testing;

// ---- Counting global allocator ---------------------------------------------
// Every heap allocation in the test binary bumps this counter; the
// zero-allocation tests read it around a window of fast-path accesses.
//
// ASan ships its own operator new/delete interceptors; defining the
// global allocator alongside them makes allocations from
// uninstrumented DSOs (libgtest) look type-mismatched. Compile the
// override out under ASan and skip the counting assertions there —
// the regular build keeps the proof.

#ifndef HWDP_HEAP_COUNTING
#if defined(__SANITIZE_ADDRESS__)
#define HWDP_HEAP_COUNTING 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HWDP_HEAP_COUNTING 0
#else
#define HWDP_HEAP_COUNTING 1
#endif
#else
#define HWDP_HEAP_COUNTING 1
#endif
#endif

static std::atomic<std::uint64_t> g_heapAllocs{0};

#if HWDP_HEAP_COUNTING

void *
operator new(std::size_t n)
{
    ++g_heapAllocs;
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return operator new(n);
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

#endif // HWDP_HEAP_COUNTING

namespace {

system::MachineConfig
smallConfig(system::PagingMode mode, unsigned mem_quantum)
{
    system::MachineConfig cfg;
    cfg.mode = mode;
    cfg.nLogical = 4;
    cfg.nPhysical = 2;
    cfg.memFrames = 32 * 1024;
    cfg.smu.freeQueueCapacity = 512;
    cfg.kpooldPeriod = milliseconds(1.0);
    cfg.kptedPeriod = milliseconds(4.0);
    cfg.core.memQuantum = mem_quantum;
    return cfg;
}

/** Everything a thread measures; compared field-by-field. */
struct TcStats
{
    std::uint64_t appOps, memOps, faultedOps, hwHandledOps, uInstr;
    Cycles uCycles, cCycles, mCycles;
    Tick faultStall, started, finished;
    std::uint64_t memLatCount, faultedOpCount;
    double memLatMean, faultedOpMean;
};

TcStats
statsOf(cpu::ThreadContext &tc)
{
    TcStats s;
    s.appOps = tc.appOps();
    s.memOps = tc.memOps();
    s.faultedOps = tc.faultedOps();
    s.hwHandledOps = tc.hwHandledOps();
    s.uInstr = tc.userInstructions();
    s.uCycles = tc.userCycles();
    s.cCycles = tc.computeCycles();
    s.mCycles = tc.memStallCycles();
    s.faultStall = tc.faultStallTicks();
    s.started = tc.startTick();
    s.finished = tc.finishTick();
    s.memLatCount = tc.memLatencyUs().count();
    s.memLatMean = tc.memLatencyUs().mean();
    s.faultedOpCount = tc.faultedOpLatencyUs().count();
    s.faultedOpMean = tc.faultedOpLatencyUs().mean();
    return s;
}

void
expectSameStats(const TcStats &a, const TcStats &b, unsigned thread)
{
    SCOPED_TRACE("thread " + std::to_string(thread));
    EXPECT_EQ(a.appOps, b.appOps);
    EXPECT_EQ(a.memOps, b.memOps);
    EXPECT_EQ(a.faultedOps, b.faultedOps);
    EXPECT_EQ(a.hwHandledOps, b.hwHandledOps);
    EXPECT_EQ(a.uInstr, b.uInstr);
    EXPECT_EQ(a.uCycles, b.uCycles);
    EXPECT_EQ(a.cCycles, b.cCycles);
    EXPECT_EQ(a.mCycles, b.mCycles);
    EXPECT_EQ(a.faultStall, b.faultStall);
    EXPECT_EQ(a.started, b.started);
    EXPECT_EQ(a.finished, b.finished);
    EXPECT_EQ(a.memLatCount, b.memLatCount);
    EXPECT_DOUBLE_EQ(a.memLatMean, b.memLatMean);
    EXPECT_EQ(a.faultedOpCount, b.faultedOpCount);
    EXPECT_DOUBLE_EQ(a.faultedOpMean, b.faultedOpMean);
}

struct RunResult
{
    ht::MachineState state;
    std::vector<TcStats> stats;
};

/** Two FIO threads sharing one address space (cross-core batching). */
RunResult
runFio(system::PagingMode mode, unsigned mem_quantum)
{
    system::System sys(smallConfig(mode, mem_quantum));
    auto mf = sys.mapDataset("f", 8 * 1024);
    for (unsigned t = 0; t < 2; ++t) {
        auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 1200);
        sys.addThread(*wl, t, *mf.as);
    }
    EXPECT_TRUE(sys.runUntilThreadsDone(seconds(60.0)));
    ht::quiesce(sys);
    auto inv = ht::checkInvariants(sys);
    EXPECT_TRUE(inv.empty()) << inv.front();

    RunResult r{ht::snapshot(sys, pagingModeName(mode)), {}};
    for (auto &tc : sys.threads())
        r.stats.push_back(statsOf(*tc));
    return r;
}

/** YCSB-A over the mmap'ed KV store (reads + updates + WAL writes). */
RunResult
runYcsb(system::PagingMode mode, unsigned mem_quantum)
{
    system::System sys(smallConfig(mode, mem_quantum));
    auto mf = sys.mapDataset("data", 16 * 1024);
    auto *wal = sys.createFile("wal", 8 * 1024);
    auto store = std::make_unique<workloads::KvStore>(mf.vma, wal,
                                                      16 * 1024);
    auto *wl = sys.makeWorkload<workloads::YcsbWorkload>('A', *store,
                                                         1000);
    sys.addThread(*wl, 0, *mf.as);
    EXPECT_TRUE(sys.runUntilThreadsDone(seconds(60.0)));
    ht::quiesce(sys);
    auto inv = ht::checkInvariants(sys);
    EXPECT_TRUE(inv.empty()) << inv.front();

    RunResult r{ht::snapshot(sys, pagingModeName(mode)), {}};
    for (auto &tc : sys.threads())
        r.stats.push_back(statsOf(*tc));
    return r;
}

void
expectEquivalent(const RunResult &fast, const RunResult &legacy)
{
    EXPECT_EQ(fast.state.stateHash, legacy.state.stateHash);
    ht::DiffOptions opt;
    opt.compareFaultTotals = true; // same mode, same machine: exact
    auto d = ht::diff(fast.state, legacy.state, opt);
    EXPECT_TRUE(d.equivalent) << d.report;
    ASSERT_EQ(fast.stats.size(), legacy.stats.size());
    for (std::size_t i = 0; i < fast.stats.size(); ++i)
        expectSameStats(fast.stats[i], legacy.stats[i],
                        static_cast<unsigned>(i));
}

class FastPathDifferential
    : public ::testing::TestWithParam<system::PagingMode>
{
};

} // namespace

TEST_P(FastPathDifferential, FioBatchedMatchesEventPerOp)
{
    auto fast = runFio(GetParam(), 4096);
    auto legacy = runFio(GetParam(), 1);
    expectEquivalent(fast, legacy);
}

TEST_P(FastPathDifferential, YcsbBatchedMatchesEventPerOp)
{
    auto fast = runYcsb(GetParam(), 4096);
    auto legacy = runYcsb(GetParam(), 1);
    expectEquivalent(fast, legacy);
}

TEST_P(FastPathDifferential, SmallQuantumMatchesLargeQuantum)
{
    // The cut policy (quantum boundary placement) must not matter,
    // only that cuts happen: an adversarially small quantum inserts
    // continuation events at different points than the default.
    auto q3 = runFio(GetParam(), 3);
    auto q4096 = runFio(GetParam(), 4096);
    expectEquivalent(q3, q4096);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, FastPathDifferential,
    ::testing::Values(system::PagingMode::osdp, system::PagingMode::hwdp,
                      system::PagingMode::swsmu),
    [](const ::testing::TestParamInfo<system::PagingMode> &info) {
        // Not pagingModeName(): "SW-only" is not a valid gtest name.
        switch (info.param) {
          case system::PagingMode::osdp: return std::string("osdp");
          case system::PagingMode::hwdp: return std::string("hwdp");
          case system::PagingMode::swsmu: return std::string("swsmu");
        }
        return std::string("unknown");
    });

// ---- Zero-allocation fast path ---------------------------------------------

namespace {

struct StubThread : os::Thread
{
    StubThread() : os::Thread("stub", 0) {}
    void run() override {}
};

struct StubSink : cpu::AccessSink
{
    cpu::AccessInfo last;
    bool called = false;
    void
    accessDone(const cpu::AccessInfo &info) override
    {
        last = info;
        called = true;
    }
};

system::MachineConfig
tinyConfig(system::PagingMode mode)
{
    system::MachineConfig cfg;
    cfg.mode = mode;
    cfg.nLogical = 4;
    cfg.nPhysical = 2;
    cfg.memFrames = 2048;
    cfg.smu.freeQueueCapacity = 128;
    return cfg;
}

} // namespace

TEST(FastPathAllocation, TlbHitAccessIsAllocationFree)
{
    if (!HWDP_HEAP_COUNTING)
        GTEST_SKIP() << "counting allocator disabled under ASan";
    system::System sys(tinyConfig(system::PagingMode::osdp));
    auto mf = sys.mapDataset("f", 64);
    sys.preload(mf);

    StubThread t;
    StubSink sink;
    cpu::AccessInfo info;
    auto &mmu = sys.core(0).mmu();
    VAddr va = mf.vma->start;
    ASSERT_TRUE(mmu.access(t, *mf.as, va, false, 0, sink, info)); // warm

    auto before = g_heapAllocs.load();
    for (int i = 0; i < 1000; ++i) {
        ASSERT_TRUE(mmu.access(t, *mf.as, va + (i % 16) * pageSize,
                               (i & 1) != 0, 0, sink, info));
        ASSERT_GT(info.latency, 0u);
        ASSERT_FALSE(info.faulted);
    }
    EXPECT_EQ(g_heapAllocs.load(), before)
        << "TLB-hit accesses must not touch the heap";
    EXPECT_FALSE(sink.called) << "hits complete inline, never via sink";
}

// ---- Translation-reach coherence on the fast path ---------------------------
// The last-VPN latch and the PWC both sit in front of the arrays the
// wide shootdown sweeps; each needs its own kill. A latched 4 KB VPN
// inside a 2 MB window must die with the window, and a split must
// drop the walker's cached upper entries so the next walk re-reads
// the live tree.

namespace {

/** osdp + THP machine with at least one 2 MB leaf faulted in. */
struct ThpMachine
{
    system::System sys;
    system::System::MappedFile mf;
    VAddr win = 0; ///< Base of one live 2 MB leaf window.

    ThpMachine() : sys(makeConfig())
    {
        mf = sys.mapDataset("f", 2048);
        auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 600);
        sys.addThread(*wl, 0, *mf.as);
        EXPECT_TRUE(sys.runUntilThreadsDone(seconds(30.0)));
        EXPECT_GT(sys.kernel().thpFaults(), 0u);
        mf.as->pageTable().forEachHugeLeaf(
            mf.vma->start, mf.vma->end, [&](VAddr va, os::EntryRef) {
                if (!win)
                    win = va;
            });
        EXPECT_NE(win, 0u);
    }

    static system::MachineConfig
    makeConfig()
    {
        system::MachineConfig cfg = tinyConfig(system::PagingMode::osdp);
        cfg.memFrames = 8 * 1024; // all four windows fit: no reclaim
        cfg.pageMode = PageMode::thp;
        return cfg;
    }
};

} // namespace

TEST(FastPathReach, WideShootdownKillsLatchedVpnInsideWindow)
{
    ThpMachine m;
    StubThread t;
    StubSink sink;
    cpu::AccessInfo info;
    auto &mmu = m.sys.core(0).mmu();
    VAddr va = m.win + 7 * pageSize;

    // Two accesses: the first lands the wide entry in the L1 and the
    // latch, the second must be a latch hit served by it.
    ASSERT_TRUE(mmu.access(t, *m.mf.as, va, false, 0, sink, info));
    auto latch_before = mmu.tlb().latchHits();
    auto wide_before = mmu.tlb().wideHits();
    ASSERT_TRUE(mmu.access(t, *m.mf.as, va, false, 0, sink, info));
    EXPECT_GT(mmu.tlb().latchHits(), latch_before);
    EXPECT_GT(mmu.tlb().wideHits(), wide_before);

    // Demote the window. The broadcast must kill the latched VPN too:
    // the next access misses the TLB entirely and re-walks.
    m.sys.kernel().demoteHugePage(*m.mf.as, m.win);
    auto miss_before = mmu.tlb().misses();
    ASSERT_TRUE(mmu.access(t, *m.mf.as, va, false, 0, sink, info));
    ASSERT_FALSE(info.faulted); // split left 512 present 4 KB PTEs
    EXPECT_GT(mmu.tlb().misses(), miss_before)
        << "stale latched translation served after the wide shootdown";

    auto inv = ht::checkInvariants(m.sys);
    EXPECT_TRUE(inv.empty()) << inv.front();
}

TEST(FastPathReach, SplitDropsCoveringPwcEntries)
{
    ThpMachine m;
    StubThread t;
    StubSink sink;
    cpu::AccessInfo info;
    auto &mmu = m.sys.core(0).mmu();
    auto &walker = mmu.walker();

    // Clean slate, then one walk through the leaf window to populate
    // the PWC with its covering upper entries.
    mmu.tlb().flush();
    walker.pwcFlush();
    ASSERT_TRUE(mmu.access(t, *m.mf.as, m.win + 7 * pageSize, false, 0,
                           sink, info));
    ASSERT_FALSE(walker.pwcEmpty());

    // A second walk in the same window rides the PWC.
    mmu.tlb().flush();
    auto hits_before = walker.pwcHits();
    ASSERT_TRUE(mmu.access(t, *m.mf.as, m.win + 9 * pageSize, false, 0,
                           sink, info));
    EXPECT_GT(walker.pwcHits(), hits_before);

    // The split rewrites the PMD slot; the shootdown must drop every
    // PWC entry covering the window so the next walk re-reads the
    // live tree instead of trusting a stale upper entry.
    m.sys.kernel().demoteHugePage(*m.mf.as, m.win);
    EXPECT_TRUE(walker.pwcEmpty());

    mmu.tlb().flush();
    auto misses_before = walker.pwcMisses();
    ASSERT_TRUE(mmu.access(t, *m.mf.as, m.win + 7 * pageSize, false, 0,
                           sink, info));
    ASSERT_FALSE(info.faulted);
    EXPECT_GT(walker.pwcMisses(), misses_before);

    auto inv = ht::checkInvariants(m.sys);
    EXPECT_TRUE(inv.empty()) << inv.front();
}

TEST(FastPathAllocation, WalkHitAccessIsAllocationFree)
{
    if (!HWDP_HEAP_COUNTING)
        GTEST_SKIP() << "counting allocator disabled under ASan";
    system::System sys(tinyConfig(system::PagingMode::osdp));
    auto mf = sys.mapDataset("f", 64);
    sys.preload(mf);

    StubThread t;
    StubSink sink;
    cpu::AccessInfo info;
    auto &mmu = sys.core(0).mmu();
    VAddr va = mf.vma->start;
    ASSERT_TRUE(mmu.access(t, *mf.as, va, false, 0, sink, info)); // warm

    auto before = g_heapAllocs.load();
    for (int i = 0; i < 200; ++i) {
        mmu.tlb().flush(); // force the walk (present PTE) path
        ASSERT_TRUE(mmu.access(t, *mf.as, va + (i % 16) * pageSize,
                               false, 0, sink, info));
        ASSERT_FALSE(info.faulted);
    }
    EXPECT_EQ(g_heapAllocs.load(), before)
        << "present-PTE walks must not touch the heap";
    EXPECT_FALSE(sink.called);
}

/**
 * @file
 * Figure 15: kernel-level retired instructions and cycles while
 * running YCSB-C with four threads, OSDP vs HWDP (HWDP including the
 * kpted and kpoold background threads).
 *
 * Paper: HWDP cuts kernel instructions by 62.6% — the block layer is
 * gone from the miss path and the batched metadata update spends its
 * instructions (and especially cycles) far more efficiently.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "os/kernel_phases.hh"

using namespace hwdp;
using metrics::Table;
using os::KernelCostCat;

namespace {

struct Cost
{
    std::uint64_t instr[static_cast<unsigned>(KernelCostCat::numCats)];
    std::uint64_t cycles[static_cast<unsigned>(KernelCostCat::numCats)];
    std::uint64_t totalInstr = 0, totalCycles = 0;
};

Cost
runC(system::PagingMode mode)
{
    auto cfg = bench::paperConfig(mode);
    system::System sys(cfg);
    auto mf = sys.mapDataset("kv.dat", bench::defaultDatasetPages);
    auto *wal = sys.createFile("kv.wal", 64 * 1024);
    struct Holder : workloads::Workload
    {
        std::unique_ptr<workloads::KvStore> s;
        workloads::Op next(sim::Rng &) override
        {
            return workloads::Op::makeDone();
        }
        const char *label() const override { return "holder"; }
    };
    auto *h = sys.makeWorkload<Holder>();
    h->s = std::make_unique<workloads::KvStore>(
        mf.vma, wal, bench::defaultDatasetPages);
    for (unsigned t = 0; t < 4; ++t) {
        auto *wl =
            sys.makeWorkload<workloads::YcsbWorkload>('C', *h->s, 8000);
        sys.addThread(*wl, t, *mf.as);
    }
    sys.runUntilThreadsDone(seconds(120.0));

    Cost c{};
    auto &ke = sys.kernel().kexec();
    for (unsigned i = 0; i < static_cast<unsigned>(KernelCostCat::numCats);
         ++i) {
        auto cat = static_cast<KernelCostCat>(i);
        c.instr[i] = ke.instructions(cat);
        c.cycles[i] = ke.cycles(cat);
        c.totalInstr += c.instr[i];
        c.totalCycles += c.cycles[i];
    }
    return c;
}

} // namespace

int
main()
{
    metrics::banner("Figure 15: kernel instructions/cycles, YCSB-C x4",
                    "paper: HWDP retires 62.6% fewer kernel "
                    "instructions (kpted & kpoold included)");

    Cost osdp = runC(system::PagingMode::osdp);
    Cost hwdp = runC(system::PagingMode::hwdp);

    Table t({"category", "OSDP Minstr", "HWDP Minstr", "OSDP Mcycles",
             "HWDP Mcycles"});
    for (unsigned i = 0; i < static_cast<unsigned>(KernelCostCat::numCats);
         ++i) {
        auto cat = static_cast<KernelCostCat>(i);
        if (osdp.instr[i] == 0 && hwdp.instr[i] == 0)
            continue;
        t.addRow({os::kernelCostCatName(cat),
                  Table::num(static_cast<double>(osdp.instr[i]) / 1e6),
                  Table::num(static_cast<double>(hwdp.instr[i]) / 1e6),
                  Table::num(static_cast<double>(osdp.cycles[i]) / 1e6),
                  Table::num(static_cast<double>(hwdp.cycles[i]) / 1e6)});
    }
    t.addRow({"TOTAL",
              Table::num(static_cast<double>(osdp.totalInstr) / 1e6),
              Table::num(static_cast<double>(hwdp.totalInstr) / 1e6),
              Table::num(static_cast<double>(osdp.totalCycles) / 1e6),
              Table::num(static_cast<double>(hwdp.totalCycles) / 1e6)});
    t.print();

    double red_i = 1.0 - static_cast<double>(hwdp.totalInstr) /
                             static_cast<double>(osdp.totalInstr);
    double red_c = 1.0 - static_cast<double>(hwdp.totalCycles) /
                             static_cast<double>(osdp.totalCycles);
    std::printf("\nkernel instruction reduction : %.1f%% (paper: "
                "62.6%%)\n", red_i * 100.0);
    std::printf("kernel cycle reduction       : %.1f%% (paper: "
                "similar, kpted cycles benefit from batching)\n",
                red_c * 100.0);
    return 0;
}

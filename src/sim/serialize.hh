/**
 * @file
 * Direction-tagged serialization visitor for machine checkpoints.
 *
 * Every stateful component implements one serialize(Serializer &)
 * method that both saves and restores: the archive carries the
 * direction, and each io() call either appends the value to the blob
 * or overwrites it from the blob. A single traversal for both
 * directions means save and restore cannot drift — the classic
 * symptom of paired save()/load() methods rotting apart.
 *
 * The format is a flat little-endian byte stream (checkpoints restore
 * on the host that wrote them; the bench protocol never ships blobs
 * across machines). Robustness against *logic* drift comes from
 * structure, not self-description:
 *
 *  - section(name): an FNV-1a tag of the section name is written and
 *    verified, so a reader that falls out of step fails at the next
 *    section boundary with both names' hashes in the error.
 *  - check(value): boot-derived structure (frame counts, topology,
 *    table bases) is written and *compared* on load instead of being
 *    overwritten — restoring onto a differently-built machine is an
 *    error, not a corruption.
 *
 * Version and config identity live in the checkpoint header
 * (system/checkpoint.hh); the Serializer itself is format-agnostic.
 */

#ifndef HWDP_SIM_SERIALIZE_HH
#define HWDP_SIM_SERIALIZE_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <deque>
#include <list>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace hwdp::sim {

/** Thrown on any blob-format or machine-shape mismatch. */
class SerializeError : public std::runtime_error
{
  public:
    explicit SerializeError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

class Serializer
{
  public:
    enum class Dir { save, load };

    /** A saving archive writing into a fresh blob. */
    static Serializer saver() { return Serializer(Dir::save, {}); }

    /** A loading archive reading @p blob from @p offset. */
    static Serializer
    loader(std::vector<std::uint8_t> blob, std::size_t offset = 0)
    {
        Serializer s(Dir::load, std::move(blob));
        s.cursor = offset;
        return s;
    }

    bool saving() const { return dir == Dir::save; }
    bool loading() const { return dir == Dir::load; }

    /** The blob written so far (saving archives). */
    const std::vector<std::uint8_t> &blob() const { return buf; }
    std::vector<std::uint8_t> takeBlob() { return std::move(buf); }

    /** Read cursor (loading archives). */
    std::size_t offset() const { return cursor; }

    /** True when a loading archive consumed the whole blob. */
    bool exhausted() const { return cursor == buf.size(); }

    // ---- Scalars --------------------------------------------------------
    template <typename T>
    std::enable_if_t<std::is_arithmetic_v<T> || std::is_enum_v<T>>
    io(T &v)
    {
        if (saving()) {
            const auto *p = reinterpret_cast<const std::uint8_t *>(&v);
            buf.insert(buf.end(), p, p + sizeof(T));
        } else {
            need(sizeof(T));
            std::memcpy(&v, buf.data() + cursor, sizeof(T));
            cursor += sizeof(T);
        }
    }

    void
    io(bool &b)
    {
        std::uint8_t v = b ? 1 : 0;
        io(v);
        if (loading())
            b = v != 0;
    }

    void
    io(std::string &s)
    {
        std::uint64_t n = s.size();
        io(n);
        if (saving()) {
            buf.insert(buf.end(), s.begin(), s.end());
        } else {
            need(n);
            s.assign(reinterpret_cast<const char *>(buf.data() + cursor),
                     n);
            cursor += n;
        }
    }

    // ---- Containers -----------------------------------------------------
    template <typename T>
    void
    io(std::vector<T> &v)
    {
        std::uint64_t n = v.size();
        io(n);
        if (loading())
            v.resize(n);
        ioRange(v.begin(), v.end());
    }

    template <typename T>
    void
    io(std::deque<T> &v)
    {
        std::uint64_t n = v.size();
        io(n);
        if (loading())
            v.resize(n);
        ioRange(v.begin(), v.end());
    }

    template <typename T>
    void
    io(std::list<T> &v)
    {
        std::uint64_t n = v.size();
        io(n);
        if (loading())
            v.resize(n);
        ioRange(v.begin(), v.end());
    }

    template <typename T, std::size_t N>
    void
    io(std::array<T, N> &a)
    {
        ioRange(a.begin(), a.end());
    }

    template <typename A, typename B>
    void
    io(std::pair<A, B> &p)
    {
        io(p.first);
        io(p.second);
    }

    template <typename It>
    void
    ioRange(It first, It last)
    {
        for (; first != last; ++first)
            io(*first);
    }

    // ---- Structure guards ------------------------------------------------
    /**
     * Mark a section boundary. The FNV-1a hash of @p name is written
     * on save and verified on load; a mismatch throws SerializeError
     * naming the expected section.
     */
    void section(const char *name);

    /**
     * Boot-derived structure: @p v is written on save; on load the
     * stored value is *compared* against the live one and a mismatch
     * throws (restore targets must be booted identically, never
     * reshaped by the blob).
     */
    template <typename T>
    void
    check(const T &v, const char *what)
    {
        T stored = v;
        io(stored);
        if (loading() && !(stored == v))
            mismatch(what);
    }

    static std::uint64_t hashName(const char *name);

  private:
    Serializer(Dir d, std::vector<std::uint8_t> b)
        : dir(d), buf(std::move(b))
    {
    }

    void need(std::size_t n) const;
    [[noreturn]] void mismatch(const char *what) const;

    Dir dir;
    std::vector<std::uint8_t> buf;
    std::size_t cursor = 0;
};

/** Optional interface for caller-owned checkpoint state (workload
 *  stores, fault plans) passed to Checkpoint::save/restore. */
class Serializable
{
  public:
    virtual ~Serializable() = default;
    virtual void serialize(Serializer &s) = 0;
};

} // namespace hwdp::sim

#endif // HWDP_SIM_SERIALIZE_HH

/**
 * @file
 * Tests for the LRU lists and page replacement.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "system/system.hh"
#include "workloads/fio.hh"

using namespace hwdp;
using namespace hwdp::os;

namespace {

Page
mkPage(Pfn pfn)
{
    Page p;
    p.pfn = pfn;
    p.inUse = true;
    return p;
}

system::MachineConfig
tinyConfig(system::PagingMode mode)
{
    system::MachineConfig cfg;
    cfg.mode = mode;
    cfg.nLogical = 4;
    cfg.nPhysical = 2;
    cfg.memFrames = 2048;
    cfg.smu.freeQueueCapacity = 128;
    cfg.kpooldBatch = 128;
    return cfg;
}

} // namespace

TEST(LruLists, InsertAndPopFifoFromInactive)
{
    LruLists lru;
    Page a = mkPage(1), b = mkPage(2), c = mkPage(3);
    lru.insertInactive(a);
    lru.insertInactive(b);
    lru.insertInactive(c);
    EXPECT_EQ(lru.inactiveCount(), 3u);
    // Eviction candidates come from the tail: oldest first.
    EXPECT_EQ(lru.popCandidate(), 1u);
    EXPECT_EQ(lru.popCandidate(), 2u);
    EXPECT_EQ(lru.popCandidate(), 3u);
    EXPECT_EQ(lru.popCandidate(), LruLists::invalidPfn);
}

TEST(LruLists, ActiveListRefillsInactive)
{
    LruLists lru;
    Page a = mkPage(1);
    lru.insertActive(a);
    EXPECT_EQ(lru.activeCount(), 1u);
    // popCandidate demotes from active when inactive is empty.
    EXPECT_EQ(lru.popCandidate(), 1u);
}

TEST(LruLists, RemoveFromMiddle)
{
    LruLists lru;
    Page a = mkPage(1), b = mkPage(2), c = mkPage(3);
    lru.insertInactive(a);
    lru.insertInactive(b);
    lru.insertInactive(c);
    lru.remove(b);
    EXPECT_FALSE(b.lruLinked);
    EXPECT_EQ(lru.popCandidate(), 1u);
    EXPECT_EQ(lru.popCandidate(), 3u);
}

TEST(LruLists, DoubleInsertPanics)
{
    LruLists lru;
    Page a = mkPage(1);
    lru.insertInactive(a);
    EXPECT_THROW(lru.insertInactive(a), PanicError);
}

TEST(LruLists, RemoveUnlinkedPanics)
{
    LruLists lru;
    Page a = mkPage(1);
    EXPECT_THROW(lru.remove(a), PanicError);
}

TEST(LruLists, SecondChancePromotesToActive)
{
    LruLists lru;
    Page a = mkPage(1);
    lru.insertInactive(a);
    Pfn p = lru.popCandidate();
    a.lruLinked = false;
    a.referenced = true;
    lru.secondChance(a);
    EXPECT_FALSE(a.referenced);
    EXPECT_TRUE(a.active);
    EXPECT_EQ(lru.activeCount(), 1u);
    (void)p;
}

TEST(Reclaim, SteadyStateEvictionKeepsMachineRunning)
{
    // Dataset 4x memory: completion requires continuous replacement.
    system::System sys(tinyConfig(system::PagingMode::osdp));
    auto mf = sys.mapDataset("f", 8192);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 4000);
    sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(20.0)));
    EXPECT_GT(sys.kernel().reclaimer().pagesEvicted(), 1000u);
    // Memory never over-committed.
    auto &pm = sys.physMem();
    EXPECT_EQ(pm.allocatedFrames() + pm.freeFrames() + pm.reservedCount(),
              pm.totalFrames());
}

TEST(Reclaim, HwdpEvictionRearmsLbaPtes)
{
    system::System sys(tinyConfig(system::PagingMode::hwdp));
    auto mf = sys.mapDataset("f", 8192);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 4000);
    sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(20.0)));
    // Evictions wrote LBA-augmented PTEs (the rmap counter).
    EXPECT_GT(sys.kernel().rmap().evictionsToLba(), 1000u);
    EXPECT_EQ(sys.kernel().rmap().evictionsPlain(), 0u);
}

TEST(Reclaim, DirtyPagesAreWrittenBackBeforeReuse)
{
    system::System sys(tinyConfig(system::PagingMode::osdp));
    auto &k = sys.kernel();
    auto mf = sys.mapDataset("f", 8192);

    // Touch pages with writes so evicted pages are dirty.
    struct WriteLoad : workloads::Workload
    {
        os::Vma *vma;
        std::uint64_t n = 0;
        explicit WriteLoad(os::Vma *vma) : vma(vma) {}
        workloads::Op
        next(sim::Rng &rng) override
        {
            if (n++ >= 3000)
                return workloads::Op::makeDone();
            VAddr a = vma->start + rng.range(vma->numPages()) * pageSize;
            return workloads::Op::makeMem(a, true, true);
        }
        const char *label() const override { return "writeload"; }
    };
    auto *wl = sys.makeWorkload<WriteLoad>(mf.vma);
    sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(30.0)));
    EXPECT_GT(k.reclaimer().pagesWrittenBack(), 100u);
    EXPECT_GT(sys.ssd().writesCompleted(), 100u);
}

TEST(Reclaim, ReferencedPagesGetSecondChance)
{
    system::System sys(tinyConfig(system::PagingMode::osdp));
    auto mf = sys.mapDataset("f", 8192);

    // A load with a strong hot set: hot pages must survive eviction.
    struct SkewLoad : workloads::Workload
    {
        os::Vma *vma;
        std::uint64_t n = 0;
        explicit SkewLoad(os::Vma *vma) : vma(vma) {}
        workloads::Op
        next(sim::Rng &rng) override
        {
            if (n++ >= 6000)
                return workloads::Op::makeDone();
            // 60% of accesses to 16 hot pages, rest uniform.
            std::uint64_t page = rng.chance(0.6)
                                     ? rng.range(16)
                                     : rng.range(vma->numPages());
            return workloads::Op::makeMem(vma->start + page * pageSize,
                                          false, true);
        }
        const char *label() const override { return "skew"; }
    };
    auto *wl = sys.makeWorkload<SkewLoad>(mf.vma);
    auto *tc = sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(30.0)));

    // The hot pages should be resident at the end despite heavy churn.
    int resident = 0;
    for (int i = 0; i < 16; ++i) {
        if (os::pte::isPresent(
                mf.as->pageTable().readPte(mf.vma->start + i * pageSize)))
            ++resident;
    }
    EXPECT_GE(resident, 12);
    (void)tc;
}

TEST(Reclaim, WatermarksComeFromConfig)
{
    system::System sys(tinyConfig(system::PagingMode::osdp));
    auto &r = sys.kernel().reclaimer();
    EXPECT_GT(r.highWatermark(), r.lowWatermark());
}

/**
 * @file
 * Tests for the kernel model: fast mmap population, page installs,
 * hardware-handled metadata sync, WAL writes, fork-revert and the
 * remap listener.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "system/system.hh"
#include "workloads/fio.hh"

using namespace hwdp;
using namespace hwdp::os;

namespace {

system::MachineConfig
tinyConfig(system::PagingMode mode)
{
    system::MachineConfig cfg;
    cfg.mode = mode;
    cfg.nLogical = 4;
    cfg.nPhysical = 2;
    cfg.memFrames = 4096;
    cfg.smu.freeQueueCapacity = 128;
    return cfg;
}

} // namespace

TEST(Kernel, FastMmapPopulatesLbaPtes)
{
    system::System sys(tinyConfig(system::PagingMode::hwdp));
    auto mf = sys.mapDataset("f", 64);
    for (std::uint64_t i = 0; i < 64; ++i) {
        pte::Entry e =
            mf.as->pageTable().readPte(mf.vma->start + i * pageSize);
        ASSERT_TRUE(pte::isLbaAugmented(e)) << "page " << i;
        EXPECT_EQ(pte::lbaOf(e), mf.file->lbaOf(i));
        EXPECT_EQ(pte::socketIdOf(e), 0u);
    }
    EXPECT_TRUE(mf.file->lbaAugmentedMapping());
}

TEST(Kernel, PlainMmapLeavesPtesEmpty)
{
    system::System sys(tinyConfig(system::PagingMode::osdp));
    auto mf = sys.mapDataset("f", 64);
    for (std::uint64_t i = 0; i < 64; ++i)
        EXPECT_EQ(mf.as->pageTable().readPte(mf.vma->start + i *
                                             pageSize),
                  0u);
}

TEST(Kernel, FastMmapLinksCachedPages)
{
    system::System sys(tinyConfig(system::PagingMode::hwdp));
    auto &k = sys.kernel();
    // Pre-populate the page cache with one page of the file, then map.
    auto *file = sys.createFile("f", 64);
    Pfn pfn = sys.physMem().alloc();
    Page &pg = k.page(pfn);
    pg.inUse = true;
    pg.file = file;
    pg.index = 5;
    pg.inPageCache = true;
    k.pageCache().insert(*file, 5, pfn);

    auto *as = k.createAddressSpace();
    Vma *vma = k.mmapFileSync(*as, *file, true);
    pte::Entry e = as->pageTable().readPte(vma->start + 5 * pageSize);
    EXPECT_TRUE(pte::isPresent(e));
    EXPECT_EQ(pte::pfnOf(e), pfn);
    EXPECT_EQ(pg.as, as);
}

TEST(Kernel, InstallPageSyncedWiresAllMetadata)
{
    system::System sys(tinyConfig(system::PagingMode::osdp));
    auto &k = sys.kernel();
    auto mf = sys.mapDataset("f", 64);
    Pfn pfn = sys.physMem().alloc();
    VAddr va = mf.vma->start + 3 * pageSize;
    k.installPage(*mf.as, *mf.vma, va, pfn, true);

    Page &pg = k.page(pfn);
    EXPECT_TRUE(pg.inUse);
    EXPECT_TRUE(pg.inPageCache);
    EXPECT_TRUE(pg.lruLinked);
    EXPECT_EQ(pg.as, mf.as);
    EXPECT_EQ(k.pageCache().lookup(*mf.file, 3), pfn);
    pte::Entry e = mf.as->pageTable().readPte(va);
    EXPECT_TRUE(pte::isPresent(e));
    EXPECT_FALSE(pte::hasLbaBit(e));
}

TEST(Kernel, InstallHardwareHandledDefersMetadata)
{
    system::System sys(tinyConfig(system::PagingMode::hwdp));
    auto &k = sys.kernel();
    auto mf = sys.mapDataset("f", 64);
    Pfn pfn = sys.physMem().alloc();
    VAddr va = mf.vma->start + 3 * pageSize;
    k.installHardwareHandled(*mf.as, *mf.vma, va, pfn);

    // PTE present with LBA bit kept; upper levels marked; *no* OS
    // metadata yet (Table I row 3).
    pte::Entry e = mf.as->pageTable().readPte(va);
    EXPECT_TRUE(pte::needsMetadataSync(e));
    auto refs = mf.as->pageTable().walkRefs(va, false);
    EXPECT_TRUE(pte::hasLbaBit(refs.pmd.value()));
    EXPECT_TRUE(pte::hasLbaBit(refs.pud.value()));
    Page &pg = k.page(pfn);
    EXPECT_FALSE(pg.inPageCache);
    EXPECT_FALSE(pg.lruLinked);
    EXPECT_EQ(pg.as, nullptr);
    EXPECT_EQ(k.pageCache().lookup(*mf.file, 3), PageCache::noFrame);

    // Now synchronise it the way kpted does.
    k.syncHardwareHandledPte(*mf.as, va, refs.pte);
    EXPECT_FALSE(pte::needsMetadataSync(refs.pte.value()));
    EXPECT_TRUE(pg.inPageCache);
    EXPECT_TRUE(pg.lruLinked);
    EXPECT_EQ(pg.as, mf.as);
    EXPECT_EQ(k.pageCache().lookup(*mf.file, 3), pfn);
}

TEST(Kernel, SyncOfNormalPtePanics)
{
    system::System sys(tinyConfig(system::PagingMode::hwdp));
    auto &k = sys.kernel();
    auto mf = sys.mapDataset("f", 64);
    Pfn pfn = sys.physMem().alloc();
    VAddr va = mf.vma->start;
    k.installPage(*mf.as, *mf.vma, va, pfn, true);
    auto refs = mf.as->pageTable().walkRefs(va, false);
    EXPECT_THROW(k.syncHardwareHandledPte(*mf.as, va, refs.pte),
                 PanicError);
}

TEST(Kernel, FreePageReturnsFrameAndClearsMetadata)
{
    system::System sys(tinyConfig(system::PagingMode::osdp));
    auto &k = sys.kernel();
    auto mf = sys.mapDataset("f", 64);
    Pfn pfn = sys.physMem().alloc();
    k.installPage(*mf.as, *mf.vma, mf.vma->start, pfn, true);
    auto free_before = sys.physMem().freeFrames();

    // Unmap first (freePage expects an unmapped page).
    k.rmap().unmapForEviction(k.page(pfn));
    k.freePage(k.page(pfn));
    EXPECT_EQ(sys.physMem().freeFrames(), free_before + 1);
    EXPECT_FALSE(k.page(pfn).inUse);
    EXPECT_EQ(k.pageCache().lookup(*mf.file, 0), PageCache::noFrame);
}

TEST(Kernel, DoubleFreePagePanics)
{
    system::System sys(tinyConfig(system::PagingMode::osdp));
    auto &k = sys.kernel();
    Pfn pfn = sys.physMem().alloc();
    k.page(pfn).inUse = true;
    k.freePage(k.page(pfn));
    EXPECT_THROW(k.freePage(k.page(pfn)), PanicError);
}

TEST(Kernel, RemapListenerPatchesLbaPtes)
{
    system::System sys(tinyConfig(system::PagingMode::hwdp));
    auto &k = sys.kernel();
    auto mf = sys.mapDataset("f", 64);
    VAddr va = mf.vma->start + 9 * pageSize;
    ASSERT_TRUE(pte::isLbaAugmented(mf.as->pageTable().readPte(va)));

    // A CoW/log-structured update relocates block 9.
    k.fs().remapPage(*mf.file, 9);
    pte::Entry e = mf.as->pageTable().readPte(va);
    EXPECT_TRUE(pte::isLbaAugmented(e));
    EXPECT_EQ(pte::lbaOf(e), mf.file->lbaOf(9));
}

TEST(Kernel, ForkRevertsLbaPtes)
{
    system::System sys(tinyConfig(system::PagingMode::hwdp));
    auto &k = sys.kernel();
    auto mf = sys.mapDataset("f", 64);

    // One page resident via the hardware path (unsynced).
    Pfn pfn = sys.physMem().alloc();
    k.installHardwareHandled(*mf.as, *mf.vma, mf.vma->start, pfn);

    k.forkRevert(*mf.as);

    // LBA-augmented PTEs became plain non-present (OS-handled)...
    for (std::uint64_t i = 1; i < 64; ++i) {
        pte::Entry e =
            mf.as->pageTable().readPte(mf.vma->start + i * pageSize);
        EXPECT_TRUE(pte::isOsHandledMiss(e)) << "page " << i;
    }
    // ...and the resident hardware-handled page was synchronised.
    pte::Entry e0 = mf.as->pageTable().readPte(mf.vma->start);
    EXPECT_TRUE(pte::isPresent(e0));
    EXPECT_FALSE(pte::hasLbaBit(e0));
    EXPECT_TRUE(k.page(pfn).inPageCache);
    EXPECT_FALSE(mf.vma->fastMmap);
}

TEST(Kernel, UnknownDevicePanics)
{
    system::System sys(tinyConfig(system::PagingMode::osdp));
    EXPECT_THROW(sys.kernel().deviceIndexOf(BlockDeviceId{5, 5}),
                 PanicError);
}

TEST(Kernel, WriteFileCutsWritebackIos)
{
    system::System sys(tinyConfig(system::PagingMode::osdp));
    auto &k = sys.kernel();
    auto *wal = sys.createFile("wal", 256);

    struct Idle : workloads::Workload
    {
        workloads::Op next(sim::Rng &) override
        {
            return workloads::Op::makeDone();
        }
        const char *label() const override { return "idle"; }
    };
    auto *w = sys.makeWorkload<Idle>();
    auto *as = k.createAddressSpace();
    auto *tc = sys.addThread(*w, 0, *as);

    sys.start();
    int writes_done = 0;
    // Two 2 KB writes fill one 4 KB chunk -> exactly one write I/O.
    k.writeFile(*tc, *wal, 0, 2048, [&] { ++writes_done; });
    k.writeFile(*tc, *wal, 1, 2048, [&] { ++writes_done; });
    sys.eventQueue().run(seconds(1.0));
    EXPECT_EQ(writes_done, 2);
    EXPECT_EQ(sys.ssd().writesCompleted(), 1u);
}

/**
 * @file
 * Parallel simulation mode: host scaling curve and identity gate.
 *
 * One heavy 8-simulated-core machine (large compute bursts whose data
 * runs cross the sharded-dispatch threshold, plus demand paging to
 * keep the kernel pollution engine busy) is run to completion at
 * simThreads in {1, 2, 4, 8}. Every run's final machine state must
 * hash identically — the point of the mode is that host lanes are
 * invisible to the simulation — and each point reports the median of
 * N repeats for both wall clock and steal-immune process CPU time
 * (getrusage), the BENCH_parallel.json protocol.
 *
 * The speedup claim is a wall-clock claim and needs free host cores:
 * on a 1-core host every simThreads > 1 point degrades (same work +
 * coordination on one lane), which the JSON records honestly.
 */

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hh"
#include "bench/host_timing.hh"
#include "testing/machine_differ.hh"

using namespace hwdp;

namespace {

/**
 * Heavy bursts: ~6k data lines per burst (well past the 1024-line
 * sharded threshold), ~7.5k branches (past the async side-lane
 * threshold), with a paged read every few bursts so faults and the
 * kernel pollution engine stay in the loop.
 */
class HeavyBurstWorkload : public workloads::Workload
{
  public:
    HeavyBurstWorkload(os::Vma *vma, std::uint64_t pages,
                       std::uint64_t n_ops)
        : vma(vma), pages(pages), remaining(n_ops)
    {
        spec.instructions = 50000;
        spec.memRefFrac = 0.12;
        spec.branchFrac = 0.15;
        spec.coldBytes = 8 * 1024 * 1024;
        spec.coldFrac = 0.2;
        spec.staticBranches = 256;
    }

    workloads::Op
    next(sim::Rng &rng) override
    {
        if (remaining == 0)
            return workloads::Op::makeDone();
        --remaining;
        if (++seq % 4 == 0) {
            VAddr va = vma->start + rng.range(pages) * pageSize;
            return workloads::Op::makeMem(va, false, true);
        }
        return workloads::Op::makeCompute(spec, true);
    }

    const char *label() const override { return "heavy"; }

  private:
    os::Vma *vma;
    std::uint64_t pages;
    std::uint64_t remaining;
    std::uint64_t seq = 0;
    workloads::ComputeSpec spec;
};

struct PointOut
{
    std::uint64_t stateHash = 0;
    std::uint64_t appOps = 0;
    std::uint64_t finalTick = 0;
};

PointOut
runPoint(unsigned sim_threads)
{
    auto cfg = bench::paperConfig(system::PagingMode::hwdp);
    cfg.nLogical = 8;
    cfg.nPhysical = 8; // 8 busy simulated cores, no SMT sharing
    cfg.simThreads = sim_threads;
    cfg.memFrames = 32 * 1024;
    system::System sys(cfg);
    std::uint64_t pages = 64 * 1024;
    auto mf = sys.mapDataset("heavy.dat", pages);
    for (unsigned t = 0; t < 8; ++t) {
        auto *wl = sys.makeWorkload<HeavyBurstWorkload>(mf.vma, pages,
                                                        500);
        sys.addThread(*wl, t, *mf.as);
    }
    sys.runUntilThreadsDone(seconds(120.0));
    testing::quiesce(sys);
    auto snap = testing::snapshot(sys, "parallel_scaling");
    PointOut o;
    o.stateHash = snap.stateHash;
    o.appOps = sys.totalAppOps();
    o.finalTick = sys.now();
    return o;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned repeats = 3;
    if (argc > 1)
        repeats = static_cast<unsigned>(std::atoi(argv[1]));
    if (repeats == 0)
        repeats = 1;

    unsigned host = std::thread::hardware_concurrency();
    metrics::banner(
        "Parallel simulation mode: scaling curve",
        "one machine, simThreads sweep; state must hash identically");
    std::printf("host hardware concurrency: %u, repeats per point: %u "
                "(median of wall and CPU reported)\n\n",
                host, repeats);

    const unsigned points[] = {1, 2, 4, 8};
    std::vector<bench::TimedRun> timing(std::size(points));
    std::vector<PointOut> out(std::size(points));

    for (std::size_t p = 0; p < std::size(points); ++p) {
        timing[p] = bench::medianOfRuns(repeats, [&] {
            out[p] = runPoint(points[p]);
        });
    }

    bool identical = true;
    for (std::size_t p = 1; p < std::size(points); ++p) {
        if (out[p].stateHash != out[0].stateHash ||
            out[p].finalTick != out[0].finalTick)
            identical = false;
    }

    metrics::Table t({"simThreads", "wall s (median)", "cpu s (median)",
                      "wall speedup", "state hash"});
    char hash[32];
    for (std::size_t p = 0; p < std::size(points); ++p) {
        std::snprintf(hash, sizeof(hash), "%016llx",
                      static_cast<unsigned long long>(out[p].stateHash));
        t.addRow({std::to_string(points[p]),
                  metrics::Table::num(timing[p].wallSec, 3),
                  metrics::Table::num(timing[p].cpuSec, 3),
                  metrics::Table::num(timing[0].wallSec /
                                      timing[p].wallSec) +
                      "x",
                  hash});
    }
    t.print();
    std::printf("\nbit-identical state across simThreads: %s\n",
                identical ? "yes" : "NO — DETERMINISM VIOLATION");

    std::printf("{\"bench\": \"parallel_scaling\", \"host_cores\": %u, "
                "\"repeats\": %u, \"identical\": %s",
                host, repeats, identical ? "true" : "false");
    for (std::size_t p = 0; p < std::size(points); ++p) {
        std::printf(", \"t%u_wall_s\": %.3f, \"t%u_cpu_s\": %.3f",
                    points[p], timing[p].wallSec, points[p],
                    timing[p].cpuSec);
    }
    std::printf("}\n");
    return identical ? 0 : 1;
}

#include "cpu/mmu.hh"

#include <unordered_map>

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::cpu {

void
Mmu::serialize(sim::Serializer &s)
{
    s.section("mmu");
    tlbUnit.serialize(s);
    walkUnit.serialize(s);

    // Pending-node pool: all nodes must be idle at quiesce. The node
    // generations and the free-list order steer stale-timeout
    // detection and node reuse, so they round-trip to keep a forked
    // run on the identical path.
    std::uint64_t nNodes = pendingPool.size();
    s.io(nNodes);
    if (s.loading()) {
        if (pendingPool.size() > nNodes)
            throw sim::SerializeError(
                "restore: mmu pending pool larger than checkpointed");
        while (pendingPool.size() < nNodes)
            pendingPool.push_back(std::make_unique<Pending>());
    }
    for (auto &up : pendingPool)
        s.io(up->gen);
    std::vector<std::uint64_t> freeIdx;
    if (s.saving()) {
        std::unordered_map<Pending *, std::uint64_t> idx;
        for (std::uint64_t i = 0; i < pendingPool.size(); ++i)
            idx[pendingPool[i].get()] = i;
        for (Pending *p = pendingFree; p; p = p->nextFree)
            freeIdx.push_back(idx.at(p));
        if (freeIdx.size() != pendingPool.size())
            throw sim::SerializeError(
                "checkpoint: mmu access in flight; quiesce the machine "
                "first");
    }
    s.io(freeIdx);
    if (s.loading()) {
        if (freeIdx.size() != pendingPool.size())
            throw sim::SerializeError(
                "restore: mmu free-list does not cover the pool");
        pendingFree = nullptr;
        for (auto it = freeIdx.rbegin(); it != freeIdx.rend(); ++it) {
            Pending *p = pendingPool.at(*it).get();
            p->nextFree = pendingFree;
            pendingFree = p;
        }
    }
    // Guarded so single-socket blobs keep the pre-NUMA layout.
    if (numaPm)
        s.io(nRemoteDram);
    stats().serialize(s);
}

Mmu::Mmu(std::string name, sim::EventQueue &eq, unsigned logical_core,
         mem::CacheHierarchy &caches, os::Kernel &kernel,
         Tick cycle_period, unsigned pwc_entries)
    : sim::SimObject(std::move(name), eq), core(logical_core),
      physCore(kernel.scheduler().physCoreOf(logical_core)),
      caches(caches), kernel(kernel), period(cycle_period),
      // Wide (NAPOT / 2 MB) TLB entries exist only when the kernel can
      // produce wide PTEs; off keeps the 4 KB-only TLB bit for bit.
      tlbUnit(64, 1536, 8, 8, kernel.pageMode() != PageMode::off),
      walkUnit(caches, physCore, cycle_period, pwc_entries),
      smus(8, nullptr),
      statAccesses(stats().counter("accesses", "memory accesses")),
      statHwMiss(stats().counter("hw_misses",
                                 "page misses sent to an SMU")),
      statOsFault(stats().counter("os_faults",
                                  "page misses raised as exceptions")),
      statSmuReject(stats().counter(
          "smu_rejections", "SMU bounces (queue empty / PMSHR full)")),
      statTimeout(stats().counter(
          "stall_timeouts",
          "hardware stalls converted to context switches"))
{
}

void
Mmu::attachSmu(unsigned sid, PageMissHandlerIface *smu)
{
    if (sid >= smus.size())
        fatal("mmu: socket id ", sid, " out of range");
    smus[sid] = smu;
}

Tick
Mmu::dataAccess(VAddr vaddr, Pfn pfn, bool is_write)
{
    PAddr paddr = (static_cast<PAddr>(pfn) << pageShift) |
                  (vaddr & pageOffsetMask);
    auto res = caches.access(physCore, paddr, false, ExecMode::user);
    Cycles lat = res.latency;
    // NUMA: only an access the caches could not satisfy travels to
    // DRAM; when the frame's home node is not this core's socket it
    // pays the interconnect hop. Single-socket machines never wire
    // numaPm, leaving this path untouched.
    if (numaPm && res.llcMiss && numaPm->socketOf(pfn) != mySocket) {
        lat += numaRemoteExtra;
        ++nRemoteDram;
    }
    if (is_write) {
        // The hardware would set the PTE/TLB dirty state on the first
        // write; the model tracks it on the page for reclaim.
        kernel.page(pfn).dirty = true;
    }
    return lat * period;
}

Mmu::Pending *
Mmu::acquirePending()
{
    if (pendingFree) {
        Pending *p = pendingFree;
        pendingFree = p->nextFree;
        return p;
    }
    pendingPool.push_back(std::make_unique<Pending>());
    return pendingPool.back().get();
}

void
Mmu::releasePending(Pending *p)
{
    // Bump the generation so a still-scheduled stall-timeout event
    // for this node recognises the access as gone.
    ++p->gen;
    p->sink = nullptr;
    p->nextFree = pendingFree;
    pendingFree = p;
}

bool
Mmu::access(os::Thread &t, os::AddressSpace &as, VAddr vaddr,
            bool is_write, Tick defer, AccessSink &sink, AccessInfo &out)
{
    ++statAccesses;

    // 1. TLB.
    Tlb::Result tr = tlbUnit.lookup(vaddr);
    if (tr.hit) {
        out = AccessInfo{};
        out.latency = (tr.l1Hit ? Tick(0) : 4 * period) + // L2 STLB
                      dataAccess(vaddr, tr.pfn, is_write);
        return true;
    }

    // 2. Page-table walk.
    Walker::Outcome wo = walkUnit.walk(as, vaddr);
    if (wo.kind == Walker::Classification::present) {
        // The entry may be a wide translation (2 MB leaf or NAPOT
        // range): the TLB caches its base at full reach, while the
        // data access uses the exact covered frame. reach = 0 keeps
        // the pre-huge-page behaviour bit for bit.
        unsigned reach = os::pte::reachOf(wo.entry);
        Pfn base = os::pte::pfnOf(wo.entry) >> reach << reach;
        Pfn pfn =
            base + ((vaddr >> pageShift) & ((1ULL << reach) - 1));
        tlbUnit.insert(vaddr, base, reach);
        out = AccessInfo{};
        out.latency = wo.latency + dataAccess(vaddr, pfn, is_write);
        return true;
    }

    // 3. Page miss: park the access and engage the slow path.
    Pending *p = acquirePending();
    p->t = &t;
    p->as = &as;
    p->vaddr = vaddr;
    p->write = is_write;
    p->start = now() + defer;
    p->info = AccessInfo{};
    p->attempts = 0;
    p->sink = &sink;
    startMiss(p, wo, defer);
    return false;
}

void
Mmu::access(os::Thread &t, os::AddressSpace &as, VAddr vaddr,
            bool is_write, std::function<void(AccessInfo)> done)
{
    // Adapter for callback-style callers: a self-deleting sink that
    // delivers the synchronous-completion case through an event, so
    // the callback always runs after the access latency has elapsed
    // (the pre-fast-path contract).
    struct FnSink final : AccessSink
    {
        std::function<void(AccessInfo)> fn;

        void
        accessDone(const AccessInfo &info) override
        {
            auto f = std::move(fn);
            delete this;
            f(info);
        }
    };
    auto *s = new FnSink;
    s->fn = std::move(done);

    AccessInfo out;
    if (access(t, as, vaddr, is_write, 0, *s, out)) {
        eq.postIn(out.latency,
                  [s, out] { s->accessDone(out); },
                  "mmu.hit");
    }
}

void
Mmu::startMiss(Pending *p, const Walker::Outcome &out, Tick defer)
{
    Tick wl = out.latency;

    if (out.kind == Walker::Classification::hwMiss) {
        unsigned sid = os::pte::socketIdOf(out.entry);
        PageMissHandlerIface *smu = sid < smus.size() ? smus[sid]
                                                      : nullptr;
        if (smu) {
            ++statHwMiss;
            p->info.faulted = true;
            // Pipeline stall: the thread keeps the core but consumes
            // no issue slots (SMT sibling benefits, Figure 16).
            kernel.scheduler().setHwStalled(core, true);
            p->completed = false;
            p->switched = false;

            PageMissRequest req;
            req.refs = out.refs;
            req.sid = sid;
            req.dev = os::pte::deviceIdOf(out.entry);
            req.lba = os::pte::lbaOf(out.entry);
            req.as = p->as;
            req.vaddr = p->vaddr & ~pageOffsetMask;
            req.core = core;
            req.done = [this, p](bool success) { missDone(p, success); };

            // Posted before the request is delivered: the timeout's
            // tick is strictly later than the request's (stallTimeout
            // > 0), so firing order is unaffected, and the inline
            // fast path below may post chain events immediately —
            // keeping the timeout's queue position ahead of them
            // matches where the reference path put it.
            if (stallTimeout > 0) {
                eq.postIn(defer + wl + stallTimeout,
                          [this, p, gen = p->gen, att = p->attempts] {
                              stallTimeoutFired(p, gen, att);
                          },
                          "mmu.stallTimeout");
            }

            // Inline fast path: the SMU runs the whole lookup now, on
            // the logical clock, when its timing gate proves nothing
            // else can execute first. Declined (or disabled) misses
            // take the reference event.
            Tick t_req = now() + defer + wl;
            if (smu->handleMissAt(req, t_req))
                return;
            eq.postIn(defer + wl,
                      [smu, req = std::move(req)]() mutable {
                          smu->handleMiss(std::move(req));
                      },
                      "mmu.smureq");
            return;
        }
        // LBA-augmented PTE but no SMU for the socket: fall through to
        // the OS (it can always service a file-backed fault).
    }

    // Conventional exception.
    ++statOsFault;
    p->info.faulted = true;
    eq.postIn(defer + wl,
              [this, p] {
                  kernel.handlePageFault(*p->t, *p->as, p->vaddr,
                                         p->write, false,
                                         [this, p] { retry(p); });
              },
              "mmu.exception");
}

void
Mmu::retry(Pending *p)
{
    if (++p->attempts > 8)
        panic("mmu: access at ", p->vaddr, " not making progress");

    Tlb::Result tr = tlbUnit.lookup(p->vaddr);
    if (tr.hit) {
        Tick lat = (tr.l1Hit ? Tick(0) : 4 * period) +
                   dataAccess(p->vaddr, tr.pfn, p->write);
        complete(p, lat, "mmu.hit");
        return;
    }

    Walker::Outcome wo = walkUnit.walk(*p->as, p->vaddr);
    if (wo.kind == Walker::Classification::present) {
        unsigned reach = os::pte::reachOf(wo.entry);
        Pfn base = os::pte::pfnOf(wo.entry) >> reach << reach;
        Pfn pfn =
            base + ((p->vaddr >> pageShift) & ((1ULL << reach) - 1));
        tlbUnit.insert(p->vaddr, base, reach);
        complete(p, wo.latency + dataAccess(p->vaddr, pfn, p->write),
                 "mmu.walked");
        return;
    }
    startMiss(p, wo, 0);
}

void
Mmu::complete(Pending *p, Tick lat, const char *ev_name)
{
    p->info.latency = (now() + lat) - p->start;
    AccessSink *sink = p->sink;
    AccessInfo info = p->info;
    releasePending(p);
    eq.postIn(lat, [sink, info] { sink->accessDone(info); }, ev_name);
}

void
Mmu::missDone(Pending *p, bool success)
{
    p->completed = true;
    kernel.scheduler().setHwStalled(core, false);

    if (p->switched) {
        // The thread timed out and was descheduled: wake it and
        // continue in its context.
        p->lastSuccess = success;
        p->t->setResumeAction([this, p] { resumeMiss(p, p->lastSuccess); });
        kernel.scheduler().wake(p->t);
    } else {
        resumeMiss(p, success);
    }
}

void
Mmu::resumeMiss(Pending *p, bool success)
{
    if (success) {
        p->info.hwHandled = true;
        retry(p);
    } else {
        // SMU bounce: raise the exception after all (Section III-C,
        // free page queue empty).
        ++statSmuReject;
        kernel.handlePageFault(*p->t, *p->as, p->vaddr, p->write, true,
                               [this, p] { retry(p); });
    }
}

void
Mmu::stallTimeoutFired(Pending *p, std::uint32_t gen, unsigned att)
{
    // The node may have been recycled for another access, or this
    // access may have been bounced into a later SMU engagement; both
    // make this timeout stale.
    if (p->gen != gen || p->attempts != att)
        return;
    if (p->completed || p->switched)
        return;
    // Timeout exception: stop wasting the core and switch out;
    // block() charges the switch.
    p->switched = true;
    ++statTimeout;
    kernel.scheduler().setHwStalled(core, false);
    kernel.scheduler().kernelExec().run(physCore,
                                        os::phases::exceptionEntry);
    kernel.scheduler().block(p->t);
}

} // namespace hwdp::cpu

/**
 * @file
 * Bit-identity of the batched pollution engine against the per-line
 * reference path, at three levels: the cache-array batch API under
 * randomized and adversarial (set-colliding, aliasing) runs, the
 * level-major hierarchy descent, the bulk RNG / branch-predictor
 * streams, and whole-machine differential runs with pollution
 * batching toggled — clean and under an injected fault plan.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "mem/branch_predictor.hh"
#include "mem/cache_array.hh"
#include "mem/cache_hierarchy.hh"
#include "sim/rng.hh"
#include "system/system.hh"
#include "testing/fault_plan.hh"
#include "testing/machine_differ.hh"
#include "workloads/fio.hh"
#include "workloads/kv_store.hh"
#include "workloads/ycsb.hh"

using namespace hwdp;
using namespace hwdp::mem;
namespace ht = hwdp::testing;

namespace {

/** Drive one run through both paths and require identical everything. */
void
expectBatchMatchesPerLine(CacheArray &batch, CacheArray &ref,
                          const std::vector<std::uint64_t> &run)
{
    std::vector<std::uint64_t> miss_out(run.size() + 1, 0xdead);
    std::vector<std::uint64_t> bitmap((run.size() + 63) / 64 + 1,
                                      0xdead);
    std::size_t hits = batch.accessBatch(run.data(), run.size(),
                                         miss_out.data(), bitmap.data());

    std::size_t ref_hits = 0;
    std::vector<std::uint64_t> ref_miss;
    std::vector<std::uint64_t> ref_bitmap((run.size() + 63) / 64, 0);
    for (std::size_t i = 0; i < run.size(); ++i) {
        if (ref.access(run[i])) {
            ++ref_hits;
            ref_bitmap[i / 64] |= std::uint64_t(1) << (i % 64);
        } else {
            ref_miss.push_back(run[i]);
        }
    }

    ASSERT_EQ(hits, ref_hits);
    ASSERT_EQ(batch.hitCount(), ref.hitCount());
    ASSERT_EQ(batch.missCount(), ref.missCount());
    ASSERT_EQ(batch.occupancy(), ref.occupancy());
    // Full post-state: every tag and every LRU stamp.
    ASSERT_EQ(batch.rawMeta(), ref.rawMeta());
    // Miss list: the missing addresses, compacted, in run order. (The
    // branchless compactor may scribble one slot past the last miss —
    // the contract requires n words of room — so only the compacted
    // prefix is meaningful.)
    for (std::size_t m = 0; m < ref_miss.size(); ++m)
        ASSERT_EQ(miss_out[m], ref_miss[m]) << "miss slot " << m;
    for (std::size_t w = 0; w < ref_bitmap.size(); ++w)
        ASSERT_EQ(bitmap[w], ref_bitmap[w]) << "bitmap word " << w;
}

} // namespace

TEST(PollutionBatch, FuzzRandomRunsAllGeometries)
{
    struct Geo
    {
        std::uint64_t bytes;
        unsigned assoc;
    };
    // The paper machine's L1/L2/LLC geometries plus a narrow oddball.
    const Geo geos[] = {
        {32 * 1024, 8},
        {256 * 1024, 8},
        {20 * 64 * 1024, 20}, // LLC associativity, 1024 sets
        {4096, 4}};
    for (const Geo &g : geos) {
        CacheArray batch("b", g.bytes, g.assoc);
        CacheArray ref("r", g.bytes, g.assoc);
        sim::Rng rng(0xf005ba11 + g.assoc);
        for (int round = 0; round < 40; ++round) {
            std::size_t len = 1 + rng.range(200);
            std::vector<std::uint64_t> run;
            // Confine the rounds to few sets/tags so runs collide in
            // sets, repeat lines, and alias tags heavily.
            std::uint64_t tags = 1 + rng.range(3 * g.assoc);
            std::uint64_t sets = 1 + rng.range(8);
            for (std::size_t i = 0; i < len; ++i) {
                std::uint64_t set = rng.range(sets);
                std::uint64_t tag = rng.range(tags);
                run.push_back(tag * g.bytes / g.assoc + set * 64 +
                              rng.range(64));
            }
            expectBatchMatchesPerLine(batch, ref, run);
        }
    }
}

TEST(PollutionBatch, ForcedSingleSetCollisionRuns)
{
    // Every line in the run maps to one set; runs longer than the
    // associativity force evictions of lines installed earlier in the
    // same batch call, the case a reordering batcher would get wrong.
    CacheArray batch("b", 32 * 1024, 8);
    CacheArray ref("r", 32 * 1024, 8);
    std::uint64_t set_stride = batch.numSets() * batch.lineBytes();
    std::vector<std::uint64_t> run;
    for (int i = 0; i < 20; ++i)
        run.push_back(static_cast<std::uint64_t>(i) * set_stride);
    expectBatchMatchesPerLine(batch, ref, run);

    // Same line repeated back-to-back: the second access must hit the
    // installation made one position earlier in the same batch.
    run.assign(12, 7 * set_stride);
    expectBatchMatchesPerLine(batch, ref, run);

    // Re-run the eviction pattern now that the set is full.
    run.clear();
    for (int i = 0; i < 20; ++i)
        run.push_back(static_cast<std::uint64_t>(19 - i) * set_stride);
    expectBatchMatchesPerLine(batch, ref, run);
}

TEST(PollutionBatch, RenormalizationBoundariesPreserved)
{
    // 4 KB, 8-way: 8 sets, 6 + 3 = 9 stamp bits, so the LRU clock
    // saturates every 511 accesses. Long batches must renormalise at
    // the same access indices as the per-line walk — drive several
    // multiples of the period through both paths in one batch call.
    CacheArray batch("b", 4096, 8);
    CacheArray ref("r", 4096, 8);
    sim::Rng rng(42);
    std::vector<std::uint64_t> run;
    for (int i = 0; i < 4000; ++i)
        run.push_back(rng.range(64) * 64);
    expectBatchMatchesPerLine(batch, ref, run);
    // And again from non-zero clock offsets.
    for (int rep = 0; rep < 3; ++rep) {
        run.clear();
        std::size_t len = 300 + rng.range(700);
        for (std::size_t i = 0; i < len; ++i)
            run.push_back(rng.range(80) * 64);
        expectBatchMatchesPerLine(batch, ref, run);
    }
}

TEST(PollutionBatch, HierarchyLevelMajorMatchesPerLine)
{
    CacheParams cp;
    cp.llcBytes = 20 * 64 * 1024; // 20-way, 1024 sets: test-sized
    CacheHierarchy batch(2, cp);
    CacheHierarchy ref(2, cp);
    sim::Rng rng(0xca11ab1e);

    for (int round = 0; round < 30; ++round) {
        unsigned core = static_cast<unsigned>(rng.range(2));
        bool is_inst = rng.chance(0.5);
        auto mode = rng.chance(0.5) ? ExecMode::kernel : ExecMode::user;
        std::size_t len = 1 + rng.range(300);
        std::vector<std::uint64_t> run;
        for (std::size_t i = 0; i < len; ++i)
            run.push_back(rng.range(4096) * 64);

        CacheBatchResult br =
            batch.accessBatch(core, run.data(), len, is_inst, mode);
        std::uint64_t l1m = 0, l2m = 0, llcm = 0;
        Cycles lat = 0;
        for (auto a : run) {
            CacheAccessResult r = ref.access(core, a, is_inst, mode);
            l1m += r.l1Miss;
            l2m += r.l2Miss;
            llcm += r.llcMiss;
            lat += r.latency;
        }
        ASSERT_EQ(br.l1Misses, l1m);
        ASSERT_EQ(br.l2Misses, l2m);
        ASSERT_EQ(br.llcMisses, llcm);
        ASSERT_EQ(br.totalLatency, lat);
        for (auto m : {ExecMode::user, ExecMode::kernel}) {
            const auto &bc = batch.counters(m);
            const auto &rc = ref.counters(m);
            ASSERT_EQ(bc.l1iAccesses, rc.l1iAccesses);
            ASSERT_EQ(bc.l1iMisses, rc.l1iMisses);
            ASSERT_EQ(bc.l1dAccesses, rc.l1dAccesses);
            ASSERT_EQ(bc.l1dMisses, rc.l1dMisses);
            ASSERT_EQ(bc.l2Misses, rc.l2Misses);
            ASSERT_EQ(bc.llcMisses, rc.llcMisses);
        }
    }
}

TEST(PollutionBatch, RngFillMatchesSequentialChance)
{
    for (std::uint64_t seed : {1ull, 0x9e3779b97f4a7c15ull, 777ull}) {
        for (double p : {0.5, 0.3, 0.999, 0.0, 1.0}) {
            for (std::size_t n : {std::size_t(0), std::size_t(1),
                                  std::size_t(7), std::size_t(64),
                                  std::size_t(1000)}) {
                sim::Rng a(seed);
                sim::Rng b(seed);
                std::vector<std::uint8_t> out(n + 1, 0xcc);
                a.fill(p, out.data(), n);
                for (std::size_t i = 0; i < n; ++i)
                    ASSERT_EQ(out[i] != 0, b.chance(p))
                        << "seed " << seed << " p " << p << " i " << i;
                ASSERT_EQ(out[n], 0xcc);
                // Final generator state must match too: the next draw
                // after a batch equals the next draw after n singles.
                ASSERT_EQ(a.next(), b.next());
            }
        }
    }
}

TEST(PollutionBatch, BranchUpdateBatchMatchesSequential)
{
    BranchPredictor batch;
    BranchPredictor ref;
    sim::Rng rng(314159);
    std::vector<std::uint64_t> pcs;
    for (int i = 0; i < 1024; ++i)
        pcs.push_back(0xffffffff81000000ull + i * 16);

    for (int round = 0; round < 20; ++round) {
        // Cover n < n_pcs, n == n_pcs and several-wrap n > n_pcs.
        std::size_t n = 1 + rng.range(3000);
        std::vector<std::uint8_t> taken(n);
        rng.fill(0.5, taken.data(), n);
        auto mode = round % 2 ? ExecMode::kernel : ExecMode::user;

        std::uint64_t miss =
            batch.updateBatch(pcs.data(), pcs.size(), taken.data(), n,
                              mode);
        std::uint64_t ref_miss = 0;
        for (std::size_t i = 0; i < n; ++i)
            ref_miss += !ref.predictAndUpdate(pcs[i % pcs.size()],
                                              taken[i] != 0, mode);
        ASSERT_EQ(miss, ref_miss);
        for (auto m : {ExecMode::user, ExecMode::kernel}) {
            ASSERT_EQ(batch.lookups(m), ref.lookups(m));
            ASSERT_EQ(batch.mispredicts(m), ref.mispredicts(m));
        }
    }
    // The internal state (GHR + every PHT counter) must have tracked
    // exactly; a shared probe stream exposes any divergence.
    std::vector<std::uint8_t> probe(4096);
    sim::Rng prng(999);
    prng.fill(0.5, probe.data(), probe.size());
    std::uint64_t m1 = batch.updateBatch(pcs.data(), pcs.size(),
                                         probe.data(), probe.size(),
                                         ExecMode::user);
    std::uint64_t m2 = 0;
    for (std::size_t i = 0; i < probe.size(); ++i)
        m2 += !ref.predictAndUpdate(pcs[i % pcs.size()], probe[i] != 0,
                                    ExecMode::user);
    ASSERT_EQ(m1, m2);
}

namespace {

/** Whole-machine run with pollution batching on or off. */
std::string
runFioStats(system::PagingMode mode, bool pollution_batch,
            double fault_rate = 0.0)
{
    system::MachineConfig cfg;
    cfg.mode = mode;
    cfg.nLogical = 4;
    cfg.nPhysical = 2;
    cfg.memFrames = 32 * 1024;
    cfg.smu.freeQueueCapacity = 512;
    cfg.kpooldPeriod = milliseconds(1.0);
    cfg.kptedPeriod = milliseconds(4.0);
    cfg.pollutionBatch = pollution_batch;

    system::System sys(cfg);
    ht::FaultPlan plan("plan", sys.eventQueue(), 97);
    auto mf = sys.mapDataset("f", 8 * 1024);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 1200);
    sys.addThread(*wl, 0, *mf.as);
    if (fault_rate > 0.0) {
        plan.attach(sys);
        plan.armAllAtRate(fault_rate);
    }
    EXPECT_TRUE(sys.runUntilThreadsDone(seconds(30.0)));
    ht::quiesce(sys);

    std::ostringstream os;
    ht::dumpMachineStats(sys, os);
    // Fold in the observability the stats dump does not cover: IPC,
    // branch outcomes and the pollution probe accounting.
    os << sys.aggregateUserIpc() << ' ' << sys.userBranchMispredicts()
       << ' ' << sys.userBranchLookups() << ' '
       << sys.kernel().kexec().totalPollutionProbes() << ' '
       << sys.kernel().kexec().totalPollutionBranchUpdates();
    return os.str();
}

std::string
runYcsbStats(system::PagingMode mode, bool pollution_batch,
             double fault_rate = 0.0)
{
    system::MachineConfig cfg;
    cfg.mode = mode;
    cfg.nLogical = 4;
    cfg.nPhysical = 2;
    cfg.memFrames = 32 * 1024;
    cfg.smu.freeQueueCapacity = 512;
    cfg.kpooldPeriod = milliseconds(1.0);
    cfg.kptedPeriod = milliseconds(4.0);
    cfg.pollutionBatch = pollution_batch;

    system::System sys(cfg);
    ht::FaultPlan plan("plan", sys.eventQueue(), 101);
    auto mf = sys.mapDataset("data", 16 * 1024);
    auto *wal = sys.createFile("wal", 8 * 1024);
    auto store = std::make_unique<workloads::KvStore>(mf.vma, wal,
                                                      16 * 1024);
    auto *wl = sys.makeWorkload<workloads::YcsbWorkload>('A', *store,
                                                         1000);
    sys.addThread(*wl, 0, *mf.as);
    if (fault_rate > 0.0) {
        plan.attach(sys);
        plan.armAllAtRate(fault_rate);
    }
    EXPECT_TRUE(sys.runUntilThreadsDone(seconds(30.0)));
    ht::quiesce(sys);

    std::ostringstream os;
    ht::dumpMachineStats(sys, os);
    os << sys.aggregateUserIpc() << ' ' << sys.userBranchMispredicts()
       << ' ' << sys.userBranchLookups() << ' '
       << sys.kernel().kexec().totalPollutionProbes() << ' '
       << sys.kernel().kexec().totalPollutionBranchUpdates();
    return os.str();
}

} // namespace

TEST(PollutionBatch, FioStatsDumpIdenticalBatchOnOffAllModes)
{
    for (auto mode :
         {system::PagingMode::osdp, system::PagingMode::hwdp,
          system::PagingMode::swsmu}) {
        std::string on = runFioStats(mode, true);
        std::string off = runFioStats(mode, false);
        EXPECT_EQ(on, off) << "mode " << pagingModeName(mode);
    }
}

TEST(PollutionBatch, FioStatsDumpIdenticalUnderFaultPlan)
{
    std::string on = runFioStats(system::PagingMode::hwdp, true, 0.01);
    std::string off = runFioStats(system::PagingMode::hwdp, false, 0.01);
    EXPECT_EQ(on, off);
}

TEST(PollutionBatch, YcsbStatsDumpIdenticalBatchOnOff)
{
    std::string on = runYcsbStats(system::PagingMode::hwdp, true);
    std::string off = runYcsbStats(system::PagingMode::hwdp, false);
    EXPECT_EQ(on, off);

    std::string on_f =
        runYcsbStats(system::PagingMode::swsmu, true, 0.01);
    std::string off_f =
        runYcsbStats(system::PagingMode::swsmu, false, 0.01);
    EXPECT_EQ(on_f, off_f);
}

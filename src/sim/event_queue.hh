/**
 * @file
 * Discrete-event simulation core: Event, EventQueue and the pooled
 * one-shot event fast path.
 *
 * Events are scheduled at absolute ticks and processed in tick order;
 * events at the same tick run in scheduling (FIFO) order, which keeps
 * component interactions deterministic. Events are externally owned:
 * the queue never deletes them, so components can embed events as
 * members (the gem5 pattern). The exception is the pooled one-shot
 * path (post()/postIn()): those events belong to the queue's free-list
 * pool and are recycled after firing.
 *
 * The scheduler is two-tier. A bucketed near-horizon ring absorbs the
 * dense short-delay events that dominate the simulation (cache/DRAM
 * accesses, kernel-phase completions, SMU pipeline steps); each bucket
 * is a sorted-drain vector: in-order appends (the overwhelmingly
 * common case — components schedule forward in time) cost a push_back,
 * out-of-order appends accumulate in an unsorted appendix that is
 * sorted and merged once when the bucket starts draining. Far-future
 * timers (kpted/kpoold periods, multi-millisecond device latencies)
 * spill to a conventional binary heap and are merged at pop time by
 * (tick, seq) comparison, which preserves exact FIFO order across the
 * ring/heap boundary.
 */

#ifndef HWDP_SIM_EVENT_QUEUE_HH
#define HWDP_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <string>
#include <type_traits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace hwdp::sim {

class EventQueue;
class PooledEvent;
class Serializer;

/**
 * An occurrence scheduled on an EventQueue. Subclasses implement
 * process(). An event may be scheduled on at most one queue at a time.
 *
 * Names: the common constructor takes a string literal (or other
 * pointer with static storage duration) and stores only the pointer —
 * the fast path never allocates. The std::string overload exists for
 * dynamically named events (tests, debugging) and owns its copy.
 */
class Event
{
  public:
    explicit Event(const char *static_name = "event")
        : _name(static_name)
    {
    }

    /** Dynamically named event: owns a copy of @p name (slow path). */
    explicit Event(std::string name)
        : _ownedName(std::make_unique<std::string>(std::move(name)))
    {
        _name = _ownedName->c_str();
    }

    /**
     * Destroying a still-scheduled event would leave a dangling
     * pointer in the queue; debug builds abort loudly instead of
     * corrupting memory later. Deschedule before destruction.
     */
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked when simulated time reaches the scheduled tick. */
    virtual void process() = 0;

    /** True while the event sits on a queue awaiting processing. */
    bool scheduled() const { return _scheduled; }

    /** The tick this event will fire at; valid only when scheduled. */
    Tick when() const { return _when; }

    const char *name() const { return _name; }

  private:
    friend class EventQueue;

    const char *_name;
    /** Only set for dynamically named events; _name points into it. */
    std::unique_ptr<std::string> _ownedName;
    bool _scheduled = false;
    /** Owned by an EventQueue's free-list pool (post()/postIn()). */
    bool _pooled = false;
    /** Lives in the near-horizon ring (else the far heap). */
    bool _inRing = false;
    Tick _when = 0;
    std::uint64_t _seq = 0;
};

/**
 * A reusable one-shot event carrying a type-erased callable in an
 * inline small-buffer (captures larger than inlineCapacity fall back
 * to a heap allocation, counted in PoolStats::heapFallbacks). Only
 * EventQueue creates these; they recycle through the queue's free
 * list, so the steady-state one-shot path performs no allocation.
 */
class PooledEvent final : public Event
{
  public:
    /** Sized to hold every capture in the tree (see PoolStats). */
    static constexpr std::size_t inlineCapacity = 192;

    PooledEvent() : Event("pooled.idle") {}
    ~PooledEvent() override { destroyCallable(); }

    void process() override { invokeFn(this); }

  private:
    friend class EventQueue;

    /** Install a callable; returns false on heap fallback. */
    template <typename F>
    bool
    emplace(F &&fn)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= inlineCapacity &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            new (storage) Fn(std::forward<F>(fn));
            invokeFn = [](PooledEvent *self) {
                (*std::launder(reinterpret_cast<Fn *>(self->storage)))();
            };
            // Most captures are a couple of pointers: nothing to
            // destroy, so the recycle path skips the indirect call.
            // destroyFn is already null here: construction and
            // destroyCallable() both leave it null, and emplace()
            // only runs on fresh or recycled nodes.
            if constexpr (!std::is_trivially_destructible_v<Fn>) {
                destroyFn = [](PooledEvent *self) {
                    std::launder(reinterpret_cast<Fn *>(self->storage))
                        ->~Fn();
                };
            }
            return true;
        } else {
            heapFn = new Fn(std::forward<F>(fn));
            invokeFn = [](PooledEvent *self) {
                (*static_cast<Fn *>(self->heapFn))();
            };
            destroyFn = [](PooledEvent *self) {
                delete static_cast<Fn *>(self->heapFn);
                self->heapFn = nullptr;
            };
            return false;
        }
    }

    void
    destroyCallable()
    {
        if (destroyFn) {
            destroyFn(this);
            destroyFn = nullptr;
        }
        invokeFn = nullptr;
    }

    alignas(std::max_align_t) unsigned char storage[inlineCapacity];
    void *heapFn = nullptr;
    void (*invokeFn)(PooledEvent *) = nullptr;
    void (*destroyFn)(PooledEvent *) = nullptr;
    PooledEvent *nextFree = nullptr;
};

/**
 * A tick-ordered queue of events with deterministic same-tick FIFO
 * ordering. One queue drives one simulated machine; queues share no
 * state, so independent machines may run on concurrent host threads
 * (bench::SweepRunner relies on this).
 */
class EventQueue
{
  public:
    EventQueue();
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return curTick; }

    /**
     * Tick of the earliest pending event, or maxTick when the queue
     * is empty. The inline-execution fast path uses this as its batch
     * horizon: accesses completed synchronously at logical times
     * strictly before this tick cannot be reordered against any
     * scheduled event. May tidy internal buckets (not const).
     */
    Tick nextEventTick();

    /**
     * Schedule @p ev at absolute tick @p when.
     * @pre !ev->scheduled() && when >= now()
     */
    inline void schedule(Event *ev, Tick when);

    /** Schedule @p ev @p delta ticks from now. */
    void scheduleIn(Event *ev, Tick delta) { schedule(ev, now() + delta); }

    /**
     * Remove a scheduled event from the queue without processing it.
     * @pre ev->scheduled() — descheduling an idle event is a bug.
     */
    void deschedule(Event *ev);

    /**
     * Move an event to a new (future) tick. Explicit semantics:
     * deschedule-if-scheduled, then schedule — an unscheduled event is
     * accepted and simply scheduled, so periodic events may reschedule
     * themselves from inside process() without checking scheduled().
     */
    void reschedule(Event *ev, Tick when);

    /**
     * One-shot continuation at absolute tick @p when: the callable is
     * moved into a pooled event recycled after firing. @p name must be
     * a string literal (it is stored by pointer, never copied). The
     * returned handle stays valid until the event fires or is
     * descheduled; use it with reschedule()/deschedule() only.
     */
    template <typename F>
    Event *
    post(Tick when, F &&fn, const char *name = "lambda")
    {
        PooledEvent *ev = acquirePooled();
        if (!ev->emplace(std::forward<F>(fn)))
            ++pstats.heapFallbacks;
        ev->_name = name;
        try {
            schedule(ev, when);
        } catch (...) {
            releasePooled(ev);
            throw;
        }
        return ev;
    }

    /** One-shot continuation @p delta ticks from now. */
    template <typename F>
    Event *
    postIn(Tick delta, F &&fn, const char *name = "lambda")
    {
        return post(now() + delta, std::forward<F>(fn), name);
    }

    /** True when no events remain. */
    bool empty() const { return size() == 0; }

    /** Number of events awaiting processing (tombstoned far-heap
     *  entries are already cancelled and do not count). */
    std::size_t
    size() const
    {
        return ringCount + farHeap.size() - tombstones.size();
    }

    /** Process a single event; returns false if the queue was empty. */
    bool step();

    /**
     * Run until the queue drains or @p limit ticks is reached
     * (exclusive). Returns the tick of the last processed event.
     */
    Tick run(Tick limit = maxTick);

    /** Run while @p cond holds and events remain. */
    Tick runWhile(const std::function<bool()> &cond, Tick limit = maxTick);

    /** Total number of events processed since construction. */
    std::uint64_t processedCount() const { return nProcessed; }

    /** Allocation behaviour of the pooled one-shot path. */
    struct PoolStats
    {
        /** Pool nodes ever heap-allocated (bounded by the maximum
         *  number of simultaneously pending one-shots). */
        std::uint64_t created = 0;
        /** post() calls served; acquired - created = reuses. */
        std::uint64_t acquired = 0;
        /** Events returned to the free list after firing/cancel. */
        std::uint64_t released = 0;
        /** Captures too large for the inline buffer (heap path). */
        std::uint64_t heapFallbacks = 0;
    };

    const PoolStats &poolStats() const { return pstats; }

    /**
     * Checkpoint the queue. Events themselves are type-erased
     * callables and cannot be serialized, so the queue must be EMPTY
     * (fully drained — the quiesce contract) on both sides; what
     * round-trips is the clock, the FIFO sequence counter (same-tick
     * ordering after restore depends on it), the processed count and
     * the pool accounting. On load the pooled free list is pre-grown
     * to the saved node count so host allocation behaviour (and the
     * PoolStats invariants) match the straight run exactly.
     */
    void serialize(Serializer &s);

    // Two-tier scheduler geometry. Bucket width 2^10 ticks ~ 1 ns;
    // 8192 buckets give a ~8.4 us near horizon, wide enough for every
    // microarchitectural and kernel-phase delay in the tree while
    // kpted/kpoold periods and device latencies go to the far heap.
    static constexpr unsigned bucketShift = 10;
    static constexpr unsigned numBuckets = 8192;
    static constexpr unsigned bucketMask = numBuckets - 1;

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Event *ev;

        bool
        operator<(const Entry &o) const
        {
            if (when != o.when)
                return when < o.when;
            return seq < o.seq;
        }

        bool operator>(const Entry &o) const { return o < *this; }
    };

    /**
     * One ring bucket: entries[head, sorted) is ascending by
     * (when, seq) and drains from head; [sorted, end) is an unsorted
     * appendix folded in lazily (tidy()) when the bucket is next
     * inspected. Popping everything resets the vector but keeps its
     * capacity, so steady-state bursts reuse the allocation.
     */
    struct Bucket
    {
        std::vector<Entry> entries;
        std::size_t head = 0;
        std::size_t sorted = 0;

        bool empty() const { return head == entries.size(); }
    };

    /** Near-horizon ring: sorted-drain buckets ordered by (when, seq). */
    std::vector<Bucket> ring;
    /** One occupancy bit per bucket; scanning 64 buckets per load. */
    std::vector<std::uint64_t> ringBitmap;
    std::size_t ringCount = 0;

    static constexpr std::uint64_t invalidSlot = ~std::uint64_t(0);
    /**
     * Absolute slot (when >> bucketShift) of the ring's earliest
     * occupied bucket, or invalidSlot when unknown. Inserts lower it
     * while it is valid (an unknown minimum must stay unknown — other
     * occupied buckets may be earlier than any new insert); draining
     * a bucket invalidates it and the next ringPeek rescans. While
     * valid, ringPeek is a mask instead of a bitmap scan.
     */
    mutable std::uint64_t soonestSlot = invalidSlot;

    /** Far-future events, min-heap by (when, seq). */
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        farHeap;

    /**
     * Sequence numbers of descheduled far-heap entries. Dead entries
     * are dropped by seq lookup alone — the Event pointer is never
     * dereferenced, so an event may be descheduled and destroyed
     * without leaving a dangling read in the queue. Ring entries are
     * removed eagerly and never need a tombstone.
     */
    std::unordered_set<std::uint64_t> tombstones;

    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t nProcessed = 0;

    // Pooled one-shot free list; pool owns the nodes.
    std::vector<std::unique_ptr<PooledEvent>> pool;
    PooledEvent *freeList = nullptr;
    PoolStats pstats;

    inline PooledEvent *acquirePooled();
    inline void releasePooled(PooledEvent *ev);

    /** Slow path of acquirePooled(): allocate a new pool node. */
    PooledEvent *growPool();

    /** Slow path of schedule(): far-heap insertion. */
    void scheduleFar(Event *ev, Tick when);

    /** Diagnose and report a schedule() precondition violation. */
    void schedulePanic(const Event *ev, Tick when) const;

    /** Drop dead (tombstoned) far-heap entries from the top. */
    void skipDead();

    /** Locate the ring's earliest bucket; false when the ring is empty. */
    bool ringPeek(unsigned &bucket_out) const;

    /** First occupied bucket index in [from, to), or numBuckets. */
    unsigned findOccupied(unsigned from, unsigned to) const;

    /** Fold a bucket's unsorted appendix into its sorted run. */
    void tidyBucket(Bucket &bucket);

    /** The bucket's earliest entry (tidies first). */
    Entry &bucketFront(unsigned b);

    /** Drop the front entry of a tidied bucket @p b. */
    void popBucketFront(unsigned b);

    /** Clear a drained bucket and its occupancy bit. */
    void resetBucket(unsigned b);

    /** Detach a scheduled event from ring/heap bookkeeping. */
    void unlink(Event *ev);

    enum class StepOutcome { fired, drained, atLimit };
    StepOutcome tryStep(Tick limit);
};

// The schedule and pool hot paths are defined inline so that post()
// and scheduleIn() call sites compile down to straight-line code: the
// one-shot fast path (acquire + emplace + ring insert) performs no
// out-of-line calls at all.

inline void
EventQueue::schedule(Event *ev, Tick when)
{
    if (ev->_scheduled || when < curTick) [[unlikely]]
        schedulePanic(ev, when);
    ev->_scheduled = true;
    ev->_when = when;
    ev->_seq = nextSeq++;
    // All ring-resident events satisfy slot(when) < slot(now) + B at
    // insertion, and time only moves forward, so each bucket holds
    // entries of exactly one horizon window and bucket scan order is
    // time order.
    std::uint64_t slot = when >> bucketShift;
    if (slot < (curTick >> bucketShift) + numBuckets) [[likely]] {
        unsigned b = static_cast<unsigned>(slot) & bucketMask;
        Bucket &bucket = ring[b];
        bucket.entries.push_back(Entry{when, ev->_seq, ev});
        // In-order append (the common case: components schedule
        // forward in time and seq grows monotonically) extends the
        // sorted run; anything else lands in the appendix for
        // tidyBucket() to fold in at drain time.
        std::size_t sz = bucket.entries.size();
        if (bucket.sorted + 1 == sz &&
            (bucket.sorted == bucket.head ||
             bucket.entries[sz - 2] < bucket.entries[sz - 1]))
            bucket.sorted = sz;
        ringBitmap[b >> 6] |= std::uint64_t(1) << (b & 63);
        ev->_inRing = true;
        ++ringCount;
        // Keep the cached minimum. An empty ring makes the new slot
        // the minimum by construction; otherwise only lower a VALID
        // cache — the sentinel means "unknown", and an unknown
        // minimum cannot be lowered, other occupied buckets may be
        // earlier still.
        if (ringCount == 1)
            soonestSlot = slot;
        else if (soonestSlot != invalidSlot && slot < soonestSlot)
            soonestSlot = slot;
    } else {
        scheduleFar(ev, when);
    }
}

inline PooledEvent *
EventQueue::acquirePooled()
{
    ++pstats.acquired;
    if (freeList) [[likely]] {
        PooledEvent *ev = freeList;
        freeList = ev->nextFree;
        return ev;
    }
    return growPool();
}

inline void
EventQueue::releasePooled(PooledEvent *ev)
{
    ev->destroyCallable();
    ev->nextFree = freeList;
    freeList = ev;
    ++pstats.released;
}

} // namespace hwdp::sim

#endif // HWDP_SIM_EVENT_QUEUE_HH

#include "mem/cache_array.hh"

#include <bit>

#include "sim/logging.hh"

namespace hwdp::mem {

CacheArray::CacheArray(std::string name, std::uint64_t size_bytes,
                       unsigned assoc, unsigned line_bytes)
    : label(std::move(name)), bytes(size_bytes), ways(assoc),
      line(line_bytes)
{
    if (assoc == 0 || line_bytes == 0 || size_bytes == 0)
        fatal("cache '", label, "': degenerate geometry");
    if (!std::has_single_bit(static_cast<std::uint64_t>(line_bytes)))
        fatal("cache '", label, "': line size must be a power of two");
    std::uint64_t n_lines = size_bytes / line_bytes;
    if (n_lines % assoc != 0)
        fatal("cache '", label, "': size not divisible by assoc * line");
    sets = static_cast<unsigned>(n_lines / assoc);
    if (!std::has_single_bit(static_cast<std::uint64_t>(sets)))
        fatal("cache '", label, "': set count must be a power of two");
    lineShiftBits = static_cast<unsigned>(
        std::countr_zero(static_cast<std::uint64_t>(line_bytes)));
    entries.resize(static_cast<std::size_t>(sets) * ways);
}

std::uint64_t
CacheArray::setIndex(std::uint64_t addr) const
{
    return (addr >> lineShiftBits) & (sets - 1);
}

std::uint64_t
CacheArray::tagOf(std::uint64_t addr) const
{
    return addr >> lineShiftBits;
}

bool
CacheArray::access(std::uint64_t addr)
{
    std::uint64_t set = setIndex(addr);
    std::uint64_t tag = tagOf(addr);
    Way *base = &entries[set * ways];
    ++useClock;

    Way *victim = base;
    for (unsigned w = 0; w < ways; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            way.lastUse = useClock;
            ++hits;
            return true;
        }
        if (!way.valid) {
            victim = &way; // prefer an invalid way
        } else if (victim->valid && way.lastUse < victim->lastUse) {
            victim = &way;
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = useClock;
    ++misses;
    return false;
}

bool
CacheArray::probe(std::uint64_t addr) const
{
    std::uint64_t set = setIndex(addr);
    std::uint64_t tag = tagOf(addr);
    const Way *base = &entries[set * ways];
    for (unsigned w = 0; w < ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

bool
CacheArray::invalidate(std::uint64_t addr)
{
    std::uint64_t set = setIndex(addr);
    std::uint64_t tag = tagOf(addr);
    Way *base = &entries[set * ways];
    for (unsigned w = 0; w < ways; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].valid = false;
            return true;
        }
    }
    return false;
}

void
CacheArray::flush()
{
    for (Way &w : entries)
        w.valid = false;
}

std::uint64_t
CacheArray::occupancy() const
{
    std::uint64_t n = 0;
    for (const Way &w : entries)
        n += w.valid ? 1 : 0;
    return n;
}

} // namespace hwdp::mem

/**
 * @file
 * Table II: the experimental configuration — the paper's evaluation
 * machine next to the scaled simulated machine this repository runs.
 */

#include <cstdio>

#include "metrics/report.hh"
#include "system/machine_config.hh"

using namespace hwdp;
using metrics::Table;

int
main()
{
    metrics::banner("Table II: experimental configuration");

    Table t({"component", "paper (real machine)", "simulated machine"});
    t.addRow({"server", "Dell R730", "cycle-level simulator"});
    t.addRow({"OS", "Ubuntu 16.04.6, Linux 4.9.30",
              "kernel model (OSDP path + HWDP control plane)"});
    t.addRow({"CPU", "Xeon E5-2640v3 2.8GHz, 8 cores (HT)",
              "2.8GHz, 8 physical / 16 logical cores"});
    t.addRow({"storage", "Samsung SZ985 800GB Z-SSD",
              "Z-SSD profile, 10.9us unloaded 4KB read"});
    t.addRow({"memory", "DDR4 32GB", "512MB (64x scaled; ratios kept)"});
    t.print();

    std::printf("\nDefault MachineConfig (HWDP):\n\n%s\n",
                [] {
                    system::MachineConfig cfg;
                    cfg.mode = system::PagingMode::hwdp;
                    return cfg.describe();
                }()
                    .c_str());
    return 0;
}

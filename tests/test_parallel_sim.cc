/**
 * @file
 * Bit-identity of the parallel simulation mode, at three levels.
 *
 * Array level: the sharded batch protocol (accessBatchShard per shard
 * + finishShardedBatch) is driven *sequentially* — no threads — and
 * compared word-for-word against accessBatch on a reference array.
 * This isolates the exactness argument (set partitioning,
 * position-determined stamps, per-shard renormalisation at identical
 * access indices) from the thread pool entirely, including adversarial
 * same-set merge-order runs and renormalisation-boundary edge cases.
 *
 * Hierarchy level: a real ShardPool with the parallel threshold forced
 * to 1 runs the level-major descent sharded; counters and full LLC
 * post-state must match a serial hierarchy fed the same runs.
 *
 * Machine level: the differential workloads (FIO and YCSB-A) run under
 * every paging mode for simThreads in {1, 2, 4}, clean and under a 1%
 * fault plan; snapshots must hash identically and the full machine
 * stats dump must be byte-identical.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "mem/cache_array.hh"
#include "mem/cache_hierarchy.hh"
#include "sim/rng.hh"
#include "sim/shard_pool.hh"
#include "system/system.hh"
#include "testing/fault_plan.hh"
#include "testing/invariants.hh"
#include "testing/machine_differ.hh"
#include "workloads/fio.hh"
#include "workloads/kv_store.hh"
#include "workloads/ycsb.hh"

using namespace hwdp;
using namespace hwdp::mem;
namespace ht = hwdp::testing;

namespace {

/**
 * Drive one run through the sharded protocol (sequentially, shard by
 * shard) and through plain accessBatch on a reference array; require
 * identical post-state, counters, per-line outcomes and miss order.
 */
void
expectShardedMatchesBatch(CacheArray &sharded, CacheArray &ref,
                          const std::vector<std::uint64_t> &run,
                          unsigned n_shards)
{
    std::vector<std::uint8_t> flags(run.size() + 1, 0xcd);
    std::uint64_t total_hits = 0, total_fills = 0;
    for (unsigned s = 0; s < n_shards; ++s) {
        CacheArray::ShardResult r = sharded.accessBatchShard(
            run.data(), run.size(), flags.data(), s, n_shards);
        total_hits += r.hits;
        total_fills += r.fills;
    }
    sharded.finishShardedBatch(run.size(), total_hits, total_fills);

    std::vector<std::uint64_t> miss_out(run.size() + 1, 0xdead);
    std::vector<std::uint64_t> bitmap((run.size() + 63) / 64 + 1, 0);
    std::size_t ref_hits = ref.accessBatch(run.data(), run.size(),
                                           miss_out.data(),
                                           bitmap.data());

    ASSERT_EQ(total_hits, ref_hits) << "shards " << n_shards;
    ASSERT_EQ(sharded.hitCount(), ref.hitCount());
    ASSERT_EQ(sharded.missCount(), ref.missCount());
    ASSERT_EQ(sharded.occupancy(), ref.occupancy());
    // Full post-state: every tag and every LRU stamp.
    ASSERT_EQ(sharded.rawMeta(), ref.rawMeta());
    // Per-line outcomes match the reference bitmap.
    for (std::size_t i = 0; i < run.size(); ++i) {
        bool ref_hit = bitmap[i / 64] >> (i % 64) & 1;
        ASSERT_EQ(flags[i] != 0, ref_hit) << "line " << i;
    }
}

system::MachineConfig
smallConfig(system::PagingMode mode, unsigned sim_threads)
{
    system::MachineConfig cfg;
    cfg.mode = mode;
    cfg.nLogical = 4;
    cfg.nPhysical = 2;
    cfg.memFrames = 32 * 1024;
    cfg.smu.freeQueueCapacity = 512;
    cfg.kpooldPeriod = milliseconds(1.0);
    cfg.kptedPeriod = milliseconds(4.0);
    cfg.simThreads = sim_threads;
    return cfg;
}

struct MachineResult
{
    ht::MachineState state;
    std::string stats;
};

/** Mirror of test_differential's FIO run, parameterised on threads. */
MachineResult
runFio(system::PagingMode mode, unsigned sim_threads,
       double fault_rate = 0.0)
{
    system::System sys(smallConfig(mode, sim_threads));
    // Tiny runs must cross the sharded path too, or a 1500-op test
    // machine would never exercise it.
    sys.caches().setParallelMinLines(1);
    ht::FaultPlan plan("plan", sys.eventQueue(), 97);
    auto mf = sys.mapDataset("f", 8 * 1024);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 1500);
    sys.addThread(*wl, 0, *mf.as);
    if (fault_rate > 0.0) {
        plan.attach(sys);
        plan.armAllAtRate(fault_rate);
    }
    EXPECT_TRUE(sys.runUntilThreadsDone(seconds(30.0)));
    ht::quiesce(sys);
    auto inv = ht::checkInvariants(sys);
    EXPECT_TRUE(inv.empty()) << inv.front();
    MachineResult r{ht::snapshot(sys, pagingModeName(mode)), {}};
    std::ostringstream os;
    ht::dumpMachineStats(sys, os);
    r.stats = os.str();
    return r;
}

/** Mirror of test_differential's YCSB-A run. */
MachineResult
runYcsb(system::PagingMode mode, unsigned sim_threads,
        double fault_rate = 0.0)
{
    system::System sys(smallConfig(mode, sim_threads));
    sys.caches().setParallelMinLines(1);
    ht::FaultPlan plan("plan", sys.eventQueue(), 101);
    auto mf = sys.mapDataset("data", 16 * 1024);
    auto *wal = sys.createFile("wal", 8 * 1024);
    auto store = std::make_unique<workloads::KvStore>(mf.vma, wal,
                                                      16 * 1024);
    auto *wl = sys.makeWorkload<workloads::YcsbWorkload>('A', *store,
                                                         1200);
    sys.addThread(*wl, 0, *mf.as);
    if (fault_rate > 0.0) {
        plan.attach(sys);
        plan.armAllAtRate(fault_rate);
    }
    EXPECT_TRUE(sys.runUntilThreadsDone(seconds(30.0)));
    ht::quiesce(sys);
    auto inv = ht::checkInvariants(sys);
    EXPECT_TRUE(inv.empty()) << inv.front();
    MachineResult r{ht::snapshot(sys, pagingModeName(mode)), {}};
    std::ostringstream os;
    ht::dumpMachineStats(sys, os);
    r.stats = os.str();
    return r;
}

void
expectIdentical(const MachineResult &serial, const MachineResult &par,
                const char *what, unsigned threads)
{
    auto d = ht::diff(serial.state, par.state);
    EXPECT_TRUE(d.equivalent)
        << what << " simThreads=" << threads << ": " << d.report;
    EXPECT_EQ(serial.state.stateHash, par.state.stateHash)
        << what << " simThreads=" << threads;
    // Byte identity of the full stats dump — every counter, histogram
    // and derived figure, not just the logical paging state.
    EXPECT_EQ(serial.stats, par.stats)
        << what << " simThreads=" << threads;
}

} // namespace

// ---- Array level -----------------------------------------------------------

TEST(ParallelSim, ShardedFuzzRandomRunsAllGeometriesAndShardCounts)
{
    struct Geo
    {
        std::uint64_t bytes;
        unsigned assoc;
    };
    // The paper machine's L1/L2/LLC geometries plus a narrow oddball.
    const Geo geos[] = {
        {32 * 1024, 8},
        {256 * 1024, 8},
        {20 * 64 * 1024, 20}, // LLC associativity, 1024 sets
        {4096, 4}};
    for (const Geo &g : geos) {
        for (unsigned ns : {1u, 2u, 3u, 4u, 7u}) {
            CacheArray sharded("s", g.bytes, g.assoc);
            CacheArray ref("r", g.bytes, g.assoc);
            sim::Rng rng(0x5eed + g.assoc * 131 + ns);
            for (int round = 0; round < 25; ++round) {
                std::size_t len = 1 + rng.range(200);
                std::vector<std::uint64_t> run;
                // Few sets/tags: runs collide in sets, repeat lines,
                // alias tags, and evict lines installed earlier in the
                // same run.
                std::uint64_t tags = 1 + rng.range(3 * g.assoc);
                std::uint64_t sets = 1 + rng.range(8);
                for (std::size_t i = 0; i < len; ++i) {
                    std::uint64_t set = rng.range(sets);
                    std::uint64_t tag = rng.range(tags);
                    run.push_back(tag * g.bytes / g.assoc + set * 64 +
                                  rng.range(64));
                }
                expectShardedMatchesBatch(sharded, ref, run, ns);
            }
        }
    }
}

TEST(ParallelSim, AdversarialMergeOrderSameSetRuns)
{
    // Every line of the run lands in one set — the whole run belongs
    // to a single shard and every other shard contributes nothing.
    // Runs longer than the associativity evict lines installed earlier
    // in the same call; any stamp scheme that depended on other
    // shards' progress would diverge here.
    for (unsigned ns : {1u, 2u, 4u, 7u}) {
        CacheArray sharded("s", 32 * 1024, 8);
        CacheArray ref("r", 32 * 1024, 8);
        std::uint64_t stride = sharded.numSets() * sharded.lineBytes();
        std::vector<std::uint64_t> run;
        for (int i = 0; i < 20; ++i)
            run.push_back(static_cast<std::uint64_t>(i % 11) * stride);
        expectShardedMatchesBatch(sharded, ref, run, ns);
    }
}

TEST(ParallelSim, AdversarialAlternatingSetsAcrossShards)
{
    // Consecutive lines alternate over n_shards adjacent sets, so
    // shard s sees exactly every n_shards-th line: the canonical-order
    // guarantee (outcomes recorded at the original run index) is what
    // keeps the merged view identical.
    for (unsigned ns : {2u, 3u, 4u}) {
        CacheArray sharded("s", 32 * 1024, 8);
        CacheArray ref("r", 32 * 1024, 8);
        std::uint64_t stride = sharded.numSets() * sharded.lineBytes();
        std::vector<std::uint64_t> run;
        for (int i = 0; i < 64; ++i) {
            std::uint64_t set = static_cast<std::uint64_t>(i) % ns;
            std::uint64_t tag = static_cast<std::uint64_t>(i) / 3;
            run.push_back(tag * stride + set * 64);
        }
        expectShardedMatchesBatch(sharded, ref, run, ns);
    }
}

TEST(ParallelSim, ShardCountsExceedingSetsAndRunLength)
{
    // More shards than sets (some shards own nothing) and more shards
    // than lines; n == 0 must also be a clean no-op.
    CacheArray sharded("s", 4 * 2 * 64, 2); // 4 sets, 2 ways
    CacheArray ref("r", 4 * 2 * 64, 2);
    std::vector<std::uint64_t> run = {0, 64, 128, 192, 0};
    expectShardedMatchesBatch(sharded, ref, run, 7);

    std::vector<std::uint64_t> tiny = {64};
    expectShardedMatchesBatch(sharded, ref, tiny, 5);

    std::vector<std::uint64_t> empty;
    expectShardedMatchesBatch(sharded, ref, empty, 3);
}

TEST(ParallelSim, RenormalisationBoundariesSplitIdentically)
{
    // A tiny array (2 sets x 2 ways, 64 B lines) has stampMask = 127:
    // the LRU clock wraps every ~120 accesses, so a few hundred lines
    // cross several renormalisation segments. Every shard must derive
    // the same segment plan and renormalise its own sets at the same
    // access indices — including segments of length 1 and runs whose
    // first access lands exactly on the boundary.
    for (unsigned ns : {1u, 2u, 3u, 5u}) {
        CacheArray sharded("s", 2 * 2 * 64, 2);
        CacheArray ref("r", 2 * 2 * 64, 2);
        sim::Rng rng(99 + ns);

        // Pre-advance both clocks to just below the boundary so the
        // next batch opens with an immediate renormalisation.
        std::vector<std::uint64_t> warm;
        for (int i = 0; i < 120; ++i)
            warm.push_back(rng.range(16) * 64);
        expectShardedMatchesBatch(sharded, ref, warm, ns);

        // Single-line batches walk the clock right across the wrap.
        for (int i = 0; i < 20; ++i) {
            std::vector<std::uint64_t> one = {rng.range(16) * 64};
            expectShardedMatchesBatch(sharded, ref, one, ns);
        }

        // A long run spanning multiple wraps in one call.
        std::vector<std::uint64_t> longrun;
        for (int i = 0; i < 400; ++i)
            longrun.push_back(rng.range(16) * 64);
        expectShardedMatchesBatch(sharded, ref, longrun, ns);
    }
}

// ---- Hierarchy level -------------------------------------------------------

TEST(ParallelSim, HierarchyShardedDescentMatchesSerial)
{
    CacheParams cp;
    cp.llcBytes = 20 * 64 * 1024; // 1024 sets at 20 ways: fast
    CacheHierarchy serial(2, cp);
    CacheHierarchy par(2, cp);
    sim::ShardPool pool(4);
    par.setShardPool(&pool);
    par.setParallelMinLines(1); // force every run through the shards

    sim::Rng rng(0xca11ab1e);
    for (int round = 0; round < 60; ++round) {
        unsigned core = rng.range(2);
        bool is_inst = rng.range(2);
        ExecMode mode = rng.range(2) ? ExecMode::kernel
                                     : ExecMode::user;
        std::size_t len = 1 + rng.range(600);
        std::vector<std::uint64_t> run;
        for (std::size_t i = 0; i < len; ++i)
            run.push_back(rng.range(1 << 14) * 64);

        CacheBatchResult a = serial.accessBatch(core, run.data(), len,
                                                is_inst, mode);
        CacheBatchResult b = par.accessBatch(core, run.data(), len,
                                             is_inst, mode);
        ASSERT_EQ(a.l1Misses, b.l1Misses);
        ASSERT_EQ(a.l2Misses, b.l2Misses);
        ASSERT_EQ(a.llcMisses, b.llcMisses);
        ASSERT_EQ(a.totalLatency, b.totalLatency);
    }

    for (ExecMode m : {ExecMode::user, ExecMode::kernel}) {
        const auto &cs = serial.counters(m);
        const auto &cpar = par.counters(m);
        ASSERT_EQ(cs.l1iAccesses, cpar.l1iAccesses);
        ASSERT_EQ(cs.l1iMisses, cpar.l1iMisses);
        ASSERT_EQ(cs.l1dAccesses, cpar.l1dAccesses);
        ASSERT_EQ(cs.l1dMisses, cpar.l1dMisses);
        ASSERT_EQ(cs.l2Misses, cpar.l2Misses);
        ASSERT_EQ(cs.llcMisses, cpar.llcMisses);
    }
    // Full LLC post-state: tags and LRU stamps.
    ASSERT_EQ(serial.llcArray().rawMeta(), par.llcArray().rawMeta());
    ASSERT_GT(pool.regionsRun(), 0u);
}

// ---- Machine level ---------------------------------------------------------

TEST(ParallelSim, FioBitIdenticalAcrossThreadCountsAllModes)
{
    for (auto mode : {system::PagingMode::osdp, system::PagingMode::hwdp,
                      system::PagingMode::swsmu}) {
        auto serial = runFio(mode, 1);
        for (unsigned threads : {2u, 4u}) {
            auto par = runFio(mode, threads);
            expectIdentical(serial, par, pagingModeName(mode), threads);
        }
    }
}

TEST(ParallelSim, YcsbBitIdenticalAcrossThreadCountsAllModes)
{
    for (auto mode : {system::PagingMode::osdp, system::PagingMode::hwdp,
                      system::PagingMode::swsmu}) {
        auto serial = runYcsb(mode, 1);
        for (unsigned threads : {2u, 4u}) {
            auto par = runYcsb(mode, threads);
            expectIdentical(serial, par, pagingModeName(mode), threads);
        }
    }
}

TEST(ParallelSim, FaultPlanRunsBitIdenticalAcrossThreadCounts)
{
    auto fio1 = runFio(system::PagingMode::hwdp, 1, 0.01);
    auto fio4 = runFio(system::PagingMode::hwdp, 4, 0.01);
    expectIdentical(fio1, fio4, "fio+faults", 4);

    auto y1 = runYcsb(system::PagingMode::swsmu, 1, 0.01);
    auto y2 = runYcsb(system::PagingMode::swsmu, 2, 0.01);
    expectIdentical(y1, y2, "ycsb+faults", 2);
}

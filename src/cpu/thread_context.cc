#include "cpu/thread_context.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/serialize.hh"
#include "sim/shard_pool.hh"

namespace hwdp::cpu {

void
ThreadContext::serialize(sim::Serializer &s)
{
    s.section("threadcontext");
    if (s.saving() && hasCurOp)
        throw sim::SerializeError(
            "checkpoint: thread '" + name() +
            "' holds a stashed op; quiesce the machine first");
    serializeState(s);
    s.io(uInstr);
    s.io(uCycles);
    s.io(cCycles);
    s.io(mCycles);
    s.io(nAppOps);
    s.io(nMemOps);
    s.io(nFaulted);
    s.io(nHwHandled);
    s.io(faultStall);
    s.io(started);
    s.io(finished);
    s.io(isDone);
    s.io(wasOomKilled);
    s.io(startedFlag);
    s.io(fetchSeq);
    memLat.serialize(s);
    faultedOpLat.serialize(s);
    s.io(appOpStart);
    s.io(appOpFaulted);
    s.io(appOpOpen);
    s.io(memOpStart);
    s.io(memOpEndsApp);
    rng.serialize(s);
    workload.serialize(s);
}

ThreadContext::ThreadContext(std::string name, unsigned core,
                             os::Kernel &kernel, Mmu &mmu,
                             mem::CacheHierarchy &caches,
                             mem::BranchPredictor &bp,
                             os::AddressSpace &as,
                             workloads::Workload &workload,
                             const CoreParams &params, sim::Rng rng)
    : os::Thread(std::move(name), core), kernel(kernel), mmuRef(mmu),
      caches(caches), bp(bp), as(as), workload(workload), prm(params),
      rng(rng), physCore(kernel.scheduler().physCoreOf(core)),
      memLat("mem_latency_us", "per-access latency (us)", 0.5, 400),
      faultedOpLat("faulted_op_latency_us",
                   "app-op latency when a page miss occurred (us)", 0.5,
                   400)
{
    if (prm.memQuantum == 0)
        fatal("thread '", this->name(), "': memQuantum must be >= 1");
}

void
ThreadContext::run()
{
    if (!startedFlag) {
        startedFlag = true;
        started = kernel.now();
    }
    if (hasResumeAction()) {
        takeResumeAction()();
        return;
    }
    opLoop();
}

bool
ThreadContext::handleOom()
{
    // The faulting access never completes; the thread terminates the
    // way an OOM-killed process does. The fault path runs entirely in
    // this thread's context, so it is still current on its core and
    // finish() is legal here.
    wasOomKilled = true;
    isDone = true;
    finished = kernel.now();
    kernel.scheduler().finish(this);
    if (onFinished)
        onFinished();
    return true;
}

void
ThreadContext::opLoop()
{
    if (isDone)
        return;

    sim::EventQueue &eq = kernel.eventQueue();
    const Tick t0 = kernel.now();

    // Batch horizon: the next pending event anywhere in the machine.
    // As long as the logical clock t0 + accrued stays below it, no
    // other actor can run, so completing ops synchronously is
    // indistinguishable from event-per-op execution. The thread posts
    // no events inside a batch, so the horizon cannot move under us.
    const Tick horizon = eq.nextEventTick();
    Tick accrued = 0;
    unsigned batched = 0;

    for (;;) {
        // Cut the batch: the next op would cross the horizon or the
        // quantum is spent. One pooled continuation carries the whole
        // batch's accrued time.
        if (accrued > 0 &&
            (t0 + accrued >= horizon || batched >= prm.memQuantum)) {
            eq.postIn(accrued, [this] { opLoop(); }, "tc.batch");
            return;
        }

        // Operation boundary: let pending interrupt work run (it
        // borrows this context, no full context switch). The pending
        // set only changes when events fire, and none fire inside a
        // batch, so checking at the batch head is exact.
        if (accrued == 0 && kernel.scheduler().kernelWorkPending(core())) {
            setResumeAction([this] { opLoop(); });
            kernel.scheduler().preemptForKernelWork(this);
            return;
        }

        if (!hasCurOp) {
            curOp = workload.next(rng, t0 + accrued);
            hasCurOp = true;
        }
        const workloads::Op &op = curOp;

        // Ops that involve the kernel or the scheduler run at real
        // simulated time: flush the accrued batch first and execute
        // the stashed op at the continuation (so preemption and
        // bookkeeping happen at its actual start time, as before).
        bool inline_op = op.kind == workloads::Op::Kind::compute ||
                         op.kind == workloads::Op::Kind::mem ||
                         op.kind == workloads::Op::Kind::idle;
        if (!inline_op && accrued > 0) {
            eq.postIn(accrued, [this] { opLoop(); }, "tc.batch");
            return;
        }

        if (!appOpOpen && op.kind != workloads::Op::Kind::done) {
            appOpOpen = true;
            appOpFaulted = false;
            appOpStart = t0 + accrued;
        }

        switch (op.kind) {
          case workloads::Op::Kind::compute: {
            accrued += computeBurst(op.compute);
            ++batched;
            hasCurOp = false;
            if (op.endsAppOp)
                finishOp(t0 + accrued);
            continue;
          }

          case workloads::Op::Kind::mem: {
            ++nMemOps;
            memOpStart = t0 + accrued;
            memOpEndsApp = op.endsAppOp;
            hasCurOp = false;
            AccessInfo info;
            if (mmuRef.access(*this, as, op.addr, op.write, accrued,
                              *this, info)) {
                // Hit: complete inline.
                memLat.sample(toMicroseconds(info.latency));
                uCycles += info.latency / prm.cyclePeriod;
                mCycles += info.latency / prm.cyclePeriod;
                accrued += info.latency;
                ++batched;
                if (memOpEndsApp)
                    finishOp(t0 + accrued);
                continue;
            }
            // Page miss: the access is parked in the MMU (issued at
            // logical time t0 + accrued) and the completion arrives
            // through accessDone(), which restarts the loop.
            return;
          }

          case workloads::Op::Kind::idle:
            // Think time is pure logical-clock advance; other actors
            // still run first if their events fall inside it (the
            // horizon cut above).
            accrued += op.idleTicks;
            ++batched;
            hasCurOp = false;
            if (op.endsAppOp)
                finishOp(t0 + accrued);
            continue;

          case workloads::Op::Kind::fileWrite:
            hasCurOp = false;
            kernel.writeFile(*this, *op.file, op.pageIndex, op.bytes,
                             [this, ends = op.endsAppOp] {
                                 if (ends)
                                     finishOp(kernel.now());
                                 opLoop();
                             });
            return;

          case workloads::Op::Kind::msync:
            hasCurOp = false;
            kernel.msyncVma(*this, op.vma,
                            [this, ends = op.endsAppOp] {
                                if (ends)
                                    finishOp(kernel.now());
                                opLoop();
                            });
            return;

          case workloads::Op::Kind::done:
            hasCurOp = false;
            isDone = true;
            finished = kernel.now();
            kernel.scheduler().finish(this);
            if (onFinished)
                onFinished();
            return;
        }
        panic("thread '", name(), "': unhandled op kind");
    }
}

void
ThreadContext::accessDone(const AccessInfo &info)
{
    memLat.sample(toMicroseconds(info.latency));
    if (info.faulted) {
        appOpFaulted = true;
        ++nFaulted;
        faultStall += kernel.now() - memOpStart;
        if (info.hwHandled)
            ++nHwHandled;
    } else {
        uCycles += info.latency / prm.cyclePeriod;
        mCycles += info.latency / prm.cyclePeriod;
    }
    if (memOpEndsApp)
        finishOp(kernel.now());
    opLoop();
}

void
ThreadContext::finishOp(Tick logical_now)
{
    ++nAppOps;
    if (appOpFaulted)
        faultedOpLat.sample(toMicroseconds(logical_now - appOpStart));
    appOpOpen = false;
    workload.appOpDone(logical_now);
}

Tick
ThreadContext::computeBurst(const workloads::ComputeSpec &spec)
{
    if (!prm.batch)
        return computeBurstPerLine(spec);

    // Batched burst. Identical simulated state and statistics to the
    // per-line path below: the RNG draws happen in the original loop
    // order (address/outcome generation is hoisted, not reordered),
    // each loop's stream goes through accessBatch as one run (so each
    // cache array sees the same addresses in the same order as the
    // sequential descents), and the stall sum is reconstructed exactly
    // from the per-level hit counts — every line that hits level k
    // contributes the same max(latency_k, l1HitLatency) - l1HitLatency
    // term the per-line loop adds one at a time.
    double share = kernel.scheduler().widthShare(core());
    const mem::CacheParams &cp = caches.params();
    auto stallSum = [&](const mem::CacheBatchResult &r, std::uint64_t n) {
        auto stall_for = [&](Cycles lat) {
            return std::max(lat, prm.l1HitLatency) - prm.l1HitLatency;
        };
        return (n - r.l1Misses) * stall_for(cp.l1Latency) +
               (r.l1Misses - r.l2Misses) * stall_for(cp.l2Latency) +
               (r.l2Misses - r.llcMisses) * stall_for(cp.llcLatency) +
               r.llcMisses * stall_for(cp.dramLatency);
    };

    Cycles extra = 0;

    // Data references: draw the addresses with the exact per-line RNG
    // sequence, then stream them through the hierarchy level-major.
    auto n_refs = static_cast<std::uint64_t>(
        static_cast<double>(spec.instructions) * spec.memRefFrac);
    burstAddrs.resize(n_refs);
    for (std::uint64_t i = 0; i < n_refs; ++i) {
        if (spec.coldBytes > 0 && rng.chance(spec.coldFrac)) {
            burstAddrs[i] = spec.hotBase + spec.hotBytes +
                            (rng.range(spec.coldBytes) & ~7ULL);
        } else {
            burstAddrs[i] = spec.hotBase + (rng.range(spec.hotBytes) & ~7ULL);
        }
    }

    // Branches: draw site and outcome in the original interleaved
    // order (the cache streams consume no randomness, so drawing them
    // here leaves the generator stream identical to drawing them after
    // the cache passes — which is where the per-line path draws them).
    auto n_br = static_cast<std::uint64_t>(
        static_cast<double>(spec.instructions) * spec.branchFrac);
    burstPcs.resize(n_br);
    burstTaken.resize(n_br);
    for (std::uint64_t i = 0; i < n_br; ++i) {
        burstPcs[i] = spec.textBase + rng.range(spec.staticBranches) * 16;
        burstTaken[i] =
            static_cast<std::uint8_t>(rng.chance(spec.branchBias));
    }

    // Heavy bursts overlap the predictor batch with the cache passes
    // on the pool's side lane: predictor state is disjoint from every
    // tag array and the outcomes are pre-drawn, so the overlap cannot
    // change simulated results; mispred is read only after the join.
    constexpr std::uint64_t asyncMinBranches = 512;
    std::uint64_t mispred = 0;
    auto bp_update = [&] {
        mispred = bp.updateBatch(burstPcs.data(), n_br, burstTaken.data(),
                                 n_br, ExecMode::user);
    };
    bool bp_async = prm.pool && n_br >= asyncMinBranches;
    if (bp_async)
        prm.pool->launchAsync(bp_update);

    Cycles data_stall = 0;
    if (n_refs > 0) {
        auto r = caches.accessBatch(physCore, burstAddrs.data(), n_refs,
                                    false, ExecMode::user);
        data_stall = stallSum(r, n_refs);
    }
    extra += static_cast<Cycles>(static_cast<double>(data_stall) /
                                 std::max(spec.mlp, 1.0));

    // Instruction fetch: the text stream wraps incrementally exactly
    // like the reference loop, then goes through the L1I as one run.
    std::uint64_t n_lines = spec.instructions / 16 + 1;
    std::uint64_t text_lines =
        std::max<std::uint64_t>(spec.textBytes / lineSize, 1);
    std::uint64_t pos = fetchSeq % text_lines;
    burstAddrs.resize(n_lines);
    for (std::uint64_t i = 0; i < n_lines; ++i) {
        burstAddrs[i] = spec.textBase + pos * lineSize;
        if (++pos == text_lines)
            pos = 0;
    }
    {
        auto r = caches.accessBatch(physCore, burstAddrs.data(), n_lines,
                                    true, ExecMode::user);
        extra += stallSum(r, n_lines);
    }

    // Cold-path fetches.
    if (spec.icacheColdLines > 0) {
        burstAddrs.resize(spec.icacheColdLines);
        for (std::uint32_t i = 0; i < spec.icacheColdLines; ++i)
            burstAddrs[i] = spec.textBase + 0x100'0000 +
                            ((fetchSeq * 13 + i * 67) % 16384) * lineSize;
        auto r = caches.accessBatch(physCore, burstAddrs.data(),
                                    spec.icacheColdLines, true,
                                    ExecMode::user);
        extra += stallSum(r, spec.icacheColdLines);
    }
    fetchSeq += n_lines;

    // Predictor batch (n_pcs == n, so the ring never wraps and pcs[i]
    // pairs with taken[i] like the per-line loop).
    if (bp_async)
        prm.pool->joinAsync();
    else if (n_br > 0)
        bp_update();

    auto base = static_cast<Cycles>(
        static_cast<double>(spec.instructions) * prm.baseCpi);
    Cycles cycles = base + extra + mispred * prm.mispredPenalty;
    auto duration = static_cast<Tick>(
        static_cast<double>(cycles * prm.cyclePeriod) / share);

    uInstr += spec.instructions;
    uCycles += duration / prm.cyclePeriod;
    cCycles += duration / prm.cyclePeriod;

    return duration;
}

Tick
ThreadContext::computeBurstPerLine(const workloads::ComputeSpec &spec)
{
    // Issue-slot share depends on what the SMT sibling is doing right
    // now (sampled at burst start; bursts are short).
    double share = kernel.scheduler().widthShare(core());

    Cycles extra = 0;
    Cycles data_stall = 0;

    // Data references: mostly the hot set, occasionally the cold
    // region (two-level working-set model).
    auto n_refs = static_cast<std::uint64_t>(
        static_cast<double>(spec.instructions) * spec.memRefFrac);
    for (std::uint64_t i = 0; i < n_refs; ++i) {
        VAddr a;
        if (spec.coldBytes > 0 && rng.chance(spec.coldFrac)) {
            a = spec.hotBase + spec.hotBytes +
                (rng.range(spec.coldBytes) & ~7ULL);
        } else {
            a = spec.hotBase + (rng.range(spec.hotBytes) & ~7ULL);
        }
        auto r = caches.access(physCore, a, false, ExecMode::user);
        // max() instead of a conditional: hit/miss is random here, so
        // a host branch on it mispredicts constantly; cmov is free.
        data_stall +=
            std::max(r.latency, prm.l1HitLatency) - prm.l1HitLatency;
    }
    // Overlapped misses (memory-level parallelism) hide part of the
    // data-stall cycles.
    extra += static_cast<Cycles>(static_cast<double>(data_stall) /
                                 std::max(spec.mlp, 1.0));

    // Instruction fetch: one line per 16 instructions, streaming over
    // the text footprint.
    std::uint64_t n_lines = spec.instructions / 16 + 1;
    std::uint64_t text_lines = std::max<std::uint64_t>(
        spec.textBytes / lineSize, 1);
    // One modulo per burst; the loop wraps incrementally (a 64-bit
    // divide per fetched line is measurable host-side).
    std::uint64_t pos = fetchSeq % text_lines;
    for (std::uint64_t i = 0; i < n_lines; ++i) {
        VAddr a = spec.textBase + pos * lineSize;
        if (++pos == text_lines)
            pos = 0;
        auto r = caches.access(physCore, a, true, ExecMode::user);
        extra += std::max(r.latency, prm.l1HitLatency) - prm.l1HitLatency;
    }
    // Cold-path fetches (rare branches, library calls) from a 1 MB
    // region: the workload's intrinsic L1I miss floor.
    for (std::uint32_t i = 0; i < spec.icacheColdLines; ++i) {
        VAddr a = spec.textBase + 0x100'0000 +
                  ((fetchSeq * 13 + i * 67) % 16384) * lineSize;
        auto r = caches.access(physCore, a, true, ExecMode::user);
        extra += std::max(r.latency, prm.l1HitLatency) - prm.l1HitLatency;
    }
    fetchSeq += n_lines;

    // Branches through the shared predictor. Per-site outcomes are
    // strongly biased (branchBias = taken probability), so the
    // baseline misprediction rate is ~(1 - bias) and kernel pollution
    // of the history register / pattern table shows up as extra
    // mispredictions after each OS entry.
    auto n_br = static_cast<std::uint64_t>(
        static_cast<double>(spec.instructions) * spec.branchFrac);
    std::uint64_t mispred = 0;
    for (std::uint64_t i = 0; i < n_br; ++i) {
        std::uint64_t site = rng.range(spec.staticBranches);
        std::uint64_t pc = spec.textBase + site * 16;
        bool taken = rng.chance(spec.branchBias);
        // Count without branching on the (data-dependent) outcome.
        mispred += static_cast<std::uint64_t>(
            !bp.predictAndUpdate(pc, taken, ExecMode::user));
    }

    auto base = static_cast<Cycles>(
        static_cast<double>(spec.instructions) * prm.baseCpi);
    Cycles cycles = base + extra + mispred * prm.mispredPenalty;
    auto duration = static_cast<Tick>(
        static_cast<double>(cycles * prm.cyclePeriod) / share);

    uInstr += spec.instructions;
    uCycles += duration / prm.cyclePeriod; // wall cycles in user mode
    cCycles += duration / prm.cyclePeriod;

    return duration;
}

} // namespace hwdp::cpu

/**
 * @file
 * SMT co-location scenario (paper Section VI-C, "Polling vs Context
 * Switching"): an I/O-bound thread and a compute-bound thread pinned
 * to the two hardware threads of one physical core.
 *
 * Under OSDP the I/O thread's kernel work competes for issue slots
 * and pollutes the caches; under HWDP it stalls silently while the
 * SMU works, leaving the whole core to its sibling.
 *
 *   $ ./build/examples/smt_colocation [kernel]
 */

#include <cstdio>
#include <string>

#include "system/system.hh"
#include "workloads/fio.hh"
#include "workloads/spec_like.hh"

using namespace hwdp;

namespace {

struct Result
{
    std::uint64_t fioOps;
    double specIpc;
};

Result
coRun(system::PagingMode mode, const std::string &kernel)
{
    system::MachineConfig cfg;
    cfg.mode = mode;
    cfg.memFrames = 64 * 1024;

    system::System sys(cfg);
    auto mf = sys.mapDataset("fio.dat", 512 * 1024); // stays cold

    unsigned sibling = sys.kernel().scheduler().siblingOf(0);
    auto *fio = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 0);
    auto *fio_tc = sys.addThread(*fio, 0, *mf.as);

    auto *spec = sys.makeWorkload<workloads::SpecLikeWorkload>(kernel, 0);
    auto *spec_as = sys.kernel().createAddressSpace();
    auto *spec_tc = sys.addThread(*spec, sibling, *spec_as);

    sys.runFor(milliseconds(50.0));
    return Result{fio_tc->appOps(), spec_tc->userIpc()};
}

} // namespace

int
main(int argc, char **argv)
{
    std::string kernel = argc > 1 ? argv[1] : "x264_like";
    std::printf("SMT co-location: FIO (logical core 0) + %s (its "
                "sibling)\n\n", kernel.c_str());

    Result osdp = coRun(system::PagingMode::osdp, kernel);
    Result hwdp = coRun(system::PagingMode::hwdp, kernel);

    std::printf("                     OSDP      HWDP\n");
    std::printf("FIO 4KB reads     %7llu   %7llu   (%.2fx, paper: "
                ">1.72x)\n",
                static_cast<unsigned long long>(osdp.fioOps),
                static_cast<unsigned long long>(hwdp.fioOps),
                static_cast<double>(hwdp.fioOps) /
                    static_cast<double>(osdp.fioOps));
    std::printf("co-runner IPC     %7.3f   %7.3f   (+%.1f%%)\n",
                osdp.specIpc, hwdp.specIpc,
                (hwdp.specIpc / osdp.specIpc - 1.0) * 100.0);
    std::printf("\nthe stalled HWDP pipeline consumes no issue slots, "
                "so both threads win\n");
    return 0;
}

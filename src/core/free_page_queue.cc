#include "core/free_page_queue.hh"

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::core {

void
FreePageQueue::serialize(sim::Serializer &s)
{
    s.section("freepagequeue");
    s.check(cap, "free queue capacity");
    s.check(depth, "free queue prefetch depth");
    s.io(prefetchOn);
    s.io(ring);
    s.io(buffer);
    s.io(nPops);
    s.io(nBufferHits);
    s.io(nEmptyPops);
}

FreePageQueue::FreePageQueue(std::uint64_t capacity,
                             unsigned prefetch_depth)
    : cap(capacity), depth(prefetch_depth)
{
    if (capacity == 0)
        fatal("free page queue: zero capacity");
}

bool
FreePageQueue::push(Pfn pfn)
{
    if (ring.size() >= cap)
        return false;
    ring.push_back(pfn);
    return true;
}

FreePageQueue::PopResult
FreePageQueue::pop(Tick mem_round_trip)
{
    ++nPops;
    PopResult r;
    if (dryHook && dryHook()) {
        ++nEmptyPops;
        return r;
    }
    if (!buffer.empty()) {
        r.ok = true;
        r.pfn = buffer.front();
        buffer.pop_front();
        r.latency = 0;
        ++nBufferHits;
        return r;
    }
    if (!ring.empty()) {
        r.ok = true;
        r.pfn = ring.front();
        ring.pop_front();
        r.latency = mem_round_trip; // exposed memory read
        return r;
    }
    ++nEmptyPops;
    return r;
}

void
FreePageQueue::refillPrefetch()
{
    if (!prefetchOn)
        return;
    while (buffer.size() < depth && !ring.empty()) {
        buffer.push_back(ring.front());
        ring.pop_front();
    }
}

void
FreePageQueue::forEachPfn(const std::function<void(Pfn)> &fn) const
{
    for (Pfn pfn : buffer)
        fn(pfn);
    for (Pfn pfn : ring)
        fn(pfn);
}

void
FreePageQueue::setPrefetchEnabled(bool on)
{
    prefetchOn = on;
    if (!on) {
        // Spill buffered entries back so none are stranded.
        while (!buffer.empty()) {
            ring.push_front(buffer.back());
            buffer.pop_back();
        }
    }
}

} // namespace hwdp::core

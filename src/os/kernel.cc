#include "os/kernel.hh"

#include <algorithm>

#include "os/fault_handler.hh"
#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::os {

void
Kernel::serialize(sim::Serializer &s)
{
    s.section("kernel");
    rng.serialize(s);
    kernelExec->serialize(s);
    sched->serialize(s);
    fileSystem->serialize(s);
    blk->serialize(s);
    reverseMap->serialize(s);
    reclaim->serialize(s);
    faults->serialize(s);
    pcache.serialize(s);

    // Per-frame metadata: pointers become (file id, asid) pairs the
    // identically-booted restore target resolves back.
    std::uint64_t nf = framePages.size();
    s.check(nf, "frame count");
    for (auto &pg : framePages) {
        std::uint32_t fileId = pg.file ? pg.file->id() : ~0u;
        std::uint32_t asid = pg.as ? pg.as->id() : ~0u;
        s.io(fileId);
        s.io(asid);
        s.io(pg.index);
        s.io(pg.vaddr);
        auto flags = static_cast<std::uint8_t>(
            (pg.inUse << 0) | (pg.dirty << 1) | (pg.referenced << 2) |
            (pg.active << 3) | (pg.lruLinked << 4) |
            (pg.inPageCache << 5) | (pg.underWriteback << 6) |
            (pg.inSmuQueue << 7));
        s.io(flags);
        if (s.loading()) {
            pg.file = fileId == ~0u ? nullptr : fileSystem->byId(fileId);
            if (fileId != ~0u && !pg.file)
                throw sim::SerializeError(
                    "restore: frame references unknown file id");
            if (asid == ~0u) {
                pg.as = nullptr;
            } else {
                if (asid >= spaces.size())
                    throw sim::SerializeError(
                        "restore: frame references unknown asid");
                pg.as = spaces[asid].get();
            }
            pg.inUse = flags & (1 << 0);
            pg.dirty = flags & (1 << 1);
            pg.referenced = flags & (1 << 2);
            pg.active = flags & (1 << 3);
            pg.lruLinked = flags & (1 << 4);
            pg.inPageCache = flags & (1 << 5);
            pg.underWriteback = flags & (1 << 6);
            pg.inSmuQueue = flags & (1 << 7);
        }
    }

    std::uint64_t nas = spaces.size();
    s.check(nas, "address space count");
    for (auto &as : spaces)
        as->serialize(s);

    std::vector<std::pair<std::uint32_t, std::uint64_t>> wal(
        walDirtyBytes.begin(), walDirtyBytes.end());
    std::sort(wal.begin(), wal.end());
    s.io(wal);
    if (s.loading()) {
        walDirtyBytes.clear();
        walDirtyBytes.insert(wal.begin(), wal.end());
    }

    // Guarded so single-socket blobs keep the pre-NUMA layout.
    if (prm.sockets > 1)
        s.io(numaRrCursor);

    stats().serialize(s);
}

Pfn
Kernel::allocFrameFor(unsigned core_id)
{
    if (prm.sockets <= 1)
        return pm.alloc();
    unsigned socket = prm.numaRoundRobin
                          ? static_cast<unsigned>(numaRrCursor++ %
                                                  prm.sockets)
                          : socketOfCore(core_id);
    return pm.alloc(socket);
}

Kernel::Kernel(sim::EventQueue &eq, const KernelParams &params,
               mem::PhysMem &pm, mem::CacheHierarchy &caches,
               std::vector<mem::BranchPredictor> &bps, sim::Rng rng)
    : sim::SimObject("kernel", eq), prm(params), pm(pm), rng(rng),
      statMajor(stats().counter("major_faults",
                                "faults requiring device I/O")),
      statMinor(stats().counter("minor_faults", "page-cache hit faults")),
      statSmuFallback(stats().counter(
          "smu_fallback_faults", "misses bounced from the SMU to the OS")),
      statMmapCalls(stats().counter("mmap_calls", "mmap() invocations")),
      statMunmapCalls(stats().counter("munmap_calls",
                                      "munmap() invocations")),
      statWalWrites(stats().counter("wal_write_ios",
                                    "asynchronous write I/Os cut")),
      statOomKills(stats().counter(
          "oom_kills", "threads killed on unreclaimable memory")),
      statFaultLatency(stats().histogram(
          "fault_latency_us", "OS-handled fault latency (us)", 0.5, 400))
{
    kernelExec = std::make_unique<KernelExec>(caches, bps, prm.cyclePeriod,
                                              this->rng.fork());
    sched = std::make_unique<Scheduler>(eq, prm.nLogical, prm.nPhysical,
                                        *kernelExec, prm.smtShare);
    fileSystem = std::make_unique<FileSystem>(this->rng.fork());
    blk = std::make_unique<BlockLayer>(eq, *sched);
    reverseMap = std::make_unique<Rmap>([this](AddressSpace &as, VAddr va) {
        if (shootdownFn)
            shootdownFn(as, va);
    });

    framePages.resize(pm.totalFrames());
    for (std::uint64_t i = 0; i < framePages.size(); ++i)
        framePages[i].pfn = i;

    auto alloc_frames = pm.totalFrames() - pm.reservedCount();
    auto low = static_cast<std::uint64_t>(
        prm.lowWatermarkFrac * static_cast<double>(alloc_frames));
    auto high = static_cast<std::uint64_t>(
        prm.highWatermarkFrac * static_cast<double>(alloc_frames));
    reclaim = std::make_unique<Reclaimer>(*this, prm.reclaimCore,
                                          prm.reclaimPeriod,
                                          std::max<std::uint64_t>(low, 8),
                                          std::max<std::uint64_t>(high, 16));
    sched->addThread(reclaim.get());

    faults = std::make_unique<FaultHandler>(*this);

    // LBA-augmented PTEs must track file-system block remapping
    // (copy-on-write / log-structured updates, Section IV-B).
    fileSystem->setRemapListener(
        [this](File &file, std::uint64_t index, Lba new_lba) {
            if (!file.lbaAugmentedMapping())
                return;
            for (auto &asp : spaces) {
                for (auto &vma : asp->vmas()) {
                    if (vma->file != &file || !vma->fastMmap)
                        continue;
                    if (index < vma->filePageOffset ||
                        index >= vma->filePageOffset + vma->numPages())
                        continue;
                    VAddr va = vma->start +
                               (index - vma->filePageOffset) * pageSize;
                    pte::Entry e = asp->pageTable().readPte(va);
                    if (pte::isLbaAugmented(e)) {
                        BlockDeviceId bdev = file.device();
                        asp->pageTable().writePte(
                            va, pte::makeLbaAugmented(bdev.sid, bdev.dev,
                                                      new_lba, vma->prot));
                    }
                }
            }
        });
}

Kernel::~Kernel() = default;

void
Kernel::attachDevice(ssd::SsdDevice *dev, BlockDeviceId bdev)
{
    for (const auto &a : attached) {
        if (a.bdev == bdev)
            fatal("kernel: device ", bdev.sid, ":", bdev.dev,
                  " attached twice");
    }
    unsigned idx = blk->attachDevice(dev);
    attached.push_back(AttachedDevice{dev, bdev, idx});
}

unsigned
Kernel::deviceIndexOf(BlockDeviceId bdev) const
{
    for (const auto &a : attached) {
        if (a.bdev == bdev)
            return a.blkIndex;
    }
    panic("kernel: unknown block device ", bdev.sid, ":", bdev.dev);
}

ssd::SsdDevice &
Kernel::deviceOf(BlockDeviceId bdev)
{
    for (const auto &a : attached) {
        if (a.bdev == bdev)
            return *a.dev;
    }
    panic("kernel: unknown block device ", bdev.sid, ":", bdev.dev);
}

Page &
Kernel::page(Pfn pfn)
{
    if (pfn >= framePages.size())
        panic("kernel: pfn ", pfn, " out of range");
    return framePages[pfn];
}

AddressSpace *
Kernel::createAddressSpace()
{
    spaces.push_back(std::make_unique<AddressSpace>(
        static_cast<std::uint32_t>(spaces.size())));
    return spaces.back().get();
}

void
Kernel::setShootdownFn(Rmap::ShootdownFn fn)
{
    shootdownFn = std::move(fn);
}

void
Kernel::mmapFile(Thread &t, AddressSpace &as, File &file, bool fast_mmap,
                 std::function<void(Vma *)> done)
{
    ++statMmapCalls;
    Vma *vma = as.addVma(&file, 0, file.numPages(), fast_mmap,
                         pte::writableBit | pte::userBit);

    unsigned phys = sched->physCoreOf(t.core());
    Tick dur = kernelExec->run(phys, phases::syscallEntryExit);

    if (fast_mmap) {
        std::uint64_t populated = populateFastVma(as, file, vma);
        dur += kernelExec->runBatch(phys, phases::mmapSetupPerPage,
                                    populated);
    }

    eq.postIn(dur, [done = std::move(done), vma] { done(vma); },
                        "kernel.mmap");
}

std::uint64_t
Kernel::populateFastVma(AddressSpace &as, File &file, Vma *vma)
{
    file.markLbaAugmented();
    BlockDeviceId bdev = file.device();
    std::uint64_t populated = 0;
    for (std::uint64_t i = 0; i < vma->numPages(); ++i) {
        VAddr va = vma->start + i * pageSize;
        std::uint64_t idx = vma->filePageOffset + i;
        Pfn cached = pcache.lookup(file, idx);
        if (cached != PageCache::noFrame) {
            // Cached page: link it directly (Section IV-B).
            Page &pg = page(cached);
            if (pg.as == nullptr) {
                reverseMap->setMapping(pg, as, va);
                as.pageTable().writePte(
                    va, pte::makePresent(cached, vma->prot));
            }
        } else {
            as.pageTable().writePte(
                va, pte::makeLbaAugmented(bdev.sid, bdev.dev,
                                          file.lbaOf(idx), vma->prot));
        }
        ++populated;
    }
    return populated;
}

Vma *
Kernel::mmapFileSync(AddressSpace &as, File &file, bool fast_mmap)
{
    Vma *vma = as.addVma(&file, 0, file.numPages(), fast_mmap,
                         pte::writableBit | pte::userBit);
    if (fast_mmap)
        populateFastVma(as, file, vma);
    return vma;
}

Vma *
Kernel::mmapAnonSync(AddressSpace &as, std::uint64_t n_pages,
                     bool fast_mmap)
{
    Vma *vma = as.addVma(nullptr, 0, n_pages, fast_mmap,
                         pte::writableBit | pte::userBit);
    if (fast_mmap) {
        // Mark every PTE with the reserved zero-fill LBA: the SMU
        // allocates and installs a zeroed frame without touching any
        // device (Section V).
        for (std::uint64_t i = 0; i < n_pages; ++i) {
            as.pageTable().writePte(
                vma->start + i * pageSize,
                pte::makeLbaAugmented(0, 0, pte::zeroFillLba,
                                      vma->prot));
        }
    }
    return vma;
}

void
Kernel::munmapVma(Thread &t, AddressSpace &as, Vma *vma,
                  std::function<void()> done)
{
    ++statMunmapCalls;
    auto teardown = [this, &t, &as, vma, done = std::move(done)] {
        unsigned phys = sched->physCoreOf(t.core());
        Tick dur = kernelExec->run(phys, phases::syscallEntryExit);
        std::uint64_t touched = 0;
        as.pageTable().forEachPte(
            vma->start, vma->end, [&](VAddr, EntryRef ref) {
                pte::Entry e = ref.value();
                if (pte::isPresent(e)) {
                    Page &pg = page(pte::pfnOf(e));
                    if (pg.as == &as)
                        reverseMap->clearMapping(pg);
                    // Pages stay in the page cache/LRU for reuse.
                }
                ref.write(0);
                ++touched;
            });
        dur += kernelExec->runBatch(phys, phases::mmapSetupPerPage,
                                    touched);
        if (hwdpHooks.vmaUnmapped)
            hwdpHooks.vmaUnmapped(vma);
        as.removeVma(vma);
        eq.postIn(dur, done, "kernel.munmap");
    };

    // Races between SMU page-miss handling and PTE unmapping are
    // prevented by waiting on outstanding misses (the SMU barrier),
    // then synchronising metadata, then tearing down (Section IV-C).
    auto sync_then_teardown = [this, &as, vma, &t,
                               teardown = std::move(teardown)] {
        if (hwdpHooks.syncMetadata && vma->fastMmap) {
            hwdpHooks.syncMetadata(as, vma->start, vma->end, t.core(),
                                   teardown);
        } else {
            teardown();
        }
    };
    if (hwdpHooks.smuBarrier && vma->fastMmap)
        hwdpHooks.smuBarrier(sync_then_teardown);
    else
        sync_then_teardown();
}

void
Kernel::msyncVma(Thread &t, Vma *vma, std::function<void()> done)
{
    AddressSpace *as = nullptr;
    for (auto &asp : spaces) {
        if (asp->findVma(vma->start) == vma)
            as = asp.get();
    }
    if (!as)
        panic("msync: VMA not found in any address space");

    auto writeback = [this, &t, vma, as, done = std::move(done)] {
        unsigned core = t.core();
        unsigned phys = sched->physCoreOf(core);
        Tick dur = kernelExec->run(phys, phases::syscallEntryExit);

        auto remaining = std::make_shared<std::uint64_t>(0);
        auto finished = std::make_shared<bool>(false);
        auto maybe_done = [remaining, finished,
                           done = std::move(done)]() mutable {
            if (*finished && *remaining == 0)
                done();
        };

        as->pageTable().forEachPte(
            vma->start, vma->end, [&](VAddr, EntryRef ref) {
                pte::Entry e = ref.value();
                if (!pte::isPresent(e))
                    return;
                Page &pg = page(pte::pfnOf(e));
                if (!(pg.dirty || pte::isDirty(e)) || pg.underWriteback)
                    return;
                pg.underWriteback = true;
                kernelExec->run(phys, phases::writebackSubmit);
                ++*remaining;
                unsigned dev = deviceIndexOf(vma->file->device());
                blk->submit(core, dev, vma->file->lbaOf(pg.index), true,
                            BlockLayer::IoClass::writeback,
                            [this, &pg, remaining, maybe_done]() mutable {
                                pg.underWriteback = false;
                                pg.dirty = false;
                                --*remaining;
                                maybe_done();
                            });
            });

        eq.postIn(dur,
                            [finished, maybe_done]() mutable {
                                *finished = true;
                                maybe_done();
                            },
                            "kernel.msync");
    };

    // msync must observe consistent OS metadata: sync first (IV-C).
    if (hwdpHooks.syncMetadata && vma->fastMmap)
        hwdpHooks.syncMetadata(*as, vma->start, vma->end, t.core(),
                               writeback);
    else
        writeback();
}

void
Kernel::writeFile(Thread &t, File &file, std::uint64_t page_index,
                  std::uint64_t bytes, std::function<void()> done)
{
    unsigned core = t.core();
    unsigned phys = sched->physCoreOf(core);
    Tick dur = kernelExec->run(phys, phases::syscallEntryExit);
    dur += kernelExec->run(phys, phases::writeSyscall);

    std::uint64_t &dirty = walDirtyBytes[file.id()];
    dirty += bytes;
    std::uint64_t chunk = prm.writebackChunkPages * pageSize;
    while (dirty >= chunk) {
        dirty -= chunk;
        ++statWalWrites;
        // Background writeback: asynchronous, lighter completion.
        Lba lba = file.lbaOf(page_index % file.numPages());
        blk->submit(core, deviceIndexOf(file.device()), lba, true,
                    BlockLayer::IoClass::writeback, [] {});
    }

    eq.postIn(dur, std::move(done), "kernel.write");
}

void
Kernel::forkRevert(AddressSpace &as)
{
    // fork(): shared file pages across processes are unsupported, so
    // all LBA-augmented PTEs revert to OS-handled ones and resident
    // hardware-handled PTEs are synchronised immediately (Section V).
    for (auto &vma : as.vmas()) {
        if (!vma->fastMmap)
            continue;
        as.pageTable().forEachPte(
            vma->start, vma->end, [&](VAddr va, EntryRef ref) {
                pte::Entry e = ref.value();
                if (pte::isLbaAugmented(e)) {
                    ref.write(0); // plain non-present: OS handles it
                } else if (pte::needsMetadataSync(e)) {
                    syncHardwareHandledPte(as, va, ref);
                }
            });
        vma->fastMmap = false;
    }
}

void
Kernel::handlePageFault(Thread &t, AddressSpace &as, VAddr vaddr,
                        bool is_write, bool smu_fallback,
                        std::function<void()> resume)
{
    faults->handle(t, as, vaddr, is_write, smu_fallback,
                   std::move(resume));
}

void
Kernel::installPage(AddressSpace &as, Vma &vma, VAddr vaddr, Pfn pfn,
                    bool synced)
{
    Page &pg = page(pfn);
    pg.inUse = true;
    pg.file = vma.file;
    pg.index = vma.fileIndexOf(vaddr);
    pg.referenced = true;
    reverseMap->setMapping(pg, as, vaddr);
    as.pageTable().writePte(vaddr,
                            pte::makePresent(pfn, vma.prot, !synced));
    if (synced) {
        if (vma.file) {
            pcache.insert(*vma.file, pg.index, pfn);
            pg.inPageCache = true;
        }
        reclaim->lru().insertInactive(pg);
    } else {
        as.pageTable().markUpperLba(vaddr);
    }
}

void
Kernel::installHardwareHandled(AddressSpace &as, Vma &vma, VAddr vaddr,
                               Pfn pfn)
{
    // Only what the hardware writes: PTE (present, LBA bit preserved)
    // and the upper-level LBA bits. OS metadata stays stale until
    // kpted visits this PTE.
    Page &pg = page(pfn);
    pg.inUse = true;
    pg.inSmuQueue = false;
    as.pageTable().writePte(vaddr,
                            pte::makePresent(pfn, vma.prot, true));
    as.pageTable().markUpperLba(vaddr);
}

void
Kernel::syncHardwareHandledPte(AddressSpace &as, VAddr vaddr,
                               EntryRef ref)
{
    pte::Entry e = ref.value();
    if (!pte::needsMetadataSync(e))
        panic("syncHardwareHandledPte: PTE not in hardware-handled state");

    Vma *vma = as.findVma(vaddr);
    if (!vma)
        panic("syncHardwareHandledPte: no VMA at ", vaddr);

    Pfn pfn = pte::pfnOf(e);
    Page &pg = page(pfn);
    pg.inUse = true;
    pg.file = vma->file;
    pg.index = vma->fileIndexOf(vaddr);
    pg.referenced = true;
    if (pg.as == nullptr)
        reverseMap->setMapping(pg, as, vaddr);
    if (vma->file && !pg.inPageCache) {
        pcache.insert(*vma->file, pg.index, pfn);
        pg.inPageCache = true;
    }
    if (!pg.lruLinked)
        reclaim->lru().insertInactive(pg);
    ref.write(pte::clearLbaBit(e));
    if (pteSyncFn)
        pteSyncFn(as, vaddr);
}

void
Kernel::freePage(Page &pg)
{
    if (!pg.inUse)
        panic("freePage: page ", pg.pfn, " not in use");
    if (pg.lruLinked)
        reclaim->lru().remove(pg);
    if (pg.inPageCache && pg.file)
        pcache.remove(*pg.file, pg.index);
    Pfn pfn = pg.pfn;
    pg.resetMetadata();
    pg.pfn = pfn;
    pm.free(pfn);
}

} // namespace hwdp::os

/**
 * @file
 * The SMU's NVMe host controller (Figure 8).
 *
 * Holds one set of queue descriptor registers per block device (up to
 * 8 per SMU, Figure 9): SQ/CQ base addresses, sizes, pointers, the CQ
 * phase and the doorbell addresses. For each device the OS allocates
 * an isolated, urgent-priority NVMe I/O queue pair with interrupts
 * disabled; completions are detected by snooping the memory write the
 * device performs at CQ base + CQ head. Commands are tagged with the
 * PMSHR entry index so the completion unit can resolve them without
 * any lookup structure.
 */

#ifndef HWDP_CORE_NVME_HOST_CONTROLLER_HH
#define HWDP_CORE_NVME_HOST_CONTROLLER_HH

#include <array>
#include <functional>

#include "sim/sim_object.hh"
#include "ssd/ssd_device.hh"

namespace hwdp::core {

class NvmeHostController : public sim::SimObject
{
  public:
    struct Timing
    {
        /** 64 B NVMe command write to host memory. */
        Tick cmdWrite = nanoseconds(77.16);
        /** Posted PCIe register write (SQ doorbell). */
        Tick doorbell = nanoseconds(1.60);
        /** Completion-unit protocol handling, in cycles. */
        Cycles completionCycles = 2;
        Tick cyclePeriod = 357;
    };

    /** Maximum block devices per SMU: 3-bit device id (Section III-B). */
    static constexpr unsigned maxDevices = 8;

    /** Bits per descriptor register set (for the area model). */
    static constexpr unsigned descriptorBits = 352;

    NvmeHostController(std::string name, sim::EventQueue &eq,
                       const Timing &timing);

    /**
     * Install the queue descriptor registers for @p dev_id: allocates
     * an isolated urgent-priority queue pair on the device with
     * interrupts disabled and arms the CQ-write snooper.
     */
    void configureDevice(unsigned dev_id, ssd::SsdDevice *dev,
                         std::uint16_t queue_depth = 1024);

    bool deviceConfigured(unsigned dev_id) const;

    /** Queue id of the isolated SMU queue on device @p dev_id. */
    std::uint16_t queueIdOf(unsigned dev_id) const
    {
        return descs[dev_id].qid;
    }

    /**
     * Issue a 4 KB read of @p lba on @p dev_id into @p dma_addr,
     * tagged with @p tag (the PMSHR index). @p issued fires once the
     * doorbell write completes (device time starts there); the
     * controller-wide completion callback fires with the tag when the
     * CQ write is snooped and the completion protocol has run.
     */
    void issueRead(unsigned dev_id, Lba lba, PAddr dma_addr,
                   std::uint16_t tag, std::function<void()> issued);

    /**
     * issueRead() with the command generated at logical time @p at
     * (>= now()): the inline fault fast path issues from within an
     * earlier event. issueRead() is issueReadAt(..., now()).
     */
    void issueReadAt(unsigned dev_id, Lba lba, PAddr dma_addr,
                     std::uint16_t tag, std::function<void()> issued,
                     Tick at);

    /**
     * Completion delivery to the page miss handler. @p status is the
     * NVMe completion status (0 = success); the handler owns the
     * retry/bounce policy for errors. @p at is the logical time the
     * completion protocol finished — now() on the reference path, and
     * possibly ahead of now() when the fast path delivered inline.
     */
    void setCompletionCallback(
        std::function<void(std::uint16_t tag, std::uint16_t status,
                           Tick at)>
            fn)
    {
        onComplete = std::move(fn);
    }

    /**
     * Fast-path mode: doorbell writes and successful completions run
     * inline on the logical clock when the timing gate allows, instead
     * of via "nvme.doorbell"/"nvme.complete" events. Simulated results
     * are bit-identical either way.
     */
    void setFastPath(bool on) { fastPath = on; }
    bool fastPathEnabled() const { return fastPath; }

    const Timing &timing() const { return tm; }

    std::uint64_t readsIssued() const { return statIssued.value(); }
    std::uint64_t errorsSnooped() const { return statErrors.value(); }

    // ---- Host-side observability (never part of simulated state) ----
    std::uint64_t inlineDoorbells() const { return nInlineDoorbells; }
    std::uint64_t eventDoorbells() const { return nEventDoorbells; }
    std::uint64_t inlineCompletions() const { return nInlineCompletions; }
    std::uint64_t eventCompletions() const { return nEventCompletions; }

    /** Checkpoint the counters; descriptor registers are verified. */
    void serialize(sim::Serializer &s);

  private:
    struct Descriptor
    {
        bool valid = false;
        ssd::SsdDevice *dev = nullptr;
        std::uint16_t qid = 0;
    };

    Timing tm;
    std::array<Descriptor, maxDevices> descs;
    std::function<void(std::uint16_t, std::uint16_t, Tick)> onComplete;
    bool fastPath = false;

    std::uint64_t nInlineDoorbells = 0;
    std::uint64_t nEventDoorbells = 0;
    std::uint64_t nInlineCompletions = 0;
    std::uint64_t nEventCompletions = 0;

    sim::Counter &statIssued;
    sim::Counter &statCompleted;
    sim::Counter &statErrors;

    void onCqWrite(unsigned dev_id, const nvme::CompletionEntry &cqe);
};

} // namespace hwdp::core

#endif // HWDP_CORE_NVME_HOST_CONTROLLER_HH

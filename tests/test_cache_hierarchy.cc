/**
 * @file
 * Tests for the three-level cache hierarchy.
 */

#include <gtest/gtest.h>

#include "mem/cache_hierarchy.hh"
#include "sim/logging.hh"

using namespace hwdp;
using namespace hwdp::mem;

namespace {

CacheParams
tinyParams()
{
    CacheParams p;
    p.l1iBytes = 4096;
    p.l1dBytes = 4096;
    p.l2Bytes = 16 * 1024;
    p.llcBytes = 64 * 1024;
    p.llcAssoc = 16;
    return p;
}

} // namespace

TEST(CacheHierarchy, ColdMissPaysDramLatency)
{
    CacheHierarchy h(2, tinyParams());
    auto r = h.access(0, 0x10000, false, ExecMode::user);
    EXPECT_TRUE(r.l1Miss);
    EXPECT_TRUE(r.l2Miss);
    EXPECT_TRUE(r.llcMiss);
    EXPECT_EQ(r.latency, tinyParams().dramLatency);
}

TEST(CacheHierarchy, SecondAccessHitsL1)
{
    CacheHierarchy h(2, tinyParams());
    h.access(0, 0x10000, false, ExecMode::user);
    auto r = h.access(0, 0x10000, false, ExecMode::user);
    EXPECT_FALSE(r.l1Miss);
    EXPECT_EQ(r.latency, tinyParams().l1Latency);
}

TEST(CacheHierarchy, PrivateCachesAreNotShared)
{
    CacheHierarchy h(2, tinyParams());
    h.access(0, 0x10000, false, ExecMode::user);
    // Other core misses its private L1/L2 but hits the shared LLC.
    auto r = h.access(1, 0x10000, false, ExecMode::user);
    EXPECT_TRUE(r.l1Miss);
    EXPECT_TRUE(r.l2Miss);
    EXPECT_FALSE(r.llcMiss);
    EXPECT_EQ(r.latency, tinyParams().llcLatency);
}

TEST(CacheHierarchy, InstructionAndDataSplit)
{
    CacheHierarchy h(1, tinyParams());
    h.access(0, 0x20000, true, ExecMode::user);
    // Same line as data: misses the L1D (split caches) but hits L2.
    auto r = h.access(0, 0x20000, false, ExecMode::user);
    EXPECT_TRUE(r.l1Miss);
    EXPECT_FALSE(r.l2Miss);
}

TEST(CacheHierarchy, ModeCountersAttributeCorrectly)
{
    CacheHierarchy h(1, tinyParams());
    h.access(0, 0x1000, false, ExecMode::user);
    h.access(0, 0x2000, false, ExecMode::kernel);
    h.access(0, 0x3000, true, ExecMode::kernel);
    auto &u = h.counters(ExecMode::user);
    auto &k = h.counters(ExecMode::kernel);
    EXPECT_EQ(u.l1dAccesses, 1u);
    EXPECT_EQ(u.l1dMisses, 1u);
    EXPECT_EQ(k.l1dAccesses, 1u);
    EXPECT_EQ(k.l1iAccesses, 1u);
    EXPECT_EQ(k.l1iMisses, 1u);
}

TEST(CacheHierarchy, KernelEvictsUserState)
{
    CacheHierarchy h(1, tinyParams());
    // Fill the 4 KB L1D with user lines.
    for (std::uint64_t a = 0; a < 4096; a += 64)
        h.access(0, a, false, ExecMode::user);
    // Kernel streams 4 KB of its own lines through the same L1D.
    for (std::uint64_t a = 0x100000; a < 0x101000; a += 64)
        h.access(0, a, false, ExecMode::kernel);
    // User lines re-miss: pollution.
    auto before = h.counters(ExecMode::user).l1dMisses;
    for (std::uint64_t a = 0; a < 4096; a += 64)
        h.access(0, a, false, ExecMode::user);
    auto after = h.counters(ExecMode::user).l1dMisses;
    EXPECT_GT(after - before, 32u);
}

TEST(CacheHierarchy, BadCoreIndexPanics)
{
    CacheHierarchy h(1, tinyParams());
    EXPECT_THROW(h.access(3, 0x0, false, ExecMode::user), PanicError);
}

TEST(CacheHierarchy, ResetCountersZeroes)
{
    CacheHierarchy h(1, tinyParams());
    h.access(0, 0x1000, false, ExecMode::user);
    h.resetCounters();
    EXPECT_EQ(h.counters(ExecMode::user).l1dAccesses, 0u);
}

TEST(CacheHierarchy, ZeroCoresRejected)
{
    EXPECT_THROW(CacheHierarchy(0, tinyParams()), FatalError);
}

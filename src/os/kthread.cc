#include "os/kthread.hh"

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::os {

void
KThread::serialize(sim::Serializer &s)
{
    if (s.saving() && timerArmed)
        throw sim::SerializeError(
            "checkpoint: kthread '" + name() +
            "' has an armed timer; quiesce (stop + drain) first");
    serializeState(s);
    s.check(per, "kthread period");
    s.io(due);
    s.io(stopped);
    if (s.loading())
        timerArmed = false;
    s.io(nBatches);
}

void
KThread::restart()
{
    stopped = false;
    armTimer();
}

KThread::KThread(std::string name, unsigned core, Scheduler &sched,
                 sim::EventQueue &eq, Tick period)
    : Thread(std::move(name), core), sched(sched), eq(eq), per(period)
{
    kthread = true;
    if (period == 0)
        fatal("kthread '", this->name(), "': zero period");
}

void
KThread::armTimer()
{
    if (stopped || timerArmed)
        return;
    timerArmed = true;
    eq.postIn(per,
                        [this] {
                            timerArmed = false;
                            if (stopped)
                                return;
                            due = true;
                            sched.wake(this);
                        },
                        "kthread.timer");
}

void
KThread::kick()
{
    if (stopped)
        return;
    due = true;
    sched.wake(this);
}

void
KThread::run()
{
    if (!due || stopped) {
        // First dispatch (or a spurious one): go to sleep until the
        // timer fires.
        armTimer();
        sched.block(this);
        return;
    }
    due = false;
    ++nBatches;
    batch([this] {
        if (due && !stopped) {
            // Kicked while the batch ran (e.g. the SMU free-page queue
            // drained): run another batch right away.
            sched.yield(this);
            return;
        }
        armTimer();
        sched.block(this);
    });
}

} // namespace hwdp::os

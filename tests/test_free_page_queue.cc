/**
 * @file
 * Tests for the SMU free page queue and its prefetch buffer.
 */

#include <gtest/gtest.h>

#include "core/free_page_queue.hh"
#include "sim/logging.hh"

using namespace hwdp;
using namespace hwdp::core;

TEST(FreePageQueue, PushPopFifo)
{
    FreePageQueue q(8, 2);
    for (Pfn p = 10; p < 14; ++p)
        EXPECT_TRUE(q.push(p));
    for (Pfn p = 10; p < 14; ++p) {
        auto r = q.pop(90);
        ASSERT_TRUE(r.ok);
        EXPECT_EQ(r.pfn, p);
    }
    EXPECT_TRUE(q.empty());
}

TEST(FreePageQueue, CapacityEnforced)
{
    FreePageQueue q(2, 2);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_FALSE(q.push(3));
    EXPECT_EQ(q.freeSlots(), 0u);
}

TEST(FreePageQueue, EmptyPopFails)
{
    FreePageQueue q(4, 2);
    auto r = q.pop(90);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(q.emptyPops(), 1u);
}

TEST(FreePageQueue, PopWithoutPrefetchExposesMemoryLatency)
{
    FreePageQueue q(4, 2);
    q.push(1);
    auto r = q.pop(90);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.latency, 90u);
    EXPECT_EQ(q.bufferHits(), 0u);
}

TEST(FreePageQueue, PrefetchedPopIsFree)
{
    FreePageQueue q(8, 4);
    for (Pfn p = 1; p <= 6; ++p)
        q.push(p);
    q.refillPrefetch();
    EXPECT_EQ(q.buffered(), 4u);
    auto r = q.pop(90);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.pfn, 1u);
    EXPECT_EQ(r.latency, 0u);
    EXPECT_EQ(q.bufferHits(), 1u);
}

TEST(FreePageQueue, PrefetchPreservesFifoOrder)
{
    FreePageQueue q(16, 4);
    for (Pfn p = 1; p <= 8; ++p)
        q.push(p);
    q.refillPrefetch();
    // Two from the buffer, then refill, then interleave with ring.
    EXPECT_EQ(q.pop(90).pfn, 1u);
    EXPECT_EQ(q.pop(90).pfn, 2u);
    q.refillPrefetch();
    for (Pfn expect = 3; expect <= 8; ++expect)
        EXPECT_EQ(q.pop(90).pfn, expect);
}

TEST(FreePageQueue, DisablePrefetchSpillsBuffer)
{
    FreePageQueue q(8, 4);
    for (Pfn p = 1; p <= 4; ++p)
        q.push(p);
    q.refillPrefetch();
    EXPECT_EQ(q.buffered(), 4u);
    q.setPrefetchEnabled(false);
    EXPECT_EQ(q.buffered(), 0u);
    // Order preserved after the spill; pops pay memory latency.
    for (Pfn expect = 1; expect <= 4; ++expect) {
        auto r = q.pop(90);
        EXPECT_EQ(r.pfn, expect);
        EXPECT_EQ(r.latency, 90u);
    }
    q.refillPrefetch(); // no-op while disabled
    EXPECT_EQ(q.buffered(), 0u);
}

TEST(FreePageQueue, SizeCountsRingAndBuffer)
{
    FreePageQueue q(8, 2);
    q.push(1);
    q.push(2);
    q.push(3);
    q.refillPrefetch();
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.buffered(), 2u);
}

TEST(FreePageQueue, ZeroCapacityRejected)
{
    EXPECT_THROW(FreePageQueue(0, 2), FatalError);
}

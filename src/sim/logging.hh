/**
 * @file
 * Status and error reporting in the gem5 idiom.
 *
 * panic()  - a simulator bug: a condition that must never happen
 *            regardless of user input. Aborts.
 * fatal()  - a user error (bad configuration, impossible parameters).
 *            Exits with an error code.
 * warn()   - functionality that may not behave as the user expects.
 * inform() - plain status output.
 */

#ifndef HWDP_SIM_LOGGING_HH
#define HWDP_SIM_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace hwdp {

/** Thrown by panic(); tests catch it to exercise failure paths. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(); carries a user-actionable message. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail {

void logMessage(const char *prefix, const std::string &msg);

inline void
format(std::ostringstream &)
{
}

template <typename T, typename... Args>
void
format(std::ostringstream &os, const T &head, const Args &...tail)
{
    os << head;
    format(os, tail...);
}

template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    format(os, args...);
    return os.str();
}

} // namespace detail

/** Report a simulator bug and abort via exception. */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::string msg = detail::concat(args...);
    detail::logMessage("panic", msg);
    throw PanicError(msg);
}

/** Report a user error and terminate via exception. */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::string msg = detail::concat(args...);
    detail::logMessage("fatal", msg);
    throw FatalError(msg);
}

/** Warn about behaviour that might surprise the user. */
template <typename... Args>
void
warn(const Args &...args)
{
    detail::logMessage("warn", detail::concat(args...));
}

/** Print an informational status message. */
template <typename... Args>
void
inform(const Args &...args)
{
    detail::logMessage("info", detail::concat(args...));
}

/** Globally silence warn()/inform() (benches use this). */
void setQuiet(bool quiet);
bool isQuiet();

} // namespace hwdp

#endif // HWDP_SIM_LOGGING_HH

/**
 * @file
 * Tests for the physical frame pool.
 */

#include <gtest/gtest.h>

#include <set>

#include "mem/phys_mem.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

using namespace hwdp;
using namespace hwdp::mem;

TEST(PhysMem, AllocUniqueFrames)
{
    sim::EventQueue eq;
    PhysMem pm(eq, 64);
    std::set<Pfn> seen;
    for (int i = 0; i < 64; ++i) {
        Pfn p = pm.alloc();
        ASSERT_NE(p, PhysMem::invalidPfn);
        EXPECT_TRUE(seen.insert(p).second) << "duplicate frame " << p;
    }
    EXPECT_EQ(pm.alloc(), PhysMem::invalidPfn);
}

TEST(PhysMem, FreeMakesFrameReusable)
{
    sim::EventQueue eq;
    PhysMem pm(eq, 2);
    Pfn a = pm.alloc();
    Pfn b = pm.alloc();
    EXPECT_EQ(pm.alloc(), PhysMem::invalidPfn);
    pm.free(a);
    Pfn c = pm.alloc();
    EXPECT_EQ(c, a);
    (void)b;
}

TEST(PhysMem, DoubleFreePanics)
{
    sim::EventQueue eq;
    PhysMem pm(eq, 4);
    Pfn a = pm.alloc();
    pm.free(a);
    EXPECT_THROW(pm.free(a), PanicError);
}

TEST(PhysMem, FreeingUnallocatedPanics)
{
    sim::EventQueue eq;
    PhysMem pm(eq, 4);
    EXPECT_THROW(pm.free(2), PanicError);
    EXPECT_THROW(pm.free(100), PanicError);
}

TEST(PhysMem, ReservedFramesNeverHandedOut)
{
    sim::EventQueue eq;
    PhysMem pm(eq, 16, 4);
    for (int i = 0; i < 12; ++i)
        EXPECT_NE(pm.alloc(), PhysMem::invalidPfn);
    EXPECT_EQ(pm.alloc(), PhysMem::invalidPfn);
    EXPECT_EQ(pm.reservedCount(), 4u);
}

TEST(PhysMem, ReservedMustLeaveSomeFrames)
{
    sim::EventQueue eq;
    EXPECT_THROW(PhysMem(eq, 4, 4), FatalError);
}

TEST(PhysMem, AccountingInvariantUnderRandomOps)
{
    sim::EventQueue eq;
    PhysMem pm(eq, 128, 8);
    sim::Rng rng(77);
    std::vector<Pfn> held;
    for (int i = 0; i < 5000; ++i) {
        if (held.empty() || rng.chance(0.55)) {
            Pfn p = pm.alloc();
            if (p != PhysMem::invalidPfn)
                held.push_back(p);
        } else {
            auto idx = rng.range(held.size());
            pm.free(held[idx]);
            held[idx] = held.back();
            held.pop_back();
        }
        ASSERT_EQ(pm.allocatedFrames(), held.size());
        ASSERT_EQ(pm.allocatedFrames() + pm.freeFrames() +
                      pm.reservedCount(),
                  pm.totalFrames());
    }
}

TEST(PhysMem, IsAllocatedTracksState)
{
    sim::EventQueue eq;
    PhysMem pm(eq, 8);
    Pfn p = pm.alloc();
    EXPECT_TRUE(pm.isAllocated(p));
    pm.free(p);
    EXPECT_FALSE(pm.isAllocated(p));
    EXPECT_FALSE(pm.isAllocated(9999));
}

TEST(PhysMem, CapacityBytes)
{
    sim::EventQueue eq;
    PhysMem pm(eq, 100, 10);
    EXPECT_EQ(pm.capacityBytes(), 90u * 4096);
}

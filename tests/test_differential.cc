/**
 * @file
 * Differential verification: the same seeded workload must leave the
 * machine in an equivalent logical memory-management state whether
 * misses were handled by the hardware SMU, the software-emulated SMU
 * or conventional OS demand paging — clean and under an injected
 * 1%-error fault plan. A deliberately broken page-table updater must
 * be caught with a readable first-divergence report (negative test).
 */

#include <gtest/gtest.h>

#include <memory>

#include "system/system.hh"
#include "testing/fault_plan.hh"
#include "testing/invariants.hh"
#include "testing/machine_differ.hh"
#include "workloads/fio.hh"
#include "workloads/kv_store.hh"
#include "workloads/ycsb.hh"

using namespace hwdp;
namespace ht = hwdp::testing;

namespace {

system::MachineConfig
smallConfig(system::PagingMode mode)
{
    system::MachineConfig cfg;
    cfg.mode = mode;
    cfg.nLogical = 4;
    cfg.nPhysical = 2;
    cfg.memFrames = 32 * 1024; // pressure-free: reclaim order is
                               // timing-dependent across modes
    cfg.smu.freeQueueCapacity = 512;
    cfg.kpooldPeriod = milliseconds(1.0);
    cfg.kptedPeriod = milliseconds(4.0);
    return cfg;
}

/** Run the FIO workload (the quickstart configuration) to the end. */
ht::MachineState
runFio(system::PagingMode mode, double fault_rate = 0.0,
       bool break_pt_updater = false)
{
    system::System sys(smallConfig(mode));
    ht::FaultPlan plan("plan", sys.eventQueue(), 97);
    auto mf = sys.mapDataset("f", 8 * 1024);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 1500);
    sys.addThread(*wl, 0, *mf.as);
    if (fault_rate > 0.0) {
        plan.attach(sys);
        plan.armAllAtRate(fault_rate);
    }
    if (break_pt_updater)
        sys.smu()->ptUpdater().setSkipUpperMarkForTest(true);

    EXPECT_TRUE(sys.runUntilThreadsDone(seconds(30.0)));
    ht::quiesce(sys);
    if (!break_pt_updater) {
        auto inv = ht::checkInvariants(sys);
        EXPECT_TRUE(inv.empty()) << inv.front();
    }
    return ht::snapshot(sys, pagingModeName(mode));
}

/** Run YCSB-A over the mmap'ed KV store (reads + updates + WAL). */
ht::MachineState
runYcsb(system::PagingMode mode, double fault_rate = 0.0)
{
    system::System sys(smallConfig(mode));
    ht::FaultPlan plan("plan", sys.eventQueue(), 101);
    auto mf = sys.mapDataset("data", 16 * 1024);
    auto *wal = sys.createFile("wal", 8 * 1024);
    auto store = std::make_unique<workloads::KvStore>(mf.vma, wal,
                                                      16 * 1024);
    auto *wl = sys.makeWorkload<workloads::YcsbWorkload>('A', *store,
                                                         1200);
    sys.addThread(*wl, 0, *mf.as);
    if (fault_rate > 0.0) {
        plan.attach(sys);
        plan.armAllAtRate(fault_rate);
    }

    EXPECT_TRUE(sys.runUntilThreadsDone(seconds(30.0)));
    ht::quiesce(sys);
    auto inv = ht::checkInvariants(sys);
    EXPECT_TRUE(inv.empty()) << inv.front();
    return ht::snapshot(sys, pagingModeName(mode));
}

} // namespace

TEST(Differential, FioHwSmuMatchesSwSmuClean)
{
    auto hw = runFio(system::PagingMode::hwdp);
    auto sw = runFio(system::PagingMode::swsmu);
    ht::DiffOptions opt;
    opt.compareFaultTotals = true; // single thread, no pressure
    auto d = ht::diff(hw, sw, opt);
    EXPECT_TRUE(d.equivalent) << d.report;
    EXPECT_EQ(hw.stateHash, sw.stateHash);
}

TEST(Differential, FioHwSmuMatchesOsdpClean)
{
    auto hw = runFio(system::PagingMode::hwdp);
    auto os = runFio(system::PagingMode::osdp);
    auto d = ht::diff(hw, os);
    EXPECT_TRUE(d.equivalent) << d.report;
}

TEST(Differential, FioEquivalentUnderOnePercentFaultPlan)
{
    auto hw = runFio(system::PagingMode::hwdp, 0.01);
    auto sw = runFio(system::PagingMode::swsmu, 0.01);
    auto d = ht::diff(hw, sw);
    EXPECT_TRUE(d.equivalent) << d.report;

    // And a fault-injected run ends in the same state as a clean one:
    // every injected error was retried or bounced to completion.
    auto clean = runFio(system::PagingMode::hwdp);
    auto d2 = ht::diff(hw, clean);
    EXPECT_TRUE(d2.equivalent) << d2.report;
}

TEST(Differential, YcsbKvStoreEquivalentAcrossAllThreeModes)
{
    auto hw = runYcsb(system::PagingMode::hwdp);
    auto sw = runYcsb(system::PagingMode::swsmu);
    auto os = runYcsb(system::PagingMode::osdp);

    auto d1 = ht::diff(hw, sw);
    EXPECT_TRUE(d1.equivalent) << d1.report;
    auto d2 = ht::diff(hw, os);
    EXPECT_TRUE(d2.equivalent) << d2.report;
}

TEST(Differential, YcsbEquivalentUnderFaultPlan)
{
    auto hw = runYcsb(system::PagingMode::hwdp, 0.01);
    auto sw = runYcsb(system::PagingMode::swsmu, 0.01);
    auto d = ht::diff(hw, sw);
    EXPECT_TRUE(d.equivalent) << d.report;
}

TEST(Differential, BrokenPtUpdaterIsCaughtWithReadableReport)
{
    // The seeded defect: the PT updater skips the upper-level LBA
    // marks, so kpted's guided scan never finds the hardware-handled
    // PTEs and their OS metadata stays stale.
    auto broken = runFio(system::PagingMode::hwdp, 0.0, true);
    auto good = runFio(system::PagingMode::swsmu);

    auto d = ht::diff(broken, good);
    ASSERT_FALSE(d.equivalent);
    EXPECT_GT(d.divergences, 0u);
    // The report names the first divergent page and both states.
    EXPECT_NE(d.report.find("UNSYNCED"), std::string::npos)
        << d.report;
    EXPECT_NE(d.report.find("va 0x"), std::string::npos) << d.report;
    EXPECT_NE(d.report.find("HWDP"), std::string::npos) << d.report;
}

TEST(Differential, SnapshotHashIsStableAcrossIdenticalRuns)
{
    auto a = runFio(system::PagingMode::hwdp);
    auto b = runFio(system::PagingMode::hwdp);
    EXPECT_EQ(a.stateHash, b.stateHash);
    auto d = ht::diff(a, b);
    EXPECT_TRUE(d.equivalent) << d.report;
}

/**
 * @file
 * Hardware page-table walker, extended for LBA-augmented PTEs.
 *
 * On a TLB miss the walker reads the four levels of the tree through
 * the cache hierarchy. The extension (Section III-B): when the leaf
 * PTE has present=0 and LBA=1 the walker does not raise an exception —
 * it classifies the access as a hardware-handled page miss and hands
 * the MMU the three entry references plus the <SID, device, LBA>
 * triple the SMU request needs.
 */

#ifndef HWDP_CPU_WALKER_HH
#define HWDP_CPU_WALKER_HH

#include "mem/cache_hierarchy.hh"
#include "os/page_table.hh"
#include "os/vma.hh"
#include "sim/types.hh"

namespace hwdp::cpu {

class Walker
{
  public:
    enum class Classification {
        present,  ///< Translation available; PTE returned.
        osFault,  ///< present=0, LBA=0: raise an exception.
        hwMiss,   ///< present=0, LBA=1: send to the SMU.
    };

    struct Outcome
    {
        Classification kind = Classification::osFault;
        Tick latency = 0;        ///< Walk latency (cache accesses).
        os::pte::Entry entry = 0;
        os::WalkRefs refs;       ///< Valid for present/hwMiss.
    };

    Walker(mem::CacheHierarchy &caches, unsigned phys_core,
           Tick cycle_period);

    /**
     * Walk the tree for @p vaddr, charging cache accesses. Sets the
     * accessed bit on a present PTE (the hardware A-bit update).
     */
    Outcome walk(os::AddressSpace &as, VAddr vaddr);

    std::uint64_t walks() const { return nWalks; }

  private:
    mem::CacheHierarchy &caches;
    unsigned physCore;
    Tick period;
    std::uint64_t nWalks = 0;
};

} // namespace hwdp::cpu

#endif // HWDP_CPU_WALKER_HH

#include "mem/branch_predictor.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hwdp::mem {

BranchPredictor::BranchPredictor(unsigned history_bits)
    : historyBits(history_bits)
{
    if (history_bits == 0 || history_bits > 24)
        fatal("branch predictor: unreasonable history length ",
              history_bits);
    historyMask = (1ULL << historyBits) - 1;
    pht.assign(std::size_t(1) << historyBits, 1); // weakly not-taken
}

std::uint64_t
BranchPredictor::lookups(ExecMode mode) const
{
    return nLookups[static_cast<unsigned>(mode)];
}

std::uint64_t
BranchPredictor::mispredicts(ExecMode mode) const
{
    return nMiss[static_cast<unsigned>(mode)];
}

double
BranchPredictor::missRate(ExecMode mode) const
{
    auto m = static_cast<unsigned>(mode);
    return nLookups[m]
               ? static_cast<double>(nMiss[m]) /
                     static_cast<double>(nLookups[m])
               : 0.0;
}

void
BranchPredictor::reset()
{
    ghr = 0;
    std::fill(pht.begin(), pht.end(), 1);
    nLookups[0] = nLookups[1] = 0;
    nMiss[0] = nMiss[1] = 0;
}

} // namespace hwdp::mem

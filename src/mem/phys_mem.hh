/**
 * @file
 * Physical memory frame pool.
 *
 * Models the machine's DRAM as a pool of 4 KB frames. Only frame
 * accounting is simulated — page payloads never exist. The OS reclaim
 * logic and the SMU free-page queue both draw from this pool, so the
 * pool is the ground truth for "how much memory the machine has",
 * which is what the paper's dataset:memory ratios control.
 *
 * Multi-socket machines partition the allocatable range into one
 * contiguous span per socket (the usual SRAT layout): socketOf() is a
 * division, and per-socket free lists let kpoold keep each socket's
 * free-page queue filled with home-socket frames. A single-socket
 * machine has exactly one list and behaves byte-identically to the
 * pre-NUMA pool.
 */

#ifndef HWDP_MEM_PHYS_MEM_HH
#define HWDP_MEM_PHYS_MEM_HH

#include <cstdint>
#include <vector>

#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace hwdp::mem {

class PhysMem : public sim::SimObject
{
  public:
    /** Sentinel for "no frame". */
    static constexpr Pfn invalidPfn = ~Pfn(0);

    /**
     * @param n_frames Total number of 4 KB frames in the machine.
     * @param reserved Frames set aside for the kernel image / fixed
     *                 structures; never allocatable.
     * @param n_sockets DRAM nodes; the allocatable range is split into
     *                  this many contiguous spans.
     */
    PhysMem(sim::EventQueue &eq, std::uint64_t n_frames,
            std::uint64_t reserved = 0, unsigned n_sockets = 1);

    /** Allocate one frame; returns invalidPfn when exhausted. */
    Pfn alloc() { return alloc(0); }

    /**
     * Allocate preferring @p socket, falling back to the next socket
     * in index order when the preferred node is dry (the kernel's
     * fault path must not OOM while a remote node still has frames).
     * Returns invalidPfn only when every node is exhausted.
     */
    Pfn alloc(unsigned socket);

    /**
     * Allocate strictly on @p socket; invalidPfn when that node is
     * dry. kpoold uses this so every frame it donates to socket s's
     * free-page queue is homed on s (an invariant checkInvariants
     * audits).
     */
    Pfn allocOnSocket(unsigned socket);

    /**
     * Allocate a naturally aligned run of 2^@p order frames on
     * @p socket (the 2 MB huge-page path uses order 9). Returns the
     * base PFN, or invalidPfn when no fully free aligned window exists
     * on that node. The frames are claimed in the allocation bitmap;
     * their free-list entries go stale and are skipped lazily by
     * alloc(), so the single-frame path stays byte-identical whenever
     * this is never called (pageMode = off).
     */
    Pfn allocContig(unsigned socket, unsigned order);

    /** Return a frame to its home node's pool. @pre pfn was allocated. */
    void free(Pfn pfn);

    /** True when @p pfn is currently allocated. */
    bool isAllocated(Pfn pfn) const;

    /** Home NUMA node of @p pfn (contiguous-span partition). */
    unsigned socketOf(Pfn pfn) const
    {
        unsigned s = static_cast<unsigned>(pfn / socketSpan);
        return s < nSockets ? s : nSockets - 1;
    }

    unsigned sockets() const { return nSockets; }

    std::uint64_t totalFrames() const { return nFrames; }
    std::uint64_t freeFrames() const
    {
        std::uint64_t n = 0;
        for (auto c : freeCounts)
            n += c;
        return n;
    }
    std::uint64_t freeFramesOn(unsigned socket) const
    {
        return freeCounts[socket];
    }
    std::uint64_t allocatedFrames() const
    {
        return nFrames - reservedFrames - freeFrames();
    }
    std::uint64_t reservedCount() const { return reservedFrames; }

    /** Total bytes of allocatable memory. */
    std::uint64_t capacityBytes() const
    {
        return (nFrames - reservedFrames) * pageSize;
    }

    /**
     * Checkpoint the allocation state. Each free list is ordered —
     * alloc() pops the back — so it round-trips verbatim; frame count
     * and reservation are boot structure and only verified.
     */
    void serialize(sim::Serializer &s);

  private:
    std::uint64_t nFrames;
    std::uint64_t reservedFrames;
    unsigned nSockets;
    std::uint64_t socketSpan; ///< Allocatable frames per socket span.
    std::vector<std::vector<Pfn>> freeLists;
    std::vector<bool> allocated;

    /**
     * Live (non-stale) entries per free list. Equal to the list size
     * until allocContig claims frames out of the middle; alloc() then
     * skips the stale entries lazily and serialize() compacts them.
     */
    std::vector<std::uint64_t> freeCounts;

    /** Free frames per naturally aligned 512-frame window. */
    std::vector<std::uint16_t> windowFree;

    void rebuildWindowCounts();

    sim::Counter &allocs;
    sim::Counter &frees;
    sim::Counter &failedAllocs;
};

} // namespace hwdp::mem

#endif // HWDP_MEM_PHYS_MEM_HH

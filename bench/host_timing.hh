/**
 * @file
 * Steal-immune host timing for the bench harness.
 *
 * The bench boxes are shared containers: wall clocks swing with
 * co-tenant load (the BENCH_*.json protocol notes record 40% drift on
 * identical binaries), so headline numbers use process CPU time from
 * getrusage — time the scheduler actually granted us, immune to steal
 * and co-tenant interference — and report the median of N repeats
 * instead of a single sample. Wall time is still captured beside it:
 * the parallel simulation mode's speedup is a wall-clock claim (it
 * spends *more* CPU across lanes to finish sooner), so its entries
 * quote both.
 */

#ifndef HWDP_BENCH_HOST_TIMING_HH
#define HWDP_BENCH_HOST_TIMING_HH

#include <algorithm>
#include <chrono>
#include <vector>

#include <sys/resource.h>

namespace hwdp::bench {

/** Process CPU seconds (user + system, all threads), RUSAGE_SELF. */
inline double
processCpuSeconds()
{
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0.0;
    auto tv = [](const timeval &t) {
        return static_cast<double>(t.tv_sec) +
               static_cast<double>(t.tv_usec) * 1e-6;
    };
    return tv(ru.ru_utime) + tv(ru.ru_stime);
}

/** Calling thread's CPU seconds (per-job cost under a SweepRunner). */
inline double
threadCpuSeconds()
{
#ifdef RUSAGE_THREAD
    struct rusage ru;
    if (getrusage(RUSAGE_THREAD, &ru) != 0)
        return 0.0;
    auto tv = [](const timeval &t) {
        return static_cast<double>(t.tv_sec) +
               static_cast<double>(t.tv_usec) * 1e-6;
    };
    return tv(ru.ru_utime) + tv(ru.ru_stime);
#else
    return processCpuSeconds();
#endif
}

/** One measured run: wall clock beside steal-immune CPU time. */
struct TimedRun
{
    double wallSec = 0;
    double cpuSec = 0; ///< Process CPU (all lanes), RUSAGE_SELF.
};

/** Time one invocation of @p fn. */
template <typename Fn>
TimedRun
timeRun(Fn &&fn)
{
    TimedRun r;
    double cpu0 = processCpuSeconds();
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    r.wallSec = std::chrono::duration<double>(t1 - t0).count();
    r.cpuSec = processCpuSeconds() - cpu0;
    return r;
}

/** Median of @p v (averages the middle pair for even sizes). */
inline double
median(std::vector<double> v)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    std::size_t m = v.size() / 2;
    return v.size() % 2 ? v[m] : (v[m - 1] + v[m]) / 2.0;
}

/**
 * Run @p fn @p n times and return the medians of the wall and CPU
 * samples (taken independently: the median wall sample and the median
 * CPU sample need not come from the same repeat). This is the
 * noise-hardened protocol every BENCH_*.json timing entry quotes.
 */
template <typename Fn>
TimedRun
medianOfRuns(unsigned n, Fn &&fn)
{
    std::vector<double> wall, cpu;
    wall.reserve(n);
    cpu.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        TimedRun r = timeRun(fn);
        wall.push_back(r.wallSec);
        cpu.push_back(r.cpuSec);
    }
    return {median(std::move(wall)), median(std::move(cpu))};
}

} // namespace hwdp::bench

#endif // HWDP_BENCH_HOST_TIMING_HH

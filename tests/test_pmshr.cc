/**
 * @file
 * Tests for the PMSHR coalescing CAM.
 */

#include <gtest/gtest.h>

#include "core/pmshr.hh"
#include "sim/logging.hh"

using namespace hwdp;
using namespace hwdp::core;

TEST(Pmshr, StartsEmpty)
{
    Pmshr p(32);
    EXPECT_EQ(p.capacity(), 32u);
    EXPECT_EQ(p.occupancy(), 0u);
    EXPECT_FALSE(p.full());
    EXPECT_EQ(p.lookup(0x1000), -1);
}

TEST(Pmshr, AllocateThenLookup)
{
    Pmshr p(4);
    int idx = p.allocate(0x1000);
    ASSERT_GE(idx, 0);
    EXPECT_EQ(p.lookup(0x1000), idx);
    EXPECT_EQ(p.occupancy(), 1u);
}

TEST(Pmshr, FullReturnsMinusOne)
{
    Pmshr p(2);
    EXPECT_GE(p.allocate(0x1000), 0);
    EXPECT_GE(p.allocate(0x2000), 0);
    EXPECT_TRUE(p.full());
    EXPECT_EQ(p.allocate(0x3000), -1);
}

TEST(Pmshr, InvalidateFreesSlot)
{
    Pmshr p(2);
    int a = p.allocate(0x1000);
    p.allocate(0x2000);
    p.invalidate(a);
    EXPECT_EQ(p.lookup(0x1000), -1);
    EXPECT_EQ(p.occupancy(), 1u);
    EXPECT_GE(p.allocate(0x3000), 0);
}

TEST(Pmshr, DuplicateAllocatePanics)
{
    Pmshr p(4);
    p.allocate(0x1000);
    EXPECT_THROW(p.allocate(0x1000), PanicError);
}

TEST(Pmshr, BadEntryIndexPanics)
{
    Pmshr p(4);
    EXPECT_THROW(p.entry(0), PanicError);  // not valid
    EXPECT_THROW(p.entry(-1), PanicError);
    EXPECT_THROW(p.entry(9), PanicError);
}

TEST(Pmshr, WaitersSurviveUntilInvalidate)
{
    Pmshr p(4);
    int idx = p.allocate(0x1000);
    int calls = 0;
    p.entry(idx).waiters.push_back([&](bool) { ++calls; });
    p.entry(idx).waiters.push_back([&](bool) { ++calls; });
    EXPECT_EQ(p.entry(idx).waiters.size(), 2u);
    for (auto &w : p.entry(idx).waiters)
        w(true);
    EXPECT_EQ(calls, 2);
    p.invalidate(idx);
    EXPECT_EQ(p.occupancy(), 0u);
}

TEST(Pmshr, ZeroEntriesRejected)
{
    EXPECT_THROW(Pmshr(0), FatalError);
}

TEST(Pmshr, EntryBitsMatchPaperArea)
{
    // Three 64-bit addresses + 64-bit PFN + 41-bit LBA + 3-bit device
    // id = 300 bits (Section VI-D).
    EXPECT_EQ(Pmshr::entryBits, 300u);
}

class PmshrCapacity : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PmshrCapacity, FillDrainCycle)
{
    unsigned n = GetParam();
    Pmshr p(n);
    std::vector<int> idxs;
    for (unsigned i = 0; i < n; ++i) {
        int idx = p.allocate(0x1000 + i * 8);
        ASSERT_GE(idx, 0);
        idxs.push_back(idx);
    }
    EXPECT_TRUE(p.full());
    for (unsigned i = 0; i < n; ++i)
        EXPECT_EQ(p.lookup(0x1000 + i * 8), idxs[i]);
    for (int idx : idxs)
        p.invalidate(idx);
    EXPECT_EQ(p.occupancy(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PmshrCapacity,
                         ::testing::Values(1, 2, 8, 32, 64, 128));

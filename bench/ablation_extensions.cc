/**
 * @file
 * Section V extensions, implemented and measured (the paper sketches
 * these as discussion/future work):
 *
 *  1. anonymous-page acceleration — a reserved LBA marks first-touch
 *     pages; the SMU zero-fills without any I/O;
 *  2. sequential prefetch in the SMU — on a demand miss, also fill
 *     the next page when it is still LBA-augmented;
 *  3. timeout-based exception for long-latency I/O — bound the
 *     pipeline-stall time on slow devices by falling back to a
 *     context switch.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace hwdp;
using metrics::Table;

namespace {

struct TouchPages : workloads::Workload
{
    os::Vma *vma;
    std::uint64_t n;
    std::uint64_t i = 0;
    TouchPages(os::Vma *v, std::uint64_t n) : vma(v), n(n) {}
    workloads::Op
    next(sim::Rng &) override
    {
        if (i >= n)
            return workloads::Op::makeDone();
        return workloads::Op::makeMem(vma->start + (i++) * pageSize,
                                      true, true);
    }
    const char *label() const override { return "touch"; }
};

} // namespace

int
main()
{
    metrics::banner("Extension 1: anonymous first-touch acceleration",
                    "reserved zero-fill LBA, SMU bypasses I/O "
                    "(Section V)");
    {
        Table t({"scheme", "mean first-touch latency us",
                 "handled by"});
        for (auto mode :
             {system::PagingMode::osdp, system::PagingMode::hwdp}) {
            auto cfg = bench::paperConfig(mode);
            system::System sys(cfg);
            auto anon = sys.mapAnon(8192);
            auto *wl = sys.makeWorkload<TouchPages>(anon.vma, 8192);
            auto *tc = sys.addThread(*wl, 0, *anon.as);
            sys.runUntilThreadsDone(seconds(30.0));
            double lat = tc->faultedOpLatencyUs().mean();
            t.addRow({system::pagingModeName(mode), Table::num(lat, 2),
                      mode == system::PagingMode::hwdp
                          ? "SMU zero-fill engine"
                          : "OS minor-fault path"});
        }
        t.print();
    }

    metrics::banner("Extension 2: SMU sequential prefetch",
                    "next-page fill on demand misses; PMSHR coalescing "
                    "absorbs the race");
    {
        Table t({"prefetch", "faulting ops", "mean access us",
                 "prefetches issued"});
        for (bool pf : {false, true}) {
            auto cfg = bench::paperConfig(system::PagingMode::hwdp);
            cfg.smu.sequentialPrefetch = pf;
            cfg.kpooldPeriod = microseconds(500.0);
            system::System sys(cfg);
            auto mf = sys.mapDataset("f", 64 * 1024);
            auto *wl = sys.makeWorkload<workloads::FioWorkload>(
                mf.vma, 8000, 300, /*sequential=*/true);
            auto *tc = sys.addThread(*wl, 0, *mf.as);
            sys.runUntilThreadsDone(seconds(60.0));
            t.addRow({pf ? "on" : "off",
                      std::to_string(tc->faultedOps()),
                      Table::num(tc->memLatencyUs().mean(), 2),
                      std::to_string(sys.smu()->prefetches())});
        }
        t.print();
    }

    metrics::banner("Extension 3: timeout exception for slow devices",
                    "bound the pipeline stall; co-located work regains "
                    "the core");
    {
        Table t({"device", "timeout", "stall timeouts",
                 "co-runner user instr (M)"});
        for (const char *prof : {"zssd", "hdd"}) {
            for (bool to : {false, true}) {
                auto cfg = bench::paperConfig(system::PagingMode::hwdp);
                cfg.ssdProfile = prof;
                cfg.hwStallTimeout = to ? microseconds(50.0) : 0;
                system::System sys(cfg);
                auto mf =
                    sys.mapDataset("f", 16 * bench::defaultMemFrames);
                auto *io = sys.makeWorkload<workloads::FioWorkload>(
                    mf.vma, 0);
                sys.addThread(*io, 0, *mf.as);
                auto *spin = sys.makeWorkload<
                    workloads::SpecLikeWorkload>("x264_like", 0);
                auto *spin_as = sys.kernel().createAddressSpace();
                auto *spin_tc = sys.addThread(*spin, 0, *spin_as);

                sys.runFor(milliseconds(20.0));
                t.addRow({prof, to ? "50 us" : "off",
                          std::to_string(
                              sys.core(0).mmu().stallTimeouts()),
                          Table::num(static_cast<double>(
                                         spin_tc->userInstructions()) /
                                         1e6,
                                     2)});
            }
        }
        t.print();
        std::printf("\nexpected: on the HDD the timeout converts "
                    "multi-millisecond stalls into context switches, "
                    "letting the co-runner on the same logical core "
                    "execute; on the Z-SSD it never fires\n");
    }
    return 0;
}

#include "core/pt_updater.hh"

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::core {

void
PageTableUpdater::serialize(sim::Serializer &s)
{
    s.section("ptupdater");
    s.io(nUpdates);
}

Tick
PageTableUpdater::update(const cpu::PageMissRequest &req, Pfn pfn)
{
    using namespace os::pte;

    if (!req.refs.pte.valid() || !req.refs.pmd.valid() ||
        !req.refs.pud.valid())
        panic("pt updater: request without full entry references");

    Entry old = req.refs.pte.value();
    if (isPresent(old))
        panic("pt updater: PTE already present");

    // PFN replaces the LBA field; protection bits survive; the LBA bit
    // stays set so the OS knows metadata synchronisation is pending.
    req.refs.pte.write(makePresent(pfn, protectionOf(old), true));

    // Mark the two upper levels for kpted's guided scan.
    if (!skipUpperMark) {
        req.refs.pmd.write(setLbaBit(req.refs.pmd.value()));
        req.refs.pud.write(setLbaBit(req.refs.pud.value()));
    }

    ++nUpdates;
    return updateCycles * period;
}

} // namespace hwdp::core

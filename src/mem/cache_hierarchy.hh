/**
 * @file
 * Three-level cache hierarchy with a shared LLC.
 *
 * Geometry defaults follow the evaluation machine (Xeon E5-2640 v3):
 * 32 KB L1I + 32 KB L1D and 256 KB L2 per physical core, 20 MB shared
 * LLC. Accesses return the service latency in core cycles and record
 * per-privilege-mode hit/miss counters for the pollution figures.
 */

#ifndef HWDP_MEM_CACHE_HIERARCHY_HH
#define HWDP_MEM_CACHE_HIERARCHY_HH

#include <memory>
#include <vector>

#include "mem/cache_array.hh"
#include "sim/types.hh"

namespace hwdp::sim {
class ShardPool;
}

namespace hwdp::mem {

/** Tunable geometry and latency parameters. */
struct CacheParams
{
    std::uint64_t l1iBytes = 32 * 1024;
    unsigned l1iAssoc = 8;
    std::uint64_t l1dBytes = 32 * 1024;
    unsigned l1dAssoc = 8;
    std::uint64_t l2Bytes = 256 * 1024;
    unsigned l2Assoc = 8;
    std::uint64_t llcBytes = 20 * 1024 * 1024;
    unsigned llcAssoc = 20;

    Cycles l1Latency = 4;
    Cycles l2Latency = 12;
    Cycles llcLatency = 42;
    Cycles dramLatency = 230;
};

/** Outcome of one hierarchy access. */
struct CacheAccessResult
{
    Cycles latency = 0;
    bool l1Miss = false;
    bool l2Miss = false;
    bool llcMiss = false;
};

/** Aggregate outcome of one batched hierarchy access run. */
struct CacheBatchResult
{
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t llcMisses = 0;
    /** Sum of the per-line service latencies. */
    Cycles totalLatency = 0;

    /** Tag-array probes the run issued across all levels. */
    std::uint64_t
    probes(std::uint64_t n) const
    {
        return n + l1Misses + l2Misses;
    }
};

class CacheHierarchy
{
  public:
    CacheHierarchy(unsigned n_cores, const CacheParams &params);

    /** Per-mode miss counters (for Figures 4 and 14). */
    struct ModeCounters
    {
        std::uint64_t l1iAccesses = 0, l1iMisses = 0;
        std::uint64_t l1dAccesses = 0, l1dMisses = 0;
        std::uint64_t l2Misses = 0;
        std::uint64_t llcMisses = 0;
    };

    /**
     * Access one line. Defined inline: every simulated data reference,
     * instruction fetch and page-walk read lands here, so the L1-hit
     * path must not cost a cross-TU call. The cache arrays are stored
     * by value so the tag scan starts after a single index, not a
     * unique_ptr chase.
     * @param core    Physical core index (selects private caches).
     * @param addr    Byte address; only the line address matters.
     * @param is_inst True for instruction fetch (uses the L1I).
     * @param mode    Privilege mode for attribution.
     */
    CacheAccessResult
    access(unsigned core, std::uint64_t addr, bool is_inst, ExecMode mode)
    {
        if (core >= l1d.size()) [[unlikely]]
            badCore(core);

        CacheAccessResult r;
        ModeCounters &mc = modeCtrs[static_cast<unsigned>(mode)];
        CacheArray &first = is_inst ? l1i[core] : l1d[core];

        if (is_inst)
            ++mc.l1iAccesses;
        else
            ++mc.l1dAccesses;

        if (first.access(addr)) {
            r.latency = prm.l1Latency;
            return r;
        }
        r.l1Miss = true;
        if (is_inst)
            ++mc.l1iMisses;
        else
            ++mc.l1dMisses;

        if (l2[core].access(addr)) {
            r.latency = prm.l2Latency;
            return r;
        }
        r.l2Miss = true;
        ++mc.l2Misses;

        if (llc.access(addr)) {
            r.latency = prm.llcLatency;
            return r;
        }
        r.llcMiss = true;
        ++mc.llcMisses;
        r.latency = prm.dramLatency;
        return r;
    }

    /**
     * Access a run of @p n lines level-major: the whole run is
     * streamed through the L1, the compacted miss list through the
     * L2, its misses through the LLC — three dense passes whose loads
     * the host can overlap, instead of n dependent three-level
     * descents. Simulated state and every counter end up bit-identical
     * to n sequential access() calls: each array sees the same
     * addresses in the same relative order (a level's access sequence
     * is a subsequence of the run, and the arrays share no state), so
     * only the interleaving *between* independent arrays changes.
     * Used by the kernel-pollution model, whose phase footprints are
     * natural line runs; per-line latencies are not materialised
     * (pollution charges time by phase cycle budgets, not per line).
     */
    CacheBatchResult accessBatch(unsigned core, const std::uint64_t *addrs,
                                 std::size_t n, bool is_inst,
                                 ExecMode mode);

    const ModeCounters &counters(ExecMode mode) const
    {
        return modeCtrs[static_cast<unsigned>(mode)];
    }

    void resetCounters();

    const CacheParams &params() const { return prm; }
    unsigned numCores() const { return static_cast<unsigned>(l1d.size()); }

    CacheArray &llcArray() { return llc; }

    /** Checkpoint every array and the per-mode miss counters. */
    void serialize(sim::Serializer &s);

    /**
     * Attach a host worker pool: from here on, accessBatch() runs
     * whose length reaches the parallel threshold execute set-sharded
     * across the pool's lanes (one simulation domain per
     * set-index-residue class), with a barrier per level and the miss
     * list compacted on the simulation thread in canonical run order.
     * Simulated state and every statistic stay bit-identical to the
     * serial path for any lane count — the sharded protocol's
     * exactness argument lives on CacheArray::accessBatchShard() and
     * in DESIGN.md section 6g. nullptr detaches (fully serial).
     */
    void setShardPool(sim::ShardPool *pool) { shardPool = pool; }
    sim::ShardPool *pool() const { return shardPool; }

    /**
     * Runs shorter than this stay serial even with a pool attached
     * (region wake-up costs more than the scan). Pure host policy —
     * both paths are bit-identical — exposed so tests can force tiny
     * runs through the sharded path.
     */
    void setParallelMinLines(std::size_t n) { parallelMin = n; }
    std::size_t parallelMinLines() const { return parallelMin; }

  private:
    CacheParams prm;
    std::vector<CacheArray> l1i;
    std::vector<CacheArray> l1d;
    std::vector<CacheArray> l2;
    CacheArray llc;
    ModeCounters modeCtrs[2];

    // Batch scratch, reused across calls (no steady-state allocation):
    // L1 misses, L2 misses, and a sink for the LLC's miss list.
    std::vector<std::uint64_t> batchMiss1;
    std::vector<std::uint64_t> batchMiss2;
    std::vector<std::uint64_t> batchMiss3;

    sim::ShardPool *shardPool = nullptr;
    std::size_t parallelMin = 1024;

    /** Per-line outcomes of one sharded level pass (host scratch). */
    std::vector<std::uint8_t> hitFlags;

    /**
     * One level of a sharded batch: fan accessBatchShard() out over
     * the pool, fold the shard totals, compact the miss list in run
     * order. Returns the hit count (mirrors CacheArray::accessBatch).
     */
    std::size_t runLevelSharded(CacheArray &arr,
                                const std::uint64_t *addrs, std::size_t n,
                                std::uint64_t *miss_out);

    CacheBatchResult accessBatchParallel(unsigned core,
                                         const std::uint64_t *addrs,
                                         std::size_t n, bool is_inst,
                                         ExecMode mode);

    [[noreturn]] void badCore(unsigned core) const;
};

} // namespace hwdp::mem

#endif // HWDP_MEM_CACHE_HIERARCHY_HH

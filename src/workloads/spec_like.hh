/**
 * @file
 * SPEC CPU 2017-like compute kernels for the SMT co-run experiment.
 *
 * Figure 16 co-schedules one CPU-bound thread with the I/O-bound FIO
 * thread on the two hardware threads of a physical core. What matters
 * for that experiment is diversity in issue-slot demand, cache
 * sensitivity and branch behaviour — six synthetic kernels span the
 * space from pointer-chasing (mcf-like) to dense compute (x264-like).
 */

#ifndef HWDP_WORKLOADS_SPEC_LIKE_HH
#define HWDP_WORKLOADS_SPEC_LIKE_HH

#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace hwdp::workloads {

class SpecLikeWorkload : public Workload
{
  public:
    /**
     * @param kernel One of specKernelNames().
     * @param n_bursts Compute bursts to run (each ~5k instructions);
     *                 0 = unbounded.
     */
    SpecLikeWorkload(const std::string &kernel, std::uint64_t n_bursts);

    Op next(sim::Rng &rng) override;
    const char *label() const override { return name.c_str(); }

    static const std::vector<std::string> &kernelNames();

    void serialize(sim::Serializer &s) override;

  private:
    std::string name;
    std::uint64_t remaining;
    bool unbounded;
    ComputeSpec spec;
};

} // namespace hwdp::workloads

#endif // HWDP_WORKLOADS_SPEC_LIKE_HH

/**
 * @file
 * Two-level TLB model (per logical core).
 *
 * Geometry approximates the evaluation machine: a 64-entry 8-way L1
 * DTLB in front of a 1536-entry 8-way L2 STLB. The base machine
 * models 4 KB translations only; with MachineConfig::pageMode engaged
 * the same arrays also hold wide entries — 64 KB NAPOT ranges
 * (reach 4) and 2 MB PMD leaves (reach 9) — tagged by reach and
 * indexed by their base VPN, the usual multi-probe design. A machine
 * built with wide_capable = false (pageMode = off) never inserts a
 * wide entry and the per-reach probes are skipped behind zero entry
 * counts, so its lookup/fill/LRU sequence is byte-identical to the
 * pre-huge-page TLB.
 *
 * Both levels are flat set-associative arrays (the L1 used to be an
 * unordered_map + list LRU, which put two pointer chases and an
 * allocation churn on the per-access fast path). A one-entry last-VPN
 * latch in front of the L1 catches the strong page locality of
 * compute bursts: a latch hit is a single compare. The latch is an
 * index into the L1 array, so recency still updates on every hit and
 * invalidation stays exact; it is reach-aware — a latched wide entry
 * covers every VPN in its range, and invalidations of any covered
 * VPN drop it.
 */

#ifndef HWDP_CPU_TLB_HH
#define HWDP_CPU_TLB_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace hwdp::sim {
class Serializer;
}

namespace hwdp::cpu {

class Tlb
{
  public:
    struct Result
    {
        bool hit = false;      ///< Hit in either level.
        bool l1Hit = false;
        Pfn pfn = 0;           ///< Exact 4 KB frame for the address.
    };

    /**
     * @p l1_assoc is clamped to @p l1_entries, so small test
     * geometries (e.g. 4-entry L1) stay fully associative.
     * @p wide_capable allows wide (NAPOT / 2 MB) entries; off keeps
     * the 4 KB-only behaviour and blob layout.
     */
    Tlb(unsigned l1_entries = 64, unsigned l2_entries = 1536,
        unsigned l2_assoc = 8, unsigned l1_assoc = 8,
        bool wide_capable = false);

    Result
    lookup(VAddr vaddr)
    {
        ++nLookups;
        std::uint64_t vpn = vaddr >> pageShift;

        if (latchIdx != npos &&
            (vpn >> latchReach) == (latchVpn >> latchReach)) {
            Entry &e = l1[latchIdx];
            e.lastUse = ++useClock;
            ++nLatchHits;
            if (e.reach)
                ++nWideHits;
            return Result{true, true,
                          e.pfn + (vpn & ((1ULL << e.reach) - 1))};
        }
        return lookupSlow(vpn);
    }

    /**
     * Install a translation in both levels. @p reach is log2(pages)
     * the entry covers (0 = 4 KB, napotShift, pmdLeafShift); vaddr
     * and pfn are truncated to the range's base. Idempotent: a VPN
     * already resident in a level is left in place (same PFN:
     * untouched; a remap updates the PFN and recency) instead of
     * re-inserting — re-walking a translation that is still in the
     * L1 must not churn the L2's LRU state.
     */
    void insert(VAddr vaddr, Pfn pfn, unsigned reach = 0);

    /**
     * Shoot down the translation for one address: the 4 KB entry and
     * any wide entry whose range covers it, in both levels and the
     * latch.
     */
    void invalidate(VAddr vaddr);

    /**
     * Shoot down every entry overlapping [vaddr, vaddr + pages*4K) —
     * the huge-page demotion/promotion broadcast. Scans both arrays,
     * so it is priced for the rare wide-mode maintenance path, not
     * the per-access one.
     */
    void invalidateRange(VAddr vaddr, std::uint64_t pages);

    /** Full flush (context switch between address spaces). */
    void flush();

    std::uint64_t lookups() const { return nLookups; }
    std::uint64_t l1Misses() const { return nL1Miss; }
    std::uint64_t misses() const { return nMiss; }
    /** L1 hits served by the one-entry last-VPN latch. */
    std::uint64_t latchHits() const { return nLatchHits; }
    /** Hits (either level or latch) served by a wide entry. */
    std::uint64_t wideHits() const { return nWideHits; }

    /** Checkpoint both arrays, the latch, the clock and counters. */
    void serialize(sim::Serializer &s);

  private:
    struct Entry
    {
        std::uint64_t vpn = 0; ///< Base VPN (aligned to 1 << reach).
        Pfn pfn = 0;           ///< Base PFN (aligned to 1 << reach).
        std::uint64_t lastUse = 0;
        bool valid = false;
        std::uint8_t reach = 0; ///< log2(pages) covered.
    };

    static constexpr std::size_t npos = ~std::size_t(0);

    unsigned l1Assoc;
    unsigned l1Sets;
    unsigned l2Assoc;
    unsigned l2Sets;
    bool wideCapable;

    std::vector<Entry> l1; // l1Sets * l1Assoc, row-major by set
    std::vector<Entry> l2; // l2Sets * l2Assoc, row-major by set
    std::uint64_t useClock = 0;

    /** Last translated base VPN and its L1 slot; npos = no latch. */
    std::uint64_t latchVpn = 0;
    std::size_t latchIdx = npos;
    std::uint8_t latchReach = 0;

    /** Valid wide entries per level (index 0 = L1), per reach. */
    std::uint32_t nNapot[2] = {0, 0};
    std::uint32_t nHuge[2] = {0, 0};

    std::uint64_t nLookups = 0;
    std::uint64_t nL1Miss = 0;
    std::uint64_t nMiss = 0;
    std::uint64_t nLatchHits = 0;
    std::uint64_t nWideHits = 0;

    Result lookupSlow(std::uint64_t vpn);
    Entry *find(std::vector<Entry> &lvl, unsigned sets, unsigned assoc,
                std::uint64_t vpn, unsigned reach);
    Entry *fill(std::vector<Entry> &lvl, unsigned sets, unsigned assoc,
                std::uint64_t vpn, Pfn pfn, unsigned reach);

    unsigned levelOf(const std::vector<Entry> &lvl) const
    {
        return &lvl == &l1 ? 0 : 1;
    }
    void countWide(unsigned level, unsigned reach, int delta);
};

} // namespace hwdp::cpu

#endif // HWDP_CPU_TLB_HH

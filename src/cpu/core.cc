#include "cpu/core.hh"

namespace hwdp::cpu {

Core::Core(unsigned logical_id, sim::EventQueue &eq,
           mem::CacheHierarchy &caches, os::Kernel &kernel,
           Tick cycle_period, unsigned pwc_entries)
    : lid(logical_id),
      pid(kernel.scheduler().physCoreOf(logical_id)),
      sibling(kernel.scheduler().siblingOf(logical_id))
{
    mmuUnit = std::make_unique<Mmu>("mmu" + std::to_string(logical_id),
                                    eq, logical_id, caches, kernel,
                                    cycle_period, pwc_entries);
}

} // namespace hwdp::cpu

/**
 * @file
 * Design-choice ablation: free page queue depth and the eager
 * prefetch buffer.
 *
 * The paper's free page fetcher prefetches a few entries into the SMU
 * so the common-case pop costs nothing; without the buffer every miss
 * exposes a host-memory round trip (~90 ns) on the critical path.
 * Queue depth trades memory (pages parked in the queue) against the
 * refill race.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace hwdp;
using metrics::Table;

namespace {

struct Result
{
    double smuMissNs;    ///< Mean hardware miss latency minus device.
    std::uint64_t bufferHits;
    std::uint64_t pops;
    std::uint64_t fallbacks;
};

Result
run(std::uint64_t capacity, bool prefetch)
{
    auto cfg = bench::paperConfig(system::PagingMode::hwdp);
    cfg.smu.freeQueueCapacity = capacity;

    system::System sys(cfg);
    if (!prefetch)
        sys.smu()->freePageQueue().setPrefetchEnabled(false);
    auto mf = sys.mapDataset("fio.dat", 16 * bench::defaultMemFrames);
    for (unsigned th = 0; th < 2; ++th) {
        auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 6000);
        sys.addThread(*wl, th, *mf.as);
    }
    sys.runUntilThreadsDone(seconds(120.0));

    Result r;
    double dev_us = 10.9;
    r.smuMissNs = (sys.smu()->missLatencyUs().mean() - dev_us) * 1000.0;
    r.bufferHits = sys.smu()->freePageQueue().bufferHits();
    r.pops = sys.smu()->freePageQueue().pops();
    r.fallbacks = sys.smu()->rejectedQueueEmpty();
    return r;
}

} // namespace

int
main()
{
    metrics::banner("Ablation: free page queue depth x prefetch buffer",
                    "paper: 4096-entry queue, 16-entry prefetch buffer "
                    "hides the memory round trip");

    Table t({"queue depth", "prefetch", "hw-added ns/miss",
             "buffer hit rate", "queue-empty bounces"});
    for (std::uint64_t cap : {256ULL, 1024ULL, 4096ULL}) {
        for (bool pf : {true, false}) {
            Result r = run(cap, pf);
            double hit = r.pops ? static_cast<double>(r.bufferHits) /
                                      static_cast<double>(r.pops)
                                : 0.0;
            t.addRow({std::to_string(cap), pf ? "on" : "off",
                      Table::num(r.smuMissNs, 0), Table::pct(hit),
                      std::to_string(r.fallbacks)});
        }
    }
    t.print();
    std::printf("\nexpected: prefetch-off adds ~90 ns per miss; small "
                "queues bounce more misses to the OS\n");
    return 0;
}

/**
 * @file
 * The OS kernel model: syscalls, demand paging, memory management.
 *
 * Owns the page-frame metadata, the page cache, the file system, the
 * block layer, the scheduler and the reclaimer, and implements the
 * OSDP page-fault path with the Figure 3 phase structure. The HWDP
 * control plane (fast mmap population, kpted, kpoold, the SW-emulated
 * SMU) hooks in through the interceptor/hook interfaces so the base
 * kernel has no dependency on the hardware extension — mirroring the
 * paper's claim that the extension is OS-agnostic (Section V).
 */

#ifndef HWDP_OS_KERNEL_HH
#define HWDP_OS_KERNEL_HH

#include <functional>
#include <memory>
#include <vector>

#include "mem/cache_hierarchy.hh"
#include "mem/phys_mem.hh"
#include "os/block_layer.hh"
#include "os/file_system.hh"
#include "os/page.hh"
#include "os/page_cache.hh"
#include "os/reclaim.hh"
#include "os/rmap.hh"
#include "os/scheduler.hh"
#include "os/vma.hh"
#include "sim/rng.hh"

namespace hwdp::os {

class FaultHandler;

struct KernelParams
{
    unsigned nLogical = 16;
    unsigned nPhysical = 8;
    Tick cyclePeriod = 357; // 2.8 GHz in ps

    /** Watermarks as fractions of allocatable frames. */
    double lowWatermarkFrac = 0.04;
    double highWatermarkFrac = 0.08;

    /** Background reclaimer: core and period. */
    unsigned reclaimCore = 0;     // chosen by System; last core typical
    Tick reclaimPeriod = milliseconds(1.0);

    /** Dirty bytes accumulated before a WAL writeback I/O is cut. */
    std::uint64_t writebackChunkPages = 1;

    double smtShare = 0.6;

    /**
     * NUMA topology the frame allocator sees: cores are split into
     * equal contiguous groups, one per socket, matching PhysMem's
     * per-socket frame spans. 1 keeps the pre-NUMA single-pool
     * behavior exactly.
     */
    unsigned sockets = 1;

    /** Round-robin fault placement instead of first-touch. */
    bool numaRoundRobin = false;

    /**
     * Translation-reach mode (2 MB THP / NAPOT / transparent
     * coalescing). off keeps the kernel byte-identical to the
     * 4 KB-only machine: no compound metadata, no wide PTE bits, no
     * extra serialized state.
     */
    PageMode pageMode = PageMode::off;
};

class Kernel : public sim::SimObject
{
  public:
    Kernel(sim::EventQueue &eq, const KernelParams &params,
           mem::PhysMem &pm, mem::CacheHierarchy &caches,
           std::vector<mem::BranchPredictor> &bps, sim::Rng rng);
    ~Kernel() override;

    // ---- Subsystems ---------------------------------------------------
    Scheduler &scheduler() { return *sched; }
    KernelExec &kexec() { return *kernelExec; }
    FileSystem &fs() { return *fileSystem; }
    BlockLayer &blockLayer() { return *blk; }
    PageCache &pageCache() { return pcache; }
    Rmap &rmap() { return *reverseMap; }
    Reclaimer &reclaimer() { return *reclaim; }
    mem::PhysMem &physMem() { return pm; }
    const KernelParams &params() const { return prm; }

    // ---- Devices ------------------------------------------------------
    /** Attach an SSD as block device @p bdev; wires the block layer. */
    void attachDevice(ssd::SsdDevice *dev, BlockDeviceId bdev);
    unsigned deviceIndexOf(BlockDeviceId bdev) const;
    ssd::SsdDevice &deviceOf(BlockDeviceId bdev);

    // ---- NUMA placement ---------------------------------------------------
    /** Socket of a logical core under the equal contiguous split. */
    unsigned
    socketOfCore(unsigned core_id) const
    {
        return prm.sockets <= 1
                   ? 0
                   : core_id / (prm.nLogical / prm.sockets);
    }

    /**
     * Allocate a frame for a fault taken on @p core_id under the
     * configured placement policy (first-touch homes the frame on the
     * faulting core's socket, round-robin interleaves; both fall back
     * to the next socket when the preferred node is dry). Single-socket
     * kernels take the plain allocator path unchanged.
     */
    Pfn allocFrameFor(unsigned core_id);

    // ---- Page-frame metadata -------------------------------------------
    Page &page(Pfn pfn);
    std::uint64_t numFrames() const
    {
        return static_cast<std::uint64_t>(framePages.size());
    }

    // ---- Address spaces --------------------------------------------------
    AddressSpace *createAddressSpace();

    /** All live address spaces (the verification harness walks them). */
    const std::vector<std::unique_ptr<AddressSpace>> &addressSpaces() const
    {
        return spaces;
    }

    // ---- Syscalls (timed; @p done fires when the call returns) ----------
    /**
     * mmap() a whole file. With @p fast_mmap the paper's new flag is
     * set: every PTE is populated at map time with either the resident
     * frame (page-cache hit) or an LBA-augmented entry (Section IV-B).
     */
    void mmapFile(Thread &t, AddressSpace &as, File &file, bool fast_mmap,
                  std::function<void(Vma *)> done);

    /**
     * Boot-time mmap: same state effects as mmapFile but untimed
     * (used by the system builder to set a machine up before the
     * measured run starts).
     */
    Vma *mmapFileSync(AddressSpace &as, File &file, bool fast_mmap);

    /**
     * Anonymous mapping (heap/stack-like). With @p fast_mmap every
     * PTE carries the reserved zero-fill LBA so first-touch minor
     * faults are handled by the SMU without I/O (Section V). Untimed
     * boot-time variant.
     */
    Vma *mmapAnonSync(AddressSpace &as, std::uint64_t n_pages,
                      bool fast_mmap);

    /**
     * munmap() the VMA: synchronises HWDP metadata (via hooks), tears
     * down PTEs and releases the pages.
     */
    void munmapVma(Thread &t, AddressSpace &as, Vma *vma,
                   std::function<void()> done);

    /** msync(): metadata barrier + writeback of dirty pages. */
    void msyncVma(Thread &t, Vma *vma, std::function<void()> done);

    /**
     * Buffered write of @p bytes to @p file (WAL-style appends).
     * Charges syscall phases; cuts an asynchronous write I/O whenever
     * writebackChunkPages worth of dirty data has accumulated.
     */
    void writeFile(Thread &t, File &file, std::uint64_t page_index,
                   std::uint64_t bytes, std::function<void()> done);

    /** fork() semantics for fast-mmap areas: revert LBA PTEs (V). */
    void forkRevert(AddressSpace &as);

    // ---- Demand paging ---------------------------------------------------
    /**
     * Page-fault entry (called from the page-table walker).
     * @param smu_fallback True when the SMU bounced the miss back to
     *                     the OS (free-page queue empty / PMSHR full).
     * @param resume       Runs in the faulting thread's context once
     *                     the fault is resolved.
     */
    void handlePageFault(Thread &t, AddressSpace &as, VAddr vaddr,
                         bool is_write, bool smu_fallback,
                         std::function<void()> resume);

    // ---- Page lifecycle (fault path, reclaim, HWDP control plane) -------
    /**
     * Install a resident page: PTE write plus, when @p synced, the OS
     * metadata (page cache, LRU, rmap). With !synced the PTE keeps the
     * LBA bit set and metadata is left for kpted (Table I row 3).
     */
    void installPage(AddressSpace &as, Vma &vma, VAddr vaddr, Pfn pfn,
                     bool synced);

    /** Release a frame and reset its metadata. */
    void freePage(Page &page);

    /**
     * Install a page the way the hardware does it: PTE written with
     * the LBA bit kept set, upper-level LBA bits marked, and *no* OS
     * metadata touched (that is kpted's job, Table I row 3). Used by
     * the software-emulated SMU; the real SMU's page-table updater
     * performs the same writes through its entry references.
     */
    void installHardwareHandled(AddressSpace &as, Vma &vma, VAddr vaddr,
                                Pfn pfn);

    /** Metadata-only synchronisation of one hardware-handled PTE. */
    void syncHardwareHandledPte(AddressSpace &as, VAddr vaddr,
                                EntryRef ref);

    // ---- Huge pages and translation reach (pageMode != off) -------------
    PageMode pageMode() const { return prm.pageMode; }

    /**
     * 2 MB-aligned window base when a transparent-huge-page fault may
     * be attempted for @p vaddr: the naturally aligned 512-page window
     * lies inside @p vma and none of its pages is resident or page-
     * cache cached. Returns invalidVaddr when ineligible.
     */
    VAddr hugeFaultWindow(AddressSpace &as, Vma &vma, VAddr vaddr);
    static constexpr VAddr invalidVaddr = ~VAddr(0);

    /** Contiguous 512-frame run homed for a fault on @p core_id. */
    Pfn allocContigFor(unsigned core_id);

    /**
     * Map [win, win + 2 MB) as one PMD leaf over the naturally
     * aligned 512-frame run starting at @p head: compound-page
     * metadata (head order 9, tails pointing back), page-cache
     * insertions for file windows, the head on the LRU, one leaf PTE.
     */
    void installHugePage(AddressSpace &as, Vma &vma, VAddr win, Pfn head,
                         VAddr fault_va, bool write);

    /**
     * Demote the 2 MB leaf covering @p vaddr back to 512 4 KB PTEs
     * over the same frames, undo the compound metadata, link the
     * tails onto the LRU and shoot the wide translation down.
     */
    void demoteHugePage(AddressSpace &as, VAddr vaddr);

    /**
     * Reclaim a whole clean file-backed huge unit at once: one unmap,
     * one range shootdown, 512 frame frees — no per-page events, so
     * evicting a huge page costs one reclaim action like a 4 KB one.
     */
    void reclaimHugeUnit(Page &head);

    /**
     * kcoalesced promotion: collapse an eligible 2 MB window of
     * synchronised, contiguous, equally aligned 4 KB mappings into a
     * PMD leaf. Returns false when the window does not qualify.
     */
    bool promoteWindowHuge(AddressSpace &as, Vma &vma, VAddr win);

    /**
     * The eligibility half of promoteWindowHuge, side-effect free —
     * kcoalesced asks it first so the coalesce-abort fault site can
     * skip exactly the windows that would have promoted.
     */
    bool hugeWindowPromotable(AddressSpace &as, Vma &vma, VAddr win);

    /**
     * Stamp the NAPOT bit on the aligned 16-PTE window covering
     * @p vaddr when every entry is present, synchronised and the
     * frames are contiguous and equally aligned. No shootdown: the
     * translation does not change, only its reach grows.
     */
    void maybePromoteNapot(AddressSpace &as, VAddr vaddr);

    /** Clear a NAPOT window before one of its pages is remapped. */
    void breakNapotRun(AddressSpace &as, VAddr vaddr);

    /**
     * Range shootdown callback (TLB + PWC on every core/socket). The
     * bool marks broadcasts that are delayable: promotion and split
     * keep every frame in place, so a straggling wide TLB entry still
     * reads the right data (the staleWideTlb fault site exploits
     * this); unmap/eviction broadcasts pass false and must apply
     * immediately.
     */
    using ShootdownRangeFn =
        std::function<void(AddressSpace &, VAddr, std::uint64_t, bool)>;
    void setShootdownRangeFn(ShootdownRangeFn fn)
    {
        shootdownRangeFn = std::move(fn);
    }

    /**
     * hugeSplitStorm fault site: forces the reclaimer to split a
     * clean huge unit instead of reclaiming it whole.
     */
    void setHugeSplitHook(std::function<bool()> fn)
    {
        hugeSplitHook = std::move(fn);
    }
    bool hugeSplitForced() { return hugeSplitHook && hugeSplitHook(); }

    std::uint64_t thpFaults() const { return nThpFaults; }
    std::uint64_t napotPromotions() const { return nNapotPromotions; }
    std::uint64_t napotBreaks() const { return nNapotBreaks; }
    std::uint64_t hugePromotions() const { return nHugePromotions; }
    std::uint64_t hugeSplits() const { return nHugeSplits; }
    std::uint64_t hugeReclaims() const { return nHugeReclaims; }

    // ---- HWDP hook points -------------------------------------------------
    /**
     * Early-fault interceptor (the SW-emulated SMU). Returns true when
     * it takes ownership of the fault.
     */
    using FaultInterceptor = std::function<bool(
        Thread &, AddressSpace &, VAddr, pte::Entry,
        std::function<void()>)>;
    void setFaultInterceptor(FaultInterceptor fn)
    {
        interceptor = std::move(fn);
    }

    /** Overlapped free-page-queue refill during OS-fault device I/O. */
    void setRefillHook(std::function<void(unsigned core)> fn)
    {
        refillHook = std::move(fn);
    }

    struct HwdpHooks
    {
        /** kpted-style sync of a VMA range, then done. */
        std::function<void(AddressSpace &, VAddr, VAddr, unsigned,
                           std::function<void()>)> syncMetadata;
        /** Wait for outstanding SMU page misses (SMU barrier). */
        std::function<void(std::function<void()>)> smuBarrier;
        /** A VMA is about to be destroyed; drop any references to it
         *  (the fast-mmap registry kpted scans, in particular). */
        std::function<void(Vma *)> vmaUnmapped;
    };
    void setHwdpHooks(HwdpHooks hooks) { hwdpHooks = std::move(hooks); }

    /** TLB shootdown callback (registered by the CPU layer). */
    void setShootdownFn(Rmap::ShootdownFn fn);

    /**
     * Invoked after every kpted-style metadata sync rewrites a
     * hardware-handled PTE (registered by the CPU layer): the walkers'
     * page-walk caches drop the affected upper entries, the coherence
     * a real paging-structure cache needs on PTE maintenance.
     */
    void setPteSyncFn(std::function<void(AddressSpace &, VAddr)> fn)
    {
        pteSyncFn = std::move(fn);
    }

    // ---- Fault statistics -------------------------------------------------
    std::uint64_t majorFaults() const { return statMajor.value(); }
    std::uint64_t minorFaults() const { return statMinor.value(); }
    std::uint64_t smuFallbackFaults() const
    {
        return statSmuFallback.value();
    }
    std::uint64_t oomKills() const { return statOomKills.value(); }
    sim::Histogram &faultLatencyUs() { return statFaultLatency; }

    /**
     * Checkpoint the whole OS layer: kernel rng, phase accounting,
     * scheduler, file system, block layer, rmap, reclaimer, page
     * cache, per-frame metadata (file/space references encoded as
     * file id / asid), every address space and the WAL chunk
     * accumulator. Only valid at quiesce.
     */
    void serialize(sim::Serializer &s);

  private:
    friend class FaultHandler;

    KernelParams prm;
    mem::PhysMem &pm;
    sim::Rng rng;

    std::unique_ptr<KernelExec> kernelExec;
    std::unique_ptr<Scheduler> sched;
    std::unique_ptr<FileSystem> fileSystem;
    std::unique_ptr<BlockLayer> blk;
    std::unique_ptr<Rmap> reverseMap;
    std::unique_ptr<Reclaimer> reclaim;
    std::unique_ptr<FaultHandler> faults;
    PageCache pcache;

    std::vector<Page> framePages;
    std::vector<std::unique_ptr<AddressSpace>> spaces;

    struct AttachedDevice
    {
        ssd::SsdDevice *dev;
        BlockDeviceId bdev;
        unsigned blkIndex;
    };
    std::vector<AttachedDevice> attached;

    /** Per-file partially filled writeback chunk (in pages). */
    std::unordered_map<std::uint32_t, std::uint64_t> walDirtyBytes;

    /** Next socket for round-robin placement (serialized when >1 socket). */
    std::uint64_t numaRrCursor = 0;

    FaultInterceptor interceptor;
    std::function<void(unsigned)> refillHook;
    HwdpHooks hwdpHooks;
    Rmap::ShootdownFn shootdownFn;
    std::function<void(AddressSpace &, VAddr)> pteSyncFn;
    ShootdownRangeFn shootdownRangeFn;
    std::function<bool()> hugeSplitHook;

    /**
     * Plain members (not sim::Counters) so a pageMode = off machine's
     * stats dump stays byte-identical to the pre-huge-page one; they
     * are serialized (guarded) and surfaced through metrics.
     */
    std::uint64_t nThpFaults = 0;
    std::uint64_t nNapotPromotions = 0;
    std::uint64_t nNapotBreaks = 0;
    std::uint64_t nHugePromotions = 0;
    std::uint64_t nHugeSplits = 0;
    std::uint64_t nHugeReclaims = 0;

    void shootdownRange(AddressSpace &as, VAddr va, std::uint64_t pages,
                        bool delayable)
    {
        if (shootdownRangeFn)
            shootdownRangeFn(as, va, pages, delayable);
    }

    /** PTE population for a fast-mmap area; returns pages touched. */
    std::uint64_t populateFastVma(AddressSpace &as, File &file, Vma *vma);

    sim::Counter &statMajor;
    sim::Counter &statMinor;
    sim::Counter &statSmuFallback;
    sim::Counter &statMmapCalls;
    sim::Counter &statMunmapCalls;
    sim::Counter &statWalWrites;
    sim::Counter &statOomKills;
    sim::Histogram &statFaultLatency;
};

} // namespace hwdp::os

#endif // HWDP_OS_KERNEL_HH

/**
 * @file
 * Figure 13: throughput improvement of HWDP over OSDP across
 * workloads (FIO, DBBench readrandom, YCSB A-F) and thread counts.
 *
 * Paper: uniform-access workloads (FIO, DBBench) gain 29.4-57.1%;
 * the skewed, write-mixed YCSB workloads gain 5.3-27.3% with the
 * read-only YCSB-C at the top; gains shrink somewhat as the thread
 * count (and SSD write contention) grows.
 */

#include <cstdio>
#include <string>

#include "bench/bench_common.hh"

using namespace hwdp;
using metrics::Table;

int
main()
{
    metrics::banner(
        "Figure 13: HWDP throughput gain over OSDP",
        "paper: FIO/DBBench +29.4..57.1%, YCSB +5.3..27.3% (C max)");

    struct W
    {
        char code;      // 'I' = FIO, 'U' = DBBench, 'A'..'F' = YCSB
        const char *name;
    };
    const W workloads[] = {
        {'I', "fio"},     {'U', "dbbench"}, {'A', "ycsb_a"},
        {'B', "ycsb_b"},  {'C', "ycsb_c"},  {'D', "ycsb_d"},
        {'E', "ycsb_e"},  {'F', "ycsb_f"},
    };

    Table t({"workload", "1 thr", "2 thr", "4 thr", "8 thr"});
    for (const W &w : workloads) {
        std::vector<std::string> row{w.name};
        for (unsigned threads : {1u, 2u, 4u, 8u}) {
            std::uint64_t ops = w.code == 'E' ? 2500 : 5000;
            double osdp, hwdp;
            if (w.code == 'I') {
                osdp = bench::runFio(
                           bench::paperConfig(system::PagingMode::osdp),
                           threads, ops, 8 * bench::defaultMemFrames)
                           .opsPerSec;
                hwdp = bench::runFio(
                           bench::paperConfig(system::PagingMode::hwdp),
                           threads, ops, 8 * bench::defaultMemFrames)
                           .opsPerSec;
            } else {
                osdp = bench::runKv(
                           bench::paperConfig(system::PagingMode::osdp),
                           w.code, threads, ops)
                           .opsPerSec;
                hwdp = bench::runKv(
                           bench::paperConfig(system::PagingMode::hwdp),
                           w.code, threads, ops)
                           .opsPerSec;
            }
            row.push_back("+" + Table::pct(hwdp / osdp - 1.0));
        }
        t.addRow(row);
    }
    t.print();
    return 0;
}

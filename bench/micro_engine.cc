/**
 * @file
 * Engine microbenchmarks (google-benchmark): the hot paths the
 * figure benches lean on — event queue throughput, PMSHR CAM lookup,
 * cache tag-array access, zipfian key generation and page-table
 * walks.
 */

#include <benchmark/benchmark.h>

#include "core/pmshr.hh"
#include "mem/cache_array.hh"
#include "os/page_table.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "workloads/key_chooser.hh"

using namespace hwdp;

namespace {

void
BM_EventQueueScheduleStep(benchmark::State &state)
{
    sim::EventQueue eq;
    class Noop : public sim::Event
    {
      public:
        void process() override {}
    } ev;
    Tick t = 0;
    for (auto _ : state) {
        eq.schedule(&ev, ++t);
        eq.step();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueScheduleStep);

/**
 * The seed's one-shot continuation path, kept as the "before" baseline
 * for the pooled API: a heap-allocated wrapper event holding a
 * std::function and a std::string name, deleted after firing. Every
 * scheduleLambda call site used to pay exactly this.
 */
class HeapLambdaEvent : public sim::Event
{
  public:
    HeapLambdaEvent(std::function<void()> fn, std::string name)
        : Event(std::move(name)), fn(std::move(fn))
    {
    }
    void process() override { fn(); }

  private:
    std::function<void()> fn;
};

void
BM_EventQueueOneShotHeapLambda(benchmark::State &state)
{
    sim::EventQueue eq;
    Tick t = 0;
    for (auto _ : state) {
        auto *ev = new HeapLambdaEvent([] {}, "lambda");
        eq.schedule(ev, ++t);
        eq.step();
        delete ev;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueOneShotHeapLambda);

void
BM_EventQueueOneShotPooled(benchmark::State &state)
{
    sim::EventQueue eq;
    Tick t = 0;
    for (auto _ : state) {
        eq.post(++t, [] {});
        eq.step();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueOneShotPooled);

void
BM_EventQueueFanoutHeapLambda(benchmark::State &state)
{
    // A System owns one queue for its whole run, so the queue lives
    // across rounds; each round schedules and fires a 1024-event
    // burst the way the seed's scheduleLambda call sites did.
    sim::EventQueue eq;
    std::uint64_t events = 0;
    for (auto _ : state) {
        Tick base = eq.now();
        std::vector<HeapLambdaEvent *> evs;
        evs.reserve(1024);
        for (int i = 0; i < 1024; ++i) {
            evs.push_back(new HeapLambdaEvent([] {}, "lambda"));
            eq.schedule(evs.back(), base + static_cast<Tick>(i + 1));
        }
        eq.run();
        for (auto *ev : evs)
            delete ev;
        events += 1024;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EventQueueFanoutHeapLambda);

void
BM_EventQueueFanoutPooled(benchmark::State &state)
{
    sim::EventQueue eq;
    std::uint64_t events = 0;
    for (auto _ : state) {
        Tick base = eq.now();
        for (int i = 0; i < 1024; ++i)
            eq.post(base + static_cast<Tick>(i + 1), [] {});
        eq.run();
        events += 1024;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EventQueueFanoutPooled);

void
BM_EventQueueSteadyStatePooled(benchmark::State &state)
{
    // Steady-state engine traffic: a reused queue with a rolling
    // window of pending one-shots, the shape the subsystem models
    // generate. No allocation on this path (see poolStats).
    sim::EventQueue eq;
    for (int i = 0; i < 64; ++i)
        eq.postIn(static_cast<Tick>(i + 1) * 100, [] {});
    for (auto _ : state) {
        eq.postIn(6400, [] {});
        eq.step();
    }
    state.SetItemsProcessed(state.iterations());
    eq.run();
}
BENCHMARK(BM_EventQueueSteadyStatePooled);

void
BM_EventQueueMixedHorizon(benchmark::State &state)
{
    // Dense near-horizon traffic (ring) with sparse far timers
    // (heap), the fig-bench event mix: validates that the two-tier
    // split keeps the hot path fast with long-period timers pending.
    sim::EventQueue eq;
    int timers = 0;
    std::function<void()> rearm = [&] {
        ++timers;
        eq.postIn(milliseconds(4.0), rearm, "kpoold.period");
    };
    eq.postIn(milliseconds(4.0), rearm, "kpoold.period");
    eq.postIn(milliseconds(16.0), [] {}, "kpted.period");
    for (auto _ : state) {
        eq.postIn(nanoseconds(2.0), [] {}, "cache.fill");
        eq.step();
    }
    state.SetItemsProcessed(state.iterations());
    benchmark::DoNotOptimize(timers);
}
BENCHMARK(BM_EventQueueMixedHorizon);

void
BM_PmshrLookup(benchmark::State &state)
{
    core::Pmshr pmshr(static_cast<unsigned>(state.range(0)));
    for (int i = 0; i < state.range(0); ++i)
        pmshr.allocate(0x1000 + i * 8);
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            pmshr.lookup(0x1000 + (i++ % state.range(0)) * 8));
    }
}
BENCHMARK(BM_PmshrLookup)->Arg(8)->Arg(32)->Arg(128);

void
BM_CacheArrayAccess(benchmark::State &state)
{
    mem::CacheArray cache("bench", 32 * 1024, 8);
    sim::Rng rng(7);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(rng.range(1 << 20) * 64));
}
BENCHMARK(BM_CacheArrayAccess);

void
BM_ZipfianNext(benchmark::State &state)
{
    workloads::ZipfianChooser zipf(1 << 20);
    sim::Rng rng(11);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.next(rng, 1 << 20));
}
BENCHMARK(BM_ZipfianNext);

void
BM_PageTableWalkRefs(benchmark::State &state)
{
    os::PageTable pt;
    sim::Rng rng(13);
    for (std::uint64_t i = 0; i < 4096; ++i)
        pt.writePte(i * pageSize, os::pte::makePresent(i, 0));
    for (auto _ : state) {
        VAddr va = rng.range(4096) * pageSize;
        benchmark::DoNotOptimize(pt.walkRefs(va, false));
    }
}
BENCHMARK(BM_PageTableWalkRefs);

void
BM_KptedGuidedScan(benchmark::State &state)
{
    os::PageTable pt;
    // 64Ki PTEs with a sparse set of hardware-handled entries.
    sim::Rng rng(17);
    for (std::uint64_t i = 0; i < 65536; ++i)
        pt.writePte(i * pageSize,
                    os::pte::makeLbaAugmented(0, 0, i, 0));
    for (int i = 0; i < 128; ++i) {
        VAddr va = rng.range(65536) * pageSize;
        auto refs = pt.walkRefs(va, true);
        refs.pte.write(os::pte::makePresent(1, 0, true));
        pt.markUpperLba(va);
    }
    for (auto _ : state) {
        state.PauseTiming();
        // Re-mark a fresh batch so each iteration has work.
        for (int i = 0; i < 128; ++i) {
            VAddr va = rng.range(65536) * pageSize;
            auto refs = pt.walkRefs(va, true);
            refs.pte.write(os::pte::makePresent(1, 0, true));
            pt.markUpperLba(va);
        }
        state.ResumeTiming();
        std::uint64_t visited = 0;
        pt.scanUnsynced(0, 65536 * pageSize,
                        [](VAddr, os::EntryRef ref) {
                            ref.write(os::pte::clearLbaBit(ref.value()));
                        },
                        &visited);
        benchmark::DoNotOptimize(visited);
    }
}
BENCHMARK(BM_KptedGuidedScan);

} // namespace

BENCHMARK_MAIN();

/**
 * @file
 * Open-loop serving pieces: the deterministic latency reservoir
 * (exact nearest-rank quantiles under capacity, stride decimation and
 * renormalization above it, weighted cross-reservoir merge, blob
 * round-trip) and the Poisson arrival schedule (seed determinism,
 * per-server monotonicity, offered-rate tracking), plus a small
 * end-to-end serving machine that must drain every scheduled request
 * deterministically.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "metrics/latency_reservoir.hh"
#include "sim/rng.hh"
#include "sim/serialize.hh"
#include "system/system.hh"
#include "workloads/kv_store.hh"
#include "workloads/open_loop.hh"

using namespace hwdp;
using metrics::LatencyReservoir;

// ---- Reservoir -------------------------------------------------------------

TEST(LatencyReservoir, ExactQuantilesUnderCapacity)
{
    LatencyReservoir r(256);
    // 1..100 in scrambled order: quantiles are order-independent.
    std::vector<double> vals;
    for (int i = 1; i <= 100; ++i)
        vals.push_back(i);
    sim::Rng rng(7);
    for (std::size_t i = vals.size(); i > 1; --i)
        std::swap(vals[i - 1], vals[rng.range(i)]);
    for (double v : vals)
        r.record(v);

    EXPECT_EQ(r.count(), 100u);
    EXPECT_EQ(r.decimationStride(), 1u);
    EXPECT_EQ(r.retained(), 100u);
    // Nearest rank: the ceil(q*n)-th smallest.
    EXPECT_EQ(r.quantile(0.5), 50.0);
    EXPECT_EQ(r.quantile(0.99), 99.0);
    EXPECT_EQ(r.quantile(0.999), 100.0);
    EXPECT_EQ(r.quantile(1.0), 100.0);
    EXPECT_EQ(r.min(), 1.0);
    EXPECT_EQ(r.max(), 100.0);
    EXPECT_DOUBLE_EQ(r.mean(), 50.5);
}

TEST(LatencyReservoir, SingleSampleAndEmptyEdges)
{
    LatencyReservoir one(8);
    one.record(42.0);
    EXPECT_EQ(one.quantile(0.0), 42.0);
    EXPECT_EQ(one.quantile(0.5), 42.0);
    EXPECT_EQ(one.quantile(1.0), 42.0);

    LatencyReservoir empty(8);
    EXPECT_EQ(empty.count(), 0u);
    EXPECT_EQ(empty.quantile(0.5), 0.0);
    EXPECT_EQ(empty.min(), 0.0);
    EXPECT_EQ(empty.max(), 0.0);
    EXPECT_EQ(empty.mean(), 0.0);
}

TEST(LatencyReservoir, DecimationKeepsTheStrideSubsample)
{
    // Capacity 8 fed 0..99 in order. The renormalizations double the
    // stride at fills: after 100 records the retained set is exactly
    // the multiples of 16 — {0,16,32,48,64,80,96}.
    LatencyReservoir r(8);
    for (int i = 0; i < 100; ++i)
        r.record(i);

    EXPECT_EQ(r.count(), 100u);
    EXPECT_EQ(r.decimationStride(), 16u);
    EXPECT_EQ(r.retained(), 7u);
    EXPECT_EQ(r.min(), 0.0);
    EXPECT_EQ(r.max(), 96.0);
    EXPECT_EQ(r.quantile(0.5), 48.0);
    EXPECT_EQ(r.quantile(1.0), 96.0);
}

TEST(LatencyReservoir, DeterministicAcrossIdenticalFeeds)
{
    LatencyReservoir a(64), b(64);
    sim::Rng ra(99), rb(99);
    for (int i = 0; i < 5000; ++i) {
        a.record(ra.uniform() * 1000.0);
        b.record(rb.uniform() * 1000.0);
    }
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.decimationStride(), b.decimationStride());
    EXPECT_EQ(a.retained(), b.retained());
    for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0})
        EXPECT_EQ(a.quantile(q), b.quantile(q)) << "q=" << q;
}

TEST(LatencyReservoir, WeightedMergeMatchesExactOnUndecimatedSets)
{
    // Two stride-1 reservoirs split 1..100: the merged quantile is the
    // exact nearest-rank over the union.
    LatencyReservoir a(256), b(256);
    for (int i = 1; i <= 50; ++i)
        a.record(i);
    for (int i = 51; i <= 100; ++i)
        b.record(i);
    std::vector<const LatencyReservoir *> rs{&a, &b};
    EXPECT_EQ(LatencyReservoir::quantileAcross(rs, 0.25), 25.0);
    EXPECT_EQ(LatencyReservoir::quantileAcross(rs, 0.5), 50.0);
    EXPECT_EQ(LatencyReservoir::quantileAcross(rs, 0.99), 99.0);
    EXPECT_EQ(LatencyReservoir::quantileAcross(rs, 1.0), 100.0);

    // A decimated reservoir merged alone agrees with its own quantile
    // (each retained sample weighted by the stride it stands for).
    LatencyReservoir d(8);
    for (int i = 0; i < 100; ++i)
        d.record(i);
    std::vector<const LatencyReservoir *> one{&d};
    for (double q : {0.1, 0.5, 0.9, 1.0})
        EXPECT_EQ(LatencyReservoir::quantileAcross(one, q),
                  d.quantile(q))
            << "q=" << q;

    EXPECT_EQ(LatencyReservoir::quantileAcross({}, 0.5), 0.0);
}

TEST(LatencyReservoir, BlobRoundTripPreservesEverything)
{
    LatencyReservoir a(32);
    sim::Rng rng(5);
    for (int i = 0; i < 500; ++i)
        a.record(rng.uniform() * 77.0);

    sim::Serializer s = sim::Serializer::saver();
    a.serialize(s);
    auto blob = s.takeBlob();

    LatencyReservoir b(32);
    b.record(1.0); // overwritten by the load
    sim::Serializer l = sim::Serializer::loader(blob);
    b.serialize(l);
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.decimationStride(), b.decimationStride());
    EXPECT_EQ(a.retained(), b.retained());
    for (double q : {0.0, 0.5, 0.99, 1.0})
        EXPECT_EQ(a.quantile(q), b.quantile(q));

    // A reservoir of a different capacity must reject the blob.
    LatencyReservoir c(64);
    sim::Serializer l2 = sim::Serializer::loader(blob);
    EXPECT_THROW(c.serialize(l2), sim::SerializeError);
}

// ---- Arrival schedule ------------------------------------------------------

namespace {

system::MachineConfig
servingConfig(system::PagingMode mode, unsigned sockets = 1)
{
    system::MachineConfig cfg;
    cfg.mode = mode;
    cfg.nLogical = 4;
    cfg.nPhysical = 2;
    cfg.memFrames = 32 * 1024;
    cfg.smu.freeQueueCapacity = 512;
    cfg.kpooldPeriod = milliseconds(1.0);
    cfg.kptedPeriod = milliseconds(4.0);
    cfg.sockets = sockets;
    return cfg;
}

struct Serving
{
    std::unique_ptr<system::System> sys;
    std::unique_ptr<workloads::KvStore> store;
    std::unique_ptr<workloads::OpenLoopSource> source;
    std::vector<workloads::OpenLoopServer *> servers;
};

Serving
makeServing(system::PagingMode mode, const workloads::OpenLoopParams &p,
            std::uint64_t seed = 1234, unsigned sockets = 1)
{
    Serving sv;
    auto cfg = servingConfig(mode, sockets);
    cfg.seed = seed;
    sv.sys = std::make_unique<system::System>(cfg);
    auto mf = sv.sys->mapDataset("kv", 8 * 1024);
    auto *wal = sv.sys->createFile("wal", 8 * 1024);
    sv.store =
        std::make_unique<workloads::KvStore>(mf.vma, wal, 8 * 1024);
    sv.source = std::make_unique<workloads::OpenLoopSource>(
        *sv.store, p, sim::Rng(seed ^ 0x6f70656e6c6f6fULL));
    for (unsigned t = 0; t < p.nServers; ++t) {
        auto *w = sv.sys->makeWorkload<workloads::OpenLoopServer>(
            *sv.source, t);
        sv.servers.push_back(w);
        sv.sys->addThread(*w, t % cfg.nLogical, *mf.as);
    }
    return sv;
}

} // namespace

TEST(OpenLoop, ArrivalScheduleIsSeedDeterministic)
{
    workloads::OpenLoopParams p;
    p.offeredOpsPerSec = 100e3;
    p.totalRequests = 4000;
    p.nServers = 3;

    Serving a = makeServing(system::PagingMode::osdp, p, 42);
    Serving b = makeServing(system::PagingMode::hwdp, p, 42, 2);
    Serving c = makeServing(system::PagingMode::osdp, p, 43);

    std::uint64_t total = 0;
    for (unsigned s = 0; s < p.nServers; ++s) {
        // Same seed: identical per-server schedules, regardless of
        // paging mode or socket count.
        EXPECT_EQ(a.source->arrivalsFor(s), b.source->arrivalsFor(s))
            << "server " << s;
        total += a.source->arrivalsFor(s).size();
    }
    EXPECT_EQ(total, p.totalRequests);
    // A different seed moves the schedule.
    EXPECT_NE(a.source->arrivalsFor(0), c.source->arrivalsFor(0));
}

TEST(OpenLoop, ArrivalsAreMonotoneAndTrackTheOfferedRate)
{
    workloads::OpenLoopParams p;
    p.offeredOpsPerSec = 200e3;
    p.totalRequests = 20000;
    p.nServers = 4;
    Serving sv = makeServing(system::PagingMode::osdp, p, 7);

    for (unsigned s = 0; s < p.nServers; ++s) {
        const auto &arr = sv.source->arrivalsFor(s);
        for (std::size_t i = 1; i < arr.size(); ++i)
            ASSERT_LT(arr[i - 1], arr[i]) << "server " << s;
    }
    // 20k arrivals at 200k/s: the schedule spans ~100 ms.
    double span = toSeconds(sv.source->lastArrival());
    EXPECT_GT(span, 0.08);
    EXPECT_LT(span, 0.12);
    EXPECT_LT(sv.source->firstArrival(), sv.source->lastArrival());
}

TEST(OpenLoop, ServersDrainEveryScheduledRequest)
{
    workloads::OpenLoopParams p;
    p.offeredOpsPerSec = 50e3;
    p.totalRequests = 2000;
    p.nServers = 2;
    Serving sv = makeServing(system::PagingMode::hwdp, p, 11);
    ASSERT_TRUE(sv.sys->runUntilThreadsDone(seconds(60.0)));

    std::uint64_t served = 0;
    std::vector<const metrics::LatencyReservoir *> rs;
    for (auto *s : sv.servers) {
        EXPECT_EQ(s->latency().count(), s->served());
        EXPECT_GT(s->lastCompletion(), 0u);
        served += s->served();
        rs.push_back(&s->latency());
    }
    EXPECT_EQ(served, p.totalRequests);

    double p50 = metrics::LatencyReservoir::quantileAcross(rs, 0.5);
    double p99 = metrics::LatencyReservoir::quantileAcross(rs, 0.99);
    EXPECT_GT(p50, 0.0);
    EXPECT_LE(p50, p99);
}

TEST(OpenLoop, ServingRunIsSeedDeterministic)
{
    workloads::OpenLoopParams p;
    p.offeredOpsPerSec = 50e3;
    p.totalRequests = 1500;
    p.nServers = 2;
    Serving a = makeServing(system::PagingMode::hwdp, p, 17);
    Serving b = makeServing(system::PagingMode::hwdp, p, 17);
    ASSERT_TRUE(a.sys->runUntilThreadsDone(seconds(60.0)));
    ASSERT_TRUE(b.sys->runUntilThreadsDone(seconds(60.0)));

    for (unsigned i = 0; i < p.nServers; ++i) {
        EXPECT_EQ(a.servers[i]->served(), b.servers[i]->served());
        EXPECT_EQ(a.servers[i]->lastCompletion(),
                  b.servers[i]->lastCompletion());
        for (double q : {0.5, 0.99, 0.999})
            EXPECT_EQ(a.servers[i]->latency().quantile(q),
                      b.servers[i]->latency().quantile(q))
                << "server " << i << " q " << q;
    }
}

/**
 * @file
 * System-level behavioural tests: the paper's qualitative claims that
 * must hold in any faithful reproduction — latency ordering across the
 * three schemes, munmap barriers, msync durability, TLB shootdown
 * correctness and write-traffic generation.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "system/system.hh"
#include "workloads/fio.hh"
#include "workloads/ycsb.hh"

using namespace hwdp;

namespace {

system::MachineConfig
smallConfig(system::PagingMode mode)
{
    system::MachineConfig cfg;
    cfg.mode = mode;
    cfg.nLogical = 4;
    cfg.nPhysical = 2;
    cfg.memFrames = 8 * 1024;
    cfg.smu.freeQueueCapacity = 512;
    cfg.kpooldPeriod = milliseconds(1.0);
    cfg.kptedPeriod = milliseconds(4.0);
    return cfg;
}

double
fioMeanLatency(system::PagingMode mode)
{
    system::System sys(smallConfig(mode));
    auto mf = sys.mapDataset("f", 64 * 1024);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 2500);
    auto *tc = sys.addThread(*wl, 0, *mf.as);
    EXPECT_TRUE(sys.runUntilThreadsDone(seconds(20.0)));
    return tc->faultedOpLatencyUs().mean();
}

} // namespace

TEST(Behavior, LatencyOrderingOsdpSwOnlyHwdp)
{
    // The paper's central result chain: HWDP < SW-only < OSDP.
    double osdp = fioMeanLatency(system::PagingMode::osdp);
    double swonly = fioMeanLatency(system::PagingMode::swsmu);
    double hwdp = fioMeanLatency(system::PagingMode::hwdp);
    EXPECT_LT(hwdp, swonly);
    EXPECT_LT(swonly, osdp);
    // Figure 12: roughly 37% reduction OSDP->HWDP at one thread.
    double reduction = 1.0 - hwdp / osdp;
    EXPECT_GT(reduction, 0.25);
    EXPECT_LT(reduction, 0.50);
}

TEST(Behavior, HwdpHandlesNearlyAllMissesInHardware)
{
    system::System sys(smallConfig(system::PagingMode::hwdp));
    auto mf = sys.mapDataset("f", 64 * 1024);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 3000);
    auto *tc = sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(20.0)));
    // Paper: 99.9% of faults replaced by hardware handling.
    double hw_share = static_cast<double>(tc->hwHandledOps()) /
                      static_cast<double>(tc->faultedOps());
    EXPECT_GT(hw_share, 0.99);
}

TEST(Behavior, MunmapWaitsForOutstandingMissesAndSyncs)
{
    system::System sys(smallConfig(system::PagingMode::hwdp));
    auto mf = sys.mapDataset("f", 1024);

    struct ReadThenUnmap : workloads::Workload
    {
        system::System &sys;
        system::System::MappedFile mf;
        int phase = 0;
        ReadThenUnmap(system::System &s, system::System::MappedFile m)
            : sys(s), mf(m)
        {
        }
        workloads::Op
        next(sim::Rng &rng) override
        {
            if (phase < 64) {
                ++phase;
                VAddr a = mf.vma->start +
                          rng.range(mf.vma->numPages()) * pageSize;
                return workloads::Op::makeMem(a, false, true);
            }
            return workloads::Op::makeDone();
        }
        const char *label() const override { return "rtu"; }
    };
    auto *wl = sys.makeWorkload<ReadThenUnmap>(sys, mf);
    auto *tc = sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(10.0)));

    // munmap with hardware-handled pages still unsynced.
    bool done = false;
    sys.kernel().munmapVma(*tc, *mf.as, mf.vma, [&] { done = true; });
    sys.eventQueue().run(sys.now() + seconds(1.0));
    ASSERT_TRUE(done);

    // All PTE state gone; every frame accounted for (either free, in
    // the SMU queue, or page-cache resident without a mapping).
    for (Pfn p = 0; p < sys.kernel().numFrames(); ++p) {
        auto &pg = sys.kernel().page(p);
        if (pg.inUse)
            EXPECT_EQ(pg.as, nullptr) << "pfn " << p;
    }

    // The fast-mmap registry must have dropped the destroyed VMA, or
    // kpted's next periodic scan would read freed memory.
    ASSERT_NE(sys.hwdpSupport(), nullptr);
    EXPECT_TRUE(sys.hwdpSupport()->fastVmas().empty());
}

TEST(Behavior, MsyncWritesBackDirtyPages)
{
    system::System sys(smallConfig(system::PagingMode::hwdp));
    auto mf = sys.mapDataset("f", 256);

    struct DirtyWriter : workloads::Workload
    {
        os::Vma *vma;
        int n = 0;
        explicit DirtyWriter(os::Vma *v) : vma(v) {}
        workloads::Op
        next(sim::Rng &) override
        {
            if (n >= 16)
                return workloads::Op::makeDone();
            return workloads::Op::makeMem(vma->start + (n++) * pageSize,
                                          true, true);
        }
        const char *label() const override { return "dirty"; }
    };
    auto *wl = sys.makeWorkload<DirtyWriter>(mf.vma);
    auto *tc = sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(10.0)));

    auto writes_before = sys.ssd().writesCompleted();
    bool done = false;
    sys.kernel().msyncVma(*tc, mf.vma, [&] { done = true; });
    sys.eventQueue().run(sys.now() + seconds(1.0));
    ASSERT_TRUE(done);
    EXPECT_GE(sys.ssd().writesCompleted(), writes_before + 16);

    // Pages are clean afterwards.
    for (int i = 0; i < 16; ++i) {
        os::pte::Entry e = mf.as->pageTable().readPte(
            mf.vma->start + i * pageSize);
        if (os::pte::isPresent(e))
            EXPECT_FALSE(
                sys.kernel().page(os::pte::pfnOf(e)).dirty);
    }
}

TEST(Behavior, EvictionShootsDownTlb)
{
    // After an eviction rewrites a PTE, the stale TLB translation
    // must be gone: the next touch faults again instead of silently
    // using a freed frame.
    system::System sys(smallConfig(system::PagingMode::hwdp));
    auto mf = sys.mapDataset("f", 1024);

    struct TouchEvictTouch : workloads::Workload
    {
        system::System &sys;
        os::Vma *vma;
        int phase = 0;
        TouchEvictTouch(system::System &s, os::Vma *v) : sys(s), vma(v)
        {
        }
        workloads::Op
        next(sim::Rng &) override
        {
            switch (phase++) {
              case 0:
                return workloads::Op::makeMem(vma->start, false, true);
              case 1: {
                // Idle window: the test evicts page 0 in here.
                workloads::Op op;
                op.kind = workloads::Op::Kind::idle;
                op.idleTicks = milliseconds(1.0);
                return op;
              }
              case 2:
                return workloads::Op::makeMem(vma->start, false, true);
              default:
                return workloads::Op::makeDone();
            }
        }
        const char *label() const override { return "tet"; }
    };

    auto *wl = sys.makeWorkload<TouchEvictTouch>(sys, mf.vma);
    auto *tc = sys.addThread(*wl, 0, *mf.as);
    (void)tc;

    // Run the first access, then evict, then let the second access go.
    sys.start();
    sys.eventQueue().runWhile([&] { return sys.totalAppOps() < 1; },
                              seconds(5.0));
    ASSERT_EQ(sys.totalAppOps(), 1u);

    // kpted must sync it before it is evictable; force that now.
    os::pte::Entry e = mf.as->pageTable().readPte(mf.vma->start);
    ASSERT_TRUE(os::pte::isPresent(e));
    Pfn pfn = os::pte::pfnOf(e);
    if (os::pte::needsMetadataSync(e)) {
        auto refs = mf.as->pageTable().walkRefs(mf.vma->start, false);
        sys.kernel().syncHardwareHandledPte(*mf.as, mf.vma->start,
                                            refs.pte);
    }
    sys.kernel().rmap().unmapForEviction(sys.kernel().page(pfn));
    sys.kernel().freePage(sys.kernel().page(pfn));

    sys.eventQueue().runWhile([&] { return sys.totalAppOps() < 2; },
                              seconds(5.0));
    EXPECT_EQ(sys.totalAppOps(), 2u);
    // The second touch re-faulted (no stale TLB entry used).
    EXPECT_EQ(sys.threads()[0]->faultedOps(), 2u);
}

TEST(Behavior, YcsbAGeneratesSsdWriteTraffic)
{
    system::System sys(smallConfig(system::PagingMode::hwdp));
    auto mf = sys.mapDataset("f", 16 * 1024);
    auto *wal = sys.createFile("wal", 8 * 1024);
    struct Holder : workloads::Workload
    {
        std::unique_ptr<workloads::KvStore> s;
        workloads::Op next(sim::Rng &) override
        {
            return workloads::Op::makeDone();
        }
        const char *label() const override { return "holder"; }
    };
    auto *h = sys.makeWorkload<Holder>();
    h->s = std::make_unique<workloads::KvStore>(mf.vma, wal, 16 * 1024);
    auto *wl = sys.makeWorkload<workloads::YcsbWorkload>('A', *h->s,
                                                         1500);
    sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(20.0)));
    // ~50% updates, each cutting WAL + compaction writes.
    EXPECT_GT(sys.ssd().writesCompleted(), 800u);
}

TEST(Behavior, PollutionDisableRemovesKernelCacheTraffic)
{
    auto cfg = smallConfig(system::PagingMode::osdp);
    cfg.pollutionEnabled = false;
    system::System sys(cfg);
    auto mf = sys.mapDataset("f", 8 * 1024);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 500);
    sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(10.0)));
    EXPECT_EQ(sys.caches().counters(ExecMode::kernel).l1dAccesses, 0u);
}

/**
 * @file
 * Section VI-D: SMU area overhead (McPAT-style estimation at 22 nm).
 *
 * Paper: 0.014 mm^2 total — 0.004% of the 354 mm^2 Xeon E5-2640 v3
 * die — split as PMSHR 87.6%, NVMe descriptor registers 6.7%,
 * prefetch buffer 3.7%, miscellaneous registers 2.0%.
 */

#include <cstdio>

#include "metrics/area_model.hh"
#include "metrics/report.hh"

using namespace hwdp;
using metrics::Table;

int
main()
{
    metrics::banner("Section VI-D: SMU area overhead (22 nm)",
                    "paper: 0.014 mm^2, 0.004% of the die");

    metrics::AreaModel model;
    auto parts = model.smuArea();
    double total = model.smuTotalMm2();

    Table t({"component", "area mm^2", "share", "paper share"});
    const char *paper[] = {"87.6%", "6.7%", "3.7%", "2.0%"};
    int i = 0;
    for (const auto &p : parts) {
        t.addRow({p.name, Table::num(p.areaMm2, 5),
                  Table::pct(p.areaMm2 / total), paper[i++]});
    }
    t.addRow({"TOTAL", Table::num(total, 4), "100%", "100%"});
    t.print();

    std::printf("\nfraction of the Xeon E5-2640 v3 die: %.4f%% "
                "(paper: 0.004%%)\n",
                total / metrics::AreaModel::xeonDieMm2 * 100.0);

    // How the budget scales with the PMSHR (the dominant structure).
    metrics::banner("PMSHR sizing vs area");
    Table s({"PMSHR entries", "SMU mm^2", "% of die"});
    for (unsigned n : {8u, 16u, 32u, 64u, 128u}) {
        double a = model.smuTotalMm2(n);
        s.addRow({std::to_string(n), Table::num(a, 4),
                  Table::num(a / metrics::AreaModel::xeonDieMm2 * 100.0,
                             4) + "%"});
    }
    s.print();
    return 0;
}

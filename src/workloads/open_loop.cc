#include "workloads/open_loop.hh"

#include <cmath>

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::workloads {

OpenLoopSource::OpenLoopSource(KvStore &store, const OpenLoopParams &p,
                               sim::Rng schedule_rng)
    : store(store), prm(p)
{
    if (prm.nServers == 0)
        fatal("open loop: nServers must be >= 1");
    if (prm.offeredOpsPerSec <= 0.0)
        fatal("open loop: offered load must be positive");
    if (prm.readFrac < 0.0 || prm.readFrac > 1.0)
        fatal("open loop: readFrac must be in [0, 1]");

    if (prm.latestChooser)
        keyChooser =
            std::make_unique<LatestChooser>(store.numKeys(), prm.zipfTheta);
    else
        keyChooser = std::make_unique<ZipfianChooser>(store.numKeys(),
                                                      prm.zipfTheta);

    // Poisson arrivals: exponential gaps at the aggregate rate, dealt
    // round-robin. uniform() is in [0, 1), so 1-u is in (0, 1] and the
    // log never sees zero.
    schedule.resize(prm.nServers);
    const double rate = prm.offeredOpsPerSec;
    double t_sec = 0.0;
    for (std::uint64_t i = 0; i < prm.totalRequests; ++i) {
        double u = schedule_rng.uniform();
        t_sec += -std::log(1.0 - u) / rate;
        Tick at = seconds(t_sec);
        schedule[i % prm.nServers].push_back(at);
        if (i == 0)
            first = at;
        last = at;
    }
}

OpenLoopServer::OpenLoopServer(OpenLoopSource &source, unsigned server_idx)
    : src(source), idx(server_idx),
      lat(source.params().reservoirCapacity)
{
    if (idx >= src.params().nServers)
        fatal("open loop: server index ", idx, " out of range");
}

Op
OpenLoopServer::next(sim::Rng &rng, Tick now)
{
    if (!pending.empty()) {
        Op op = pending.front();
        pending.pop_front();
        return op;
    }

    const std::vector<Tick> &arrivals = src.arrivalsFor(idx);
    if (cursor >= arrivals.size())
        return Op::makeDone();

    Tick at = arrivals[cursor];
    if (now < at) {
        // Not due yet: hand think time back to the thread. The next
        // draw happens at exactly the arrival tick.
        Op op;
        op.kind = Op::Kind::idle;
        op.idleTicks = at - now;
        return op;
    }

    // Due (or overdue — the open-loop property: an overloaded machine
    // starts late and the queueing delay lands in the latency).
    ++cursor;
    curArrival = at;
    requestOpen = true;

    KvStore &kv = src.kv();
    std::uint64_t key = src.chooser().next(rng, kv.numKeys());
    if (rng.uniform() < src.params().readFrac)
        kv.emitRead(pending, key);
    else
        kv.emitUpdate(pending, key);

    Op op = pending.front();
    pending.pop_front();
    return op;
}

void
OpenLoopServer::appOpDone(Tick now)
{
    if (!requestOpen)
        return;
    requestOpen = false;
    ++nServed;
    lastDone = now;
    lat.record(toMicroseconds(now - curArrival));
}

void
OpenLoopServer::serialize(sim::Serializer &s)
{
    s.section("open_loop");
    if (s.saving() && !pending.empty())
        throw sim::SerializeError(
            "checkpoint: open-loop server is mid-request; quiesce the "
            "machine first");
    std::uint64_t n_sched = src.arrivalsFor(idx).size();
    s.check(n_sched, "open-loop schedule length");
    s.io(cursor);
    s.io(curArrival);
    s.io(requestOpen);
    s.io(nServed);
    s.io(lastDone);
    lat.serialize(s);
    src.kv().serialize(s);
}

} // namespace hwdp::workloads

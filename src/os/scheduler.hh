/**
 * @file
 * Thread scheduling and per-core kernel work execution.
 *
 * Logical cores run at most one thread at a time, selected from a
 * per-core FIFO run queue (workloads pin threads to cores, as the
 * paper's evaluation does). Kernel work items — interrupt handling
 * and completion processing — preempt threads at operation boundaries.
 * Context switches are charged by the scheduler itself, so the OSDP
 * fault path pays switch-out when it blocks and switch-in when the
 * woken thread is redispatched, the way Figure 3 measures them.
 *
 * SMT: logical core l and its sibling share physical core l % nPhys.
 * The width-share query models issue-slot competition: a sibling that
 * is stalled on a hardware-handled page miss (HWDP pipeline stall)
 * consumes no slots, which is the effect Figure 16 measures.
 */

#ifndef HWDP_OS_SCHEDULER_HH
#define HWDP_OS_SCHEDULER_HH

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "os/kernel_phases.hh"
#include "sim/sim_object.hh"

namespace hwdp::sim {
class Serializer;
}

namespace hwdp::os {

class Scheduler;

/** A schedulable entity (workload thread or kernel thread). */
class Thread
{
  public:
    enum class State { created, runnable, running, blocked, finished };

    Thread(std::string name, unsigned core)
        : nm(std::move(name)), coreIdx(core)
    {
    }
    virtual ~Thread() = default;

    /**
     * Called when the scheduler gives this thread the CPU. The
     * implementation drives its own events and must eventually call
     * Scheduler::block/yield/finish (or preemptForKernelWork).
     */
    virtual void run() = 0;

    const std::string &name() const { return nm; }
    unsigned core() const { return coreIdx; }
    State state() const { return st; }
    bool isKthread() const { return kthread; }

    /**
     * Install a continuation to run on the next dispatch (the fault
     * handler uses this for the fault-return phases that execute in
     * the woken thread's context).
     */
    void setResumeAction(std::function<void()> fn)
    {
        resumeAction = std::move(fn);
    }

    bool hasResumeAction() const { return resumeAction != nullptr; }

    /**
     * The kernel could not allocate memory for this thread's fault
     * even after exhaustive reclaim. Return true to absorb the kill
     * (the thread terminates gracefully, OOM-killer style); false
     * means the thread cannot die here and the kernel panics —
     * kthreads and anonymous test threads keep that behaviour.
     */
    virtual bool handleOom() { return false; }

    /**
     * Checkpoint the scheduling state. Only valid at quiesce, when
     * the thread is blocked or finished (never running/runnable with
     * a pending dispatch) and carries no resume action.
     */
    void serializeState(sim::Serializer &s);

  protected:
    bool kthread = false;

    std::function<void()>
    takeResumeAction()
    {
        auto f = std::move(resumeAction);
        resumeAction = nullptr;
        return f;
    }

  private:
    friend class Scheduler;
    std::string nm;
    unsigned coreIdx;
    State st = State::created;
    std::function<void()> resumeAction;
};

class Scheduler : public sim::SimObject
{
  public:
    /**
     * @param n_logical       Logical cores.
     * @param n_physical      Physical cores (logical siblings share).
     * @param kexec           Phase executor for switch/kernel costs.
     * @param smt_share       Per-thread issue share when both SMT
     *                        siblings actively execute.
     */
    Scheduler(sim::EventQueue &eq, unsigned n_logical, unsigned n_physical,
              KernelExec &kexec, double smt_share = 0.6);

    unsigned numLogical() const { return nLogical; }
    unsigned numPhysical() const { return nPhys; }
    unsigned physCoreOf(unsigned logical) const { return logical % nPhys; }
    unsigned siblingOf(unsigned logical) const
    {
        return (logical + nPhys) % nLogical;
    }

    /** Register a thread on its pinned core (created -> runnable). */
    void addThread(Thread *t);

    /** Dispatch every core once the machine is built. */
    void start();

    // ---- Calls made by the currently running thread ------------------
    /** Give up the CPU and wait for wake(); charges switch-out. */
    void block(Thread *t);

    /** Requeue and let others (incl. kernel work) run. */
    void yield(Thread *t);

    /** Terminate the thread. */
    void finish(Thread *t);

    /**
     * Give way to pending kernel work without a full context switch
     * (interrupts borrow the current context). The thread is requeued
     * at the front and resumed free of switch charge.
     */
    void preemptForKernelWork(Thread *t);

    // ---- Calls made by kernel paths -----------------------------------
    /** Make a blocked thread runnable and kick its core. */
    void wake(Thread *t);

    /**
     * Queue interrupt/softirq work on @p core: the phases run (with
     * pollution and accounting), then @p done fires, then the core is
     * redispatched.
     */
    void queueKernelWork(unsigned core,
                         std::vector<const KernelPhase *> phases,
                         std::function<void()> done);

    bool kernelWorkPending(unsigned core) const;

    /**
     * Run a phase sequence inline (in the current thread's context) on
     * @p core, then call @p done. Used by the fault handler for the
     * phases that execute before blocking / after resuming.
     */
    void runPhases(unsigned core, std::vector<const KernelPhase *> phases,
                   std::function<void()> done);

    // ---- State queries -------------------------------------------------
    Thread *current(unsigned core) const { return cores[core].cur; }
    bool coreBusy(unsigned core) const;

    /** Mark/unmark an HWDP pipeline stall on @p core (SMT modelling). */
    void setHwStalled(unsigned core, bool stalled);
    bool hwStalled(unsigned core) const { return cores[core].hwStall; }

    /**
     * Fraction of the physical core's issue slots available to a
     * thread on @p core right now (Figure 16's mechanism).
     */
    double widthShare(unsigned core) const;

    std::uint64_t contextSwitches() const { return statSwitches.value(); }

    KernelExec &kernelExec() { return kexec; }

    /**
     * Checkpoint the per-core state and switch counters. Only valid
     * at quiesce: every core idle, run queues and kernel-work queues
     * empty on the save side. On load the fresh-boot run queues
     * (never-started threads) are discarded; the threads themselves
     * restore their states via serializeState().
     */
    void serialize(sim::Serializer &s);

  private:
    struct KernelWork
    {
        std::vector<const KernelPhase *> phases;
        std::function<void()> done;
    };

    struct CoreState
    {
        Thread *cur = nullptr;
        std::deque<Thread *> runq;
        std::deque<KernelWork> kwork;
        bool inKernelWork = false;
        bool hwStall = false;
        Thread *skipSwitchCharge = nullptr;
        bool started = false;
    };

    unsigned nLogical;
    unsigned nPhys;
    KernelExec &kexec;
    double smtShare;
    std::vector<CoreState> cores;

    sim::Counter &statSwitches;
    sim::Counter &statKernelWorkItems;

    void dispatch(unsigned core);
    void runKernelWorkItem(unsigned core);
    void runPhaseSeq(unsigned core,
                     std::vector<const KernelPhase *> phases,
                     std::size_t idx, std::function<void()> done);
};

} // namespace hwdp::os

#endif // HWDP_OS_SCHEDULER_HH

/**
 * @file
 * Kernel-execution phase model.
 *
 * Every stretch of kernel work the simulator charges — page-fault
 * handling, the I/O stack, context switches, interrupt handling,
 * metadata updates, kpted/kpoold batches — is described by a
 * KernelPhase: a calibrated cycle/instruction budget plus a
 * microarchitectural footprint (instruction lines, data lines and
 * branches it touches). Running a phase advances time by its cycle
 * budget and *pollutes* the executing core's caches and branch
 * predictor, which is how the paper's indirect cost (user-level IPC
 * loss, Figures 4/14) emerges in the model.
 *
 * The cycle budgets are calibrated so that an OSDP page fault
 * reproduces Figure 3: ~2.2 us of kernel work before the device I/O,
 * ~6.1 us after it, against a 10.9 us Z-SSD device time (76.3% total
 * overhead).
 */

#ifndef HWDP_OS_KERNEL_PHASES_HH
#define HWDP_OS_KERNEL_PHASES_HH

#include <cstdint>
#include <vector>

#include "mem/branch_predictor.hh"
#include "mem/cache_hierarchy.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace hwdp::os {

/** Attribution buckets for Figure 15 (kernel cost breakdown). */
enum class KernelCostCat : unsigned {
    faultPath = 0,   ///< Exception entry/exit, VMA lookup, PTE update.
    ioStack,         ///< Submission and completion through the block layer.
    contextSwitch,   ///< Switch-out, wakeup, switch-in.
    irq,             ///< Interrupt delivery.
    metadata,        ///< LRU / rmap / page-cache bookkeeping.
    syscall,         ///< read/write/mmap and friends.
    kpted,           ///< Background metadata-sync thread.
    kpoold,          ///< Background free-page refill thread.
    reclaim,         ///< Page replacement and writeback.
    other,
    numCats
};

const char *kernelCostCatName(KernelCostCat cat);

struct KernelPhase
{
    const char *name;
    Cycles cycles;             ///< Calibrated latency contribution.
    std::uint64_t instructions;
    std::uint16_t icLines;     ///< Distinct instruction lines touched.
    std::uint16_t dcLines;     ///< Distinct data lines touched.
    std::uint16_t branches;    ///< Branches executed (pollute the BP).
    KernelCostCat cat;
};

/**
 * The calibrated phase table. Kept as data (not constants sprinkled
 * through the code) so benches can print it and tests can check the
 * calibration invariants against the paper's fractions.
 */
namespace phases {

// --- OSDP page-fault critical path (Figure 3) ------------------------
extern const KernelPhase exceptionEntry;   ///< Trap + early fault entry.
extern const KernelPhase vmaLookup;        ///< find_vma + policy checks.
extern const KernelPhase pageAlloc;        ///< Buddy/per-cpu allocation.
extern const KernelPhase ioSubmit;         ///< FS + block + NVMe driver.
extern const KernelPhase contextSwitch;    ///< One direction of a switch.
extern const KernelPhase irqDeliver;       ///< MSI-X to handler entry.
extern const KernelPhase ioComplete;       ///< Block completion + unlock.
extern const KernelPhase wakeupSched;      ///< try_to_wake_up + enqueue.
extern const KernelPhase metadataUpdate;   ///< LRU/rmap/page-cache insert.
extern const KernelPhase pteUpdateReturn;  ///< Set PTE + iret.

// --- Minor faults and syscalls ---------------------------------------
extern const KernelPhase minorFaultFill;   ///< Page-cache hit fault.
extern const KernelPhase syscallEntryExit;
extern const KernelPhase writeSyscall;     ///< Buffered 4KB write + copy.
extern const KernelPhase mmapSetupPerPage; ///< PTE population at mmap.

// --- Reclaim ----------------------------------------------------------
extern const KernelPhase reclaimScanPage;  ///< Clock-hand work per page.
extern const KernelPhase writebackSubmit;  ///< Per dirty page written.
extern const KernelPhase writebackComplete; ///< Write-I/O completion.

// --- HWDP control plane ------------------------------------------------
extern const KernelPhase kptedPerPage;     ///< Batched metadata sync.
extern const KernelPhase kptedScanEntry;   ///< Per page-table entry visit.
extern const KernelPhase kpooldPerPage;    ///< Batched free-page refill.

// --- Software-emulated SMU (Figure 17 baseline) -----------------------
extern const KernelPhase swSmuSubmit;      ///< Emulated PMSHR + NVMe cmd.
extern const KernelPhase swSmuWake;        ///< mwait wakeup.
extern const KernelPhase swSmuComplete;    ///< Emulated completion + PTE.

} // namespace phases

/**
 * Executes kernel phases: charges time, applies cache/branch-predictor
 * pollution on the executing physical core, and accumulates the
 * per-category instruction/cycle totals Figure 15 reports.
 */
class KernelExec
{
  public:
    KernelExec(mem::CacheHierarchy &caches,
               std::vector<mem::BranchPredictor> &bps, Tick cycle_period,
               sim::Rng rng);

    /**
     * Run @p phase on physical core @p phys_core.
     * @return the phase duration in ticks.
     */
    Tick run(unsigned phys_core, const KernelPhase &phase);

    /** Run a phase @p n times (batch loops), returning total ticks. */
    Tick runBatch(unsigned phys_core, const KernelPhase &phase,
                  std::uint64_t n);

    std::uint64_t instructions(KernelCostCat cat) const;
    Cycles cycles(KernelCostCat cat) const;
    std::uint64_t totalInstructions() const;
    Cycles totalCycles() const;

    void resetAccounting();

    Tick cyclePeriod() const { return period; }

    /** Pollution can be disabled for pure-latency experiments. */
    void setPollutionEnabled(bool on) { pollute = on; }

  private:
    mem::CacheHierarchy &caches;
    std::vector<mem::BranchPredictor> &bps;
    Tick period;
    sim::Rng rng;
    bool pollute = true;

    std::uint64_t instrByCat[static_cast<unsigned>(KernelCostCat::numCats)] =
        {};
    Cycles cyclesByCat[static_cast<unsigned>(KernelCostCat::numCats)] = {};

    /** Monotone counter that spreads per-invocation data addresses. */
    std::uint64_t invocation = 0;

    void applyPollution(unsigned phys_core, const KernelPhase &phase);
};

} // namespace hwdp::os

#endif // HWDP_OS_KERNEL_PHASES_HH

#include "core/pmshr.hh"

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::core {

void
Pmshr::serialize(sim::Serializer &s)
{
    s.section("pmshr");
    if (used != 0)
        throw sim::SerializeError(
            "checkpoint: PMSHR has outstanding misses; quiesce the "
            "machine first");
    std::uint64_t n = entries.size();
    s.check(n, "pmshr capacity");
    s.io(nCoalesced);
}

Pmshr::Pmshr(unsigned n_entries) : entries(n_entries)
{
    if (n_entries == 0)
        fatal("pmshr: need at least one entry");
}

int
Pmshr::lookup(PAddr pte_addr) const
{
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (entries[i].valid && entries[i].pteAddr == pte_addr)
            return static_cast<int>(i);
    }
    return -1;
}

int
Pmshr::allocate(PAddr pte_addr)
{
    if (lookup(pte_addr) >= 0)
        panic("pmshr: duplicate allocate for PTE ", pte_addr);
    if (fullHook && fullHook())
        return -1;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (!entries[i].valid) {
            entries[i].valid = true;
            entries[i].pteAddr = pte_addr;
            entries[i].pfn = 0;
            entries[i].retried = false;
            entries[i].waiters.clear();
            ++used;
            return static_cast<int>(i);
        }
    }
    return -1;
}

Pmshr::Entry &
Pmshr::entry(int idx)
{
    if (idx < 0 || static_cast<std::size_t>(idx) >= entries.size() ||
        !entries[idx].valid)
        panic("pmshr: bad entry index ", idx);
    return entries[idx];
}

const Pmshr::Entry &
Pmshr::entry(int idx) const
{
    if (idx < 0 || static_cast<std::size_t>(idx) >= entries.size() ||
        !entries[idx].valid)
        panic("pmshr: bad entry index ", idx);
    return entries[idx];
}

void
Pmshr::invalidate(int idx)
{
    Entry &e = entry(idx);
    e.valid = false;
    e.waiters.clear();
    --used;
}

} // namespace hwdp::core

/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * SplitMix64 is used as the core generator: it is tiny, passes BigCrush
 * when used as a mixer, and — unlike std::mt19937 — its sequences are
 * reproducible across standard-library implementations, which keeps
 * experiment output stable.
 */

#ifndef HWDP_SIM_RNG_HH
#define HWDP_SIM_RNG_HH

#include <cstdint>

namespace hwdp::sim {

/** SplitMix64 generator with convenience distributions. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    // The uniform distributions are defined inline: workload compute
    // bursts draw two of them per simulated data reference, so the
    // call overhead is measurable on the whole-simulation profile.

    /** Uniform integer in [0, bound). @pre bound > 0 */
    std::uint64_t
    range(std::uint64_t bound)
    {
        if (bound == 0) [[unlikely]]
            rangePanic();
        // Multiply-shift rejection-free mapping (Lemire); bias is
        // below 2^-64 * bound which is negligible for simulation
        // purposes.
        unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        // 53-bit mantissa from the top bits.
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /** Exponentially distributed value with the given mean. */
    double exponential(double mean);

    /** Normal value via Box-Muller (mean, stddev). */
    double normal(double mean, double stddev);

    /** Derive an independent stream (for per-component RNGs). */
    Rng fork();

  private:
    std::uint64_t state;
    bool haveSpare = false;
    double spare = 0.0;

    /** Out-of-line so the inline fast path stays branch + mul. */
    [[noreturn]] void rangePanic() const;
};

} // namespace hwdp::sim

#endif // HWDP_SIM_RNG_HH

/**
 * @file
 * Latency/parallelism profiles of the storage devices the paper uses.
 *
 * "Device time" in the paper is the interval from the SQ doorbell
 * write to the device's CQ entry write for a 4 KB read; Figure 17
 * reports it as 10.9 us for the Z-SSD, ~6.5 us for the Optane SSD and
 * 2.1 us for Optane DC PMM in App-direct mode. Profiles decompose that
 * into command fetch, media access, data transfer and CQE write so the
 * queueing model has meaningful internal structure, and include slower
 * historical devices for the Figure 2 trend table.
 */

#ifndef HWDP_SSD_SSD_PROFILE_HH
#define HWDP_SSD_SSD_PROFILE_HH

#include <string>

#include "sim/types.hh"

namespace hwdp::ssd {

struct SsdProfile
{
    std::string name;

    /** Doorbell write to command arrival inside the device. */
    Tick cmdFetch = 0;

    /** Media time for a 4 KB read / write (per channel occupancy). */
    Tick readMedia = 0;
    Tick writeMedia = 0;

    /** DMA transfer of 4 KB between device and host DRAM. */
    Tick xfer4k = 0;

    /** CQ entry write (a posted PCIe memory write). */
    Tick cqeWrite = 0;

    /** Independent internal channels (die-level parallelism). */
    unsigned channels = 8;

    /**
     * Coefficient of variation of the media time; models device
     * internals (ECC retries, die contention) without a full FTL.
     */
    double mediaCv = 0.05;

    /** MSI-X interrupt delivery latency to a core (OSDP path only). */
    Tick interruptLatency = nanoseconds(300);

    /** Unloaded 4 KB read device time (doorbell to CQE write). */
    Tick unloadedRead4k() const
    {
        return cmdFetch + readMedia + xfer4k + cqeWrite;
    }
};

/** Samsung SZ985 Z-SSD: the paper's primary evaluation device. */
SsdProfile zssdProfile();

/** Intel Optane SSD DC P4800X class device. */
SsdProfile optaneSsdProfile();

/** Intel Optane DC PMM in App-direct mode used as a block device. */
SsdProfile optanePmmProfile();

/** Commodity NVMe flash SSD (~80 us), for the Figure 2 trend. */
SsdProfile nvmeFlashProfile();

/** SATA-attached flash SSD (~100 us + protocol), for Figure 2. */
SsdProfile sataSsdProfile();

/** 7200 rpm hard disk (~10 ms), for Figure 2. */
SsdProfile hddProfile();

/** Look a profile up by name; fatal() on unknown names. */
SsdProfile profileByName(const std::string &name);

} // namespace hwdp::ssd

#endif // HWDP_SSD_SSD_PROFILE_HH

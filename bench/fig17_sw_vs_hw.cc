/**
 * @file
 * Figure 17: software-only (emulated SMU) vs hardware SMU single-miss
 * latency on three devices.
 *
 * Paper: normalized to SW-only, HWDP is 14% lower on the Z-SSD
 * (10.9 us device time) and ~44% lower on Optane DC PMM (2.1 us) —
 * hardware support matters more as devices get faster.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "ssd/ssd_profile.hh"

using namespace hwdp;
using metrics::Table;

namespace {

double
measureMissLatency(system::PagingMode mode, const std::string &profile)
{
    auto cfg = bench::paperConfig(mode, profile);
    system::System sys(cfg);
    auto mf = sys.mapDataset("fio.dat", 32 * bench::defaultMemFrames);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 8000);
    sys.addThread(*wl, 0, *mf.as);
    sys.runUntilThreadsDone(seconds(60.0));
    if (mode == system::PagingMode::hwdp)
        return sys.smu()->missLatencyUs().mean();
    return sys.softwareSmu()->missLatencyUs().mean();
}

} // namespace

int
main()
{
    metrics::banner("Figure 17: SW-only vs HWDP single-miss latency",
                    "paper: HWDP -14% on Z-SSD ... -44% on Optane PMM");

    Table t({"device", "device time us", "SW-only us", "HWDP us",
             "HWDP / SW-only", "paper"});
    struct P
    {
        const char *profile;
        const char *paper;
    };
    const std::vector<P> points = {{"zssd", "0.86 (-14%)"},
                                   {"optane_ssd", "~0.75"},
                                   {"optane_pmm", "0.56 (-44%)"}};
    // Sweep the (device, SMU implementation) grid in parallel.
    bench::SweepRunner runner;
    auto lats = runner.map<double>(points.size() * 2, [&](std::size_t i) {
        return measureMissLatency(i % 2 ? system::PagingMode::hwdp
                                        : system::PagingMode::swsmu,
                                  points[i / 2].profile);
    });
    for (std::size_t pi = 0; pi < points.size(); ++pi) {
        const P &p = points[pi];
        double dev =
            toMicroseconds(ssd::profileByName(p.profile).unloadedRead4k());
        double sw = lats[pi * 2];
        double hw = lats[pi * 2 + 1];
        t.addRow({p.profile, Table::num(dev, 1), Table::num(sw),
                  Table::num(hw), Table::num(hw / sw), p.paper});
    }
    t.print();
    return 0;
}

#include "cpu/walker.hh"

#include "sim/serialize.hh"

namespace hwdp::cpu {

void
Walker::serialize(sim::Serializer &s)
{
    s.section("walker");
    std::uint64_t n = pwc.size();
    s.check(n, "pwc capacity");
    for (auto &e : pwc) {
        s.io(e.addr);
        s.io(e.lastUse);
        s.io(e.valid);
    }
    s.io(pwcClock);
    s.io(nPwcValid);
    s.io(nWalks);
    s.io(nPwcHits);
    s.io(nPwcMisses);
    // Guarded so single-socket blobs keep the pre-NUMA layout.
    if (numaSockets > 1)
        s.io(nRemoteSteps);
}

Walker::Walker(mem::CacheHierarchy &caches, unsigned phys_core,
               Tick cycle_period, unsigned pwc_entries)
    : caches(caches), physCore(phys_core), period(cycle_period),
      pwc(pwc_entries)
{
}

bool
Walker::pwcLookup(PAddr addr)
{
    for (PwcEntry &e : pwc) {
        if (e.valid && e.addr == addr) {
            e.lastUse = ++pwcClock;
            return true;
        }
    }
    return false;
}

void
Walker::pwcInsert(PAddr addr)
{
    if (pwc.empty())
        return;
    PwcEntry *victim = &pwc.front();
    for (PwcEntry &e : pwc) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    if (!victim->valid)
        ++nPwcValid;
    victim->valid = true;
    victim->addr = addr;
    victim->lastUse = ++pwcClock;
}

void
Walker::pwcInvalidate(PAddr entry_addr)
{
    if (nPwcValid == 0)
        return;
    for (PwcEntry &e : pwc) {
        if (e.valid && e.addr == entry_addr) {
            e.valid = false;
            --nPwcValid;
        }
    }
}

void
Walker::pwcFlush()
{
    for (PwcEntry &e : pwc)
        e.valid = false;
    nPwcValid = 0;
}

Walker::Outcome
Walker::walk(os::AddressSpace &as, VAddr vaddr)
{
    ++nWalks;
    Outcome out;

    os::WalkRefs refs = as.pageTable().walkRefs(vaddr, false);
    out.refs = refs;

    // Root access (PGD entry) is effectively always cached; the PUD
    // and PMD entry reads go through the PWC and are only charged to
    // the hierarchy on a PWC miss. The leaf PTE read is always
    // charged. Walker traffic is attributed to user mode: it exists
    // identically under OSDP and HWDP and is not OS pollution.
    // NUMA: page-table pages are kernel allocations interleaved
    // across sockets (page-granular entry address picks the node); a
    // charged step that misses the LLC on a remote node pays the
    // interconnect hop on top. Single-socket machines never enter the
    // extra branch.
    auto charge = [this](PAddr addr) {
        auto res = caches.access(physCore, addr, false, ExecMode::user);
        Cycles c = res.latency;
        if (numaSockets > 1 && res.llcMiss &&
            (addr >> pageShift) % numaSockets != mySocket) {
            c += numaRemoteExtra;
            ++nRemoteSteps;
        }
        return c;
    };
    Cycles cycles = 0;
    for (const os::EntryRef *r : {&refs.pud, &refs.pmd}) {
        if (!r->valid())
            break;
        if (pwcLookup(r->addr)) {
            ++nPwcHits;
            continue;
        }
        ++nPwcMisses;
        cycles += charge(r->addr);
        pwcInsert(r->addr);
    }
    // A 2 MB PMD leaf terminates the walk one level early: the PMD
    // entry (already charged / PWC-filtered above) is the
    // translation, and no leaf PTE read exists to charge — the
    // latency edge huge pages give a hardware walker.
    if (refs.pmd.valid() && os::pte::isHugeLeaf(refs.pmd.value())) {
        out.latency = cycles * period;
        os::pte::Entry leaf = refs.pmd.value();
        if (!os::pte::isAccessed(leaf))
            refs.pmd.write(leaf | os::pte::accessedBit);
        out.entry = refs.pmd.value();
        out.kind = Classification::present;
        return out;
    }
    if (refs.pmd.valid() && refs.pte.valid())
        cycles += charge(refs.pte.addr);
    out.latency = cycles * period;

    if (!refs.pte.valid()) {
        out.kind = Classification::osFault;
        return out;
    }

    os::pte::Entry e = refs.pte.value();
    out.entry = e;
    if (os::pte::isPresent(e)) {
        // Hardware A-bit update on translation.
        if (!os::pte::isAccessed(e))
            refs.pte.write(e | os::pte::accessedBit);
        out.kind = Classification::present;
    } else if (os::pte::hasLbaBit(e)) {
        out.kind = Classification::hwMiss;
    } else {
        out.kind = Classification::osFault;
    }
    return out;
}

} // namespace hwdp::cpu

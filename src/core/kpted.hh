/**
 * @file
 * kpted: the background page-table-entry metadata-sync thread.
 *
 * Periodically (default one second in the paper; the period scales
 * with the simulated memory size) scans the page tables of fast-mmap
 * areas for PTEs with both present and LBA bits set — pages whose
 * misses the hardware handled — and synchronises OS metadata for
 * them: LRU insertion, page-struct updates, reverse mapping, page
 * cache insertion; finally it clears the PTE's LBA bit (Section IV-C).
 * The scan is guided by the LBA bits kpted itself clears in the PMD
 * and PUD entries, so clean subtrees are skipped; the ablation bench
 * compares against an exhaustive scan.
 */

#ifndef HWDP_CORE_KPTED_HH
#define HWDP_CORE_KPTED_HH

#include "core/fast_mmap.hh"
#include "os/kthread.hh"

namespace hwdp::core {

class Kpted : public os::KThread
{
  public:
    Kpted(os::Kernel &kernel, HwdpOsSupport &support, unsigned core,
          Tick period, bool guided_scan = true);

    void batch(std::function<void()> done) override;

    /**
     * Synchronous range sync (the munmap/msync barrier): scans
     * [lo, hi) of @p as on @p caller_core, charging kpted phases
     * there, then fires @p done.
     */
    void syncRange(os::AddressSpace &as, VAddr lo, VAddr hi,
                   unsigned caller_core, std::function<void()> done);

    std::uint64_t pagesSynced() const { return nSynced; }
    std::uint64_t entriesVisited() const { return nVisited; }
    bool guidedScan() const { return guided; }

    /**
     * Multi-socket: every sync batch that rewrote at least one PTE
     * ends with one batched TLB/PWC shootdown round, an IPI per
     * remote socket. @p n is sockets - 1; 0 (default) charges
     * nothing, keeping single-socket timing untouched.
     */
    void setCrossSocketIpis(unsigned n) { crossSocketIpis = n; }

    /** IPIs charged for cross-socket sync shootdowns. */
    std::uint64_t shootdownIpisSent() const { return nIpis; }

    /** Checkpoint the kthread state and scan counters. */
    void serialize(sim::Serializer &s);

  private:
    os::Kernel &kernel;
    HwdpOsSupport &support;
    bool guided;
    unsigned crossSocketIpis = 0;
    std::uint64_t nSynced = 0;
    std::uint64_t nVisited = 0;
    std::uint64_t nIpis = 0; ///< Serialized only when multi-socket.

    /** One scan pass over a range; returns (synced, visited). */
    std::pair<std::uint64_t, std::uint64_t>
    scan(os::AddressSpace &as, VAddr lo, VAddr hi);
};

} // namespace hwdp::core

#endif // HWDP_CORE_KPTED_HH

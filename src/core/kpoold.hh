/**
 * @file
 * kpoold: the background free-page-queue refill thread.
 *
 * Periodically tops the SMU's free page queue up with frames from the
 * page allocator (Section IV-D). When the SMU finds the queue empty
 * it bounces the miss to the OS fault path, which performs a refill
 * overlapped with that fault's device I/O (the AIOS trick); kpoold's
 * job is to make those slow OS-handled cases rare — the paper reports
 * it removes 44.3–78.4% of them, which the ablation bench reproduces.
 */

#ifndef HWDP_CORE_KPOOLD_HH
#define HWDP_CORE_KPOOLD_HH

#include <vector>

#include "core/free_page_queue.hh"
#include "os/kthread.hh"
#include "os/kernel.hh"

namespace hwdp::core {

class Kpoold : public os::KThread
{
  public:
    /**
     * @param fpqs      The queues to keep filled (one in the global
     *                  design; one per core with the Section V
     *                  per-core-queue extension).
     * @param max_batch Pages donated per wakeup (with the period this
     *                  sets the refill bandwidth; the paper's 4 ms /
     *                  250 MB/s operating point is the default shape).
     */
    Kpoold(os::Kernel &kernel, std::vector<FreePageQueue *> fpqs,
           unsigned core, Tick period, std::uint64_t max_batch = 1024);

    /**
     * Home socket of each queue in the same order as the constructor's
     * fpqs (multi-socket machines). Refills draw strictly from the
     * queue's home node — a dry node starves its queue and bounces
     * misses to the OS rather than polluting it with remote frames,
     * preserving the frame-home == owning-FPQ invariant. Unset (the
     * default) treats every queue as socket 0.
     */
    void setSocketTags(std::vector<unsigned> tags);

    void batch(std::function<void()> done) override;

    /**
     * Refill performed by the OS fault path, overlapped with the
     * fault's device I/O: queued as kernel work on @p faulting_core.
     */
    void refillOverlapped(unsigned faulting_core);

    /** Boot-time fill of the queue and prefetch buffer (untimed). */
    void prime();

    std::uint64_t pagesDonated() const { return nDonated; }
    std::uint64_t overlappedRefills() const { return nOverlapped; }

    /** Checkpoint the kthread state and refill counters. */
    void serialize(sim::Serializer &s);

  private:
    os::Kernel &kernel;
    std::vector<FreePageQueue *> fpqs;
    std::vector<unsigned> socketTags; ///< Empty: all queues on socket 0.
    std::uint64_t maxBatch;
    std::uint64_t nDonated = 0;
    std::uint64_t nOverlapped = 0;

    unsigned
    socketOfQueue(std::size_t qi) const
    {
        return qi < socketTags.size() ? socketTags[qi] : 0;
    }

    /** Move up to @p want home-socket frames into @p q. */
    std::uint64_t donateTo(FreePageQueue &q, std::uint64_t want,
                           unsigned socket);

    /** Spread up to @p want frames across all queues. */
    std::uint64_t donate(std::uint64_t want);
};

} // namespace hwdp::core

#endif // HWDP_CORE_KPOOLD_HH

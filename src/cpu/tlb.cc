#include "cpu/tlb.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::cpu {

void
Tlb::serialize(sim::Serializer &s)
{
    s.section("tlb");
    std::uint64_t geom = (static_cast<std::uint64_t>(l1Sets) << 48) |
                         (static_cast<std::uint64_t>(l1Assoc) << 32) |
                         (static_cast<std::uint64_t>(l2Sets) << 16) |
                         l2Assoc;
    s.check(geom, "tlb geometry");
    for (auto *lvl : {&l1, &l2}) {
        for (auto &e : *lvl) {
            s.io(e.vpn);
            s.io(e.pfn);
            s.io(e.lastUse);
            s.io(e.valid);
        }
    }
    s.io(useClock);
    s.io(latchVpn);
    std::uint64_t latch = latchIdx == npos ? ~0ULL : latchIdx;
    s.io(latch);
    if (s.loading())
        latchIdx = latch == ~0ULL ? npos : static_cast<std::size_t>(latch);
    s.io(nLookups);
    s.io(nL1Miss);
    s.io(nMiss);
    s.io(nLatchHits);
    // Wide state rides only in wide-capable machines, so a pageMode =
    // off blob keeps the pre-huge-page layout byte for byte.
    if (wideCapable) {
        for (auto *lvl : {&l1, &l2})
            for (auto &e : *lvl)
                s.io(e.reach);
        s.io(latchReach);
        s.io(nWideHits);
        if (s.loading()) {
            nNapot[0] = nNapot[1] = nHuge[0] = nHuge[1] = 0;
            for (auto *lvl : {&l1, &l2})
                for (auto &e : *lvl)
                    if (e.valid)
                        countWide(levelOf(*lvl), e.reach, +1);
        }
    }
}

Tlb::Tlb(unsigned l1_entries, unsigned l2_entries, unsigned l2_assoc,
         unsigned l1_assoc, bool wide_capable)
    : l1Assoc(std::min(l1_assoc, l1_entries)), l2Assoc(l2_assoc),
      wideCapable(wide_capable)
{
    if (l1_entries == 0 || l2_entries == 0 || l2_assoc == 0 ||
        l1_assoc == 0 || l2_entries % l2_assoc != 0 ||
        l1_entries % l1Assoc != 0)
        fatal("tlb: bad geometry");
    l1Sets = l1_entries / l1Assoc;
    l2Sets = l2_entries / l2_assoc;
    l1.resize(l1_entries);
    l2.resize(l2_entries);
}

void
Tlb::countWide(unsigned level, unsigned reach, int delta)
{
    if (reach == napotShift)
        nNapot[level] += delta;
    else if (reach == pmdLeafShift)
        nHuge[level] += delta;
}

Tlb::Entry *
Tlb::find(std::vector<Entry> &lvl, unsigned sets, unsigned assoc,
          std::uint64_t vpn, unsigned reach)
{
    std::uint64_t key = vpn >> reach;
    Entry *base = &lvl[(key % sets) * assoc];
    for (unsigned w = 0; w < assoc; ++w) {
        if (base[w].valid && base[w].reach == reach &&
            (base[w].vpn >> reach) == key)
            return &base[w];
    }
    return nullptr;
}

Tlb::Entry *
Tlb::fill(std::vector<Entry> &lvl, unsigned sets, unsigned assoc,
          std::uint64_t vpn, Pfn pfn, unsigned reach)
{
    std::uint64_t key = vpn >> reach;
    Entry *base = &lvl[(key % sets) * assoc];
    Entry *victim = base;
    for (unsigned w = 0; w < assoc; ++w) {
        Entry &e = base[w];
        if (!e.valid) {
            victim = &e;
        } else if (victim->valid && e.lastUse < victim->lastUse) {
            victim = &e;
        }
    }
    // Evicting the latched L1 slot would leave the latch pointing at
    // a different translation; drop it (the caller re-latches).
    if (&lvl == &l1 && latchIdx != npos && victim == &l1[latchIdx])
        latchIdx = npos;
    if (victim->valid)
        countWide(levelOf(lvl), victim->reach, -1);
    countWide(levelOf(lvl), reach, +1);
    victim->valid = true;
    victim->vpn = key << reach;
    victim->pfn = pfn;
    victim->lastUse = ++useClock;
    victim->reach = static_cast<std::uint8_t>(reach);
    return victim;
}

Tlb::Result
Tlb::lookupSlow(std::uint64_t vpn)
{
    Result r;
    // Probe 4 KB first, then each wide size with any resident entry.
    // A pageMode = off machine never has a wide entry, so its probe
    // and useClock sequence is exactly the pre-huge-page one.
    for (unsigned reach : {0u, unsigned(napotShift),
                           unsigned(pmdLeafShift)}) {
        if (reach == napotShift && nNapot[0] == 0)
            continue;
        if (reach == pmdLeafShift && nHuge[0] == 0)
            continue;
        if (Entry *e = find(l1, l1Sets, l1Assoc, vpn, reach)) {
            e->lastUse = ++useClock;
            latchVpn = e->vpn;
            latchReach = e->reach;
            latchIdx = static_cast<std::size_t>(e - l1.data());
            if (e->reach)
                ++nWideHits;
            r.hit = true;
            r.l1Hit = true;
            r.pfn = e->pfn + (vpn & ((1ULL << e->reach) - 1));
            return r;
        }
    }
    ++nL1Miss;

    for (unsigned reach : {0u, unsigned(napotShift),
                           unsigned(pmdLeafShift)}) {
        if (reach == napotShift && nNapot[1] == 0)
            continue;
        if (reach == pmdLeafShift && nHuge[1] == 0)
            continue;
        if (Entry *e = find(l2, l2Sets, l2Assoc, vpn, reach)) {
            e->lastUse = ++useClock;
            Entry *ne =
                fill(l1, l1Sets, l1Assoc, e->vpn, e->pfn, e->reach);
            latchVpn = ne->vpn;
            latchReach = ne->reach;
            latchIdx = static_cast<std::size_t>(ne - l1.data());
            if (e->reach)
                ++nWideHits;
            r.hit = true;
            r.pfn = e->pfn + (vpn & ((1ULL << e->reach) - 1));
            return r;
        }
    }
    ++nMiss;
    return r;
}

void
Tlb::insert(VAddr vaddr, Pfn pfn, unsigned reach)
{
    std::uint64_t vpn = (vaddr >> pageShift) >> reach << reach;
    pfn = pfn >> reach << reach;

    Entry *e1 = find(l1, l1Sets, l1Assoc, vpn, reach);
    if (!e1) {
        e1 = fill(l1, l1Sets, l1Assoc, vpn, pfn, reach);
        latchVpn = e1->vpn;
        latchReach = e1->reach;
        latchIdx = static_cast<std::size_t>(e1 - l1.data());
    } else if (e1->pfn != pfn) {
        e1->pfn = pfn;
        e1->lastUse = ++useClock;
    }

    Entry *e2 = find(l2, l2Sets, l2Assoc, vpn, reach);
    if (!e2) {
        fill(l2, l2Sets, l2Assoc, vpn, pfn, reach);
    } else if (e2->pfn != pfn) {
        e2->pfn = pfn;
        e2->lastUse = ++useClock;
    }
}

void
Tlb::invalidate(VAddr vaddr)
{
    std::uint64_t vpn = vaddr >> pageShift;
    // The latch may hold a wide entry whose range covers this VPN; a
    // 4 KB-only compare here would leave a stale wide latch alive
    // after its frames were reclaimed.
    if (latchIdx != npos &&
        (vpn >> latchReach) == (latchVpn >> latchReach))
        latchIdx = npos;
    for (unsigned lv = 0; lv < 2; ++lv) {
        auto &arr = lv == 0 ? l1 : l2;
        unsigned sets = lv == 0 ? l1Sets : l2Sets;
        unsigned assoc = lv == 0 ? l1Assoc : l2Assoc;
        for (unsigned reach : {0u, unsigned(napotShift),
                               unsigned(pmdLeafShift)}) {
            if (reach == napotShift && nNapot[lv] == 0)
                continue;
            if (reach == pmdLeafShift && nHuge[lv] == 0)
                continue;
            if (Entry *e = find(arr, sets, assoc, vpn, reach)) {
                e->valid = false;
                countWide(lv, e->reach, -1);
            }
        }
    }
}

void
Tlb::invalidateRange(VAddr vaddr, std::uint64_t pages)
{
    std::uint64_t lo = vaddr >> pageShift;
    std::uint64_t hi = lo + pages;
    if (latchIdx != npos) {
        std::uint64_t base = latchVpn >> latchReach << latchReach;
        if (base < hi && lo < base + (1ULL << latchReach))
            latchIdx = npos;
    }
    for (unsigned lv = 0; lv < 2; ++lv) {
        auto &arr = lv == 0 ? l1 : l2;
        for (Entry &e : arr) {
            if (!e.valid)
                continue;
            std::uint64_t base = e.vpn;
            if (base < hi && lo < base + (1ULL << e.reach)) {
                e.valid = false;
                countWide(lv, e.reach, -1);
            }
        }
    }
}

void
Tlb::flush()
{
    latchIdx = npos;
    latchReach = 0;
    for (Entry &e : l1)
        e.valid = false;
    for (Entry &e : l2)
        e.valid = false;
    nNapot[0] = nNapot[1] = nHuge[0] = nHuge[1] = 0;
}

} // namespace hwdp::cpu

#include "mem/cache_array.hh"

#include <algorithm>
#include <bit>

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::mem {

void
CacheArray::serialize(sim::Serializer &s)
{
    s.section("cachearray");
    s.check(bytes, "cache size");
    s.check(ways, "cache associativity");
    s.check(line, "cache line size");
    std::uint64_t n = meta.size();
    s.check(n, "cache meta words");
    s.ioRange(meta.begin(), meta.end());
    s.io(useClock);
    s.io(hits);
    s.io(misses);
    s.io(nValid);
}

CacheArray::CacheArray(std::string name, std::uint64_t size_bytes,
                       unsigned assoc, unsigned line_bytes)
    : label(std::move(name)), bytes(size_bytes), ways(assoc),
      line(line_bytes)
{
    if (assoc == 0 || line_bytes == 0 || size_bytes == 0)
        fatal("cache '", label, "': degenerate geometry");
    if (assoc > 64)
        fatal("cache '", label, "': associativity above 64 unsupported");
    if (!std::has_single_bit(static_cast<std::uint64_t>(line_bytes)))
        fatal("cache '", label, "': line size must be a power of two");
    std::uint64_t n_lines = size_bytes / line_bytes;
    if (n_lines % assoc != 0)
        fatal("cache '", label, "': size not divisible by assoc * line");
    sets = static_cast<unsigned>(n_lines / assoc);
    if (!std::has_single_bit(static_cast<std::uint64_t>(sets)))
        fatal("cache '", label, "': set count must be a power of two");
    lineShiftBits = static_cast<unsigned>(
        std::countr_zero(static_cast<std::uint64_t>(line_bytes)));
    setBits = static_cast<unsigned>(
        std::countr_zero(static_cast<std::uint64_t>(sets)));
    stampMask = (std::uint64_t(1) << (lineShiftBits + setBits)) - 1;
    if (ways >= stampMask)
        fatal("cache '", label, "': stamp field too narrow for ", ways,
              " ways");
    meta.assign(static_cast<std::size_t>(sets) * ways, 0);
}

std::size_t
CacheArray::accessBatch(const std::uint64_t *addrs, std::size_t n,
                        std::uint64_t *miss_out,
                        std::uint64_t *hit_bitmap)
{
    if (n == 0)
        return 0;
    if (hit_bitmap) {
        for (std::size_t w = 0; w < (n + 63) / 64; ++w)
            hit_bitmap[w] = 0;
    }

    // Wide arrays only (the LLC): the metadata exceeds the host
    // cache, so a set scan is a host memory stall. Prefetching each
    // set this many lines before its scan overlaps those stalls; the
    // hint is safe under any aliasing (a stale prefetch just warms
    // the line the scan re-reads).
    const bool wide = ways > 8;
    constexpr std::size_t lookahead = 12;
    if (wide) {
        for (std::size_t j = 0; j < std::min(lookahead, n); ++j)
            prefetch(addrs[j]);
    }

    std::size_t nmiss = 0;
    std::size_t i = 0;
    while (i < n) {
        // The reference path renormalises when the clock saturates at
        // the start of an access; cutting the run at the same
        // headroom reproduces the renormalisation points exactly.
        if (useClock == stampMask) [[unlikely]]
            renormalize();
        std::size_t chunk = static_cast<std::size_t>(
            std::min<std::uint64_t>(n - i, stampMask - useClock));

        for (std::size_t j = i; j < i + chunk; ++j) {
            if (wide && j + lookahead < n)
                prefetch(addrs[j + lookahead]);
            std::uint64_t addr = addrs[j];
            bool hit = accessOne(addr, useClock + (j - i) + 1);
            // Branch-free compaction: the store is unconditional, the
            // cursor advances only on a miss.
            miss_out[nmiss] = addr;
            nmiss += !hit;
            if (hit_bitmap)
                hit_bitmap[j >> 6] |=
                    static_cast<std::uint64_t>(hit) << (j & 63);
        }
        useClock += chunk;
        i += chunk;
    }

    hits += n - nmiss;
    misses += nmiss;
    return n - nmiss;
}

CacheArray::ShardResult
CacheArray::accessBatchShard(const std::uint64_t *addrs, std::size_t n,
                             std::uint8_t *hit_flags, unsigned shard,
                             unsigned n_shards)
{
    ShardResult res;
    if (n == 0)
        return res;

    const bool wide = ways > 8;
    constexpr std::size_t lookahead = 12;
    const std::uint64_t set_mask = sets - 1;

    // Walk the same renormalisation segments the serial batch walks,
    // derived from the shared clock read-only (every shard computes
    // the identical plan; finishShardedBatch() advances the clock
    // once, afterwards).
    std::uint64_t clock = useClock;
    std::size_t i = 0;
    while (i < n) {
        if (clock == stampMask) {
            renormalizeShard(shard, n_shards);
            clock = ways;
        }
        std::size_t chunk = static_cast<std::size_t>(
            std::min<std::uint64_t>(n - i, stampMask - clock));
        for (std::size_t j = i; j < i + chunk; ++j) {
            std::uint64_t addr = addrs[j];
            if ((addr >> lineShiftBits & set_mask) % n_shards != shard)
                continue;
            if (wide && j + lookahead < n) {
                std::uint64_t pa = addrs[j + lookahead];
                if ((pa >> lineShiftBits & set_mask) % n_shards == shard)
                    prefetch(pa);
            }
            bool hit =
                accessOneInto(addr, clock + (j - i) + 1, res.fills);
            res.hits += hit;
            hit_flags[j] = static_cast<std::uint8_t>(hit);
        }
        clock += chunk;
        i += chunk;
    }
    return res;
}

void
CacheArray::finishShardedBatch(std::size_t n, std::uint64_t total_hits,
                               std::uint64_t total_fills)
{
    // Replay the serial batch's clock evolution (the shards already
    // renormalised their sets at the matching access indices).
    std::size_t i = 0;
    while (i < n) {
        if (useClock == stampMask)
            useClock = ways;
        std::size_t chunk = static_cast<std::size_t>(
            std::min<std::uint64_t>(n - i, stampMask - useClock));
        useClock += chunk;
        i += chunk;
    }
    hits += total_hits;
    misses += n - total_hits;
    nValid += total_fills;
}

bool
CacheArray::invalidate(std::uint64_t addr)
{
    std::size_t base = (addr >> lineShiftBits & (sets - 1)) *
                       static_cast<std::size_t>(ways);
    std::uint64_t want = tagWord(addr);
    for (unsigned w = 0; w < ways; ++w) {
        if ((meta[base + w] & ~stampMask) == want) {
            meta[base + w] = 0;
            --nValid;
            return true;
        }
    }
    return false;
}

void
CacheArray::flush()
{
    meta.assign(meta.size(), 0);
    nValid = 0;
    useClock = 0;
}

void
CacheArray::renormalizeSet(unsigned s)
{
    // Insertion-sort the valid ways of the set by stamp, then rewrite
    // each stamp as its 1-based rank. ways <= 64 keeps the scratch on
    // the stack.
    std::uint64_t *row = &meta[static_cast<std::size_t>(s) * ways];
    unsigned order[64];
    unsigned n = 0;
    for (unsigned w = 0; w < ways; ++w) {
        if (row[w] == 0)
            continue;
        unsigned pos = n++;
        while (pos > 0 &&
               (row[order[pos - 1]] & stampMask) > (row[w] & stampMask)) {
            order[pos] = order[pos - 1];
            --pos;
        }
        order[pos] = w;
    }
    for (unsigned r = 0; r < n; ++r) {
        std::uint64_t m = row[order[r]];
        row[order[r]] = (m & ~stampMask) | (r + 1);
    }
}

void
CacheArray::renormalize()
{
    // The clock restarts above the largest assigned rank.
    for (unsigned s = 0; s < sets; ++s)
        renormalizeSet(s);
    useClock = ways;
}

void
CacheArray::renormalizeShard(unsigned shard, unsigned n_shards)
{
    for (unsigned s = shard; s < sets; s += n_shards)
        renormalizeSet(s);
}

} // namespace hwdp::mem

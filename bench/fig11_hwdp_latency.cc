/**
 * @file
 * Figure 11: (a) single page miss, OSDP vs HWDP, split into
 * before-device-I/O and after-device-I/O portions; (b) the HWDP
 * hardware timeline with per-step costs.
 *
 * Paper: HWDP cuts the before-device portion by 2.38 us and the
 * after-device portion by 6.16 us; the hardware steps are 2 register
 * writes (1+1 cycles), a 5-cycle CAM lookup, a 77.16 ns NVMe command
 * memory write, a 1.60 ns PCIe doorbell write, a 97-cycle
 * PTE/PMD/PUD update, 2 cycles of completion handling and 2 cycles to
 * notify the MMU.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "os/kernel_phases.hh"
#include "ssd/ssd_profile.hh"

using namespace hwdp;
using metrics::Table;
using namespace hwdp::os;

int
main()
{
    const Tick period = 357;
    auto cyc_us = [&](Cycles c) { return toMicroseconds(c * period); };

    metrics::banner("Figure 11(a): OSDP vs HWDP single-miss portions",
                    "paper: before-device -2.38 us, after-device "
                    "-6.16 us");

    double osdp_before = cyc_us(phases::exceptionEntry.cycles +
                                phases::vmaLookup.cycles +
                                phases::pageAlloc.cycles +
                                phases::ioSubmit.cycles);
    double osdp_after = cyc_us(phases::irqDeliver.cycles +
                               phases::ioComplete.cycles +
                               phases::wakeupSched.cycles +
                               phases::contextSwitch.cycles +
                               phases::metadataUpdate.cycles +
                               phases::pteUpdateReturn.cycles);

    core::Smu::Params sp;
    double hw_before = cyc_us(sp.requestRegWrites + sp.camLookup +
                              sp.pfnWrite) +
                       toMicroseconds(sp.nvme.cmdWrite +
                                      sp.nvme.doorbell);
    double hw_after = cyc_us(sp.ptUpdateCycles + sp.completionCycles +
                             sp.notifyCycles);

    Table a({"portion", "OSDP us", "HWDP us", "delta us",
             "paper delta"});
    a.addRow({"before device I/O", Table::num(osdp_before),
              Table::num(hw_before, 3),
              Table::num(osdp_before - hw_before), "-2.38 us"});
    a.addRow({"after device I/O", Table::num(osdp_after),
              Table::num(hw_after, 3),
              Table::num(osdp_after - hw_after), "-6.16 us"});
    a.print();

    metrics::banner("Figure 11(b): HWDP single-miss timeline");
    Table b({"step", "cost", "ns"});
    b.addRow({"MMU -> SMU register writes", "2 cycles",
              Table::num(cyc_us(2) * 1000.0)});
    b.addRow({"PMSHR CAM lookup", "5 cycles",
              Table::num(cyc_us(5) * 1000.0)});
    b.addRow({"free page fetch", "prefetched (hidden)", "0.00"});
    b.addRow({"PFN write to PMSHR", "1 cycle",
              Table::num(cyc_us(1) * 1000.0)});
    b.addRow({"NVMe command memory write", "77.16 ns", "77.16"});
    b.addRow({"SQ doorbell (PCIe write)", "1.60 ns", "1.60"});
    b.addRow({"device I/O (Z-SSD)", "10.9 us", "10900.00"});
    b.addRow({"PTE/PMD/PUD read+update", "97 cycles (3 LLC r+w)",
              Table::num(cyc_us(97) * 1000.0)});
    b.addRow({"completion unit", "2 cycles",
              Table::num(cyc_us(2) * 1000.0)});
    b.addRow({"notify MMU / resume walk", "2 cycles",
              Table::num(cyc_us(2) * 1000.0)});
    b.print();

    // Measured cross-check: mean hardware miss latency minus device
    // time should equal the sub-200ns hardware budget above.
    auto cfg = bench::paperConfig(system::PagingMode::hwdp);
    system::System sys(cfg);
    auto mf = sys.mapDataset("fio.dat", 32 * bench::defaultMemFrames);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 8000);
    sys.addThread(*wl, 0, *mf.as);
    sys.runUntilThreadsDone(seconds(60.0));

    double dev_us =
        toMicroseconds(ssd::profileByName("zssd").unloadedRead4k());
    double miss_us = sys.smu()->missLatencyUs().mean();
    std::printf("\nmeasured HWDP miss latency : %.2f us (device %.2f us "
                "-> hardware adds ~%.0f ns)\n",
                miss_us, dev_us, (miss_us - dev_us) * 1000.0);
    return 0;
}

/**
 * @file
 * Set-associative cache tag array with true-LRU replacement.
 *
 * Only tags are modelled (no data), which is all the paper's
 * microarchitectural-pollution analysis needs: the OS fault handler
 * evicts user-application lines, and the resulting extra user misses
 * show up as reduced user-level IPC (Figures 4 and 14).
 *
 * Layout: each way is a single 64-bit word packing the tag (upper
 * bits) with its LRU stamp (lower bits), so a set scan — the hottest
 * loop in the whole simulator; every compute-burst data reference and
 * kernel-pollution touch lands here — reads exactly one densely
 * packed stream of ways and a hit updates recency in the word it
 * already loaded. Splitting tags and stamps into parallel arrays
 * doubles the host cache lines touched per scan, which dominates the
 * simulator's wall clock on the LLC (whose metadata exceeds the host
 * L2). The stamp field is narrow, so stamps are renormalised to their
 * per-set LRU rank when the clock saturates; order — the only thing
 * LRU consults — is preserved exactly.
 *
 * Victim selection (the way with the smallest stamp; invalid ways
 * carry stamp 0 and therefore win) rides along with the hit scan so a
 * miss installs its line without a second pass over the set.
 */

#ifndef HWDP_MEM_CACHE_ARRAY_HH
#define HWDP_MEM_CACHE_ARRAY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace hwdp::mem {

class CacheArray
{
  public:
    /**
     * @param name       For diagnostics.
     * @param size_bytes Total capacity; must be assoc * n_sets * line.
     * @param assoc      Ways per set (at most 64).
     * @param line_bytes Line size (default 64 B).
     */
    CacheArray(std::string name, std::uint64_t size_bytes, unsigned assoc,
               unsigned line_bytes = 64);

    /**
     * Look up @p addr, allocating on miss.
     * @return true on hit.
     */
    bool
    access(std::uint64_t addr)
    {
        std::size_t base = (addr >> lineShiftBits & (sets - 1)) *
                           static_cast<std::size_t>(ways);
        std::uint64_t want = tagWord(addr);
        if (useClock == stampMask) [[unlikely]]
            renormalize();
        std::uint64_t clock = ++useClock;

        // Hit scan first, with no victim bookkeeping: a min-reduction
        // carried through the loop serialises it on the host, and the
        // common case (a hit) never needs one.
        const std::uint64_t tag_mask = ~stampMask;
        if (ways <= 8) {
            // Narrow set (one host line): scan branchless. An
            // early-exit loop mispredicts once per access because the
            // hit way is unpredictable; accumulating the hit way with
            // conditional moves costs a few ALU ops and no flush.
            std::uint64_t found = 0;
            unsigned hit_way = 0;
            for (unsigned w = 0; w < ways; ++w) {
                bool eq = (meta[base + w] & tag_mask) == want;
                found |= eq;
                hit_way = eq ? w : hit_way;
            }
            if (found) {
                meta[base + hit_way] = want | clock;
                ++hits;
                return true;
            }
        } else {
            // Wide set (several host lines, large array): the scan is
            // memory-latency-bound, so start the trailing lines'
            // fetches before walking the set in order.
            __builtin_prefetch(&meta[base + 8]);
            if (ways > 16)
                __builtin_prefetch(&meta[base + 16]);
            for (unsigned w = 0; w < ways; ++w) {
                std::uint64_t m = meta[base + w];
                if ((m & tag_mask) == want) {
                    meta[base + w] = want | clock;
                    ++hits;
                    return true;
                }
            }
        }

        // Miss: second pass (over the set just loaded into the host
        // cache) for the smallest stamp; invalid ways carry 0 and win.
        // Stamp and way index pack into one key (ways <= 64), turning
        // the argmin into plain min chains; two accumulators keep the
        // host's cmov latency off the critical path. Stamp ties can
        // only be invalid ways, which the way-index bits break toward
        // the first — matching the strict-min scan this replaces.
        std::uint64_t best = ~std::uint64_t(0);
        std::uint64_t alt = ~std::uint64_t(0);
        unsigned w = 0;
        for (; w + 1 < ways; w += 2) {
            std::uint64_t a = (meta[base + w] & stampMask) << 6 | w;
            std::uint64_t b =
                (meta[base + w + 1] & stampMask) << 6 | (w + 1);
            best = best < a ? best : a;
            alt = alt < b ? alt : b;
        }
        if (w < ways) {
            std::uint64_t a = (meta[base + w] & stampMask) << 6 | w;
            best = best < a ? best : a;
        }
        best = best < alt ? best : alt;
        if (best >> 6 == 0)
            ++nValid; // filling an invalid way
        meta[base + (best & 63)] = want | clock;
        ++misses;
        return false;
    }

    /** Look up without allocating or updating recency. */
    bool
    probe(std::uint64_t addr) const
    {
        std::size_t base = (addr >> lineShiftBits & (sets - 1)) *
                           static_cast<std::size_t>(ways);
        std::uint64_t want = tagWord(addr);
        for (unsigned w = 0; w < ways; ++w) {
            if ((meta[base + w] & ~stampMask) == want)
                return true;
        }
        return false;
    }

    /**
     * Hint the host to start fetching the set @p addr maps to. The
     * hierarchy issues this for the next level while it still scans
     * the current one, overlapping the model's serial level walk with
     * the host's memory latency. No simulated effect.
     */
    void
    prefetch(std::uint64_t addr) const
    {
        std::size_t base = (addr >> lineShiftBits & (sets - 1)) *
                           static_cast<std::size_t>(ways);
        __builtin_prefetch(&meta[base]);
        if (ways > 8)
            __builtin_prefetch(&meta[base + 8]);
        if (ways > 16)
            __builtin_prefetch(&meta[base + 16]);
    }

    /** Invalidate a single line if present; returns true if it was. */
    bool invalidate(std::uint64_t addr);

    /** Drop all contents (e.g. on simulated power events / tests). */
    void flush();

    /** Number of valid lines currently resident (O(1) live counter). */
    std::uint64_t occupancy() const { return nValid; }

    std::uint64_t sizeBytes() const { return bytes; }
    unsigned associativity() const { return ways; }
    unsigned numSets() const { return sets; }
    unsigned lineBytes() const { return line; }
    const std::string &name() const { return label; }

    std::uint64_t hitCount() const { return hits; }
    std::uint64_t missCount() const { return misses; }

  private:
    std::string label;
    std::uint64_t bytes;
    unsigned ways;
    unsigned line;
    unsigned sets;
    unsigned lineShiftBits;
    unsigned setBits;

    /**
     * Stamp field width = line-offset bits + set-index bits: exactly
     * the address bits the tag does not need, so tag | stamp always
     * fits one word with the tag exact. Stamps of valid ways are in
     * [1, stampMask); 0 is reserved for invalid ways (and makes the
     * all-zero word the invalid encoding), stampMask triggers
     * renormalisation before it is ever stored.
     */
    std::uint64_t stampMask;

    std::vector<std::uint64_t> meta; // sets * ways, row-major by set
    std::uint64_t useClock = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t nValid = 0;

    /**
     * Tag field for @p addr, positioned above the stamp. Stored with
     * +1 bias so no valid way ever encodes as zero: the tag field of
     * a real line is therefore never 0 and an invalid way (word 0)
     * can never false-hit address 0. The bias cannot overflow for any
     * modelled address (it would need the top line of the 64-bit
     * space, which nothing maps).
     */
    std::uint64_t
    tagWord(std::uint64_t addr) const
    {
        return ((addr >> (lineShiftBits + setBits)) + 1)
               << (lineShiftBits + setBits);
    }

    /**
     * Rewrite every stamp as its per-set LRU rank (1..ways), resetting
     * the clock. Order-preserving, so replacement behaviour is
     * bit-identical; runs once every ~2^stampBits accesses.
     */
    void renormalize();
};

} // namespace hwdp::mem

#endif // HWDP_MEM_CACHE_ARRAY_HH

/**
 * @file
 * Stress and failure-injection tests: adversarial event orderings,
 * heavy multi-threaded churn and boundary configurations that the
 * figure benches never hit.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "system/system.hh"
#include "workloads/fio.hh"
#include "workloads/ycsb.hh"

using namespace hwdp;

namespace {

system::MachineConfig
cfgFor(system::PagingMode mode)
{
    system::MachineConfig cfg;
    cfg.mode = mode;
    cfg.nLogical = 8;
    cfg.nPhysical = 4;
    cfg.memFrames = 4096;
    cfg.smu.freeQueueCapacity = 256;
    cfg.kpooldPeriod = milliseconds(1.0);
    cfg.kptedPeriod = milliseconds(2.0);
    return cfg;
}

} // namespace

TEST(Stress, EightThreadsOnTinyMemoryStayConsistent)
{
    // Heavy overcommit: 8 threads churning a dataset 8x memory on a
    // machine with aggressive kthread periods.
    system::System sys(cfgFor(system::PagingMode::hwdp));
    auto mf = sys.mapDataset("f", 32 * 1024);
    for (unsigned t = 0; t < 5; ++t) {
        auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma,
                                                            1500);
        sys.addThread(*wl, t, *mf.as);
    }
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(60.0)));

    // Frame conservation.
    auto &pm = sys.physMem();
    EXPECT_EQ(pm.allocatedFrames() + pm.freeFrames() + pm.reservedCount(),
              pm.totalFrames());
    // Every in-use frame is attributable: SMU queue, page cache,
    // LRU-pending (hardware-handled, not yet synced), or mapped.
    for (Pfn p = 0; p < sys.kernel().numFrames(); ++p) {
        auto &pg = sys.kernel().page(p);
        if (!pm.isAllocated(p))
            EXPECT_FALSE(pg.inUse) << p;
    }
}

TEST(Stress, MixedModeThreadsShareTheStore)
{
    // Readers and writers (YCSB-A) plus a pure reader (C) on one
    // store, exercising concurrent WAL traffic, eviction writeback
    // and PMSHR coalescing at once.
    system::System sys(cfgFor(system::PagingMode::hwdp));
    auto mf = sys.mapDataset("kv", 16 * 1024);
    auto *wal = sys.createFile("wal", 8 * 1024);
    struct Holder : workloads::Workload
    {
        std::unique_ptr<workloads::KvStore> s;
        workloads::Op next(sim::Rng &) override
        {
            return workloads::Op::makeDone();
        }
        const char *label() const override { return "h"; }
    };
    auto *h = sys.makeWorkload<Holder>();
    h->s = std::make_unique<workloads::KvStore>(mf.vma, wal, 16 * 1024);
    sys.addThread(*sys.makeWorkload<workloads::YcsbWorkload>('A', *h->s,
                                                             1200),
                  0, *mf.as);
    sys.addThread(*sys.makeWorkload<workloads::YcsbWorkload>('C', *h->s,
                                                             1200),
                  1, *mf.as);
    sys.addThread(*sys.makeWorkload<workloads::YcsbWorkload>('F', *h->s,
                                                             1200),
                  2, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(120.0)));
    EXPECT_EQ(sys.totalAppOps(), 3600u);
}

TEST(Stress, RepeatedMapUnmapCycles)
{
    system::System sys(cfgFor(system::PagingMode::hwdp));
    sys.start();

    struct Cycle : workloads::Workload
    {
        system::System &sys;
        os::AddressSpace *as;
        int round = 0;
        int touched = 0;
        os::Vma *vma = nullptr;
        explicit Cycle(system::System &s) : sys(s)
        {
            as = sys.kernel().createAddressSpace();
        }
        workloads::Op
        next(sim::Rng &) override
        {
            if (round >= 5)
                return workloads::Op::makeDone();
            if (!vma) {
                auto *file = sys.kernel().fs().lookup("cyc" +
                                                      std::to_string(
                                                          round));
                if (!file)
                    file = sys.createFile("cyc" + std::to_string(round),
                                          64);
                vma = sys.kernel().mmapFileSync(*as, *file, true);
                touched = 0;
            }
            if (touched < 16) {
                return workloads::Op::makeMem(
                    vma->start + (touched++) * pageSize, false, true);
            }
            // Unmap via an msync-like barrier op then recycle.
            workloads::Op op;
            op.kind = workloads::Op::Kind::msync;
            op.vma = vma;
            vma = nullptr;
            ++round;
            return op;
        }
        const char *label() const override { return "cycle"; }
    };
    auto *wl = sys.makeWorkload<Cycle>(sys);
    sys.addThread(*wl, 0, *wl->as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(60.0)));
    EXPECT_EQ(sys.totalAppOps(), 5u * 16u);
}

TEST(Stress, PmshrSaturationUnderBurst)
{
    // More concurrent faulters than PMSHR entries: the overflow
    // bounces to the OS but every access completes.
    auto cfg = cfgFor(system::PagingMode::hwdp);
    cfg.smu.pmshrEntries = 2;
    system::System sys(cfg);
    auto mf = sys.mapDataset("f", 8 * 1024);
    for (unsigned t = 0; t < 5; ++t) {
        auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma,
                                                            400);
        sys.addThread(*wl, t, *mf.as);
    }
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(60.0)));
    EXPECT_EQ(sys.totalAppOps(), 2000u);
    EXPECT_GT(sys.smu()->rejectedPmshrFull(), 0u);
    EXPECT_EQ(sys.kernel().smuFallbackFaults(),
              sys.smu()->rejectedPmshrFull() +
                  sys.smu()->rejectedQueueEmpty());
}

TEST(Stress, TinyFreeQueueStillMakesProgress)
{
    auto cfg = cfgFor(system::PagingMode::hwdp);
    cfg.smu.freeQueueCapacity = 1; // pathological
    system::System sys(cfg);
    auto mf = sys.mapDataset("f", 8 * 1024);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 300);
    sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(60.0)));
    EXPECT_EQ(sys.totalAppOps(), 300u);
}

TEST(Stress, SingleCoreMachineWorks)
{
    system::MachineConfig cfg;
    cfg.mode = system::PagingMode::hwdp;
    cfg.nLogical = 1;
    cfg.nPhysical = 1;
    cfg.memFrames = 2048;
    cfg.smu.freeQueueCapacity = 128;
    // Every kthread shares logical core 0 with the workload.
    system::System sys(cfg);
    auto mf = sys.mapDataset("f", 8 * 1024);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 300);
    sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(60.0)));
    EXPECT_EQ(sys.totalAppOps(), 300u);
}

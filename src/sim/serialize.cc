#include "sim/serialize.hh"

#include <sstream>

namespace hwdp::sim {

std::uint64_t
Serializer::hashName(const char *name)
{
    std::uint64_t h = 14695981039346656037ULL;
    for (const char *p = name; *p; ++p) {
        h ^= static_cast<std::uint8_t>(*p);
        h *= 1099511628211ULL;
    }
    return h;
}

void
Serializer::section(const char *name)
{
    std::uint64_t tag = hashName(name);
    std::uint64_t stored = tag;
    io(stored);
    if (loading() && stored != tag) {
        std::ostringstream os;
        os << "checkpoint section mismatch at offset "
           << (cursor - sizeof(std::uint64_t)) << ": expected '" << name
           << "' (tag 0x" << std::hex << tag << "), found tag 0x"
           << stored;
        throw SerializeError(os.str());
    }
}

void
Serializer::need(std::size_t n) const
{
    if (cursor + n > buf.size()) {
        std::ostringstream os;
        os << "checkpoint blob truncated: need " << n << " bytes at offset "
           << cursor << " of " << buf.size();
        throw SerializeError(os.str());
    }
}

void
Serializer::mismatch(const char *what) const
{
    std::ostringstream os;
    os << "checkpoint does not match this machine: '" << what
       << "' differs (restore targets must be booted with the identical "
          "recipe as the saved machine)";
    throw SerializeError(os.str());
}

} // namespace hwdp::sim

/**
 * @file
 * Tests for the two-level TLB.
 */

#include <gtest/gtest.h>

#include "cpu/tlb.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

using namespace hwdp;
using namespace hwdp::cpu;

TEST(Tlb, MissOnEmpty)
{
    Tlb tlb;
    auto r = tlb.lookup(0x1000);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, InsertThenL1Hit)
{
    Tlb tlb;
    tlb.insert(0x1000, 55);
    auto r = tlb.lookup(0x1234); // same page
    EXPECT_TRUE(r.hit);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.pfn, 55u);
}

TEST(Tlb, L2BacksUpL1Evictions)
{
    Tlb tlb(4, 64, 4); // tiny L1
    for (VAddr v = 0; v < 16; ++v)
        tlb.insert(v << pageShift, v + 100);
    // Entry 0 fell out of the 4-entry L1 but must hit in the L2 and
    // be promoted.
    auto r = tlb.lookup(0);
    EXPECT_TRUE(r.hit);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_EQ(r.pfn, 100u);
    auto r2 = tlb.lookup(0);
    EXPECT_TRUE(r2.l1Hit);
}

TEST(Tlb, InvalidateRemovesBothLevels)
{
    Tlb tlb;
    tlb.insert(0x5000, 9);
    tlb.invalidate(0x5000);
    EXPECT_FALSE(tlb.lookup(0x5000).hit);
}

TEST(Tlb, FlushClearsEverything)
{
    Tlb tlb;
    for (VAddr v = 0; v < 32; ++v)
        tlb.insert(v << pageShift, v);
    tlb.flush();
    for (VAddr v = 0; v < 32; ++v)
        EXPECT_FALSE(tlb.lookup(v << pageShift).hit);
}

TEST(Tlb, L1LruKeepsRecentlyUsed)
{
    Tlb tlb(2, 64, 4);
    tlb.insert(0x1000, 1);
    tlb.insert(0x2000, 2);
    tlb.lookup(0x1000);     // make 0x1000 MRU
    tlb.insert(0x3000, 3);  // evicts 0x2000 from L1
    EXPECT_TRUE(tlb.lookup(0x1000).l1Hit);
    EXPECT_FALSE(tlb.lookup(0x2000).l1Hit); // L2 hit at best
}

TEST(Tlb, UpdateExistingTranslation)
{
    Tlb tlb;
    tlb.insert(0x1000, 1);
    tlb.insert(0x1000, 2);
    EXPECT_EQ(tlb.lookup(0x1000).pfn, 2u);
}

TEST(Tlb, StatsCountMisses)
{
    Tlb tlb;
    tlb.lookup(0x1000);
    tlb.insert(0x1000, 1);
    tlb.lookup(0x1000);
    EXPECT_EQ(tlb.lookups(), 2u);
    EXPECT_EQ(tlb.misses(), 1u);
    EXPECT_EQ(tlb.l1Misses(), 1u);
}

TEST(Tlb, BadGeometryRejected)
{
    EXPECT_THROW(Tlb(0, 64, 4), FatalError);
    EXPECT_THROW(Tlb(4, 0, 4), FatalError);
    EXPECT_THROW(Tlb(4, 63, 4), FatalError); // not divisible by assoc
}

TEST(Tlb, CapacityBoundProperty)
{
    Tlb tlb(8, 32, 4);
    sim::Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        tlb.insert(rng.range(1 << 20) << pageShift, i);
    // No crash and lookups stay sane.
    int hits = 0;
    for (int i = 0; i < 1000; ++i)
        hits += tlb.lookup(rng.range(1 << 20) << pageShift).hit;
    EXPECT_LT(hits, 1000);
}

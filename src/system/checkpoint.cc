#include "system/checkpoint.hh"

#include <cstdio>
#include <fstream>

#include "sim/serialize.hh"
#include "system/system.hh"
#include "testing/logical_state.hh"

namespace hwdp::system {

namespace {

std::uint64_t
fnv1a(const void *data, std::size_t n, std::uint64_t h)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL;
    }
    return h;
}

} // namespace

std::uint64_t
Checkpoint::configHash(const MachineConfig &cfg)
{
    // describe() covers mode, topology, caches, memory, storage and
    // SMU geometry. Neutralise the host-only simThreads line (the
    // parallel mode is bit-identical, blobs are interchangeable) and
    // fold in the knobs describe() omits but a restore depends on.
    MachineConfig shape = cfg;
    shape.simThreads = 1;
    std::string d = shape.describe();
    std::uint64_t h = fnv1a(d.data(), d.size(), 14695981039346656037ULL);
    h = fnv1a(&shape.seed, sizeof(shape.seed), h);
    h = fnv1a(&shape.reservedFrames, sizeof(shape.reservedFrames), h);
    h = fnv1a(&shape.pwcEntries, sizeof(shape.pwcEntries), h);
    h = fnv1a(&shape.hwStallTimeout, sizeof(shape.hwStallTimeout), h);
    h = fnv1a(&shape.kpooldBatch, sizeof(shape.kpooldBatch), h);
    std::uint8_t pollution = shape.pollutionEnabled ? 1 : 0;
    h = fnv1a(&pollution, sizeof(pollution), h);
    return h;
}

std::vector<std::uint8_t>
Checkpoint::save(System &sys, CheckpointStats *st)
{
    sys.quiesce();

    sim::Serializer s = sim::Serializer::saver();
    std::uint32_t magic = magicWord;
    std::uint32_t version = formatVersion;
    std::uint64_t cfg_hash = configHash(sys.config());
    Tick tick = sys.now();
    s.io(magic);
    s.io(version);
    s.io(cfg_hash);
    s.io(tick);

    sys.serialize(s);

    std::uint64_t logical = testing::logicalStateHash(sys);
    s.io(logical);

    if (st) {
        st->blobBytes = s.blob().size();
        st->tick = tick;
        st->logicalHash = logical;
    }
    return s.takeBlob();
}

void
Checkpoint::restore(System &sys, const std::vector<std::uint8_t> &blob,
                    CheckpointStats *st)
{
    sim::Serializer s = sim::Serializer::loader(blob);

    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    std::uint64_t cfg_hash = 0;
    Tick tick = 0;
    s.io(magic);
    if (magic != magicWord)
        throw sim::SerializeError(
            "checkpoint: bad magic (not a checkpoint blob)");
    s.io(version);
    if (version != formatVersion)
        throw sim::SerializeError(
            "checkpoint: format version " + std::to_string(version) +
            " does not match this build's version " +
            std::to_string(formatVersion));
    s.io(cfg_hash);
    if (cfg_hash != configHash(sys.config()))
        throw sim::SerializeError(
            "checkpoint: blob was saved from a differently configured "
            "machine; restore targets must be booted with the saved "
            "machine's recipe");
    s.io(tick);

    sys.serialize(s);

    std::uint64_t logical = 0;
    s.io(logical);
    if (!s.exhausted())
        throw sim::SerializeError(
            "checkpoint: trailing bytes after the logical-state hash");
    std::uint64_t restored = testing::logicalStateHash(sys);
    if (restored != logical)
        throw sim::SerializeError(
            "checkpoint: restored machine's logical state diverges "
            "from the saved machine (walk hash mismatch)");

    sys.onRestored(blob.size());
    if (st) {
        st->blobBytes = blob.size();
        st->tick = tick;
        st->logicalHash = logical;
    }
}

void
Checkpoint::saveFile(System &sys, const std::string &path,
                     CheckpointStats *st)
{
    std::vector<std::uint8_t> blob = save(sys, st);
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f)
        throw sim::SerializeError(
            "checkpoint: cannot open '" + path + "' for writing");
    f.write(reinterpret_cast<const char *>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
    if (!f)
        throw sim::SerializeError(
            "checkpoint: short write to '" + path + "'");
}

bool
Checkpoint::restoreFile(System &sys, const std::string &path,
                        CheckpointStats *st)
{
    std::ifstream f(path, std::ios::binary | std::ios::ate);
    if (!f)
        return false;
    auto size = static_cast<std::size_t>(f.tellg());
    f.seekg(0);
    std::vector<std::uint8_t> blob(size);
    f.read(reinterpret_cast<char *>(blob.data()),
           static_cast<std::streamsize>(size));
    if (!f)
        throw sim::SerializeError(
            "checkpoint: short read from '" + path + "'");
    restore(sys, blob, st);
    return true;
}

} // namespace hwdp::system

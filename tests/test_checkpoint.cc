/**
 * @file
 * Machine checkpointing: a warmed machine saved, restored onto an
 * identically booted twin and continued must be indistinguishable —
 * byte-identical stats dumps and equal logical-state hashes versus
 * the straight run — for every paging mode, workload, host lane
 * count, clean and under an injected fault plan. Plus unit blob
 * round-trips for the leaf serializers and rejection of foreign,
 * stale-version and wrong-config blobs.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/serialize.hh"
#include "sim/stats.hh"
#include "system/checkpoint.hh"
#include "system/system.hh"
#include "testing/fault_plan.hh"
#include "testing/invariants.hh"
#include "testing/machine_differ.hh"
#include "workloads/fio.hh"
#include "workloads/kv_store.hh"
#include "workloads/ycsb.hh"

using namespace hwdp;
namespace ht = hwdp::testing;

namespace {

constexpr std::uint64_t warmOps = 900;
constexpr std::uint64_t measOps = 700;

struct Scenario
{
    system::PagingMode mode;
    char wl; // 'I' = FIO, 'A' = YCSB-A
    unsigned simThreads;
    double faultRate;
};

std::string
scenarioName(const Scenario &sc)
{
    std::ostringstream os;
    os << pagingModeName(sc.mode) << "/" << sc.wl << "/lanes"
       << sc.simThreads << "/rate" << sc.faultRate;
    return os.str();
}

system::MachineConfig
smallConfig(const Scenario &sc)
{
    system::MachineConfig cfg;
    cfg.mode = sc.mode;
    cfg.nLogical = 4;
    cfg.nPhysical = 2;
    cfg.memFrames = 32 * 1024;
    cfg.smu.freeQueueCapacity = 512;
    cfg.kpooldPeriod = milliseconds(1.0);
    cfg.kptedPeriod = milliseconds(4.0);
    cfg.simThreads = sc.simThreads;
    return cfg;
}

/**
 * One machine built by the scenario's boot recipe: config, dataset,
 * fault plan and the warm-up thread. Both the save side and the
 * restore side boot through this, as the checkpoint contract demands.
 */
struct Machine
{
    std::unique_ptr<system::System> sys;
    std::unique_ptr<ht::FaultPlan> plan;
    std::unique_ptr<workloads::KvStore> store;
    system::System::MappedFile mf;

    /** Add one more workload thread (the measurement phase). */
    void
    addThread(char wl, std::uint64_t ops)
    {
        workloads::Workload *w;
        if (wl == 'I')
            w = sys->makeWorkload<workloads::FioWorkload>(mf.vma, ops);
        else
            w = sys->makeWorkload<workloads::YcsbWorkload>('A', *store,
                                                           ops);
        sys->addThread(*w, 0, *mf.as);
    }
};

Machine
boot(const Scenario &sc)
{
    Machine m;
    m.sys = std::make_unique<system::System>(smallConfig(sc));
    m.plan = std::make_unique<ht::FaultPlan>("plan",
                                             m.sys->eventQueue(), 97);
    if (sc.wl == 'I') {
        m.mf = m.sys->mapDataset("f", 8 * 1024);
    } else {
        m.mf = m.sys->mapDataset("data", 16 * 1024);
        auto *wal = m.sys->createFile("wal", 8 * 1024);
        m.store = std::make_unique<workloads::KvStore>(m.mf.vma, wal,
                                                       16 * 1024);
    }
    m.addThread(sc.wl, warmOps);
    if (sc.faultRate > 0.0) {
        m.plan->attach(*m.sys);
        m.plan->armAllAtRate(sc.faultRate);
    }
    return m;
}

/** Measurement phase + end-state capture, shared by both paths. */
void
finish(Machine &m, const Scenario &sc, std::string &stats,
       std::uint64_t &hash)
{
    m.addThread(sc.wl, measOps);
    ASSERT_TRUE(m.sys->runUntilThreadsDone(seconds(30.0)));
    ht::quiesce(*m.sys);
    auto inv = ht::checkInvariants(*m.sys);
    EXPECT_TRUE(inv.empty()) << inv.front();
    std::ostringstream os;
    ht::dumpMachineStats(*m.sys, os);
    stats = os.str();
    hash = ht::snapshot(*m.sys, "end").stateHash;
}

/**
 * The round-trip property: warm, save, continue on the saved machine
 * (straight) and on a restored twin (forked); both measurement phases
 * must be byte-identical. The fault plan is a test-side attachment,
 * so its cursors ride in a side blob the same way a bench would
 * carry them.
 */
void
expectRoundTripIdentity(const Scenario &sc)
{
    SCOPED_TRACE(scenarioName(sc));

    // Straight path: warm, save, resume, measure.
    Machine a = boot(sc);
    ASSERT_TRUE(a.sys->runUntilThreadsDone(seconds(30.0)));
    system::CheckpointStats st;
    std::vector<std::uint8_t> blob = system::Checkpoint::save(*a.sys,
                                                              &st);
    EXPECT_EQ(st.blobBytes, blob.size());
    EXPECT_GT(blob.size(), 0u);
    sim::Serializer ps = sim::Serializer::saver();
    a.plan->serialize(ps);
    std::vector<std::uint8_t> planBlob = ps.takeBlob();
    a.sys->resumeKthreads();
    std::string statsA;
    std::uint64_t hashA = 0;
    finish(a, sc, statsA, hashA);

    // Forked path: boot the same recipe, restore, resume, measure.
    Machine b = boot(sc);
    system::CheckpointStats rst;
    system::Checkpoint::restore(*b.sys, blob, &rst);
    EXPECT_EQ(rst.tick, st.tick);
    EXPECT_EQ(rst.logicalHash, st.logicalHash);
    sim::Serializer pl = sim::Serializer::loader(planBlob);
    b.plan->serialize(pl);
    // A freshly restored machine must already satisfy every invariant
    // before it runs a single further event.
    auto inv0 = ht::checkInvariants(*b.sys);
    EXPECT_TRUE(inv0.empty()) << inv0.front();
    b.sys->resumeKthreads();
    EXPECT_EQ(b.sys->now(), st.tick);
    std::string statsB;
    std::uint64_t hashB = 0;
    finish(b, sc, statsB, hashB);

    EXPECT_EQ(hashA, hashB);
    EXPECT_EQ(statsA, statsB) << "stats dumps diverge for "
                              << scenarioName(sc);
}

} // namespace

TEST(Checkpoint, RoundTripIdentityAcrossModesWorkloadsAndLanes)
{
    for (auto mode : {system::PagingMode::osdp, system::PagingMode::hwdp,
                      system::PagingMode::swsmu}) {
        for (char wl : {'I', 'A'}) {
            for (unsigned lanes : {1u, 4u}) {
                expectRoundTripIdentity({mode, wl, lanes, 0.0});
            }
        }
    }
}

TEST(Checkpoint, RoundTripIdentityUnderOnePercentFaultPlan)
{
    for (auto mode : {system::PagingMode::osdp, system::PagingMode::hwdp,
                      system::PagingMode::swsmu}) {
        for (char wl : {'I', 'A'}) {
            for (unsigned lanes : {1u, 4u}) {
                expectRoundTripIdentity({mode, wl, lanes, 0.01});
            }
        }
    }
}

TEST(Checkpoint, BlobPortsAcrossSimThreadCounts)
{
    // Parallel mode is bit-identical, so a blob saved at one lane
    // count restores under another. Save at 1 lane, restore at 4.
    Scenario one{system::PagingMode::hwdp, 'I', 1, 0.0};
    Scenario four{system::PagingMode::hwdp, 'I', 4, 0.0};

    Machine a = boot(one);
    ASSERT_TRUE(a.sys->runUntilThreadsDone(seconds(30.0)));
    auto blob = system::Checkpoint::save(*a.sys);
    a.sys->resumeKthreads();
    std::string statsA;
    std::uint64_t hashA = 0;
    finish(a, one, statsA, hashA);

    Machine b = boot(four);
    system::Checkpoint::restore(*b.sys, blob);
    b.sys->resumeKthreads();
    std::string statsB;
    std::uint64_t hashB = 0;
    finish(b, four, statsB, hashB);

    EXPECT_EQ(hashA, hashB);
    EXPECT_EQ(statsA, statsB);
}

TEST(Checkpoint, SaveRefusesARunningMachine)
{
    Scenario sc{system::PagingMode::hwdp, 'I', 1, 0.0};
    Machine m = boot(sc);
    m.sys->runFor(microseconds(50.0));
    EXPECT_THROW(system::Checkpoint::save(*m.sys), sim::SerializeError);
}

TEST(Checkpoint, SaveRefusesANeverStartedMachine)
{
    Scenario sc{system::PagingMode::hwdp, 'I', 1, 0.0};
    Machine m = boot(sc);
    EXPECT_THROW(system::Checkpoint::save(*m.sys), sim::SerializeError);
}

TEST(Checkpoint, RejectsForeignStaleAndMisconfiguredBlobs)
{
    Scenario sc{system::PagingMode::hwdp, 'I', 1, 0.0};
    Machine a = boot(sc);
    ASSERT_TRUE(a.sys->runUntilThreadsDone(seconds(30.0)));
    auto blob = system::Checkpoint::save(*a.sys);

    // Bad magic: not a checkpoint blob at all.
    {
        auto bad = blob;
        bad[0] ^= 0xff;
        Machine b = boot(sc);
        try {
            system::Checkpoint::restore(*b.sys, bad);
            FAIL() << "foreign blob accepted";
        } catch (const sim::SerializeError &e) {
            EXPECT_NE(std::string(e.what()).find("magic"),
                      std::string::npos)
                << e.what();
        }
    }

    // Version mismatch: a blob from a different format generation.
    {
        auto bad = blob;
        bad[4] ^= 0x01; // version field follows the 4-byte magic
        Machine b = boot(sc);
        try {
            system::Checkpoint::restore(*b.sys, bad);
            FAIL() << "stale-version blob accepted";
        } catch (const sim::SerializeError &e) {
            EXPECT_NE(std::string(e.what()).find("version"),
                      std::string::npos)
                << e.what();
        }
    }

    // Config mismatch: restore target booted with a different shape.
    {
        Scenario other = sc;
        other.mode = system::PagingMode::swsmu;
        Machine b = boot(other);
        EXPECT_THROW(system::Checkpoint::restore(*b.sys, blob),
                     sim::SerializeError);
    }
}

TEST(Checkpoint, ConfigHashIgnoresSimThreadsOnly)
{
    system::MachineConfig base = smallConfig(
        {system::PagingMode::hwdp, 'I', 1, 0.0});
    system::MachineConfig lanes = base;
    lanes.simThreads = 4;
    EXPECT_EQ(system::Checkpoint::configHash(base),
              system::Checkpoint::configHash(lanes));

    system::MachineConfig seeded = base;
    seeded.seed += 1;
    EXPECT_NE(system::Checkpoint::configHash(base),
              system::Checkpoint::configHash(seeded));

    system::MachineConfig bigger = base;
    bigger.memFrames *= 2;
    EXPECT_NE(system::Checkpoint::configHash(base),
              system::Checkpoint::configHash(bigger));
}

TEST(Checkpoint, FileRoundTripAndMissingFileFallback)
{
    Scenario sc{system::PagingMode::osdp, 'I', 1, 0.0};
    Machine a = boot(sc);
    ASSERT_TRUE(a.sys->runUntilThreadsDone(seconds(30.0)));

    std::string path = ::testing::TempDir() + "hwdp_ckpt_test.ckpt";
    system::CheckpointStats st;
    system::Checkpoint::saveFile(*a.sys, path, &st);
    EXPECT_GT(st.blobBytes, 0u);

    Machine b = boot(sc);
    EXPECT_FALSE(system::Checkpoint::restoreFile(
        *b.sys, path + ".missing"));
    system::CheckpointStats rst;
    ASSERT_TRUE(system::Checkpoint::restoreFile(*b.sys, path, &rst));
    EXPECT_EQ(rst.tick, st.tick);
    EXPECT_EQ(rst.logicalHash, st.logicalHash);
    std::remove(path.c_str());
}

TEST(Checkpoint, DescribeCarriesProvenance)
{
    Scenario sc{system::PagingMode::hwdp, 'I', 1, 0.0};
    Machine a = boot(sc);
    EXPECT_NE(a.sys->describe().find("cold boot"), std::string::npos);
    ASSERT_TRUE(a.sys->runUntilThreadsDone(seconds(30.0)));
    auto blob = system::Checkpoint::save(*a.sys);

    Machine b = boot(sc);
    system::Checkpoint::restore(*b.sys, blob);
    std::string d = b.sys->describe();
    EXPECT_NE(d.find("restored at tick"), std::string::npos) << d;
    EXPECT_NE(d.find(std::to_string(blob.size()) + "-byte"),
              std::string::npos)
        << d;
}

// ---- Leaf blob round-trips ---------------------------------------------

TEST(CheckpointUnit, RngBlobRoundTrip)
{
    sim::Rng a(12345);
    for (int i = 0; i < 100; ++i)
        a.next();
    sim::Serializer s = sim::Serializer::saver();
    a.serialize(s);
    auto blob = s.takeBlob();

    sim::Rng b(999); // different state, fully overwritten by the load
    sim::Serializer l = sim::Serializer::loader(blob);
    b.serialize(l);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

namespace {

struct CountingEvent : sim::Event
{
    int fired = 0;
    void process() override { ++fired; }
};

} // namespace

TEST(CheckpointUnit, EventQueueBlobRoundTrip)
{
    sim::EventQueue a;
    CountingEvent ev;
    a.schedule(&ev, 100);
    a.run();
    a.schedule(&ev, 250);
    a.run();
    ASSERT_EQ(ev.fired, 2);
    ASSERT_EQ(a.now(), 250u);

    sim::Serializer s = sim::Serializer::saver();
    a.serialize(s);
    auto blob = s.takeBlob();

    sim::EventQueue b;
    sim::Serializer l = sim::Serializer::loader(blob);
    b.serialize(l);
    EXPECT_EQ(b.now(), a.now());

    // Same-tick ordering is by sequence number; a restored queue must
    // continue the saved sequence, so two queues that each schedule
    // the same next event process it at the same tick.
    CountingEvent e2;
    b.schedule(&e2, 300);
    b.run();
    EXPECT_EQ(e2.fired, 1);
    EXPECT_EQ(b.now(), 300u);
}

TEST(CheckpointUnit, EventQueueRefusesPendingEvents)
{
    sim::EventQueue a;
    CountingEvent ev;
    a.schedule(&ev, 100);
    sim::Serializer s = sim::Serializer::saver();
    EXPECT_THROW(a.serialize(s), sim::SerializeError);
    a.deschedule(&ev);
}

TEST(CheckpointUnit, StatGroupBlobRoundTrip)
{
    sim::StatGroup a("grp");
    auto &c = a.counter("hits", "hits counted");
    auto &m = a.mean("lat", "latency");
    c += 41;
    m.sample(2.5);
    m.sample(7.5);

    sim::Serializer s = sim::Serializer::saver();
    a.serialize(s);
    auto blob = s.takeBlob();

    sim::StatGroup b("grp");
    auto &c2 = b.counter("hits", "hits counted");
    b.mean("lat", "latency");
    sim::Serializer l = sim::Serializer::loader(blob);
    b.serialize(l);
    EXPECT_EQ(c2.value(), 41u);

    std::ostringstream da, db;
    a.dump(da);
    b.dump(db);
    EXPECT_EQ(da.str(), db.str());

    // A group whose stat roster changed must reject the old blob.
    sim::StatGroup c3("grp");
    c3.counter("misses", "renamed stat");
    c3.mean("lat", "latency");
    sim::Serializer l2 = sim::Serializer::loader(blob);
    EXPECT_THROW(c3.serialize(l2), sim::SerializeError);
}

#include "workloads/spec_like.hh"

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::workloads {

void
SpecLikeWorkload::serialize(sim::Serializer &s)
{
    s.section("speclike");
    s.check(unbounded, "spec unbounded flag");
    s.io(remaining);
}

const std::vector<std::string> &
SpecLikeWorkload::kernelNames()
{
    static const std::vector<std::string> names = {
        "mcf_like",       // pointer chasing, LLC-miss bound
        "lbm_like",       // streaming over a large grid
        "perlbench_like", // branchy interpreter
        "x264_like",      // dense compute, small working set
        "deepsjeng_like", // search: branchy + medium working set
        "leela_like",     // tree search, moderate everything
    };
    return names;
}

SpecLikeWorkload::SpecLikeWorkload(const std::string &kernel,
                                   std::uint64_t n_bursts)
    : name(kernel), remaining(n_bursts), unbounded(n_bursts == 0)
{
    spec.instructions = 2000;
    spec.textBase = 0x4300'0000ULL;

    if (kernel == "mcf_like") {
        spec.memRefFrac = 0.2;
        spec.branchFrac = 0.16;
        spec.hotBytes = 32 * 1024;
        spec.coldBytes = 64ULL * 1024 * 1024;
        spec.coldFrac = 0.35; // pointer chasing: LLC/DRAM bound
        spec.textBytes = 24 * 1024;
        spec.branchBias = 0.86;
        spec.staticBranches = 512;
        spec.mlp = 1.8;
    } else if (kernel == "lbm_like") {
        spec.memRefFrac = 0.2;
        spec.branchFrac = 0.05;
        spec.hotBytes = 32 * 1024;
        spec.coldBytes = 128ULL * 1024 * 1024;
        spec.coldFrac = 0.3; // streaming grid sweeps
        spec.textBytes = 12 * 1024;
        spec.branchBias = 0.97;
        spec.staticBranches = 32;
        spec.mlp = 10.0;
    } else if (kernel == "perlbench_like") {
        spec.memRefFrac = 0.12;
        spec.branchFrac = 0.23;
        spec.hotBytes = 32 * 1024;
        spec.coldBytes = 4 * 1024 * 1024;
        spec.coldFrac = 0.06;
        spec.textBytes = 160 * 1024;
        spec.branchBias = 0.88;
        spec.staticBranches = 4096;
        spec.mlp = 3.0;
    } else if (kernel == "x264_like") {
        spec.memRefFrac = 0.1;
        spec.branchFrac = 0.08;
        spec.hotBytes = 24 * 1024;
        spec.coldBytes = 256 * 1024;
        spec.coldFrac = 0.02;
        spec.textBytes = 64 * 1024;
        spec.branchBias = 0.94;
        spec.staticBranches = 256;
        spec.mlp = 4.0;
    } else if (kernel == "deepsjeng_like") {
        spec.memRefFrac = 0.12;
        spec.branchFrac = 0.2;
        spec.hotBytes = 32 * 1024;
        spec.coldBytes = 8ULL * 1024 * 1024;
        spec.coldFrac = 0.1;
        spec.textBytes = 96 * 1024;
        spec.branchBias = 0.87;
        spec.staticBranches = 2048;
        spec.mlp = 3.0;
    } else if (kernel == "leela_like") {
        spec.memRefFrac = 0.12;
        spec.branchFrac = 0.15;
        spec.hotBytes = 32 * 1024;
        spec.coldBytes = 2 * 1024 * 1024;
        spec.coldFrac = 0.07;
        spec.textBytes = 48 * 1024;
        spec.branchBias = 0.9;
        spec.staticBranches = 1024;
        spec.mlp = 3.0;
    } else {
        fatal("spec-like: unknown kernel '", kernel, "'");
    }

    // Each kernel gets a disjoint data region so co-runners do not
    // accidentally share cache lines.
    std::uint64_t h = 1469598103934665603ULL;
    for (char c : kernel)
        h = (h ^ static_cast<std::uint64_t>(c)) * 1099511628211ULL;
    spec.hotBase = 0x50'0000'0000ULL + ((h & 0xff) << 32);
}

Op
SpecLikeWorkload::next(sim::Rng &)
{
    if (!unbounded) {
        if (remaining == 0)
            return Op::makeDone();
        --remaining;
    }
    return Op::makeCompute(spec, true);
}

} // namespace hwdp::workloads

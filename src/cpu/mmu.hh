/**
 * @file
 * Memory management unit: TLB + walker + page-miss routing.
 *
 * The MMU performs every user memory access for one logical core:
 * TLB lookup, page-table walk on a miss, then — for a non-present
 * page — either the conventional exception (OSDP) or a page-miss
 * request to the SMU identified by the PTE's socket id (HWDP,
 * Section III). While the SMU works, the core's pipeline is stalled:
 * the thread keeps the logical core but consumes no issue slots,
 * which the scheduler's width-share model exposes to the SMT sibling.
 *
 * Access protocol (the zero-event fast path): access() attempts to
 * complete the access synchronously. A TLB hit or a walk that finds a
 * present PTE returns true with the access latency in the out
 * parameter — no event is posted and nothing is allocated; the caller
 * accrues the latency into its logical clock. Only a real page miss
 * engages the slow path: the access parks in a pooled PendingAccess
 * node (recycled through a free list) and the completion is delivered
 * through the AccessSink interface. Every slow-path continuation
 * captures exactly [this, pending] — two pointers, inside the
 * std::function small-object buffer — so retries no longer copy
 * allocation-heavy closure chains.
 */

#ifndef HWDP_CPU_MMU_HH
#define HWDP_CPU_MMU_HH

#include <functional>
#include <memory>
#include <vector>

#include "cpu/tlb.hh"
#include "cpu/walker.hh"
#include "os/kernel.hh"
#include "sim/sim_object.hh"

namespace hwdp::cpu {

/** A page-miss request handed to an SMU (Section III-C, Figure 7). */
struct PageMissRequest
{
    os::WalkRefs refs;       ///< PUD entry, PMD entry and PTE refs.
    unsigned sid = 0;
    unsigned dev = 0;
    Lba lba = 0;
    os::AddressSpace *as = nullptr;
    VAddr vaddr = 0;
    unsigned core = 0;       ///< Requesting logical core.

    /** Set for SMU-generated prefetch fills (no walker waits). */
    bool isPrefetch = false;

    /** Invoked with success=false when the SMU must bounce to the OS. */
    std::function<void(bool success)> done;
};

/** Implemented by core::Smu (and test fakes). */
class PageMissHandlerIface
{
  public:
    virtual ~PageMissHandlerIface() = default;
    virtual void handleMiss(PageMissRequest req) = 0;

    /**
     * Fast-path delivery: handle the miss inline at logical time
     * @p at (the tick the "mmu.smureq" event would have fired at),
     * provided the handler's timing gate allows. Returns true after
     * consuming @p req; false declines and leaves @p req intact — the
     * caller then posts the reference-path event. The default
     * declines always; simulated results are bit-identical whichever
     * path runs.
     */
    virtual bool
    handleMissAt(PageMissRequest &req, Tick at)
    {
        (void)req;
        (void)at;
        return false;
    }
};

/** Outcome summary delivered with the access completion. */
struct AccessInfo
{
    bool faulted = false;     ///< Any miss handling happened.
    bool hwHandled = false;   ///< Handled by the SMU without the OS.
    Tick latency = 0;         ///< Total access latency.
};

/**
 * Receiver of slow-path access completions. ThreadContext implements
 * this; the callback carries no owning state, so completing an access
 * allocates nothing.
 */
class AccessSink
{
  public:
    virtual void accessDone(const AccessInfo &info) = 0;

  protected:
    ~AccessSink() = default;
};

class Mmu : public sim::SimObject
{
  public:
    Mmu(std::string name, sim::EventQueue &eq, unsigned logical_core,
        mem::CacheHierarchy &caches, os::Kernel &kernel,
        Tick cycle_period, unsigned pwc_entries = 16);

    /**
     * Register the SMU responsible for socket @p sid (PTEs carry the
     * socket id of their home SMU).
     */
    void attachSmu(unsigned sid, PageMissHandlerIface *smu);

    /**
     * Long-latency remedy (Section V): when a hardware miss stalls
     * the pipeline longer than this, raise a timeout exception and
     * context-switch; the completion wakes the thread. 0 disables.
     */
    void setStallTimeout(Tick t) { stallTimeout = t; }
    Tick stallTimeoutTicks() const { return stallTimeout; }

    std::uint64_t stallTimeouts() const { return statTimeout.value(); }

    /**
     * NUMA wiring for data accesses: the core's socket, the frame
     * partition (frame -> home node), and the extra cycles an
     * LLC-missing access pays when the frame is on a remote node.
     * Forwards the walk-step model to the walker. Not called on
     * single-socket machines — the access path is then unchanged.
     */
    void
    setNuma(unsigned my_socket, const mem::PhysMem *frame_map,
            unsigned n_sockets, Cycles remote_extra)
    {
        mySocket = my_socket;
        numaPm = frame_map;
        numaRemoteExtra = remote_extra;
        walkUnit.setNuma(my_socket, n_sockets, remote_extra);
    }

    /** Data accesses that paid the remote-DRAM premium. */
    std::uint64_t remoteDramAccesses() const { return nRemoteDram; }

    /**
     * Perform a user memory access on behalf of thread @p t, issued
     * @p defer ticks into the caller's inline batch (logical issue
     * time = now() + defer).
     *
     * @return true when the access completed synchronously (TLB hit
     * or present PTE); @p out holds the access latency and the caller
     * accrues it. false when a page miss engaged the slow path: the
     * completion arrives later through @p sink (always from a posted
     * event, at real simulated time).
     */
    bool access(os::Thread &t, os::AddressSpace &as, VAddr vaddr,
                bool is_write, Tick defer, AccessSink &sink,
                AccessInfo &out);

    /**
     * Callback-style access (tests and non-batching callers): the
     * completion is always delivered through a posted event after the
     * access latency has elapsed.
     */
    void access(os::Thread &t, os::AddressSpace &as, VAddr vaddr,
                bool is_write, std::function<void(AccessInfo)> done);

    Tlb &tlb() { return tlbUnit; }
    Walker &walker() { return walkUnit; }

    std::uint64_t hwMisses() const { return statHwMiss.value(); }
    std::uint64_t osFaults() const { return statOsFault.value(); }
    std::uint64_t smuRejections() const { return statSmuReject.value(); }

    /**
     * Checkpoint the TLB, walker, pending-node pool bookkeeping and
     * counters. Every pool node must be idle (no access in flight).
     */
    void serialize(sim::Serializer &s);

  private:
    /**
     * One parked slow-path access. Nodes are pool-owned and recycled
     * through a free list; the generation counter lets the stall
     * timeout detect that its access already completed and the node
     * was reused.
     */
    struct Pending
    {
        os::Thread *t = nullptr;
        os::AddressSpace *as = nullptr;
        VAddr vaddr = 0;
        bool write = false;
        bool lastSuccess = false; ///< SMU verdict for a woken thread.
        bool completed = false;   ///< SMU replied (this engagement).
        bool switched = false;    ///< Stall timeout fired (ditto).
        unsigned attempts = 0;
        std::uint32_t gen = 0;
        Tick start = 0;           ///< Logical issue time.
        AccessInfo info;
        AccessSink *sink = nullptr;
        Pending *nextFree = nullptr;
    };

    unsigned core;
    unsigned physCore;
    mem::CacheHierarchy &caches;
    os::Kernel &kernel;
    Tick period;
    Tick stallTimeout = 0;

    unsigned mySocket = 0;
    const mem::PhysMem *numaPm = nullptr; ///< nullptr: single socket.
    Cycles numaRemoteExtra = 0;
    std::uint64_t nRemoteDram = 0; ///< Serialized only when NUMA is wired.
    Tlb tlbUnit;
    Walker walkUnit;
    std::vector<PageMissHandlerIface *> smus; // by socket id

    std::vector<std::unique_ptr<Pending>> pendingPool;
    Pending *pendingFree = nullptr;

    sim::Counter &statAccesses;
    sim::Counter &statHwMiss;
    sim::Counter &statOsFault;
    sim::Counter &statSmuReject;
    sim::Counter &statTimeout;

    Pending *acquirePending();
    void releasePending(Pending *p);

    /** Route a walk miss outcome (SMU request or OS exception). */
    void startMiss(Pending *p, const Walker::Outcome &out, Tick defer);

    /** Re-translate after miss handling; completes or re-misses. */
    void retry(Pending *p);

    /** Deliver the completion @p lat ticks from now and recycle @p p. */
    void complete(Pending *p, Tick lat, const char *ev_name);

    /** PageMissRequest::done target. */
    void missDone(Pending *p, bool success);
    void resumeMiss(Pending *p, bool success);
    void stallTimeoutFired(Pending *p, std::uint32_t gen, unsigned att);

    /** Data access through the hierarchy once translated. */
    Tick dataAccess(VAddr vaddr, Pfn pfn, bool is_write);
};

} // namespace hwdp::cpu

#endif // HWDP_CPU_MMU_HH

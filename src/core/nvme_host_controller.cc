#include "core/nvme_host_controller.hh"

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::core {

void
NvmeHostController::serialize(sim::Serializer &s)
{
    s.section("nvmehost");
    for (auto &d : descs) {
        s.check(d.valid, "descriptor valid");
        s.check(d.qid, "descriptor queue id");
    }
    stats().serialize(s);
}

NvmeHostController::NvmeHostController(std::string name,
                                       sim::EventQueue &eq,
                                       const Timing &timing)
    : sim::SimObject(std::move(name), eq), tm(timing),
      statIssued(stats().counter("reads_issued",
                                 "NVMe read commands issued")),
      statCompleted(stats().counter("completions_snooped",
                                    "CQ writes snooped and handled")),
      statErrors(stats().counter("error_completions",
                                 "snooped CQEs with error status"))
{
}

void
NvmeHostController::configureDevice(unsigned dev_id, ssd::SsdDevice *dev,
                                    std::uint16_t queue_depth)
{
    if (dev_id >= maxDevices)
        fatal("nvme host controller: device id ", dev_id,
              " exceeds the 3-bit field");
    if (descs[dev_id].valid)
        fatal("nvme host controller: device ", dev_id,
              " configured twice");

    // Isolated urgent-priority queue with interrupts disabled: the
    // completion unit snoops the CQ memory write instead (III-C).
    std::uint16_t qid =
        dev->createQueuePair(queue_depth, nvme::Priority::urgent, false);
    dev->setCompletionListener(
        qid, [this, dev_id](std::uint16_t,
                            const nvme::CompletionEntry &cqe) {
            onCqWrite(dev_id, cqe);
        });
    descs[dev_id] = Descriptor{true, dev, qid};
}

bool
NvmeHostController::deviceConfigured(unsigned dev_id) const
{
    return dev_id < maxDevices && descs[dev_id].valid;
}

void
NvmeHostController::issueRead(unsigned dev_id, Lba lba, PAddr dma_addr,
                              std::uint16_t tag,
                              std::function<void()> issued)
{
    issueReadAt(dev_id, lba, dma_addr, tag, std::move(issued), now());
}

void
NvmeHostController::issueReadAt(unsigned dev_id, Lba lba, PAddr dma_addr,
                                std::uint16_t tag,
                                std::function<void()> issued, Tick at)
{
    if (!deviceConfigured(dev_id))
        panic("nvme host controller: read on unconfigured device ",
              dev_id);
    Descriptor &d = descs[dev_id];

    nvme::SubmissionEntry sqe;
    sqe.opcode = nvme::Opcode::read;
    sqe.cid = tag; // PMSHR index rides in the command id
    sqe.prp1 = dma_addr;
    sqe.slba = lba;
    sqe.nlb = 0; // single 4 KB block: no PRP list needed

    if (!d.dev->queuePair(d.qid).pushSqe(sqe))
        panic("nvme host controller: SMU SQ full (depth should exceed "
              "PMSHR capacity)");
    ++statIssued;

    // Command write to memory, then the doorbell: the generator builds
    // the 64-byte command and writes it at SQ base + SQ tail, then
    // rings the SQ doorbell (Figure 11(b): 77.16 ns + 1.60 ns). When
    // the doorbell lands before the next scheduled event, nothing can
    // execute in between, so running it inline here is byte-identical
    // to the posted event firing there.
    Tick t_db = at + tm.cmdWrite + tm.doorbell;
    if (fastPath && t_db < eq.nextEventTick()) {
        ++nInlineDoorbells;
        d.dev->ringSqDoorbellAt(d.qid, t_db);
        if (issued)
            issued();
        return;
    }
    ++nEventDoorbells;
    eq.post(t_db,
            [this, dev_id, issued = std::move(issued)] {
                descs[dev_id].dev->ringSqDoorbell(descs[dev_id].qid);
                if (issued)
                    issued();
            },
            "nvme.doorbell");
}

void
NvmeHostController::onCqWrite(unsigned dev_id,
                              const nvme::CompletionEntry &cqe)
{
    // The completion unit saw the memory write at CQ base + CQ head:
    // run the completion protocol (advance CQ pointer, ring the CQ
    // doorbell, flip the phase register on wrap) and percolate upward.
    Descriptor &d = descs[dev_id];
    if (d.dev->queuePair(d.qid).cqHasWork())
        d.dev->queuePair(d.qid).popCqe();
    d.dev->ringCqDoorbell(d.qid);
    ++statCompleted;
    if (cqe.status != 0)
        ++statErrors;

    Tick t_c = now() + tm.completionCycles * tm.cyclePeriod;
    std::uint16_t tag = cqe.cid;
    std::uint16_t status = cqe.status;
    // Successful completions may percolate inline under the timing
    // gate; error completions always take the event (the handler's
    // bounce path runs kernel code that needs real event time).
    if (fastPath && status == 0 && onComplete &&
        t_c < eq.nextEventTick()) {
        ++nInlineCompletions;
        onComplete(tag, status, t_c);
        return;
    }
    ++nEventCompletions;
    eq.post(t_c,
            [this, tag, status, t_c] {
                if (onComplete)
                    onComplete(tag, status, t_c);
            },
            "nvme.complete");
}

} // namespace hwdp::core

/**
 * @file
 * Tests for the deterministic RNG and its distributions.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "sim/rng.hh"

using namespace hwdp;
using namespace hwdp::sim;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_EQ(same, 0);
}

TEST(Rng, UniformIsInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 100000; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, ChanceEdges)
{
    Rng r(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
        EXPECT_FALSE(r.chance(-1.0));
        EXPECT_TRUE(r.chance(2.0));
    }
}

TEST(Rng, BetweenIsInclusive)
{
    Rng r(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        auto v = r.between(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, BetweenInvertedPanics)
{
    Rng r(5);
    EXPECT_THROW(r.between(5, 3), PanicError);
}

TEST(Rng, RangeZeroPanics)
{
    Rng r(5);
    EXPECT_THROW(r.range(0), PanicError);
}

TEST(Rng, ExponentialMean)
{
    Rng r(17);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(4.0);
    EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, NormalMoments)
{
    Rng r(19);
    double sum = 0, sq = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double v = r.normal(10.0, 2.0);
        sum += v;
        sq += v * v;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ForkedStreamsAreIndependentish)
{
    Rng a(42);
    Rng b = a.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_EQ(same, 0);
}

class RngRangeBound : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngRangeBound, StaysBelowBound)
{
    Rng r(GetParam());
    std::uint64_t bound = GetParam();
    for (int i = 0; i < 5000; ++i)
        EXPECT_LT(r.range(bound), bound);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngRangeBound,
                         ::testing::Values(1, 2, 3, 7, 100, 1 << 20,
                                           (1ULL << 40) + 17));

/**
 * @file
 * Logical core: bundles the per-core translation machinery.
 *
 * A Core owns the MMU (TLB + walker + miss routing) for one logical
 * core and knows its SMT topology. Thread execution itself lives in
 * ThreadContext; scheduling in os::Scheduler. Keeping the core as an
 * explicit object gives the system builder one place to wire SMUs and
 * lets tests instantiate a single core in isolation.
 */

#ifndef HWDP_CPU_CORE_HH
#define HWDP_CPU_CORE_HH

#include <memory>

#include "cpu/mmu.hh"

namespace hwdp::cpu {

class Core
{
  public:
    Core(unsigned logical_id, sim::EventQueue &eq,
         mem::CacheHierarchy &caches, os::Kernel &kernel,
         Tick cycle_period, unsigned pwc_entries = 16);

    unsigned logicalId() const { return lid; }
    unsigned physicalId() const { return pid; }
    unsigned smtSibling() const { return sibling; }

    Mmu &mmu() { return *mmuUnit; }
    const Mmu &mmu() const { return *mmuUnit; }

    /** Wire a socket's SMU into this core's walker path. */
    void attachSmu(unsigned sid, PageMissHandlerIface *smu)
    {
        mmuUnit->attachSmu(sid, smu);
    }

  private:
    unsigned lid;
    unsigned pid;
    unsigned sibling;
    std::unique_ptr<Mmu> mmuUnit;
};

} // namespace hwdp::cpu

#endif // HWDP_CPU_CORE_HH

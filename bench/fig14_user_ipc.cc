/**
 * @file
 * Figure 14: YCSB-C with four threads — normalized throughput and
 * user-level IPC / microarchitectural events, OSDP vs HWDP.
 *
 * Paper: HWDP improves throughput (up to 27.3%) and user-level IPC by
 * 7.0%; user-level cache and branch-prediction miss events decrease
 * because OS intervention (99.9% of page faults replaced by hardware
 * handling) no longer pollutes the microarchitectural state.
 */

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.hh"

using namespace hwdp;
using metrics::Table;

namespace {

struct Run
{
    double opsPerSec, userIpc;
    double l1iMpki, l1dMpki, llcMpki, brMpki;
    double hwShare;
};

Run
runC(system::PagingMode mode)
{
    auto cfg = bench::paperConfig(mode);
    system::System sys(cfg);
    auto mf = sys.mapDataset("kv.dat", bench::defaultDatasetPages);
    auto *wal = sys.createFile("kv.wal", 64 * 1024);
    struct Holder : workloads::Workload
    {
        std::unique_ptr<workloads::KvStore> s;
        workloads::Op next(sim::Rng &) override
        {
            return workloads::Op::makeDone();
        }
        const char *label() const override { return "holder"; }
    };
    auto *h = sys.makeWorkload<Holder>();
    h->s = std::make_unique<workloads::KvStore>(
        mf.vma, wal, bench::defaultDatasetPages);
    for (unsigned t = 0; t < 4; ++t) {
        auto *wl =
            sys.makeWorkload<workloads::YcsbWorkload>('C', *h->s, 8000);
        sys.addThread(*wl, t, *mf.as);
    }
    sys.runUntilThreadsDone(seconds(120.0));

    Run r;
    r.opsPerSec = sys.throughputOpsPerSec();
    r.userIpc = sys.aggregateUserIpc();
    std::uint64_t instr = 0, faulted = 0, hw = 0;
    for (auto &tc : sys.threads()) {
        instr += tc->userInstructions();
        faulted += tc->faultedOps();
        hw += tc->hwHandledOps();
    }
    r.hwShare = faulted ? static_cast<double>(hw) /
                              static_cast<double>(faulted)
                        : 0.0;
    auto &mc = sys.caches().counters(ExecMode::user);
    double ki = static_cast<double>(instr) / 1000.0;
    r.l1iMpki = static_cast<double>(mc.l1iMisses) / ki;
    r.l1dMpki = static_cast<double>(mc.l1dMisses) / ki;
    r.llcMpki = static_cast<double>(mc.llcMisses) / ki;
    r.brMpki = static_cast<double>(sys.userBranchMispredicts()) / ki;
    return r;
}

} // namespace

int
main()
{
    metrics::banner("Figure 14: YCSB-C (4 threads) OSDP vs HWDP",
                    "paper: +27.3% throughput, +7.0% user IPC, fewer "
                    "user-level miss events");

    // The two configurations are independent machines: run them
    // through the sweep harness (parallel when the host allows).
    bench::SweepRunner runner;
    auto runs = runner.map<Run>(2, [](std::size_t i) {
        return runC(i ? system::PagingMode::hwdp
                      : system::PagingMode::osdp);
    });
    const Run &osdp = runs[0];
    const Run &hwdp = runs[1];

    Table t({"metric", "OSDP", "HWDP", "HWDP / OSDP", "paper"});
    t.addRow({"throughput (ops/s)", Table::num(osdp.opsPerSec, 0),
              Table::num(hwdp.opsPerSec, 0),
              Table::num(hwdp.opsPerSec / osdp.opsPerSec), "up to 1.27"});
    t.addRow({"user-level IPC", Table::num(osdp.userIpc),
              Table::num(hwdp.userIpc),
              Table::num(hwdp.userIpc / osdp.userIpc), "1.07"});
    t.addRow({"user L1I MPKI", Table::num(osdp.l1iMpki),
              Table::num(hwdp.l1iMpki),
              Table::num(hwdp.l1iMpki / std::max(osdp.l1iMpki, 1e-9)),
              "< 1"});
    t.addRow({"user L1D MPKI", Table::num(osdp.l1dMpki),
              Table::num(hwdp.l1dMpki),
              Table::num(hwdp.l1dMpki / std::max(osdp.l1dMpki, 1e-9)),
              "< 1"});
    t.addRow({"user LLC MPKI", Table::num(osdp.llcMpki),
              Table::num(hwdp.llcMpki),
              Table::num(hwdp.llcMpki / std::max(osdp.llcMpki, 1e-9)),
              "< 1"});
    t.addRow({"user branch MPKI", Table::num(osdp.brMpki),
              Table::num(hwdp.brMpki),
              Table::num(hwdp.brMpki / std::max(osdp.brMpki, 1e-9)),
              "< 1"});
    t.print();
    std::printf("\nHWDP handled %.1f%% of page misses in hardware "
                "(paper: 99.9%%)\n", hwdp.hwShare * 100.0);
    return 0;
}

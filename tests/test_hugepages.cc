/**
 * @file
 * Huge pages and contiguity-aware translation: PTE wide encodings,
 * page-table leaf operations, TLB reach, contiguous frame allocation,
 * whole-machine THP/NAPOT/coalesce runs with the wide invariants
 * audited, the pageMode=off bit-identity gate, cross-mode
 * user-visible-data equivalence, parallel-lane byte identity and
 * checkpoint round-trips with wide PTEs live.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/kcoalesced.hh"
#include "cpu/tlb.hh"
#include "mem/phys_mem.hh"
#include "os/page_table.hh"
#include "os/pte.hh"
#include "sim/event_queue.hh"
#include "sim/serialize.hh"
#include "system/checkpoint.hh"
#include "system/system.hh"
#include "testing/invariants.hh"
#include "testing/machine_differ.hh"
#include "workloads/fio.hh"
#include "workloads/kv_store.hh"
#include "workloads/ycsb.hh"

using namespace hwdp;
namespace ht = hwdp::testing;

// ---- PTE wide encodings -------------------------------------------------

TEST(HugePte, LeafEncodingRoundTrips)
{
    using namespace os::pte;
    Entry e = makeHugeLeaf(512, writableBit);
    EXPECT_TRUE(isPresent(e));
    EXPECT_TRUE(isHugeLeaf(e));
    EXPECT_EQ(pfnOf(e), 512u);
    EXPECT_EQ(reachOf(e), pmdLeafShift);
    EXPECT_FALSE(hasNapotBit(e));
}

TEST(HugePte, NapotStampRoundTrips)
{
    using namespace os::pte;
    Entry e = makePresent(48, writableBit);
    EXPECT_EQ(reachOf(e), 0u);
    e = setNapotBit(e);
    EXPECT_TRUE(hasNapotBit(e));
    EXPECT_EQ(reachOf(e), napotShift);
    EXPECT_FALSE(isHugeLeaf(e));
    e = clearNapotBit(e);
    EXPECT_FALSE(hasNapotBit(e));
    EXPECT_EQ(reachOf(e), 0u);
    // The stamp means nothing on a non-present entry.
    EXPECT_FALSE(hasNapotBit(setNapotBit(Entry(0))));
}

// ---- Page-table leaf operations -----------------------------------------

namespace {
constexpr VAddr hugeWin = 0x7f40'0000'0000ULL; // 2 MB aligned
}

TEST(HugePageTable, LeafSynthesizesPer4kReads)
{
    os::PageTable pt;
    pt.writeHugeLeaf(hugeWin,
                     os::pte::makeHugeLeaf(1024, os::pte::writableBit));
    for (std::uint64_t i : {std::uint64_t(0), std::uint64_t(1),
                            std::uint64_t(511)}) {
        os::pte::Entry e = pt.readPte(hugeWin + (i << pageShift));
        EXPECT_TRUE(os::pte::isPresent(e));
        EXPECT_TRUE(os::pte::isHugeLeaf(e));
        EXPECT_EQ(os::pte::pfnOf(e), 1024 + i);
    }
    // The next window is untouched.
    EXPECT_EQ(pt.readPte(hugeWin + (pmdLeafPages << pageShift)), 0u);
}

TEST(HugePageTable, SplitRevivesPer4kEntries)
{
    os::PageTable pt;
    pt.writeHugeLeaf(hugeWin,
                     os::pte::makeHugeLeaf(2048, os::pte::writableBit));
    pt.splitHugeLeaf(hugeWin);
    EXPECT_FALSE(pt.hugeLeafRef(hugeWin, false).valid() &&
                 os::pte::isHugeLeaf(
                     pt.hugeLeafRef(hugeWin, false).value()));
    for (std::uint64_t i = 0; i < pmdLeafPages; i += 37) {
        os::pte::Entry e = pt.readPte(hugeWin + (i << pageShift));
        EXPECT_TRUE(os::pte::isPresent(e));
        EXPECT_FALSE(os::pte::isHugeLeaf(e));
        EXPECT_EQ(os::pte::pfnOf(e), 2048 + i);
    }
}

TEST(HugePageTable, ForEachHugeLeafVisitsOnlyLeaves)
{
    os::PageTable pt;
    pt.writeHugeLeaf(hugeWin, os::pte::makeHugeLeaf(512, 0));
    // A plain 4 KB mapping two windows up must not be reported.
    pt.writePte(hugeWin + 2 * (pmdLeafPages << pageShift),
                os::pte::makePresent(7, 0));
    unsigned leaves = 0;
    VAddr seen = 0;
    pt.forEachHugeLeaf(hugeWin,
                       hugeWin + 4 * (pmdLeafPages << pageShift),
                       [&](VAddr va, os::EntryRef) {
                           ++leaves;
                           seen = va;
                       });
    EXPECT_EQ(leaves, 1u);
    EXPECT_EQ(seen, hugeWin);
}

// ---- TLB reach -----------------------------------------------------------

TEST(HugeTlb, WideEntryCoversItsWholeWindow)
{
    cpu::Tlb tlb(64, 1536, 8, 8, true);
    tlb.insert(hugeWin, 4096, pmdLeafShift);
    for (std::uint64_t i : {std::uint64_t(0), std::uint64_t(3),
                            std::uint64_t(511)}) {
        auto r = tlb.lookup(hugeWin + (i << pageShift) + 0x10);
        EXPECT_TRUE(r.hit);
        EXPECT_EQ(r.pfn, 4096 + i);
    }
    EXPECT_GT(tlb.wideHits(), 0u);
    // One entry past the window misses.
    EXPECT_FALSE(tlb.lookup(hugeWin + (pmdLeafPages << pageShift)).hit);
}

TEST(HugeTlb, NapotEntryHasSixteenPageReach)
{
    cpu::Tlb tlb(64, 1536, 8, 8, true);
    tlb.insert(hugeWin, 160, napotShift);
    EXPECT_TRUE(tlb.lookup(hugeWin + 15 * pageSize).hit);
    EXPECT_EQ(tlb.lookup(hugeWin + 15 * pageSize).pfn, 160u + 15u);
    EXPECT_FALSE(tlb.lookup(hugeWin + 16 * pageSize).hit);
}

TEST(HugeTlb, InvalidateRangeKillsLatchedVpnInsideIt)
{
    cpu::Tlb tlb(64, 1536, 8, 8, true);
    // Latch a plain 4 KB VPN in the middle of the window...
    tlb.insert(hugeWin + 5 * pageSize, 9001);
    ASSERT_TRUE(tlb.lookup(hugeWin + 5 * pageSize).hit);
    // ...then shoot down the whole 2 MB range (a promotion): the
    // latched 4 KB translation inside it must die with the arrays.
    tlb.invalidateRange(hugeWin, pmdLeafPages);
    EXPECT_FALSE(tlb.lookup(hugeWin + 5 * pageSize).hit);
}

TEST(HugeTlb, RangeShootdownRemovesWideEntry)
{
    cpu::Tlb tlb(64, 1536, 8, 8, true);
    tlb.insert(hugeWin, 4096, pmdLeafShift);
    ASSERT_TRUE(tlb.lookup(hugeWin + 7 * pageSize).hit);
    // A demotion invalidates the window; the wide entry must go even
    // though the invalidation starts mid-window.
    tlb.invalidateRange(hugeWin + 4 * pageSize, 1);
    EXPECT_FALSE(tlb.lookup(hugeWin + 7 * pageSize).hit);
}

// ---- Contiguous frame allocation ----------------------------------------

TEST(HugePhysMem, AllocContigReturnsAlignedRun)
{
    sim::EventQueue eq;
    mem::PhysMem pm(eq, 2048);
    Pfn head = pm.allocContig(0, 9);
    ASSERT_NE(head, mem::PhysMem::invalidPfn);
    EXPECT_EQ(head % pmdLeafPages, 0u);
    for (std::uint64_t i = 0; i < pmdLeafPages; ++i)
        EXPECT_TRUE(pm.isAllocated(head + i));
}

TEST(HugePhysMem, SingleFrameAllocSkipsClaimedRun)
{
    sim::EventQueue eq;
    mem::PhysMem pm(eq, 1024);
    Pfn head = pm.allocContig(0, 9);
    ASSERT_NE(head, mem::PhysMem::invalidPfn);
    // Every remaining single-frame allocation must skip the claimed
    // window (stale free-list entries are dropped lazily).
    for (int i = 0; i < 400; ++i) {
        Pfn f = pm.alloc();
        ASSERT_NE(f, mem::PhysMem::invalidPfn);
        EXPECT_TRUE(f < head || f >= head + pmdLeafPages);
    }
}

TEST(HugePhysMem, AllocContigFailsCleanlyWhenFragmented)
{
    sim::EventQueue eq;
    mem::PhysMem pm(eq, 1024);
    // Poke a hole in every aligned 512-frame window.
    std::vector<Pfn> singles;
    for (int i = 0; i < 1024; ++i)
        singles.push_back(pm.alloc());
    pm.free(singles[3]); // one free frame only
    EXPECT_EQ(pm.allocContig(0, 9), mem::PhysMem::invalidPfn);
    EXPECT_EQ(pm.alloc(), singles[3]);
}

// ---- Whole-machine runs --------------------------------------------------

namespace {

system::MachineConfig
pageModeConfig(system::PagingMode mode, PageMode pm,
               std::uint64_t mem_frames = 32 * 1024,
               unsigned sim_threads = 1)
{
    system::MachineConfig cfg;
    cfg.mode = mode;
    cfg.nLogical = 4;
    cfg.nPhysical = 2;
    cfg.memFrames = mem_frames;
    cfg.smu.freeQueueCapacity = 512;
    cfg.kpooldPeriod = milliseconds(1.0);
    cfg.kptedPeriod = milliseconds(4.0);
    cfg.pageMode = pm;
    cfg.simThreads = sim_threads;
    return cfg;
}

struct RunResult
{
    std::string stats;
    std::uint64_t stateHash = 0;
    ht::MachineState state;
};

/** Run FIO ('I') or YCSB-A ('A') to completion and capture the end. */
RunResult
runWorkload(const system::MachineConfig &cfg, char wl,
            bool sequential = false, std::uint64_t ops = 1500)
{
    system::System sys(cfg);
    std::unique_ptr<workloads::KvStore> store;
    if (wl == 'I') {
        auto mf = sys.mapDataset("f", 8 * 1024);
        auto *w = sys.makeWorkload<workloads::FioWorkload>(
            mf.vma, ops, 300, sequential);
        sys.addThread(*w, 0, *mf.as);
    } else {
        auto mf = sys.mapDataset("data", 16 * 1024);
        auto *wal = sys.createFile("wal", 8 * 1024);
        store = std::make_unique<workloads::KvStore>(mf.vma, wal,
                                                     16 * 1024);
        auto *w = sys.makeWorkload<workloads::YcsbWorkload>('A', *store,
                                                            ops);
        sys.addThread(*w, 0, *mf.as);
    }
    EXPECT_TRUE(sys.runUntilThreadsDone(seconds(30.0)));
    ht::quiesce(sys);
    auto inv = ht::checkInvariants(sys);
    EXPECT_TRUE(inv.empty()) << inv.front();

    RunResult r;
    std::ostringstream os;
    ht::dumpMachineStats(sys, os);
    r.stats = os.str();
    r.state = ht::snapshot(sys, system::pageModeName(cfg.pageMode));
    r.stateHash = r.state.stateHash;
    return r;
}

} // namespace

TEST(HugeMachine, ThpMachineAllocatesWideUnitsAndReclaimsThem)
{
    // Random FIO over a dataset twice the DRAM: THP fault allocation
    // fills memory with 2 MB units, then reclaim takes whole clean
    // units back. The wide-entry audits run inside checkInvariants.
    auto cfg = pageModeConfig(system::PagingMode::osdp, PageMode::thp,
                              8 * 1024);
    system::System sys(cfg);
    auto mf = sys.mapDataset("f", 16 * 1024);
    auto *w = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 2500);
    sys.addThread(*w, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(30.0)));

    EXPECT_GT(sys.kernel().thpFaults(), 0u);
    EXPECT_GT(sys.totalTlbWideHits(), 0u);
    EXPECT_GT(sys.kernel().hugeReclaims(), 0u);

    ht::quiesce(sys);
    auto inv = ht::checkInvariants(sys);
    EXPECT_TRUE(inv.empty()) << inv.front();
}

TEST(HugeMachine, NapotMachinePromotesDemandPagedRuns)
{
    // Sequential FIO on an hwdp machine: demand-paged 4 KB frames land
    // contiguously and complete 16-page windows get the NAPOT stamp at
    // install time — the SMU keeps its 4 KB fault granularity.
    auto cfg = pageModeConfig(system::PagingMode::hwdp, PageMode::napot);
    system::System sys(cfg);
    auto mf = sys.mapDataset("f", 16 * 1024);
    auto *w = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 2000,
                                                       300, true);
    sys.addThread(*w, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(30.0)));

    EXPECT_GT(sys.kernel().napotPromotions(), 0u);
    EXPECT_EQ(sys.kernel().thpFaults(), 0u); // napot mode: no 2 MB

    ht::quiesce(sys);
    auto inv = ht::checkInvariants(sys);
    EXPECT_TRUE(inv.empty()) << inv.front();
}

TEST(HugeMachine, CoalesceMachinePromotesInBackground)
{
    auto cfg = pageModeConfig(system::PagingMode::hwdp,
                              PageMode::coalesce);
    system::System sys(cfg);
    auto mf = sys.mapDataset("f", 16 * 1024);
    auto *w = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 2000,
                                                       300, true);
    sys.addThread(*w, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(30.0)));
    // Let the daemon finish its sweep of what the workload laid down.
    sys.runFor(milliseconds(40.0));

    ASSERT_NE(sys.kcoalesced(), nullptr);
    EXPECT_GT(sys.kcoalesced()->windowsScanned(), 0u);
    EXPECT_GT(sys.kcoalesced()->windowsPromoted(), 0u);
    EXPECT_EQ(sys.kcoalesced()->windowsPromoted(),
              sys.kernel().hugePromotions());

    ht::quiesce(sys);
    auto inv = ht::checkInvariants(sys);
    EXPECT_TRUE(inv.empty()) << inv.front();
}

TEST(HugeMachine, DescribePrintsPageModeOnlyWhenOn)
{
    auto off = pageModeConfig(system::PagingMode::hwdp, PageMode::off);
    EXPECT_EQ(off.describe().find("page mode"), std::string::npos);
    auto co = pageModeConfig(system::PagingMode::hwdp,
                             PageMode::coalesce);
    EXPECT_NE(co.describe().find("page mode"), std::string::npos);
    EXPECT_NE(co.describe().find("kcoalesced"), std::string::npos);
    // Distinct shapes bind to distinct checkpoint config hashes.
    EXPECT_NE(system::Checkpoint::configHash(off),
              system::Checkpoint::configHash(co));
}

// ---- pageMode=off bit identity ------------------------------------------

TEST(HugeIdentity, OffModeIsByteIdenticalToSeedConfig)
{
    // A config that never mentions pageMode and one that sets it to
    // off explicitly must be the same machine, byte for byte, on both
    // workloads.
    for (char wl : {'I', 'A'}) {
        SCOPED_TRACE(wl);
        auto seed = pageModeConfig(system::PagingMode::hwdp,
                                   PageMode::off);
        system::MachineConfig untouched = seed;
        auto a = runWorkload(seed, wl);
        auto b = runWorkload(untouched, wl);
        EXPECT_EQ(a.stats, b.stats);
        EXPECT_EQ(a.stateHash, b.stateHash);
        ASSERT_FALSE(a.stats.empty());
        // No translation-reach counters may leak into the off dump.
        EXPECT_EQ(a.stats.find("pagemode."), std::string::npos);
    }
}

// ---- Cross-mode user-visible data ---------------------------------------

TEST(HugeIdentity, UserDataMatchesOffAcrossModesAndWorkloads)
{
    for (auto paging :
         {system::PagingMode::osdp, system::PagingMode::hwdp,
          system::PagingMode::swsmu}) {
        for (char wl : {'I', 'A'}) {
            auto base = runWorkload(
                pageModeConfig(paging, PageMode::off), wl);
            for (auto pm : {PageMode::thp, PageMode::napot,
                            PageMode::coalesce}) {
                SCOPED_TRACE(std::string(pagingModeName(paging)) + "/" +
                             wl + "/" + system::pageModeName(pm));
                auto r = runWorkload(pageModeConfig(paging, pm), wl);
                ht::DiffOptions opt;
                opt.userDataOnly = true;
                auto d = ht::diff(r.state, base.state, opt);
                EXPECT_TRUE(d.equivalent) << d.report;
            }
        }
    }
}

TEST(HugeIdentity, ParallelLanesAreByteIdenticalWithWideEntries)
{
    for (char wl : {'I', 'A'}) {
        SCOPED_TRACE(wl);
        auto one = runWorkload(
            pageModeConfig(system::PagingMode::hwdp, PageMode::coalesce,
                           32 * 1024, 1),
            wl, true);
        auto four = runWorkload(
            pageModeConfig(system::PagingMode::hwdp, PageMode::coalesce,
                           32 * 1024, 4),
            wl, true);
        ASSERT_FALSE(one.stats.empty());
        EXPECT_EQ(one.stats, four.stats);
        EXPECT_EQ(one.stateHash, four.stateHash);
    }
}

// ---- Checkpoints with wide PTEs live ------------------------------------

TEST(HugeCheckpoint, RoundTripWithWidePtesLive)
{
    auto cfg = pageModeConfig(system::PagingMode::osdp, PageMode::thp);
    auto boot = [&] {
        auto sys = std::make_unique<system::System>(cfg);
        auto mf = sys->mapDataset("f", 8 * 1024);
        auto *w = sys->makeWorkload<workloads::FioWorkload>(mf.vma, 900);
        sys->addThread(*w, 0, *mf.as);
        return std::make_pair(std::move(sys), mf);
    };
    auto finish = [](system::System &sys,
                     system::System::MappedFile &mf) {
        auto *w = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 700);
        sys.addThread(*w, 0, *mf.as);
        EXPECT_TRUE(sys.runUntilThreadsDone(seconds(30.0)));
        ht::quiesce(sys);
        auto inv = ht::checkInvariants(sys);
        EXPECT_TRUE(inv.empty()) << inv.front();
        std::ostringstream os;
        ht::dumpMachineStats(sys, os);
        return os.str();
    };

    auto [a, mfa] = boot();
    ASSERT_TRUE(a->runUntilThreadsDone(seconds(30.0)));
    // Wide PTEs must actually be live in the blob for this to test
    // anything.
    ASSERT_GT(a->kernel().thpFaults(), 0u);
    auto blob = system::Checkpoint::save(*a);
    a->resumeKthreads();
    std::string statsA = finish(*a, mfa);

    auto [b, mfb] = boot();
    system::Checkpoint::restore(*b, blob);
    auto inv0 = ht::checkInvariants(*b);
    EXPECT_TRUE(inv0.empty()) << inv0.front();
    EXPECT_GT(b->kernel().thpFaults(), 0u);
    b->resumeKthreads();
    std::string statsB = finish(*b, mfb);

    ASSERT_FALSE(statsA.empty());
    EXPECT_EQ(statsA, statsB);
}

TEST(HugeCheckpoint, RejectsVersionOneBlob)
{
    auto cfg = pageModeConfig(system::PagingMode::hwdp, PageMode::off);
    system::System a(cfg);
    auto mf = a.mapDataset("f", 4 * 1024);
    auto *w = a.makeWorkload<workloads::FioWorkload>(mf.vma, 300);
    a.addThread(*w, 0, *mf.as);
    ASSERT_TRUE(a.runUntilThreadsDone(seconds(30.0)));
    auto blob = system::Checkpoint::save(a);

    // Rewrite the header's version word to the pre-huge-page format.
    ASSERT_GE(blob.size(), 8u);
    blob[4] = 1;
    blob[5] = blob[6] = blob[7] = 0;

    system::System b(cfg);
    b.mapDataset("f", 4 * 1024);
    try {
        system::Checkpoint::restore(b, blob);
        FAIL() << "version-1 blob accepted";
    } catch (const sim::SerializeError &e) {
        EXPECT_NE(std::string(e.what()).find("version"),
                  std::string::npos)
            << e.what();
    }
}

/**
 * @file
 * Unit tests for the statistics framework.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace hwdp;
using namespace hwdp::sim;

TEST(Stats, CounterBasics)
{
    StatGroup g("g");
    Counter &c = g.counter("c", "a counter");
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, MeanTracksMinMax)
{
    StatGroup g("g");
    Mean &m = g.mean("m", "a mean");
    m.sample(10.0);
    m.sample(20.0);
    m.sample(-6.0);
    EXPECT_DOUBLE_EQ(m.mean(), 8.0);
    EXPECT_DOUBLE_EQ(m.minValue(), -6.0);
    EXPECT_DOUBLE_EQ(m.maxValue(), 20.0);
    EXPECT_EQ(m.count(), 3u);
}

TEST(Stats, EmptyMeanIsZero)
{
    StatGroup g("g");
    Mean &m = g.mean("m", "d");
    EXPECT_DOUBLE_EQ(m.mean(), 0.0);
    EXPECT_DOUBLE_EQ(m.minValue(), 0.0);
}

TEST(Stats, HistogramMeanIsExact)
{
    StatGroup g("g");
    Histogram &h = g.histogram("h", "d", 1.0, 100);
    for (int i = 1; i <= 9; ++i)
        h.sample(i);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
    EXPECT_EQ(h.count(), 9u);
}

TEST(Stats, HistogramQuantiles)
{
    StatGroup g("g");
    Histogram &h = g.histogram("h", "d", 1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(i + 0.5);
    // Median should land near 50, p99 near 99.
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
    EXPECT_NEAR(h.quantile(0.0), 0.5, 1.0);
}

TEST(Stats, HistogramOverflowBucket)
{
    StatGroup g("g");
    Histogram &h = g.histogram("h", "d", 1.0, 10);
    h.sample(1e9); // lands in the overflow bucket, not UB
    EXPECT_EQ(h.count(), 1u);
    EXPECT_GE(h.quantile(0.5), 10.0);
}

TEST(Stats, HistogramDegenerateGeometryPanics)
{
    StatGroup g("g");
    EXPECT_THROW(g.histogram("h", "d", 0.0, 10), PanicError);
    EXPECT_THROW(g.histogram("h2", "d", 1.0, 0), PanicError);
}

TEST(Stats, GroupFindAndDump)
{
    StatGroup g("grp");
    g.counter("a", "first");
    g.mean("b", "second");
    EXPECT_NE(g.find("a"), nullptr);
    EXPECT_NE(g.find("b"), nullptr);
    EXPECT_EQ(g.find("zzz"), nullptr);

    std::ostringstream os;
    g.dump(os);
    std::string s = os.str();
    EXPECT_NE(s.find("grp.a"), std::string::npos);
    EXPECT_NE(s.find("first"), std::string::npos);
}

TEST(Stats, GroupResetAll)
{
    StatGroup g("g");
    Counter &c = g.counter("c", "d");
    Mean &m = g.mean("m", "d");
    c += 5;
    m.sample(1.0);
    g.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(m.count(), 0u);
}

TEST(Stats, HistogramReset)
{
    StatGroup g("g");
    Histogram &h = g.histogram("h", "d", 1.0, 10);
    h.sample(3.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

/**
 * @file
 * Figure 12: demand paging performance (FIO 4 KB mmap read latency)
 * with 1/2/4/8 threads, OSDP vs HWDP.
 *
 * Paper: HWDP reduces the latency by up to 37.0% at one thread,
 * narrowing to 27.0% at eight threads (all physical cores busy,
 * device queueing grows the common base).
 *
 * Each point carries a warm-up prefix (page tables, free page queue
 * and kpoold in steady state) ahead of the measured cold-miss phase;
 * the dataset stays 32x memory so the measured reads themselves miss.
 * The warm phase runs through the warm-fork protocol (bench_common.hh)
 * so repeated invocations restore the per-(mode, threads) family blob
 * instead of re-simulating the warm-up: --warm-ops=N,
 * --checkpoint-dir=PATH (HWDP_WARM_OPS / HWDP_CHECKPOINT_DIR).
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace hwdp;
using metrics::Table;

int
main(int argc, char **argv)
{
    metrics::banner("Figure 12: FIO 4KB mmap read latency vs threads",
                    "paper: HWDP -37.0% @1 thread ... -27.0% @8 threads");

    bench::WarmFork wf = bench::parseWarmFork(argc, argv, 3000);

    Table t({"threads", "OSDP us", "HWDP us", "reduction",
             "paper reduction"});
    const char *paper[] = {"37.0%", "~34%", "~30%", "27.0%"};
    int pi = 0;
    std::vector<metrics::CheckpointRow> ckpt;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        metrics::CheckpointRow orow, hrow;
        auto osdp = bench::runFioWarm(
            bench::paperConfig(system::PagingMode::osdp), threads, 12000,
            wf, "fio osdp", 32 * bench::defaultMemFrames, &orow);
        auto hwdp = bench::runFioWarm(
            bench::paperConfig(system::PagingMode::hwdp), threads, 12000,
            wf, "fio hwdp", 32 * bench::defaultMemFrames, &hrow);
        if (!orow.op.empty())
            ckpt.push_back(orow);
        if (!hrow.op.empty())
            ckpt.push_back(hrow);
        double red = 1.0 - hwdp.meanLatencyUs / osdp.meanLatencyUs;
        t.addRow({std::to_string(threads), Table::num(osdp.meanLatencyUs),
                  Table::num(hwdp.meanLatencyUs), Table::pct(red),
                  paper[pi++]});
    }
    t.print();
    if (!ckpt.empty()) {
        std::printf("\n");
        metrics::checkpointTable(ckpt).print();
    }
    return 0;
}

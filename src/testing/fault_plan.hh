/**
 * @file
 * Deterministic, schedule-stable fault injection.
 *
 * A FaultPlan is a seeded set of injection sites threaded through the
 * machine: NVMe error completions, latency spikes, channel stalls and
 * dropped doorbells on the SSD; forced dry spells on the free page
 * queues; forced-full windows on the PMSHR. Each site draws from its
 * own forked RNG stream, so whether the i-th *query* of a site
 * injects depends only on (seed, site, i) — never on wall order
 * across sites — which is what makes runs replayable: the same seed
 * and plan against the same workload produce the identical event
 * schedule, including the injections.
 *
 * The plan implements ssd::IoFaultInjector and installs plain
 * std::function hooks on FreePageQueue/Pmshr, so the component models
 * carry no dependency on this library.
 */

#ifndef HWDP_TESTING_FAULT_PLAN_HH
#define HWDP_TESTING_FAULT_PLAN_HH

#include <array>
#include <cstdint>
#include <vector>

#include "core/free_page_queue.hh"
#include "core/pmshr.hh"
#include "sim/rng.hh"
#include "sim/sim_object.hh"
#include "ssd/ssd_device.hh"

namespace hwdp::system {
class System;
}

namespace hwdp::testing {

enum class FaultSite : unsigned {
    ssdReadError = 0,   ///< NVMe error status on a completion.
    ssdLatencySpike,    ///< Extra delay before the CQ write.
    ssdChannelStall,    ///< The command's channel stalls first.
    ssdDroppedDoorbell, ///< Doorbell noticed late by the device.
    fpqDry,             ///< Free page queue pop behaves empty.
    pmshrFull,          ///< PMSHR allocate behaves full.
    // NUMA sites (appended: earlier sites keep their fork streams).
    remoteFpqDry,       ///< Dry spell on a remote socket's FPQ.
    shootdownDrop,      ///< Cross-socket sync shootdown dropped.
    shootdownDelay,     ///< Cross-socket sync shootdown deferred.
    remotePmshrFull,    ///< Forced-full window on a remote PMSHR.
    // Translation-reach sites (appended: earlier sites keep their
    // fork streams, so pre-huge-page plans replay unchanged).
    hugeCoalesceAbort,  ///< kcoalesced skips a promotable window.
    hugeSplitStorm,     ///< Reclaim splits a clean huge unit.
    staleWideTlb,       ///< Promotion/split shootdown deferred.
};
inline constexpr unsigned numFaultSites = 13;

const char *faultSiteName(FaultSite s);

/** Per-site tuning; rate 0 disables even when armed. */
struct SiteConfig
{
    /** Injection probability per query of the site. */
    double rate = 0.0;

    /** Stop injecting after this many hits (cap for directed tests). */
    std::uint64_t maxInjections = ~std::uint64_t(0);

    /**
     * NVMe status injected by ssdReadError. Default 0x0281: DNR clear,
     * media-and-data-integrity unrecovered read error (SCT 2, SC 0x81)
     * — the transient flavour a retry can clear.
     */
    std::uint16_t errorStatus = 0x0281;

    Tick latencySpike = microseconds(50.0);
    Tick channelStall = microseconds(20.0);
    Tick doorbellDelay = microseconds(5.0);

    /** Deferral applied when shootdownDelay hits. */
    Tick shootdownDeferral = microseconds(2.0);

    /** Deferral applied when staleWideTlb hits. */
    Tick wideShootdownDeferral = microseconds(5.0);
};

class FaultPlan : public sim::SimObject, public ssd::IoFaultInjector
{
  public:
    FaultPlan(std::string name, sim::EventQueue &eq, std::uint64_t seed);

    // ---- Configuration -------------------------------------------------
    SiteConfig &site(FaultSite s) { return states[idx(s)].cfg; }

    void arm(FaultSite s) { states[idx(s)].armed = true; }
    void disarm(FaultSite s) { states[idx(s)].armed = false; }
    void armAll();
    void disarmAll();
    bool armed(FaultSite s) const { return states[idx(s)].armed; }

    /** Arm every SSD-facing site + queue sites at a uniform rate. */
    void armAllAtRate(double rate);

    // ---- Wiring ---------------------------------------------------------
    /**
     * Attach to everything relevant in @p sys for its paging mode:
     * every SSD, every free page queue, and the PMSHR when present.
     * Multi-socket machines route sockets 1+ through the remote-site
     * variants (remoteFpqDry / remotePmshrFull) and install the
     * cross-socket shootdown fault hook.
     */
    void attach(system::System &sys);

    void attachSsd(ssd::SsdDevice &dev);
    void attachFpq(core::FreePageQueue &q, bool remote_socket = false);
    void attachPmshr(core::Pmshr &p, bool remote_socket = false);

    // ---- ssd::IoFaultInjector -------------------------------------------
    ssd::IoFaultDecision onCommand(const nvme::SubmissionEntry &sqe,
                                   std::uint16_t qid) override;
    Tick doorbellDropDelay(std::uint16_t qid) override;

    // ---- Introspection ---------------------------------------------------
    std::uint64_t injections(FaultSite s) const
    {
        return states[idx(s)].injected->value();
    }
    std::uint64_t queries(FaultSite s) const
    {
        return states[idx(s)].nQueries;
    }
    std::uint64_t totalInjections() const;

    /** One record per injection, in injection order (replay checks). */
    struct LogEntry
    {
        FaultSite site;
        Tick tick;
        std::uint64_t querySeq; ///< The site's query index that hit.
    };
    const std::vector<LogEntry> &log() const { return injectionLog; }

    /**
     * Checkpoint the per-site RNG streams, query cursors and the
     * injection log, so a forked run injects at exactly the same
     * future queries a straight run would.
     */
    void serialize(sim::Serializer &s);

  private:
    struct SiteState
    {
        SiteConfig cfg;
        bool armed = false;
        sim::Rng rng{0};
        std::uint64_t nQueries = 0;
        sim::Counter *injected = nullptr;
    };

    static unsigned idx(FaultSite s) { return static_cast<unsigned>(s); }

    /** One query of @p s: roll the site's stream, log on a hit. */
    bool decide(FaultSite s);

    std::array<SiteState, numFaultSites> states;
    std::vector<LogEntry> injectionLog;
};

} // namespace hwdp::testing

#endif // HWDP_TESTING_FAULT_PLAN_HH

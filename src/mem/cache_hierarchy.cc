#include "mem/cache_hierarchy.hh"

#include "sim/logging.hh"

namespace hwdp::mem {

CacheHierarchy::CacheHierarchy(unsigned n_cores, const CacheParams &params)
    : prm(params), llc("llc", params.llcBytes, params.llcAssoc)
{
    if (n_cores == 0)
        fatal("cache hierarchy: need at least one core");
    l1i.reserve(n_cores);
    l1d.reserve(n_cores);
    l2.reserve(n_cores);
    for (unsigned c = 0; c < n_cores; ++c) {
        l1i.emplace_back("l1i" + std::to_string(c), prm.l1iBytes,
                         prm.l1iAssoc);
        l1d.emplace_back("l1d" + std::to_string(c), prm.l1dBytes,
                         prm.l1dAssoc);
        l2.emplace_back("l2_" + std::to_string(c), prm.l2Bytes,
                        prm.l2Assoc);
    }
}

void
CacheHierarchy::badCore(unsigned core) const
{
    panic("cache hierarchy: core ", core, " out of range");
}

void
CacheHierarchy::resetCounters()
{
    modeCtrs[0] = ModeCounters{};
    modeCtrs[1] = ModeCounters{};
}

} // namespace hwdp::mem

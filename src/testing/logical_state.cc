#include "testing/logical_state.hh"

#include <sstream>

#include "os/file_system.hh"
#include "os/kernel.hh"
#include "os/page_table.hh"
#include "os/pte.hh"
#include "system/system.hh"

namespace hwdp::testing {

bool
PageState::operator==(const PageState &o) const
{
    return resident == o.resident && fileBacked == o.fileBacked &&
           fileId == o.fileId && fileIndex == o.fileIndex &&
           dirty == o.dirty && synced == o.synced && rmapOk == o.rmapOk &&
           lruLinked == o.lruLinked && inPageCache == o.inPageCache;
}

std::uint64_t
packFlags(const PageState &ps)
{
    return (std::uint64_t(ps.resident) << 0) |
           (std::uint64_t(ps.fileBacked) << 1) |
           (std::uint64_t(ps.dirty) << 2) |
           (std::uint64_t(ps.synced) << 3) |
           (std::uint64_t(ps.rmapOk) << 4) |
           (std::uint64_t(ps.lruLinked) << 5) |
           (std::uint64_t(ps.inPageCache) << 6);
}

std::string
describePageState(const PageState &ps)
{
    std::ostringstream os;
    if (!ps.resident) {
        os << "non-resident";
    } else {
        os << "resident";
        os << (ps.synced ? " synced" : " UNSYNCED");
        if (ps.dirty)
            os << " dirty";
        os << (ps.rmapOk ? " rmap-ok" : " rmap-BROKEN");
        if (ps.lruLinked)
            os << " lru";
        if (ps.inPageCache)
            os << " pagecache";
    }
    if (ps.fileBacked)
        os << " file=" << ps.fileId << ":" << ps.fileIndex;
    else
        os << " anon:" << ps.fileIndex;
    return os.str();
}

namespace {

inline void
fold(std::uint64_t &h, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 1099511628211ULL;
    }
}

/**
 * The one walk. @p keep_pages false computes only the hash (the
 * checkpoint footer) without materialising the page records.
 */
MachineState
walk(system::System &sys, const std::string &label, bool keep_pages)
{
    using namespace os::pte;

    MachineState ms;
    ms.label = label;
    ms.stateHash = 14695981039346656037ULL;

    os::Kernel &kern = sys.kernel();
    for (const auto &as : kern.addressSpaces()) {
        AsState ast;
        ast.asid = as->id();
        for (const auto &vma : as->vmas()) {
            VmaState vs;
            vs.start = vma->start;
            vs.end = vma->end;
            vs.anon = vma->file == nullptr;
            if (keep_pages)
                vs.pages.reserve(vma->numPages());
            for (std::uint64_t i = 0; i < vma->numPages(); ++i) {
                VAddr va = vma->start + (i << pageShift);
                Entry e = as->pageTable().readPte(va);

                PageState ps;
                ps.fileBacked = vma->file != nullptr;
                ps.fileId = vma->file ? vma->file->id() : 0;
                ps.fileIndex =
                    vma->file ? vma->fileIndexOf(va) : i;
                if (isPresent(e)) {
                    ps.resident = true;
                    ps.synced = !hasLbaBit(e);
                    const os::Page &pg = kern.page(pfnOf(e));
                    ps.dirty = pg.dirty || isDirty(e);
                    ps.rmapOk =
                        pg.as == as.get() && pg.vaddr == va;
                    ps.lruLinked = pg.lruLinked;
                    ps.inPageCache = pg.inPageCache;
                }
                fold(ms.stateHash, ast.asid);
                fold(ms.stateHash, ps.fileIndex);
                fold(ms.stateHash, ps.fileId);
                fold(ms.stateHash, packFlags(ps));
                if (keep_pages)
                    vs.pages.push_back(ps);
            }
            ast.vmas.push_back(std::move(vs));
        }
        ms.spaces.push_back(std::move(ast));
    }

    ms.totalAppOps = sys.totalAppOps();
    ms.oomKills = kern.oomKills();
    ms.faultsServiced = kern.majorFaults() + kern.minorFaults();
    if (sys.smu())
        ms.faultsServiced += sys.smu()->handled();
    if (sys.softwareSmu())
        ms.faultsServiced += sys.softwareSmu()->handled();
    return ms;
}

} // namespace

MachineState
captureLogicalState(system::System &sys, const std::string &label)
{
    return walk(sys, label, true);
}

std::uint64_t
logicalStateHash(system::System &sys)
{
    return walk(sys, "hash", false).stateHash;
}

} // namespace hwdp::testing

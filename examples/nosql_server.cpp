/**
 * @file
 * NoSQL server scenario (the paper's motivating workload): a
 * RocksDB-shaped store with its data file fast-mmap'ed, serving a
 * YCSB-C request stream from four threads, under conventional OS
 * demand paging and under HWDP.
 *
 *   $ ./build/examples/nosql_server
 */

#include <cstdio>
#include <memory>

#include "system/system.hh"
#include "workloads/ycsb.hh"

using namespace hwdp;

namespace {

struct Result
{
    double opsPerSec;
    double userIpc;
    std::uint64_t osFaults;
    std::uint64_t hwFaults;
};

Result
serve(system::PagingMode mode, char ycsb_type, unsigned threads)
{
    system::MachineConfig cfg;
    cfg.mode = mode;
    cfg.memFrames = 64 * 1024; // 256 MB DRAM

    system::System sys(cfg);

    // 512 MB database (2:1 against memory, like the paper's 64G/32G).
    const std::uint64_t db_pages = 128 * 1024;
    auto mf = sys.mapDataset("rocks.sst", db_pages);
    auto *wal = sys.createFile("rocks.wal", 16 * 1024);

    // Keep the store alive alongside the system.
    struct Holder : workloads::Workload
    {
        std::unique_ptr<workloads::KvStore> s;
        workloads::Op next(sim::Rng &) override
        {
            return workloads::Op::makeDone();
        }
        const char *label() const override { return "holder"; }
    };
    auto *holder = sys.makeWorkload<Holder>();
    holder->s = std::make_unique<workloads::KvStore>(mf.vma, wal,
                                                     db_pages);

    for (unsigned t = 0; t < threads; ++t) {
        auto *wl = sys.makeWorkload<workloads::YcsbWorkload>(
            ycsb_type, *holder->s, 6000);
        sys.addThread(*wl, t, *mf.as);
    }
    sys.runUntilThreadsDone(seconds(120.0));

    Result r;
    r.opsPerSec = sys.throughputOpsPerSec();
    r.userIpc = sys.aggregateUserIpc();
    r.osFaults = sys.kernel().majorFaults();
    r.hwFaults = 0;
    for (auto &tc : sys.threads())
        r.hwFaults += tc->hwHandledOps();
    return r;
}

} // namespace

int
main()
{
    std::printf("NoSQL server: YCSB-C, 4 threads, 2:1 dataset:memory\n\n");

    Result osdp = serve(system::PagingMode::osdp, 'C', 4);
    std::printf("OS demand paging   : %8.0f ops/s, user IPC %.2f, "
                "%llu OS faults\n",
                osdp.opsPerSec, osdp.userIpc,
                static_cast<unsigned long long>(osdp.osFaults));

    Result hwdp = serve(system::PagingMode::hwdp, 'C', 4);
    std::printf("hardware (SMU)     : %8.0f ops/s, user IPC %.2f, "
                "%llu hardware-handled misses, %llu OS faults\n",
                hwdp.opsPerSec, hwdp.userIpc,
                static_cast<unsigned long long>(hwdp.hwFaults),
                static_cast<unsigned long long>(hwdp.osFaults));

    std::printf("\nHWDP speedup       : %.2fx  (paper: up to 1.27x "
                "for YCSB-C)\n",
                hwdp.opsPerSec / osdp.opsPerSec);
    std::printf("user IPC gain      : +%.1f%%  (paper: +7.0%%)\n",
                (hwdp.userIpc / osdp.userIpc - 1.0) * 100.0);
    return 0;
}

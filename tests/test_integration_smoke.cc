/**
 * @file
 * End-to-end smoke tests: build a machine in each paging mode, run a
 * small FIO workload to completion and check the global invariants
 * (faults happened, pages were handled by the right machinery, frame
 * accounting stays consistent).
 */

#include <gtest/gtest.h>

#include "system/system.hh"
#include "workloads/fio.hh"

using namespace hwdp;

namespace {

system::MachineConfig
smallConfig(system::PagingMode mode)
{
    system::MachineConfig cfg;
    cfg.mode = mode;
    cfg.nLogical = 4;
    cfg.nPhysical = 2;
    cfg.memFrames = 8 * 1024;        // 32 MB
    cfg.smu.freeQueueCapacity = 512;
    cfg.kpooldBatch = 256;
    cfg.kpooldPeriod = milliseconds(1.0);
    cfg.kptedPeriod = milliseconds(5.0);
    return cfg;
}

} // namespace

TEST(IntegrationSmoke, OsdpFioCompletes)
{
    system::System sys(smallConfig(system::PagingMode::osdp));
    auto mf = sys.mapDataset("data", 16 * 1024, nullptr); // 64 MB, 2:1
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 2000);
    sys.addThread(*wl, 0, *mf.as);

    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(10.0)));
    EXPECT_EQ(sys.totalAppOps(), 2000u);
    // Dataset exceeds memory: major faults must dominate.
    EXPECT_GT(sys.kernel().majorFaults(), 1000u);
    EXPECT_EQ(sys.core(0).mmu().hwMisses(), 0u);
}

TEST(IntegrationSmoke, HwdpFioCompletes)
{
    system::System sys(smallConfig(system::PagingMode::hwdp));
    auto mf = sys.mapDataset("data", 16 * 1024, nullptr);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 2000);
    sys.addThread(*wl, 0, *mf.as);

    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(10.0)));
    EXPECT_EQ(sys.totalAppOps(), 2000u);
    // Nearly all misses handled in hardware.
    EXPECT_GT(sys.smu()->handled(), 1000u);
    EXPECT_LT(sys.kernel().majorFaults(), sys.smu()->handled() / 10);
}

TEST(IntegrationSmoke, SwSmuFioCompletes)
{
    system::System sys(smallConfig(system::PagingMode::swsmu));
    auto mf = sys.mapDataset("data", 16 * 1024, nullptr);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 2000);
    sys.addThread(*wl, 0, *mf.as);

    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(10.0)));
    EXPECT_EQ(sys.totalAppOps(), 2000u);
    EXPECT_GT(sys.softwareSmu()->handled(), 1000u);
}

TEST(IntegrationSmoke, HwdpIsFasterThanOsdp)
{
    double lat[2];
    int i = 0;
    for (auto mode :
         {system::PagingMode::osdp, system::PagingMode::hwdp}) {
        system::System sys(smallConfig(mode));
        auto mf = sys.mapDataset("data", 16 * 1024, nullptr);
        auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 2000);
        auto *tc = sys.addThread(*wl, 0, *mf.as);
        ASSERT_TRUE(sys.runUntilThreadsDone(seconds(10.0)));
        lat[i++] = tc->memLatencyUs().mean();
    }
    EXPECT_LT(lat[1], lat[0]); // HWDP latency below OSDP
    // The paper reports ~37% single-thread latency reduction; accept a
    // generous band here (the precise shape is EXPERIMENTS.md's job).
    EXPECT_LT(lat[1], lat[0] * 0.85);
}

TEST(IntegrationSmoke, FrameAccountingStaysConsistent)
{
    system::System sys(smallConfig(system::PagingMode::hwdp));
    auto mf = sys.mapDataset("data", 16 * 1024, nullptr);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 1000);
    sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(10.0)));

    auto &pm = sys.physMem();
    EXPECT_EQ(pm.allocatedFrames() + pm.freeFrames() +
                  pm.reservedCount(),
              pm.totalFrames());
    // Every allocated frame is accounted for by page metadata.
    std::uint64_t in_use = 0;
    for (Pfn p = 0; p < sys.kernel().numFrames(); ++p) {
        if (sys.kernel().page(p).inUse)
            ++in_use;
    }
    EXPECT_EQ(in_use, pm.allocatedFrames());
}

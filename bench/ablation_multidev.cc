/**
 * @file
 * Multi-device and per-core free page queue ablations.
 *
 * The PTE's <SID, device id, LBA> decomposition (Section III-B) lets
 * one SMU serve up to 8 block devices; the per-core free page queue
 * variant (Section V future work) gives the OS a per-thread handle
 * for memory policy and isolates cores from each other's refill
 * races. Both are exercised here.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace hwdp;
using metrics::Table;

namespace {

struct Writer : workloads::Workload
{
    os::File *wal;
    std::uint64_t n = 0;
    std::uint64_t limit;
    Writer(os::File *w, std::uint64_t limit) : wal(w), limit(limit) {}
    workloads::Op
    next(sim::Rng &) override
    {
        if (n >= limit)
            return workloads::Op::makeDone();
        return workloads::Op::makeFileWrite(wal, n++, pageSize, true);
    }
    const char *label() const override { return "writer"; }
};

} // namespace

int
main()
{
    metrics::banner("Ablation: read/write isolation across devices",
                    "reads on their own device dodge the writer's "
                    "channel occupancy");
    {
        Table t({"layout", "read latency us", "writes completed"});
        for (unsigned devices : {1u, 2u}) {
            auto cfg = bench::paperConfig(system::PagingMode::hwdp);
            cfg.nDevices = devices;
            system::System sys(cfg);
            unsigned reader_dev = devices - 1;
            auto data =
                sys.mapDataset("data", 64 * 1024, nullptr, reader_dev);
            auto *wal = sys.createFile("wal", 16 * 1024, 0);
            sys.addThread(*sys.makeWorkload<Writer>(wal, 6000), 0,
                          *data.as);
            auto *rd = sys.makeWorkload<workloads::FioWorkload>(
                data.vma, 3000);
            auto *tc = sys.addThread(*rd, 1, *data.as);
            sys.runUntilThreadsDone(seconds(60.0));
            t.addRow({devices == 1 ? "shared device"
                                   : "reads on second device",
                      Table::num(tc->faultedOpLatencyUs().mean()),
                      std::to_string(sys.ssdAt(0).writesCompleted())});
        }
        t.print();
    }

    metrics::banner("Ablation: global vs per-core free page queues",
                    "does splitting the pool help or hurt?");
    {
        struct Cfg
        {
            const char *label;
            bool perCore;
            std::uint64_t capacity;
        };
        Table t({"queues", "total entries", "storm-core OS bounces",
                 "victim-core OS bounces", "victim latency us"});
        for (const Cfg &qc : std::initializer_list<Cfg>{
                 {"global", false, 1024},
                 {"per-core, same total", true, 1024},
                 {"per-core, sized per core", true, 16 * 1024}}) {
            auto cfg = bench::paperConfig(system::PagingMode::hwdp);
            cfg.smu.perCoreFreeQueues = qc.perCore;
            cfg.smu.nFreeQueues = 16;
            cfg.smu.freeQueueCapacity = qc.capacity;
            cfg.kpooldPeriod = milliseconds(8.0); // slow: storms bite
            system::System sys(cfg);
            auto mf = sys.mapDataset("f", 16 * bench::defaultMemFrames);

            // Core 0: fault storm. Core 1: a modest reader (victim).
            auto *storm = sys.makeWorkload<workloads::FioWorkload>(
                mf.vma, 12000);
            sys.addThread(*storm, 0, *mf.as);
            auto *victim = sys.makeWorkload<workloads::FioWorkload>(
                mf.vma, 1500);
            auto *vtc = sys.addThread(*victim, 1, *mf.as);
            sys.runUntilThreadsDone(seconds(60.0));

            t.addRow({qc.label, std::to_string(qc.capacity),
                      std::to_string(sys.core(0).mmu().smuRejections()),
                      std::to_string(sys.core(1).mmu().smuRejections()),
                      Table::num(vtc->faultedOpLatencyUs().mean())});
        }
        t.print();
        std::printf("\nfinding: at equal total size, per-core queues "
                    "FRAGMENT the pool (the storm core exhausts its "
                    "1/16th while the victim's 15/16ths sit idle) — "
                    "their value is per-thread policy enforcement "
                    "(Section V), and they must be sized per core, "
                    "which the third row shows largely restores "
                    "hardware-only operation\n");
    }
    return 0;
}

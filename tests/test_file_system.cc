/**
 * @file
 * Tests for the extent-based file system.
 */

#include <gtest/gtest.h>

#include <set>

#include "os/file_system.hh"
#include "sim/logging.hh"

using namespace hwdp;
using namespace hwdp::os;

namespace {

FileSystem
makeFs()
{
    return FileSystem(sim::Rng(42));
}

} // namespace

TEST(FileSystem, CreateAndLookup)
{
    auto fs = makeFs();
    File *f = fs.createFile("data", 100, BlockDeviceId{0, 0});
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->numPages(), 100u);
    EXPECT_EQ(fs.lookup("data"), f);
    EXPECT_EQ(fs.byId(f->id()), f);
    EXPECT_EQ(fs.lookup("nope"), nullptr);
    EXPECT_EQ(fs.byId(99), nullptr);
}

TEST(FileSystem, DuplicateNameRejected)
{
    auto fs = makeFs();
    fs.createFile("a", 10, BlockDeviceId{0, 0});
    EXPECT_THROW(fs.createFile("a", 10, BlockDeviceId{0, 0}),
                 FatalError);
}

TEST(FileSystem, EmptyFileRejected)
{
    auto fs = makeFs();
    EXPECT_THROW(fs.createFile("e", 0, BlockDeviceId{0, 0}), FatalError);
}

TEST(FileSystem, LbasAreUniqueAcrossFiles)
{
    auto fs = makeFs();
    File *a = fs.createFile("a", 5000, BlockDeviceId{0, 0});
    File *b = fs.createFile("b", 5000, BlockDeviceId{0, 0});
    std::set<Lba> seen;
    for (std::uint64_t i = 0; i < 5000; ++i) {
        EXPECT_TRUE(seen.insert(a->lbaOf(i)).second);
        EXPECT_TRUE(seen.insert(b->lbaOf(i)).second);
    }
}

TEST(FileSystem, ExtentsAreMostlyContiguous)
{
    auto fs = makeFs();
    File *f = fs.createFile("big", 10000, BlockDeviceId{0, 0});
    std::uint64_t contiguous = 0;
    for (std::uint64_t i = 1; i < 10000; ++i)
        contiguous += f->lbaOf(i) == f->lbaOf(i - 1) + 1;
    // Extents average 512 pages: the overwhelming majority of
    // neighbours are physically adjacent.
    EXPECT_GT(contiguous, 9900u);
}

TEST(FileSystem, LbaBeyondEofPanics)
{
    auto fs = makeFs();
    File *f = fs.createFile("f", 4, BlockDeviceId{0, 0});
    EXPECT_THROW(f->lbaOf(4), PanicError);
}

TEST(FileSystem, RemapChangesLbaAndNotifies)
{
    auto fs = makeFs();
    File *f = fs.createFile("f", 16, BlockDeviceId{1, 2});
    f->markLbaAugmented();

    File *seen_file = nullptr;
    std::uint64_t seen_idx = 0;
    Lba seen_lba = 0;
    fs.setRemapListener([&](File &file, std::uint64_t idx, Lba lba) {
        seen_file = &file;
        seen_idx = idx;
        seen_lba = lba;
    });

    Lba before = f->lbaOf(7);
    fs.remapPage(*f, 7);
    EXPECT_NE(f->lbaOf(7), before);
    EXPECT_EQ(seen_file, f);
    EXPECT_EQ(seen_idx, 7u);
    EXPECT_EQ(seen_lba, f->lbaOf(7));
}

TEST(FileSystem, DeviceIdIsPreserved)
{
    auto fs = makeFs();
    File *f = fs.createFile("f", 4, BlockDeviceId{3, 5});
    EXPECT_EQ(f->device().sid, 3u);
    EXPECT_EQ(f->device().dev, 5u);
}

TEST(FileSystem, MarkLbaAugmentedSticks)
{
    auto fs = makeFs();
    File *f = fs.createFile("f", 4, BlockDeviceId{0, 0});
    EXPECT_FALSE(f->lbaAugmentedMapping());
    f->markLbaAugmented();
    EXPECT_TRUE(f->lbaAugmentedMapping());
}

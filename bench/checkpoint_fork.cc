/**
 * @file
 * Checkpoint-forked sweeps: host cost of the Fig. 13 FIO sweep run
 * cold versus forked from per-family warm checkpoints.
 *
 * Every point of the sweep is "warm up W ops per thread, then measure
 * M ops per thread" on a paper-config machine. The cold baseline
 * simulates the warm-up inside every point; the forked run simulates
 * it once per (mode, threads) family, saves the warmed machine
 * (system/checkpoint.hh), and restores the blob for each point. Both
 * paths pass through the same quiesce/resume cycle at the warm
 * boundary, so the measured phase is byte-identical — the bench
 * asserts that per point before quoting any timing.
 *
 * Timing follows the BENCH_*.json protocol: process CPU seconds from
 * getrusage (steal-immune on shared boxes), median of N repeats, wall
 * clock quoted beside it. The forked repeats delete the blob
 * directory first so each one pays the warm+save cost honestly.
 *
 * Flags (bench_common.hh): --warm-ops=N, --checkpoint-dir=PATH.
 */

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "bench/host_timing.hh"

using namespace hwdp;
using metrics::Table;

namespace {

struct Family
{
    system::PagingMode mode;
    unsigned threads;
    const char *name;
};

struct Point
{
    std::size_t family;
    std::uint64_t measOps;
};

} // namespace

int
main(int argc, char **argv)
{
    metrics::banner(
        "Checkpoint-forked sweeps: Fig. 13 FIO, cold vs warm-fork",
        "warm once per (mode, threads) family, fork every sweep point");

    bench::WarmFork flags = bench::parseWarmFork(argc, argv, 20000);
    std::string dir = flags.checkpointDir.empty()
                          ? std::string("hwdp-checkpoints")
                          : flags.checkpointDir;

    const std::vector<Family> families = {
        {system::PagingMode::osdp, 1, "fio osdp t1"},
        {system::PagingMode::osdp, 4, "fio osdp t4"},
        {system::PagingMode::hwdp, 1, "fio hwdp t1"},
        {system::PagingMode::hwdp, 4, "fio hwdp t4"},
    };
    const std::vector<std::uint64_t> measOps = {1000, 2000, 3000, 4000};
    // Fig. 13's FIO dataset (8x memory). Blob size and restore cost
    // scale with dataset pages, so the sweep's own dataset — not the
    // 32x cold-miss latency one — is the honest fork granularity.
    const std::uint64_t datasetPages = 8 * bench::defaultMemFrames;

    std::vector<Point> points;
    for (std::size_t f = 0; f < families.size(); ++f)
        for (std::uint64_t m : measOps)
            points.push_back({f, m});

    auto cfgOf = [&](const Family &f) {
        return bench::paperConfig(f.mode);
    };

    // One full sweep; wf decides cold vs forked. Results in point
    // order regardless of completion order (SweepRunner contract).
    auto runSweep = [&](const bench::WarmFork &wf,
                        std::vector<metrics::CheckpointRow> *rows) {
        if (wf.forked()) {
            // Phase 1: warm every family in parallel, save the blobs.
            bench::SweepRunner warmers(0);
            auto saved = warmers.map<metrics::CheckpointRow>(
                families.size(), [&](std::size_t f) {
                    return bench::warmFioFamily(cfgOf(families[f]),
                                                families[f].threads, wf,
                                                families[f].name,
                                                datasetPages);
                });
            if (rows)
                rows->insert(rows->end(), saved.begin(), saved.end());
        }
        // Phase 2: the sweep proper (restores under wf.forked()).
        std::vector<metrics::CheckpointRow> pointRows(points.size());
        bench::SweepRunner runner(0);
        auto runs = runner.map<bench::FioRun>(
            points.size(), [&](std::size_t i) {
                const Point &p = points[i];
                const Family &f = families[p.family];
                return bench::runFioWarm(cfgOf(f), f.threads, p.measOps,
                                         wf, f.name, datasetPages,
                                         &pointRows[i]);
            });
        if (rows)
            rows->insert(rows->end(), pointRows.begin(),
                         pointRows.end());
        return runs;
    };

    bench::WarmFork cold{flags.warmOps, ""};
    bench::WarmFork forked{flags.warmOps, dir};

    // Correctness gate first: the forked sweep must reproduce the
    // cold sweep's measurement phase exactly.
    auto coldRuns = runSweep(cold, nullptr);
    std::vector<metrics::CheckpointRow> ckptRows;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    auto forkedRuns = runSweep(forked, &ckptRows);
    unsigned mismatches = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const bench::FioRun &a = coldRuns[i];
        const bench::FioRun &b = forkedRuns[i];
        if (a.opsPerSec != b.opsPerSec ||
            a.meanLatencyUs != b.meanLatencyUs ||
            a.p99LatencyUs != b.p99LatencyUs ||
            a.hwHandled != b.hwHandled || a.osFaults != b.osFaults) {
            ++mismatches;
            std::printf("MISMATCH point %zu (%s, %llu meas ops)\n", i,
                        families[points[i].family].name,
                        static_cast<unsigned long long>(
                            points[i].measOps));
        }
    }
    std::printf("forked == cold on all %zu points: %s\n\n",
                points.size(), mismatches == 0 ? "yes" : "NO");

    metrics::checkpointTable(ckptRows).print();
    std::printf("\n");

    // Timing: median-of-3 full sweeps each way. Forked repeats start
    // from an empty blob directory so every repeat pays warm+save.
    const unsigned repeats = 3;
    bench::TimedRun coldT = bench::medianOfRuns(
        repeats, [&] { runSweep(cold, nullptr); });
    bench::TimedRun forkedT = bench::medianOfRuns(repeats, [&] {
        std::filesystem::remove_all(dir);
        std::filesystem::create_directories(dir);
        runSweep(forked, nullptr);
    });

    Table t({"sweep", "points", "cpu s (median)", "wall s (median)"});
    t.addRow({"cold", std::to_string(points.size()),
              Table::num(coldT.cpuSec), Table::num(coldT.wallSec)});
    t.addRow({"checkpoint-forked", std::to_string(points.size()),
              Table::num(forkedT.cpuSec), Table::num(forkedT.wallSec)});
    t.print();
    std::printf("\ncpu speedup: %.2fx   wall speedup: %.2fx\n",
                coldT.cpuSec / forkedT.cpuSec,
                coldT.wallSec / forkedT.wallSec);

    std::filesystem::remove_all(dir);
    return mismatches == 0 ? 0 : 1;
}

/**
 * @file
 * The logical memory-management state walk, shared between the
 * MachineDiffer and the checkpointer.
 *
 * One traversal produces, per (address space, VMA, page): residency,
 * backing identity (file id + file index, or anonymous offset),
 * dirtiness, metadata-sync status and the rmap/LRU/page-cache
 * bookkeeping — never raw PFNs (frame allocation order legitimately
 * differs across paging modes) and never raw ticks. A provenance hash
 * folds the per-page state so whole-machine equality is a single
 * comparison.
 *
 * Consumers: testing::snapshot()/diff() compare two machines;
 * system::Checkpoint stores the hash in its footer and re-walks the
 * restored machine to prove the restore reproduced the saved logical
 * state. Because both consume this one walk, the differ and the
 * checkpointer cannot drift apart about what "logical state" means.
 */

#ifndef HWDP_TESTING_LOGICAL_STATE_HH
#define HWDP_TESTING_LOGICAL_STATE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace hwdp::system {
class System;
}

namespace hwdp::testing {

/** Logical state of one page slot of a VMA. */
struct PageState
{
    bool resident = false;

    /** Backing identity (mode-independent). */
    bool fileBacked = false;
    std::uint32_t fileId = 0;
    std::uint64_t fileIndex = 0; ///< For anon: page index in the VMA.

    bool dirty = false;

    /** Resident with OS metadata synchronised (LBA bit clear). */
    bool synced = false;

    /** Bookkeeping of the backing frame (resident pages only). */
    bool rmapOk = false;
    bool lruLinked = false;
    bool inPageCache = false;

    bool operator==(const PageState &o) const;
    bool operator!=(const PageState &o) const { return !(*this == o); }
};

struct VmaState
{
    VAddr start = 0;
    VAddr end = 0;
    bool anon = false;
    std::vector<PageState> pages;
};

struct AsState
{
    std::uint32_t asid = 0;
    std::vector<VmaState> vmas;
};

struct MachineState
{
    std::string label;
    std::vector<AsState> spaces;
    std::uint64_t totalAppOps = 0;
    std::uint64_t oomKills = 0;

    /** Misses resolved by any path (SMU + SW-SMU + OS major/minor). */
    std::uint64_t faultsServiced = 0;

    /** FNV-1a fold of every per-page logical state. */
    std::uint64_t stateHash = 0;
};

/** The per-page flag word folded into the provenance hash. */
std::uint64_t packFlags(const PageState &ps);

/** One readable line describing a page's logical state. */
std::string describePageState(const PageState &ps);

/** Walk @p sys and capture its full logical state. */
MachineState captureLogicalState(system::System &sys,
                                 const std::string &label);

/**
 * The provenance hash alone — the walk without keeping the per-page
 * records (the checkpoint footer path).
 */
std::uint64_t logicalStateHash(system::System &sys);

} // namespace hwdp::testing

#endif // HWDP_TESTING_LOGICAL_STATE_HH

/**
 * @file
 * Tests for the kernel phase model and its calibration invariants
 * against the paper's Figure 3 / Figure 11 decomposition.
 */

#include <gtest/gtest.h>

#include "mem/branch_predictor.hh"
#include "mem/cache_hierarchy.hh"
#include "os/kernel_phases.hh"
#include "sim/logging.hh"

using namespace hwdp;
using namespace hwdp::os;

namespace {

struct Harness
{
    mem::CacheHierarchy caches{1, mem::CacheParams{}};
    std::vector<mem::BranchPredictor> bps{1};
    KernelExec kexec{caches, bps, 357, sim::Rng(2)};
};

constexpr double cyclesToUs = 357.0 / 1e6;

} // namespace

TEST(KernelPhases, BeforeDevicePortionMatchesPaper)
{
    // Paper (Figure 11a): OSDP spends ~2.4 us before the device I/O.
    double us = (phases::exceptionEntry.cycles + phases::vmaLookup.cycles +
                 phases::pageAlloc.cycles + phases::ioSubmit.cycles) *
                cyclesToUs;
    EXPECT_GT(us, 1.8);
    EXPECT_LT(us, 2.8);
}

TEST(KernelPhases, AfterDevicePortionMatchesPaper)
{
    // Paper (Figure 11a): ~6.2 us after the device I/O.
    double us = (phases::irqDeliver.cycles + phases::ioComplete.cycles +
                 phases::wakeupSched.cycles + phases::contextSwitch.cycles +
                 phases::metadataUpdate.cycles +
                 phases::pteUpdateReturn.cycles) *
                cyclesToUs;
    EXPECT_GT(us, 5.4);
    EXPECT_LT(us, 7.0);
}

TEST(KernelPhases, TotalOverheadNearPaperFraction)
{
    // Paper (Figure 3): critical-path kernel work is ~76.3% of the
    // 10.9 us device time.
    double total =
        (phases::exceptionEntry.cycles + phases::vmaLookup.cycles +
         phases::pageAlloc.cycles + phases::ioSubmit.cycles +
         phases::irqDeliver.cycles + phases::ioComplete.cycles +
         phases::wakeupSched.cycles + phases::contextSwitch.cycles +
         phases::metadataUpdate.cycles + phases::pteUpdateReturn.cycles) *
        cyclesToUs;
    double frac = total / 10.9;
    EXPECT_GT(frac, 0.68);
    EXPECT_LT(frac, 0.85);
}

TEST(KernelPhases, IoSubmitFractionMatchesPaper)
{
    // Paper: I/O submission is 9.85% of device time.
    double frac = phases::ioSubmit.cycles * cyclesToUs / 10.9;
    EXPECT_NEAR(frac, 0.0985, 0.02);
}

TEST(KernelPhases, ContextSwitchFractionMatchesPaper)
{
    double frac = phases::contextSwitch.cycles * cyclesToUs / 10.9;
    EXPECT_NEAR(frac, 0.0985, 0.02);
}

TEST(KernelPhases, CompletionFractionMatchesPaper)
{
    // Paper: I/O completion is 20.6% of device time.
    double frac = phases::ioComplete.cycles * cyclesToUs / 10.9;
    EXPECT_NEAR(frac, 0.206, 0.04);
}

TEST(KernelPhases, RunChargesTimeAndAccounting)
{
    Harness h;
    Tick d = h.kexec.run(0, phases::ioSubmit);
    EXPECT_EQ(d, phases::ioSubmit.cycles * 357);
    EXPECT_EQ(h.kexec.instructions(KernelCostCat::ioStack),
              phases::ioSubmit.instructions);
    EXPECT_EQ(h.kexec.cycles(KernelCostCat::ioStack),
              phases::ioSubmit.cycles);
}

TEST(KernelPhases, RunBatchScalesLinearly)
{
    Harness h;
    Tick d = h.kexec.runBatch(0, phases::kptedPerPage, 10);
    EXPECT_EQ(d, phases::kptedPerPage.cycles * 10 * 357);
    EXPECT_EQ(h.kexec.instructions(KernelCostCat::kpted),
              phases::kptedPerPage.instructions * 10);
}

TEST(KernelPhases, PollutionTouchesKernelModeCaches)
{
    Harness h;
    h.kexec.run(0, phases::ioComplete);
    auto &k = h.caches.counters(ExecMode::kernel);
    EXPECT_GT(k.l1iAccesses, 0u);
    EXPECT_GT(k.l1dAccesses, 0u);
    EXPECT_GT(h.bps[0].lookups(ExecMode::kernel), 0u);
    // User counters untouched.
    EXPECT_EQ(h.caches.counters(ExecMode::user).l1dAccesses, 0u);
}

TEST(KernelPhases, PollutionCanBeDisabled)
{
    Harness h;
    h.kexec.setPollutionEnabled(false);
    h.kexec.run(0, phases::ioComplete);
    EXPECT_EQ(h.caches.counters(ExecMode::kernel).l1dAccesses, 0u);
    // Accounting still happens.
    EXPECT_GT(h.kexec.instructions(KernelCostCat::ioStack), 0u);
}

TEST(KernelPhases, ResetAccountingZeroes)
{
    Harness h;
    h.kexec.run(0, phases::ioSubmit);
    h.kexec.resetAccounting();
    EXPECT_EQ(h.kexec.totalInstructions(), 0u);
    EXPECT_EQ(h.kexec.totalCycles(), 0u);
}

TEST(KernelPhases, CategoryNamesAreStable)
{
    EXPECT_STREQ(kernelCostCatName(KernelCostCat::kpted), "kpted");
    EXPECT_STREQ(kernelCostCatName(KernelCostCat::kpoold), "kpoold");
    EXPECT_STREQ(kernelCostCatName(KernelCostCat::ioStack), "io_stack");
}

TEST(KernelPhases, SwSmuOverheadNearTwoMicroseconds)
{
    // Figure 17 calibration: the software-emulated SMU adds ~2 us of
    // kernel work per fault on top of the device time.
    double us = (phases::exceptionEntry.cycles + phases::swSmuSubmit.cycles +
                 phases::swSmuWake.cycles + phases::swSmuComplete.cycles) *
                cyclesToUs;
    EXPECT_GT(us, 1.6);
    EXPECT_LT(us, 2.6);
}

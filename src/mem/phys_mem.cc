#include "mem/phys_mem.hh"

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::mem {

void
PhysMem::serialize(sim::Serializer &s)
{
    s.section("physmem");
    s.check(nFrames, "physmem frame count");
    s.check(reservedFrames, "physmem reserved frames");
    s.io(freeList);
    if (s.loading()) {
        allocated.assign(nFrames, true);
        for (Pfn pfn : freeList)
            allocated[pfn] = false;
        // Reserved frames are the highest-numbered and never handed
        // out; keep their flags clear as at construction.
        for (std::uint64_t pfn = nFrames - reservedFrames; pfn < nFrames;
             ++pfn)
            allocated[pfn] = false;
    }
    stats().serialize(s);
}

PhysMem::PhysMem(sim::EventQueue &eq, std::uint64_t n_frames,
                 std::uint64_t reserved)
    : sim::SimObject("physmem", eq), nFrames(n_frames),
      reservedFrames(reserved), allocated(n_frames, false),
      allocs(stats().counter("allocs", "frames allocated")),
      frees(stats().counter("frees", "frames freed")),
      failedAllocs(stats().counter("failed_allocs",
                                   "allocations that found no free frame"))
{
    if (reserved >= n_frames)
        fatal("physmem: reserved (", reserved, ") >= total frames (",
              n_frames, ")");
    freeList.reserve(n_frames - reserved);
    // Hand out low frame numbers first (reserved frames are the
    // highest-numbered ones) so tests get predictable PFNs.
    for (std::uint64_t pfn = n_frames - reserved; pfn-- > 0;)
        freeList.push_back(pfn);
}

Pfn
PhysMem::alloc()
{
    if (freeList.empty()) {
        ++failedAllocs;
        return invalidPfn;
    }
    Pfn pfn = freeList.back();
    freeList.pop_back();
    allocated[pfn] = true;
    ++allocs;
    return pfn;
}

void
PhysMem::free(Pfn pfn)
{
    if (pfn >= nFrames)
        panic("physmem: freeing out-of-range pfn ", pfn);
    if (!allocated[pfn])
        panic("physmem: double free of pfn ", pfn);
    allocated[pfn] = false;
    freeList.push_back(pfn);
    ++frees;
}

bool
PhysMem::isAllocated(Pfn pfn) const
{
    return pfn < nFrames && allocated[pfn];
}

} // namespace hwdp::mem

/**
 * @file
 * Tests for the per-core scheduler: dispatch, block/wake, kernel-work
 * preemption, context-switch charging and SMT width sharing.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/branch_predictor.hh"
#include "mem/cache_hierarchy.hh"
#include "os/scheduler.hh"
#include "sim/logging.hh"

using namespace hwdp;
using namespace hwdp::os;

namespace {

struct Harness
{
    sim::EventQueue eq;
    mem::CacheHierarchy caches{2, mem::CacheParams{}};
    std::vector<mem::BranchPredictor> bps{2};
    KernelExec kexec{caches, bps, 357, sim::Rng(1)};
    Scheduler sched{eq, 4, 2, kexec};
};

/** A thread that runs a scripted sequence of actions. */
class ScriptThread : public Thread
{
  public:
    using Action = std::function<void(ScriptThread &)>;

    ScriptThread(std::string name, unsigned core, Scheduler &s,
                 std::vector<Action> script)
        : Thread(std::move(name), core), sched(s),
          script(std::move(script))
    {
    }

    void
    run() override
    {
        if (hasResumeAction()) {
            takeResumeAction()();
            return;
        }
        step();
    }

    void
    step()
    {
        if (next >= script.size()) {
            sched.finish(this);
            return;
        }
        script[next++](*this);
    }

    Scheduler &sched;
    std::vector<Action> script;
    std::size_t next = 0;
    std::vector<Tick> trace;
};

} // namespace

TEST(Scheduler, RunsThreadToCompletion)
{
    Harness h;
    bool ran = false;
    ScriptThread t("t", 0, h.sched,
                   {[&](ScriptThread &self) {
                       ran = true;
                       self.sched.finish(&self);
                   }});
    h.sched.addThread(&t);
    h.sched.start();
    h.eq.run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(t.state(), Thread::State::finished);
}

TEST(Scheduler, DispatchChargesSwitchIn)
{
    Harness h;
    ScriptThread t("t", 0, h.sched,
                   {[](ScriptThread &self) {
                       // The switch-in must have advanced time.
                       EXPECT_GT(self.sched.eventQueue().now(), 0u);
                       self.sched.finish(&self);
                   }});
    h.sched.addThread(&t);
    h.sched.start();
    h.eq.run();
    EXPECT_GE(h.sched.contextSwitches(), 1u);
}

TEST(Scheduler, BlockAndWakeResumesThread)
{
    Harness h;
    int phase = 0;
    ScriptThread t("t", 0, h.sched,
                   {[&](ScriptThread &self) {
                        phase = 1;
                        self.sched.block(&self);
                    },
                    [&](ScriptThread &self) {
                        phase = 2;
                        self.sched.finish(&self);
                    }});
    h.sched.addThread(&t);
    h.sched.start();
    h.eq.post(microseconds(50.0), [&] {
        EXPECT_EQ(phase, 1);
        EXPECT_EQ(t.state(), Thread::State::blocked);
        h.sched.wake(&t);
    });
    h.eq.run();
    EXPECT_EQ(phase, 2);
}

TEST(Scheduler, WakeOfRunnableIsIgnored)
{
    Harness h;
    ScriptThread t("t", 0, h.sched,
                   {[](ScriptThread &self) { self.sched.finish(&self); }});
    h.sched.addThread(&t);
    h.sched.wake(&t); // already runnable: no-op, no crash
    h.sched.start();
    h.eq.run();
    EXPECT_EQ(t.state(), Thread::State::finished);
}

TEST(Scheduler, TwoThreadsShareACore)
{
    Harness h;
    std::vector<std::string> order;
    auto mk = [&](const char *name) {
        return std::vector<ScriptThread::Action>{
            [&order, name](ScriptThread &self) {
                order.push_back(name);
                self.sched.yield(&self);
            },
            [&order, name](ScriptThread &self) {
                order.push_back(name);
                self.sched.finish(&self);
            }};
    };
    ScriptThread a("a", 0, h.sched, mk("a"));
    ScriptThread b("b", 0, h.sched, mk("b"));
    h.sched.addThread(&a);
    h.sched.addThread(&b);
    h.sched.start();
    h.eq.run();
    EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "a", "b"}));
}

TEST(Scheduler, KernelWorkRunsOnIdleCore)
{
    Harness h;
    bool done = false;
    h.sched.start();
    h.sched.queueKernelWork(1, {&phases::irqDeliver},
                            [&] { done = true; });
    h.eq.run();
    EXPECT_TRUE(done);
}

TEST(Scheduler, KernelWorkChargesPhaseTime)
{
    Harness h;
    Tick when = 0;
    h.sched.start();
    h.sched.queueKernelWork(0, {&phases::irqDeliver, &phases::ioComplete},
                            [&] { when = h.eq.now(); });
    h.eq.run();
    Tick expected = (phases::irqDeliver.cycles +
                     phases::ioComplete.cycles) * 357;
    EXPECT_EQ(when, expected);
}

TEST(Scheduler, PreemptForKernelWorkResumesWithoutSwitchCharge)
{
    Harness h;
    std::vector<int> order;
    ScriptThread t("t", 0, h.sched,
                   {[&](ScriptThread &self) {
                        order.push_back(1);
                        // Interrupt work arrives now; yield to it.
                        self.sched.queueKernelWork(
                            0, {&phases::irqDeliver},
                            [&] { order.push_back(2); });
                        self.setResumeAction([&self] { self.step(); });
                        self.sched.preemptForKernelWork(&self);
                    },
                    [&](ScriptThread &self) {
                        order.push_back(3);
                        self.sched.finish(&self);
                    }});
    h.sched.addThread(&t);
    h.sched.start();
    // start() already charged the thread's initial switch-in.
    auto switches_before_run = h.sched.contextSwitches();
    h.eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    // The irq preemption/resume cycle charges no further switches.
    EXPECT_EQ(h.sched.contextSwitches(), switches_before_run);
}

TEST(Scheduler, WidthShareReflectsSiblingActivity)
{
    Harness h; // 4 logical / 2 physical: sibling of 0 is 2
    h.sched.start();
    EXPECT_DOUBLE_EQ(h.sched.widthShare(0), 1.0); // sibling idle

    ScriptThread t("t", 2, h.sched,
                   {[&](ScriptThread &self) {
                       // While this runs on core 2, core 0 shares.
                       EXPECT_DOUBLE_EQ(self.sched.widthShare(0), 0.6);
                       // A hardware-stalled sibling frees the width.
                       self.sched.setHwStalled(2, true);
                       EXPECT_DOUBLE_EQ(self.sched.widthShare(0), 1.0);
                       self.sched.setHwStalled(2, false);
                       self.sched.finish(&self);
                   }});
    h.sched.addThread(&t);
    h.eq.run();
    EXPECT_DOUBLE_EQ(h.sched.widthShare(0), 1.0);
}

TEST(Scheduler, PhysCoreTopology)
{
    Harness h;
    EXPECT_EQ(h.sched.physCoreOf(0), 0u);
    EXPECT_EQ(h.sched.physCoreOf(2), 0u);
    EXPECT_EQ(h.sched.siblingOf(0), 2u);
    EXPECT_EQ(h.sched.siblingOf(2), 0u);
    EXPECT_EQ(h.sched.siblingOf(1), 3u);
}

TEST(Scheduler, RunPhasesSequencesDurations)
{
    Harness h;
    h.sched.start();
    Tick when = 0;
    h.sched.runPhases(0, {&phases::exceptionEntry, &phases::vmaLookup},
                      [&] { when = h.eq.now(); });
    h.eq.run();
    EXPECT_EQ(when, (phases::exceptionEntry.cycles +
                     phases::vmaLookup.cycles) * 357);
}

TEST(Scheduler, BadTopologyRejected)
{
    Harness h;
    EXPECT_THROW(Scheduler(h.eq, 0, 0, h.kexec), FatalError);
    EXPECT_THROW(Scheduler(h.eq, 2, 4, h.kexec), FatalError);
    EXPECT_THROW(Scheduler(h.eq, 3, 2, h.kexec), FatalError);
}

TEST(Scheduler, DoubleAddPanics)
{
    Harness h;
    ScriptThread t("t", 0, h.sched, {});
    h.sched.addThread(&t);
    EXPECT_THROW(h.sched.addThread(&t), PanicError);
}

TEST(Scheduler, BlockOfNonCurrentPanics)
{
    Harness h;
    ScriptThread t("t", 0, h.sched, {});
    EXPECT_THROW(h.sched.block(&t), PanicError);
}

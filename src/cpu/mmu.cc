#include "cpu/mmu.hh"

#include "sim/logging.hh"

namespace hwdp::cpu {

Mmu::Mmu(std::string name, sim::EventQueue &eq, unsigned logical_core,
         mem::CacheHierarchy &caches, os::Kernel &kernel,
         Tick cycle_period)
    : sim::SimObject(std::move(name), eq), core(logical_core),
      physCore(kernel.scheduler().physCoreOf(logical_core)),
      caches(caches), kernel(kernel), period(cycle_period),
      walkUnit(caches, physCore, cycle_period), smus(8, nullptr),
      statAccesses(stats().counter("accesses", "memory accesses")),
      statHwMiss(stats().counter("hw_misses",
                                 "page misses sent to an SMU")),
      statOsFault(stats().counter("os_faults",
                                  "page misses raised as exceptions")),
      statSmuReject(stats().counter(
          "smu_rejections", "SMU bounces (queue empty / PMSHR full)")),
      statTimeout(stats().counter(
          "stall_timeouts",
          "hardware stalls converted to context switches"))
{
}

void
Mmu::attachSmu(unsigned sid, PageMissHandlerIface *smu)
{
    if (sid >= smus.size())
        fatal("mmu: socket id ", sid, " out of range");
    smus[sid] = smu;
}

Tick
Mmu::dataAccess(VAddr vaddr, Pfn pfn, bool is_write)
{
    PAddr paddr = (static_cast<PAddr>(pfn) << pageShift) |
                  (vaddr & pageOffsetMask);
    Cycles lat = caches.access(physCore, paddr, false,
                               ExecMode::user).latency;
    if (is_write) {
        // The hardware would set the PTE/TLB dirty state on the first
        // write; the model tracks it on the page for reclaim.
        kernel.page(pfn).dirty = true;
    }
    return lat * period;
}

void
Mmu::access(os::Thread &t, os::AddressSpace &as, VAddr vaddr,
            bool is_write, std::function<void(AccessInfo)> done)
{
    ++statAccesses;
    doAccess(t, as, vaddr, is_write, now(), AccessInfo{}, 0,
             std::move(done));
}

void
Mmu::doAccess(os::Thread &t, os::AddressSpace &as, VAddr vaddr,
              bool is_write, Tick start, AccessInfo info,
              unsigned attempts, std::function<void(AccessInfo)> done)
{
    if (attempts > 8)
        panic("mmu: access at ", vaddr, " not making progress");

    // 1. TLB.
    Tlb::Result tr = tlbUnit.lookup(vaddr);
    if (tr.hit) {
        Tick lat = tr.l1Hit ? 0 : 4 * period; // L2 STLB latency
        lat += dataAccess(vaddr, tr.pfn, is_write);
        info.latency = (now() + lat) - start;
        eq.postIn(lat,
                            [info, done = std::move(done)] { done(info); },
                            "mmu.hit");
        return;
    }

    // 2. Page-table walk.
    Walker::Outcome out = walkUnit.walk(as, vaddr);
    Tick wl = out.latency;

    if (out.kind == Walker::Classification::present) {
        Pfn pfn = os::pte::pfnOf(out.entry);
        tlbUnit.insert(vaddr, pfn);
        Tick lat = wl + dataAccess(vaddr, pfn, is_write);
        info.latency = (now() + lat) - start;
        eq.postIn(lat,
                            [info, done = std::move(done)] { done(info); },
                            "mmu.walked");
        return;
    }

    if (out.kind == Walker::Classification::hwMiss) {
        unsigned sid = os::pte::socketIdOf(out.entry);
        PageMissHandlerIface *smu = sid < smus.size() ? smus[sid]
                                                      : nullptr;
        if (smu) {
            ++statHwMiss;
            info.faulted = true;
            // Pipeline stall: the thread keeps the core but consumes
            // no issue slots (SMT sibling benefits, Figure 16).
            kernel.scheduler().setHwStalled(core, true);

            PageMissRequest req;
            req.refs = out.refs;
            req.sid = sid;
            req.dev = os::pte::deviceIdOf(out.entry);
            req.lba = os::pte::lbaOf(out.entry);
            req.as = &as;
            req.vaddr = vaddr & ~pageOffsetMask;
            req.core = core;
            // Shared stall state for the long-latency timeout remedy.
            struct StallState
            {
                bool completed = false;
                bool switched = false;
            };
            auto state = std::make_shared<StallState>();

            req.done = [this, &t, &as, vaddr, is_write, start, info,
                        attempts, state,
                        done = std::move(done)](bool success) mutable {
                state->completed = true;
                kernel.scheduler().setHwStalled(core, false);

                auto resume = [this, &t, &as, vaddr, is_write, start,
                               info, attempts, success,
                               done = std::move(done)]() mutable {
                    if (success) {
                        info.hwHandled = true;
                        doAccess(t, as, vaddr, is_write, start, info,
                                 attempts + 1, std::move(done));
                    } else {
                        // SMU bounce: raise the exception after all
                        // (Section III-C, free page queue empty).
                        ++statSmuReject;
                        kernel.handlePageFault(
                            t, as, vaddr, is_write, true,
                            [this, &t, &as, vaddr, is_write, start,
                             info, attempts,
                             done = std::move(done)]() mutable {
                                doAccess(t, as, vaddr, is_write, start,
                                         info, attempts + 1,
                                         std::move(done));
                            });
                    }
                };
                if (state->switched) {
                    // The thread timed out and was descheduled: wake
                    // it and continue in its context.
                    t.setResumeAction(std::move(resume));
                    kernel.scheduler().wake(&t);
                } else {
                    resume();
                }
            };
            eq.postIn(wl,
                                [smu, req = std::move(req)]() mutable {
                                    smu->handleMiss(std::move(req));
                                },
                                "mmu.smureq");

            if (stallTimeout > 0) {
                eq.postIn(
                    wl + stallTimeout,
                    [this, &t, state] {
                        if (state->completed || state->switched)
                            return;
                        // Timeout exception: stop wasting the core and
                        // switch out; block() charges the switch.
                        state->switched = true;
                        ++statTimeout;
                        kernel.scheduler().setHwStalled(core, false);
                        kernel.scheduler().kernelExec().run(
                            physCore, os::phases::exceptionEntry);
                        kernel.scheduler().block(&t);
                    },
                    "mmu.stallTimeout");
            }
            return;
        }
        // LBA-augmented PTE but no SMU for the socket: fall through to
        // the OS (it can always service a file-backed fault).
    }

    // 3. Conventional exception.
    ++statOsFault;
    info.faulted = true;
    eq.postIn(
        wl,
        [this, &t, &as, vaddr, is_write, start, info, attempts,
         done = std::move(done)]() mutable {
            kernel.handlePageFault(
                t, as, vaddr, is_write, false,
                [this, &t, &as, vaddr, is_write, start, info, attempts,
                 done = std::move(done)]() mutable {
                    doAccess(t, as, vaddr, is_write, start, info,
                             attempts + 1, std::move(done));
                });
        },
        "mmu.exception");
}

} // namespace hwdp::cpu

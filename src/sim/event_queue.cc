#include "sim/event_queue.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <tuple>

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::sim {

void
EventQueue::serialize(Serializer &s)
{
    s.section("eventqueue");
    if (size() != 0)
        throw SerializeError(
            s.saving()
                ? "checkpoint requires a drained event queue (quiesce "
                  "first): events are type-erased and unserializable"
                : "restore target has pending events (restore onto a "
                  "freshly booted, never-run machine)");
    s.io(curTick);
    s.io(nextSeq);
    s.io(nProcessed);
    s.io(pstats.created);
    s.io(pstats.acquired);
    s.io(pstats.released);
    s.io(pstats.heapFallbacks);
    if (s.loading()) {
        // Every node is free (the queue is empty); pre-grow the pool
        // to the saved node count so the continued run reuses nodes
        // exactly where the straight run did.
        if (pool.size() > pstats.created)
            throw SerializeError(
                "restore target's event pool exceeds the checkpoint's");
        while (pool.size() < pstats.created) {
            pool.push_back(std::make_unique<PooledEvent>());
            pool.back()->_pooled = true;
        }
        freeList = nullptr;
        for (auto &node : pool) {
            node->nextFree = freeList;
            freeList = node.get();
        }
    }
}

Event::~Event()
{
#ifndef NDEBUG
    if (_scheduled) {
        // A scheduled event's queue entry points here; destruction
        // would leave that pointer dangling. We cannot throw from a
        // destructor, so fail fast and loudly in debug builds.
        std::fprintf(stderr,
                     "panic: event '%s' destroyed while scheduled "
                     "(tick %llu)\n",
                     _name, static_cast<unsigned long long>(_when));
        std::abort();
    }
#endif
}

EventQueue::EventQueue()
    : ring(numBuckets), ringBitmap(numBuckets / 64, 0)
{
}

EventQueue::~EventQueue()
{
    // Mark every still-live event idle so that embedded events owned
    // by components destroyed after the queue do not trip the
    // destroyed-while-scheduled check; release pending pooled
    // callables so their captures are destroyed exactly once.
    auto finish = [&](const Entry &e) {
        if (tombstones.count(e.seq))
            return; // dead entry: the event may be gone, never touch it
        e.ev->_scheduled = false;
        e.ev->_inRing = false;
        if (e.ev->_pooled)
            static_cast<PooledEvent *>(e.ev)->destroyCallable();
    };
    for (const Bucket &bucket : ring)
        for (std::size_t i = bucket.head; i < bucket.entries.size(); ++i)
            finish(bucket.entries[i]);
    while (!farHeap.empty()) {
        finish(farHeap.top());
        farHeap.pop();
    }
    // ~PooledEvent destroys any callable we missed; the pool vector
    // frees the nodes themselves.
}

PooledEvent *
EventQueue::growPool()
{
    ++pstats.created;
    pool.push_back(std::make_unique<PooledEvent>());
    pool.back()->_pooled = true;
    return pool.back().get();
}

void
EventQueue::scheduleFar(Event *ev, Tick when)
{
    farHeap.push(Entry{when, ev->_seq, ev});
    ev->_inRing = false;
}

void
EventQueue::schedulePanic(const Event *ev, Tick when) const
{
    if (ev->_scheduled)
        panic("event '", ev->name(), "' scheduled twice");
    panic("event '", ev->name(), "' scheduled in the past (", when,
          " < ", curTick, ")");
}

void
EventQueue::tidyBucket(Bucket &bucket)
{
    if (bucket.sorted == bucket.entries.size())
        return;
    std::sort(bucket.entries.begin() +
                  static_cast<std::ptrdiff_t>(bucket.sorted),
              bucket.entries.end());
    std::inplace_merge(bucket.entries.begin() +
                           static_cast<std::ptrdiff_t>(bucket.head),
                       bucket.entries.begin() +
                           static_cast<std::ptrdiff_t>(bucket.sorted),
                       bucket.entries.end());
    bucket.sorted = bucket.entries.size();
}

EventQueue::Entry &
EventQueue::bucketFront(unsigned b)
{
    Bucket &bucket = ring[b];
    tidyBucket(bucket);
    return bucket.entries[bucket.head];
}

void
EventQueue::resetBucket(unsigned b)
{
    Bucket &bucket = ring[b];
    bucket.entries.clear(); // keeps capacity for the next burst
    bucket.head = 0;
    bucket.sorted = 0;
    ringBitmap[b >> 6] &= ~(std::uint64_t(1) << (b & 63));
    // This may have been the earliest occupied bucket; rescan lazily.
    soonestSlot = invalidSlot;
}

void
EventQueue::popBucketFront(unsigned b)
{
    Bucket &bucket = ring[b];
    if (++bucket.head == bucket.entries.size())
        resetBucket(b);
    --ringCount;
}

void
EventQueue::unlink(Event *ev)
{
    ev->_scheduled = false;
    if (ev->_inRing) {
        unsigned b = (ev->_when >> bucketShift) & bucketMask;
        Bucket &bucket = ring[b];
        std::size_t i = bucket.head;
        for (; i < bucket.entries.size(); ++i)
            if (bucket.entries[i].seq == ev->_seq)
                break;
        if (i == bucket.entries.size())
            panic("event '", ev->name(), "' missing from ring bucket");
        bucket.entries.erase(bucket.entries.begin() +
                             static_cast<std::ptrdiff_t>(i));
        if (i < bucket.sorted)
            --bucket.sorted;
        if (bucket.empty())
            resetBucket(b);
        --ringCount;
        ev->_inRing = false;
    } else {
        // Far-heap entries are dropped lazily by sequence number; the
        // event pointer is never dereferenced again, so the caller is
        // free to destroy the event immediately after descheduling.
        tombstones.insert(ev->_seq);
    }
}

void
EventQueue::deschedule(Event *ev)
{
    if (!ev->_scheduled)
        panic("descheduling idle event '", ev->name(), "'");
    unlink(ev);
    // A cancelled one-shot will never fire: drop its callable and
    // recycle the node now.
    if (ev->_pooled)
        releasePooled(static_cast<PooledEvent *>(ev));
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    // deschedule-if-scheduled + schedule: an idle event is accepted.
    // A pooled event keeps its callable — it must not bounce through
    // the free list on its way to the new tick.
    if (ev->_scheduled)
        unlink(ev);
    schedule(ev, when);
}

void
EventQueue::skipDead()
{
    while (!farHeap.empty() && !tombstones.empty()) {
        auto it = tombstones.find(farHeap.top().seq);
        if (it == tombstones.end())
            return;
        tombstones.erase(it);
        farHeap.pop();
    }
}

unsigned
EventQueue::findOccupied(unsigned from, unsigned to) const
{
    // Scan the occupancy bitmap for the first set bit in [from, to).
    unsigned w = from >> 6;
    std::uint64_t word = ringBitmap[w] & (~std::uint64_t(0) << (from & 63));
    while (true) {
        if (word) {
            unsigned b = (w << 6) +
                         static_cast<unsigned>(__builtin_ctzll(word));
            return b < to ? b : numBuckets;
        }
        ++w;
        if ((w << 6) >= to)
            return numBuckets;
        word = ringBitmap[w];
    }
}

bool
EventQueue::ringPeek(unsigned &bucket_out) const
{
    if (ringCount == 0)
        return false;
    if (soonestSlot != invalidSlot) {
        bucket_out = static_cast<unsigned>(soonestSlot) & bucketMask;
        return true;
    }
    // Buckets wrap: indices >= the current bucket belong to this
    // revolution, indices below it to the next, so scanning
    // [cur, numBuckets) then [0, cur) visits windows in time order.
    std::uint64_t cur_slot = curTick >> bucketShift;
    unsigned cur = static_cast<unsigned>(cur_slot) & bucketMask;
    unsigned b = findOccupied(cur, numBuckets);
    if (b == numBuckets) {
        b = findOccupied(0, cur);
        if (b == numBuckets)
            return false; // unreachable while ringCount > 0
        soonestSlot = cur_slot + (numBuckets - cur) + b;
    } else {
        soonestSlot = cur_slot + (b - cur);
    }
    bucket_out = b;
    return true;
}

Tick
EventQueue::nextEventTick()
{
    unsigned rb = 0;
    bool has_ring = ringPeek(rb);
    if (!tombstones.empty())
        skipDead();
    bool has_far = !farHeap.empty();
    if (!has_ring && !has_far)
        return maxTick;
    if (has_ring && (!has_far || bucketFront(rb) < farHeap.top()))
        return bucketFront(rb).when;
    return farHeap.top().when;
}

EventQueue::StepOutcome
EventQueue::tryStep(Tick limit)
{
    unsigned rb = 0;
    bool has_ring = ringPeek(rb);
    if (!tombstones.empty())
        skipDead();
    bool has_far = !farHeap.empty();
    if (!has_ring && !has_far)
        return StepOutcome::drained;

    bool use_ring = has_ring;
    if (has_ring && has_far)
        use_ring = bucketFront(rb) < farHeap.top();

    Tick when = use_ring ? bucketFront(rb).when : farHeap.top().when;
    if (when >= limit) {
        curTick = limit;
        return StepOutcome::atLimit;
    }

    Entry e;
    if (use_ring) {
        e = bucketFront(rb);
        popBucketFront(rb);
        e.ev->_inRing = false;
    } else {
        e = farHeap.top();
        farHeap.pop();
    }
#ifndef NDEBUG
    // Simulated time is monotonic; firing into the past means the
    // two-tier bookkeeping lost track of an earlier pending event.
    if (e.when < curTick)
        panic("event '", e.ev->name(), "' fired at tick ", e.when,
              " with simulated time already at ", curTick);
#endif
    curTick = e.when;

    Event *ev = e.ev;
    ev->_scheduled = false;
    ++nProcessed;
    bool pooled = ev->_pooled;
    // Devirtualized dispatch for the pooled fast path: one indirect
    // call instead of a vtable hop into the same function pointer.
    if (pooled)
        static_cast<PooledEvent *>(ev)->invokeFn(
            static_cast<PooledEvent *>(ev));
    else
        ev->process();
    // The event may have (re)scheduled itself inside process(); only
    // recycle a pooled event once it is really done.
    if (pooled && !ev->_scheduled)
        releasePooled(static_cast<PooledEvent *>(ev));
    return StepOutcome::fired;
}

bool
EventQueue::step()
{
    return tryStep(maxTick) == StepOutcome::fired;
}

Tick
EventQueue::run(Tick limit)
{
    while (tryStep(limit) == StepOutcome::fired) {
    }
    return curTick;
}

Tick
EventQueue::runWhile(const std::function<bool()> &cond, Tick limit)
{
    while (cond() && tryStep(limit) == StepOutcome::fired) {
    }
    return curTick;
}

} // namespace hwdp::sim

#include "testing/machine_differ.hh"

#include <sstream>

#include "os/fault_handler.hh"
#include "os/file_system.hh"
#include "os/kernel.hh"
#include "os/page_table.hh"
#include "os/pte.hh"
#include "system/system.hh"

namespace hwdp::testing {

bool
PageState::operator==(const PageState &o) const
{
    return resident == o.resident && fileBacked == o.fileBacked &&
           fileId == o.fileId && fileIndex == o.fileIndex &&
           dirty == o.dirty && synced == o.synced && rmapOk == o.rmapOk &&
           lruLinked == o.lruLinked && inPageCache == o.inPageCache;
}

void
quiesce(system::System &sys)
{
    sys.stopKthreads();
    sys.eventQueue().run();

    // Untimed kpted-equivalent pass. Deliberately the *guided* scan: a
    // faulty component that forgets to mark the PMD/PUD LBA bits will
    // leave its pages unsynced here, and the differ flags them.
    os::Kernel &kern = sys.kernel();
    for (const auto &as : kern.addressSpaces()) {
        for (const auto &vma : as->vmas()) {
            as->pageTable().scanUnsynced(
                vma->start, vma->end,
                [&](VAddr va, os::EntryRef ref) {
                    kern.syncHardwareHandledPte(*as, va, ref);
                });
        }
    }
    // Syncing may enqueue writeback or shootdown events; drain again.
    sys.eventQueue().run();
}

namespace {

inline void
fold(std::uint64_t &h, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 1099511628211ULL;
    }
}

std::uint64_t
packFlags(const PageState &ps)
{
    return (std::uint64_t(ps.resident) << 0) |
           (std::uint64_t(ps.fileBacked) << 1) |
           (std::uint64_t(ps.dirty) << 2) |
           (std::uint64_t(ps.synced) << 3) |
           (std::uint64_t(ps.rmapOk) << 4) |
           (std::uint64_t(ps.lruLinked) << 5) |
           (std::uint64_t(ps.inPageCache) << 6);
}

std::string
describe(const PageState &ps)
{
    std::ostringstream os;
    if (!ps.resident) {
        os << "non-resident";
    } else {
        os << "resident";
        os << (ps.synced ? " synced" : " UNSYNCED");
        if (ps.dirty)
            os << " dirty";
        os << (ps.rmapOk ? " rmap-ok" : " rmap-BROKEN");
        if (ps.lruLinked)
            os << " lru";
        if (ps.inPageCache)
            os << " pagecache";
    }
    if (ps.fileBacked)
        os << " file=" << ps.fileId << ":" << ps.fileIndex;
    else
        os << " anon:" << ps.fileIndex;
    return os.str();
}

} // namespace

MachineState
snapshot(system::System &sys, const std::string &label)
{
    using namespace os::pte;

    MachineState ms;
    ms.label = label;
    ms.stateHash = 14695981039346656037ULL;

    os::Kernel &kern = sys.kernel();
    for (const auto &as : kern.addressSpaces()) {
        AsState ast;
        ast.asid = as->id();
        for (const auto &vma : as->vmas()) {
            VmaState vs;
            vs.start = vma->start;
            vs.end = vma->end;
            vs.anon = vma->file == nullptr;
            vs.pages.reserve(vma->numPages());
            for (std::uint64_t i = 0; i < vma->numPages(); ++i) {
                VAddr va = vma->start + (i << pageShift);
                Entry e = as->pageTable().readPte(va);

                PageState ps;
                ps.fileBacked = vma->file != nullptr;
                ps.fileId = vma->file ? vma->file->id() : 0;
                ps.fileIndex =
                    vma->file ? vma->fileIndexOf(va) : i;
                if (isPresent(e)) {
                    ps.resident = true;
                    ps.synced = !hasLbaBit(e);
                    const os::Page &pg = kern.page(pfnOf(e));
                    ps.dirty = pg.dirty || isDirty(e);
                    ps.rmapOk =
                        pg.as == as.get() && pg.vaddr == va;
                    ps.lruLinked = pg.lruLinked;
                    ps.inPageCache = pg.inPageCache;
                }
                fold(ms.stateHash, ast.asid);
                fold(ms.stateHash, ps.fileIndex);
                fold(ms.stateHash, ps.fileId);
                fold(ms.stateHash, packFlags(ps));
                vs.pages.push_back(ps);
            }
            ast.vmas.push_back(std::move(vs));
        }
        ms.spaces.push_back(std::move(ast));
    }

    ms.totalAppOps = sys.totalAppOps();
    ms.oomKills = kern.oomKills();
    ms.faultsServiced = kern.majorFaults() + kern.minorFaults();
    if (sys.smu())
        ms.faultsServiced += sys.smu()->handled();
    if (sys.softwareSmu())
        ms.faultsServiced += sys.softwareSmu()->handled();
    return ms;
}

DiffResult
diff(const MachineState &a, const MachineState &b, const DiffOptions &opt)
{
    DiffResult r;
    std::ostringstream os;

    auto divergence = [&](const std::string &line) {
        ++r.divergences;
        if (r.divergences <= opt.maxReports)
            os << "  " << line << "\n";
    };

    os << "diff " << a.label << " vs " << b.label << ":\n";

    if (a.spaces.size() != b.spaces.size()) {
        divergence("address space count: " +
                   std::to_string(a.spaces.size()) + " vs " +
                   std::to_string(b.spaces.size()));
    } else {
        for (std::size_t s = 0; s < a.spaces.size(); ++s) {
            const AsState &as_a = a.spaces[s];
            const AsState &as_b = b.spaces[s];
            if (as_a.vmas.size() != as_b.vmas.size()) {
                divergence("as " + std::to_string(as_a.asid) +
                           ": vma count " +
                           std::to_string(as_a.vmas.size()) + " vs " +
                           std::to_string(as_b.vmas.size()));
                continue;
            }
            for (std::size_t v = 0; v < as_a.vmas.size(); ++v) {
                const VmaState &vm_a = as_a.vmas[v];
                const VmaState &vm_b = as_b.vmas[v];
                if (vm_a.pages.size() != vm_b.pages.size()) {
                    divergence("as " + std::to_string(as_a.asid) +
                               " vma " + std::to_string(v) +
                               ": page count " +
                               std::to_string(vm_a.pages.size()) +
                               " vs " +
                               std::to_string(vm_b.pages.size()));
                    continue;
                }
                for (std::size_t p = 0; p < vm_a.pages.size(); ++p) {
                    if (vm_a.pages[p] == vm_b.pages[p])
                        continue;
                    std::ostringstream line;
                    line << "as " << as_a.asid << " vma " << v
                         << " page " << p << " (va 0x" << std::hex
                         << (vm_a.start + (p << pageShift))
                         << std::dec << "): "
                         << describe(vm_a.pages[p]) << "  |  "
                         << describe(vm_b.pages[p]);
                    divergence(line.str());
                }
            }
        }
    }

    if (a.totalAppOps != b.totalAppOps)
        divergence("total app ops: " + std::to_string(a.totalAppOps) +
                   " vs " + std::to_string(b.totalAppOps));
    if (a.oomKills != b.oomKills)
        divergence("oom kills: " + std::to_string(a.oomKills) + " vs " +
                   std::to_string(b.oomKills));
    if (opt.compareFaultTotals && a.faultsServiced != b.faultsServiced)
        divergence("faults serviced: " +
                   std::to_string(a.faultsServiced) + " vs " +
                   std::to_string(b.faultsServiced));

    if (r.divergences > opt.maxReports)
        os << "  ... " << (r.divergences - opt.maxReports)
           << " further divergences suppressed\n";

    r.equivalent = r.divergences == 0;
    r.report = r.equivalent ? std::string() : os.str();
    return r;
}

void
dumpMachineStats(system::System &sys, std::ostream &os)
{
    os::Kernel &kern = sys.kernel();
    kern.stats().dump(os);
    kern.scheduler().stats().dump(os);
    kern.blockLayer().stats().dump(os);
    for (unsigned d = 0; d < sys.numSsds(); ++d)
        sys.ssdAt(d).stats().dump(os);
    if (core::Smu *smu = sys.smu()) {
        smu->stats().dump(os);
        smu->hostController().stats().dump(os);
    }
    if (core::SoftwareSmu *sw = sys.softwareSmu())
        sw->stats().dump(os);
    for (unsigned c = 0; c < sys.config().nLogical; ++c)
        sys.core(c).mmu().stats().dump(os);
}

} // namespace hwdp::testing

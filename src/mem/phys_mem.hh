/**
 * @file
 * Physical memory frame pool.
 *
 * Models the machine's DRAM as a pool of 4 KB frames. Only frame
 * accounting is simulated — page payloads never exist. The OS reclaim
 * logic and the SMU free-page queue both draw from this pool, so the
 * pool is the ground truth for "how much memory the machine has",
 * which is what the paper's dataset:memory ratios control.
 */

#ifndef HWDP_MEM_PHYS_MEM_HH
#define HWDP_MEM_PHYS_MEM_HH

#include <cstdint>
#include <vector>

#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace hwdp::mem {

class PhysMem : public sim::SimObject
{
  public:
    /** Sentinel for "no frame". */
    static constexpr Pfn invalidPfn = ~Pfn(0);

    /**
     * @param n_frames Total number of 4 KB frames in the machine.
     * @param reserved Frames set aside for the kernel image / fixed
     *                 structures; never allocatable.
     */
    PhysMem(sim::EventQueue &eq, std::uint64_t n_frames,
            std::uint64_t reserved = 0);

    /** Allocate one frame; returns invalidPfn when exhausted. */
    Pfn alloc();

    /** Return a frame to the pool. @pre pfn was allocated. */
    void free(Pfn pfn);

    /** True when @p pfn is currently allocated. */
    bool isAllocated(Pfn pfn) const;

    std::uint64_t totalFrames() const { return nFrames; }
    std::uint64_t freeFrames() const { return freeList.size(); }
    std::uint64_t allocatedFrames() const
    {
        return nFrames - reservedFrames - freeList.size();
    }
    std::uint64_t reservedCount() const { return reservedFrames; }

    /** Total bytes of allocatable memory. */
    std::uint64_t capacityBytes() const
    {
        return (nFrames - reservedFrames) * pageSize;
    }

    /**
     * Checkpoint the allocation state. The free list is ordered —
     * alloc() pops the back — so it round-trips verbatim; frame count
     * and reservation are boot structure and only verified.
     */
    void serialize(sim::Serializer &s);

  private:
    std::uint64_t nFrames;
    std::uint64_t reservedFrames;
    std::vector<Pfn> freeList;
    std::vector<bool> allocated;

    sim::Counter &allocs;
    sim::Counter &frees;
    sim::Counter &failedAllocs;
};

} // namespace hwdp::mem

#endif // HWDP_MEM_PHYS_MEM_HH

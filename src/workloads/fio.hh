/**
 * @file
 * FIO with the mmap engine: random 4 KB reads over a mapped file.
 *
 * The paper's microbenchmark (Figures 12, 16, 17 and the latency
 * analyses): each application op is one 4 KB access to a uniformly
 * random page of the mapped file, preceded by the small per-I/O
 * bookkeeping loop FIO itself runs.
 */

#ifndef HWDP_WORKLOADS_FIO_HH
#define HWDP_WORKLOADS_FIO_HH

#include "os/vma.hh"
#include "workloads/workload.hh"

namespace hwdp::workloads {

class FioWorkload : public Workload
{
  public:
    /**
     * @param region   The mmap'ed area to read.
     * @param n_ops    Application ops (4 KB reads) to perform; 0 means
     *                 run until the simulation stops the thread.
     * @param loop_instructions Per-op user work (FIO's engine loop).
     * @param sequential Read pages in order instead of randomly
     *                 (exercises the SMU's sequential prefetch).
     */
    FioWorkload(os::Vma *region, std::uint64_t n_ops,
                std::uint64_t loop_instructions = 300,
                bool sequential = false);

    Op next(sim::Rng &rng) override;
    const char *label() const override { return "fio_randread"; }

    void serialize(sim::Serializer &s) override;

  private:
    enum class Phase { loop, access, copy };

    os::Vma *region;
    std::uint64_t remaining;
    bool unbounded;
    ComputeSpec loopSpec;
    ComputeSpec copySpec;
    Phase phase = Phase::loop;
    VAddr curPage = 0;
    bool sequential;
    std::uint64_t seqIndex = 0;
};

} // namespace hwdp::workloads

#endif // HWDP_WORKLOADS_FIO_HH

/**
 * @file
 * Page Miss Status Holding Registers (PMSHR).
 *
 * A fully-associative CAM keyed by PTE physical address — the unique
 * identifier of a virtual page's miss (Section III-C). Duplicate
 * misses to the same page coalesce onto the existing entry, so no
 * page aliases can be created by concurrent threads. The entry count
 * bounds the SMU's outstanding I/O; the paper picks 32 empirically
 * (the ablation bench sweeps this).
 */

#ifndef HWDP_CORE_PMSHR_HH
#define HWDP_CORE_PMSHR_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "cpu/mmu.hh"
#include "sim/types.hh"

namespace hwdp::sim {
class Serializer;
}

namespace hwdp::core {

class Pmshr
{
  public:
    struct Entry
    {
        bool valid = false;
        PAddr pteAddr = 0;
        cpu::PageMissRequest req;
        Pfn pfn = 0;
        Tick started = 0;
        /** An NVMe error completion was already retried once. */
        bool retried = false;
        /** Coalesced waiters (pending page-table walks). */
        std::vector<std::function<void(bool)>> waiters;
    };

    explicit Pmshr(unsigned n_entries = 32);

    /** CAM lookup by PTE address; -1 when absent. */
    int lookup(PAddr pte_addr) const;

    /** Allocate an entry; -1 when full. */
    int allocate(PAddr pte_addr);

    Entry &entry(int idx);
    const Entry &entry(int idx) const;

    /** Whether slot @p idx currently holds a valid entry (entry()
     *  panics on invalid slots; the invariant checker probes first). */
    bool
    validAt(int idx) const
    {
        return idx >= 0 &&
               static_cast<std::size_t>(idx) < entries.size() &&
               entries[static_cast<std::size_t>(idx)].valid;
    }

    /** Release an entry after broadcast. */
    void invalidate(int idx);

    unsigned capacity() const
    {
        return static_cast<unsigned>(entries.size());
    }
    unsigned occupancy() const { return used; }
    bool full() const { return used == entries.size(); }

    /** Register-file size in bits (for the area model, Section VI-D). */
    static constexpr unsigned entryBits = 300;

    std::uint64_t coalescedCount() const { return nCoalesced; }
    void noteCoalesced() { ++nCoalesced; }

    /**
     * Fault injection: when the hook returns true, allocate() behaves
     * as if the CAM were full (forces the bounce-to-OS path).
     */
    void setFullHook(std::function<bool()> fn)
    {
        fullHook = std::move(fn);
    }

    /**
     * Checkpoint the coalescing counter. Entries hold waiter closures
     * and in-flight requests, so the CAM must be empty at quiesce.
     */
    void serialize(sim::Serializer &s);

  private:
    std::function<bool()> fullHook;
    std::vector<Entry> entries;
    unsigned used = 0;
    std::uint64_t nCoalesced = 0;
};

} // namespace hwdp::core

#endif // HWDP_CORE_PMSHR_HH

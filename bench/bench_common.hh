/**
 * @file
 * Shared setup for the figure/table reproduction benches.
 *
 * Every bench builds scaled machines through these helpers so the
 * scaling story is in one place: the simulated machine keeps the
 * paper's ratios (dataset:memory, queue depths per core, watermark
 * fractions) with absolute sizes divided by 64 relative to the
 * evaluation box (32 GB DRAM -> 512 MB, 64 GB dataset -> 1 GB).
 */

#ifndef HWDP_BENCH_BENCH_COMMON_HH
#define HWDP_BENCH_BENCH_COMMON_HH

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/sweep_runner.hh"
#include "metrics/report.hh"
#include "system/checkpoint.hh"
#include "system/system.hh"
#include "workloads/fio.hh"
#include "workloads/spec_like.hh"
#include "workloads/ycsb.hh"

namespace hwdp::bench {

/** Default scaled memory: 512 MB. */
inline constexpr std::uint64_t defaultMemFrames = 128 * 1024;

/** Default scaled dataset: 1 GB (2:1 against memory, Fig. 13 setup). */
inline constexpr std::uint64_t defaultDatasetPages = 256 * 1024;

inline system::MachineConfig
paperConfig(system::PagingMode mode,
            const std::string &ssd_profile = "zssd",
            std::uint64_t mem_frames = defaultMemFrames)
{
    system::MachineConfig cfg;
    cfg.mode = mode;
    cfg.ssdProfile = ssd_profile;
    cfg.memFrames = mem_frames;
    // Paper operating points, scaled where they track memory size:
    // free page queue 4096 entries (0.05% of their 32 GB ~ keep the
    // entry count, it is already small against 512 MB), kpoold 4 ms,
    // kpted 1 s scaled by the 64x memory ratio ~ 16 ms (the LRU
    // rotates proportionally faster on the scaled machine).
    cfg.smu.freeQueueCapacity = 4096;
    cfg.kpooldPeriod = milliseconds(4.0);
    cfg.kpooldBatch = 1024;
    cfg.kptedPeriod = milliseconds(16.0);
    return cfg;
}

struct FioRun
{
    double meanLatencyUs = 0;
    double p99LatencyUs = 0;
    double opsPerSec = 0;
    double userIpc = 0;
    std::uint64_t hwHandled = 0;
    std::uint64_t osFaults = 0;
    std::uint64_t pwcHits = 0;
    std::uint64_t pwcMisses = 0;
};

/**
 * Run FIO random reads: @p threads threads, @p ops_per_thread each.
 * The default dataset is 32x the scaled memory so reads stay cold
 * (the paper's latency experiment measures cold misses).
 */
inline FioRun
runFio(system::MachineConfig cfg, unsigned threads,
       std::uint64_t ops_per_thread,
       std::uint64_t dataset_pages = 32 * defaultMemFrames)
{
    system::System sys(cfg);
    auto mf = sys.mapDataset("fio.dat", dataset_pages);
    for (unsigned t = 0; t < threads; ++t) {
        auto *wl =
            sys.makeWorkload<workloads::FioWorkload>(mf.vma,
                                                     ops_per_thread);
        sys.addThread(*wl, t, *mf.as);
    }
    sys.runUntilThreadsDone(seconds(120.0));

    FioRun r;
    double lat_sum = 0, p99_sum = 0;
    for (auto &tc : sys.threads()) {
        lat_sum += tc->faultedOpLatencyUs().mean();
        p99_sum += tc->faultedOpLatencyUs().quantile(0.99);
        r.hwHandled += tc->hwHandledOps();
    }
    r.meanLatencyUs = lat_sum / threads;
    r.p99LatencyUs = p99_sum / threads;
    r.opsPerSec = sys.throughputOpsPerSec();
    r.userIpc = sys.aggregateUserIpc();
    r.osFaults = sys.kernel().majorFaults();
    r.pwcHits = sys.totalPwcHits();
    r.pwcMisses = sys.totalPwcMisses();
    return r;
}

struct KvRun
{
    double opsPerSec = 0;
    double userIpc = 0;
    std::uint64_t hwHandled = 0;
    std::uint64_t osFaults = 0;
    Tick elapsed = 0;
    Tick threadTicks = 0;     ///< Sum of thread wall times.
    Tick faultStallTicks = 0; ///< Sum of time resolving page misses.
};

/**
 * Run a KV workload ('U' = DBBench readrandom, 'A'..'F' = YCSB) with
 * @p threads threads sharing one store.
 */
inline KvRun
runKv(system::MachineConfig cfg, char type, unsigned threads,
      std::uint64_t ops_per_thread,
      std::uint64_t dataset_pages = defaultDatasetPages,
      bool warm = true)
{
    system::System sys(cfg);
    auto mf = sys.mapDataset("kv.dat", dataset_pages);
    if (warm) {
        // Steady state, not the cold phase: the paper's KV runs touch
        // the dataset many times over, so memory starts populated (up
        // to ~80%, leaving headroom for the free page queue and
        // watermarks).
        // Preload the *suffix*: under scrambled-zipfian popularity any
        // region is equivalent, and "latest" (YCSB-D) favours recent
        // (high) keys.
        std::uint64_t limit = cfg.memFrames * 8 / 10;
        std::uint64_t n = std::min(dataset_pages, limit);
        for (std::uint64_t i = dataset_pages - n; i < dataset_pages;
             ++i) {
            VAddr va = mf.vma->start + i * pageSize;
            Pfn pfn = sys.allocFrameInterleaved(i);
            if (pfn == mem::PhysMem::invalidPfn)
                break;
            sys.kernel().installPage(*mf.as, *mf.vma, va, pfn, true);
        }
    }
    auto *wal = sys.createFile("kv.wal", 64 * 1024);
    auto *store = new workloads::KvStore(mf.vma, wal, dataset_pages);
    // Keep the store alive for the system's lifetime.
    struct StoreHolder : workloads::Workload
    {
        std::unique_ptr<workloads::KvStore> s;
        workloads::Op next(sim::Rng &) override
        {
            return workloads::Op::makeDone();
        }
        const char *label() const override { return "holder"; }
    };
    auto *holder = sys.makeWorkload<StoreHolder>();
    holder->s.reset(store);

    for (unsigned t = 0; t < threads; ++t) {
        workloads::Workload *wl;
        if (type == 'U') {
            wl = sys.makeWorkload<workloads::DbBenchReadRandom>(
                *store, ops_per_thread);
        } else {
            wl = sys.makeWorkload<workloads::YcsbWorkload>(
                type, *store, ops_per_thread);
        }
        sys.addThread(*wl, t, *mf.as);
    }
    Tick t0 = sys.now();
    sys.runUntilThreadsDone(seconds(240.0));

    KvRun r;
    r.opsPerSec = sys.throughputOpsPerSec();
    r.userIpc = sys.aggregateUserIpc();
    for (auto &tc : sys.threads()) {
        r.hwHandled += tc->hwHandledOps();
        r.threadTicks += (tc->done() ? tc->finishTick() : sys.now()) -
                         tc->startTick();
        r.faultStallTicks += tc->faultStallTicks();
    }
    r.osFaults = sys.kernel().majorFaults();
    r.elapsed = sys.now() - t0;
    return r;
}

// ---- Warm-fork sweeps --------------------------------------------------
//
// A sweep whose points share a warm-up prefix can run that prefix once
// per family, checkpoint the warmed machine, and fork every point from
// the blob (system/checkpoint.hh). Both the straight and the forked
// path pass through the same quiesce → resumeKthreads cycle at the
// warm boundary, so the measured phase is byte-identical either way —
// the fork only saves host time, never changes a result.

struct WarmFork
{
    /** Warm-up ops per thread; 0 disables the warm phase entirely. */
    std::uint64_t warmOps = 0;

    /**
     * Directory holding the per-family blobs. Empty: the warm phase
     * runs inline in every point (the cold baseline). Set: a point
     * restores its family's blob when present and saves it otherwise.
     */
    std::string checkpointDir;

    bool enabled() const { return warmOps > 0; }
    bool forked() const { return enabled() && !checkpointDir.empty(); }
};

/**
 * Bench command line: --warm-ops=N and --checkpoint-dir=PATH, with
 * HWDP_WARM_OPS / HWDP_CHECKPOINT_DIR environment fallbacks (flags
 * win). Unrecognised arguments are ignored so benches can layer their
 * own.
 */
inline WarmFork
parseWarmFork(int argc, char **argv, std::uint64_t default_warm_ops = 0)
{
    WarmFork wf;
    wf.warmOps = default_warm_ops;
    if (const char *env = std::getenv("HWDP_WARM_OPS"))
        wf.warmOps = std::strtoull(env, nullptr, 10);
    if (const char *env = std::getenv("HWDP_CHECKPOINT_DIR"))
        wf.checkpointDir = env;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a.rfind("--warm-ops=", 0) == 0)
            wf.warmOps = std::strtoull(a.c_str() + 11, nullptr, 10);
        else if (a.rfind("--checkpoint-dir=", 0) == 0)
            wf.checkpointDir = a.substr(17);
    }
    return wf;
}

/**
 * Blob path for one warm family. The config hash makes the name
 * self-invalidating: change the machine shape or seed and the old
 * blob simply stops being found (and would be rejected if forced).
 */
inline std::string
warmCheckpointPath(const WarmFork &wf, const char *family,
                   const system::MachineConfig &cfg, unsigned threads)
{
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(
                      system::Checkpoint::configHash(cfg)));
    return wf.checkpointDir + "/" + family + "-" + hex + "-t" +
           std::to_string(threads) + "-w" + std::to_string(wf.warmOps) +
           ".ckpt";
}

/**
 * Run the FIO warm phase for one (cfg, threads) family and save the
 * blob. Benches that prewarm their families in parallel call this
 * once per family before the sweep; runFioWarm then restores.
 */
inline metrics::CheckpointRow
warmFioFamily(const system::MachineConfig &cfg, unsigned threads,
              const WarmFork &wf, const char *label,
              std::uint64_t dataset_pages = 32 * defaultMemFrames)
{
    system::System sys(cfg);
    auto mf = sys.mapDataset("fio.dat", dataset_pages);
    for (unsigned t = 0; t < threads; ++t) {
        auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma,
                                                            wf.warmOps);
        sys.addThread(*wl, t, *mf.as);
    }
    sys.runUntilThreadsDone(seconds(240.0));
    system::CheckpointStats st;
    system::Checkpoint::saveFile(
        sys, warmCheckpointPath(wf, "fio", cfg, threads), &st);
    return {label, "save", st.blobBytes, st.tick};
}

/**
 * FIO with a warm prefix of @p wf.warmOps per thread ahead of the
 * measured @p ops_per_thread. Forked mode (wf.forked()) restores the
 * family blob when present — and runs + saves the warm phase when not,
 * so the first point of a family warms it for the rest. The returned
 * metrics cover the measurement threads only.
 * @param ckpt_row Optional: filled with the save/restore this point
 *                 performed (caller-owned storage; SweepRunner jobs
 *                 must not share a sink).
 */
inline FioRun
runFioWarm(system::MachineConfig cfg, unsigned threads,
           std::uint64_t ops_per_thread, const WarmFork &wf,
           const char *label = "fio",
           std::uint64_t dataset_pages = 32 * defaultMemFrames,
           metrics::CheckpointRow *ckpt_row = nullptr)
{
    system::System sys(cfg);
    auto mf = sys.mapDataset("fio.dat", dataset_pages);
    // The warm threads are part of the boot recipe on BOTH paths: a
    // restore target must be built exactly as the saved machine was.
    for (unsigned t = 0; t < threads; ++t) {
        auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma,
                                                            wf.warmOps);
        sys.addThread(*wl, t, *mf.as);
    }

    bool restored = false;
    std::string path;
    system::CheckpointStats st;
    if (wf.forked()) {
        path = warmCheckpointPath(wf, "fio", cfg, threads);
        restored = system::Checkpoint::restoreFile(sys, path, &st);
        if (restored && ckpt_row)
            *ckpt_row = {label, "restore", st.blobBytes, st.tick};
    }
    if (!restored && wf.enabled()) {
        sys.runUntilThreadsDone(seconds(240.0));
        if (!path.empty()) {
            system::Checkpoint::saveFile(sys, path, &st);
            if (ckpt_row)
                *ckpt_row = {label, "save", st.blobBytes, st.tick};
        } else {
            sys.quiesce();
        }
    }
    if (wf.enabled())
        sys.resumeKthreads();

    std::size_t meas0 = sys.threads().size();
    for (unsigned t = 0; t < threads; ++t) {
        auto *wl = sys.makeWorkload<workloads::FioWorkload>(
            mf.vma, ops_per_thread);
        sys.addThread(*wl, t, *mf.as);
    }
    sys.runUntilThreadsDone(seconds(240.0));

    FioRun r;
    double lat_sum = 0, p99_sum = 0;
    std::uint64_t ops = 0;
    Tick lo = ~Tick(0), hi = 0;
    for (std::size_t i = meas0; i < sys.threads().size(); ++i) {
        auto &tc = sys.threads()[i];
        lat_sum += tc->faultedOpLatencyUs().mean();
        p99_sum += tc->faultedOpLatencyUs().quantile(0.99);
        r.hwHandled += tc->hwHandledOps();
        ops += tc->appOps();
        lo = std::min(lo, tc->startTick());
        hi = std::max(hi, tc->done() ? tc->finishTick() : sys.now());
    }
    r.meanLatencyUs = lat_sum / threads;
    r.p99LatencyUs = p99_sum / threads;
    r.opsPerSec = hi > lo
                      ? static_cast<double>(ops) / toSeconds(hi - lo)
                      : 0.0;
    r.userIpc = sys.aggregateUserIpc();
    r.osFaults = sys.kernel().majorFaults();
    r.pwcHits = sys.totalPwcHits();
    r.pwcMisses = sys.totalPwcMisses();
    return r;
}

// ---- Parallel sweeps ---------------------------------------------------
//
// The sweep-shaped benches (Figs. 13/14/16/17, the ablations) evaluate
// many independent machines; each job below is one bench point. The
// helpers fan the points out over a SweepRunner thread pool — results
// come back in job order and are byte-identical to a sequential run.

struct FioJob
{
    system::MachineConfig cfg;
    unsigned threads = 1;
    std::uint64_t opsPerThread = 0;
    std::uint64_t datasetPages = 32 * defaultMemFrames;
};

inline std::vector<FioRun>
sweepFio(const std::vector<FioJob> &jobs, unsigned parallelism = 0,
         std::vector<SweepRunner::JobTiming> *timings = nullptr)
{
    SweepRunner runner(parallelism);
    return runner.map<FioRun>(
        jobs.size(),
        [&](std::size_t i) {
            const FioJob &j = jobs[i];
            return runFio(j.cfg, j.threads, j.opsPerThread,
                          j.datasetPages);
        },
        timings);
}

struct KvJob
{
    system::MachineConfig cfg;
    char type = 'C'; ///< 'U' = DBBench readrandom, 'A'..'F' = YCSB.
    unsigned threads = 1;
    std::uint64_t opsPerThread = 0;
    std::uint64_t datasetPages = defaultDatasetPages;
    bool warm = true;
};

inline std::vector<KvRun>
sweepKv(const std::vector<KvJob> &jobs, unsigned parallelism = 0,
        std::vector<SweepRunner::JobTiming> *timings = nullptr)
{
    SweepRunner runner(parallelism);
    return runner.map<KvRun>(
        jobs.size(),
        [&](std::size_t i) {
            const KvJob &j = jobs[i];
            return runKv(j.cfg, j.type, j.threads, j.opsPerThread,
                         j.datasetPages, j.warm);
        },
        timings);
}

} // namespace hwdp::bench

#endif // HWDP_BENCH_BENCH_COMMON_HH

/**
 * @file
 * SMU page table updater.
 *
 * After the device I/O completes, the SMU updates the PTE in place —
 * replacing the LBA field with the newly allocated PFN — and sets the
 * LBA bits of the PMD and PUD entries so kpted can find the PTE later.
 * Crucially the PTE's own LBA bit is NOT cleared: present + LBA means
 * "resident, OS metadata pending" (Table I). The three entry accesses
 * rarely miss the LLC; the paper charges 97 cycles (three LLC
 * read+writes, Figure 11(b)).
 */

#ifndef HWDP_CORE_PT_UPDATER_HH
#define HWDP_CORE_PT_UPDATER_HH

#include "cpu/mmu.hh"
#include "sim/types.hh"

namespace hwdp::core {

class PageTableUpdater
{
  public:
    /**
     * @param update_cycles Latency of the three entry read+writes.
     */
    PageTableUpdater(Cycles update_cycles, Tick cycle_period)
        : updateCycles(update_cycles), period(cycle_period)
    {
    }

    /**
     * Perform the updates for a completed miss.
     * @return the latency charged.
     */
    Tick update(const cpu::PageMissRequest &req, Pfn pfn);

    Cycles cost() const { return updateCycles; }

    std::uint64_t updates() const { return nUpdates; }

    /** Checkpoint the update counter. */
    void serialize(sim::Serializer &s);

    /**
     * TEST ONLY: skip marking the upper-level (PMD/PUD) LBA bits.
     * Breaks the contract kpted's guided scan depends on; exists so
     * the differential harness can prove it detects exactly this
     * class of bug (a seeded-defect negative test). Never set outside
     * tests.
     */
    void setSkipUpperMarkForTest(bool skip) { skipUpperMark = skip; }

  private:
    Cycles updateCycles;
    Tick period;
    std::uint64_t nUpdates = 0;
    bool skipUpperMark = false;
};

} // namespace hwdp::core

#endif // HWDP_CORE_PT_UPDATER_HH

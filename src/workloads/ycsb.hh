/**
 * @file
 * YCSB core workloads A-F driving the KV store.
 *
 * Mixes follow the YCSB core-workload definitions:
 *   A: 50% read / 50% update, zipfian
 *   B: 95% read /  5% update, zipfian
 *   C: 100% read, zipfian (the paper's headline workload)
 *   D: 95% read /  5% insert, latest
 *   E: 95% scan /  5% insert, zipfian (scan length uniform 1..maxScan)
 *   F: 50% read / 50% read-modify-write, zipfian
 */

#ifndef HWDP_WORKLOADS_YCSB_HH
#define HWDP_WORKLOADS_YCSB_HH

#include <deque>
#include <memory>

#include "workloads/key_chooser.hh"
#include "workloads/kv_store.hh"
#include "workloads/workload.hh"

namespace hwdp::workloads {

class YcsbWorkload : public Workload
{
  public:
    /**
     * @param type  'A'..'F'.
     * @param n_ops Application operations to execute.
     */
    YcsbWorkload(char type, KvStore &store, std::uint64_t n_ops,
                 unsigned max_scan = 8);

    Op next(sim::Rng &rng) override;
    const char *label() const override { return name; }

    char type() const { return kind; }

    void serialize(sim::Serializer &s) override;

  private:
    char kind;
    char name[8];
    KvStore &store;
    std::uint64_t remaining;
    unsigned maxScan;
    std::unique_ptr<KeyChooser> chooser;
    std::deque<Op> pending;

    void generateRequest(sim::Rng &rng);
};

/** DBBench readrandom: uniform random point reads (Figure 13). */
class DbBenchReadRandom : public Workload
{
  public:
    DbBenchReadRandom(KvStore &store, std::uint64_t n_ops);

    Op next(sim::Rng &rng) override;
    const char *label() const override { return "dbbench_readrandom"; }

    void serialize(sim::Serializer &s) override;

  private:
    KvStore &store;
    std::uint64_t remaining;
    UniformChooser chooser;
    std::deque<Op> pending;
};

} // namespace hwdp::workloads

#endif // HWDP_WORKLOADS_YCSB_HH

/**
 * @file
 * Tests for the SMU's NVMe host controller (Figure 8): descriptor
 * registers, command generation timing and the snooping completion
 * unit.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

#include "core/nvme_host_controller.hh"
#include "ssd/ssd_device.hh"

using namespace hwdp;
using namespace hwdp::core;

namespace {

ssd::SsdProfile
flatProfile()
{
    ssd::SsdProfile p;
    p.name = "flat";
    p.cmdFetch = 100;
    p.readMedia = 1000;
    p.writeMedia = 5000;
    p.xfer4k = 50;
    p.cqeWrite = 10;
    p.channels = 4;
    p.mediaCv = 0.0;
    return p;
}

struct Harness
{
    sim::EventQueue eq;
    ssd::SsdDevice dev{"ssd", eq, flatProfile(), sim::Rng(3)};
    NvmeHostController::Timing timing{};
    NvmeHostController hc{"hc", eq, timing};
};

} // namespace

TEST(NvmeHostController, ConfigureValidatesDeviceId)
{
    Harness h;
    EXPECT_THROW(h.hc.configureDevice(8, &h.dev), FatalError);
    h.hc.configureDevice(3, &h.dev);
    EXPECT_TRUE(h.hc.deviceConfigured(3));
    EXPECT_FALSE(h.hc.deviceConfigured(2));
    EXPECT_THROW(h.hc.configureDevice(3, &h.dev), FatalError);
}

TEST(NvmeHostController, ReadOnUnconfiguredDevicePanics)
{
    Harness h;
    EXPECT_THROW(h.hc.issueRead(0, 0, 0x1000, 0, nullptr), PanicError);
}

TEST(NvmeHostController, DoorbellAfterCommandWriteLatency)
{
    Harness h;
    h.hc.configureDevice(0, &h.dev);
    Tick doorbell_at = 0;
    h.hc.issueRead(0, 0, 0x1000, 7,
                   [&] { doorbell_at = h.eq.now(); });
    h.eq.run();
    // 77.16 ns command write + 1.60 ns doorbell = 78.76 ns = 78760 ps.
    EXPECT_EQ(doorbell_at, nanoseconds(77.16) + nanoseconds(1.60));
}

TEST(NvmeHostController, CompletionSnoopDeliversTag)
{
    Harness h;
    h.hc.configureDevice(0, &h.dev);
    std::uint16_t tag_seen = 0;
    Tick when = 0;
    h.hc.setCompletionCallback(
        [&](std::uint16_t tag, std::uint16_t, Tick) {
            tag_seen = tag;
            when = h.eq.now();
        });
    h.hc.issueRead(0, 4, 0x1000, 23, nullptr);
    h.eq.run();
    EXPECT_EQ(tag_seen, 23u);
    // Doorbell + device time + 2-cycle completion handling.
    Tick expect = nanoseconds(78.76) + 1160 + 2 * 357;
    EXPECT_EQ(when, expect);
    EXPECT_EQ(h.hc.readsIssued(), 1u);
}

TEST(NvmeHostController, MultipleOutstandingReadsResolveByTag)
{
    Harness h;
    h.hc.configureDevice(0, &h.dev);
    std::vector<std::uint16_t> tags;
    h.hc.setCompletionCallback(
        [&](std::uint16_t tag, std::uint16_t, Tick) {
            tags.push_back(tag);
        });
    // Different channels: all overlap; completion unit resolves each
    // by the PMSHR index riding in the cid.
    for (std::uint16_t t = 0; t < 4; ++t)
        h.hc.issueRead(0, t, 0x1000 + t * pageSize, t, nullptr);
    h.eq.run();
    ASSERT_EQ(tags.size(), 4u);
    std::sort(tags.begin(), tags.end());
    EXPECT_EQ(tags, (std::vector<std::uint16_t>{0, 1, 2, 3}));
}

TEST(NvmeHostController, UsesUrgentPriorityQueue)
{
    Harness h;
    h.hc.configureDevice(0, &h.dev);
    // The controller allocated qid 1 on the fresh device with urgent
    // priority (Section V / III-C).
    EXPECT_EQ(h.dev.queuePair(1).priority(), nvme::Priority::urgent);
}

TEST(NvmeHostController, DescriptorBitsMatchPaperArea)
{
    // Figure 9's register set is 352 bits (Section VI-D).
    EXPECT_EQ(NvmeHostController::descriptorBits, 352u);
    EXPECT_EQ(NvmeHostController::maxDevices, 8u);
}

/**
 * @file
 * Design-choice ablation: PMSHR sizing.
 *
 * The PMSHR bounds the SMU's outstanding misses; the paper picks 32
 * entries empirically. Sweeping the size under a parallel FIO load
 * shows where the structure starts rejecting misses (PMSHR-full
 * bounces go through the slow OS path) and where extra entries stop
 * paying for their CAM area.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "metrics/area_model.hh"

using namespace hwdp;
using metrics::Table;

int
main()
{
    metrics::banner("Ablation: PMSHR entries (FIO, 8 threads)",
                    "paper picks 32 entries");

    metrics::AreaModel area;
    Table t({"entries", "mean lat us", "PMSHR-full bounces",
             "coalesced", "SMU mm^2"});
    for (unsigned entries : {2u, 4u, 8u, 16u, 32u, 64u}) {
        auto cfg = bench::paperConfig(system::PagingMode::hwdp);
        cfg.smu.pmshrEntries = entries;

        system::System sys(cfg);
        auto mf = sys.mapDataset("fio.dat",
                                 16 * bench::defaultMemFrames);
        for (unsigned th = 0; th < 8; ++th) {
            auto *wl =
                sys.makeWorkload<workloads::FioWorkload>(mf.vma, 4000);
            sys.addThread(*wl, th, *mf.as);
        }
        sys.runUntilThreadsDone(seconds(120.0));

        double lat = 0;
        for (auto &tc : sys.threads())
            lat += tc->faultedOpLatencyUs().mean();
        lat /= 8.0;

        t.addRow({std::to_string(entries), Table::num(lat),
                  std::to_string(sys.smu()->rejectedPmshrFull()),
                  std::to_string(sys.smu()->coalesced()),
                  Table::num(area.smuTotalMm2(entries), 4)});
    }
    t.print();
    return 0;
}

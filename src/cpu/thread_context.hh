/**
 * @file
 * A hardware thread executing a workload.
 *
 * The ThreadContext pulls operations from its workload and executes
 * them against the machine: compute bursts run real references through
 * the cache hierarchy and branch predictor (so OS pollution is felt),
 * memory accesses go through the MMU (TLB, walker, demand paging),
 * file writes go through the kernel's syscall path. User-mode
 * instruction/cycle accounting follows the PMU convention the paper
 * uses: fault-resolution time is not user time.
 *
 * Execution is batched (the zero-event fast path): ops that complete
 * without OS or SMU interaction — compute bursts, TLB/walk hits, think
 * time — run back-to-back in host code, accruing their latency into a
 * logical clock, and the thread posts a single continuation event per
 * batch. A batch is cut when the logical clock would pass the event
 * queue's next pending event (so no cross-actor interleaving is ever
 * reordered), when memQuantum ops have accrued, or when the next op
 * needs real simulated time (page miss, file write, msync, done).
 * Because nothing else runs inside a batch, the machine state any
 * other actor can observe is identical to event-per-op execution; see
 * DESIGN.md section 6e for the equivalence argument.
 */

#ifndef HWDP_CPU_THREAD_CONTEXT_HH
#define HWDP_CPU_THREAD_CONTEXT_HH

#include <array>
#include <functional>
#include <vector>

#include "cpu/mmu.hh"
#include "os/kernel.hh"
#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace hwdp::sim {
class ShardPool;
}

namespace hwdp::cpu {

struct CoreParams
{
    Tick cyclePeriod = 357;   ///< 2.8 GHz.
    double baseCpi = 0.45;    ///< CPI with all-hit caches.
    Cycles mispredPenalty = 15;
    Cycles l1HitLatency = 4;  ///< Folded into baseCpi.

    /**
     * Max ops accrued inline per continuation event. 1 restores
     * event-per-op pacing (the legacy path, kept for differential
     * testing); the default bounds how far one thread's logical clock
     * can run ahead of the event queue within a quantum.
     */
    unsigned memQuantum = 4096;

    /**
     * Route computeBurst's cache/branch streams through the batched
     * APIs (level-major accessBatch, updateBatch). Off restores the
     * per-line reference loops; both produce bit-identical simulated
     * state, so the flag exists for differential testing and follows
     * MachineConfig::pollutionBatch.
     */
    bool batch = true;

    /**
     * Parallel-mode worker pool (MachineConfig::simThreads > 1), or
     * nullptr for fully serial execution. With a pool, heavy compute
     * bursts overlap their branch-predictor batch with their cache
     * passes on the pool's side lane; results are bit-identical
     * either way (disjoint state, pre-drawn outcomes, joined before
     * the burst's duration is computed).
     */
    sim::ShardPool *pool = nullptr;
};

class ThreadContext : public os::Thread, public AccessSink
{
  public:
    ThreadContext(std::string name, unsigned core, os::Kernel &kernel,
                  Mmu &mmu, mem::CacheHierarchy &caches,
                  mem::BranchPredictor &bp, os::AddressSpace &as,
                  workloads::Workload &workload, const CoreParams &params,
                  sim::Rng rng);

    void run() override;

    /** OOM-killer victim: terminate gracefully instead of panicking. */
    bool handleOom() override;

    /** Slow-path (page-miss) access completion. */
    void accessDone(const AccessInfo &info) override;

    /** Invoked once the workload yields its done op. */
    void setOnFinished(std::function<void()> fn)
    {
        onFinished = std::move(fn);
    }

    os::AddressSpace &addressSpace() { return as; }
    Mmu &mmu() { return mmuRef; }
    workloads::Workload &workloadRef() { return workload; }

    // ---- Measurements ---------------------------------------------------
    std::uint64_t userInstructions() const { return uInstr; }
    Cycles userCycles() const { return uCycles; }
    Cycles computeCycles() const { return cCycles; }
    Cycles memStallCycles() const { return mCycles; }
    double userIpc() const
    {
        return uCycles ? static_cast<double>(uInstr) /
                             static_cast<double>(uCycles)
                       : 0.0;
    }

    std::uint64_t appOps() const { return nAppOps; }
    std::uint64_t memOps() const { return nMemOps; }
    std::uint64_t faultedOps() const { return nFaulted; }
    std::uint64_t hwHandledOps() const { return nHwHandled; }

    /** Wall time spent resolving page misses (any flavour). */
    Tick faultStallTicks() const { return faultStall; }

    Tick startTick() const { return started; }
    Tick finishTick() const { return finished; }
    bool done() const { return isDone; }
    bool oomKilled() const { return wasOomKilled; }

    /** Per-access latency distribution. */
    sim::Histogram &memLatencyUs() { return memLat; }

    /**
     * Application-op latency (first sub-op start to endsAppOp
     * completion) for ops that included a page miss — FIO's reported
     * per-4KB-read latency including its engine loop and data copy.
     */
    sim::Histogram &faultedOpLatencyUs() { return faultedOpLat; }

    /**
     * Checkpoint the execution state: scheduling state, user-mode
     * accounting, latency histograms and the workload-draw rng. Only
     * valid at quiesce (no op in flight).
     */
    void serialize(sim::Serializer &s);

  private:
    os::Kernel &kernel;
    Mmu &mmuRef;
    mem::CacheHierarchy &caches;
    mem::BranchPredictor &bp;
    os::AddressSpace &as;
    workloads::Workload &workload;
    CoreParams prm;
    sim::Rng rng;
    unsigned physCore;

    std::function<void()> onFinished;

    std::uint64_t uInstr = 0;
    Cycles uCycles = 0;
    Cycles cCycles = 0;
    Cycles mCycles = 0;
    std::uint64_t nAppOps = 0;
    std::uint64_t nMemOps = 0;
    std::uint64_t nFaulted = 0;
    std::uint64_t nHwHandled = 0;
    Tick faultStall = 0;
    Tick started = 0;
    Tick finished = 0;
    bool isDone = false;
    bool wasOomKilled = false;
    bool startedFlag = false;
    std::uint64_t fetchSeq = 0;

    sim::Histogram memLat;
    sim::Histogram faultedOpLat;
    Tick appOpStart = 0;
    bool appOpFaulted = false;
    bool appOpOpen = false;

    /**
     * An op drawn mid-batch that needs real simulated time is stashed
     * here across the batch cut and executed at the continuation.
     */
    workloads::Op curOp{};
    bool hasCurOp = false;

    /** Logical issue time of the in-flight slow-path memory access. */
    Tick memOpStart = 0;
    bool memOpEndsApp = false;

    // computeBurst scratch, reused across bursts (no steady-state
    // allocation): addresses for one batched loop, branch PCs and
    // pre-drawn outcomes for the predictor batch.
    std::vector<std::uint64_t> burstAddrs;
    std::vector<std::uint64_t> burstPcs;
    std::vector<std::uint8_t> burstTaken;

    void opLoop();
    void finishOp(Tick logical_now);
    Tick computeBurst(const workloads::ComputeSpec &spec);
    Tick computeBurstPerLine(const workloads::ComputeSpec &spec);
};

} // namespace hwdp::cpu

#endif // HWDP_CPU_THREAD_CONTEXT_HH

/**
 * @file
 * Unit tests for the pooled one-shot event fast path: free-list
 * reuse, the no-steady-state-allocation guarantee, self-reschedule
 * from inside process(), cancellation, destruction with pending
 * pooled events, and the large-capture heap fallback.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <memory>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

using namespace hwdp;
using namespace hwdp::sim;

TEST(EventPool, SequentialOneShotsReuseASingleNode)
{
    EventQueue eq;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
        eq.postIn(1, [&] { ++fired; });
        eq.run();
    }
    EXPECT_EQ(fired, 1000);
    const auto &ps = eq.poolStats();
    EXPECT_EQ(ps.acquired, 1000u);
    EXPECT_EQ(ps.released, 1000u);
    // Only one one-shot is ever outstanding: the pool allocates one
    // node on the first post and never again — the steady-state
    // one-shot path performs no heap allocation.
    EXPECT_EQ(ps.created, 1u);
    EXPECT_EQ(ps.heapFallbacks, 0u);
}

TEST(EventPool, PoolGrowsToPeakOutstandingThenStopsGrowing)
{
    EventQueue eq;
    int fired = 0;
    for (int round = 0; round < 10; ++round) {
        for (Tick t = 1; t <= 64; ++t)
            eq.postIn(t, [&] { ++fired; });
        eq.run();
    }
    EXPECT_EQ(fired, 640);
    const auto &ps = eq.poolStats();
    EXPECT_EQ(ps.acquired, 640u);
    // 64 simultaneously pending in round one; later rounds reuse.
    EXPECT_EQ(ps.created, 64u);
}

TEST(EventPool, CallableCapturesAreDestroyedExactlyOnce)
{
    struct Probe
    {
        int *alive;
        explicit Probe(int *a) : alive(a) { ++*alive; }
        Probe(const Probe &o) : alive(o.alive) { ++*alive; }
        Probe(Probe &&o) noexcept : alive(o.alive) { ++*alive; }
        ~Probe() { --*alive; }
    };
    int alive = 0;
    {
        EventQueue eq;
        Probe p(&alive);
        eq.post(10, [p] { (void)p.alive; });
        EXPECT_GE(alive, 2); // original + capture copy
        eq.run();
        EXPECT_EQ(alive, 1); // capture destroyed on recycle
    }
    EXPECT_EQ(alive, 0);
}

TEST(EventPool, QueueDestructionReleasesPendingCallables)
{
    // Pending one-shots at queue destruction: their captures must be
    // destroyed exactly once and nothing may leak (ASan-verified).
    auto shared = std::make_shared<int>(7);
    EXPECT_EQ(shared.use_count(), 1);
    {
        EventQueue eq;
        eq.post(100, [shared] { (void)*shared; });
        eq.post(seconds(10.0), [shared] { (void)*shared; }); // far heap
        EXPECT_EQ(shared.use_count(), 3);
    }
    EXPECT_EQ(shared.use_count(), 1);
}

TEST(EventPool, SelfRescheduleInsideProcessKeepsCallable)
{
    EventQueue eq;
    int count = 0;
    Event *handle = nullptr;
    handle = eq.post(10, [&] {
        if (++count < 5)
            eq.reschedule(handle, eq.now() + 10);
    });
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 50u);
    const auto &ps = eq.poolStats();
    EXPECT_EQ(ps.acquired, 1u);
    EXPECT_EQ(ps.created, 1u);
    EXPECT_EQ(ps.released, 1u); // recycled only after the final firing
}

TEST(EventPool, DescheduleCancelsAndRecyclesOneShot)
{
    EventQueue eq;
    int fired = 0;
    Event *h = eq.post(50, [&] { ++fired; });
    EXPECT_TRUE(h->scheduled());
    eq.deschedule(h);
    eq.post(60, [&] { fired += 10; });
    eq.run();
    EXPECT_EQ(fired, 10);
    const auto &ps = eq.poolStats();
    EXPECT_EQ(ps.acquired, 2u);
    EXPECT_EQ(ps.created, 1u); // the cancelled node was reused
}

TEST(EventPool, LargeCapturesFallBackToHeapAndStillWork)
{
    EventQueue eq;
    std::array<char, PooledEvent::inlineCapacity + 64> big{};
    big[0] = 42;
    char seen = 0;
    eq.post(10, [big, &seen] { seen = big[0]; });
    EXPECT_EQ(eq.poolStats().heapFallbacks, 1u);
    eq.run();
    EXPECT_EQ(seen, 42);
    // A fallback callable pending at destruction must not leak either.
    eq.post(eq.now() + 5, [big, &seen] { seen = big[0]; });
    EXPECT_EQ(eq.poolStats().heapFallbacks, 2u);
}

TEST(EventPool, PostIntoThePastPanicsWithoutLeaking)
{
    EventQueue eq;
    eq.post(100, [] {});
    eq.run();
    EXPECT_THROW(eq.post(50, [] {}), PanicError);
    // The node acquired for the failed post was recycled.
    EXPECT_EQ(eq.poolStats().acquired, 2u);
    EXPECT_EQ(eq.poolStats().released, 2u);
}

TEST(EventPool, PostedNameIsInternedNotCopied)
{
    EventQueue eq;
    Event *h = eq.post(10, [] {}, "mmu.walked");
    EXPECT_STREQ(h->name(), "mmu.walked");
    eq.run();
}

#ifndef NDEBUG
TEST(EventPoolDeathTest, DestroyingScheduledEventAborts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            EventQueue eq;
            struct Noop : Event
            {
                void process() override {}
            };
            auto ev = std::make_unique<Noop>();
            eq.schedule(ev.get(), 10);
            ev.reset(); // destroyed while scheduled: must abort
        },
        "destroyed while scheduled");
}
#endif

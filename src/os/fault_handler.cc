#include "os/fault_handler.hh"

#include "os/kernel.hh"
#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::os {

FaultHandler::FaultHandler(Kernel &kernel) : k(kernel)
{
}

namespace {

std::uint64_t
fileKey(const File &file, std::uint64_t idx)
{
    return (static_cast<std::uint64_t>(file.id()) << 40) | idx;
}

} // namespace

void
FaultHandler::serialize(sim::Serializer &s)
{
    s.section("faulthandler");
    if (!inflight.empty())
        throw sim::SerializeError(
            "checkpoint: page faults in flight; quiesce the machine "
            "first");
}

void
FaultHandler::handle(Thread &t, AddressSpace &as, VAddr vaddr,
                     bool is_write, bool smu_fallback,
                     std::function<void()> resume)
{
    auto c = std::make_shared<Ctx>();
    c->t = &t;
    c->as = &as;
    c->vaddr = vaddr & ~pageOffsetMask;
    c->write = is_write;
    c->fallback = smu_fallback;
    c->start = k.now();
    c->resume = std::move(resume);
    if (smu_fallback)
        ++k.statSmuFallback;

    k.scheduler().runPhases(t.core(), {&phases::exceptionEntry},
                            [this, c] { afterEntry(c); });
}

void
FaultHandler::afterEntry(CtxPtr c)
{
    // The SW-emulated SMU hooks in at the early fault stage
    // (Section VI-A): when the PTE carries the LBA bit, a software
    // SMU routine takes over and the normal path never runs.
    if (k.interceptor && !c->fallback) {
        pte::Entry e = c->as->pageTable().readPte(c->vaddr);
        if (k.interceptor(*c->t, *c->as, c->vaddr, e, c->resume))
            return;
    }
    k.scheduler().runPhases(c->t->core(), {&phases::vmaLookup},
                            [this, c] { lookupVma(c); });
}

void
FaultHandler::lookupVma(CtxPtr c)
{
    c->vma = c->as->findVma(c->vaddr);
    if (!c->vma)
        panic("page fault outside any VMA at ", c->vaddr,
              " (workloads are expected to be well-behaved)");
    if (!c->vma->file) {
        anonFault(c);
        return;
    }

    std::uint64_t idx = c->vma->fileIndexOf(c->vaddr);
    Pfn cached = k.pageCache().lookup(*c->vma->file, idx);
    if (cached != PageCache::noFrame) {
        minorFault(c, cached);
        return;
    }
    majorFault(c);
}

void
FaultHandler::minorFault(CtxPtr c, Pfn cached)
{
    k.scheduler().runPhases(
        c->t->core(), {&phases::minorFaultFill}, [this, c, cached] {
            Page &pg = k.page(cached);
            pte::Entry cur = c->as->pageTable().readPte(c->vaddr);
            if (pte::isPresent(cur)) {
                // A concurrent faulter on the same address resolved
                // the PTE while we charged the fill phases.
                pg.referenced = true;
                finish(c, true);
                return;
            }
            k.rmap().setMapping(pg, *c->as, c->vaddr);
            c->as->pageTable().writePte(
                c->vaddr, pte::makePresent(cached, c->vma->prot));
            pg.referenced = true;
            if (k.pageMode() == PageMode::napot ||
                k.pageMode() == PageMode::coalesce)
                k.maybePromoteNapot(*c->as, c->vaddr);
            finish(c, true);
        });
}

void
FaultHandler::anonFault(CtxPtr c)
{
    // Transparent 2 MB path (thp/coalesce modes): one fault populates
    // a naturally aligned window when a contiguous run is free.
    if (tryHugeAnon(c))
        return;
    // First-touch anonymous fault: allocate a zeroed frame and map it
    // — a minor fault with the page-allocation cost, no I/O. The
    // placement policy homes the frame relative to the faulting core.
    c->pfn = k.allocFrameFor(c->t->core());
    if (c->pfn == mem::PhysMem::invalidPfn) {
        if (++c->allocRetries > 200) {
            // Anonymous pages are unevictable in this model (no swap),
            // so a big enough anon footprint genuinely exhausts memory.
            // A user thread is OOM-killed; only when nobody can die is
            // this a simulator bug.
            if (oomKill(c, false))
                return;
            panic("anon fault: memory exhausted and unreclaimable");
        }
        k.reclaimer().directReclaim(
            c->t->core(), LruLists::demoteBatch,
            [this, c] { anonFault(c); });
        return;
    }
    k.scheduler().runPhases(
        c->t->core(), {&phases::pageAlloc, &phases::minorFaultFill},
        [this, c] {
            k.installPage(*c->as, *c->vma, c->vaddr, c->pfn, true);
            if (c->write)
                k.page(c->pfn).dirty = true;
            finish(c, true);
        });
}

void
FaultHandler::majorFault(CtxPtr c)
{
    File &file = *c->vma->file;
    std::uint64_t idx = c->vma->fileIndexOf(c->vaddr);
    std::uint64_t key = (static_cast<std::uint64_t>(file.id()) << 40) |
                        idx;
    auto it = inflight.find(key);
    if (it != inflight.end()) {
        // Another thread is already reading this page: wait on it and
        // retry the lookup (which will hit the page cache) once woken.
        it->second.push_back(c);
        c->t->setResumeAction([this, c] { lookupVma(c); });
        k.scheduler().block(c->t);
        return;
    }
    if (tryHugeMajor(c))
        return;
    inflight.emplace(key, std::vector<CtxPtr>{});
    allocateFrame(c);
}

bool
FaultHandler::tryHugeAnon(CtxPtr c)
{
    PageMode mode = k.pageMode();
    if ((mode != PageMode::thp && mode != PageMode::coalesce) ||
        c->vma->fastMmap || c->allocRetries > 0)
        return false;
    VAddr win = k.hugeFaultWindow(*c->as, *c->vma, c->vaddr);
    if (win == Kernel::invalidVaddr)
        return false;
    Pfn head = k.allocContigFor(c->t->core());
    if (head == mem::PhysMem::invalidPfn)
        return false; // fragmented: fall back to a 4 KB fault
    k.scheduler().runPhases(
        c->t->core(), {&phases::pageAlloc, &phases::minorFaultFill},
        [this, c, win, head] {
            k.installHugePage(*c->as, *c->vma, win, head, c->vaddr,
                              c->write);
            finish(c, true);
        });
    return true;
}

bool
FaultHandler::tryHugeMajor(CtxPtr c)
{
    PageMode mode = k.pageMode();
    if ((mode != PageMode::thp && mode != PageMode::coalesce) ||
        c->vma->fastMmap || c->fallback || c->allocRetries > 0)
        return false;
    VAddr win = k.hugeFaultWindow(*c->as, *c->vma, c->vaddr);
    if (win == Kernel::invalidVaddr)
        return false;
    // Any 4 KB read already in flight inside the window forfeits the
    // huge fill — its install would race the wide PTE.
    File &file = *c->vma->file;
    std::uint64_t base = c->vma->fileIndexOf(win);
    for (std::uint64_t i = 0; i < pmdLeafPages; ++i)
        if (inflight.count(fileKey(file, base + i)))
            return false;
    Pfn head = k.allocContigFor(c->t->core());
    if (head == mem::PhysMem::invalidPfn)
        return false;
    c->hugeWin = win;
    c->pfn = head;
    for (std::uint64_t i = 0; i < pmdLeafPages; ++i)
        inflight.emplace(fileKey(file, base + i), std::vector<CtxPtr>{});
    k.scheduler().runPhases(c->t->core(),
                            {&phases::pageAlloc, &phases::ioSubmit},
                            [this, c] { submitIo(c); });
    return true;
}

void
FaultHandler::unlockWindow(CtxPtr c)
{
    File &file = *c->vma->file;
    std::uint64_t base = c->vma->fileIndexOf(c->hugeWin);
    for (std::uint64_t i = 0; i < pmdLeafPages; ++i) {
        auto it = inflight.find(fileKey(file, base + i));
        if (it == inflight.end())
            continue;
        for (const CtxPtr &w : it->second)
            k.scheduler().wake(w->t);
        inflight.erase(it);
    }
}

void
FaultHandler::allocateFrame(CtxPtr c)
{
    c->pfn = k.allocFrameFor(c->t->core());
    if (c->pfn != mem::PhysMem::invalidPfn) {
        k.scheduler().runPhases(c->t->core(),
                                {&phases::pageAlloc, &phases::ioSubmit},
                                [this, c] { submitIo(c); });
        return;
    }

    // Direct reclaim: synchronous shrink on the faulting core, then
    // retry. Dirty pages free asynchronously via writeback, so a few
    // retries may be needed under write-heavy load.
    if (++c->allocRetries > 200) {
        if (oomKill(c, true))
            return;
        panic("direct reclaim cannot free memory: all pages dirty or "
              "pinned (frames=", k.physMem().totalFrames(), ")");
    }
    k.reclaimer().directReclaim(
        c->t->core(), LruLists::demoteBatch, [this, c] {
            if (k.physMem().freeFrames() > 0) {
                allocateFrame(c);
            } else {
                // Wait for in-flight writeback, then retry.
                k.eventQueue().postIn(
                    microseconds(50.0), [this, c] { allocateFrame(c); },
                    "fault.allocRetry");
            }
        });
}

void
FaultHandler::submitIo(CtxPtr c)
{
    File &file = *c->vma->file;
    // A huge fill reads the whole 2 MB window with one faultRead
    // command starting at the window's first LBA (DESIGN.md §6j).
    std::uint64_t idx =
        c->vma->fileIndexOf(c->hugeWin ? c->hugeWin : c->vaddr);
    unsigned dev_idx = k.deviceIndexOf(file.device());
    Lba lba = file.lbaOf(idx);
    unsigned core = c->t->core();

    // When the fault is an SMU fallback the queue ran dry: refill it
    // overlapped with this very device I/O (Section IV-D / AIOS).
    if (c->fallback && k.refillHook)
        k.refillHook(core);

    c->t->setResumeAction([this, c] { ioFinished(c); });
    k.blockLayer().submit(core, dev_idx, lba, false,
                          BlockLayer::IoClass::faultRead, [this, c] {
                              // Completion phases (irq, block layer,
                              // wakeup) have run as kernel work on the
                              // submitting core; now wake the thread.
                              k.scheduler().wake(c->t);
                          });
    k.scheduler().block(c->t);
}

void
FaultHandler::ioFinished(CtxPtr c)
{
    // Running again in the faulting thread's context: the fault-return
    // path updates OS metadata and the PTE, then returns to user.
    k.scheduler().runPhases(
        c->t->core(),
        {&phases::metadataUpdate, &phases::pteUpdateReturn}, [this, c] {
            if (c->hugeWin) {
                k.installHugePage(*c->as, *c->vma, c->hugeWin, c->pfn,
                                  c->vaddr, c->write);
                unlockWindow(c);
                finish(c, false);
                return;
            }
            Page &pg = k.page(c->pfn);
            k.installPage(*c->as, *c->vma, c->vaddr, c->pfn, true);
            if (c->write)
                pg.dirty = true;

            // Release threads that piled up on the same page.
            std::uint64_t key =
                (static_cast<std::uint64_t>(c->vma->file->id()) << 40) |
                c->vma->fileIndexOf(c->vaddr);
            auto it = inflight.find(key);
            if (it != inflight.end()) {
                for (const CtxPtr &w : it->second)
                    k.scheduler().wake(w->t);
                inflight.erase(it);
            }
            finish(c, false);
        });
}

bool
FaultHandler::oomKill(CtxPtr c, bool major)
{
    if (!c->t->handleOom())
        return false;
    ++k.statOomKills;

    if (major && c->vma && c->vma->file) {
        // This ctx owns the in-flight entry for its page (it got past
        // majorFault's dedup). Wake the pile-up so each waiter retries
        // the fault on its own — and faces the OOM killer itself if
        // memory is still gone.
        std::uint64_t key =
            (static_cast<std::uint64_t>(c->vma->file->id()) << 40) |
            c->vma->fileIndexOf(c->vaddr);
        auto it = inflight.find(key);
        if (it != inflight.end()) {
            for (const CtxPtr &w : it->second)
                k.scheduler().wake(w->t);
            inflight.erase(it);
        }
    }
    // The faulting access never completes: the resume is dropped with
    // the thread already torn down by handleOom().
    return true;
}

void
FaultHandler::finish(CtxPtr c, bool minor)
{
    if (minor)
        ++k.statMinor;
    else
        ++k.statMajor;
    k.statFaultLatency.sample(toMicroseconds(k.now() - c->start));
    c->resume();
}

} // namespace hwdp::os

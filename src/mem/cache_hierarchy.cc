#include "mem/cache_hierarchy.hh"

#include "sim/logging.hh"
#include "sim/serialize.hh"
#include "sim/shard_pool.hh"

namespace hwdp::mem {

void
CacheHierarchy::serialize(sim::Serializer &s)
{
    s.section("caches");
    std::uint64_t nc = l1d.size();
    s.check(nc, "cache core count");
    for (std::size_t c = 0; c < l1d.size(); ++c) {
        l1i[c].serialize(s);
        l1d[c].serialize(s);
        l2[c].serialize(s);
    }
    llc.serialize(s);
    for (auto &mc : modeCtrs) {
        s.io(mc.l1iAccesses);
        s.io(mc.l1iMisses);
        s.io(mc.l1dAccesses);
        s.io(mc.l1dMisses);
        s.io(mc.l2Misses);
        s.io(mc.llcMisses);
    }
}

CacheHierarchy::CacheHierarchy(unsigned n_cores, const CacheParams &params)
    : prm(params), llc("llc", params.llcBytes, params.llcAssoc)
{
    if (n_cores == 0)
        fatal("cache hierarchy: need at least one core");
    l1i.reserve(n_cores);
    l1d.reserve(n_cores);
    l2.reserve(n_cores);
    for (unsigned c = 0; c < n_cores; ++c) {
        l1i.emplace_back("l1i" + std::to_string(c), prm.l1iBytes,
                         prm.l1iAssoc);
        l1d.emplace_back("l1d" + std::to_string(c), prm.l1dBytes,
                         prm.l1dAssoc);
        l2.emplace_back("l2_" + std::to_string(c), prm.l2Bytes,
                        prm.l2Assoc);
    }
}

CacheBatchResult
CacheHierarchy::accessBatch(unsigned core, const std::uint64_t *addrs,
                            std::size_t n, bool is_inst, ExecMode mode)
{
    if (core >= l1d.size()) [[unlikely]]
        badCore(core);

    CacheBatchResult r;
    if (n == 0)
        return r;
    if (shardPool && n >= parallelMin)
        return accessBatchParallel(core, addrs, n, is_inst, mode);
    ModeCounters &mc = modeCtrs[static_cast<unsigned>(mode)];

    if (batchMiss1.size() < n) {
        batchMiss1.resize(n);
        batchMiss2.resize(n);
        batchMiss3.resize(n);
    }

    // Level-major: the whole run against the L1, its compacted miss
    // list through the L2, then the LLC. Each array's access sequence
    // is the same subsequence it would see line-major, so state and
    // counters match the per-line path exactly.
    CacheArray &first = is_inst ? l1i[core] : l1d[core];
    std::size_t h1 = first.accessBatch(addrs, n, batchMiss1.data());
    std::size_t m1 = n - h1;
    r.l1Misses = m1;
    if (is_inst) {
        mc.l1iAccesses += n;
        mc.l1iMisses += m1;
    } else {
        mc.l1dAccesses += n;
        mc.l1dMisses += m1;
    }

    std::size_t h2 = 0, h3 = 0, m2 = 0;
    if (m1 > 0) {
        h2 = l2[core].accessBatch(batchMiss1.data(), m1,
                                  batchMiss2.data());
        m2 = m1 - h2;
        r.l2Misses = m2;
        mc.l2Misses += m2;
    }
    if (m2 > 0) {
        h3 = llc.accessBatch(batchMiss2.data(), m2, batchMiss3.data());
        r.llcMisses = m2 - h3;
        mc.llcMisses += r.llcMisses;
    }

    r.totalLatency = static_cast<Cycles>(h1) * prm.l1Latency +
                     static_cast<Cycles>(h2) * prm.l2Latency +
                     static_cast<Cycles>(h3) * prm.llcLatency +
                     static_cast<Cycles>(m2 - h3) * prm.dramLatency;
    return r;
}

std::size_t
CacheHierarchy::runLevelSharded(CacheArray &arr, const std::uint64_t *addrs,
                                std::size_t n, std::uint64_t *miss_out)
{
    if (hitFlags.size() < n)
        hitFlags.resize(n);
    const unsigned ns = shardPool->lanes();
    CacheArray::ShardResult part[sim::ShardPool::maxLanes];
    shardPool->parallelFor(ns, [&](unsigned s) {
        part[s] = arr.accessBatchShard(addrs, n, hitFlags.data(), s, ns);
    });

    std::uint64_t total_hits = 0, total_fills = 0;
    for (unsigned s = 0; s < ns; ++s) {
        total_hits += part[s].hits;
        total_fills += part[s].fills;
    }
    arr.finishShardedBatch(n, total_hits, total_fills);

    // Canonical merge: the shards recorded per-line outcomes; the miss
    // list compacts in run order on the simulation thread, so the next
    // level sees exactly the sequence the serial descent would feed it.
    std::size_t nmiss = 0;
    for (std::size_t j = 0; j < n; ++j) {
        miss_out[nmiss] = addrs[j];
        nmiss += !hitFlags[j];
    }
    return n - nmiss;
}

CacheBatchResult
CacheHierarchy::accessBatchParallel(unsigned core,
                                    const std::uint64_t *addrs,
                                    std::size_t n, bool is_inst,
                                    ExecMode mode)
{
    CacheBatchResult r;
    ModeCounters &mc = modeCtrs[static_cast<unsigned>(mode)];

    if (batchMiss1.size() < n) {
        batchMiss1.resize(n);
        batchMiss2.resize(n);
        batchMiss3.resize(n);
    }

    // Same level-major walk as the serial batch; each level goes
    // sharded when its run is still long enough to pay for a region
    // wake-up, serial otherwise (the paths are interchangeable).
    CacheArray &first = is_inst ? l1i[core] : l1d[core];
    std::size_t h1 = runLevelSharded(first, addrs, n, batchMiss1.data());
    std::size_t m1 = n - h1;
    r.l1Misses = m1;
    if (is_inst) {
        mc.l1iAccesses += n;
        mc.l1iMisses += m1;
    } else {
        mc.l1dAccesses += n;
        mc.l1dMisses += m1;
    }

    std::size_t h2 = 0, h3 = 0, m2 = 0;
    if (m1 > 0) {
        h2 = m1 >= parallelMin
                 ? runLevelSharded(l2[core], batchMiss1.data(), m1,
                                   batchMiss2.data())
                 : l2[core].accessBatch(batchMiss1.data(), m1,
                                        batchMiss2.data());
        m2 = m1 - h2;
        r.l2Misses = m2;
        mc.l2Misses += m2;
    }
    if (m2 > 0) {
        h3 = m2 >= parallelMin
                 ? runLevelSharded(llc, batchMiss2.data(), m2,
                                   batchMiss3.data())
                 : llc.accessBatch(batchMiss2.data(), m2,
                                   batchMiss3.data());
        r.llcMisses = m2 - h3;
        mc.llcMisses += r.llcMisses;
    }

    r.totalLatency = static_cast<Cycles>(h1) * prm.l1Latency +
                     static_cast<Cycles>(h2) * prm.l2Latency +
                     static_cast<Cycles>(h3) * prm.llcLatency +
                     static_cast<Cycles>(m2 - h3) * prm.dramLatency;
    return r;
}

void
CacheHierarchy::badCore(unsigned core) const
{
    panic("cache hierarchy: core ", core, " out of range");
}

void
CacheHierarchy::resetCounters()
{
    modeCtrs[0] = ModeCounters{};
    modeCtrs[1] = ModeCounters{};
}

} // namespace hwdp::mem

/**
 * @file
 * Figure 13: throughput improvement of HWDP over OSDP across
 * workloads (FIO, DBBench readrandom, YCSB A-F) and thread counts.
 *
 * Paper: uniform-access workloads (FIO, DBBench) gain 29.4-57.1%;
 * the skewed, write-mixed YCSB workloads gain 5.3-27.3% with the
 * read-only YCSB-C at the top; gains shrink somewhat as the thread
 * count (and SSD write contention) grows.
 *
 * All 64 bench points are independent machines, so they are evaluated
 * through the parallel sweep harness (HWDP_BENCH_JOBS controls the
 * worker count) and assembled into the table afterwards.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.hh"

using namespace hwdp;
using metrics::Table;

int
main()
{
    metrics::banner(
        "Figure 13: HWDP throughput gain over OSDP",
        "paper: FIO/DBBench +29.4..57.1%, YCSB +5.3..27.3% (C max)");

    struct W
    {
        char code;      // 'I' = FIO, 'U' = DBBench, 'A'..'F' = YCSB
        const char *name;
    };
    const std::vector<W> workloads = {
        {'I', "fio"},     {'U', "dbbench"}, {'A', "ycsb_a"},
        {'B', "ycsb_b"},  {'C', "ycsb_c"},  {'D', "ycsb_d"},
        {'E', "ycsb_e"},  {'F', "ycsb_f"},
    };
    const std::vector<unsigned> threadCounts = {1, 2, 4, 8};
    const system::PagingMode modes[] = {system::PagingMode::osdp,
                                        system::PagingMode::hwdp};

    // One FIO job per (thread count, mode); one KV job per
    // (workload, thread count, mode). Job order defines result order.
    std::vector<bench::FioJob> fioJobs;
    std::vector<bench::KvJob> kvJobs;
    for (const W &w : workloads) {
        for (unsigned threads : threadCounts) {
            std::uint64_t ops = w.code == 'E' ? 2500 : 5000;
            for (auto mode : modes) {
                if (w.code == 'I') {
                    fioJobs.push_back({bench::paperConfig(mode), threads,
                                       ops,
                                       8 * bench::defaultMemFrames});
                } else {
                    bench::KvJob j;
                    j.cfg = bench::paperConfig(mode);
                    j.type = w.code;
                    j.threads = threads;
                    j.opsPerThread = ops;
                    kvJobs.push_back(j);
                }
            }
        }
    }

    auto fioRuns = bench::sweepFio(fioJobs);
    auto kvRuns = bench::sweepKv(kvJobs);

    Table t({"workload", "1 thr", "2 thr", "4 thr", "8 thr"});
    std::size_t fi = 0, ki = 0;
    for (const W &w : workloads) {
        std::vector<std::string> row{w.name};
        for (std::size_t ti = 0; ti < threadCounts.size(); ++ti) {
            double osdp, hwdp;
            if (w.code == 'I') {
                osdp = fioRuns[fi++].opsPerSec;
                hwdp = fioRuns[fi++].opsPerSec;
            } else {
                osdp = kvRuns[ki++].opsPerSec;
                hwdp = kvRuns[ki++].opsPerSec;
            }
            row.push_back("+" + Table::pct(hwdp / osdp - 1.0));
        }
        t.addRow(row);
    }
    t.print();
    return 0;
}

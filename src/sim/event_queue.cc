#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace hwdp::sim {

Event::Event(std::string name) : _name(std::move(name))
{
}

Event::~Event()
{
    // Destroying a scheduled event would leave a dangling pointer in
    // the queue's heap; the queue tolerates it only because entries
    // carry a sequence number, but it is still a bug in the component.
    // We cannot throw from a destructor, so this is best-effort.
}

EventQueue::EventQueue() = default;

EventQueue::~EventQueue()
{
    // Drain and delete any self-owned lambda wrappers still pending.
    while (!heap.empty()) {
        Entry e = heap.top();
        heap.pop();
        if (e.ev->_scheduled && e.ev->_seq == e.seq) {
            e.ev->_scheduled = false;
            if (e.ev->_selfOwned)
                delete e.ev;
        }
    }
}

void
EventQueue::schedule(Event *ev, Tick when)
{
    if (ev->_scheduled)
        panic("event '", ev->name(), "' scheduled twice");
    if (when < curTick)
        panic("event '", ev->name(), "' scheduled in the past (", when,
              " < ", curTick, ")");
    ev->_scheduled = true;
    ev->_when = when;
    ev->_seq = nextSeq++;
    heap.push(Entry{when, ev->_seq, ev});
    ++liveCount;
}

void
EventQueue::deschedule(Event *ev)
{
    if (!ev->_scheduled)
        panic("descheduling idle event '", ev->name(), "'");
    // Lazy removal: mark the event idle; its heap entry is skipped when
    // it reaches the top because the sequence number no longer matches.
    ev->_scheduled = false;
    ev->_seq = ~std::uint64_t(0);
    --liveCount;
}

void
EventQueue::reschedule(Event *ev, Tick when)
{
    if (ev->_scheduled)
        deschedule(ev);
    schedule(ev, when);
}

void
EventQueue::scheduleLambda(Tick when, std::function<void()> fn,
                           std::string name)
{
    auto *ev = new LambdaEvent(std::move(fn), std::move(name));
    ev->_selfOwned = true;
    schedule(ev, when);
}

void
EventQueue::skipDead()
{
    while (!heap.empty()) {
        const Entry &e = heap.top();
        if (e.ev->_scheduled && e.ev->_seq == e.seq)
            return;
        heap.pop();
    }
}

bool
EventQueue::step()
{
    skipDead();
    if (heap.empty())
        return false;

    Entry e = heap.top();
    heap.pop();
    --liveCount;

    curTick = e.when;
    Event *ev = e.ev;
    ev->_scheduled = false;
    ++nProcessed;
    bool self_owned = ev->_selfOwned;
    ev->process();
    // A lambda event may have rescheduled itself inside process(); only
    // delete it when it is done.
    if (self_owned && !ev->_scheduled)
        delete ev;
    return true;
}

Tick
EventQueue::run(Tick limit)
{
    while (true) {
        skipDead();
        if (heap.empty())
            break;
        if (heap.top().when >= limit) {
            curTick = limit;
            break;
        }
        step();
    }
    return curTick;
}

Tick
EventQueue::runWhile(const std::function<bool()> &cond, Tick limit)
{
    while (cond()) {
        skipDead();
        if (heap.empty())
            break;
        if (heap.top().when >= limit) {
            curTick = limit;
            break;
        }
        step();
    }
    return curTick;
}

} // namespace hwdp::sim

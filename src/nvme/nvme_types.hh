/**
 * @file
 * NVMe protocol data structures.
 *
 * Faithful-enough models of the 64-byte submission queue entry and the
 * 16-byte completion queue entry, plus the queue-priority classes the
 * paper leans on ("urgent priority" for SMU queues, Section V). A
 * single 4 KB read needs no PRP list — one PRP entry suffices — which
 * is exactly the subset the SMU's NVMe host controller implements.
 */

#ifndef HWDP_NVME_NVME_TYPES_HH
#define HWDP_NVME_NVME_TYPES_HH

#include <cstdint>

#include "sim/types.hh"

namespace hwdp::nvme {

/** NVM command set opcodes (the subset the simulator uses). */
enum class Opcode : std::uint8_t {
    flush = 0x00,
    write = 0x01,
    read = 0x02,
};

/** Queue arbitration priority (NVMe weighted round robin classes). */
enum class Priority : std::uint8_t {
    urgent = 0,
    high = 1,
    medium = 2,
    low = 3,
};

/**
 * Submission queue entry. Field names follow the specification; the
 * command is 64 bytes on the wire and the model preserves the fields
 * that influence timing and routing.
 */
struct SubmissionEntry
{
    Opcode opcode = Opcode::read;
    std::uint16_t cid = 0;     ///< Command identifier (echoed in CQE).
    std::uint32_t nsid = 1;    ///< Namespace (block device) id.
    std::uint64_t prp1 = 0;    ///< DMA address of the data buffer.
    std::uint64_t slba = 0;    ///< Starting LBA.
    std::uint16_t nlb = 0;     ///< Number of logical blocks, 0-based.

    static constexpr unsigned wireBytes = 64;
};

/** Completion queue entry (16 bytes on the wire). */
struct CompletionEntry
{
    std::uint32_t commandSpecific = 0;
    std::uint16_t sqHead = 0;  ///< How far the device consumed the SQ.
    std::uint16_t sqid = 0;    ///< Submission queue the command came from.
    std::uint16_t cid = 0;     ///< Command identifier.
    bool phase = false;        ///< Phase tag toggles per CQ wrap.
    std::uint16_t status = 0;  ///< 0 = success.

    static constexpr unsigned wireBytes = 16;
};

} // namespace hwdp::nvme

#endif // HWDP_NVME_NVME_TYPES_HH

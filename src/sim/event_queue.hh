/**
 * @file
 * Discrete-event simulation core: Event and EventQueue.
 *
 * Events are scheduled at absolute ticks and processed in tick order;
 * events at the same tick run in scheduling (FIFO) order, which keeps
 * component interactions deterministic. Events are externally owned:
 * the queue never deletes them, so components can embed events as
 * members (the gem5 pattern).
 */

#ifndef HWDP_SIM_EVENT_QUEUE_HH
#define HWDP_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace hwdp::sim {

class EventQueue;

/**
 * An occurrence scheduled on an EventQueue. Subclasses implement
 * process(). An event may be scheduled on at most one queue at a time.
 */
class Event
{
  public:
    explicit Event(std::string name = "event");
    virtual ~Event();

    Event(const Event &) = delete;
    Event &operator=(const Event &) = delete;

    /** Invoked when simulated time reaches the scheduled tick. */
    virtual void process() = 0;

    /** True while the event sits on a queue awaiting processing. */
    bool scheduled() const { return _scheduled; }

    /** The tick this event will fire at; valid only when scheduled. */
    Tick when() const { return _when; }

    const std::string &name() const { return _name; }

  private:
    friend class EventQueue;

    std::string _name;
    bool _scheduled = false;
    /** Set by EventQueue::scheduleLambda: delete after firing. */
    bool _selfOwned = false;
    Tick _when = 0;
    std::uint64_t _seq = 0;
};

/**
 * An Event that forwards process() to a captured callable. Useful for
 * one-off continuations in component state machines.
 */
class LambdaEvent : public Event
{
  public:
    LambdaEvent(std::function<void()> fn, std::string name = "lambda")
        : Event(std::move(name)), fn(std::move(fn))
    {
    }

    void process() override { fn(); }

  private:
    std::function<void()> fn;
};

/**
 * A tick-ordered queue of events with deterministic same-tick FIFO
 * ordering. One queue drives one simulated machine.
 */
class EventQueue
{
  public:
    EventQueue();
    ~EventQueue();

    /** Current simulated time. */
    Tick now() const { return curTick; }

    /**
     * Schedule @p ev at absolute tick @p when.
     * @pre !ev->scheduled() && when >= now()
     */
    void schedule(Event *ev, Tick when);

    /** Schedule @p ev @p delta ticks from now. */
    void scheduleIn(Event *ev, Tick delta) { schedule(ev, now() + delta); }

    /** Remove a scheduled event from the queue without processing it. */
    void deschedule(Event *ev);

    /** Move a scheduled event to a new (future) tick. */
    void reschedule(Event *ev, Tick when);

    /**
     * Schedule a one-shot callable; the wrapper event deletes itself
     * after firing (or when the queue is destroyed).
     */
    void scheduleLambda(Tick when, std::function<void()> fn,
                        std::string name = "lambda");

    /** Convenience: one-shot callable @p delta ticks from now. */
    void
    scheduleLambdaIn(Tick delta, std::function<void()> fn,
                     std::string name = "lambda")
    {
        scheduleLambda(now() + delta, std::move(fn), std::move(name));
    }

    /** True when no events remain. */
    bool empty() const { return liveCount == 0; }

    /** Number of events awaiting processing. */
    std::size_t size() const { return liveCount; }

    /** Process a single event; returns false if the queue was empty. */
    bool step();

    /**
     * Run until the queue drains or @p limit ticks is reached
     * (exclusive). Returns the tick of the last processed event.
     */
    Tick run(Tick limit = maxTick);

    /** Run while @p cond holds and events remain. */
    Tick runWhile(const std::function<bool()> &cond, Tick limit = maxTick);

    /** Total number of events processed since construction. */
    std::uint64_t processedCount() const { return nProcessed; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Event *ev;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    /** Heap of entries; descheduled entries are skipped lazily. */
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;

    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t nProcessed = 0;
    std::size_t liveCount = 0;

    /** Pop dead (descheduled / rescheduled) heap entries. */
    void skipDead();
};

} // namespace hwdp::sim

#endif // HWDP_SIM_EVENT_QUEUE_HH

#include "mem/phys_mem.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::mem {

void
PhysMem::serialize(sim::Serializer &s)
{
    s.section("physmem");
    s.check(nFrames, "physmem frame count");
    s.check(reservedFrames, "physmem reserved frames");
    // Entries that went stale under allocContig are compacted away
    // first: the restored machine starts from the compacted lists, so
    // the straight and forked runs pop identical live sequences. A
    // frame claimed contiguously and freed again appears twice (one
    // stale, one live entry), so compaction walks from the pop end
    // keeping only the first live occurrence of each frame — exactly
    // the entry alloc()'s lazy skip would hand out. A machine that
    // never used allocContig compacts nothing and keeps the
    // pre-huge-page blob byte-identical.
    if (!s.loading()) {
        for (unsigned sk = 0; sk < nSockets; ++sk) {
            auto &l = freeLists[sk];
            if (l.size() == freeCounts[sk])
                continue;
            std::vector<bool> seen(nFrames, false);
            std::vector<Pfn> keep;
            keep.reserve(freeCounts[sk]);
            for (auto it = l.rbegin(); it != l.rend(); ++it) {
                if (allocated[*it] || seen[*it])
                    continue;
                seen[*it] = true;
                keep.push_back(*it);
            }
            std::reverse(keep.begin(), keep.end());
            l = std::move(keep);
        }
    }
    // One list per socket in index order: a single-socket blob is
    // byte-identical to the pre-NUMA single-list layout.
    for (auto &l : freeLists)
        s.io(l);
    if (s.loading()) {
        allocated.assign(nFrames, true);
        for (unsigned sk = 0; sk < nSockets; ++sk) {
            freeCounts[sk] = freeLists[sk].size();
            for (Pfn pfn : freeLists[sk])
                allocated[pfn] = false;
        }
        // Reserved frames are the highest-numbered and never handed
        // out; keep their flags clear as at construction.
        for (std::uint64_t pfn = nFrames - reservedFrames; pfn < nFrames;
             ++pfn)
            allocated[pfn] = false;
        rebuildWindowCounts();
    }
    stats().serialize(s);
}

PhysMem::PhysMem(sim::EventQueue &eq, std::uint64_t n_frames,
                 std::uint64_t reserved, unsigned n_sockets)
    : sim::SimObject("physmem", eq), nFrames(n_frames),
      reservedFrames(reserved), nSockets(n_sockets),
      allocated(n_frames, false),
      allocs(stats().counter("allocs", "frames allocated")),
      frees(stats().counter("frees", "frames freed")),
      failedAllocs(stats().counter("failed_allocs",
                                   "allocations that found no free frame"))
{
    if (reserved >= n_frames)
        fatal("physmem: reserved (", reserved, ") >= total frames (",
              n_frames, ")");
    if (n_sockets == 0)
        fatal("physmem: zero sockets");
    const std::uint64_t allocatable = n_frames - reserved;
    if (n_sockets > allocatable)
        fatal("physmem: more sockets (", n_sockets,
              ") than allocatable frames (", allocatable, ")");
    socketSpan = allocatable / n_sockets;
    freeLists.resize(n_sockets);
    freeCounts.assign(n_sockets, 0);
    // Hand out low frame numbers first within each span (reserved
    // frames are the highest-numbered ones) so tests get predictable
    // PFNs; the last socket's span absorbs any remainder.
    for (unsigned s = 0; s < n_sockets; ++s) {
        std::uint64_t lo = s * socketSpan;
        std::uint64_t hi =
            (s + 1 == n_sockets) ? allocatable : (s + 1) * socketSpan;
        freeLists[s].reserve(hi - lo);
        for (std::uint64_t pfn = hi; pfn-- > lo;)
            freeLists[s].push_back(pfn);
        freeCounts[s] = hi - lo;
    }
    rebuildWindowCounts();
}

void
PhysMem::rebuildWindowCounts()
{
    windowFree.assign((nFrames + pmdLeafPages - 1) / pmdLeafPages, 0);
    for (const auto &l : freeLists)
        for (Pfn pfn : l)
            if (!allocated[pfn])
                ++windowFree[pfn >> pmdLeafShift];
}

Pfn
PhysMem::alloc(unsigned socket)
{
    for (unsigned i = 0; i < nSockets; ++i) {
        unsigned s = (socket + i) % nSockets;
        if (freeCounts[s] == 0)
            continue;
        auto &l = freeLists[s];
        // Entries claimed out of the middle by allocContig are stale;
        // freeCounts[s] > 0 guarantees a live one remains below.
        while (allocated[l.back()])
            l.pop_back();
        Pfn pfn = l.back();
        l.pop_back();
        allocated[pfn] = true;
        --freeCounts[s];
        --windowFree[pfn >> pmdLeafShift];
        ++allocs;
        return pfn;
    }
    ++failedAllocs;
    return invalidPfn;
}

Pfn
PhysMem::allocOnSocket(unsigned socket)
{
    if (freeCounts[socket] == 0) {
        ++failedAllocs;
        return invalidPfn;
    }
    auto &l = freeLists[socket];
    while (allocated[l.back()])
        l.pop_back();
    Pfn pfn = l.back();
    l.pop_back();
    allocated[pfn] = true;
    --freeCounts[socket];
    --windowFree[pfn >> pmdLeafShift];
    ++allocs;
    return pfn;
}

Pfn
PhysMem::allocContig(unsigned socket, unsigned order)
{
    const std::uint64_t run = 1ULL << order;
    if (run > pmdLeafPages)
        panic("physmem: allocContig order ", order, " beyond 2 MB");
    if (freeCounts[socket] < run) {
        ++failedAllocs;
        return invalidPfn;
    }
    const std::uint64_t lo = socket * socketSpan;
    const std::uint64_t hi = (socket + 1 == nSockets)
                                 ? nFrames - reservedFrames
                                 : (socket + 1) * socketSpan;
    // Whole-window scan: a window is eligible when every one of its
    // 512 frames is free, so runs of any order carve from fully free
    // windows only. That deliberately mirrors a buddy allocator's
    // high-order path (no splitting of partially used blocks) and
    // keeps the scan O(windows) with the per-window free counters.
    for (std::uint64_t w = (lo + pmdLeafPages - 1) >> pmdLeafShift;
         (w << pmdLeafShift) + pmdLeafPages <= hi; ++w) {
        if (windowFree[w] != pmdLeafPages)
            continue;
        Pfn base = w << pmdLeafShift;
        for (std::uint64_t i = 0; i < run; ++i)
            allocated[base + i] = true;
        freeCounts[socket] -= run;
        windowFree[w] -= static_cast<std::uint16_t>(run);
        allocs += run;
        return base;
    }
    ++failedAllocs;
    return invalidPfn;
}

void
PhysMem::free(Pfn pfn)
{
    if (pfn >= nFrames)
        panic("physmem: freeing out-of-range pfn ", pfn);
    if (!allocated[pfn])
        panic("physmem: double free of pfn ", pfn);
    allocated[pfn] = false;
    unsigned s = socketOf(pfn);
    freeLists[s].push_back(pfn);
    ++freeCounts[s];
    ++windowFree[pfn >> pmdLeafShift];
    ++frees;
}

bool
PhysMem::isAllocated(Pfn pfn) const
{
    return pfn < nFrames && allocated[pfn];
}

} // namespace hwdp::mem

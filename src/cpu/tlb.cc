#include "cpu/tlb.hh"

#include "sim/logging.hh"

namespace hwdp::cpu {

Tlb::Tlb(unsigned l1_entries, unsigned l2_entries, unsigned l2_assoc)
    : l1Cap(l1_entries), l2Assoc(l2_assoc)
{
    if (l1_entries == 0 || l2_entries == 0 || l2_assoc == 0 ||
        l2_entries % l2_assoc != 0)
        fatal("tlb: bad geometry");
    l2Sets = l2_entries / l2_assoc;
    l2.resize(l2_entries);
}

Tlb::Result
Tlb::lookup(VAddr vaddr)
{
    ++nLookups;
    std::uint64_t vpn = vaddr >> pageShift;

    Result r;
    auto it = l1Map.find(vpn);
    if (it != l1Map.end()) {
        l1Order.splice(l1Order.begin(), l1Order, it->second.second);
        r.hit = true;
        r.l1Hit = true;
        r.pfn = it->second.first;
        return r;
    }
    ++nL1Miss;

    if (L2Entry *e = l2Find(vpn)) {
        e->lastUse = ++useClock;
        l1Insert(vpn, e->pfn);
        r.hit = true;
        r.pfn = e->pfn;
        return r;
    }
    ++nMiss;
    return r;
}

void
Tlb::l1Insert(std::uint64_t vpn, Pfn pfn)
{
    auto it = l1Map.find(vpn);
    if (it != l1Map.end()) {
        it->second.first = pfn;
        l1Order.splice(l1Order.begin(), l1Order, it->second.second);
        return;
    }
    if (l1Map.size() >= l1Cap) {
        std::uint64_t victim = l1Order.back();
        l1Order.pop_back();
        l1Map.erase(victim);
    }
    l1Order.push_front(vpn);
    l1Map[vpn] = {pfn, l1Order.begin()};
}

Tlb::L2Entry *
Tlb::l2Find(std::uint64_t vpn)
{
    std::uint64_t set = vpn % l2Sets;
    L2Entry *base = &l2[set * l2Assoc];
    for (unsigned w = 0; w < l2Assoc; ++w) {
        if (base[w].valid && base[w].vpn == vpn)
            return &base[w];
    }
    return nullptr;
}

void
Tlb::l2Insert(std::uint64_t vpn, Pfn pfn)
{
    std::uint64_t set = vpn % l2Sets;
    L2Entry *base = &l2[set * l2Assoc];
    L2Entry *victim = base;
    for (unsigned w = 0; w < l2Assoc; ++w) {
        L2Entry &e = base[w];
        if (e.valid && e.vpn == vpn) {
            e.pfn = pfn;
            e.lastUse = ++useClock;
            return;
        }
        if (!e.valid) {
            victim = &e;
        } else if (victim->valid && e.lastUse < victim->lastUse) {
            victim = &e;
        }
    }
    victim->valid = true;
    victim->vpn = vpn;
    victim->pfn = pfn;
    victim->lastUse = ++useClock;
}

void
Tlb::insert(VAddr vaddr, Pfn pfn)
{
    std::uint64_t vpn = vaddr >> pageShift;
    l1Insert(vpn, pfn);
    l2Insert(vpn, pfn);
}

void
Tlb::invalidate(VAddr vaddr)
{
    std::uint64_t vpn = vaddr >> pageShift;
    auto it = l1Map.find(vpn);
    if (it != l1Map.end()) {
        l1Order.erase(it->second.second);
        l1Map.erase(it);
    }
    if (L2Entry *e = l2Find(vpn))
        e->valid = false;
}

void
Tlb::flush()
{
    l1Map.clear();
    l1Order.clear();
    for (L2Entry &e : l2)
        e.valid = false;
}

} // namespace hwdp::cpu

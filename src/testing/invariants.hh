/**
 * @file
 * Whole-machine consistency invariants, checkable mid-simulation.
 *
 * The properties that must hold at any event boundary regardless of
 * paging mode or injected faults:
 *
 *  1. Page tables are sane: every present PTE references an allocated,
 *     in-use frame below the frame count; no frame is mapped twice;
 *     every LBA-augmented PTE carries exactly the LBA the file system
 *     assigns that page (or the zero-fill LBA for anonymous areas).
 *  2. Free-page-queue frames are allocated, flagged inSmuQueue and
 *     never simultaneously mapped.
 *  3. The PMSHR holds no duplicate PTE addresses, its occupancy
 *     matches its valid entries, and the SMU's isolated NVMe queues
 *     never carry more commands than the PMSHR has entries in flight.
 *  4. Frame flags compose: inPageCache implies a file identity,
 *     lruLinked implies inUse, inSmuQueue excludes lruLinked.
 *  5. Socket topology is coherent (multi-socket machines): every PTE
 *     routes to an existing socket and carries its file's device
 *     socket id; free-page queues hold only home-socket frames;
 *     shootdown epochs agree across all sockets.
 *
 * checkInvariants() returns human-readable violation strings (empty =
 * machine consistent), so tests can EXPECT the vector empty and get a
 * useful message when it is not.
 */

#ifndef HWDP_TESTING_INVARIANTS_HH
#define HWDP_TESTING_INVARIANTS_HH

#include <string>
#include <vector>

namespace hwdp::system {
class System;
}

namespace hwdp::testing {

/** Check every invariant on @p sys; empty result = consistent. */
std::vector<std::string> checkInvariants(system::System &sys);

} // namespace hwdp::testing

#endif // HWDP_TESTING_INVARIANTS_HH

#include "core/software_smu.hh"

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::core {

void
SoftwareSmu::serialize(sim::Serializer &s)
{
    s.section("swsmu");
    if (!inflight.empty() || !byPage.empty())
        throw sim::SerializeError(
            "checkpoint: software SMU has emulated misses in flight; "
            "quiesce the machine first");
    for (auto &d : devices) {
        s.check(d.valid, "swsmu device slot valid");
        s.check(d.qid, "swsmu device queue id");
    }
    s.io(nextCid);
    stats().serialize(s);
}

SoftwareSmu::SoftwareSmu(std::string name, sim::EventQueue &eq,
                         os::Kernel &kernel, FreePageQueue &fpq)
    : sim::SimObject(std::move(name), eq), kernel(kernel), fpq(fpq),
      devices(8),
      statHandled(stats().counter("handled",
                                  "misses handled by the emulation")),
      statCoalesced(stats().counter("coalesced",
                                    "duplicate misses coalesced")),
      statQueueEmpty(stats().counter(
          "queue_empty", "bounces to the normal path: queue empty")),
      statIoRetry(stats().counter(
          "io_retries", "NVMe error completions retried once")),
      statRejectIoError(stats().counter(
          "rejected_io_error",
          "bounces: NVMe error persisted after retry")),
      statLatency(stats().histogram(
          "miss_latency_us", "SW-emulated miss latency (us)", 0.5, 400))
{
}

void
SoftwareSmu::configureDevice(unsigned dev_id, ssd::SsdDevice *dev,
                             std::uint16_t queue_depth)
{
    if (dev_id >= devices.size())
        fatal("software smu: device id out of range");
    // Interrupts stay enabled: the modified interrupt handler touches
    // the mwait-monitored address (Section VI-A).
    std::uint16_t qid = dev->createQueuePair(
        queue_depth, nvme::Priority::urgent, true);
    dev->setCompletionListener(
        qid,
        [this, dev_id](std::uint16_t q,
                       const nvme::CompletionEntry &cqe) {
            // The emulated completion path consumes the CQ entry and
            // rings the CQ doorbell (cost inside swSmuComplete).
            DeviceSlot &slot = devices[dev_id];
            if (slot.dev->queuePair(q).cqHasWork())
                slot.dev->queuePair(q).popCqe();
            slot.dev->ringCqDoorbell(q);
            onInterrupt(cqe.cid, cqe.status);
        });
    devices[dev_id] = DeviceSlot{true, dev, qid};
}

void
SoftwareSmu::install()
{
    kernel.setFaultInterceptor(
        [this](os::Thread &t, os::AddressSpace &as, VAddr vaddr,
               os::pte::Entry e, std::function<void()> resume) {
            return intercept(t, as, vaddr, e, std::move(resume));
        });
}

std::uint64_t
SoftwareSmu::pageKey(const os::AddressSpace &as, VAddr va)
{
    return (static_cast<std::uint64_t>(as.id()) << 48) ^
           (va >> pageShift);
}

bool
SoftwareSmu::intercept(os::Thread &t, os::AddressSpace &as, VAddr vaddr,
                       os::pte::Entry e, std::function<void()> resume)
{
    if (!os::pte::isLbaAugmented(e))
        return false;

    vaddr &= ~pageOffsetMask;
    unsigned core = t.core();
    auto &sched = kernel.scheduler();

    // Outstanding miss to the same page? Join it: this faulter also
    // runs the emulation entry code, then mwaits alongside.
    auto pit = byPage.find(pageKey(as, vaddr));
    if (pit != byPage.end()) {
        ++statCoalesced;
        std::uint16_t cid = pit->second;
        sched.runPhases(core, {&os::phases::swSmuSubmit},
                        [this, &t, core, cid,
                         resume = std::move(resume)]() mutable {
                            kernel.scheduler().setHwStalled(core, true);
                            inflight[cid].waiters.emplace_back(
                                &t, std::move(resume));
                        });
        return true;
    }

    // Free page from the shared queue; when it is empty, bounce back
    // to the normal path (which also triggers the overlapped refill).
    auto pop = fpq.pop(0);
    if (!pop.ok) {
        ++statQueueEmpty;
        return false;
    }

    unsigned dev_id = os::pte::deviceIdOf(e);
    Lba lba = os::pte::lbaOf(e);
    if (dev_id >= devices.size() || !devices[dev_id].valid)
        panic("software smu: fault on unconfigured device ", dev_id);

    std::uint16_t cid = nextCid++;
    Inflight inf;
    inf.t = &t;
    inf.as = &as;
    inf.vaddr = vaddr;
    inf.pfn = pop.pfn;
    inf.started = now();
    inf.devId = dev_id;
    inf.lba = lba;
    inf.resume = std::move(resume);
    inflight.emplace(cid, std::move(inf));
    byPage[pageKey(as, vaddr)] = cid;

    // Emulated PMSHR insert + NVMe command build/submit, then mwait.
    sched.runPhases(
        core, {&os::phases::swSmuSubmit},
        [this, core, cid, dev_id, lba, pfn = pop.pfn] {
            submitRead(dev_id, cid, lba, pfn, core);
        });
    return true;
}

void
SoftwareSmu::submitRead(unsigned dev_id, std::uint16_t cid, Lba lba,
                        Pfn pfn, unsigned core)
{
    DeviceSlot &slot = devices[dev_id];
    nvme::SubmissionEntry sqe;
    sqe.opcode = nvme::Opcode::read;
    sqe.cid = cid;
    sqe.slba = lba;
    sqe.prp1 = static_cast<PAddr>(pfn) << pageShift;
    if (!slot.dev->queuePair(slot.qid).pushSqe(sqe))
        panic("software smu: SQ full");
    slot.dev->ringSqDoorbell(slot.qid);
    // monitor/mwait: the thread keeps the core but consumes no
    // execution resources until the interrupt touches the
    // monitored line.
    kernel.scheduler().setHwStalled(core, true);
}

void
SoftwareSmu::onInterrupt(std::uint16_t cid, std::uint16_t status)
{
    auto it = inflight.find(cid);
    if (it == inflight.end())
        panic("software smu: completion for unknown cid ", cid);

    if (status != 0) {
        if (!it->second.retried) {
            // Retry once, mirroring the hardware policy: wake from
            // mwait, rebuild and resubmit the command, mwait again.
            it->second.retried = true;
            ++statIoRetry;
            unsigned core = it->second.t->core();
            unsigned dev_id = it->second.devId;
            Lba lba = it->second.lba;
            Pfn pfn = it->second.pfn;
            kernel.scheduler().setHwStalled(core, false);
            kernel.scheduler().runPhases(
                core,
                {&os::phases::swSmuWake, &os::phases::swSmuSubmit},
                [this, cid, dev_id, lba, pfn, core] {
                    submitRead(dev_id, cid, lba, pfn, core);
                });
            return;
        }

        // Persistent error: return the frame and send the faulter and
        // every coalesced waiter down the normal OS fault path, like
        // the hardware bounce (the block layer owns retries there).
        ++statRejectIoError;
        Inflight inf = std::move(it->second);
        inflight.erase(it);
        byPage.erase(pageKey(*inf.as, inf.vaddr));
        fpq.push(inf.pfn);

        unsigned core = inf.t->core();
        kernel.scheduler().setHwStalled(core, false);
        kernel.scheduler().runPhases(
            core, {&os::phases::swSmuWake},
            [this, inf = std::move(inf)]() mutable {
                kernel.handlePageFault(*inf.t, *inf.as, inf.vaddr,
                                       false, true,
                                       std::move(inf.resume));
                for (auto &[wt, wresume] : inf.waiters) {
                    kernel.scheduler().setHwStalled(wt->core(), false);
                    kernel.handlePageFault(*wt, *inf.as, inf.vaddr,
                                           false, true,
                                           std::move(wresume));
                }
            });
        return;
    }

    // The emulation resumes on the faulting core: wake from mwait,
    // run the emulated completion (CQ protocol + PTE update), then
    // return to user. Metadata stays for kpted, as in hardware.
    Inflight inf = std::move(it->second);
    inflight.erase(it);
    byPage.erase(pageKey(*inf.as, inf.vaddr));

    unsigned core = inf.t->core();
    kernel.scheduler().runPhases(
        core, {&os::phases::swSmuWake, &os::phases::swSmuComplete},
        [this, inf = std::move(inf)]() mutable {
            os::Vma *vma = inf.as->findVma(inf.vaddr);
            if (!vma)
                panic("software smu: VMA vanished under a miss");
            kernel.installHardwareHandled(*inf.as, *vma, inf.vaddr,
                                          inf.pfn);
            ++statHandled;
            statLatency.sample(toMicroseconds(now() - inf.started));

            kernel.scheduler().setHwStalled(inf.t->core(), false);
            inf.resume();
            for (auto &[wt, wresume] : inf.waiters) {
                kernel.scheduler().setHwStalled(wt->core(), false);
                wresume();
            }
        });
}

} // namespace hwdp::core

/**
 * @file
 * The OS kernel model: syscalls, demand paging, memory management.
 *
 * Owns the page-frame metadata, the page cache, the file system, the
 * block layer, the scheduler and the reclaimer, and implements the
 * OSDP page-fault path with the Figure 3 phase structure. The HWDP
 * control plane (fast mmap population, kpted, kpoold, the SW-emulated
 * SMU) hooks in through the interceptor/hook interfaces so the base
 * kernel has no dependency on the hardware extension — mirroring the
 * paper's claim that the extension is OS-agnostic (Section V).
 */

#ifndef HWDP_OS_KERNEL_HH
#define HWDP_OS_KERNEL_HH

#include <functional>
#include <memory>
#include <vector>

#include "mem/cache_hierarchy.hh"
#include "mem/phys_mem.hh"
#include "os/block_layer.hh"
#include "os/file_system.hh"
#include "os/page.hh"
#include "os/page_cache.hh"
#include "os/reclaim.hh"
#include "os/rmap.hh"
#include "os/scheduler.hh"
#include "os/vma.hh"
#include "sim/rng.hh"

namespace hwdp::os {

class FaultHandler;

struct KernelParams
{
    unsigned nLogical = 16;
    unsigned nPhysical = 8;
    Tick cyclePeriod = 357; // 2.8 GHz in ps

    /** Watermarks as fractions of allocatable frames. */
    double lowWatermarkFrac = 0.04;
    double highWatermarkFrac = 0.08;

    /** Background reclaimer: core and period. */
    unsigned reclaimCore = 0;     // chosen by System; last core typical
    Tick reclaimPeriod = milliseconds(1.0);

    /** Dirty bytes accumulated before a WAL writeback I/O is cut. */
    std::uint64_t writebackChunkPages = 1;

    double smtShare = 0.6;

    /**
     * NUMA topology the frame allocator sees: cores are split into
     * equal contiguous groups, one per socket, matching PhysMem's
     * per-socket frame spans. 1 keeps the pre-NUMA single-pool
     * behavior exactly.
     */
    unsigned sockets = 1;

    /** Round-robin fault placement instead of first-touch. */
    bool numaRoundRobin = false;
};

class Kernel : public sim::SimObject
{
  public:
    Kernel(sim::EventQueue &eq, const KernelParams &params,
           mem::PhysMem &pm, mem::CacheHierarchy &caches,
           std::vector<mem::BranchPredictor> &bps, sim::Rng rng);
    ~Kernel() override;

    // ---- Subsystems ---------------------------------------------------
    Scheduler &scheduler() { return *sched; }
    KernelExec &kexec() { return *kernelExec; }
    FileSystem &fs() { return *fileSystem; }
    BlockLayer &blockLayer() { return *blk; }
    PageCache &pageCache() { return pcache; }
    Rmap &rmap() { return *reverseMap; }
    Reclaimer &reclaimer() { return *reclaim; }
    mem::PhysMem &physMem() { return pm; }
    const KernelParams &params() const { return prm; }

    // ---- Devices ------------------------------------------------------
    /** Attach an SSD as block device @p bdev; wires the block layer. */
    void attachDevice(ssd::SsdDevice *dev, BlockDeviceId bdev);
    unsigned deviceIndexOf(BlockDeviceId bdev) const;
    ssd::SsdDevice &deviceOf(BlockDeviceId bdev);

    // ---- NUMA placement ---------------------------------------------------
    /** Socket of a logical core under the equal contiguous split. */
    unsigned
    socketOfCore(unsigned core_id) const
    {
        return prm.sockets <= 1
                   ? 0
                   : core_id / (prm.nLogical / prm.sockets);
    }

    /**
     * Allocate a frame for a fault taken on @p core_id under the
     * configured placement policy (first-touch homes the frame on the
     * faulting core's socket, round-robin interleaves; both fall back
     * to the next socket when the preferred node is dry). Single-socket
     * kernels take the plain allocator path unchanged.
     */
    Pfn allocFrameFor(unsigned core_id);

    // ---- Page-frame metadata -------------------------------------------
    Page &page(Pfn pfn);
    std::uint64_t numFrames() const
    {
        return static_cast<std::uint64_t>(framePages.size());
    }

    // ---- Address spaces --------------------------------------------------
    AddressSpace *createAddressSpace();

    /** All live address spaces (the verification harness walks them). */
    const std::vector<std::unique_ptr<AddressSpace>> &addressSpaces() const
    {
        return spaces;
    }

    // ---- Syscalls (timed; @p done fires when the call returns) ----------
    /**
     * mmap() a whole file. With @p fast_mmap the paper's new flag is
     * set: every PTE is populated at map time with either the resident
     * frame (page-cache hit) or an LBA-augmented entry (Section IV-B).
     */
    void mmapFile(Thread &t, AddressSpace &as, File &file, bool fast_mmap,
                  std::function<void(Vma *)> done);

    /**
     * Boot-time mmap: same state effects as mmapFile but untimed
     * (used by the system builder to set a machine up before the
     * measured run starts).
     */
    Vma *mmapFileSync(AddressSpace &as, File &file, bool fast_mmap);

    /**
     * Anonymous mapping (heap/stack-like). With @p fast_mmap every
     * PTE carries the reserved zero-fill LBA so first-touch minor
     * faults are handled by the SMU without I/O (Section V). Untimed
     * boot-time variant.
     */
    Vma *mmapAnonSync(AddressSpace &as, std::uint64_t n_pages,
                      bool fast_mmap);

    /**
     * munmap() the VMA: synchronises HWDP metadata (via hooks), tears
     * down PTEs and releases the pages.
     */
    void munmapVma(Thread &t, AddressSpace &as, Vma *vma,
                   std::function<void()> done);

    /** msync(): metadata barrier + writeback of dirty pages. */
    void msyncVma(Thread &t, Vma *vma, std::function<void()> done);

    /**
     * Buffered write of @p bytes to @p file (WAL-style appends).
     * Charges syscall phases; cuts an asynchronous write I/O whenever
     * writebackChunkPages worth of dirty data has accumulated.
     */
    void writeFile(Thread &t, File &file, std::uint64_t page_index,
                   std::uint64_t bytes, std::function<void()> done);

    /** fork() semantics for fast-mmap areas: revert LBA PTEs (V). */
    void forkRevert(AddressSpace &as);

    // ---- Demand paging ---------------------------------------------------
    /**
     * Page-fault entry (called from the page-table walker).
     * @param smu_fallback True when the SMU bounced the miss back to
     *                     the OS (free-page queue empty / PMSHR full).
     * @param resume       Runs in the faulting thread's context once
     *                     the fault is resolved.
     */
    void handlePageFault(Thread &t, AddressSpace &as, VAddr vaddr,
                         bool is_write, bool smu_fallback,
                         std::function<void()> resume);

    // ---- Page lifecycle (fault path, reclaim, HWDP control plane) -------
    /**
     * Install a resident page: PTE write plus, when @p synced, the OS
     * metadata (page cache, LRU, rmap). With !synced the PTE keeps the
     * LBA bit set and metadata is left for kpted (Table I row 3).
     */
    void installPage(AddressSpace &as, Vma &vma, VAddr vaddr, Pfn pfn,
                     bool synced);

    /** Release a frame and reset its metadata. */
    void freePage(Page &page);

    /**
     * Install a page the way the hardware does it: PTE written with
     * the LBA bit kept set, upper-level LBA bits marked, and *no* OS
     * metadata touched (that is kpted's job, Table I row 3). Used by
     * the software-emulated SMU; the real SMU's page-table updater
     * performs the same writes through its entry references.
     */
    void installHardwareHandled(AddressSpace &as, Vma &vma, VAddr vaddr,
                                Pfn pfn);

    /** Metadata-only synchronisation of one hardware-handled PTE. */
    void syncHardwareHandledPte(AddressSpace &as, VAddr vaddr,
                                EntryRef ref);

    // ---- HWDP hook points -------------------------------------------------
    /**
     * Early-fault interceptor (the SW-emulated SMU). Returns true when
     * it takes ownership of the fault.
     */
    using FaultInterceptor = std::function<bool(
        Thread &, AddressSpace &, VAddr, pte::Entry,
        std::function<void()>)>;
    void setFaultInterceptor(FaultInterceptor fn)
    {
        interceptor = std::move(fn);
    }

    /** Overlapped free-page-queue refill during OS-fault device I/O. */
    void setRefillHook(std::function<void(unsigned core)> fn)
    {
        refillHook = std::move(fn);
    }

    struct HwdpHooks
    {
        /** kpted-style sync of a VMA range, then done. */
        std::function<void(AddressSpace &, VAddr, VAddr, unsigned,
                           std::function<void()>)> syncMetadata;
        /** Wait for outstanding SMU page misses (SMU barrier). */
        std::function<void(std::function<void()>)> smuBarrier;
        /** A VMA is about to be destroyed; drop any references to it
         *  (the fast-mmap registry kpted scans, in particular). */
        std::function<void(Vma *)> vmaUnmapped;
    };
    void setHwdpHooks(HwdpHooks hooks) { hwdpHooks = std::move(hooks); }

    /** TLB shootdown callback (registered by the CPU layer). */
    void setShootdownFn(Rmap::ShootdownFn fn);

    /**
     * Invoked after every kpted-style metadata sync rewrites a
     * hardware-handled PTE (registered by the CPU layer): the walkers'
     * page-walk caches drop the affected upper entries, the coherence
     * a real paging-structure cache needs on PTE maintenance.
     */
    void setPteSyncFn(std::function<void(AddressSpace &, VAddr)> fn)
    {
        pteSyncFn = std::move(fn);
    }

    // ---- Fault statistics -------------------------------------------------
    std::uint64_t majorFaults() const { return statMajor.value(); }
    std::uint64_t minorFaults() const { return statMinor.value(); }
    std::uint64_t smuFallbackFaults() const
    {
        return statSmuFallback.value();
    }
    std::uint64_t oomKills() const { return statOomKills.value(); }
    sim::Histogram &faultLatencyUs() { return statFaultLatency; }

    /**
     * Checkpoint the whole OS layer: kernel rng, phase accounting,
     * scheduler, file system, block layer, rmap, reclaimer, page
     * cache, per-frame metadata (file/space references encoded as
     * file id / asid), every address space and the WAL chunk
     * accumulator. Only valid at quiesce.
     */
    void serialize(sim::Serializer &s);

  private:
    friend class FaultHandler;

    KernelParams prm;
    mem::PhysMem &pm;
    sim::Rng rng;

    std::unique_ptr<KernelExec> kernelExec;
    std::unique_ptr<Scheduler> sched;
    std::unique_ptr<FileSystem> fileSystem;
    std::unique_ptr<BlockLayer> blk;
    std::unique_ptr<Rmap> reverseMap;
    std::unique_ptr<Reclaimer> reclaim;
    std::unique_ptr<FaultHandler> faults;
    PageCache pcache;

    std::vector<Page> framePages;
    std::vector<std::unique_ptr<AddressSpace>> spaces;

    struct AttachedDevice
    {
        ssd::SsdDevice *dev;
        BlockDeviceId bdev;
        unsigned blkIndex;
    };
    std::vector<AttachedDevice> attached;

    /** Per-file partially filled writeback chunk (in pages). */
    std::unordered_map<std::uint32_t, std::uint64_t> walDirtyBytes;

    /** Next socket for round-robin placement (serialized when >1 socket). */
    std::uint64_t numaRrCursor = 0;

    FaultInterceptor interceptor;
    std::function<void(unsigned)> refillHook;
    HwdpHooks hwdpHooks;
    Rmap::ShootdownFn shootdownFn;
    std::function<void(AddressSpace &, VAddr)> pteSyncFn;

    /** PTE population for a fast-mmap area; returns pages touched. */
    std::uint64_t populateFastVma(AddressSpace &as, File &file, Vma *vma);

    sim::Counter &statMajor;
    sim::Counter &statMinor;
    sim::Counter &statSmuFallback;
    sim::Counter &statMmapCalls;
    sim::Counter &statMunmapCalls;
    sim::Counter &statWalWrites;
    sim::Counter &statOomKills;
    sim::Histogram &statFaultLatency;
};

} // namespace hwdp::os

#endif // HWDP_OS_KERNEL_HH

/**
 * @file
 * The SMU free page queue.
 *
 * A single-producer / single-consumer circular queue in host memory
 * holding <PFN, DMA address> pairs (Section III-C). The producer is
 * the OS (kpoold or the fault-path refill); the consumer is the SMU's
 * free page fetcher. Because a naive consumer would expose a full
 * memory round trip per pop, the hardware eagerly prefetches a few
 * entries into an SMU-internal buffer during idle/device time; a pop
 * that hits the buffer is free, one that must touch memory pays the
 * round-trip latency.
 */

#ifndef HWDP_CORE_FREE_PAGE_QUEUE_HH
#define HWDP_CORE_FREE_PAGE_QUEUE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sim/types.hh"

namespace hwdp::sim {
class Serializer;
}

namespace hwdp::core {

class FreePageQueue
{
  public:
    /**
     * @param capacity       Ring entries (the paper uses 4096).
     * @param prefetch_depth SMU-internal buffer entries (16).
     */
    FreePageQueue(std::uint64_t capacity, unsigned prefetch_depth = 16);

    // ---- Producer (OS) side ------------------------------------------
    /** @return false when the ring is full. */
    bool push(Pfn pfn);

    std::uint64_t freeSlots() const { return cap - ring.size(); }

    // ---- Consumer (SMU free page fetcher) side -------------------------
    struct PopResult
    {
        bool ok = false;
        Pfn pfn = 0;
        Tick latency = 0; ///< 0 on a prefetch-buffer hit.
    };

    /**
     * Pop one free page. Hits the prefetch buffer when possible;
     * otherwise reads the ring from memory at @p mem_round_trip.
     */
    PopResult pop(Tick mem_round_trip);

    /**
     * Top up the prefetch buffer from the ring (called by the SMU
     * during device I/O so the latency hides; costs nothing here).
     */
    void refillPrefetch();

    /** Disable the prefetch buffer (ablation). */
    void setPrefetchEnabled(bool on);

    bool empty() const { return ring.empty() && buffer.empty(); }
    std::uint64_t size() const { return ring.size() + buffer.size(); }
    std::uint64_t capacity() const { return cap; }
    unsigned prefetchDepth() const { return depth; }
    unsigned buffered() const
    {
        return static_cast<unsigned>(buffer.size());
    }

    std::uint64_t pops() const { return nPops; }
    std::uint64_t bufferHits() const { return nBufferHits; }
    std::uint64_t emptyPops() const { return nEmptyPops; }

    /**
     * Fault injection: when the hook returns true a pop behaves as if
     * the queue were dry, regardless of its contents (the bounce path
     * the OS must survive, Section IV-D).
     */
    void setDryHook(std::function<bool()> fn) { dryHook = std::move(fn); }

    /** Visit every queued PFN (ring + prefetch buffer). */
    void forEachPfn(const std::function<void(Pfn)> &fn) const;

    /** Checkpoint ring and buffer contents plus the pop counters. */
    void serialize(sim::Serializer &s);

  private:
    std::uint64_t cap;
    unsigned depth;
    bool prefetchOn = true;
    std::deque<Pfn> ring;      // host-memory ring contents
    std::deque<Pfn> buffer;    // SMU-internal prefetch buffer
    std::function<bool()> dryHook;

    std::uint64_t nPops = 0;
    std::uint64_t nBufferHits = 0;
    std::uint64_t nEmptyPops = 0;
};

} // namespace hwdp::core

#endif // HWDP_CORE_FREE_PAGE_QUEUE_HH

/**
 * @file
 * Unit tests for the discrete-event core.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

using namespace hwdp;
using namespace hwdp::sim;

namespace {

class RecordingEvent : public Event
{
  public:
    RecordingEvent(std::vector<int> &log, int id)
        : Event("rec" + std::to_string(id)), log(log), id(id)
    {
    }
    void process() override { log.push_back(id); }

  private:
    std::vector<int> &log;
    int id;
};

} // namespace

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.size(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ProcessesInTickOrder)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2), c(log, 3);
    eq.schedule(&b, 200);
    eq.schedule(&a, 100);
    eq.schedule(&c, 300);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 300u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2), c(log, 3);
    eq.schedule(&a, 50);
    eq.schedule(&b, 50);
    eq.schedule(&c, 50);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, ScheduledFlagTracksLifecycle)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    EXPECT_FALSE(a.scheduled());
    eq.schedule(&a, 10);
    EXPECT_TRUE(a.scheduled());
    EXPECT_EQ(a.when(), 10u);
    eq.run();
    EXPECT_FALSE(a.scheduled());
}

TEST(EventQueue, DoubleSchedulePanics)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    eq.schedule(&a, 10);
    EXPECT_THROW(eq.schedule(&a, 20), PanicError);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2);
    eq.schedule(&a, 100);
    eq.run();
    EXPECT_THROW(eq.schedule(&b, 50), PanicError);
}

TEST(EventQueue, DescheduleRemovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2}));
}

TEST(EventQueue, DescheduleIdlePanics)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    EXPECT_THROW(eq.deschedule(&a), PanicError);
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.reschedule(&a, 30);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
}

TEST(EventQueue, LambdaEventsSelfDestruct)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleLambda(10, [&] { ++fired; });
    eq.scheduleLambdaIn(20, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RunHonoursLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleLambda(10, [&] { ++fired; });
    eq.scheduleLambda(100, [&] { ++fired; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunWhileStopsOnCondition)
{
    EventQueue eq;
    int fired = 0;
    for (Tick t = 10; t <= 100; t += 10)
        eq.scheduleLambda(t, [&] { ++fired; });
    eq.runWhile([&] { return fired < 3; });
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    std::vector<Tick> ticks;
    std::function<void()> chain = [&] {
        ticks.push_back(eq.now());
        if (ticks.size() < 5)
            eq.scheduleLambdaIn(7, chain);
    };
    eq.scheduleLambda(1, chain);
    eq.run();
    EXPECT_EQ(ticks, (std::vector<Tick>{1, 8, 15, 22, 29}));
}

TEST(EventQueue, ProcessedCountAccumulates)
{
    EventQueue eq;
    for (int i = 0; i < 10; ++i)
        eq.scheduleLambda(i + 1, [] {});
    eq.run();
    EXPECT_EQ(eq.processedCount(), 10u);
}

TEST(EventQueue, ZeroDelayFiresAtCurrentTick)
{
    EventQueue eq;
    eq.scheduleLambda(5, [] {});
    eq.run();
    Tick before = eq.now();
    bool fired = false;
    eq.scheduleLambdaIn(0, [&] { fired = true; });
    eq.run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(eq.now(), before);
}

/**
 * @file
 * The Storage Management Unit (SMU) — the paper's core contribution.
 *
 * One SMU per socket. The page miss handler (Figure 7) receives miss
 * requests from MMUs, coalesces duplicates in the PMSHR, fetches a
 * free page frame from the free page queue (prefetch-buffered), has
 * the NVMe host controller issue a 4 KB read on the device's isolated
 * urgent queue, snoops the completion, updates the PTE/PMD/PUD in
 * place and broadcasts completion to the stalled walkers — all
 * without a single instruction of OS code on the critical path.
 *
 * When the PMSHR is full or the free page queue is empty the miss is
 * bounced back to the MMU, which raises a conventional page fault
 * (the OS then also refills the queue, Section IV-D).
 */

#ifndef HWDP_CORE_SMU_HH
#define HWDP_CORE_SMU_HH

#include <functional>
#include <memory>
#include <vector>

#include "core/free_page_queue.hh"
#include "core/nvme_host_controller.hh"
#include "core/pmshr.hh"
#include "core/pt_updater.hh"
#include "cpu/mmu.hh"
#include "os/kernel.hh"

namespace hwdp::core {

class Smu : public sim::SimObject, public cpu::PageMissHandlerIface
{
  public:
    struct Params
    {
        unsigned pmshrEntries = 32;
        std::uint64_t freeQueueCapacity = 4096;
        unsigned prefetchDepth = 16;

        /** MMU-to-SMU request transfer (two register writes). */
        Cycles requestRegWrites = 2;
        /** PMSHR CAM lookup. */
        Cycles camLookup = 5;
        /** Writing the allocated PFN into the PMSHR entry. */
        Cycles pfnWrite = 1;
        /** PTE + PMD + PUD read/update (three LLC read+writes). */
        Cycles ptUpdateCycles = 97;
        /** Completion-unit bookkeeping. */
        Cycles completionCycles = 2;
        /** Broadcast to MMUs + walk completion check. */
        Cycles notifyCycles = 2;

        /** Exposed memory read when the prefetch buffer is empty. */
        Tick memRoundTrip = nanoseconds(90);

        /**
         * Zeroing a 4 KB frame for a first-touch anonymous miss
         * (Section V): the SMU bypasses the NVMe path and a hardware
         * zero engine prepares the frame.
         */
        Tick zeroFillLatency = nanoseconds(300);

        /**
         * Sequential next-page prefetch (Section V, "Prefetching
         * Support", left as future work by the paper): on a miss,
         * also fill the following page when its PTE is still
         * LBA-augmented. A later touch either finds the PTE present
         * or coalesces onto the in-flight PMSHR entry.
         */
        bool sequentialPrefetch = false;

        /**
         * Per-core free page queues (Section V, "Enforcing OS-level
         * Resource Management Policy", future work in the paper):
         * each thread context draws from its own queue so an OS
         * memory policy (NUMA, cgroups, coloring) can be enforced
         * per core. freeQueueCapacity is split across the queues.
         */
        bool perCoreFreeQueues = false;
        unsigned nFreeQueues = 16;

        /**
         * Multi-socket topology: logical cores per socket (0 — the
         * default — treats every requester as local). A miss whose
         * core sits on another socket pays remoteRequestLatency on
         * top of the register-write delivery: the paper's SMU is
         * per-socket, so a remote-socket PTE routes the miss across
         * the interconnect to the owning SMU.
         */
        unsigned coresPerSocket = 0;

        /** Cross-socket request round-trip premium. */
        Tick remoteRequestLatency = nanoseconds(120.0);

        /**
         * Inline fault fast path (MachineConfig::faultFastPath): the
         * miss-handling chain executes inline on the logical clock
         * whenever it finishes before the next scheduled event,
         * skipping the smu.lookup/smu.issue/nvme.doorbell event hops.
         * Simulated results are bit-identical either way. Disabled
         * automatically when sequentialPrefetch is on (the prefetch
         * spawns from inside the lookup, which must stay on the event
         * path to preserve demand-vs-prefetch SQE push order).
         */
        bool fastPath = true;

        NvmeHostController::Timing nvme{};
        Tick cyclePeriod = 357;
    };

    Smu(std::string name, sim::EventQueue &eq, unsigned sid,
        const Params &params, os::Kernel &kernel);

    /** Install queue descriptor registers for a block device. */
    void configureDevice(unsigned dev_id, ssd::SsdDevice *dev);

    // ---- cpu::PageMissHandlerIface -------------------------------------
    void handleMiss(cpu::PageMissRequest req) override;
    bool handleMissAt(cpu::PageMissRequest &req, Tick at) override;

    /** Queue serving @p core (queue 0 in the default global mode). */
    FreePageQueue &freePageQueue(unsigned core = 0);
    unsigned numFreeQueues() const
    {
        return static_cast<unsigned>(fpqs.size());
    }
    /** All queues (kpoold refills every one). */
    std::vector<FreePageQueue *> freePageQueues();

    Pmshr &pmshr() { return pmshrUnit; }
    NvmeHostController &hostController() { return nvme; }
    PageTableUpdater &ptUpdater() { return updater; }
    const Params &params() const { return prm; }
    unsigned sid() const { return socketId; }

    /** Invoked when a pop finds the free page queue empty. */
    void setQueueEmptyCallback(std::function<void()> fn)
    {
        onQueueEmpty = std::move(fn);
    }

    /**
     * SMU barrier (Section IV-C): fires @p done once no page miss is
     * outstanding. Used by munmap before tearing PTEs down.
     */
    void barrier(std::function<void()> done);

    std::uint64_t handled() const { return statHandled.value(); }
    std::uint64_t zeroFills() const { return statZeroFill.value(); }
    std::uint64_t prefetches() const { return statPrefetch.value(); }
    std::uint64_t coalesced() const { return statCoalesced.value(); }
    std::uint64_t rejectedQueueEmpty() const
    {
        return statRejectEmpty.value();
    }
    std::uint64_t rejectedPmshrFull() const
    {
        return statRejectFull.value();
    }
    std::uint64_t ioRetries() const { return statIoRetry.value(); }

    /** Misses delivered from a core on another socket. */
    std::uint64_t remoteRequests() const { return nRemoteRequests; }

    /**
     * Misses whose lookup ran inline instead of via the smu.lookup
     * event (host-side observability; never part of simulated state).
     */
    std::uint64_t inlineMisses() const { return nInlineMisses; }
    std::uint64_t rejectedIoError() const
    {
        return statRejectIoError.value();
    }
    sim::Histogram &missLatencyUs() { return statLatency; }

    /**
     * Checkpoint the free page queues, PMSHR bookkeeping, host
     * controller, PT updater and all counters. Requires no miss or
     * barrier outstanding (quiesced).
     */
    void serialize(sim::Serializer &s);

  private:
    unsigned socketId;
    Params prm;
    os::Kernel &kernel;
    Pmshr pmshrUnit;
    std::vector<std::unique_ptr<FreePageQueue>> fpqs;
    NvmeHostController nvme;
    PageTableUpdater updater;
    std::function<void()> onQueueEmpty;
    std::vector<std::function<void()>> barrierWaiters;

    /**
     * Plain member, not a sim::Counter: the SMU's stat group is part
     * of the single-socket stats dump, which must stay byte-identical
     * to pre-NUMA output. Serialized only for multi-socket SMUs.
     */
    std::uint64_t nRemoteRequests = 0;

    /** Host-side fast-path hit count; never serialized. */
    std::uint64_t nInlineMisses = 0;

    sim::Counter &statHandled;
    sim::Counter &statZeroFill;
    sim::Counter &statPrefetch;
    sim::Counter &statCoalesced;
    sim::Counter &statRejectEmpty;
    sim::Counter &statRejectFull;
    sim::Counter &statIoRetry;
    sim::Counter &statRejectIoError;
    sim::Histogram &statLatency;

    void lookupStep(cpu::PageMissRequest req, Tick started);

    /**
     * Fast-path lookup running at logical time @p at (> now()), under
     * the guarantee that no event executes before @p at. Structure
     * mutations (PMSHR, free page queue, counters) run immediately —
     * nothing can observe them before @p at — while callbacks that
     * re-enter kernel/MMU code are delivered through an event at
     * @p at, where now() is what they expect.
     */
    void lookupStepAt(cpu::PageMissRequest req, Tick started, Tick at);

    /**
     * Completion at logical time @p at: == now() on the event path,
     * >= now() when delivered inline by the snooping completion unit
     * (successful completions only).
     */
    void onIoCompleteAt(std::uint16_t tag, std::uint16_t status,
                        Tick at);
    void checkBarrier();

    /** Issue a next-page prefetch fill for the page after @p req. */
    void maybePrefetchNext(const cpu::PageMissRequest &req);
};

} // namespace hwdp::core

#endif // HWDP_CORE_SMU_HH

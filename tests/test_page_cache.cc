/**
 * @file
 * Tests for the page cache index.
 */

#include <gtest/gtest.h>

#include "os/file_system.hh"
#include "os/page_cache.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

using namespace hwdp;
using namespace hwdp::os;

namespace {

struct Fixture : ::testing::Test
{
    FileSystem fs{sim::Rng(1)};
    File *a = fs.createFile("a", 1000, BlockDeviceId{0, 0});
    File *b = fs.createFile("b", 1000, BlockDeviceId{0, 0});
    PageCache pc;
};

} // namespace

using PageCacheTest = Fixture;

TEST_F(PageCacheTest, LookupMissReturnsSentinel)
{
    EXPECT_EQ(pc.lookup(*a, 3), PageCache::noFrame);
    EXPECT_FALSE(pc.contains(*a, 3));
}

TEST_F(PageCacheTest, InsertThenLookup)
{
    pc.insert(*a, 3, 42);
    EXPECT_EQ(pc.lookup(*a, 3), 42u);
    EXPECT_TRUE(pc.contains(*a, 3));
    EXPECT_EQ(pc.size(), 1u);
}

TEST_F(PageCacheTest, FilesDoNotCollide)
{
    pc.insert(*a, 3, 42);
    pc.insert(*b, 3, 43);
    EXPECT_EQ(pc.lookup(*a, 3), 42u);
    EXPECT_EQ(pc.lookup(*b, 3), 43u);
}

TEST_F(PageCacheTest, RemoveWorks)
{
    pc.insert(*a, 3, 42);
    pc.remove(*a, 3);
    EXPECT_EQ(pc.lookup(*a, 3), PageCache::noFrame);
    EXPECT_EQ(pc.size(), 0u);
}

TEST_F(PageCacheTest, DuplicateInsertPanics)
{
    pc.insert(*a, 3, 42);
    EXPECT_THROW(pc.insert(*a, 3, 43), PanicError);
}

TEST_F(PageCacheTest, RemovingAbsentPanics)
{
    EXPECT_THROW(pc.remove(*a, 3), PanicError);
}

TEST_F(PageCacheTest, HitCountersTrackLookups)
{
    pc.insert(*a, 1, 10);
    pc.lookup(*a, 1);
    pc.lookup(*a, 2);
    EXPECT_EQ(pc.lookups(), 2u);
    EXPECT_EQ(pc.hits(), 1u);
}

TEST_F(PageCacheTest, ManyEntriesStayConsistent)
{
    for (std::uint64_t i = 0; i < 1000; ++i)
        pc.insert(*a, i, i + 5000);
    for (std::uint64_t i = 0; i < 1000; ++i)
        ASSERT_EQ(pc.lookup(*a, i), i + 5000);
    EXPECT_EQ(pc.size(), 1000u);
}

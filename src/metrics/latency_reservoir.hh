/**
 * @file
 * Online quantile reservoir for per-request latency.
 *
 * The open-loop serving experiments (Figure 18 extension) report tail
 * latency — p50/p99/p99.9 — over millions of requests, which a
 * fixed-bucket histogram can only approximate and a full sample log
 * cannot afford. The reservoir keeps *exact* samples while the stream
 * fits its capacity and switches to deterministic stride decimation
 * when it does not: every time the retained set fills, the even-index
 * samples are kept, the stride doubles, and only every stride-th
 * subsequent arrival is retained. Unlike randomized reservoir
 * sampling, the retained set is a pure function of the input stream —
 * two runs of the same simulation produce bit-identical reservoirs,
 * which the differential and checkpoint-fork gates rely on.
 *
 * Quantiles are exact (nearest-rank) below capacity; decimated
 * streams report the nearest retained sample, whose rank error is
 * bounded by stride / count.
 */

#ifndef HWDP_METRICS_LATENCY_RESERVOIR_HH
#define HWDP_METRICS_LATENCY_RESERVOIR_HH

#include <cstdint>
#include <vector>

namespace hwdp::sim {
class Serializer;
}

namespace hwdp::metrics {

class LatencyReservoir
{
  public:
    /** @param capacity Retained-sample bound; must be >= 2. */
    explicit LatencyReservoir(std::size_t capacity = 1 << 16);

    void record(double v);

    /** Samples offered (not retained). */
    std::uint64_t count() const { return seq; }

    /** Current decimation stride (1 = every sample retained). */
    std::uint64_t decimationStride() const { return stride; }

    std::size_t retained() const { return samples.size(); }

    /**
     * Nearest-rank quantile, @p q in [0, 1]. Exact while stride is 1;
     * 0.0 on an empty reservoir.
     */
    double quantile(double q) const;

    double min() const;
    double max() const;
    double mean() const;

    /**
     * Quantile across several reservoirs, each sample weighted by its
     * reservoir's stride (a retained sample at stride k stands for k
     * arrivals). The per-server reservoirs of one machine merge this
     * way without ever concatenating raw streams.
     */
    static double quantileAcross(
        const std::vector<const LatencyReservoir *> &rs, double q);

    /** Checkpoint stride, cursor and the retained samples. */
    void serialize(sim::Serializer &s);

  private:
    std::size_t cap;
    std::uint64_t stride = 1;
    std::uint64_t seq = 0;
    std::vector<double> samples;

    /** Host-side sort cache, invalidated by record(); not serialized. */
    mutable std::vector<double> sorted;
    mutable bool sortedValid = false;

    const std::vector<double> &view() const;
};

} // namespace hwdp::metrics

#endif // HWDP_METRICS_LATENCY_RESERVOIR_HH

/**
 * @file
 * ShardPool protocol tests: every region task runs exactly once with
 * its effects visible after the barrier, regions can be reissued
 * back-to-back (the straggler hazard), and the async side lane
 * completes whether a worker claims it or the caller does.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "sim/shard_pool.hh"

using hwdp::sim::ShardPool;

TEST(ShardPool, ParallelForCoversEveryTaskExactlyOnce)
{
    for (unsigned lanes : {2u, 3u, 4u, 8u}) {
        ShardPool pool(lanes);
        ASSERT_EQ(pool.lanes(), lanes);
        for (unsigned n_tasks :
             {0u, 1u, lanes - 1, lanes, 3 * lanes + 1, 97u}) {
            std::vector<std::atomic<unsigned>> counts(n_tasks);
            for (auto &c : counts)
                c.store(0);
            pool.parallelFor(n_tasks, [&](unsigned t) {
                counts[t].fetch_add(1, std::memory_order_relaxed);
            });
            for (unsigned t = 0; t < n_tasks; ++t)
                ASSERT_EQ(counts[t].load(), 1u)
                    << "lanes " << lanes << " tasks " << n_tasks
                    << " task " << t;
        }
    }
}

TEST(ShardPool, BarrierPublishesTaskEffects)
{
    // Plain (non-atomic) writes in tasks must be readable after the
    // barrier — this is the acquire/release contract the cache shards
    // rely on, and what the TSan job checks for real.
    ShardPool pool(4);
    std::vector<std::uint64_t> out(1000, 0);
    pool.parallelFor(static_cast<unsigned>(out.size()), [&](unsigned t) {
        out[t] = std::uint64_t(t) * t + 1;
    });
    for (std::size_t t = 0; t < out.size(); ++t)
        ASSERT_EQ(out[t], std::uint64_t(t) * t + 1);
}

TEST(ShardPool, RepeatedRegionsStress)
{
    // Back-to-back regions with no pause: a straggler from region k
    // must never execute region k+1's work twice or miss it. The sum
    // check catches both double-execution and lost tasks.
    ShardPool pool(4);
    std::uint64_t expect = 0;
    std::atomic<std::uint64_t> got{0};
    for (unsigned round = 0; round < 2000; ++round) {
        unsigned n = round % 7; // exercises n == 0 too
        for (unsigned t = 0; t < n; ++t)
            expect += round + t;
        pool.parallelFor(n, [&, round](unsigned t) {
            got.fetch_add(round + t, std::memory_order_relaxed);
        });
    }
    ASSERT_EQ(got.load(), expect);
    ASSERT_GE(pool.regionsRun(), 1u);
}

TEST(ShardPool, AsyncLaneRunsAndJoins)
{
    ShardPool pool(2);
    for (int round = 0; round < 200; ++round) {
        std::uint64_t flag = 0;
        auto task = [&] { flag = 42; };
        pool.launchAsync(task);
        pool.joinAsync();
        ASSERT_EQ(flag, 42u);
    }
    ASSERT_EQ(pool.asyncTasksRun(), 200u);
}

TEST(ShardPool, AsyncOverlapsParallelForRegions)
{
    // The production shape: post the branch-predictor lane, run the
    // cache levels as regions, then join. The async task and region
    // tasks touch disjoint state.
    ShardPool pool(4);
    for (int round = 0; round < 100; ++round) {
        std::uint64_t side = 0;
        std::vector<std::uint64_t> main(64, 0);
        auto task = [&] { side = 7; };
        pool.launchAsync(task);
        for (int level = 0; level < 3; ++level) {
            pool.parallelFor(static_cast<unsigned>(main.size()),
                             [&](unsigned t) { main[t] += 1; });
        }
        pool.joinAsync();
        ASSERT_EQ(side, 7u);
        for (auto v : main)
            ASSERT_EQ(v, 3u);
    }
}

TEST(ShardPool, JoinWithoutLaunchIsNoop)
{
    ShardPool pool(2);
    pool.joinAsync();
    pool.joinAsync();
    ASSERT_EQ(pool.asyncTasksRun(), 0u);
}

/**
 * @file
 * LBA-augmented page table entry layout (paper Figure 6 / Table I).
 *
 * A 64-bit entry in one of two shapes:
 *
 *  present (P=1):   [63 NX][62:59 pkey][51:12 PFN][11:10 avl/LBA]
 *                   [6 D][5 A][2 U][1 W][0 P=1]
 *  LBA-augmented    [63 NX][62:59 pkey][58:18 LBA (41 bits)]
 *  (P=0, LBA=1):    [17:15 device id (3)][14:12 socket id (3)]
 *                   [10 LBA=1][2 U][1 W][0 P=0]
 *
 * The LBA bit is bit 10, the bit the paper's real-machine prototype
 * uses. The socket-id / device-id / LBA widths are the paper's 3/3/41
 * split, giving up to 8 sockets, 8 block devices per socket and 1 PB
 * per device. Upper-level (PMD/PUD) entries reuse the same LBA bit to
 * mean "some PTE below was hardware-handled and its OS metadata is not
 * synchronised yet" (Table I), which is what lets kpted skip clean
 * subtrees.
 */

#ifndef HWDP_OS_PTE_HH
#define HWDP_OS_PTE_HH

#include <cstdint>

#include "sim/types.hh"

namespace hwdp::os::pte {

using Entry = std::uint64_t;

inline constexpr Entry presentBit = 1ULL << 0;
inline constexpr Entry writableBit = 1ULL << 1;
inline constexpr Entry userBit = 1ULL << 2;
inline constexpr Entry accessedBit = 1ULL << 5;
inline constexpr Entry dirtyBit = 1ULL << 6;
inline constexpr Entry lbaBit = 1ULL << 10;
inline constexpr Entry nxBit = 1ULL << 63;

/**
 * Wide-translation bits (pageMode != off; never set otherwise). Bit 7
 * is the x86 PS bit: set on a *PMD* entry it makes that entry a 2 MB
 * leaf whose PFN is 512-frame aligned. Bit 8 is the SVNAPOT idiom
 * squeezed into a free x86 ignored bit: set on a 4 KB PTE it promises
 * that the whole naturally aligned 16-page (64 KB) range around it is
 * present with contiguous, equally aligned frames, so the TLB may
 * install one wide entry for the range. Both bits live in the
 * present-shape's free bits (3, 4, 7, 8, 9) and never collide with the
 * LBA-augmented layout, which only exists on non-present PTEs.
 */
inline constexpr Entry psBit = 1ULL << 7;
inline constexpr Entry napotBit = 1ULL << 8;

inline constexpr unsigned pfnShift = 12;
inline constexpr Entry pfnMask = ((1ULL << 40) - 1) << pfnShift;

inline constexpr unsigned sidShift = 12;
inline constexpr Entry sidFieldMask = 0x7ULL << sidShift;
inline constexpr unsigned devShift = 15;
inline constexpr Entry devFieldMask = 0x7ULL << devShift;
inline constexpr unsigned lbaShift = 18;
inline constexpr Entry lbaFieldMask = ((1ULL << 41) - 1) << lbaShift;

/** Largest encodable LBA (41 bits => 1 PB of 512 B blocks). */
inline constexpr std::uint64_t maxLba = (1ULL << 41) - 1;

/**
 * Reserved LBA marking a first-touch anonymous page (Section V,
 * "Demand Paging Support for Anonymous Page"): the SMU bypasses I/O
 * and installs a zero-filled frame. Real files never receive this
 * block because the file system reserves it.
 */
inline constexpr Lba zeroFillLba = maxLba;

inline bool isPresent(Entry e) { return e & presentBit; }
inline bool hasLbaBit(Entry e) { return e & lbaBit; }
inline bool isWritable(Entry e) { return e & writableBit; }
inline bool isAccessed(Entry e) { return e & accessedBit; }
inline bool isDirty(Entry e) { return e & dirtyBit; }

/** Non-resident, LBA-augmented: hardware will handle the miss. */
inline bool
isLbaAugmented(Entry e)
{
    return !isPresent(e) && hasLbaBit(e);
}

/** Resident but OS metadata not yet synchronised (kpted pending). */
inline bool
needsMetadataSync(Entry e)
{
    return isPresent(e) && hasLbaBit(e);
}

/** Non-resident and not augmented: the OS must handle the miss. */
inline bool
isOsHandledMiss(Entry e)
{
    return !isPresent(e) && !hasLbaBit(e);
}

inline Pfn
pfnOf(Entry e)
{
    return (e & pfnMask) >> pfnShift;
}

inline unsigned
socketIdOf(Entry e)
{
    return static_cast<unsigned>((e & sidFieldMask) >> sidShift);
}

inline unsigned
deviceIdOf(Entry e)
{
    return static_cast<unsigned>((e & devFieldMask) >> devShift);
}

inline Lba
lbaOf(Entry e)
{
    return (e & lbaFieldMask) >> lbaShift;
}

/** Non-PFN, non-LBA-field bits (protection and friends). */
inline Entry
protectionOf(Entry e)
{
    return e & (writableBit | userBit | nxBit);
}

/** Build a resident entry. */
inline Entry
makePresent(Pfn pfn, Entry prot, bool keep_lba_bit = false)
{
    Entry e = presentBit | (prot & ~(pfnMask | presentBit | lbaBit));
    e |= (static_cast<Entry>(pfn) << pfnShift) & pfnMask;
    if (keep_lba_bit)
        e |= lbaBit;
    return e;
}

/** Build an LBA-augmented non-resident entry. */
inline Entry
makeLbaAugmented(unsigned sid, unsigned dev, Lba lba, Entry prot)
{
    Entry e = lbaBit | (prot & (writableBit | userBit | nxBit));
    e |= (static_cast<Entry>(sid) << sidShift) & sidFieldMask;
    e |= (static_cast<Entry>(dev) << devShift) & devFieldMask;
    e |= (static_cast<Entry>(lba) << lbaShift) & lbaFieldMask;
    return e;
}

/**
 * Convert a resident PTE that still carries the LBA bit into a fully
 * synchronised resident PTE (kpted's final step).
 */
inline Entry
clearLbaBit(Entry e)
{
    return e & ~lbaBit;
}

inline Entry
setLbaBit(Entry e)
{
    return e | lbaBit;
}

// ---- Wide-translation helpers (pageMode != off) ------------------------

/** Present PMD entry that is itself a 2 MB leaf. */
inline bool
isHugeLeaf(Entry e)
{
    return isPresent(e) && (e & psBit);
}

/** Present 4 KB PTE inside a promoted 64 KB NAPOT range. */
inline bool
hasNapotBit(Entry e)
{
    return isPresent(e) && (e & napotBit);
}

/** log2(pages) of reach a present entry grants the TLB (0, 4 or 9). */
inline unsigned
reachOf(Entry e)
{
    if (e & psBit)
        return pmdLeafShift;
    if (e & napotBit)
        return napotShift;
    return 0;
}

/** Build a 2 MB PMD-leaf entry. @p pfn must be 512-frame aligned. */
inline Entry
makeHugeLeaf(Pfn pfn, Entry prot, bool keep_lba_bit = false)
{
    return makePresent(pfn, prot, keep_lba_bit) | psBit;
}

inline Entry
setNapotBit(Entry e)
{
    return e | napotBit;
}

inline Entry
clearNapotBit(Entry e)
{
    return e & ~napotBit;
}

} // namespace hwdp::os::pte

#endif // HWDP_OS_PTE_HH

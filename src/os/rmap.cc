#include "os/rmap.hh"

#include "os/file_system.hh"
#include "os/vma.hh"
#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::os {

void
Rmap::serialize(sim::Serializer &s)
{
    s.section("rmap");
    s.io(nLbaEvictions);
    s.io(nPlainEvictions);
}

Rmap::Rmap(ShootdownFn shootdown) : shootdown(std::move(shootdown))
{
}

void
Rmap::setMapping(Page &page, AddressSpace &as, VAddr vaddr)
{
    if (page.as != nullptr)
        panic("rmap: page ", page.pfn, " already mapped (sharing is "
              "unsupported by design)");
    page.as = &as;
    page.vaddr = vaddr;
}

void
Rmap::clearMapping(Page &page)
{
    page.as = nullptr;
    page.vaddr = 0;
}

bool
Rmap::unmapForEviction(Page &page)
{
    if (page.as == nullptr)
        panic("rmap: evicting unmapped page ", page.pfn);

    AddressSpace &as = *page.as;
    VAddr va = page.vaddr;
    Vma *vma = as.findVma(va);
    if (!vma)
        panic("rmap: mapping without a VMA at ", va);

    pte::Entry old = as.pageTable().readPte(va);
    bool dirty = pte::isDirty(old) || page.dirty;

    if (vma->fastMmap && vma->file) {
        // Keep hardware-based demand paging armed: store the page's
        // current LBA in the PTE and set the LBA bit (Section IV-B).
        BlockDeviceId bdev = vma->file->device();
        Lba lba = vma->file->lbaOf(page.index);
        as.pageTable().writePte(
            va, pte::makeLbaAugmented(bdev.sid, bdev.dev, lba, vma->prot));
        ++nLbaEvictions;
    } else {
        as.pageTable().writePte(va, 0);
        ++nPlainEvictions;
    }

    if (shootdown)
        shootdown(as, va);

    page.dirty = dirty;
    clearMapping(page);
    return dirty;
}

} // namespace hwdp::os

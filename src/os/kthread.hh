/**
 * @file
 * Periodic kernel thread base class.
 *
 * kpted, kpoold and the background reclaimer are periodic batch
 * workers: sleep for a period, wake, do one batch of work (charging
 * kernel phases), sleep again. Their cost shows up in Figure 15 and
 * their period is an explicit experiment parameter (Section VI-C),
 * so the base class exposes it.
 */

#ifndef HWDP_OS_KTHREAD_HH
#define HWDP_OS_KTHREAD_HH

#include <functional>

#include "os/scheduler.hh"
#include "sim/types.hh"

namespace hwdp::sim {
class Serializer;
}

namespace hwdp::os {

class KThread : public Thread
{
  public:
    /**
     * @param period Sleep time between batches.
     */
    KThread(std::string name, unsigned core, Scheduler &sched,
            sim::EventQueue &eq, Tick period);

    void run() final;

    /**
     * Perform one batch; must eventually invoke @p done exactly once
     * (possibly asynchronously, e.g. after writeback I/O).
     */
    virtual void batch(std::function<void()> done) = 0;

    Tick period() const { return per; }
    void setPeriod(Tick p) { per = p; }

    /** Stop re-arming the wake timer (lets the simulation drain). */
    void stop() { stopped = true; }
    bool isStopped() const { return stopped; }

    /** Force an immediate wakeup (e.g. SMU queue ran dry). */
    void kick();

    /**
     * Resume after a quiesce or a restore: clear the stop flag and
     * re-arm the wake timer. Both sides of a checkpoint call this so
     * the timer event lands at the same tick with the same sequence
     * number.
     */
    void restart();

    std::uint64_t batchesRun() const { return nBatches; }

    /**
     * Checkpoint the kthread state (quiesced: stopped, timer idle).
     * Subclasses call this from their own serialize().
     */
    void serialize(sim::Serializer &s);

  protected:
    Scheduler &sched;
    sim::EventQueue &eq;

  private:
    Tick per;
    bool due = false;
    bool stopped = false;
    bool timerArmed = false;
    std::uint64_t nBatches = 0;

    void armTimer();
};

} // namespace hwdp::os

#endif // HWDP_OS_KTHREAD_HH

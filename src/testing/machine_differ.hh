/**
 * @file
 * Differential verification of paging-mode equivalence.
 *
 * The paper's robustness claim (Sections IV-D, VI-A) is that a
 * hardware-handled miss is semantically identical to an OS-handled
 * one. The MachineDiffer checks that claim end-to-end: run the same
 * workload with the same seed on two System configurations (hardware
 * SMU, software-emulated SMU, plain OSDP), quiesce both, snapshot the
 * logical memory-management state of each and compare.
 *
 * The snapshot is deliberately *logical*: per (address space, VMA,
 * page) it records residency, backing identity (file id + file index,
 * or anonymous offset), dirtiness, metadata-sync status and the
 * rmap/LRU/page-cache bookkeeping — never raw PFNs (frame allocation
 * order legitimately differs across modes) and never raw ticks. A
 * provenance hash folds the per-page state so whole-machine equality
 * is one comparison; on mismatch diff() renders a readable
 * first-divergence report naming the page and both sides' states.
 */

#ifndef HWDP_TESTING_MACHINE_DIFFER_HH
#define HWDP_TESTING_MACHINE_DIFFER_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace hwdp::system {
class System;
}

namespace hwdp::testing {

/** Logical state of one page slot of a VMA. */
struct PageState
{
    bool resident = false;

    /** Backing identity (mode-independent). */
    bool fileBacked = false;
    std::uint32_t fileId = 0;
    std::uint64_t fileIndex = 0; ///< For anon: page index in the VMA.

    bool dirty = false;

    /** Resident with OS metadata synchronised (LBA bit clear). */
    bool synced = false;

    /** Bookkeeping of the backing frame (resident pages only). */
    bool rmapOk = false;
    bool lruLinked = false;
    bool inPageCache = false;

    bool operator==(const PageState &o) const;
    bool operator!=(const PageState &o) const { return !(*this == o); }
};

struct VmaState
{
    VAddr start = 0;
    VAddr end = 0;
    bool anon = false;
    std::vector<PageState> pages;
};

struct AsState
{
    std::uint32_t asid = 0;
    std::vector<VmaState> vmas;
};

struct MachineState
{
    std::string label;
    std::vector<AsState> spaces;
    std::uint64_t totalAppOps = 0;
    std::uint64_t oomKills = 0;

    /** Misses resolved by any path (SMU + SW-SMU + OS major/minor). */
    std::uint64_t faultsServiced = 0;

    /** FNV-1a fold of every per-page logical state. */
    std::uint64_t stateHash = 0;
};

struct DiffOptions
{
    /**
     * Also require equal faultsServiced. Exact across modes only for
     * single-threaded, pressure-free runs (coalescing and reclaim
     * timing legitimately perturb the count otherwise).
     */
    bool compareFaultTotals = false;

    /** Divergences rendered into the report before truncation. */
    unsigned maxReports = 8;
};

struct DiffResult
{
    bool equivalent = true;
    unsigned divergences = 0;
    std::string report;
};

/**
 * Bring @p sys to a comparable end state: stop the periodic kthreads,
 * drain the event queue, then perform an untimed kpted-equivalent
 * metadata synchronisation of every hardware-handled PTE using the
 * *guided* upper-level-LBA scan — so a component that fails to mark
 * the upper levels leaves unsynced pages behind for the differ to
 * catch.
 */
void quiesce(system::System &sys);

/** Capture the logical memory-management state of @p sys. */
MachineState snapshot(system::System &sys, const std::string &label);

/** Compare two snapshots; readable first-divergence report on loss. */
DiffResult diff(const MachineState &a, const MachineState &b,
                const DiffOptions &opt = {});

/**
 * Dump every component StatGroup of @p sys in a fixed order. Given
 * one seed and one fault plan, two runs of the same configuration
 * must produce byte-identical output (the reproducibility gate).
 */
void dumpMachineStats(system::System &sys, std::ostream &os);

} // namespace hwdp::testing

#endif // HWDP_TESTING_MACHINE_DIFFER_HH

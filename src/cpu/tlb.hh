/**
 * @file
 * Two-level TLB model (per logical core).
 *
 * Geometry approximates the evaluation machine: a 64-entry 8-way L1
 * DTLB in front of a 1536-entry 8-way L2 STLB. Only 4 KB translations
 * are modelled (Section V: huge pages are not a first-class feature
 * of the design).
 *
 * Both levels are flat set-associative arrays (the L1 used to be an
 * unordered_map + list LRU, which put two pointer chases and an
 * allocation churn on the per-access fast path). A one-entry last-VPN
 * latch in front of the L1 catches the strong page locality of
 * compute bursts: a latch hit is a single compare. The latch is an
 * index into the L1 array, so recency still updates on every hit and
 * invalidation stays exact.
 */

#ifndef HWDP_CPU_TLB_HH
#define HWDP_CPU_TLB_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace hwdp::sim {
class Serializer;
}

namespace hwdp::cpu {

class Tlb
{
  public:
    struct Result
    {
        bool hit = false;      ///< Hit in either level.
        bool l1Hit = false;
        Pfn pfn = 0;
    };

    /**
     * @p l1_assoc is clamped to @p l1_entries, so small test
     * geometries (e.g. 4-entry L1) stay fully associative.
     */
    Tlb(unsigned l1_entries = 64, unsigned l2_entries = 1536,
        unsigned l2_assoc = 8, unsigned l1_assoc = 8);

    Result
    lookup(VAddr vaddr)
    {
        ++nLookups;
        std::uint64_t vpn = vaddr >> pageShift;

        if (latchIdx != npos && latchVpn == vpn) {
            Entry &e = l1[latchIdx];
            e.lastUse = ++useClock;
            ++nLatchHits;
            return Result{true, true, e.pfn};
        }
        return lookupSlow(vpn);
    }

    /**
     * Install a translation in both levels. Idempotent: a VPN already
     * resident in a level is left in place (same PFN: untouched; a
     * remap updates the PFN and recency) instead of re-inserting —
     * re-walking a translation that is still in the L1 must not churn
     * the L2's LRU state.
     */
    void insert(VAddr vaddr, Pfn pfn);

    /** Shoot down one translation (both levels and the latch). */
    void invalidate(VAddr vaddr);

    /** Full flush (context switch between address spaces). */
    void flush();

    std::uint64_t lookups() const { return nLookups; }
    std::uint64_t l1Misses() const { return nL1Miss; }
    std::uint64_t misses() const { return nMiss; }
    /** L1 hits served by the one-entry last-VPN latch. */
    std::uint64_t latchHits() const { return nLatchHits; }

    /** Checkpoint both arrays, the latch, the clock and counters. */
    void serialize(sim::Serializer &s);

  private:
    struct Entry
    {
        std::uint64_t vpn = 0;
        Pfn pfn = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    static constexpr std::size_t npos = ~std::size_t(0);

    unsigned l1Assoc;
    unsigned l1Sets;
    unsigned l2Assoc;
    unsigned l2Sets;

    std::vector<Entry> l1; // l1Sets * l1Assoc, row-major by set
    std::vector<Entry> l2; // l2Sets * l2Assoc, row-major by set
    std::uint64_t useClock = 0;

    /** Last translated VPN and its L1 slot; npos = no latch. */
    std::uint64_t latchVpn = 0;
    std::size_t latchIdx = npos;

    std::uint64_t nLookups = 0;
    std::uint64_t nL1Miss = 0;
    std::uint64_t nMiss = 0;
    std::uint64_t nLatchHits = 0;

    Result lookupSlow(std::uint64_t vpn);
    Entry *find(std::vector<Entry> &lvl, unsigned sets, unsigned assoc,
                std::uint64_t vpn);
    Entry *fill(std::vector<Entry> &lvl, unsigned sets, unsigned assoc,
                std::uint64_t vpn, Pfn pfn);
};

} // namespace hwdp::cpu

#endif // HWDP_CPU_TLB_HH

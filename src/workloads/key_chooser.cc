#include "workloads/key_chooser.hh"

#include <cmath>

#include "sim/logging.hh"

namespace hwdp::workloads {

std::uint64_t
UniformChooser::next(sim::Rng &rng, std::uint64_t current_max)
{
    if (current_max == 0)
        panic("uniform chooser: empty key space");
    return rng.range(current_max);
}

double
ZipfianChooser::zeta(std::uint64_t n, double theta)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

ZipfianChooser::ZipfianChooser(std::uint64_t n, double theta,
                               bool scrambled)
    : n(n), theta(theta), scrambled(scrambled)
{
    if (n == 0)
        fatal("zipfian chooser: empty key space");
    zetan = zeta(n, theta);
    alpha = 1.0 / (1.0 - theta);
    double zeta2 = zeta(2, theta);
    eta = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
          (1.0 - zeta2 / zetan);
}

std::uint64_t
ZipfianChooser::nextRank(sim::Rng &rng)
{
    double u = rng.uniform();
    double uz = u * zetan;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta))
        return 1;
    auto rank = static_cast<std::uint64_t>(
        static_cast<double>(n) *
        std::pow(eta * u - eta + 1.0, alpha));
    if (rank >= n)
        rank = n - 1;
    return rank;
}

std::uint64_t
ZipfianChooser::next(sim::Rng &rng, std::uint64_t current_max)
{
    std::uint64_t rank = nextRank(rng);
    if (!scrambled)
        return rank % (current_max ? current_max : 1);
    // FNV-1a scramble, as YCSB's ScrambledZipfianGenerator does.
    std::uint64_t h = 14695981039346656037ULL;
    h = (h ^ rank) * 1099511628211ULL;
    h = (h ^ (rank >> 32)) * 1099511628211ULL;
    return h % (current_max ? current_max : 1);
}

LatestChooser::LatestChooser(std::uint64_t initial_n, double theta)
    : zipf(initial_n, theta, false)
{
}

std::uint64_t
LatestChooser::next(sim::Rng &rng, std::uint64_t current_max)
{
    if (current_max == 0)
        panic("latest chooser: empty key space");
    std::uint64_t rank = zipf.nextRank(rng);
    if (rank >= current_max)
        rank = current_max - 1;
    return current_max - 1 - rank;
}

} // namespace hwdp::workloads

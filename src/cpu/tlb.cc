#include "cpu/tlb.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::cpu {

void
Tlb::serialize(sim::Serializer &s)
{
    s.section("tlb");
    std::uint64_t geom = (static_cast<std::uint64_t>(l1Sets) << 48) |
                         (static_cast<std::uint64_t>(l1Assoc) << 32) |
                         (static_cast<std::uint64_t>(l2Sets) << 16) |
                         l2Assoc;
    s.check(geom, "tlb geometry");
    for (auto *lvl : {&l1, &l2}) {
        for (auto &e : *lvl) {
            s.io(e.vpn);
            s.io(e.pfn);
            s.io(e.lastUse);
            s.io(e.valid);
        }
    }
    s.io(useClock);
    s.io(latchVpn);
    std::uint64_t latch = latchIdx == npos ? ~0ULL : latchIdx;
    s.io(latch);
    if (s.loading())
        latchIdx = latch == ~0ULL ? npos : static_cast<std::size_t>(latch);
    s.io(nLookups);
    s.io(nL1Miss);
    s.io(nMiss);
    s.io(nLatchHits);
}

Tlb::Tlb(unsigned l1_entries, unsigned l2_entries, unsigned l2_assoc,
         unsigned l1_assoc)
    : l1Assoc(std::min(l1_assoc, l1_entries)), l2Assoc(l2_assoc)
{
    if (l1_entries == 0 || l2_entries == 0 || l2_assoc == 0 ||
        l1_assoc == 0 || l2_entries % l2_assoc != 0 ||
        l1_entries % l1Assoc != 0)
        fatal("tlb: bad geometry");
    l1Sets = l1_entries / l1Assoc;
    l2Sets = l2_entries / l2_assoc;
    l1.resize(l1_entries);
    l2.resize(l2_entries);
}

Tlb::Entry *
Tlb::find(std::vector<Entry> &lvl, unsigned sets, unsigned assoc,
          std::uint64_t vpn)
{
    Entry *base = &lvl[(vpn % sets) * assoc];
    for (unsigned w = 0; w < assoc; ++w) {
        if (base[w].valid && base[w].vpn == vpn)
            return &base[w];
    }
    return nullptr;
}

Tlb::Entry *
Tlb::fill(std::vector<Entry> &lvl, unsigned sets, unsigned assoc,
          std::uint64_t vpn, Pfn pfn)
{
    Entry *base = &lvl[(vpn % sets) * assoc];
    Entry *victim = base;
    for (unsigned w = 0; w < assoc; ++w) {
        Entry &e = base[w];
        if (!e.valid) {
            victim = &e;
        } else if (victim->valid && e.lastUse < victim->lastUse) {
            victim = &e;
        }
    }
    // Evicting the latched L1 slot would leave the latch pointing at
    // a different translation; drop it (the caller re-latches).
    if (&lvl == &l1 && latchIdx != npos && victim == &l1[latchIdx])
        latchIdx = npos;
    victim->valid = true;
    victim->vpn = vpn;
    victim->pfn = pfn;
    victim->lastUse = ++useClock;
    return victim;
}

Tlb::Result
Tlb::lookupSlow(std::uint64_t vpn)
{
    Result r;
    if (Entry *e = find(l1, l1Sets, l1Assoc, vpn)) {
        e->lastUse = ++useClock;
        latchVpn = vpn;
        latchIdx = static_cast<std::size_t>(e - l1.data());
        r.hit = true;
        r.l1Hit = true;
        r.pfn = e->pfn;
        return r;
    }
    ++nL1Miss;

    if (Entry *e = find(l2, l2Sets, l2Assoc, vpn)) {
        e->lastUse = ++useClock;
        Entry *ne = fill(l1, l1Sets, l1Assoc, vpn, e->pfn);
        latchVpn = vpn;
        latchIdx = static_cast<std::size_t>(ne - l1.data());
        r.hit = true;
        r.pfn = e->pfn;
        return r;
    }
    ++nMiss;
    return r;
}

void
Tlb::insert(VAddr vaddr, Pfn pfn)
{
    std::uint64_t vpn = vaddr >> pageShift;

    Entry *e1 = find(l1, l1Sets, l1Assoc, vpn);
    if (!e1) {
        e1 = fill(l1, l1Sets, l1Assoc, vpn, pfn);
        latchVpn = vpn;
        latchIdx = static_cast<std::size_t>(e1 - l1.data());
    } else if (e1->pfn != pfn) {
        e1->pfn = pfn;
        e1->lastUse = ++useClock;
    }

    Entry *e2 = find(l2, l2Sets, l2Assoc, vpn);
    if (!e2) {
        fill(l2, l2Sets, l2Assoc, vpn, pfn);
    } else if (e2->pfn != pfn) {
        e2->pfn = pfn;
        e2->lastUse = ++useClock;
    }
}

void
Tlb::invalidate(VAddr vaddr)
{
    std::uint64_t vpn = vaddr >> pageShift;
    if (latchIdx != npos && latchVpn == vpn)
        latchIdx = npos;
    if (Entry *e = find(l1, l1Sets, l1Assoc, vpn))
        e->valid = false;
    if (Entry *e = find(l2, l2Sets, l2Assoc, vpn))
        e->valid = false;
}

void
Tlb::flush()
{
    latchIdx = npos;
    for (Entry &e : l1)
        e.valid = false;
    for (Entry &e : l2)
        e.valid = false;
}

} // namespace hwdp::cpu

/**
 * @file
 * Tests for VMAs, address spaces and the reverse map — in particular
 * the eviction path that re-arms LBA-augmented PTEs (Section IV-B).
 */

#include <gtest/gtest.h>

#include "os/file_system.hh"
#include "os/page.hh"
#include "os/rmap.hh"
#include "os/vma.hh"
#include "sim/logging.hh"

using namespace hwdp;
using namespace hwdp::os;

namespace {

struct Fixture : ::testing::Test
{
    FileSystem fs{sim::Rng(9)};
    File *file = fs.createFile("f", 256, BlockDeviceId{2, 3});
    AddressSpace as{0};
};

} // namespace

using VmaTest = Fixture;

TEST_F(VmaTest, AddAndFind)
{
    Vma *v = as.addVma(file, 0, 256, false, pte::writableBit);
    EXPECT_EQ(as.findVma(v->start), v);
    EXPECT_EQ(as.findVma(v->end - 1), v);
    EXPECT_EQ(as.findVma(v->end), nullptr);
    EXPECT_EQ(v->numPages(), 256u);
}

TEST_F(VmaTest, MappingsDoNotOverlapAndHaveGuardGap)
{
    Vma *a = as.addVma(file, 0, 16, false, 0);
    Vma *b = as.addVma(file, 0, 16, false, 0);
    EXPECT_GE(b->start, a->end + pageSize);
}

TEST_F(VmaTest, FileIndexAccountsForOffset)
{
    Vma *v = as.addVma(file, 10, 16, false, 0);
    EXPECT_EQ(v->fileIndexOf(v->start), 10u);
    EXPECT_EQ(v->fileIndexOf(v->start + 3 * pageSize), 13u);
}

TEST_F(VmaTest, ZeroLengthRejected)
{
    EXPECT_THROW(as.addVma(file, 0, 0, false, 0), FatalError);
}

TEST_F(VmaTest, RemoveVma)
{
    Vma *v = as.addVma(file, 0, 16, false, 0);
    VAddr start = v->start;
    as.removeVma(v);
    EXPECT_EQ(as.findVma(start), nullptr);
}

TEST_F(VmaTest, RmapSingleMappingOnly)
{
    Rmap rmap(nullptr);
    Page pg;
    pg.pfn = 1;
    rmap.setMapping(pg, as, 0x1000);
    EXPECT_EQ(pg.as, &as);
    EXPECT_THROW(rmap.setMapping(pg, as, 0x2000), PanicError);
    rmap.clearMapping(pg);
    EXPECT_EQ(pg.as, nullptr);
}

TEST_F(VmaTest, EvictionOfFastMmapPageWritesLbaPte)
{
    Vma *v = as.addVma(file, 0, 16, true, pte::writableBit);
    VAddr va = v->start + 4 * pageSize;

    Page pg;
    pg.pfn = 99;
    pg.inUse = true;
    pg.file = file;
    pg.index = 4;

    int shootdowns = 0;
    Rmap rmap([&](AddressSpace &, VAddr sva) {
        ++shootdowns;
        EXPECT_EQ(sva, va);
    });
    rmap.setMapping(pg, as, va);
    as.pageTable().writePte(va, pte::makePresent(99, v->prot));

    bool dirty = rmap.unmapForEviction(pg);
    EXPECT_FALSE(dirty);
    EXPECT_EQ(shootdowns, 1);
    EXPECT_EQ(pg.as, nullptr);

    pte::Entry e = as.pageTable().readPte(va);
    EXPECT_TRUE(pte::isLbaAugmented(e));
    EXPECT_EQ(pte::lbaOf(e), file->lbaOf(4));
    EXPECT_EQ(pte::socketIdOf(e), 2u);
    EXPECT_EQ(pte::deviceIdOf(e), 3u);
    EXPECT_EQ(rmap.evictionsToLba(), 1u);
}

TEST_F(VmaTest, EvictionOfNormalPageClearsPte)
{
    Vma *v = as.addVma(file, 0, 16, false, pte::writableBit);
    VAddr va = v->start;

    Page pg;
    pg.pfn = 7;
    pg.inUse = true;
    pg.file = file;
    pg.index = 0;

    Rmap rmap(nullptr);
    rmap.setMapping(pg, as, va);
    as.pageTable().writePte(va, pte::makePresent(7, v->prot));

    rmap.unmapForEviction(pg);
    EXPECT_EQ(as.pageTable().readPte(va), 0u);
    EXPECT_EQ(rmap.evictionsPlain(), 1u);
}

TEST_F(VmaTest, EvictionTransfersPteDirtyBit)
{
    Vma *v = as.addVma(file, 0, 16, true, pte::writableBit);
    VAddr va = v->start;

    Page pg;
    pg.pfn = 5;
    pg.inUse = true;
    pg.file = file;
    pg.index = 0;

    Rmap rmap(nullptr);
    rmap.setMapping(pg, as, va);
    as.pageTable().writePte(va, pte::makePresent(5, v->prot) |
                                    pte::dirtyBit);

    EXPECT_TRUE(rmap.unmapForEviction(pg));
    EXPECT_TRUE(pg.dirty);
}

TEST_F(VmaTest, EvictingUnmappedPagePanics)
{
    Rmap rmap(nullptr);
    Page pg;
    pg.pfn = 3;
    EXPECT_THROW(rmap.unmapForEviction(pg), PanicError);
}

#include "core/smu.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::core {

void
Smu::serialize(sim::Serializer &s)
{
    s.section("smu");
    if (!barrierWaiters.empty())
        throw sim::SerializeError(
            "checkpoint: SMU barrier outstanding; quiesce the machine "
            "first");
    std::uint64_t nq = fpqs.size();
    s.check(nq, "free page queue count");
    for (auto &q : fpqs)
        q->serialize(s);
    pmshrUnit.serialize(s);
    nvme.serialize(s);
    updater.serialize(s);
    // Guarded so single-socket blobs keep the pre-NUMA layout.
    if (prm.coresPerSocket != 0)
        s.io(nRemoteRequests);
    stats().serialize(s);
}

Smu::Smu(std::string name, sim::EventQueue &eq, unsigned sid,
         const Params &params, os::Kernel &kernel)
    : sim::SimObject(std::move(name), eq), socketId(sid), prm(params),
      kernel(kernel), pmshrUnit(params.pmshrEntries),
      nvme(this->name() + ".nvme", eq, params.nvme),
      updater(params.ptUpdateCycles, params.cyclePeriod),
      statHandled(stats().counter("handled",
                                  "page misses completed in hardware")),
      statZeroFill(stats().counter(
          "zero_fills", "anonymous first-touch misses zero-filled")),
      statPrefetch(stats().counter("prefetches",
                                   "sequential next-page prefetches")),
      statCoalesced(stats().counter("coalesced",
                                    "duplicate misses coalesced")),
      statRejectEmpty(stats().counter(
          "rejected_queue_empty", "bounces: free page queue empty")),
      statRejectFull(stats().counter("rejected_pmshr_full",
                                     "bounces: PMSHR full")),
      statIoRetry(stats().counter(
          "io_retries", "NVMe error completions retried once")),
      statRejectIoError(stats().counter(
          "rejected_io_error",
          "bounces: NVMe error persisted after retry")),
      statLatency(stats().histogram(
          "miss_latency_us", "hardware miss handling latency (us)", 0.5,
          400))
{
    unsigned n_queues = prm.perCoreFreeQueues
                            ? std::max(prm.nFreeQueues, 1u)
                            : 1u;
    std::uint64_t per_queue = std::max<std::uint64_t>(
        prm.freeQueueCapacity / n_queues, 16);
    for (unsigned q = 0; q < n_queues; ++q) {
        fpqs.push_back(std::make_unique<FreePageQueue>(
            per_queue, prm.prefetchDepth));
    }

    nvme.setCompletionCallback(
        [this](std::uint16_t tag, std::uint16_t status, Tick at) {
            onIoCompleteAt(tag, status, at);
        });
    nvme.setFastPath(prm.fastPath);
}

FreePageQueue &
Smu::freePageQueue(unsigned core)
{
    return *fpqs[prm.perCoreFreeQueues ? core % fpqs.size() : 0];
}

std::vector<FreePageQueue *>
Smu::freePageQueues()
{
    std::vector<FreePageQueue *> v;
    for (auto &q : fpqs)
        v.push_back(q.get());
    return v;
}

void
Smu::configureDevice(unsigned dev_id, ssd::SsdDevice *dev)
{
    // The SMU's SQ must never fill while the PMSHR still has space;
    // size it generously above the PMSHR capacity.
    auto depth = static_cast<std::uint16_t>(
        std::max<unsigned>(64, prm.pmshrEntries * 4));
    nvme.configureDevice(dev_id, dev, depth);
}

void
Smu::handleMiss(cpu::PageMissRequest req)
{
    // Two register writes deliver the request, then the CAM lookup.
    Tick delay =
        (prm.requestRegWrites + prm.camLookup) * prm.cyclePeriod;
    // Remote-socket requester: the register writes cross the
    // interconnect to this socket's SMU and the completion broadcast
    // crosses back — charged once as a round-trip premium.
    if (prm.coresPerSocket != 0 &&
        req.core / prm.coresPerSocket != socketId) {
        delay += prm.remoteRequestLatency;
        ++nRemoteRequests;
    }
    Tick started = now();
    eq.postIn(delay,
                        [this, req = std::move(req), started]() mutable {
                            lookupStep(std::move(req), started);
                        },
                        "smu.lookup");
}

bool
Smu::handleMissAt(cpu::PageMissRequest &req, Tick at)
{
    // The prefetcher spawns from inside the lookup and its SQE push
    // order against the demand miss depends on event sequencing: keep
    // the reference path.
    if (!prm.fastPath || prm.sequentialPrefetch)
        return false;

    Tick delay =
        (prm.requestRegWrites + prm.camLookup) * prm.cyclePeriod;
    bool remote = prm.coresPerSocket != 0 &&
                  req.core / prm.coresPerSocket != socketId;
    if (remote)
        delay += prm.remoteRequestLatency;
    Tick t_l = at + delay;
    // Strict gate: with t_l before the next scheduled event, nothing
    // can execute between now and t_l, so running the lookup inline
    // here is byte-identical to the mmu.smureq + smu.lookup events
    // firing there.
    if (t_l >= eq.nextEventTick())
        return false;
    if (remote)
        ++nRemoteRequests;
    ++nInlineMisses;
    lookupStepAt(std::move(req), at, t_l);
    return true;
}

void
Smu::lookupStep(cpu::PageMissRequest req, Tick started)
{
    // (1) Outstanding miss to the same page? Coalesce: the walk goes
    // pending and resumes on the broadcast.
    int idx = pmshrUnit.lookup(req.refs.pte.addr);
    if (idx >= 0) {
        pmshrUnit.noteCoalesced();
        ++statCoalesced;
        pmshrUnit.entry(idx).waiters.push_back(std::move(req.done));
        return;
    }

    // (2) Allocate a PMSHR entry.
    idx = pmshrUnit.allocate(req.refs.pte.addr);
    if (idx < 0) {
        ++statRejectFull;
        req.done(false);
        return;
    }

    // (3) Fetch a free page frame from the requesting core's queue.
    FreePageQueue &fpq = freePageQueue(req.core);
    auto pop = fpq.pop(prm.memRoundTrip);
    if (!pop.ok) {
        pmshrUnit.invalidate(idx);
        ++statRejectEmpty;
        if (onQueueEmpty)
            onQueueEmpty();
        req.done(false);
        checkBarrier();
        return;
    }

    // (4) Complete the entry with the PFN, then (5) issue the I/O.
    Pmshr::Entry &e = pmshrUnit.entry(idx);
    e.pfn = pop.pfn;
    e.started = started;
    unsigned dev = req.dev;
    Lba lba = req.lba;
    e.req = std::move(req);

    PAddr dma = static_cast<PAddr>(pop.pfn) << pageShift;
    Tick delay = pop.latency + prm.pfnWrite * prm.cyclePeriod;
    auto tag = static_cast<std::uint16_t>(idx);

    // First-touch anonymous page: the reserved LBA tells the SMU to
    // bypass I/O processing entirely and zero-fill the frame
    // (Section V).
    unsigned req_core = e.req.core;
    if (lba == os::pte::zeroFillLba) {
        ++statZeroFill;
        eq.postIn(delay + prm.zeroFillLatency,
                            [this, tag, req_core] {
                                freePageQueue(req_core).refillPrefetch();
                                onIoCompleteAt(tag, 0, now());
                            },
                            "smu.zerofill");
        return;
    }

    eq.postIn(
        delay,
        [this, dev, lba, dma, tag, req_core] {
            nvme.issueRead(dev, lba, dma, tag, [this, req_core] {
                // Device time: eagerly refill the prefetch buffer so
                // the next free-page fetch costs nothing (III-C).
                freePageQueue(req_core).refillPrefetch();
            });
        },
        "smu.issue");

    // Only demand misses trigger a prefetch — a prefetch spawning
    // further prefetches would run away through the whole mapping.
    if (prm.sequentialPrefetch && !e.req.isPrefetch)
        maybePrefetchNext(e.req);
}

void
Smu::lookupStepAt(cpu::PageMissRequest req, Tick started, Tick at)
{
    // Mirrors lookupStep() at logical time `at` under the fast-path
    // guarantee that no event fires before `at`: PMSHR and free-queue
    // mutations run immediately (the SMU is the sole actor until
    // `at`), while done()/onQueueEmpty()/checkBarrier() — which
    // re-enter walker and kernel code expecting now() — go through a
    // posted event at `at`. That event is next in line (the gate
    // checked `at` against nextEventTick), so the relative execution
    // order matches the reference path exactly.
    int idx = pmshrUnit.lookup(req.refs.pte.addr);
    if (idx >= 0) {
        pmshrUnit.noteCoalesced();
        ++statCoalesced;
        pmshrUnit.entry(idx).waiters.push_back(std::move(req.done));
        return;
    }

    idx = pmshrUnit.allocate(req.refs.pte.addr);
    if (idx < 0) {
        ++statRejectFull;
        eq.post(at, [done = std::move(req.done)] { done(false); },
                "smu.reject");
        return;
    }

    FreePageQueue &fpq = freePageQueue(req.core);
    auto pop = fpq.pop(prm.memRoundTrip);
    if (!pop.ok) {
        pmshrUnit.invalidate(idx);
        ++statRejectEmpty;
        eq.post(at,
                [this, done = std::move(req.done)] {
                    if (onQueueEmpty)
                        onQueueEmpty();
                    done(false);
                    checkBarrier();
                },
                "smu.reject");
        return;
    }

    Pmshr::Entry &e = pmshrUnit.entry(idx);
    e.pfn = pop.pfn;
    e.started = started;
    unsigned dev = req.dev;
    Lba lba = req.lba;
    e.req = std::move(req);

    PAddr dma = static_cast<PAddr>(pop.pfn) << pageShift;
    Tick delay = pop.latency + prm.pfnWrite * prm.cyclePeriod;
    auto tag = static_cast<std::uint16_t>(idx);
    unsigned req_core = e.req.core;

    if (lba == os::pte::zeroFillLba) {
        ++statZeroFill;
        Tick t_z = at + delay + prm.zeroFillLatency;
        if (t_z < eq.nextEventTick()) {
            freePageQueue(req_core).refillPrefetch();
            onIoCompleteAt(tag, 0, t_z);
            return;
        }
        eq.post(t_z,
                [this, tag, req_core] {
                    freePageQueue(req_core).refillPrefetch();
                    onIoCompleteAt(tag, 0, now());
                },
                "smu.zerofill");
        return;
    }

    Tick t_i = at + delay;
    if (t_i < eq.nextEventTick()) {
        nvme.issueReadAt(
            dev, lba, dma, tag,
            [this, req_core] {
                // Device time: eagerly refill the prefetch buffer so
                // the next free-page fetch costs nothing (III-C).
                freePageQueue(req_core).refillPrefetch();
            },
            t_i);
        return;
    }
    eq.post(t_i,
            [this, dev, lba, dma, tag, req_core] {
                nvme.issueRead(dev, lba, dma, tag, [this, req_core] {
                    freePageQueue(req_core).refillPrefetch();
                });
            },
            "smu.issue");
    // No prefetch here: handleMissAt() rejects sequentialPrefetch
    // configurations, so this path never needs maybePrefetchNext().
}

void
Smu::maybePrefetchNext(const cpu::PageMissRequest &req)
{
    if (req.lba == os::pte::zeroFillLba || !req.as)
        return;
    VAddr next = req.vaddr + pageSize;
    os::WalkRefs refs = req.as->pageTable().walkRefs(next, false);
    if (!refs.pte.valid())
        return;
    os::pte::Entry e = refs.pte.value();
    if (!os::pte::isLbaAugmented(e) ||
        os::pte::lbaOf(e) == os::pte::zeroFillLba)
        return;
    if (pmshrUnit.full() || pmshrUnit.lookup(refs.pte.addr) >= 0)
        return;
    // Never starve demand misses of free pages: prefetch only from
    // surplus.
    if (freePageQueue(req.core).size() < prm.prefetchDepth)
        return;

    ++statPrefetch;
    cpu::PageMissRequest pf;
    pf.isPrefetch = true;
    pf.refs = refs;
    pf.sid = os::pte::socketIdOf(e);
    pf.dev = os::pte::deviceIdOf(e);
    pf.lba = os::pte::lbaOf(e);
    pf.as = req.as;
    pf.vaddr = next;
    pf.core = req.core;
    pf.done = [](bool) {}; // nobody waits; a late touch coalesces
    // Skip the request-transfer cycles: the prefetch is generated
    // inside the SMU itself.
    lookupStep(std::move(pf), now());
}

void
Smu::onIoCompleteAt(std::uint16_t tag, std::uint16_t status, Tick at)
{
    Pmshr::Entry &e = pmshrUnit.entry(tag);

    if (status != 0) {
        // Error completions are never delivered ahead of the clock
        // (the completion unit only inlines successes): at == now()
        // on this branch, so the direct calls below see the event
        // time the reference path gave them.
        if (!e.retried) {
            // Media errors are frequently transient: retry once on
            // the same isolated queue. The PMSHR entry stays live so
            // duplicate misses keep coalescing onto it meanwhile.
            e.retried = true;
            ++statIoRetry;
            PAddr dma = static_cast<PAddr>(e.pfn) << pageShift;
            nvme.issueReadAt(e.req.dev, e.req.lba, dma, tag, nullptr,
                             at);
            return;
        }
        // Persistent error: bounce to the OS exactly like the queue
        // rejects (Section IV-D) — software owns the recovery policy.
        // The frame goes back to the free page queue untouched.
        ++statRejectIoError;
        freePageQueue(e.req.core).push(e.pfn);
        auto done = std::move(e.req.done);
        auto waiters = std::move(e.waiters);
        pmshrUnit.invalidate(tag);
        done(false);
        for (auto &w : waiters)
            w(false);
        checkBarrier();
        return;
    }

    // (6) I/O complete: (7) update PTE/PMD/PUD in place, then (8)
    // broadcast completion and invalidate the entry. The update is
    // time-free (pt_updater touches no clocks), so running it at an
    // inline `at` ahead of now() is safe: nothing executes before
    // `at` to observe the PTE early. The broadcast stays an event —
    // it resumes walkers and samples the latency histogram, which
    // need real event time.
    Tick update_lat = updater.update(e.req, e.pfn);
    Tick delay = update_lat + prm.notifyCycles * prm.cyclePeriod;

    eq.post(
        at + delay,
        [this, tag] {
            Pmshr::Entry &entry = pmshrUnit.entry(tag);
            // Model bookkeeping: the frame left the SMU queue (the OS
            // flag exists so reclaim never touches donated frames).
            kernel.page(entry.pfn).inSmuQueue = false;

            ++statHandled;
            statLatency.sample(toMicroseconds(now() - entry.started));

            auto done = std::move(entry.req.done);
            auto waiters = std::move(entry.waiters);
            pmshrUnit.invalidate(tag);

            done(true);
            for (auto &w : waiters)
                w(true);
            checkBarrier();
        },
        "smu.broadcast");
}

void
Smu::barrier(std::function<void()> done)
{
    if (pmshrUnit.occupancy() == 0) {
        done();
        return;
    }
    barrierWaiters.push_back(std::move(done));
}

void
Smu::checkBarrier()
{
    if (pmshrUnit.occupancy() != 0 || barrierWaiters.empty())
        return;
    auto waiters = std::move(barrierWaiters);
    barrierWaiters.clear();
    for (auto &w : waiters)
        w();
}

} // namespace hwdp::core

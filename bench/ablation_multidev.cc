/**
 * @file
 * Multi-device and per-core free page queue ablations.
 *
 * The PTE's <SID, device id, LBA> decomposition (Section III-B) lets
 * one SMU serve up to 8 block devices; the per-core free page queue
 * variant (Section V future work) gives the OS a per-thread handle
 * for memory policy and isolates cores from each other's refill
 * races. Both are exercised here.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace hwdp;
using metrics::Table;

namespace {

struct Writer : workloads::Workload
{
    os::File *wal;
    std::uint64_t n = 0;
    std::uint64_t limit;
    Writer(os::File *w, std::uint64_t limit) : wal(w), limit(limit) {}
    workloads::Op
    next(sim::Rng &) override
    {
        if (n >= limit)
            return workloads::Op::makeDone();
        return workloads::Op::makeFileWrite(wal, n++, pageSize, true);
    }
    const char *label() const override { return "writer"; }
};

} // namespace

int
main()
{
    metrics::banner("Ablation: read/write isolation across devices",
                    "reads on their own device dodge the writer's "
                    "channel occupancy");
    {
        struct DevResult
        {
            double readLatencyUs = 0;
            std::uint64_t writesCompleted = 0;
        };
        bench::SweepRunner runner;
        auto results = runner.map<DevResult>(2, [](std::size_t i) {
            unsigned devices = static_cast<unsigned>(i) + 1;
            auto cfg = bench::paperConfig(system::PagingMode::hwdp);
            cfg.nDevices = devices;
            system::System sys(cfg);
            unsigned reader_dev = devices - 1;
            auto data =
                sys.mapDataset("data", 64 * 1024, nullptr, reader_dev);
            auto *wal = sys.createFile("wal", 16 * 1024, 0);
            sys.addThread(*sys.makeWorkload<Writer>(wal, 6000), 0,
                          *data.as);
            auto *rd = sys.makeWorkload<workloads::FioWorkload>(
                data.vma, 3000);
            auto *tc = sys.addThread(*rd, 1, *data.as);
            sys.runUntilThreadsDone(seconds(60.0));
            return DevResult{tc->faultedOpLatencyUs().mean(),
                             sys.ssdAt(0).writesCompleted()};
        });
        Table t({"layout", "read latency us", "writes completed"});
        for (std::size_t i = 0; i < results.size(); ++i)
            t.addRow({i == 0 ? "shared device" : "reads on second device",
                      Table::num(results[i].readLatencyUs),
                      std::to_string(results[i].writesCompleted)});
        t.print();
    }

    metrics::banner("Ablation: global vs per-core free page queues",
                    "does splitting the pool help or hurt?");
    {
        struct Cfg
        {
            const char *label;
            bool perCore;
            std::uint64_t capacity;
        };
        const std::vector<Cfg> grid = {
            {"global", false, 1024},
            {"per-core, same total", true, 1024},
            {"per-core, sized per core", true, 16 * 1024}};
        struct QueueResult
        {
            std::uint64_t stormBounces = 0;
            std::uint64_t victimBounces = 0;
            double victimLatencyUs = 0;
        };
        bench::SweepRunner runner;
        auto results =
            runner.map<QueueResult>(grid.size(), [&](std::size_t i) {
                const Cfg &qc = grid[i];
                auto cfg = bench::paperConfig(system::PagingMode::hwdp);
                cfg.smu.perCoreFreeQueues = qc.perCore;
                cfg.smu.nFreeQueues = 16;
                cfg.smu.freeQueueCapacity = qc.capacity;
                cfg.kpooldPeriod = milliseconds(8.0); // slow: storms bite
                system::System sys(cfg);
                auto mf =
                    sys.mapDataset("f", 16 * bench::defaultMemFrames);

                // Core 0: fault storm. Core 1: modest reader (victim).
                auto *storm = sys.makeWorkload<workloads::FioWorkload>(
                    mf.vma, 12000);
                sys.addThread(*storm, 0, *mf.as);
                auto *victim = sys.makeWorkload<workloads::FioWorkload>(
                    mf.vma, 1500);
                auto *vtc = sys.addThread(*victim, 1, *mf.as);
                sys.runUntilThreadsDone(seconds(60.0));

                return QueueResult{sys.core(0).mmu().smuRejections(),
                                   sys.core(1).mmu().smuRejections(),
                                   vtc->faultedOpLatencyUs().mean()};
            });
        Table t({"queues", "total entries", "storm-core OS bounces",
                 "victim-core OS bounces", "victim latency us"});
        for (std::size_t i = 0; i < grid.size(); ++i)
            t.addRow({grid[i].label, std::to_string(grid[i].capacity),
                      std::to_string(results[i].stormBounces),
                      std::to_string(results[i].victimBounces),
                      Table::num(results[i].victimLatencyUs)});
        t.print();
        std::printf("\nfinding: at equal total size, per-core queues "
                    "FRAGMENT the pool (the storm core exhausts its "
                    "1/16th while the victim's 15/16ths sit idle) — "
                    "their value is per-thread policy enforcement "
                    "(Section V), and they must be sized per core, "
                    "which the third row shows largely restores "
                    "hardware-only operation\n");
    }
    return 0;
}

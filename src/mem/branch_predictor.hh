/**
 * @file
 * Gshare branch predictor with a BTB-less interface.
 *
 * Kernel entries on every page fault execute thousands of kernel
 * branches, shifting the global history and retraining pattern-table
 * counters away from the user application's branches — one of the
 * "hidden costs" the paper attributes to OS-based demand paging. The
 * model keeps user/kernel accuracy separately so that cost is visible.
 */

#ifndef HWDP_MEM_BRANCH_PREDICTOR_HH
#define HWDP_MEM_BRANCH_PREDICTOR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace hwdp::sim {
class Serializer;
}

namespace hwdp::mem {

class BranchPredictor
{
  public:
    /**
     * @param history_bits Global-history length; the pattern table has
     *                     2^history_bits two-bit counters.
     */
    explicit BranchPredictor(unsigned history_bits = 14);

    /**
     * Predict the branch at @p pc, then update with the actual
     * @p taken outcome. Inline: compute bursts and kernel pollution
     * both drive one call per simulated branch, so the table poke
     * must not cost a cross-TU call.
     * @return true when the prediction was correct.
     */
    bool
    predictAndUpdate(std::uint64_t pc, bool taken, ExecMode mode)
    {
        // Classic gshare: XOR the branch address (sans byte offset)
        // with the global history register.
        std::uint64_t idx = ((pc >> 2) ^ ghr) & historyMask;
        std::uint8_t &ctr = pht[idx];
        bool predicted_taken = ctr >= 2;
        bool correct = predicted_taken == taken;

        // Saturating 2-bit update, branch-free: the outcome is data
        // (workloads flip coins per simulated branch), so a host-side
        // conditional on `taken` would mispredict every other call.
        unsigned t = taken ? 1u : 0u;
        ctr = static_cast<std::uint8_t>(
            ctr + (t & static_cast<unsigned>(ctr < 3)) -
            ((t ^ 1u) & static_cast<unsigned>(ctr > 0)));
        ghr = ((ghr << 1) | t) & historyMask;

        auto m = static_cast<unsigned>(mode);
        ++nLookups[m];
        nMiss[m] += static_cast<std::uint64_t>(!correct);
        return correct;
    }

    /**
     * Apply @p n updates in bulk, equivalent to n predictAndUpdate
     * calls with pc = pcs[i % n_pcs] and outcome taken[i] (non-zero =
     * taken). The kernel-pollution model drives hundreds of updates
     * per phase over a memoized PC vector; this keeps the GHR and the
     * counters in registers across the batch and bulk-increments the
     * per-mode statistics once, instead of paying the bookkeeping per
     * branch. @p n_pcs must cover the caller's wrap period (the
     * pollution stream repeats its PCs every 1024 branches).
     * @return the number of mispredicted branches in the batch.
     */
    std::uint64_t updateBatch(const std::uint64_t *pcs, std::size_t n_pcs,
                              const std::uint8_t *taken, std::size_t n,
                              ExecMode mode);

    std::uint64_t lookups(ExecMode mode) const;
    std::uint64_t mispredicts(ExecMode mode) const;

    /** Fraction of mispredicted branches in @p mode. */
    double missRate(ExecMode mode) const;

    /** Reset tables and counters. */
    void reset();

    /** Checkpoint the GHR, pattern table and per-mode counters. */
    void serialize(sim::Serializer &s);

  private:
    unsigned historyBits;
    std::uint64_t historyMask;
    std::uint64_t ghr = 0;
    std::vector<std::uint8_t> pht; // 2-bit saturating counters

    std::uint64_t nLookups[2] = {0, 0};
    std::uint64_t nMiss[2] = {0, 0};
};

} // namespace hwdp::mem

#endif // HWDP_MEM_BRANCH_PREDICTOR_HH

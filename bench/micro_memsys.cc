/**
 * @file
 * Memory-system microbenchmarks (google-benchmark): the structures on
 * the per-access fast path — TLB lookup (latch, L1, miss), the cache
 * hierarchy's L1-hit and LLC paths, the packed tag array at LLC
 * geometry, and a full MMU inline hit including the page-walk cache.
 * These isolate the costs that BENCH_memsys.json's end-to-end fig13
 * number aggregates.
 */

#include <benchmark/benchmark.h>

#include "cpu/tlb.hh"
#include "cpu/walker.hh"
#include "mem/cache_array.hh"
#include "mem/cache_hierarchy.hh"
#include "os/scheduler.hh"
#include "sim/rng.hh"
#include "system/system.hh"

using namespace hwdp;

namespace {

void
BM_TlbLookupLatchHit(benchmark::State &state)
{
    cpu::Tlb tlb;
    tlb.insert(0x1000, 1);
    tlb.lookup(0x1000); // prime the latch
    for (auto _ : state)
        benchmark::DoNotOptimize(tlb.lookup(0x1000));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbLookupLatchHit);

void
BM_TlbLookupL1Hit(benchmark::State &state)
{
    // Alternate between two pages so the one-entry latch never hits
    // and every lookup takes the flat L1 set scan.
    cpu::Tlb tlb;
    tlb.insert(0x1000, 1);
    tlb.insert(0x2000, 2);
    std::uint64_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            tlb.lookup((1 + (i++ & 1)) * 0x1000));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbLookupL1Hit);

void
BM_TlbMissAndInsert(benchmark::State &state)
{
    cpu::Tlb tlb;
    sim::Rng rng(5);
    for (auto _ : state) {
        VAddr va = rng.range(1 << 22) << pageShift;
        auto r = tlb.lookup(va);
        if (!r.hit)
            tlb.insert(va, 1);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbMissAndInsert);

void
BM_CacheArrayLlcGeometry(benchmark::State &state)
{
    // The 20 MB / 20-way LLC array: its metadata exceeds the host L2,
    // so this measures the latency-bound wide-set scan.
    mem::CacheArray llc("llc", 20 * 1024 * 1024, 20);
    sim::Rng rng(7);
    for (int i = 0; i < 400000; ++i)
        llc.access(rng.range(1 << 22) * 64); // warm to steady state
    for (auto _ : state)
        benchmark::DoNotOptimize(llc.access(rng.range(1 << 22) * 64));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayLlcGeometry);

void
BM_CacheHierarchyL1Hit(benchmark::State &state)
{
    mem::CacheHierarchy caches(1, {});
    caches.access(0, 0x1000, false, ExecMode::user);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            caches.access(0, 0x1000, false, ExecMode::user));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHierarchyL1Hit);

void
BM_CacheHierarchyDeepPath(benchmark::State &state)
{
    // Random lines over 64 MB: most accesses miss every level, the
    // shape of the OS-fault pollution streams that dominate the fig13
    // osdp points.
    mem::CacheHierarchy caches(1, {});
    sim::Rng rng(9);
    for (auto _ : state)
        benchmark::DoNotOptimize(caches.access(
            0, rng.range(1 << 20) * 64, false, ExecMode::kernel));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHierarchyDeepPath);

void
BM_WalkerPresentWalk(benchmark::State &state)
{
    // Full four-level walk of a present PTE; Arg is the page-walk
    // cache capacity (0 disables it, so upper-level reads are charged
    // through the hierarchy every time).
    system::MachineConfig cfg;
    cfg.nLogical = 4;
    cfg.nPhysical = 2;
    cfg.memFrames = 8192;
    system::System sys(cfg);
    auto mf = sys.mapDataset("f", 512);
    for (unsigned i = 0; i < 512; ++i) {
        Pfn pfn = sys.physMem().alloc();
        sys.kernel().installPage(*mf.as, *mf.vma,
                                 mf.vma->start + i * pageSize, pfn,
                                 true);
    }
    cpu::Walker w(sys.caches(), 0, 357,
                  static_cast<unsigned>(state.range(0)));
    sim::Rng rng(13);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            w.walk(*mf.as, mf.vma->start + rng.range(512) * pageSize));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WalkerPresentWalk)->Arg(0)->Arg(16);

struct BenchThread : os::Thread
{
    BenchThread() : os::Thread("bench", 0) {}
    void run() override {}
};

struct BenchSink : cpu::AccessSink
{
    void accessDone(const cpu::AccessInfo &) override {}
};

void
BM_MmuInlineHit(benchmark::State &state)
{
    // End-to-end inline hit: Mmu::access with a warm TLB, the exact
    // path every batched compute-burst reference takes.
    system::MachineConfig cfg;
    cfg.nLogical = 4;
    cfg.nPhysical = 2;
    cfg.memFrames = 8192;
    system::System sys(cfg);
    auto mf = sys.mapDataset("f", 64);
    sys.preload(mf);

    BenchThread t;
    BenchSink sink;
    cpu::AccessInfo info;
    auto &mmu = sys.core(0).mmu();
    VAddr base = mf.vma->start;
    mmu.access(t, *mf.as, base, false, 0, sink, info); // warm
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mmu.access(
            t, *mf.as, base + (i++ % 16) * pageSize, false, 0, sink,
            info));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MmuInlineHit);

} // namespace

BENCHMARK_MAIN();

/**
 * @file
 * Kernel-pollution engine microbenchmarks (google-benchmark): the
 * per-phase pollution cost through the reference per-line path and
 * the batched level-major path, the underlying cache-batch API at L1
 * geometry, and the bulk RNG / branch-predictor streams. These
 * isolate the pollution cost that BENCH_pollution.json records and
 * that BENCH_memsys.json's end-to-end fig13 number aggregates; the
 * run also prints the per-category probe table the phase mix
 * generates.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "mem/branch_predictor.hh"
#include "mem/cache_array.hh"
#include "mem/cache_hierarchy.hh"
#include "metrics/report.hh"
#include "os/kernel_phases.hh"
#include "sim/rng.hh"

using namespace hwdp;
using namespace hwdp::os;

namespace {

/** The OSDP fault critical path: the pollution stream fig13 pays. */
const KernelPhase *const faultMix[] = {
    &phases::exceptionEntry, &phases::vmaLookup,   &phases::pageAlloc,
    &phases::ioSubmit,       &phases::contextSwitch,
    &phases::irqDeliver,     &phases::ioComplete,  &phases::wakeupSched,
    &phases::metadataUpdate, &phases::pteUpdateReturn};

void
runPhaseMix(benchmark::State &state, bool batch)
{
    mem::CacheHierarchy caches(1, mem::CacheParams{});
    std::vector<mem::BranchPredictor> bps(1);
    KernelExec kexec(caches, bps, 357, sim::Rng(2));
    kexec.setBatchEnabled(batch);
    for (int warm = 0; warm < 64; ++warm)
        for (const KernelPhase *p : faultMix)
            kexec.run(0, *p);
    std::uint64_t probes0 = kexec.totalPollutionProbes();
    std::uint64_t phases = 0;
    for (auto _ : state) {
        for (const KernelPhase *p : faultMix)
            benchmark::DoNotOptimize(kexec.run(0, *p));
        phases += std::size(faultMix);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(phases));
    state.counters["probes/s"] = benchmark::Counter(
        static_cast<double>(kexec.totalPollutionProbes() - probes0),
        benchmark::Counter::kIsRate);
}

void
BM_PollutionPhaseMixReference(benchmark::State &state)
{
    runPhaseMix(state, false);
}
BENCHMARK(BM_PollutionPhaseMixReference);

void
BM_PollutionPhaseMixBatched(benchmark::State &state)
{
    runPhaseMix(state, true);
}
BENCHMARK(BM_PollutionPhaseMixBatched);

void
BM_CacheAccessBatchL1AllHit(benchmark::State &state)
{
    // The inner loop of the level-major descent: a phase-footprint
    // sized run through an L1 array, steady-state all hits.
    mem::CacheArray l1("l1", 32 * 1024, 8);
    std::vector<std::uint64_t> run;
    for (int i = 0; i < 48; ++i)
        run.push_back(0xffffffff80000000ull + i * 64);
    std::vector<std::uint64_t> miss(run.size());
    l1.accessBatch(run.data(), run.size(), miss.data());
    for (auto _ : state)
        benchmark::DoNotOptimize(
            l1.accessBatch(run.data(), run.size(), miss.data()));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(run.size()));
}
BENCHMARK(BM_CacheAccessBatchL1AllHit);

void
BM_CachePerLineL1AllHit(benchmark::State &state)
{
    // Per-line counterpart of BM_CacheAccessBatchL1AllHit.
    mem::CacheArray l1("l1", 32 * 1024, 8);
    std::vector<std::uint64_t> run;
    for (int i = 0; i < 48; ++i)
        run.push_back(0xffffffff80000000ull + i * 64);
    for (auto a : run)
        l1.access(a);
    for (auto _ : state) {
        for (auto a : run)
            benchmark::DoNotOptimize(l1.access(a));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(run.size()));
}
BENCHMARK(BM_CachePerLineL1AllHit);

void
BM_RngFillCoinFlips(benchmark::State &state)
{
    sim::Rng rng(7);
    std::vector<std::uint8_t> out(256);
    for (auto _ : state) {
        rng.fill(0.5, out.data(), out.size());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(out.size()));
}
BENCHMARK(BM_RngFillCoinFlips);

void
BM_BranchPredictorUpdateBatch(benchmark::State &state)
{
    mem::BranchPredictor bp;
    sim::Rng rng(11);
    std::vector<std::uint64_t> pcs;
    for (int i = 0; i < 1024; ++i)
        pcs.push_back(0xffffffff81000000ull + i * 16);
    std::vector<std::uint8_t> taken(200);
    rng.fill(0.5, taken.data(), taken.size());
    for (auto _ : state)
        benchmark::DoNotOptimize(
            bp.updateBatch(pcs.data(), pcs.size(), taken.data(),
                           taken.size(), ExecMode::kernel));
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(taken.size()));
}
BENCHMARK(BM_BranchPredictorUpdateBatch);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // Show where the fault path's probes land per kernel cost
    // category (the accounting the batched engine surfaces).
    mem::CacheHierarchy caches(1, mem::CacheParams{});
    std::vector<mem::BranchPredictor> bps(1);
    KernelExec kexec(caches, bps, 357, sim::Rng(2));
    for (int r = 0; r < 1000; ++r)
        for (const KernelPhase *p : faultMix)
            kexec.run(0, *p);
    std::printf("\nPollution probes by category, 1000 OSDP faults:\n");
    metrics::pollutionProbeTable(kexec).print();
    return 0;
}

#include "sim/logging.hh"

#include <atomic>
#include <cstdio>

namespace hwdp {

namespace {
std::atomic<bool> quietFlag{false};
} // namespace

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
isQuiet()
{
    return quietFlag;
}

namespace detail {

void
logMessage(const char *prefix, const std::string &msg)
{
    // Errors always print; chatter respects the quiet flag.
    bool is_error = prefix[0] == 'p' || prefix[0] == 'f';
    if (quietFlag && !is_error)
        return;
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

} // namespace detail
} // namespace hwdp

#include "sim/rng.hh"

#include <cmath>

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::sim {

void
Rng::rangePanic() const
{
    panic("Rng::range with zero bound");
}

std::uint64_t
Rng::between(std::uint64_t lo, std::uint64_t hi)
{
    if (hi < lo)
        panic("Rng::between with inverted bounds");
    return lo + range(hi - lo + 1);
}

double
Rng::exponential(double mean)
{
    double u = uniform();
    // Guard against log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

double
Rng::normal(double mean, double stddev)
{
    if (haveSpare) {
        haveSpare = false;
        return mean + stddev * spare;
    }
    double u1 = uniform();
    double u2 = uniform();
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    spare = r * std::sin(theta);
    haveSpare = true;
    return mean + stddev * r * std::cos(theta);
}

void
Rng::serialize(Serializer &s)
{
    s.io(state);
    s.io(haveSpare);
    s.io(spare);
}

Rng
Rng::fork()
{
    // Jump by consuming one value and re-mixing with a distinct odd
    // constant so child streams do not overlap in practice.
    return Rng(next() ^ 0xd1342543de82ef95ULL);
}

} // namespace hwdp::sim

#include "mem/cache_hierarchy.hh"

#include "sim/logging.hh"

namespace hwdp::mem {

CacheHierarchy::CacheHierarchy(unsigned n_cores, const CacheParams &params)
    : prm(params)
{
    if (n_cores == 0)
        fatal("cache hierarchy: need at least one core");
    for (unsigned c = 0; c < n_cores; ++c) {
        l1i.push_back(std::make_unique<CacheArray>(
            "l1i" + std::to_string(c), prm.l1iBytes, prm.l1iAssoc));
        l1d.push_back(std::make_unique<CacheArray>(
            "l1d" + std::to_string(c), prm.l1dBytes, prm.l1dAssoc));
        l2.push_back(std::make_unique<CacheArray>(
            "l2_" + std::to_string(c), prm.l2Bytes, prm.l2Assoc));
    }
    llc = std::make_unique<CacheArray>("llc", prm.llcBytes, prm.llcAssoc);
}

CacheAccessResult
CacheHierarchy::access(unsigned core, std::uint64_t addr, bool is_inst,
                       ExecMode mode)
{
    if (core >= l1d.size())
        panic("cache hierarchy: core ", core, " out of range");

    CacheAccessResult r;
    ModeCounters &mc = modeCtrs[static_cast<unsigned>(mode)];
    CacheArray &first = is_inst ? *l1i[core] : *l1d[core];

    if (is_inst) {
        ++mc.l1iAccesses;
    } else {
        ++mc.l1dAccesses;
    }

    if (first.access(addr)) {
        r.latency = prm.l1Latency;
        return r;
    }
    r.l1Miss = true;
    if (is_inst)
        ++mc.l1iMisses;
    else
        ++mc.l1dMisses;

    if (l2[core]->access(addr)) {
        r.latency = prm.l2Latency;
        return r;
    }
    r.l2Miss = true;
    ++mc.l2Misses;

    if (llc->access(addr)) {
        r.latency = prm.llcLatency;
        return r;
    }
    r.llcMiss = true;
    ++mc.llcMisses;
    r.latency = prm.dramLatency;
    return r;
}

void
CacheHierarchy::resetCounters()
{
    modeCtrs[0] = ModeCounters{};
    modeCtrs[1] = ModeCounters{};
}

} // namespace hwdp::mem

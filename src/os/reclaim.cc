#include "os/reclaim.hh"

#include "os/kernel.hh"
#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::os {

// ---------------------------------------------------------------- LruLists

void
LruLists::serialize(sim::Serializer &s)
{
    s.section("lru");
    s.io(active);
    s.io(inactive);
    if (s.loading()) {
        where.clear();
        for (auto it = active.begin(); it != active.end(); ++it)
            where[*it] = Loc{ListId::active, it};
        for (auto it = inactive.begin(); it != inactive.end(); ++it)
            where[*it] = Loc{ListId::inactive, it};
    }
}

void
LruLists::insert(Page &page, ListId list)
{
    if (page.lruLinked)
        panic("lru: page ", page.pfn, " already linked");
    auto &l = list == ListId::active ? active : inactive;
    l.push_front(page.pfn);
    where[page.pfn] = Loc{list, l.begin()};
    page.lruLinked = true;
    page.active = list == ListId::active;
}

void
LruLists::insertInactive(Page &page)
{
    insert(page, ListId::inactive);
}

void
LruLists::insertActive(Page &page)
{
    insert(page, ListId::active);
}

void
LruLists::remove(Page &page)
{
    auto it = where.find(page.pfn);
    if (it == where.end())
        panic("lru: removing unlinked page ", page.pfn);
    auto &l = it->second.list == ListId::active ? active : inactive;
    l.erase(it->second.it);
    where.erase(it);
    page.lruLinked = false;
    page.active = false;
}

Pfn
LruLists::popCandidate()
{
    if (inactive.empty()) {
        // Aging: demote the oldest active pages.
        for (std::uint64_t i = 0; i < demoteBatch && !active.empty();
             ++i) {
            Pfn pfn = active.back();
            active.pop_back();
            inactive.push_front(pfn);
            where[pfn] = Loc{ListId::inactive, inactive.begin()};
        }
    }
    if (inactive.empty())
        return invalidPfn;
    Pfn pfn = inactive.back();
    inactive.pop_back();
    where.erase(pfn);
    return pfn;
}

void
LruLists::secondChance(Page &page)
{
    if (page.lruLinked)
        panic("lru: second chance on a linked page");
    page.referenced = false;
    insert(page, ListId::active);
}

// --------------------------------------------------------------- Reclaimer

void
Reclaimer::serialize(sim::Serializer &s)
{
    s.section("reclaimer");
    KThread::serialize(s);
    s.check(lowWater, "reclaim low watermark");
    s.check(highWater, "reclaim high watermark");
    s.io(nEvicted);
    s.io(nWriteback);
    s.io(nDirect);
    lists.serialize(s);
}

Reclaimer::Reclaimer(Kernel &kernel, unsigned core, Tick period,
                     std::uint64_t low_water, std::uint64_t high_water)
    : KThread("kreclaimd", core, kernel.scheduler(), kernel.eventQueue(),
              period),
      kernel(kernel), lowWater(low_water), highWater(high_water)
{
    if (high_water <= low_water)
        fatal("reclaimer: watermarks inverted");
}

std::uint64_t
Reclaimer::shrink(unsigned core, std::uint64_t want,
                  std::uint64_t *scanned)
{
    std::uint64_t freed = 0;
    std::uint64_t seen = 0;
    // Bounded scan: at worst look at 8x the target before giving up
    // (everything referenced/dirty), mirroring shrink priority decay.
    std::uint64_t budget = want * 8 + 32;

    while (freed < want && seen < budget) {
        Pfn pfn = lists.popCandidate();
        if (pfn == LruLists::invalidPfn)
            break;
        ++seen;
        Page &pg = kernel.page(pfn);
        pg.lruLinked = false;

        if (!pg.inUse || pg.underWriteback || pg.inSmuQueue || pg.tail) {
            // Should not be on the LRU; tolerate and drop the link.
            continue;
        }

        // Compound heads stand for their whole 2 MB unit: reclaim the
        // unit wholesale (clean, file-backed) or demote it so the
        // subpages age out individually.
        if (pg.isCompoundHead()) {
            freed += reclaimHugeHead(pg);
            continue;
        }

        // Anonymous pages are not evictable (swap-out is outside the
        // model, as it is a straightforward extension in the paper,
        // Section V): park them on the active list.
        if (pg.as != nullptr && pg.file == nullptr) {
            pg.referenced = false;
            lists.secondChance(pg);
            continue;
        }

        // Referenced pages (hardware-set PTE accessed bit or software
        // referenced flag) get a second chance on the active list.
        bool referenced = pg.referenced;
        if (pg.as != nullptr) {
            pte::Entry e = pg.as->pageTable().readPte(pg.vaddr);
            if (pte::isAccessed(e)) {
                referenced = true;
                pg.as->pageTable().writePte(pg.vaddr,
                                            e & ~pte::accessedBit);
            }
        }
        if (referenced) {
            lists.secondChance(pg);
            continue;
        }

        bool dirty;
        if (pg.as != nullptr) {
            // Evicting a member of a NAPOT run breaks the run first —
            // the wide TLB reach must die before the frame is freed.
            if (kernel.pageMode() != PageMode::off) {
                pte::Entry e = pg.as->pageTable().readPte(pg.vaddr);
                if (pte::hasNapotBit(e))
                    kernel.breakNapotRun(*pg.as, pg.vaddr);
            }
            dirty = kernel.rmap().unmapForEviction(pg);
        } else {
            dirty = pg.dirty; // unmapped page-cache page
        }

        if (dirty) {
            // Drop the page-cache entry first so a racing fault
            // re-reads from disk instead of mapping a frame that is
            // about to be freed (the page-lock serialisation).
            if (pg.inPageCache && pg.file) {
                kernel.pageCache().remove(*pg.file, pg.index);
                pg.inPageCache = false;
            }
            // Write back, then free on completion.
            pg.underWriteback = true;
            ++nWriteback;
            kernel.kexec().run(kernel.scheduler().physCoreOf(core),
                               phases::writebackSubmit);
            File *file = pg.file;
            unsigned dev = kernel.deviceIndexOf(file->device());
            kernel.blockLayer().submit(
                core, dev, file->lbaOf(pg.index), true,
                BlockLayer::IoClass::writeback, [this, &pg] {
                    pg.underWriteback = false;
                    pg.dirty = false;
                    kernel.freePage(pg);
                    ++nEvicted;
                });
        } else {
            kernel.freePage(pg);
            ++nEvicted;
            ++freed;
        }
    }
    if (scanned)
        *scanned = seen;
    return freed;
}

std::uint64_t
Reclaimer::reclaimHugeHead(Page &pg)
{
    // Anonymous units are unevictable, like anonymous 4 KB pages:
    // park the head on the active list.
    if (pg.file == nullptr) {
        pg.referenced = false;
        lists.secondChance(pg);
        return 0;
    }
    AddressSpace &as = *pg.as;
    EntryRef leaf = as.pageTable().hugeLeafRef(pg.vaddr, false);
    if (!leaf.valid() || !pte::isHugeLeaf(leaf.value()))
        panic("reclaim: compound head ", pg.pfn, " without a 2 MB leaf");

    // Unit-level second chance: the leaf A-bit (hardware-set on any
    // access inside the window) or the software referenced flag.
    bool referenced = pg.referenced;
    if (pte::isAccessed(leaf.value())) {
        referenced = true;
        leaf.write(leaf.value() & ~pte::accessedBit);
    }
    if (referenced) {
        lists.secondChance(pg);
        return 0;
    }

    // A dirty subpage (or the split-storm fault hook) forces the
    // split path: demote and let the 4 KB pages age out one by one —
    // whole-unit writeback would stall the scan on 2 MB of I/O.
    bool any_dirty = false;
    for (std::uint64_t i = 0; i < pmdLeafPages && !any_dirty; ++i)
        any_dirty = kernel.page(pg.pfn + i).dirty;
    if (any_dirty || kernel.hugeSplitForced()) {
        kernel.demoteHugePage(as, pg.vaddr);
        // demoteHugePage linked the tails; the head rejoins here.
        if (!pg.lruLinked)
            lists.insertInactive(pg);
        return 0;
    }

    // Clean file-backed unit: one scan candidate frees 512 frames.
    kernel.reclaimHugeUnit(pg);
    nEvicted += pmdLeafPages;
    return pmdLeafPages;
}

void
Reclaimer::batch(std::function<void()> done)
{
    std::uint64_t free_now = kernel.physMem().freeFrames();
    if (free_now >= lowWater) {
        done();
        return;
    }
    std::uint64_t want = highWater - free_now;
    std::uint64_t scanned = 0;
    shrink(core(), want, &scanned);
    Tick dur = kernel.kexec().runBatch(
        kernel.scheduler().physCoreOf(core()), phases::reclaimScanPage,
        scanned);
    eq.postIn(dur, std::move(done), "kreclaimd.batch");
}

void
Reclaimer::directReclaim(unsigned core, std::uint64_t want,
                         std::function<void()> done)
{
    ++nDirect;
    std::uint64_t scanned = 0;
    shrink(core, want, &scanned);
    Tick dur = kernel.kexec().runBatch(kernel.scheduler().physCoreOf(core),
                                       phases::reclaimScanPage, scanned);
    kernel.eventQueue().postIn(dur, std::move(done),
                                         "direct_reclaim");
}

} // namespace hwdp::os

/**
 * @file
 * Workload abstraction: a pull-based stream of operations.
 *
 * A workload yields Ops — compute bursts with a microarchitectural
 * profile, memory accesses into mmap'ed regions, buffered file writes
 * (WAL traffic), msync barriers, think time — and the ThreadContext
 * executes them against the simulated machine. One Op may end an
 * "application operation" (a FIO read, a YCSB request), which is the
 * unit the throughput figures count.
 */

#ifndef HWDP_WORKLOADS_WORKLOAD_HH
#define HWDP_WORKLOADS_WORKLOAD_HH

#include <cstdint>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace hwdp::sim {
class Serializer;
}

namespace hwdp::os {
class File;
struct Vma;
} // namespace hwdp::os

namespace hwdp::workloads {

/** Microarchitectural profile of a compute burst. */
struct ComputeSpec
{
    std::uint64_t instructions = 0;

    /** Fraction of instructions that are data references. */
    double memRefFrac = 0.1;

    /** Fraction of instructions that are branches. */
    double branchFrac = 0.15;

    /**
     * Two-level data working set: most references hit a small hot
     * set (registers/L1-resident structures); coldFrac of them roam a
     * larger cold region. This is what gives workloads realistic IPC
     * and makes kernel cache pollution visible (evicted hot lines).
     */
    VAddr hotBase = 0x10'0000'0000ULL;
    std::uint64_t hotBytes = 24 * 1024;
    std::uint64_t coldBytes = 2 * 1024 * 1024;
    double coldFrac = 0.08;

    /** Instruction footprint. */
    VAddr textBase = 0x4000'0000ULL;
    std::uint64_t textBytes = 16 * 1024;

    /**
     * Cold instruction lines per burst (rarely-taken paths, library
     * calls): streamed from a 1 MB cold-text region, they give the
     * workload an intrinsic L1I miss floor.
     */
    std::uint32_t icacheColdLines = 12;

    /**
     * Memory-level parallelism: how many data misses overlap. 1 means
     * fully dependent chains (KV index walks); streaming kernels
     * overlap many misses.
     */
    double mlp = 1.0;

    /**
     * Branch predictability: fraction of pattern-following outcomes.
     * Patterned outcomes are learnable by the gshare predictor until
     * kernel entries scramble its history/tables; the remainder are
     * noise no predictor can learn.
     */
    double branchBias = 0.9;

    /** Number of distinct static branch sites. */
    std::uint32_t staticBranches = 64;
};

struct Op
{
    enum class Kind { compute, mem, fileWrite, msync, idle, done };

    Kind kind = Kind::done;

    ComputeSpec compute{};          ///< kind == compute

    VAddr addr = 0;                 ///< kind == mem
    bool write = false;

    os::File *file = nullptr;       ///< kind == fileWrite
    std::uint64_t pageIndex = 0;
    std::uint64_t bytes = 0;

    os::Vma *vma = nullptr;         ///< kind == msync

    Tick idleTicks = 0;             ///< kind == idle

    /** True when completing this op finishes one application op. */
    bool endsAppOp = false;

    static Op
    makeCompute(const ComputeSpec &spec, bool ends_op = false)
    {
        Op op;
        op.kind = Kind::compute;
        op.compute = spec;
        op.endsAppOp = ends_op;
        return op;
    }

    static Op
    makeMem(VAddr addr, bool write, bool ends_op = false)
    {
        Op op;
        op.kind = Kind::mem;
        op.addr = addr;
        op.write = write;
        op.endsAppOp = ends_op;
        return op;
    }

    static Op
    makeFileWrite(os::File *file, std::uint64_t page_index,
                  std::uint64_t bytes, bool ends_op = false)
    {
        Op op;
        op.kind = Kind::fileWrite;
        op.file = file;
        op.pageIndex = page_index;
        op.bytes = bytes;
        op.endsAppOp = ends_op;
        return op;
    }

    static Op
    makeDone()
    {
        return Op{};
    }
};

class Workload
{
  public:
    virtual ~Workload() = default;

    /** Produce the next operation. Must return done forever after. */
    virtual Op next(sim::Rng &rng) = 0;

    /**
     * Time-aware draw: @p now is the executing thread's logical clock
     * at the moment of the draw. Open-loop sources use it to pace
     * arrivals (idling until the next scheduled request); the default
     * forwards to the timeless overload, so closed-loop workloads are
     * untouched.
     */
    virtual Op
    next(sim::Rng &rng, Tick now)
    {
        (void)now;
        return next(rng);
    }

    /**
     * Fired when an op with endsAppOp retires, at the logical
     * completion time. Open-loop sources compute per-request latency
     * (completion minus *scheduled arrival*, so queueing delay is
     * included) here; the default does nothing.
     */
    virtual void appOpDone(Tick now) { (void)now; }

    virtual const char *label() const = 0;

    /**
     * Checkpoint the draw cursor. The default is for stateless
     * recipes; drivers with progress state override it. Only valid at
     * quiesce — a driver holding expanded-but-unexecuted ops throws.
     */
    virtual void serialize(sim::Serializer &s) { (void)s; }
};

} // namespace hwdp::workloads

#endif // HWDP_WORKLOADS_WORKLOAD_HH

/**
 * @file
 * Tests for the SMU: end-to-end hardware miss handling, coalescing,
 * bounce conditions and the barrier.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "system/system.hh"

using namespace hwdp;
using namespace hwdp::core;

namespace {

struct Harness
{
    system::System sys;
    os::AddressSpace *as;
    os::Vma *vma;
    os::File *file;

    explicit Harness(unsigned pmshr_entries = 32,
                     std::uint64_t queue_cap = 64)
        : sys([&] {
              system::MachineConfig cfg;
              cfg.mode = system::PagingMode::hwdp;
              cfg.nLogical = 4;
              cfg.nPhysical = 2;
              cfg.memFrames = 1024;
              cfg.smu.pmshrEntries = pmshr_entries;
              cfg.smu.freeQueueCapacity = queue_cap;
              return cfg;
          }())
    {
        auto mf = sys.mapDataset("f", 256);
        as = mf.as;
        vma = mf.vma;
        file = mf.file;
        sys.start(); // primes the free page queue
    }

    /** Issue a raw page-miss request for page @p idx on core 0. */
    void
    requestMiss(std::uint64_t idx, std::function<void(bool)> done)
    {
        VAddr va = vma->start + idx * pageSize;
        auto refs = as->pageTable().walkRefs(va, false);
        os::pte::Entry e = refs.pte.value();
        ASSERT_TRUE(os::pte::isLbaAugmented(e));

        cpu::PageMissRequest req;
        req.refs = refs;
        req.sid = os::pte::socketIdOf(e);
        req.dev = os::pte::deviceIdOf(e);
        req.lba = os::pte::lbaOf(e);
        req.as = as;
        req.vaddr = va;
        req.core = 0;
        req.done = std::move(done);
        sys.smu()->handleMiss(std::move(req));
    }
};

} // namespace

TEST(Smu, SingleMissUpdatesPageTableInPlace)
{
    Harness h;
    bool ok = false;
    h.requestMiss(3, [&](bool success) { ok = success; });
    h.sys.eventQueue().run(seconds(0.01));

    EXPECT_TRUE(ok);
    VAddr va = h.vma->start + 3 * pageSize;
    os::pte::Entry e = h.as->pageTable().readPte(va);
    // Present, LBA bit kept for kpted (Table I row 3).
    EXPECT_TRUE(os::pte::needsMetadataSync(e));
    // Upper levels marked for the guided scan.
    auto refs = h.as->pageTable().walkRefs(va, false);
    EXPECT_TRUE(os::pte::hasLbaBit(refs.pmd.value()));
    EXPECT_TRUE(os::pte::hasLbaBit(refs.pud.value()));
    EXPECT_EQ(h.sys.smu()->handled(), 1u);
}

TEST(Smu, MissLatencyIsNearDeviceTime)
{
    Harness h;
    Tick start = h.sys.now();
    Tick end = 0;
    h.requestMiss(3, [&](bool) { end = h.sys.now(); });
    h.sys.eventQueue().run(seconds(0.01));
    double us = toMicroseconds(end - start);
    // Z-SSD device time 10.9 us + ~120 ns of hardware (Figure 11b).
    EXPECT_GT(us, 10.0);
    EXPECT_LT(us, 12.5);
}

TEST(Smu, DuplicateMissesCoalesce)
{
    Harness h;
    int completions = 0;
    h.requestMiss(5, [&](bool s) { completions += s; });
    h.requestMiss(5, [&](bool s) { completions += s; });
    h.requestMiss(5, [&](bool s) { completions += s; });
    h.sys.eventQueue().run(seconds(0.01));

    EXPECT_EQ(completions, 3);
    EXPECT_EQ(h.sys.smu()->coalesced(), 2u);
    // Exactly ONE device read: no page aliases possible.
    EXPECT_EQ(h.sys.smu()->hostController().readsIssued(), 1u);
    EXPECT_EQ(h.sys.smu()->handled(), 1u);
}

TEST(Smu, DistinctPagesDoNotCoalesce)
{
    Harness h;
    int completions = 0;
    for (std::uint64_t i = 0; i < 8; ++i)
        h.requestMiss(i, [&](bool s) { completions += s; });
    h.sys.eventQueue().run(seconds(0.01));
    EXPECT_EQ(completions, 8);
    EXPECT_EQ(h.sys.smu()->coalesced(), 0u);
    EXPECT_EQ(h.sys.smu()->hostController().readsIssued(), 8u);
}

TEST(Smu, PmshrFullBouncesToOs)
{
    Harness h(2); // two PMSHR entries only
    int ok = 0, bounced = 0;
    for (std::uint64_t i = 0; i < 3; ++i) {
        h.requestMiss(i, [&](bool s) { s ? ++ok : ++bounced; });
    }
    h.sys.eventQueue().run(seconds(0.01));
    EXPECT_EQ(ok, 2);
    EXPECT_EQ(bounced, 1);
    EXPECT_EQ(h.sys.smu()->rejectedPmshrFull(), 1u);
}

TEST(Smu, EmptyFreePageQueueBounces)
{
    Harness h;
    // Drain the queue completely.
    auto &fpq = h.sys.smu()->freePageQueue();
    while (!fpq.empty()) {
        auto r = fpq.pop(0);
        h.sys.kernel().page(r.pfn).inSmuQueue = false;
        h.sys.kernel().freePage(h.sys.kernel().page(r.pfn));
    }
    bool result = true;
    h.requestMiss(1, [&](bool s) { result = s; });
    h.sys.eventQueue().run(seconds(0.001));
    EXPECT_FALSE(result);
    EXPECT_EQ(h.sys.smu()->rejectedQueueEmpty(), 1u);
    // The PMSHR entry was released.
    EXPECT_EQ(h.sys.smu()->pmshr().occupancy(), 0u);
}

TEST(Smu, QueueEmptyCallbackFires)
{
    Harness h;
    auto &fpq = h.sys.smu()->freePageQueue();
    while (!fpq.empty()) {
        auto r = fpq.pop(0);
        h.sys.kernel().page(r.pfn).inSmuQueue = false;
        h.sys.kernel().freePage(h.sys.kernel().page(r.pfn));
    }
    bool kicked = false;
    h.sys.smu()->setQueueEmptyCallback([&] { kicked = true; });
    h.requestMiss(1, [](bool) {});
    h.sys.eventQueue().run(seconds(0.001));
    EXPECT_TRUE(kicked);
}

TEST(Smu, BarrierWaitsForOutstandingMisses)
{
    Harness h;
    bool miss_done = false, barrier_done = false;
    h.requestMiss(2, [&](bool) { miss_done = true; });
    // Give the request time to allocate its PMSHR entry.
    h.sys.eventQueue().run(h.sys.now() + microseconds(1.0));
    h.sys.smu()->barrier([&] {
        barrier_done = true;
        EXPECT_TRUE(miss_done); // ordering: barrier after completion
    });
    EXPECT_FALSE(barrier_done);
    h.sys.eventQueue().run(seconds(0.01));
    EXPECT_TRUE(barrier_done);
}

TEST(Smu, BarrierFiresImmediatelyWhenIdle)
{
    Harness h;
    bool done = false;
    h.sys.smu()->barrier([&] { done = true; });
    EXPECT_TRUE(done);
}

TEST(Smu, ConsumedFrameLeavesSmuQueueState)
{
    Harness h;
    Pfn installed = mem::PhysMem::invalidPfn;
    h.requestMiss(7, [&](bool) {
        os::pte::Entry e = h.as->pageTable().readPte(h.vma->start +
                                                     7 * pageSize);
        installed = os::pte::pfnOf(e);
    });
    h.sys.eventQueue().run(seconds(0.01));
    ASSERT_NE(installed, mem::PhysMem::invalidPfn);
    EXPECT_FALSE(h.sys.kernel().page(installed).inSmuQueue);
    EXPECT_TRUE(h.sys.kernel().page(installed).inUse);
}

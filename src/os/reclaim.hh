/**
 * @file
 * Page replacement: LRU lists and the reclaimer.
 *
 * Linux-flavoured two-list design: pages enter the inactive list;
 * referenced pages get a second chance onto the active list; when the
 * inactive list runs dry a batch of active pages is demoted (aging).
 * A background reclaimer thread (kswapd equivalent) keeps free memory
 * between watermarks so the steady-state working set can churn; the
 * fault path falls back to synchronous direct reclaim when allocation
 * fails outright. The paper's kpted inserts hardware-faulted pages
 * into these lists in batch (Section IV-C), and the one-second kpted
 * period is justified by the LRU rotation time — which this module
 * makes a measurable quantity.
 */

#ifndef HWDP_OS_RECLAIM_HH
#define HWDP_OS_RECLAIM_HH

#include <cstdint>
#include <list>
#include <unordered_map>

#include "os/kthread.hh"
#include "sim/types.hh"

namespace hwdp::sim {
class Serializer;
}

namespace hwdp::os {

class Kernel;
struct Page;

class LruLists
{
  public:
    void insertInactive(Page &page);
    void insertActive(Page &page);

    /** Remove from whichever list holds the page. */
    void remove(Page &page);

    /**
     * Pop the next eviction candidate from the inactive tail,
     * demoting a batch of active pages first when inactive is empty.
     * Returns invalid when both lists are empty.
     */
    Pfn popCandidate();

    /** Second chance: requeue a referenced page onto the active list. */
    void secondChance(Page &page);

    std::uint64_t activeCount() const { return active.size(); }
    std::uint64_t inactiveCount() const { return inactive.size(); }
    std::uint64_t size() const { return active.size() + inactive.size(); }

    bool contains(Pfn pfn) const { return where.count(pfn) != 0; }

    /**
     * Checkpoint both lists in order; the where-map is rebuilt on
     * load (eviction order is logical state — Figure 15 depends on
     * it).
     */
    void serialize(sim::Serializer &s);

    static constexpr Pfn invalidPfn = ~Pfn(0);

    /** Active pages demoted per refill of the inactive list. */
    static constexpr std::uint64_t demoteBatch = 32;

  private:
    enum class ListId { active, inactive };
    struct Loc
    {
        ListId list;
        std::list<Pfn>::iterator it;
    };

    std::list<Pfn> active;   // front = most recent
    std::list<Pfn> inactive; // front = most recent, evict from back
    std::unordered_map<Pfn, Loc> where;

    void insert(Page &page, ListId list);
};

class Reclaimer : public KThread
{
  public:
    /**
     * @param low_water  Free-frame count that triggers background
     *                   reclaim.
     * @param high_water Background reclaim target.
     */
    Reclaimer(Kernel &kernel, unsigned core, Tick period,
              std::uint64_t low_water, std::uint64_t high_water);

    void batch(std::function<void()> done) override;

    /**
     * Synchronous direct reclaim on the faulting path: frees up to
     * @p want frames (clean pages immediately; dirty ones via
     * writeback, which completes later). Charges reclaim phases on
     * @p core, then calls @p done.
     */
    void directReclaim(unsigned core, std::uint64_t want,
                       std::function<void()> done);

    LruLists &lru() { return lists; }

    std::uint64_t pagesEvicted() const { return nEvicted; }
    std::uint64_t pagesWrittenBack() const { return nWriteback; }
    std::uint64_t directReclaims() const { return nDirect; }

    std::uint64_t lowWatermark() const { return lowWater; }
    std::uint64_t highWatermark() const { return highWater; }

    /** Checkpoint the LRU lists, counters and kthread state. */
    void serialize(sim::Serializer &s);

  private:
    Kernel &kernel;
    LruLists lists;
    std::uint64_t lowWater;
    std::uint64_t highWater;

    std::uint64_t nEvicted = 0;
    std::uint64_t nWriteback = 0;
    std::uint64_t nDirect = 0;

    /**
     * Evict up to @p want pages, returning the number freed now
     * (dirty pages under writeback free later and do not count).
     * @param scanned Out: pages examined (for phase charging).
     */
    std::uint64_t shrink(unsigned core, std::uint64_t want,
                         std::uint64_t *scanned);

    /**
     * A 2 MB compound head reached the inactive tail. Clean file
     * units reclaim whole (one candidate frees 512 frames — the reach
     * payoff on the eviction side too); a dirty subpage or the
     * split-storm fault hook forces a demotion so the unit's pages
     * age out individually. Returns the frames freed now.
     */
    std::uint64_t reclaimHugeHead(Page &pg);
};

} // namespace hwdp::os

#endif // HWDP_OS_RECLAIM_HH

/**
 * @file
 * Figure 18 (extension): multi-socket NUMA serving under open-loop
 * zipfian traffic.
 *
 * The paper evaluates a single-socket machine with closed-loop
 * clients; this bench asks the serving question instead: at a fixed
 * offered load (Poisson arrivals, scrambled-zipfian keys, 95/5
 * read/update), what tail latency does each paging mode deliver, and
 * where does it saturate — across 1, 2 and 4 sockets? Latency is
 * measured from the scheduled arrival, so queueing delay under
 * overload is part of the number (the hockey stick).
 *
 * For each (sockets, mode) the offered load is swept and the table
 * reports p50/p99/p99.9 at every point plus the saturation
 * throughput: the highest offered load whose achieved rate stays
 * within 95% of offered.
 *
 * Flags:
 *   --smoke            tiny sweep for CI (one load point, few requests)
 *   --identity-check   run one point, checkpoint the finished machine,
 *                      restore into a fresh boot and verify that the
 *                      logical-state hash and the served/quantile
 *                      numbers survive the round trip bit-exactly
 */

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "testing/logical_state.hh"
#include "workloads/open_loop.hh"

using namespace hwdp;
using metrics::Table;

namespace {

struct ServingPoint
{
    double offeredOpsPerSec = 0;
    double achievedOpsPerSec = 0;
    double p50Us = 0;
    double p99Us = 0;
    double p999Us = 0;
    std::uint64_t served = 0;
    std::uint64_t logicalHash = 0;
};

struct ServingJob
{
    system::MachineConfig cfg;
    double offeredOpsPerSec = 0;
    std::uint64_t totalRequests = 0;
    unsigned nServers = 1;
    std::uint64_t datasetPages = bench::defaultDatasetPages;
};

/** Keeps the store + source alive for the machine's lifetime. */
struct ServingHolder : workloads::Workload
{
    std::unique_ptr<workloads::KvStore> store;
    std::unique_ptr<workloads::OpenLoopSource> source;
    workloads::Op next(sim::Rng &) override
    {
        return workloads::Op::makeDone();
    }
    const char *label() const override { return "serving_holder"; }
};

/**
 * Boot one serving machine: warmed dataset, WAL, open-loop source and
 * one server thread per server index. Shared by the measurement path
 * and the identity check (a restore target must repeat the recipe).
 */
system::System::MappedFile
bootServing(system::System &sys, const ServingJob &j)
{
    auto mf = sys.mapDataset("kv.dat", j.datasetPages);
    std::uint64_t limit = j.cfg.memFrames * 8 / 10;
    std::uint64_t n = std::min(j.datasetPages, limit);
    for (std::uint64_t i = j.datasetPages - n; i < j.datasetPages; ++i) {
        VAddr va = mf.vma->start + i * pageSize;
        Pfn pfn = sys.allocFrameInterleaved(i);
        if (pfn == mem::PhysMem::invalidPfn)
            break;
        sys.kernel().installPage(*mf.as, *mf.vma, va, pfn, true);
    }
    auto *wal = sys.createFile("kv.wal", 64 * 1024);

    auto *holder = sys.makeWorkload<ServingHolder>();
    holder->store = std::make_unique<workloads::KvStore>(
        mf.vma, wal, j.datasetPages);

    workloads::OpenLoopParams olp;
    olp.offeredOpsPerSec = j.offeredOpsPerSec;
    olp.totalRequests = j.totalRequests;
    olp.nServers = j.nServers;
    // The schedule rng is forked from the config seed, independent of
    // the machine's rng tree: the same seed gives the same arrival
    // schedule on every mode and socket count.
    holder->source = std::make_unique<workloads::OpenLoopSource>(
        *holder->store, olp, sim::Rng(j.cfg.seed ^ 0x6f70656e6c6f6fULL));

    for (unsigned t = 0; t < j.nServers; ++t) {
        auto *wl = sys.makeWorkload<workloads::OpenLoopServer>(
            *holder->source, t);
        sys.addThread(*wl, t, *mf.as);
    }
    return mf;
}

ServingPoint
measure(system::System &sys, const ServingJob &j)
{
    ServingPoint p;
    p.offeredOpsPerSec = j.offeredOpsPerSec;

    std::vector<const metrics::LatencyReservoir *> rs;
    Tick first = maxTick, last = 0;
    for (auto &tc : sys.threads()) {
        auto *srv =
            dynamic_cast<workloads::OpenLoopServer *>(&tc->workloadRef());
        if (!srv)
            continue;
        rs.push_back(&srv->latency());
        p.served += srv->served();
        last = std::max(last, srv->lastCompletion());
        first = std::min(first, tc->startTick());
    }
    p.p50Us = metrics::LatencyReservoir::quantileAcross(rs, 0.5);
    p.p99Us = metrics::LatencyReservoir::quantileAcross(rs, 0.99);
    p.p999Us = metrics::LatencyReservoir::quantileAcross(rs, 0.999);
    if (last > first && p.served > 0)
        p.achievedOpsPerSec =
            static_cast<double>(p.served) / toSeconds(last - first);
    return p;
}

ServingPoint
runServing(const ServingJob &j)
{
    system::System sys(j.cfg);
    bootServing(sys, j);
    sys.runUntilThreadsDone(seconds(600.0));
    return measure(sys, j);
}

/** Completion-checkpoint identity: straight vs save -> restore. */
bool
identityCheck(const ServingJob &j)
{
    system::System straight(j.cfg);
    bootServing(straight, j);
    straight.runUntilThreadsDone(seconds(600.0));
    ServingPoint a = measure(straight, j);
    straight.quiesce();
    a.logicalHash = testing::logicalStateHash(straight);
    auto blob = system::Checkpoint::save(straight);

    system::System forked(j.cfg);
    bootServing(forked, j);
    system::Checkpoint::restore(forked, blob);
    ServingPoint b = measure(forked, j);
    b.logicalHash = testing::logicalStateHash(forked);

    bool ok = a.logicalHash == b.logicalHash && a.served == b.served &&
              a.p50Us == b.p50Us && a.p99Us == b.p99Us &&
              a.p999Us == b.p999Us;
    std::printf("identity: straight hash %016llx, forked hash %016llx, "
                "served %llu/%llu, p99 %.2f/%.2f -> %s\n",
                static_cast<unsigned long long>(a.logicalHash),
                static_cast<unsigned long long>(b.logicalHash),
                static_cast<unsigned long long>(a.served),
                static_cast<unsigned long long>(b.served), a.p99Us,
                b.p99Us, ok ? "MATCH" : "MISMATCH");
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false, identity = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--identity-check") == 0)
            identity = true;
    }

    metrics::banner(
        "Figure 18 (ext): NUMA serving, open-loop zipfian traffic",
        "p50/p99/p99.9 vs offered load; saturation = last point with "
        "achieved >= 95% of offered");

    const std::vector<unsigned> socketCounts = smoke ? std::vector<unsigned>{2}
                                                     : std::vector<unsigned>{1, 2, 4};
    const system::PagingMode modes[] = {system::PagingMode::osdp,
                                        system::PagingMode::hwdp,
                                        system::PagingMode::swsmu};
    const std::vector<double> loads =
        smoke ? std::vector<double>{50e3}
              : std::vector<double>{25e3, 50e3, 100e3, 200e3, 400e3};
    const std::uint64_t totalRequests = smoke ? 3000 : 20000;
    const unsigned nServers = 12; // cores 12..15 host the kthreads

    if (identity) {
        ServingJob j;
        j.cfg = bench::paperConfig(system::PagingMode::hwdp);
        j.cfg.sockets = 2;
        j.offeredOpsPerSec = 50e3;
        j.totalRequests = smoke ? 2000 : 6000;
        j.nServers = nServers;
        return identityCheck(j) ? 0 : 1;
    }

    // One job per (sockets, mode, load); all points are independent
    // machines, fanned out over the sweep pool.
    std::vector<ServingJob> jobs;
    for (unsigned s : socketCounts) {
        for (auto mode : modes) {
            for (double load : loads) {
                ServingJob j;
                j.cfg = bench::paperConfig(mode);
                j.cfg.sockets = s;
                j.offeredOpsPerSec = load;
                j.totalRequests = totalRequests;
                j.nServers = nServers;
                jobs.push_back(j);
            }
        }
    }
    bench::SweepRunner runner(0);
    auto points = runner.map<ServingPoint>(
        jobs.size(), [&](std::size_t i) { return runServing(jobs[i]); });

    Table t({"sockets", "mode", "offered/s", "achieved/s", "p50 us",
             "p99 us", "p99.9 us"});
    std::size_t pi = 0;
    for (unsigned s : socketCounts) {
        for (auto mode : modes) {
            double saturation = 0;
            for (double load : loads) {
                const ServingPoint &p = points[pi++];
                (void)load;
                if (p.achievedOpsPerSec >= 0.95 * p.offeredOpsPerSec)
                    saturation = p.offeredOpsPerSec;
                t.addRow({std::to_string(s),
                          system::pagingModeName(mode),
                          Table::num(p.offeredOpsPerSec, 0),
                          Table::num(p.achievedOpsPerSec, 0),
                          Table::num(p.p50Us), Table::num(p.p99Us),
                          Table::num(p.p999Us)});
            }
            t.addRow({std::to_string(s), system::pagingModeName(mode),
                      "saturation", Table::num(saturation, 0), "-", "-",
                      "-"});
        }
    }
    t.print();
    return 0;
}

/**
 * @file
 * Section IV-D ablation: kpoold's effect on synchronous-refill faults.
 *
 * When the SMU's free page queue runs dry, the miss bounces to the OS
 * fault path (slow) which refills the queue overlapped with its own
 * device I/O. kpoold's background refill makes those cases rare —
 * the paper reports 44.3-78.4% fewer synchronous-refill faults.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace hwdp;
using metrics::Table;

namespace {

std::uint64_t
runAndCountFallbacks(bool kpoold_on, Tick period, unsigned threads)
{
    auto cfg = bench::paperConfig(system::PagingMode::hwdp);
    cfg.kpooldEnabled = kpoold_on;
    cfg.kpooldPeriod = period;
    // A small queue makes the refill race visible at this scale.
    cfg.smu.freeQueueCapacity = 1024;
    cfg.kpooldBatch = 512;

    system::System sys(cfg);
    auto mf = sys.mapDataset("fio.dat", 16 * bench::defaultMemFrames);
    for (unsigned t = 0; t < threads; ++t) {
        auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 6000);
        sys.addThread(*wl, t, *mf.as);
    }
    sys.runUntilThreadsDone(seconds(120.0));
    return sys.smu()->rejectedQueueEmpty();
}

} // namespace

int
main()
{
    metrics::banner("Ablation: kpoold vs synchronous-only refill",
                    "paper: kpoold removes 44.3-78.4% of the "
                    "OS-handled refill faults");

    Table t({"threads", "sync-only fallbacks", "with kpoold (4ms)",
             "reduction"});
    for (unsigned threads : {1u, 2u, 4u}) {
        std::uint64_t without =
            runAndCountFallbacks(false, milliseconds(4.0), threads);
        std::uint64_t with =
            runAndCountFallbacks(true, milliseconds(4.0), threads);
        double red = without ? 1.0 - static_cast<double>(with) /
                                         static_cast<double>(without)
                             : 0.0;
        t.addRow({std::to_string(threads), std::to_string(without),
                  std::to_string(with), Table::pct(red)});
    }
    t.print();

    metrics::banner("kpoold period sweep (4 threads)");
    Table p({"kpoold period", "fallback faults"});
    p.addRow({"disabled",
              std::to_string(runAndCountFallbacks(
                  false, milliseconds(4.0), 4))});
    for (double ms : {16.0, 8.0, 4.0, 2.0, 1.0}) {
        p.addRow({Table::num(ms, 0) + " ms",
                  std::to_string(runAndCountFallbacks(
                      true, milliseconds(ms), 4))});
    }
    p.print();
    return 0;
}

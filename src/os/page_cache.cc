#include "os/page_cache.hh"

#include <algorithm>

#include "os/file_system.hh"
#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::os {

void
PageCache::serialize(sim::Serializer &s)
{
    s.section("pagecache");
    std::vector<std::pair<std::uint64_t, Pfn>> flat(map.begin(),
                                                    map.end());
    std::sort(flat.begin(), flat.end());
    s.io(flat);
    if (s.loading()) {
        map.clear();
        map.insert(flat.begin(), flat.end());
    }
    s.io(nLookups);
    s.io(nHits);
}

std::uint64_t
PageCache::key(const File &file, std::uint64_t index)
{
    // 24 bits of file id above 40 bits of page index: enough for the
    // largest simulated files by a wide margin.
    return (static_cast<std::uint64_t>(file.id()) << 40) |
           (index & ((1ULL << 40) - 1));
}

Pfn
PageCache::lookup(const File &file, std::uint64_t index) const
{
    ++nLookups;
    auto it = map.find(key(file, index));
    if (it == map.end())
        return noFrame;
    ++nHits;
    return it->second;
}

bool
PageCache::contains(const File &file, std::uint64_t index) const
{
    return map.find(key(file, index)) != map.end();
}

void
PageCache::insert(const File &file, std::uint64_t index, Pfn pfn)
{
    auto [it, fresh] = map.emplace(key(file, index), pfn);
    if (!fresh)
        panic("page cache: duplicate insert of ", file.name(), ":", index);
}

void
PageCache::remove(const File &file, std::uint64_t index)
{
    if (map.erase(key(file, index)) != 1)
        panic("page cache: removing absent ", file.name(), ":", index);
}

} // namespace hwdp::os

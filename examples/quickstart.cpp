/**
 * @file
 * Quickstart: build a machine with hardware-based demand paging, mmap
 * a file with the fast flag, run random reads and inspect what the
 * SMU did.
 *
 *   $ ./build/examples/quickstart
 */

#include <cstdio>

#include "system/system.hh"
#include "workloads/fio.hh"

using namespace hwdp;

int
main()
{
    // 1. Describe the machine. Defaults model the paper's testbed
    //    (2.8 GHz Xeon-class CPU, Z-SSD) at 1/64 memory scale.
    system::MachineConfig cfg;
    cfg.mode = system::PagingMode::hwdp; // the paper's scheme
    cfg.memFrames = 32 * 1024;           // 128 MB of DRAM

    system::System sys(cfg);

    // 2. Create and map a 512 MB file with the fast-mmap flag: every
    //    PTE is populated with an LBA-augmented entry so the SMU can
    //    service misses without the OS.
    auto mf = sys.mapDataset("dataset.bin", 128 * 1024);

    // 3. Run a FIO-style random 4 KB read workload on core 0.
    auto *fio = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 20000);
    auto *tc = sys.addThread(*fio, 0, *mf.as);

    if (!sys.runUntilThreadsDone(seconds(60.0))) {
        std::fprintf(stderr, "simulation did not finish\n");
        return 1;
    }

    // 4. Inspect the results.
    std::printf("Quickstart: %s machine, %s\n",
                system::pagingModeName(cfg.mode),
                sys.ssd().profile().name.c_str());
    std::printf("  ops completed          : %llu\n",
                static_cast<unsigned long long>(tc->appOps()));
    std::printf("  mean 4KB read latency  : %.2f us\n",
                tc->faultedOpLatencyUs().mean());
    std::printf("  p99 4KB read latency   : %.2f us\n",
                tc->faultedOpLatencyUs().quantile(0.99));
    std::printf("  throughput             : %.0f ops/s\n",
                sys.throughputOpsPerSec());
    std::printf("  page misses in hardware: %llu (%.1f%% of faults)\n",
                static_cast<unsigned long long>(tc->hwHandledOps()),
                100.0 * static_cast<double>(tc->hwHandledOps()) /
                    static_cast<double>(tc->faultedOps()));
    std::printf("  SMU coalesced misses   : %llu\n",
                static_cast<unsigned long long>(sys.smu()->coalesced()));
    std::printf("  OS fallback faults     : %llu\n",
                static_cast<unsigned long long>(
                    sys.kernel().majorFaults()));
    std::printf("  pages synced by kpted  : %llu\n",
                static_cast<unsigned long long>(
                    sys.kpted()->pagesSynced()));
    return 0;
}

#include "system/system.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/serialize.hh"
#include "ssd/ssd_profile.hh"
#include "workloads/fio.hh"

namespace hwdp::system {

System::System(const MachineConfig &cfg_in) : cfg(cfg_in), rng(cfg.seed)
{
    setQuiet(cfg.quiet);

    if (cfg.simThreads == 0)
        fatal("system: simThreads must be >= 1");
    // The PTE socket-id field is 3 bits (Section V's LBA encoding),
    // so at most 8 sockets can be addressed by hardware-handled PTEs.
    if (cfg.sockets == 0 || cfg.sockets > 8)
        fatal("system: sockets must be 1..8");
    if (cfg.nLogical % cfg.sockets != 0)
        fatal("system: nLogical (", cfg.nLogical,
              ") must divide evenly across ", cfg.sockets, " sockets");
    if (cfg.sockets > 1 && cfg.nPhysical % cfg.sockets != 0)
        fatal("system: nPhysical (", cfg.nPhysical,
              ") must divide evenly across ", cfg.sockets, " sockets");
    if (cfg.simThreads > 1)
        pool = std::make_unique<sim::ShardPool>(cfg.simThreads);

    pm = std::make_unique<mem::PhysMem>(eq,
                                        cfg.memFrames + cfg.reservedFrames,
                                        cfg.reservedFrames, cfg.sockets);
    hierarchy = std::make_unique<mem::CacheHierarchy>(cfg.nPhysical,
                                                      cfg.cache);
    hierarchy->setShardPool(pool.get());
    bps.reserve(cfg.nPhysical);
    for (unsigned i = 0; i < cfg.nPhysical; ++i)
        bps.emplace_back();

    os::KernelParams kp = cfg.kernel;
    kp.nLogical = cfg.nLogical;
    kp.nPhysical = cfg.nPhysical;
    kp.cyclePeriod = cfg.cyclePeriod;
    kp.reclaimCore = cfg.reclaimCore();
    kp.sockets = cfg.sockets;
    kp.numaRoundRobin = cfg.numaPlacement == NumaPlacement::roundRobin;
    kp.pageMode = cfg.pageMode;
    kern = std::make_unique<os::Kernel>(eq, kp, *pm, *hierarchy, bps,
                                        rng.fork());
    kern->kexec().setPollutionEnabled(cfg.pollutionEnabled);
    kern->kexec().setBatchEnabled(cfg.pollutionBatch);
    kern->kexec().setShardPool(pool.get());

    // Block devices (the paper's machine has one; the PTE device-id
    // field supports up to 8 per socket).
    if (cfg.nDevices == 0 ||
        cfg.nDevices > core::NvmeHostController::maxDevices)
        fatal("system: nDevices must be 1..8");
    auto prof = ssd::profileByName(cfg.ssdProfile);
    // Each socket carries its own nDevices locally attached drives;
    // the PTE's socket-id field routes misses to the home socket's
    // controller. A single socket reproduces the pre-NUMA machine
    // exactly (same names, same rng fork sequence).
    for (unsigned s = 0; s < cfg.sockets; ++s) {
        for (unsigned d = 0; d < cfg.nDevices; ++d) {
            unsigned idx = s * cfg.nDevices + d;
            ssds.push_back(std::make_unique<ssd::SsdDevice>(
                "ssd" + std::to_string(idx), eq, prof, rng.fork()));
            ssds.back()->setFastPath(cfg.faultFastPath);
            // Parallel service lanes: each device gets a shard-pool
            // async slot (slot 0 stays the branch-predictor side
            // lane). Pure snooped-queue fetch batches then run their
            // channel arithmetic off the simulation thread —
            // bit-identical results, the lane only moves host work.
            if (pool && cfg.faultFastPath)
                ssds.back()->setServiceLane(
                    pool.get(),
                    1 + idx % (sim::ShardPool::maxAsyncSlots - 1));
            kern->attachDevice(ssds.back().get(),
                               os::BlockDeviceId{s, d});
        }
    }

    // TLB shootdown: invalidate the translation on every core, and
    // drop the page-walk-cache entries covering the address (the
    // INVLPG contract: paging-structure caches flush alongside the
    // TLB for the invalidated linear address).
    kern->setShootdownFn([this](os::AddressSpace &as, VAddr va) {
        for (auto &c : cores)
            c->mmu().tlb().invalidate(va);
        pwcShootdown(as, va, false);
    });

    // kpted metadata sync rewrites hardware-handled PTEs without a
    // full shootdown; the PWC still drops the covering upper entries.
    // This is the one path the shootdown fault hook may perturb.
    kern->setPteSyncFn([this](os::AddressSpace &as, VAddr va) {
        pwcShootdown(as, va, true);
    });

    // Wide-range shootdowns (promotion, split, NAPOT break, huge
    // reclaim). Wired only when reach modes are on: an off machine
    // never produces a wide PTE and keeps the exact pre-huge-page
    // callback set.
    if (cfg.pageMode != PageMode::off) {
        kern->setShootdownRangeFn([this](os::AddressSpace &as, VAddr va,
                                         std::uint64_t pages,
                                         bool delayable) {
            rangeShootdown(as, va, pages, delayable);
        });
    }

    for (unsigned i = 0; i < cfg.nLogical; ++i) {
        cores.push_back(std::make_unique<cpu::Core>(
            i, eq, *hierarchy, *kern, cfg.cyclePeriod, cfg.pwcEntries));
        if (cfg.hwStallTimeout > 0)
            cores.back()->mmu().setStallTimeout(cfg.hwStallTimeout);
    }
    if (cfg.sockets > 1) {
        for (unsigned i = 0; i < cfg.nLogical; ++i)
            cores[i]->mmu().setNuma(cfg.socketOfCore(i), pm.get(),
                                    cfg.sockets,
                                    cfg.numaRemoteExtraCycles);
    }

    if (cfg.mode != PagingMode::osdp) {
        support = std::make_unique<core::HwdpOsSupport>(*kern);

        std::vector<core::FreePageQueue *> fpq_set;
        std::vector<unsigned> fpq_tags;
        if (cfg.mode == PagingMode::hwdp) {
            core::Smu::Params sp = cfg.smu;
            sp.cyclePeriod = cfg.cyclePeriod;
            sp.nvme.cyclePeriod = cfg.cyclePeriod;
            sp.fastPath = cfg.faultFastPath;
            if (cfg.sockets > 1) {
                sp.coresPerSocket = cfg.coresPerSocket();
                sp.remoteRequestLatency = cfg.numaRemoteSmuLatency;
            }
            for (unsigned s = 0; s < cfg.sockets; ++s) {
                smuUnits.push_back(std::make_unique<core::Smu>(
                    "smu" + std::to_string(s), eq, s, sp, *kern));
                core::Smu *u = smuUnits.back().get();
                for (unsigned d = 0; d < cfg.nDevices; ++d)
                    u->configureDevice(d,
                                       ssds[s * cfg.nDevices + d].get());
                // Every core sees every SMU: the MMU routes a miss by
                // the faulting PTE's socket-id field, local or not.
                for (auto &c : cores)
                    c->attachSmu(s, u);
                support->attachSmu(u);
                for (core::FreePageQueue *q : u->freePageQueues()) {
                    fpq_set.push_back(q);
                    fpq_tags.push_back(s);
                }
            }
        } else {
            for (unsigned s = 0; s < cfg.sockets; ++s) {
                swFpqs.push_back(std::make_unique<core::FreePageQueue>(
                    cfg.smu.freeQueueCapacity, cfg.smu.prefetchDepth));
                swSmus.push_back(std::make_unique<core::SoftwareSmu>(
                    s == 0 ? "swsmu" : "swsmu" + std::to_string(s), eq,
                    *kern, *swFpqs.back()));
                for (unsigned d = 0; d < cfg.nDevices; ++d)
                    swSmus.back()->configureDevice(
                        d, ssds[s * cfg.nDevices + d].get());
                fpq_set.push_back(swFpqs.back().get());
                fpq_tags.push_back(s);
            }
            if (cfg.sockets == 1) {
                swSmus[0]->install();
            } else {
                // One emulation per socket; dispatch by the PTE's
                // socket-id field (anonymous zero-fill PTEs carry
                // socket 0 and deterministically land there).
                kern->setFaultInterceptor(
                    [this](os::Thread &t, os::AddressSpace &as,
                           VAddr va, os::pte::Entry e,
                           std::function<void()> resume) {
                        unsigned sid = os::pte::socketIdOf(e);
                        return swSmus.at(sid)->tryIntercept(
                            t, as, va, e, std::move(resume));
                    });
            }
        }

        kptedThread = std::make_unique<core::Kpted>(
            *kern, *support, cfg.kptedCore(), cfg.kptedPeriod,
            cfg.kptedGuidedScan);
        if (cfg.sockets > 1)
            kptedThread->setCrossSocketIpis(cfg.sockets - 1);
        kern->scheduler().addThread(kptedThread.get());
        support->attachKpted(kptedThread.get());

        kpooldThread = std::make_unique<core::Kpoold>(
            *kern, std::move(fpq_set), cfg.kpooldCore(),
            cfg.kpooldPeriod, cfg.kpooldBatch);
        if (cfg.sockets > 1)
            kpooldThread->setSocketTags(std::move(fpq_tags));
        if (cfg.kpooldEnabled)
            kern->scheduler().addThread(kpooldThread.get());
        support->attachKpoold(kpooldThread.get());
    }

    // kcoalesced runs in every paging mode (it promotes whatever 4 KB
    // runs land contiguously, OSDP faults and HWDP fast-mmap pages
    // alike) but only when transparent coalescing is requested.
    if (cfg.pageMode == PageMode::coalesce) {
        kcoalescedThread = std::make_unique<core::Kcoalesced>(
            *kern, cfg.kcoalesceCore(), cfg.kcoalescePeriod,
            cfg.kcoalesceBatch);
        if (cfg.sockets > 1)
            kcoalescedThread->setCrossSocketIpis(cfg.sockets - 1);
        kern->scheduler().addThread(kcoalescedThread.get());
    }

    // Topology view, built for every machine and mode (size 1 on a
    // single socket) so audits and benches have one way to navigate.
    for (unsigned s = 0; s < cfg.sockets; ++s) {
        Socket sk;
        sk.id = s;
        sk.firstCore = s * cfg.coresPerSocket();
        sk.nCores = cfg.coresPerSocket();
        sk.smu = smuAt(s);
        sk.swSmu = softwareSmuAt(s);
        sk.swFpq = s < swFpqs.size() ? swFpqs[s].get() : nullptr;
        for (unsigned d = 0; d < cfg.nDevices; ++d)
            sk.devices.push_back(ssds[s * cfg.nDevices + d].get());
        socketTopo.push_back(std::move(sk));
    }
}

System::~System() = default;

void
System::pwcShootdown(os::AddressSpace &as, VAddr va, bool sync_path)
{
    // Every broadcast advances every socket's epoch — the epoch counts
    // the coherence event itself, not the invalidation work it caused,
    // and checkInvariants audits that the epochs agree across sockets.
    if (cfg.sockets > 1) {
        for (auto &sk : socketTopo)
            ++sk.shootdownEpoch;
    }

    // Resolving the upper-entry addresses costs a host-side walk of
    // the page table; skip it when every walker's PWC is empty (the
    // common case — only cores that recently missed hold entries).
    bool any = false;
    for (auto &c : cores) {
        if (!c->mmu().walker().pwcEmpty()) {
            any = true;
            break;
        }
    }
    if (!any)
        return;
    os::WalkRefs refs = as.pageTable().walkRefs(va, false);
    if (cfg.sockets <= 1) {
        for (auto &c : cores) {
            if (refs.pud.valid())
                c->mmu().walker().pwcInvalidate(refs.pud.addr);
            if (refs.pmd.valid())
                c->mmu().walker().pwcInvalidate(refs.pmd.addr);
        }
        return;
    }

    // Multi-socket fan-out, one socket at a time. The fault hook may
    // drop or defer a remote socket's invalidation on the sync path
    // only: kpted sync rewrites a PTE to an equivalent translation,
    // so a stale PWC upper entry is a performance artifact, never a
    // correctness hole; unmap shootdowns are never perturbed.
    for (auto &sk : socketTopo) {
        ShootdownFault f{};
        if (sync_path && sk.id != 0 && shootdownFaultHook)
            f = shootdownFaultHook(sk.id);

        bool busy = false;
        for (unsigned i = 0; i < sk.nCores; ++i) {
            if (!cores[sk.firstCore + i]->mmu().walker().pwcEmpty()) {
                busy = true;
                break;
            }
        }
        if (!busy)
            continue;
        ++sk.remoteShootdownsIn;

        if (f.drop) {
            ++sk.shootdownsDropped;
            continue;
        }
        if (f.delay > 0) {
            ++sk.shootdownsDelayed;
            unsigned first = sk.firstCore, n = sk.nCores;
            eq.postIn(
                f.delay,
                [this, refs, first, n] {
                    for (unsigned i = 0; i < n; ++i) {
                        auto &w = cores[first + i]->mmu().walker();
                        if (refs.pud.valid())
                            w.pwcInvalidate(refs.pud.addr);
                        if (refs.pmd.valid())
                            w.pwcInvalidate(refs.pmd.addr);
                    }
                },
                "numa.shootdown.delayed");
            continue;
        }
        for (unsigned i = 0; i < sk.nCores; ++i) {
            auto &w = cores[sk.firstCore + i]->mmu().walker();
            if (refs.pud.valid())
                w.pwcInvalidate(refs.pud.addr);
            if (refs.pmd.valid())
                w.pwcInvalidate(refs.pmd.addr);
        }
    }
}

void
System::rangeShootdown(os::AddressSpace &as, VAddr va,
                       std::uint64_t pages, bool delayable)
{
    // The broadcast is one coherence event regardless of its span —
    // the same epoch bump a 4 KB shootdown costs.
    if (cfg.sockets > 1) {
        for (auto &sk : socketTopo)
            ++sk.shootdownEpoch;
    }

    auto apply = [this](os::AddressSpace *asp, VAddr base,
                        std::uint64_t n) {
        for (auto &c : cores)
            c->mmu().tlb().invalidateRange(base, n);
        bool any = false;
        for (auto &c : cores) {
            if (!c->mmu().walker().pwcEmpty()) {
                any = true;
                break;
            }
        }
        if (!any)
            return;
        // A wide range never spans a PMD (2 MB windows are aligned,
        // NAPOT windows are far smaller), so one walk resolves the
        // covering upper entries for the whole range.
        os::WalkRefs refs = asp->pageTable().walkRefs(base, false);
        for (auto &c : cores) {
            auto &w = c->mmu().walker();
            if (refs.pud.valid())
                w.pwcInvalidate(refs.pud.addr);
            if (refs.pmd.valid())
                w.pwcInvalidate(refs.pmd.addr);
        }
    };

    if (delayable && wideShootdownHook) {
        Tick delay = wideShootdownHook();
        if (delay > 0) {
            ++nWideShootdownsDelayed;
            os::AddressSpace *asp = &as;
            eq.postIn(
                delay, [apply, asp, va, pages] { apply(asp, va, pages); },
                "pagemode.shootdown.delayed");
            return;
        }
    }
    apply(&as, va, pages);
}

std::uint64_t
System::totalTlbWideHits() const
{
    std::uint64_t t = 0;
    for (const auto &c : cores)
        t += c->mmu().tlb().wideHits();
    return t;
}

core::FreePageQueue *
System::freePageQueue()
{
    if (!smuUnits.empty())
        return &smuUnits.front()->freePageQueue();
    return swFpqs.empty() ? nullptr : swFpqs.front().get();
}

os::File *
System::createFile(const std::string &name, std::uint64_t pages,
                   unsigned device)
{
    if (device >= ssds.size())
        fatal("system: file on unattached device ", device);
    // The global device index maps to (socket, local device) the same
    // way the boot loop attached them.
    return kern->fs().createFile(
        name, pages,
        os::BlockDeviceId{device / cfg.nDevices, device % cfg.nDevices});
}

System::MappedFile
System::mapDataset(const std::string &name, std::uint64_t pages,
                   os::AddressSpace *as, unsigned device)
{
    MappedFile mf;
    mf.as = as ? as : kern->createAddressSpace();
    mf.file = kern->fs().lookup(name);
    if (!mf.file)
        mf.file = createFile(name, pages, device);
    bool fast = cfg.mode != PagingMode::osdp;
    mf.vma = kern->mmapFileSync(*mf.as, *mf.file, fast);
    if (fast && support)
        support->registerFastVma(*mf.as, mf.vma);
    return mf;
}

System::MappedFile
System::mapAnon(std::uint64_t pages, os::AddressSpace *as)
{
    MappedFile mf;
    mf.as = as ? as : kern->createAddressSpace();
    bool fast = cfg.mode != PagingMode::osdp;
    mf.vma = kern->mmapAnonSync(*mf.as, pages, fast);
    if (fast && support)
        support->registerFastVma(*mf.as, mf.vma);
    return mf;
}

void
System::preload(const MappedFile &mf)
{
    for (std::uint64_t i = 0; i < mf.vma->numPages(); ++i) {
        VAddr va = mf.vma->start + i * pageSize;
        if (os::pte::isPresent(mf.as->pageTable().readPte(va)))
            continue;
        Pfn pfn = allocFrameInterleaved(i);
        if (pfn == mem::PhysMem::invalidPfn) {
            warn("preload: out of memory after ", i, " of ",
                 mf.vma->numPages(), " pages");
            return;
        }
        kern->installPage(*mf.as, *mf.vma, va, pfn, true);
    }
}

cpu::ThreadContext *
System::addThread(workloads::Workload &wl, unsigned core_idx,
                  os::AddressSpace &as)
{
    // The batch toggle covers the whole machine: kernel pollution
    // engine and user-side burst streams switch together.
    cpu::CoreParams core_prm = cfg.core;
    core_prm.batch = cfg.pollutionBatch;
    core_prm.pool = pool.get();
    auto tc = std::make_unique<cpu::ThreadContext>(
        std::string(wl.label()) + "#" + std::to_string(tcs.size()),
        core_idx, *kern, cores.at(core_idx)->mmu(), *hierarchy,
        bps.at(kern->scheduler().physCoreOf(core_idx)), as, wl, core_prm,
        rng.fork());
    tc->setOnFinished([this] { ++threadsDone; });
    kern->scheduler().addThread(tc.get());
    tcs.push_back(std::move(tc));
    return tcs.back().get();
}

void
System::start()
{
    if (started)
        panic("system started twice");
    started = true;
    if (kpooldThread)
        kpooldThread->prime();
    kern->scheduler().start();
}

bool
System::runUntilThreadsDone(Tick max_ticks)
{
    if (!started)
        start();
    std::uint64_t want = tcs.size();
    eq.runWhile([this, want] { return threadsDone < want; }, max_ticks);
    if (threadsDone < want) {
        warn("simulation hit the tick limit with ", want - threadsDone,
             " thread(s) unfinished");
        return false;
    }
    return true;
}

void
System::runFor(Tick duration)
{
    if (!started)
        start();
    eq.run(eq.now() + duration);
}

void
System::stopKthreads()
{
    if (kptedThread)
        kptedThread->stop();
    if (kpooldThread)
        kpooldThread->stop();
    if (kcoalescedThread)
        kcoalescedThread->stop();
    kern->reclaimer().stop();
}

void
System::quiesce()
{
    if (!started)
        throw sim::SerializeError(
            "checkpoint: machine was never started");
    if (threadsDone < tcs.size())
        throw sim::SerializeError(
            "checkpoint: " + std::to_string(tcs.size() - threadsDone) +
            " workload thread(s) still running; run the warmup to "
            "completion before quiescing");
    stopKthreads();
    eq.run();
    if (!eq.empty())
        throw sim::SerializeError(
            "checkpoint: event queue failed to drain");
}

void
System::resumeKthreads()
{
    // Fixed order: each restart posts one timer event, and same-tick
    // ordering is by event sequence number, so both sides of a
    // checkpoint must arm the timers identically.
    if (kptedThread)
        kptedThread->restart();
    if (kpooldThread && cfg.kpooldEnabled)
        kpooldThread->restart();
    if (kcoalescedThread)
        kcoalescedThread->restart();
    kern->reclaimer().restart();
}

void
System::serialize(sim::Serializer &s)
{
    s.section("system");
    auto mode_word = static_cast<std::uint32_t>(cfg.mode);
    s.check(mode_word, "paging mode");
    s.check(cfg.nLogical, "logical core count");
    s.check(cfg.nDevices, "block device count");
    std::uint64_t nthreads = tcs.size();
    s.check(nthreads, "workload thread count");
    // Guarded so single-socket blobs keep the pre-NUMA byte layout.
    if (cfg.sockets > 1)
        s.check(cfg.sockets, "socket count");
    // Guarded so pageMode=off blobs keep the 4 KB-only byte layout.
    if (cfg.pageMode != PageMode::off) {
        auto pm_word = static_cast<std::uint32_t>(cfg.pageMode);
        s.check(pm_word, "page mode");
    }

    eq.serialize(s);
    rng.serialize(s);
    pm->serialize(s);
    hierarchy->serialize(s);
    for (auto &bp : bps)
        bp.serialize(s);
    kern->serialize(s);
    for (auto &d : ssds)
        d->serialize(s);
    for (auto &c : cores)
        c->mmu().serialize(s);
    for (auto &u : smuUnits)
        u->serialize(s);
    for (auto &q : swFpqs)
        q->serialize(s);
    for (auto &u : swSmus)
        u->serialize(s);
    if (support)
        support->serialize(s);
    if (kptedThread)
        kptedThread->serialize(s);
    if (kpooldThread)
        kpooldThread->serialize(s);
    if (kcoalescedThread)
        kcoalescedThread->serialize(s);
    // Guarded so pageMode=off blobs keep the 4 KB-only byte layout.
    if (cfg.pageMode != PageMode::off)
        s.io(nWideShootdownsDelayed);
    if (cfg.sockets > 1) {
        for (auto &sk : socketTopo) {
            s.io(sk.shootdownEpoch);
            s.io(sk.remoteShootdownsIn);
            s.io(sk.shootdownsDropped);
            s.io(sk.shootdownsDelayed);
        }
    }
    for (auto &tc : tcs)
        tc->serialize(s);
    s.io(threadsDone);
    s.section("system.end");
}

void
System::onRestored(std::uint64_t blob_bytes)
{
    started = true;
    ckptNote = "restored at tick " + std::to_string(eq.now()) +
               " from a " + std::to_string(blob_bytes) + "-byte blob";
}

std::string
System::describe() const
{
    std::string d = cfg.describe();
    d += "checkpoint       : ";
    d += ckptNote.empty() ? "cold boot" : ckptNote;
    d += '\n';
    return d;
}

std::uint64_t
System::totalAppOps() const
{
    std::uint64_t t = 0;
    for (const auto &tc : tcs)
        t += tc->appOps();
    return t;
}

double
System::throughputOpsPerSec() const
{
    Tick lo = maxTick, hi = 0;
    for (const auto &tc : tcs) {
        lo = std::min(lo, tc->startTick());
        hi = std::max(hi, tc->done() ? tc->finishTick() : eq.now());
    }
    if (hi <= lo)
        return 0.0;
    return static_cast<double>(totalAppOps()) / toSeconds(hi - lo);
}

double
System::aggregateUserIpc() const
{
    std::uint64_t instr = 0;
    Cycles cycles = 0;
    for (const auto &tc : tcs) {
        instr += tc->userInstructions();
        cycles += tc->userCycles();
    }
    return cycles ? static_cast<double>(instr) /
                        static_cast<double>(cycles)
                  : 0.0;
}

std::uint64_t
System::userBranchMispredicts() const
{
    std::uint64_t t = 0;
    for (const auto &bp : bps)
        t += bp.mispredicts(ExecMode::user);
    return t;
}

std::uint64_t
System::userBranchLookups() const
{
    std::uint64_t t = 0;
    for (const auto &bp : bps)
        t += bp.lookups(ExecMode::user);
    return t;
}

std::uint64_t
System::totalPwcHits() const
{
    std::uint64_t t = 0;
    for (const auto &c : cores)
        t += c->mmu().walker().pwcHits();
    return t;
}

std::uint64_t
System::totalPwcMisses() const
{
    std::uint64_t t = 0;
    for (const auto &c : cores)
        t += c->mmu().walker().pwcMisses();
    return t;
}

} // namespace hwdp::system

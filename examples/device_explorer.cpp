/**
 * @file
 * Device explorer: when does hardware demand paging matter?
 *
 * Sweeps storage technologies from hard disks to Optane DC PMM and
 * prints the demand-paging latency under the three schemes. The
 * paper's thesis falls out of the table: the faster the device, the
 * larger the fraction of the miss spent inside the OS — and the more
 * hardware support pays (Figure 2 + Figure 17 in one sweep).
 *
 *   $ ./build/examples/device_explorer
 */

#include <cstdio>

#include "metrics/report.hh"
#include "ssd/ssd_profile.hh"
#include "system/system.hh"
#include "workloads/fio.hh"

using namespace hwdp;

namespace {

double
missLatencyUs(system::PagingMode mode, const std::string &profile)
{
    system::MachineConfig cfg;
    cfg.mode = mode;
    cfg.ssdProfile = profile;
    cfg.memFrames = 16 * 1024;

    system::System sys(cfg);
    auto mf = sys.mapDataset("data", 256 * 1024);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 1500);
    auto *tc = sys.addThread(*wl, 0, *mf.as);
    sys.runUntilThreadsDone(seconds(60.0));
    return tc->faultedOpLatencyUs().mean();
}

} // namespace

int
main()
{
    metrics::banner("When does hardware demand paging matter?",
                    "per-4KB-read latency (us) incl. the application's "
                    "own per-op work");

    metrics::Table t({"device", "device time us", "OSDP", "SW-only",
                      "HWDP", "OSDP/HWDP"});
    for (const char *prof :
         {"nvme_flash", "zssd", "optane_ssd", "optane_pmm"}) {
        double dev =
            toMicroseconds(ssd::profileByName(prof).unloadedRead4k());
        double osdp = missLatencyUs(system::PagingMode::osdp, prof);
        double sw = missLatencyUs(system::PagingMode::swsmu, prof);
        double hw = missLatencyUs(system::PagingMode::hwdp, prof);
        t.addRow({prof, metrics::Table::num(dev, 1),
                  metrics::Table::num(osdp, 1),
                  metrics::Table::num(sw, 1),
                  metrics::Table::num(hw, 1),
                  metrics::Table::num(osdp / hw, 2) + "x"});
    }
    t.print();
    std::printf("\nthe OS overhead is constant, so its share of the "
                "miss grows as devices get faster — the paper's core "
                "argument\n");
    return 0;
}

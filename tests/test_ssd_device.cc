/**
 * @file
 * Tests for the NVMe SSD device model: timing, channel contention,
 * interrupt vs snooped completion delivery, and priority arbitration.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

#include <vector>

#include "sim/event_queue.hh"
#include "ssd/ssd_device.hh"
#include "ssd/ssd_profile.hh"

using namespace hwdp;
using namespace hwdp::ssd;

namespace {

/** Deterministic profile: no jitter, easy arithmetic. */
SsdProfile
flatProfile()
{
    SsdProfile p;
    p.name = "flat";
    p.cmdFetch = 100;
    p.readMedia = 1000;
    p.writeMedia = 5000;
    p.xfer4k = 50;
    p.cqeWrite = 10;
    p.channels = 2;
    p.mediaCv = 0.0;
    p.interruptLatency = 30;
    return p;
}

struct Harness
{
    sim::EventQueue eq;
    SsdDevice dev{"ssd", eq, flatProfile(), sim::Rng(1)};
    std::vector<std::pair<std::uint16_t, Tick>> completions;

    std::uint16_t
    makeQueue(nvme::Priority prio, bool irq)
    {
        std::uint16_t qid = dev.createQueuePair(64, prio, irq);
        dev.setCompletionListener(
            qid, [this](std::uint16_t q, const nvme::CompletionEntry &c) {
                completions.emplace_back(c.cid, eq.now());
                if (dev.queuePair(q).cqHasWork())
                    dev.queuePair(q).popCqe();
                (void)q;
            });
        return qid;
    }

    void
    submit(std::uint16_t qid, std::uint16_t cid, Lba lba,
           nvme::Opcode op = nvme::Opcode::read)
    {
        nvme::SubmissionEntry e;
        e.opcode = op;
        e.cid = cid;
        e.slba = lba;
        ASSERT_TRUE(dev.queuePair(qid).pushSqe(e));
        dev.ringSqDoorbell(qid);
    }
};

} // namespace

TEST(SsdDevice, SnoopedReadCompletesAtDeviceTime)
{
    Harness h;
    auto qid = h.makeQueue(nvme::Priority::urgent, false);
    h.submit(qid, 1, 0);
    h.eq.run();
    ASSERT_EQ(h.completions.size(), 1u);
    // fetch 100 + media 1000 + xfer 50 + cqe 10 = 1160, snooped at
    // the CQ write itself.
    EXPECT_EQ(h.completions[0].second, 1160u);
    EXPECT_EQ(h.dev.readsCompleted(), 1u);
}

TEST(SsdDevice, InterruptAddsDeliveryLatency)
{
    Harness h;
    auto qid = h.makeQueue(nvme::Priority::medium, true);
    h.submit(qid, 1, 0);
    h.eq.run();
    ASSERT_EQ(h.completions.size(), 1u);
    EXPECT_EQ(h.completions[0].second, 1160u + 30u);
}

TEST(SsdDevice, WritesAreSlower)
{
    Harness h;
    auto qid = h.makeQueue(nvme::Priority::medium, false);
    h.submit(qid, 1, 0, nvme::Opcode::write);
    h.eq.run();
    EXPECT_EQ(h.completions[0].second, 100u + 5000u + 50u + 10u);
    EXPECT_EQ(h.dev.writesCompleted(), 1u);
}

TEST(SsdDevice, SameChannelSerializes)
{
    Harness h;
    auto qid = h.makeQueue(nvme::Priority::medium, false);
    // LBAs 0 and 2 both map to channel 0 (lba % 2 channels).
    h.submit(qid, 1, 0);
    h.submit(qid, 2, 2);
    h.eq.run();
    ASSERT_EQ(h.completions.size(), 2u);
    EXPECT_EQ(h.completions[0].second, 1160u);
    EXPECT_EQ(h.completions[1].second, 1160u + 1000u); // queued media
}

TEST(SsdDevice, DifferentChannelsOverlap)
{
    Harness h;
    auto qid = h.makeQueue(nvme::Priority::medium, false);
    h.submit(qid, 1, 0); // channel 0
    h.submit(qid, 2, 1); // channel 1
    h.eq.run();
    ASSERT_EQ(h.completions.size(), 2u);
    EXPECT_EQ(h.completions[0].second, 1160u);
    EXPECT_EQ(h.completions[1].second, 1160u);
}

TEST(SsdDevice, WriteDelaysReadOnSameChannel)
{
    // The read/write contention behind the YCSB-A result: a write
    // occupying the channel inflates the read's latency.
    Harness h;
    auto qid = h.makeQueue(nvme::Priority::medium, false);
    h.submit(qid, 1, 0, nvme::Opcode::write);
    h.submit(qid, 2, 2, nvme::Opcode::read);
    h.eq.run();
    EXPECT_EQ(h.completions[1].second, 100u + 5000u + 1000u + 50u + 10u);
}

TEST(SsdDevice, UrgentQueueFetchedFirst)
{
    Harness h;
    auto slow = h.makeQueue(nvme::Priority::medium, false);
    auto fast = h.makeQueue(nvme::Priority::urgent, false);
    // Both target channel 0; the urgent command must win the channel
    // even though the medium queue was doorbelled in the same window.
    h.submit(slow, 1, 0);
    h.submit(fast, 2, 2);
    h.eq.run();
    ASSERT_EQ(h.completions.size(), 2u);
    EXPECT_EQ(h.completions[0].first, 2u); // urgent finished first
}

TEST(SsdDevice, InflightTracksOutstanding)
{
    Harness h;
    auto qid = h.makeQueue(nvme::Priority::medium, false);
    h.submit(qid, 1, 0);
    h.eq.run(200); // past fetch, before completion
    EXPECT_EQ(h.dev.inflight(), 1u);
    h.eq.run();
    EXPECT_EQ(h.dev.inflight(), 0u);
}

TEST(SsdDevice, BadQueueIdPanics)
{
    Harness h;
    EXPECT_THROW(h.dev.queuePair(0), PanicError);
    EXPECT_THROW(h.dev.queuePair(5), PanicError);
    EXPECT_THROW(h.dev.ringSqDoorbell(3), PanicError);
}

TEST(SsdDevice, ProfilesHaveDocumentedDeviceTimes)
{
    // The calibration the latency figures rest on (Figure 17).
    EXPECT_NEAR(toMicroseconds(zssdProfile().unloadedRead4k()), 10.9,
                0.01);
    EXPECT_NEAR(toMicroseconds(optaneSsdProfile().unloadedRead4k()), 6.5,
                0.01);
    EXPECT_NEAR(toMicroseconds(optanePmmProfile().unloadedRead4k()), 2.1,
                0.01);
    EXPECT_THROW(profileByName("floppy"), FatalError);
}

/**
 * @file
 * Differential + determinism wall around the multi-socket NUMA paths.
 *
 * Single-socket machines must be untouched by the NUMA code: their
 * stats dumps carry no NUMA artifacts, and every NUMA tuning knob is
 * inert at sockets=1 (byte-identical dumps whatever its value) — the
 * differential gate standing in for "byte-identical to the pre-NUMA
 * simulator". Multi-socket machines must be deterministic: bit-equal
 * across host lane counts, stable under checkpoint save -> restore ->
 * continue, and consistent under the socket invariants (home-socket
 * queues, shootdown epoch agreement) mid-run, at completion and
 * immediately after a restore. The open-loop serving stack rides the
 * same gates on a two-socket machine.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "sim/serialize.hh"
#include "system/checkpoint.hh"
#include "system/system.hh"
#include "testing/invariants.hh"
#include "testing/logical_state.hh"
#include "testing/machine_differ.hh"
#include "workloads/fio.hh"
#include "workloads/kv_store.hh"
#include "workloads/open_loop.hh"
#include "workloads/ycsb.hh"

using namespace hwdp;
namespace ht = hwdp::testing;

namespace {

system::MachineConfig
baseConfig(system::PagingMode mode, unsigned sockets,
           unsigned sim_threads = 1)
{
    system::MachineConfig cfg;
    cfg.mode = mode;
    cfg.nLogical = 4;
    cfg.nPhysical = 2;
    cfg.memFrames = 32 * 1024; // pressure-free
    cfg.smu.freeQueueCapacity = 512;
    cfg.kpooldPeriod = milliseconds(1.0);
    cfg.kptedPeriod = milliseconds(4.0);
    cfg.sockets = sockets;
    cfg.simThreads = sim_threads;
    return cfg;
}

struct RunResult
{
    std::string stats;
    std::uint64_t hash = 0;
};

/**
 * One thread per socket, each running the scenario's workload against
 * a dataset on its socket-local device; sockets=1 degenerates to the
 * familiar single-thread run.
 */
RunResult
runWorkload(system::MachineConfig cfg, char wl)
{
    system::System sys(cfg);
    std::vector<std::unique_ptr<workloads::KvStore>> stores;
    for (unsigned s = 0; s < cfg.sockets; ++s) {
        auto mf = sys.mapDataset("f" + std::to_string(s), 8 * 1024,
                                 nullptr, s);
        workloads::Workload *w;
        if (wl == 'I') {
            w = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 1200);
        } else {
            auto *walf =
                sys.createFile("wal" + std::to_string(s), 4 * 1024, s);
            stores.push_back(std::make_unique<workloads::KvStore>(
                mf.vma, walf, 8 * 1024));
            w = sys.makeWorkload<workloads::YcsbWorkload>(
                'A', *stores.back(), 1000);
        }
        sys.addThread(*w, s * cfg.coresPerSocket(), *mf.as);
    }
    EXPECT_TRUE(sys.runUntilThreadsDone(seconds(30.0)));
    ht::quiesce(sys);
    auto inv = ht::checkInvariants(sys);
    EXPECT_TRUE(inv.empty()) << inv.front();

    RunResult r;
    std::ostringstream os;
    ht::dumpMachineStats(sys, os);
    r.stats = os.str();
    r.hash = ht::logicalStateHash(sys);
    return r;
}

} // namespace

// ---- Single-socket differential gate ---------------------------------------

TEST(NumaServing, SingleSocketDumpCarriesNoNumaArtifacts)
{
    for (auto mode : {system::PagingMode::osdp, system::PagingMode::hwdp,
                      system::PagingMode::swsmu}) {
        auto r = runWorkload(baseConfig(mode, 1), 'I');
        SCOPED_TRACE(pagingModeName(mode));
        ASSERT_FALSE(r.stats.empty());
        EXPECT_EQ(r.stats.find("numa."), std::string::npos);
        EXPECT_EQ(r.stats.find("socket"), std::string::npos);
        EXPECT_EQ(r.stats.find("shootdownEpoch"), std::string::npos);
    }
}

TEST(NumaServing, NumaKnobsAreInertAtOneSocket)
{
    // The pre-NUMA differential gate: a sockets=1 machine must ignore
    // every NUMA tuning knob — byte-identical dump and equal logical
    // hash whatever their values.
    for (auto mode : {system::PagingMode::osdp, system::PagingMode::hwdp,
                      system::PagingMode::swsmu}) {
        SCOPED_TRACE(pagingModeName(mode));
        auto base = runWorkload(baseConfig(mode, 1), 'I');

        auto cfg = baseConfig(mode, 1);
        cfg.numaRemoteExtraCycles = 9999;
        cfg.numaRemoteSmuLatency = microseconds(3.0);
        cfg.numaPlacement = system::NumaPlacement::roundRobin;
        auto tweaked = runWorkload(cfg, 'I');

        EXPECT_EQ(base.stats, tweaked.stats);
        EXPECT_EQ(base.hash, tweaked.hash);
    }
}

TEST(NumaServing, SingleSocketBitIdenticalAcrossSimThreads)
{
    for (auto mode : {system::PagingMode::osdp, system::PagingMode::hwdp,
                      system::PagingMode::swsmu}) {
        for (char wl : {'I', 'A'}) {
            SCOPED_TRACE(std::string(pagingModeName(mode)) + "/" + wl);
            auto serial = runWorkload(baseConfig(mode, 1, 1), wl);
            auto par = runWorkload(baseConfig(mode, 1, 4), wl);
            EXPECT_EQ(serial.stats, par.stats);
            EXPECT_EQ(serial.hash, par.hash);
        }
    }
}

// ---- Multi-socket determinism ----------------------------------------------

TEST(NumaServing, TwoSocketBitIdenticalAcrossSimThreads)
{
    for (auto mode : {system::PagingMode::osdp, system::PagingMode::hwdp,
                      system::PagingMode::swsmu}) {
        for (char wl : {'I', 'A'}) {
            SCOPED_TRACE(std::string(pagingModeName(mode)) + "/" + wl);
            auto serial = runWorkload(baseConfig(mode, 2, 1), wl);
            auto par = runWorkload(baseConfig(mode, 2, 4), wl);
            ASSERT_FALSE(serial.stats.empty());
            EXPECT_EQ(serial.stats, par.stats);
            EXPECT_EQ(serial.hash, par.hash);
        }
    }
}

TEST(NumaServing, TwoSocketDumpExposesTheNumaCounters)
{
    auto r = runWorkload(baseConfig(system::PagingMode::hwdp, 2), 'I');
    EXPECT_NE(r.stats.find("socket0.shootdownEpoch"),
              std::string::npos);
    EXPECT_NE(r.stats.find("socket1.remoteShootdownsIn"),
              std::string::npos);
    EXPECT_NE(r.stats.find("numa.remoteDramAccesses"),
              std::string::npos);
}

TEST(NumaServing, FourSocketRoundRobinPlacementRunsConsistently)
{
    auto cfg = baseConfig(system::PagingMode::hwdp, 4);
    cfg.nLogical = 8;
    cfg.nPhysical = 4;
    cfg.numaPlacement = system::NumaPlacement::roundRobin;
    auto a = runWorkload(cfg, 'I');
    auto b = runWorkload(cfg, 'I');
    EXPECT_EQ(a.stats, b.stats);
    EXPECT_EQ(a.hash, b.hash);
}

// ---- Checkpoint round trip -------------------------------------------------

namespace {

struct NumaMachine
{
    std::unique_ptr<system::System> sys;
    std::vector<system::System::MappedFile> mfs;

    void
    addThreads(std::uint64_t ops)
    {
        for (unsigned s = 0; s < sys->numSockets(); ++s) {
            auto *w = sys->makeWorkload<workloads::FioWorkload>(
                mfs[s].vma, ops);
            sys->addThread(*w, s * (4 / sys->numSockets()),
                           *mfs[s].as);
        }
    }
};

NumaMachine
bootNuma(system::PagingMode mode, unsigned sim_threads)
{
    NumaMachine m;
    m.sys = std::make_unique<system::System>(
        baseConfig(mode, 2, sim_threads));
    for (unsigned s = 0; s < 2; ++s)
        m.mfs.push_back(m.sys->mapDataset("f" + std::to_string(s),
                                          8 * 1024, nullptr, s));
    m.addThreads(700);
    return m;
}

void
finishNuma(NumaMachine &m, std::string &stats, std::uint64_t &hash)
{
    m.addThreads(500);
    ASSERT_TRUE(m.sys->runUntilThreadsDone(seconds(30.0)));
    ht::quiesce(*m.sys);
    auto inv = ht::checkInvariants(*m.sys);
    EXPECT_TRUE(inv.empty()) << inv.front();
    std::ostringstream os;
    ht::dumpMachineStats(*m.sys, os);
    stats = os.str();
    hash = ht::logicalStateHash(*m.sys);
}

} // namespace

TEST(NumaServing, TwoSocketCheckpointRoundTripIdentity)
{
    for (auto mode : {system::PagingMode::osdp, system::PagingMode::hwdp,
                      system::PagingMode::swsmu}) {
        for (unsigned lanes : {1u, 4u}) {
            SCOPED_TRACE(std::string(pagingModeName(mode)) + "/lanes" +
                         std::to_string(lanes));

            NumaMachine a = bootNuma(mode, lanes);
            ASSERT_TRUE(a.sys->runUntilThreadsDone(seconds(30.0)));
            auto blob = system::Checkpoint::save(*a.sys);
            a.sys->resumeKthreads();
            std::string statsA;
            std::uint64_t hashA = 0;
            finishNuma(a, statsA, hashA);

            NumaMachine b = bootNuma(mode, lanes);
            system::Checkpoint::restore(*b.sys, blob);
            // Socket audits must pass on the freshly restored machine
            // before it runs a single further event.
            auto inv0 = ht::checkInvariants(*b.sys);
            EXPECT_TRUE(inv0.empty()) << inv0.front();
            b.sys->resumeKthreads();
            std::string statsB;
            std::uint64_t hashB = 0;
            finishNuma(b, statsB, hashB);

            EXPECT_EQ(hashA, hashB);
            EXPECT_EQ(statsA, statsB);
        }
    }
}

TEST(NumaServing, TwoSocketBlobRejectsSingleSocketTarget)
{
    NumaMachine a = bootNuma(system::PagingMode::hwdp, 1);
    ASSERT_TRUE(a.sys->runUntilThreadsDone(seconds(30.0)));
    auto blob = system::Checkpoint::save(*a.sys);

    // A machine with a different socket count is a different shape.
    system::System other(baseConfig(system::PagingMode::hwdp, 1));
    auto mf = other.mapDataset("f0", 8 * 1024);
    auto *w = other.makeWorkload<workloads::FioWorkload>(mf.vma, 700);
    other.addThread(*w, 0, *mf.as);
    EXPECT_THROW(system::Checkpoint::restore(other, blob),
                 sim::SerializeError);
}

// ---- Open-loop serving on a two-socket machine -----------------------------

TEST(NumaServing, OpenLoopServingDeterministicAcrossSimThreads)
{
    auto runServing = [](unsigned sim_threads) {
        auto cfg = baseConfig(system::PagingMode::hwdp, 2, sim_threads);
        system::System sys(cfg);
        auto mf = sys.mapDataset("kv", 8 * 1024);
        auto *wal = sys.createFile("wal", 4 * 1024);
        workloads::KvStore store(mf.vma, wal, 8 * 1024);

        workloads::OpenLoopParams p;
        p.offeredOpsPerSec = 50e3;
        p.totalRequests = 1500;
        p.nServers = 2;
        workloads::OpenLoopSource src(
            store, p, sim::Rng(cfg.seed ^ 0x6f70656e6c6f6fULL));
        std::vector<workloads::OpenLoopServer *> servers;
        for (unsigned t = 0; t < p.nServers; ++t) {
            auto *w =
                sys.makeWorkload<workloads::OpenLoopServer>(src, t);
            servers.push_back(w);
            // One server per socket.
            sys.addThread(*w, t * cfg.coresPerSocket(), *mf.as);
        }
        EXPECT_TRUE(sys.runUntilThreadsDone(seconds(60.0)));
        ht::quiesce(sys);
        auto inv = ht::checkInvariants(sys);
        EXPECT_TRUE(inv.empty()) << inv.front();

        RunResult r;
        std::uint64_t served = 0;
        std::vector<const metrics::LatencyReservoir *> rs;
        for (auto *s : servers) {
            served += s->served();
            rs.push_back(&s->latency());
        }
        EXPECT_EQ(served, p.totalRequests);
        std::ostringstream os;
        ht::dumpMachineStats(sys, os);
        os << "p99 "
           << metrics::LatencyReservoir::quantileAcross(rs, 0.99)
           << "\n";
        r.stats = os.str();
        r.hash = ht::logicalStateHash(sys);
        return r;
    };

    auto serial = runServing(1);
    auto par = runServing(4);
    EXPECT_EQ(serial.stats, par.stats);
    EXPECT_EQ(serial.hash, par.hash);
}

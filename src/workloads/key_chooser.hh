/**
 * @file
 * Key distribution generators for the KV workloads.
 *
 * Implements the YCSB generators: uniform, scrambled zipfian
 * (theta = 0.99, the YCSB default) and "latest" (zipfian over
 * recency, used by YCSB-D). The zipfian generator follows the
 * Gray et al. method YCSB uses, with the incremental zeta
 * computation replaced by a one-time computation per key-space size
 * (key spaces are fixed for a run here).
 */

#ifndef HWDP_WORKLOADS_KEY_CHOOSER_HH
#define HWDP_WORKLOADS_KEY_CHOOSER_HH

#include <cstdint>
#include <memory>

#include "sim/rng.hh"

namespace hwdp::workloads {

class KeyChooser
{
  public:
    virtual ~KeyChooser() = default;

    /**
     * Draw a key in [0, currentMax). @p current_max lets "latest"
     * track a growing key space (inserts).
     */
    virtual std::uint64_t next(sim::Rng &rng,
                               std::uint64_t current_max) = 0;
};

class UniformChooser : public KeyChooser
{
  public:
    std::uint64_t next(sim::Rng &rng, std::uint64_t current_max) override;
};

class ZipfianChooser : public KeyChooser
{
  public:
    /**
     * @param n     Key-space size the zeta constant is computed for.
     * @param theta Skew (YCSB default 0.99).
     * @param scrambled Hash the rank so popular keys spread over the
     *                  key space (YCSB's ScrambledZipfian).
     */
    explicit ZipfianChooser(std::uint64_t n, double theta = 0.99,
                            bool scrambled = true);

    std::uint64_t next(sim::Rng &rng, std::uint64_t current_max) override;

    /** Raw rank draw in [0, n) without scrambling. */
    std::uint64_t nextRank(sim::Rng &rng);

  private:
    std::uint64_t n;
    double theta;
    bool scrambled;
    double zetan;
    double alpha;
    double eta;

    static double zeta(std::uint64_t n, double theta);
};

/** Zipf over recency: recent (high) keys are popular (YCSB-D). */
class LatestChooser : public KeyChooser
{
  public:
    explicit LatestChooser(std::uint64_t initial_n, double theta = 0.99);

    std::uint64_t next(sim::Rng &rng, std::uint64_t current_max) override;

  private:
    ZipfianChooser zipf;
};

} // namespace hwdp::workloads

#endif // HWDP_WORKLOADS_KEY_CHOOSER_HH

/**
 * @file
 * Kernel block layer and NVMe driver (the OSDP I/O path).
 *
 * Maintains one interrupt-driven NVMe queue pair per logical core on
 * every attached device — the standard multi-queue layout. Reads
 * issued here complete through interrupt delivery and the block-layer
 * completion path (the 2.5% + 20.6% of device time Figure 3 charges);
 * writeback writes complete through a lighter batched path. This is
 * exactly the machinery the SMU removes from the page-miss data plane.
 */

#ifndef HWDP_OS_BLOCK_LAYER_HH
#define HWDP_OS_BLOCK_LAYER_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "os/scheduler.hh"
#include "sim/sim_object.hh"
#include "ssd/ssd_device.hh"

namespace hwdp::os {

class BlockLayer : public sim::SimObject
{
  public:
    /** Completion flavour selects the kernel completion phases. */
    enum class IoClass {
        faultRead,  ///< Demand-paging read: full completion path.
        writeback,  ///< Background write: batched completion path.
        dataRead,   ///< Ordinary file read (same path as faultRead).
    };

    BlockLayer(sim::EventQueue &eq, Scheduler &sched,
               std::uint16_t queue_depth = 1024);

    /**
     * Attach a device; creates one kernel queue pair per logical
     * core.
     * @return the block layer's device index.
     */
    unsigned attachDevice(ssd::SsdDevice *dev);

    ssd::SsdDevice &device(unsigned idx) { return *devices[idx].dev; }
    unsigned numDevices() const
    {
        return static_cast<unsigned>(devices.size());
    }

    /**
     * Submit a 4 KB I/O on behalf of @p core. The caller charges the
     * submission phases (phases::ioSubmit); this performs the ring
     * operations and doorbell. @p on_complete runs after the kernel
     * completion phases on @p core.
     */
    void submit(unsigned core, unsigned dev_idx, Lba lba, bool write,
                IoClass klass, std::function<void()> on_complete);

    std::uint64_t inflight() const { return pending.size(); }
    std::uint64_t readsSubmitted() const { return statReads.value(); }
    std::uint64_t writesSubmitted() const { return statWrites.value(); }
    std::uint64_t ioRetries() const { return statRetries.value(); }

    /**
     * Checkpoint the cid allocator and counters. Pending bios hold
     * completion closures, so the layer must be drained (quiesced)
     * on both sides; the queue-pair layout is verified.
     */
    void serialize(sim::Serializer &s);

  private:
    struct DeviceState
    {
        ssd::SsdDevice *dev;
        std::vector<std::uint16_t> coreQid; // per logical core
    };

    struct Pending
    {
        unsigned core;
        IoClass klass;
        Lba lba;
        bool write;
        std::function<void()> onComplete;
    };

    Scheduler &sched;
    std::uint16_t qDepth;
    std::vector<DeviceState> devices;

    /** Key: (device idx << 32) | (qid << 16) | cid. */
    std::unordered_map<std::uint64_t, Pending> pending;
    std::uint16_t nextCid = 0;

    sim::Counter &statReads;
    sim::Counter &statWrites;
    sim::Counter &statCompletions;
    sim::Counter &statRetries;

    void onDeviceCompletion(unsigned dev_idx, std::uint16_t qid,
                            const nvme::CompletionEntry &cqe);

    static std::uint64_t key(unsigned dev_idx, std::uint16_t qid,
                             std::uint16_t cid);
};

} // namespace hwdp::os

#endif // HWDP_OS_BLOCK_LAYER_HH

#include "mem/branch_predictor.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::mem {

void
BranchPredictor::serialize(sim::Serializer &s)
{
    s.section("branchpredictor");
    s.check(historyBits, "branch history bits");
    s.io(ghr);
    std::uint64_t n = pht.size();
    s.check(n, "pattern table size");
    s.ioRange(pht.begin(), pht.end());
    s.io(nLookups[0]);
    s.io(nLookups[1]);
    s.io(nMiss[0]);
    s.io(nMiss[1]);
}

BranchPredictor::BranchPredictor(unsigned history_bits)
    : historyBits(history_bits)
{
    if (history_bits == 0 || history_bits > 24)
        fatal("branch predictor: unreasonable history length ",
              history_bits);
    historyMask = (1ULL << historyBits) - 1;
    pht.assign(std::size_t(1) << historyBits, 1); // weakly not-taken
}

std::uint64_t
BranchPredictor::updateBatch(const std::uint64_t *pcs, std::size_t n_pcs,
                             const std::uint8_t *taken, std::size_t n,
                             ExecMode mode)
{
    // Same gshare transition as predictAndUpdate, unrolled over the
    // batch: the GHR and the miss count live in locals, the per-mode
    // statistics are written once at the end. The PHT/GHR updates are
    // inherently serial (each index depends on the previous outcome),
    // but they are pure ALU work once the per-call overhead is gone.
    std::uint64_t g = ghr;
    std::uint64_t miss = 0;
    std::uint8_t *table = pht.data();
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < n) {
        // Inner loop over one pass of the PC ring: no wrap check per
        // update (the common case never wraps — runs are at most one
        // ring long).
        std::size_t len = std::min(n - i, n_pcs - j);
        const std::uint64_t *pc = pcs + j;
        for (std::size_t k = 0; k < len; ++k) {
            std::uint64_t idx = ((pc[k] >> 2) ^ g) & historyMask;
            std::uint8_t ctr = table[idx];
            unsigned t = taken[i + k] ? 1u : 0u;
            // Branch-free on the outcome: simulated coin-flip data.
            miss += static_cast<std::uint64_t>((ctr >= 2) != (t != 0));
            table[idx] = static_cast<std::uint8_t>(
                ctr + (t & static_cast<unsigned>(ctr < 3)) -
                ((t ^ 1u) & static_cast<unsigned>(ctr > 0)));
            g = ((g << 1) | t) & historyMask;
        }
        i += len;
        j += len;
        if (j == n_pcs)
            j = 0;
    }
    ghr = g;
    auto m = static_cast<unsigned>(mode);
    nLookups[m] += n;
    nMiss[m] += miss;
    return miss;
}

std::uint64_t
BranchPredictor::lookups(ExecMode mode) const
{
    return nLookups[static_cast<unsigned>(mode)];
}

std::uint64_t
BranchPredictor::mispredicts(ExecMode mode) const
{
    return nMiss[static_cast<unsigned>(mode)];
}

double
BranchPredictor::missRate(ExecMode mode) const
{
    auto m = static_cast<unsigned>(mode);
    return nLookups[m]
               ? static_cast<double>(nMiss[m]) /
                     static_cast<double>(nLookups[m])
               : 0.0;
}

void
BranchPredictor::reset()
{
    ghr = 0;
    std::fill(pht.begin(), pht.end(), 1);
    nLookups[0] = nLookups[1] = 0;
    nMiss[0] = nMiss[1] = 0;
}

} // namespace hwdp::mem

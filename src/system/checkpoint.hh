/**
 * @file
 * Versioned machine checkpoints: snapshot/restore of warmed machines.
 *
 * A checkpoint is the System's full logical state behind a small
 * self-identifying header:
 *
 *   [magic u32][version u32][config hash u64][tick u64]
 *   [System::serialize body]
 *   [logical-state hash u64]
 *
 * The config hash binds a blob to the machine *shape* it was saved
 * from (paging mode, topology, memory, device profile, SMU geometry,
 * seed) — restoring onto a differently configured machine is rejected
 * up front with a readable error instead of failing somewhere deep in
 * a section check. simThreads is deliberately excluded: the parallel
 * simulation mode is bit-identical, so a blob saved at simThreads=1
 * restores under simThreads=4 and vice versa.
 *
 * The trailing logical-state hash is the same FNV fold the
 * MachineDiffer computes (testing/logical_state.hh). restore()
 * re-walks the restored machine and compares, so a restore that
 * silently produced a different logical memory-management state fails
 * loudly at restore time, not in a downstream measurement.
 *
 * Protocol (the warm-fork sweep):
 *   save:    boot → start → run warmup to completion → save()
 *            [quiesces internally] → resumeKthreads() → keep running
 *   restore: boot the SAME recipe (config, files, mappings, threads;
 *            never start()) → restore() → resumeKthreads() → add
 *            measurement threads → run
 */

#ifndef HWDP_SYSTEM_CHECKPOINT_HH
#define HWDP_SYSTEM_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace hwdp::system {

class System;
struct MachineConfig;

/** What a save/restore did, for metrics::checkpointTable. */
struct CheckpointStats
{
    std::uint64_t blobBytes = 0;
    /** Simulated time captured in the blob. */
    Tick tick = 0;
    /** Logical-state provenance hash (footer). */
    std::uint64_t logicalHash = 0;
};

class Checkpoint
{
  public:
    /** 'HDPC' little-endian. */
    static constexpr std::uint32_t magicWord = 0x43504448;
    /**
     * v2: translation-reach state (compound-page metadata, wide-PTE
     * counters, kcoalesced) can appear in the body, and the config
     * hash covers the page mode via the describe() fold. v1 blobs are
     * rejected up front.
     */
    static constexpr std::uint32_t formatVersion = 2;

    /**
     * Quiesce @p sys and serialize it into a blob. The caller resumes
     * with sys.resumeKthreads() (also on the straight path, so both
     * sides re-arm timers identically). Throws sim::SerializeError
     * when the machine cannot quiesce (running threads, in-flight
     * work).
     */
    static std::vector<std::uint8_t> save(System &sys,
                                          CheckpointStats *st = nullptr);

    /**
     * Apply @p blob to @p sys, which must be built by the same boot
     * recipe as the saved machine and never started. Verifies magic,
     * version, config hash, every structural check in the body, and
     * the trailing logical-state hash. Leaves the machine live
     * (started) with stopped kthreads; call sys.resumeKthreads() to
     * continue.
     */
    static void restore(System &sys, const std::vector<std::uint8_t> &blob,
                        CheckpointStats *st = nullptr);

    /** save() + write the blob to @p path. */
    static void saveFile(System &sys, const std::string &path,
                         CheckpointStats *st = nullptr);

    /**
     * Restore from @p path. Returns false when the file does not
     * exist (the warm-fork caller then falls back to a cold warmup);
     * a present-but-invalid file throws.
     */
    static bool restoreFile(System &sys, const std::string &path,
                            CheckpointStats *st = nullptr);

    /** The shape hash bound into every blob (simThreads excluded). */
    static std::uint64_t configHash(const MachineConfig &cfg);
};

} // namespace hwdp::system

#endif // HWDP_SYSTEM_CHECKPOINT_HH

/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * SplitMix64 is used as the core generator: it is tiny, passes BigCrush
 * when used as a mixer, and — unlike std::mt19937 — its sequences are
 * reproducible across standard-library implementations, which keeps
 * experiment output stable.
 */

#ifndef HWDP_SIM_RNG_HH
#define HWDP_SIM_RNG_HH

#include <cstddef>
#include <cstdint>

namespace hwdp::sim {

class Serializer;

/** SplitMix64 generator with convenience distributions. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    // The uniform distributions are defined inline: workload compute
    // bursts draw two of them per simulated data reference, so the
    // call overhead is measurable on the whole-simulation profile.

    /** Uniform integer in [0, bound). @pre bound > 0 */
    std::uint64_t
    range(std::uint64_t bound)
    {
        if (bound == 0) [[unlikely]]
            rangePanic();
        // Multiply-shift rejection-free mapping (Lemire); bias is
        // below 2^-64 * bound which is negligible for simulation
        // purposes.
        unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        // 53-bit mantissa from the top bits.
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /**
     * Fill @p out with @p n Bernoulli draws, 1 with probability @p p.
     * Produces the exact decision sequence (and final generator state)
     * of n sequential chance(p) calls — the batched kernel-pollution
     * path depends on that stream equivalence. Unlike the sequential
     * form, the i-th draw's state is computed directly as
     * state + (i+1) * gamma, so the mixes carry no loop dependency and
     * the host can overlap them.
     */
    void
    fill(double p, std::uint8_t *out, std::size_t n)
    {
        // chance() consumes no state for the degenerate probabilities.
        if (p <= 0.0) {
            for (std::size_t i = 0; i < n; ++i)
                out[i] = 0;
            return;
        }
        if (p >= 1.0) {
            for (std::size_t i = 0; i < n; ++i)
                out[i] = 1;
            return;
        }
        const std::uint64_t s = state;
        if (p == 0.5) {
            // The dominant caller (kernel-pollution branch streams)
            // draws fair coins. (z >> 11) * 2^-53 < 0.5 is exactly
            // "bit 63 of z is clear" — both sides of the comparison
            // are exact in double — so the draw reduces to pure
            // integer ops the compiler can vectorise.
            for (std::size_t i = 0; i < n; ++i) {
                std::uint64_t z = s + (i + 1) * 0x9e3779b97f4a7c15ULL;
                z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
                z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
                z ^= z >> 31;
                out[i] = static_cast<std::uint8_t>(z >> 63 ^ 1);
            }
            state = s + n * 0x9e3779b97f4a7c15ULL;
            return;
        }
        for (std::size_t i = 0; i < n; ++i) {
            std::uint64_t z = s + (i + 1) * 0x9e3779b97f4a7c15ULL;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            z ^= z >> 31;
            double u = static_cast<double>(z >> 11) * 0x1.0p-53;
            out[i] = u < p ? 1 : 0;
        }
        state = s + n * 0x9e3779b97f4a7c15ULL;
    }

    /** Exponentially distributed value with the given mean. */
    double exponential(double mean);

    /** Normal value via Box-Muller (mean, stddev). */
    double normal(double mean, double stddev);

    /** Derive an independent stream (for per-component RNGs). */
    Rng fork();

    /** Checkpoint the stream position and the Box-Muller spare. */
    void serialize(Serializer &s);

  private:
    std::uint64_t state;
    bool haveSpare = false;
    double spare = 0.0;

    /** Out-of-line so the inline fast path stays branch + mul. */
    [[noreturn]] void rangePanic() const;
};

} // namespace hwdp::sim

#endif // HWDP_SIM_RNG_HH

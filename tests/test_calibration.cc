/**
 * @file
 * Calibration guard tests: the quantitative anchors EXPERIMENTS.md
 * reports are pinned here so a future change that silently drifts a
 * headline number fails a test instead of a paper comparison.
 *
 * Bands are deliberately wider than the bench output (different
 * machine sizes run faster here) but narrow enough to catch a broken
 * calibration.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "system/system.hh"
#include "workloads/fio.hh"

using namespace hwdp;

namespace {

system::MachineConfig
calibConfig(system::PagingMode mode)
{
    system::MachineConfig cfg;
    cfg.mode = mode;
    cfg.memFrames = 16 * 1024;
    cfg.smu.freeQueueCapacity = 1024;
    cfg.kpooldPeriod = milliseconds(1.0);
    return cfg;
}

double
fioLatency(system::PagingMode mode, unsigned threads)
{
    system::System sys(calibConfig(mode));
    auto mf = sys.mapDataset("f", 512 * 1024); // cold reads
    double sum = 0;
    for (unsigned t = 0; t < threads; ++t) {
        auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma,
                                                            3000);
        sys.addThread(*wl, t, *mf.as);
    }
    EXPECT_TRUE(sys.runUntilThreadsDone(seconds(30.0)));
    for (auto &tc : sys.threads())
        sum += tc->faultedOpLatencyUs().mean();
    return sum / threads;
}

} // namespace

TEST(Calibration, SingleThreadFioReductionNearPaper)
{
    // Paper Figure 12: -37.0% at one thread. Accept 32..45%.
    double osdp = fioLatency(system::PagingMode::osdp, 1);
    double hwdp = fioLatency(system::PagingMode::hwdp, 1);
    double reduction = 1.0 - hwdp / osdp;
    EXPECT_GT(reduction, 0.32);
    EXPECT_LT(reduction, 0.45);
}

TEST(Calibration, OsdpFaultNearTwentyMicroseconds)
{
    system::System sys(calibConfig(system::PagingMode::osdp));
    auto mf = sys.mapDataset("f", 512 * 1024);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 3000);
    sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(30.0)));
    // Device 10.9 us + ~8.4 us kernel (Figure 3's 76.3%).
    double mean = sys.kernel().faultLatencyUs().mean();
    EXPECT_GT(mean, 17.5);
    EXPECT_LT(mean, 21.5);
}

TEST(Calibration, HwdpMissWithinTwoHundredNsOfDevice)
{
    system::System sys(calibConfig(system::PagingMode::hwdp));
    auto mf = sys.mapDataset("f", 512 * 1024);
    auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma, 3000);
    sys.addThread(*wl, 0, *mf.as);
    ASSERT_TRUE(sys.runUntilThreadsDone(seconds(30.0)));
    // Figure 11(b): hardware adds ~120 ns over the 10.9 us device
    // time; queueing noise allows a little more.
    double mean = sys.smu()->missLatencyUs().mean();
    EXPECT_GT(mean, 10.9);
    EXPECT_LT(mean, 11.35);
}

TEST(Calibration, SwOnlyBetweenOsdpAndHwdpPerFig17)
{
    double osdp = fioLatency(system::PagingMode::osdp, 1);
    double sw = fioLatency(system::PagingMode::swsmu, 1);
    double hw = fioLatency(system::PagingMode::hwdp, 1);
    // Figure 17's Z-SSD point: HWDP/SW-only ~ 0.85.
    EXPECT_LT(hw, sw);
    EXPECT_LT(sw, osdp);
    double ratio = hw / sw;
    EXPECT_GT(ratio, 0.78);
    EXPECT_LT(ratio, 0.93);
}

TEST(Calibration, HwdpLatencyAdvantageGrowsOnFasterDevices)
{
    // Figure 17's trend across devices, as latency ratios.
    double prev_ratio = 1.0;
    for (const char *prof : {"zssd", "optane_ssd", "optane_pmm"}) {
        auto mk = [&](system::PagingMode m) {
            auto cfg = calibConfig(m);
            cfg.ssdProfile = prof;
            system::System sys(cfg);
            auto mf = sys.mapDataset("f", 512 * 1024);
            auto *wl =
                sys.makeWorkload<workloads::FioWorkload>(mf.vma, 2000);
            sys.addThread(*wl, 0, *mf.as);
            EXPECT_TRUE(sys.runUntilThreadsDone(seconds(30.0)));
            return sys.threads()[0]->faultedOpLatencyUs().mean();
        };
        double ratio =
            mk(system::PagingMode::hwdp) / mk(system::PagingMode::osdp);
        EXPECT_LT(ratio, prev_ratio)
            << prof << ": the advantage must grow as devices speed up";
        prev_ratio = ratio;
    }
}

TEST(Calibration, DeterministicAcrossRuns)
{
    // The whole machine is seeded: identical configs give identical
    // results, which is what makes EXPERIMENTS.md reproducible.
    auto run = [] {
        system::System sys(calibConfig(system::PagingMode::hwdp));
        auto mf = sys.mapDataset("f", 64 * 1024);
        auto *wl = sys.makeWorkload<workloads::FioWorkload>(mf.vma,
                                                            1000);
        sys.addThread(*wl, 0, *mf.as);
        EXPECT_TRUE(sys.runUntilThreadsDone(seconds(30.0)));
        return std::make_pair(sys.now(),
                              sys.threads()[0]->userCycles());
    };
    auto a = run();
    auto b = run();
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
}

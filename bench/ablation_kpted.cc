/**
 * @file
 * Design-choice ablation: kpted's guided scan and period.
 *
 * The paper marks the two upper page-table levels (PMD and PUD) with
 * LBA bits so kpted can skip subtrees with nothing to synchronise
 * (Section IV-C: "marking this information in the next two levels up
 * is sufficient to keep the overhead of finding unsynchronized PTEs
 * low"). The benefit shows when fast-mmap'ed memory is *not* all hot:
 * here one small file is actively read while a large file is mapped
 * but idle — the guided scan skips the idle terabytes of PTEs, the
 * exhaustive scan crawls them every pass. A period sweep shows the
 * scan-cost / staleness trade.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace hwdp;
using metrics::Table;

namespace {

struct Result
{
    std::uint64_t synced;
    std::uint64_t visited;
    double kptedMcycles;
    std::uint64_t batches;
};

Result
run(bool guided, Tick period)
{
    auto cfg = bench::paperConfig(system::PagingMode::hwdp);
    cfg.kptedGuidedScan = guided;
    cfg.kptedPeriod = period;

    system::System sys(cfg);
    // Active file: 64K pages of FIO traffic. Idle file: 1M pages
    // mapped with the fast flag but never touched.
    auto active = sys.mapDataset("active.dat", 64 * 1024);
    sys.mapDataset("idle.dat", 1024 * 1024, active.as);

    auto *wl = sys.makeWorkload<workloads::FioWorkload>(active.vma, 8000);
    sys.addThread(*wl, 0, *active.as);
    sys.runUntilThreadsDone(seconds(60.0));

    Result r;
    r.synced = sys.kpted()->pagesSynced();
    r.visited = sys.kpted()->entriesVisited();
    r.kptedMcycles = static_cast<double>(sys.kernel().kexec().cycles(
                         os::KernelCostCat::kpted)) /
                     1e6;
    r.batches = sys.kpted()->batchesRun();
    return r;
}

} // namespace

int
main()
{
    metrics::banner("Ablation: kpted guided vs exhaustive scan",
                    "64K hot pages + 1M idle mapped pages; guided scan "
                    "skips the idle subtrees");

    Table t({"scan", "period ms", "pages synced", "entries visited",
             "visited/synced", "kpted Mcycles"});
    for (bool guided : {true, false}) {
        for (double ms : {4.0, 16.0, 64.0}) {
            Result r = run(guided, milliseconds(ms));
            double ratio = r.synced ? static_cast<double>(r.visited) /
                                          static_cast<double>(r.synced)
                                    : 0.0;
            t.addRow({guided ? "guided" : "full", Table::num(ms, 0),
                      std::to_string(r.synced),
                      std::to_string(r.visited), Table::num(ratio, 1),
                      Table::num(r.kptedMcycles, 1)});
        }
    }
    t.print();
    std::printf("\nexpected: for the same period the full scan visits "
                "~1M extra entries per pass (the idle mapping); the "
                "guided scan's visit count tracks the synced count\n");
    return 0;
}

#include "ssd/ssd_device.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/serialize.hh"
#include "sim/shard_pool.hh"

namespace hwdp::ssd {

void
SsdDevice::serialize(sim::Serializer &s)
{
    joinService();
    s.section("ssddevice");
    if (s.saving()) {
        if (nInflight != 0 || fetchScheduled)
            throw sim::SerializeError(
                "checkpoint: ssd '" + name() +
                "' has commands in flight; quiesce the machine first");
        // Pooled completions count as in flight too: a live pending
        // node is a command between service and its CQ write.
        if (!livePending.empty() || !staged.empty() || drainEv)
            throw sim::SerializeError(
                "checkpoint: ssd '" + name() +
                "' has pooled completions pending; quiesce the "
                "machine first");
        for (auto &qs : queues)
            if (qs.doorbellPending)
                throw sim::SerializeError(
                    "checkpoint: ssd '" + name() +
                    "' has a pending doorbell; quiesce the machine "
                    "first");
    }
    rng.serialize(s);
    std::uint64_t nq = queues.size();
    s.check(nq, "queue pair count");
    for (auto &qs : queues) {
        s.check(qs.interrupts, "queue interrupt mode");
        qs.qp->serialize(s);
        s.io(qs.inflight);
    }
    s.io(channelFreeAt);
    s.io(nReads);
    s.io(nWrites);
    s.io(nErrors);
    if (s.loading()) {
        nInflight = 0;
        fetchScheduled = false;
        for (auto &qs : queues)
            qs.doorbellPending = false;
        staged.clear();
        livePending.clear();
        cmdFree.clear();
        cmdPool.clear();
        if (drainEv) {
            eq.deschedule(drainEv);
            drainEv = nullptr;
        }
    }
    stats().serialize(s);
}

SsdDevice::~SsdDevice()
{
    // A deferred service batch must never outlive the device (the
    // shard pool would fault on an unjoined task at teardown).
    joinService();
}

void
SsdDevice::setServiceLane(sim::ShardPool *pool, unsigned slot)
{
    joinService();
    lanePool = pool;
    laneSlot = slot;
}

void
SsdDevice::joinService()
{
    if (!laneBusy)
        return;
    laneBusy = false;
    lanePool->joinAsyncSlot(laneSlot);
}

SsdDevice::SsdDevice(std::string name, sim::EventQueue &eq,
                     const SsdProfile &profile, sim::Rng rng)
    : sim::SimObject(std::move(name), eq), prof(profile), rng(rng),
      channelFreeAt(profile.channels, 0),
      statReads(stats().counter("reads", "4KB read commands completed")),
      statWrites(stats().counter("writes", "write commands completed")),
      statErrors(stats().counter("error_completions",
                                 "commands completed with error status")),
      statDeviceTime(stats().histogram(
          "device_time_us", "doorbell-to-CQE-write time (us)", 0.5, 400))
{
    if (prof.channels == 0)
        fatal("ssd '", this->name(), "': profile needs >= 1 channel");
}

std::uint16_t
SsdDevice::createQueuePair(std::uint16_t depth, nvme::Priority prio,
                           bool interrupts)
{
    auto qid = static_cast<std::uint16_t>(queues.size() + 1);
    QueueState qs;
    // Ring placement in simulated physical memory is symbolic: distinct
    // non-overlapping regions so CQ-head snoop addresses are unique.
    PAddr sq_base = 0xfee0'0000'0000ULL + qid * 0x10000ULL;
    PAddr cq_base = sq_base + 0x8000ULL;
    qs.qp = std::make_unique<nvme::QueuePair>(qid, depth, sq_base, cq_base,
                                              prio);
    qs.interrupts = interrupts;
    queues.push_back(std::move(qs));
    return qid;
}

SsdDevice::QueueState &
SsdDevice::state(std::uint16_t qid)
{
    if (qid == 0 || qid > queues.size())
        panic("ssd '", name(), "': bad queue id ", qid);
    return queues[qid - 1];
}

nvme::QueuePair &
SsdDevice::queuePair(std::uint16_t qid)
{
    return *state(qid).qp;
}

const nvme::QueuePair &
SsdDevice::queuePair(std::uint16_t qid) const
{
    if (qid == 0 || qid > queues.size())
        panic("ssd '", name(), "': bad queue id ", qid);
    return *queues[qid - 1].qp;
}

void
SsdDevice::setCompletionListener(std::uint16_t qid, CompletionListener fn)
{
    state(qid).listener = std::move(fn);
}

std::uint64_t
SsdDevice::queueInflight(std::uint16_t qid) const
{
    if (qid == 0 || qid > queues.size())
        panic("ssd '", name(), "': bad queue id ", qid);
    return queues[qid - 1].inflight;
}

void
SsdDevice::ringSqDoorbell(std::uint16_t qid)
{
    ringSqDoorbellAt(qid, now());
}

void
SsdDevice::ringSqDoorbellAt(std::uint16_t qid, Tick at)
{
    state(qid).doorbellPending = true;
    ++nDoorbellRings;
    // An injected "dropped" doorbell defers the device-side fetch; the
    // write is never truly lost (forward progress is preserved), the
    // device just notices it late. Queried on every ring so the
    // per-site injection stream advances identically on either path.
    Tick drop = injector ? injector->doorbellDropDelay(qid) : 0;
    if (fetchScheduled) {
        // Coalesced: the already-scheduled fetch drains this queue too.
        ++nDoorbellsCoalesced;
        return;
    }
    Tick fetch_at = at + prof.cmdFetch + drop;
    if (fastPath && at > now() && fetch_at < eq.nextEventTick()) {
        // Nothing can run before fetch_at, so fetching inline here is
        // indistinguishable from the posted "ssd.fetch" event — but
        // only for rings arriving ahead of the clock (the inline fault
        // chain, which rings at most once and pushes nothing after the
        // ring). A ring at now() may be followed by more same-instant
        // pushes from the code still executing, which the scheduled
        // fetch would coalesce into one priority-ordered batch; those
        // must keep the event path.
        ++nInlineFetches;
        fetchCommandsAt(fetch_at);
        return;
    }
    fetchScheduled = true;
    eq.post(fetch_at, [this] { fetchCommands(); }, "ssd.fetch");
}

void
SsdDevice::ringCqDoorbell(std::uint16_t qid)
{
    // The host advanced its CQ head; the device needs no timing action,
    // but validate the queue id to catch wiring bugs.
    state(qid);
}

void
SsdDevice::fetchCommands()
{
    fetchScheduled = false;
    fetchCommandsAt(now());
}

namespace {

/** Pre-jitter media time for one opcode (shared with the due bound). */
inline Tick
mediaTimeOf(const SsdProfile &prof, nvme::Opcode op, const char *dev)
{
    switch (op) {
      case nvme::Opcode::read:
        return prof.readMedia;
      case nvme::Opcode::write:
        return prof.writeMedia;
      case nvme::Opcode::flush:
        return prof.cqeWrite; // effectively immediate in the model
      default:
        panic("ssd '", dev, "': unknown opcode");
    }
}

} // namespace

void
SsdDevice::fetchCommandsAt(Tick at)
{
    joinService();

    // Urgent-priority queues are drained first (NVMe arbitration;
    // Section V notes SMU queues can use this to dodge queueing
    // behind bulk OS traffic).
    std::vector<std::size_t> order(queues.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                         return static_cast<unsigned>(queues[a].qp->priority()) <
                                static_cast<unsigned>(queues[b].qp->priority());
                     });

    // Stage the whole batch first: bookkeeping and fault-injector
    // queries stay on the simulation thread in canonical fetch order,
    // whatever thread later runs the service arithmetic.
    staged.clear();
    bool lane_ok = fastPath && lanePool != nullptr;
    for (std::size_t qi : order) {
        QueueState &qs = queues[qi];
        if (!qs.doorbellPending)
            continue;
        qs.doorbellPending = false;
        while (!qs.qp->sqEmpty()) {
            ++nInflight;
            ++qs.inflight;
            Staged s;
            s.sqe = qs.qp->popSqe();
            s.qidx = static_cast<std::uint32_t>(qi);
            s.at = at;
            if (injector)
                s.fault = injector->onCommand(s.sqe, qs.qp->qid());
            // Interrupt-queue commands post their own completion
            // events, which only the simulation thread may do.
            if (qs.interrupts)
                lane_ok = false;
            staged.push_back(s);
        }
    }
    if (staged.empty())
        return;

    if (lane_ok) {
        // Defer the batch to the device's lane. The drain placeholder
        // is a lower bound on the earliest CQ write (jitter floors at
        // 0.5x, stalls and backlog only push dues later), so the
        // hidden pending work is always preceded by a scheduled event
        // — which keeps every inline-execution gate conservative.
        Tick bound = maxTick;
        for (const Staged &s : staged) {
            Tick media =
                mediaTimeOf(prof, s.sqe.opcode, name().c_str());
            if (media > 0 && prof.mediaCv > 0.0)
                media /= 2;
            unsigned ch =
                static_cast<unsigned>(s.sqe.slba % prof.channels);
            Tick start = std::max(s.at, channelFreeAt[ch]);
            bound = std::min(
                bound, start + media + prof.xfer4k + prof.cqeWrite);
        }
        scheduleDrain(bound);
        ++nDeferredBatches;
        laneBusy = true;
        lanePool->launchAsyncSlot(
            laneSlot,
            [](void *c, unsigned) {
                static_cast<SsdDevice *>(c)->serviceStaged();
            },
            this);
        return;
    }

    serviceStaged();
    // Snooped-queue completions landed in the pending pool: keep the
    // drain scheduled for the earliest due.
    Tick min_due = maxTick;
    for (std::uint32_t n : livePending)
        min_due = std::min(min_due, cmdPool[n].due);
    if (min_due != maxTick)
        scheduleDrain(min_due);
}

void
SsdDevice::serviceStaged()
{
    for (const Staged &s : staged)
        serviceOne(s);
    staged.clear();
}

void
SsdDevice::serviceOne(const Staged &s)
{
    Tick media = mediaTimeOf(prof, s.sqe.opcode, name().c_str());
    if (media > 0 && prof.mediaCv > 0.0) {
        double jitter = rng.normal(1.0, prof.mediaCv);
        jitter = std::max(jitter, 0.5);
        media = static_cast<Tick>(static_cast<double>(media) * jitter);
    }

    unsigned ch = static_cast<unsigned>(s.sqe.slba % prof.channels);
    if (s.fault.channelStall > 0) {
        channelFreeAt[ch] =
            std::max(s.at, channelFreeAt[ch]) + s.fault.channelStall;
    }
    Tick start = std::max(s.at, channelFreeAt[ch]);
    Tick media_done = start + media;
    channelFreeAt[ch] = media_done;

    Tick cqe_written =
        media_done + prof.xfer4k + prof.cqeWrite + s.fault.extraLatency;
    Tick issued = s.at >= prof.cmdFetch ? s.at - prof.cmdFetch : 0;

    if (fastPath && !queues[s.qidx].interrupts) {
        // Snooped queue: pool the completion; the drain event writes
        // the CQE at the due tick. Steady state allocates nothing.
        std::uint32_t n;
        if (!cmdFree.empty()) {
            n = cmdFree.back();
            cmdFree.pop_back();
        } else {
            n = static_cast<std::uint32_t>(cmdPool.size());
            cmdPool.emplace_back();
        }
        cmdPool[n] =
            PendingCmd{s.sqe, s.qidx, s.fault.status, issued, cqe_written};
        livePending.push_back(n);
        pendingHighWater =
            std::max<std::uint64_t>(pendingHighWater, livePending.size());
        return;
    }

    // Interrupt-driven queue or reference path: one completion event
    // per command.
    auto status = s.fault.status;
    eq.post(cqe_written,
            [this, qidx = static_cast<std::size_t>(s.qidx), sqe = s.sqe,
             issued, status] { complete(qidx, sqe, issued, status); },
            "ssd.complete");
}

void
SsdDevice::scheduleDrain(Tick t)
{
    if (drainEv) {
        if (t < drainAt) {
            eq.reschedule(drainEv, t);
            drainAt = t;
        }
        return;
    }
    drainAt = t;
    drainEv = eq.post(
        t,
        [this] {
            drainEv = nullptr;
            drainFired();
        },
        "ssd.drain");
}

void
SsdDevice::drainFired()
{
    joinService();
    if (livePending.empty())
        return;
    Tick d = maxTick;
    for (std::uint32_t n : livePending)
        d = std::min(d, cmdPool[n].due);
    if (d > now()) {
        // Placeholder fired at the lower bound; the exact due is now
        // known, move there.
        scheduleDrain(d);
        return;
    }
    if (d < now())
        panic("ssd '", name(), "': pooled completion due ", d,
              " passed (drain at ", now(), ")");

    // Pop every command due now, preserving service order (the order
    // the reference path would have posted their events in), and
    // reschedule for the remainder BEFORE completing anything: the
    // inline-completion gate downstream must see the next pending due
    // as a scheduled event.
    dueBatch.clear();
    std::size_t w = 0;
    for (std::size_t r = 0; r < livePending.size(); ++r) {
        std::uint32_t n = livePending[r];
        if (cmdPool[n].due == d) {
            dueBatch.push_back(cmdPool[n]);
            cmdFree.push_back(n);
        } else {
            livePending[w++] = n;
        }
    }
    livePending.resize(w);
    Tick next = maxTick;
    for (std::uint32_t n : livePending)
        next = std::min(next, cmdPool[n].due);
    if (next != maxTick)
        scheduleDrain(next);

    // complete() may re-enter the device inline (an SMU retry rings
    // the doorbell again); dueBatch holds values, not pool references,
    // so reentrant staging is safe.
    for (const PendingCmd &pc : dueBatch)
        complete(pc.qidx, pc.sqe, pc.issued, pc.status);
}

void
SsdDevice::complete(std::size_t qidx, const nvme::SubmissionEntry &sqe,
                    Tick issued, std::uint16_t status)
{
    --nInflight;
    QueueState &qs = queues[qidx];
    --qs.inflight;

    nvme::CompletionEntry cqe;
    cqe.cid = sqe.cid;
    cqe.status = status;
    if (!qs.qp->pushCqe(cqe))
        panic("ssd '", name(), "': CQ overflow on qid ", qs.qp->qid());

    if (status != 0) {
        ++nErrors;
        ++statErrors;
    } else if (sqe.opcode == nvme::Opcode::read) {
        ++nReads;
        ++statReads;
    } else if (sqe.opcode == nvme::Opcode::write) {
        ++nWrites;
        ++statWrites;
    }
    statDeviceTime.sample(toMicroseconds(now() - issued));

    if (!qs.listener)
        return;
    if (qs.interrupts) {
        // MSI-X delivery to the interrupt handler on some core.
        auto listener = qs.listener;
        auto qid = qs.qp->qid();
        eq.postIn(prof.interruptLatency,
                            [listener, qid, cqe] { listener(qid, cqe); },
                            "ssd.irq");
    } else {
        // The SMU completion unit snoops the CQ memory write itself:
        // no interrupt, the listener sees it immediately.
        qs.listener(qs.qp->qid(), cqe);
    }
}

} // namespace hwdp::ssd

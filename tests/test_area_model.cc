/**
 * @file
 * Tests for the McPAT-style area model (Section VI-D).
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

#include "metrics/area_model.hh"

using namespace hwdp;
using namespace hwdp::metrics;

TEST(AreaModel, TotalMatchesPaper)
{
    AreaModel m;
    EXPECT_NEAR(m.smuTotalMm2(), 0.014, 0.001);
}

TEST(AreaModel, DieFractionMatchesPaper)
{
    AreaModel m;
    double frac = m.smuTotalMm2() / AreaModel::xeonDieMm2;
    EXPECT_NEAR(frac * 100.0, 0.004, 0.0005);
}

TEST(AreaModel, ComponentSharesMatchPaper)
{
    AreaModel m;
    auto parts = m.smuArea();
    ASSERT_EQ(parts.size(), 4u);
    double total = m.smuTotalMm2();
    EXPECT_EQ(parts[0].name, "pmshr");
    EXPECT_NEAR(parts[0].areaMm2 / total, 0.876, 0.02);
    EXPECT_NEAR(parts[1].areaMm2 / total, 0.067, 0.01);
    EXPECT_NEAR(parts[2].areaMm2 / total, 0.037, 0.01);
    EXPECT_NEAR(parts[3].areaMm2 / total, 0.020, 0.01);
}

TEST(AreaModel, AreaScalesWithTechnologyNode)
{
    AreaModel at22(22.0), at45(45.0), at7(7.0);
    EXPECT_GT(at45.smuTotalMm2(), at22.smuTotalMm2() * 3.0);
    EXPECT_LT(at7.smuTotalMm2(), at22.smuTotalMm2() * 0.2);
}

TEST(AreaModel, MonotonicInPmshrEntries)
{
    AreaModel m;
    double prev = 0.0;
    for (unsigned n : {4u, 8u, 16u, 32u, 64u}) {
        double a = m.smuTotalMm2(n);
        EXPECT_GT(a, prev);
        prev = a;
    }
}

TEST(AreaModel, CamIsDenserThanSram)
{
    AreaModel m;
    EXPECT_GT(m.camArea(32, 300, 58), m.sramArea(32, 300));
}

TEST(AreaModel, BadTechNodeRejected)
{
    EXPECT_THROW(AreaModel(0.0), FatalError);
    EXPECT_THROW(AreaModel(-3.0), FatalError);
}

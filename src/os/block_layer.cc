#include "os/block_layer.hh"

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::os {

void
BlockLayer::serialize(sim::Serializer &s)
{
    s.section("blocklayer");
    if (!pending.empty())
        throw sim::SerializeError(
            "checkpoint: block layer has in-flight bios; quiesce the "
            "machine first");
    std::uint64_t n = devices.size();
    s.check(n, "attached device count");
    for (auto &ds : devices) {
        std::uint64_t nq = ds.coreQid.size();
        s.check(nq, "kernel queue pairs per device");
        for (std::uint16_t qid : ds.coreQid)
            s.check(qid, "kernel queue pair id");
    }
    s.io(nextCid);
    stats().serialize(s);
}

BlockLayer::BlockLayer(sim::EventQueue &eq, Scheduler &sched,
                       std::uint16_t queue_depth)
    : sim::SimObject("blk", eq), sched(sched), qDepth(queue_depth),
      statReads(stats().counter("reads", "read bios submitted")),
      statWrites(stats().counter("writes", "write bios submitted")),
      statCompletions(stats().counter("completions",
                                      "bio completions processed")),
      statRetries(stats().counter(
          "io_retries", "bios resubmitted after an error completion"))
{
}

unsigned
BlockLayer::attachDevice(ssd::SsdDevice *dev)
{
    DeviceState ds;
    ds.dev = dev;
    unsigned dev_idx = static_cast<unsigned>(devices.size());
    for (unsigned c = 0; c < sched.numLogical(); ++c) {
        std::uint16_t qid =
            dev->createQueuePair(qDepth, nvme::Priority::medium, true);
        ds.coreQid.push_back(qid);
        dev->setCompletionListener(
            qid, [this, dev_idx](std::uint16_t q,
                                 const nvme::CompletionEntry &cqe) {
                onDeviceCompletion(dev_idx, q, cqe);
            });
    }
    devices.push_back(std::move(ds));
    return dev_idx;
}

std::uint64_t
BlockLayer::key(unsigned dev_idx, std::uint16_t qid, std::uint16_t cid)
{
    return (static_cast<std::uint64_t>(dev_idx) << 32) |
           (static_cast<std::uint64_t>(qid) << 16) | cid;
}

void
BlockLayer::submit(unsigned core, unsigned dev_idx, Lba lba, bool write,
                   IoClass klass, std::function<void()> on_complete)
{
    if (dev_idx >= devices.size())
        panic("block layer: bad device index ", dev_idx);
    DeviceState &ds = devices[dev_idx];
    std::uint16_t qid = ds.coreQid.at(core);

    nvme::SubmissionEntry sqe;
    sqe.opcode = write ? nvme::Opcode::write : nvme::Opcode::read;
    sqe.cid = nextCid++;
    sqe.slba = lba;
    sqe.nlb = 0; // one 4 KB logical block

    if (!ds.dev->queuePair(qid).pushSqe(sqe))
        panic("block layer: kernel SQ full on core ", core,
              " (queue depth ", qDepth, ")");

    pending.emplace(key(dev_idx, qid, sqe.cid),
                    Pending{core, klass, lba, write,
                            std::move(on_complete)});
    if (write)
        ++statWrites;
    else
        ++statReads;
    ds.dev->ringSqDoorbell(qid);
}

void
BlockLayer::onDeviceCompletion(unsigned dev_idx, std::uint16_t qid,
                               const nvme::CompletionEntry &cqe)
{
    auto it = pending.find(key(dev_idx, qid, cqe.cid));
    if (it == pending.end())
        panic("block layer: completion for unknown cid ", cqe.cid);
    Pending p = std::move(it->second);
    pending.erase(it);
    ++statCompletions;

    // Consume the CQ entry and ring the CQ doorbell (cheap; its cost
    // is folded into the completion phases below).
    DeviceState &ds = devices[dev_idx];
    if (ds.dev->queuePair(qid).cqHasWork())
        ds.dev->queuePair(qid).popCqe();
    ds.dev->ringCqDoorbell(qid);

    if (cqe.status != 0) {
        // The kernel retries failed bios until they succeed (with an
        // injector in play errors are transient by construction; a
        // real kernel would give up and SIGBUS after a bounded count).
        ++statRetries;
        unsigned core = p.core;
        sched.queueKernelWork(
            core, {&phases::irqDeliver, &phases::ioComplete},
            [this, core, dev_idx, p = std::move(p)]() mutable {
                submit(core, dev_idx, p.lba, p.write, p.klass,
                       std::move(p.onComplete));
            });
        return;
    }

    std::vector<const KernelPhase *> completion_phases;
    switch (p.klass) {
      case IoClass::faultRead:
      case IoClass::dataRead:
        // The wakeup of the blocked thread is part of the completion
        // path (Figure 3 folds try_to_wake_up into I/O completion).
        completion_phases = {&phases::irqDeliver, &phases::ioComplete,
                             &phases::wakeupSched};
        break;
      case IoClass::writeback:
        completion_phases = {&phases::irqDeliver,
                             &phases::writebackComplete};
        break;
    }
    sched.queueKernelWork(p.core, std::move(completion_phases),
                          std::move(p.onComplete));
}

} // namespace hwdp::os

/**
 * @file
 * The OSDP page-fault handler.
 *
 * Implements the conventional fault path the paper measures in
 * Figure 3: exception entry, VMA lookup, page allocation, I/O
 * submission through the block layer, context switch while the device
 * works, interrupt-driven completion, wakeup, metadata update and
 * PTE update + return. The same path also serves as the fallback when
 * the SMU cannot take a miss (PMSHR full or free-page queue empty),
 * in which case it additionally triggers the overlapped queue refill
 * (Section IV-D).
 */

#ifndef HWDP_OS_FAULT_HANDLER_HH
#define HWDP_OS_FAULT_HANDLER_HH

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "os/vma.hh"
#include "sim/types.hh"

namespace hwdp::sim {
class Serializer;
}

namespace hwdp::os {

class Kernel;
class Thread;

class FaultHandler
{
  public:
    explicit FaultHandler(Kernel &kernel);

    void handle(Thread &t, AddressSpace &as, VAddr vaddr, bool is_write,
                bool smu_fallback, std::function<void()> resume);

    /**
     * Checkpoint guard: the handler keeps no logical state beyond the
     * in-flight fault table, which must be empty at quiesce.
     */
    void serialize(sim::Serializer &s);

  private:
    Kernel &k;

    struct Ctx
    {
        Thread *t;
        AddressSpace *as;
        VAddr vaddr;
        bool write;
        bool fallback;
        Tick start;
        std::function<void()> resume;
        Vma *vma = nullptr;
        Pfn pfn = 0;
        unsigned allocRetries = 0;
        /**
         * Non-zero: this fault fills a whole naturally aligned 2 MB
         * window (thp/coalesce modes) and @c pfn is the head of a
         * 512-frame contiguous run. Zero means a normal 4 KB fault
         * (user mappings live in the canonical upper half, so 0 never
         * collides with a real window base).
         */
        VAddr hugeWin = 0;
    };
    using CtxPtr = std::shared_ptr<Ctx>;

    void afterEntry(CtxPtr c);
    void lookupVma(CtxPtr c);
    void anonFault(CtxPtr c);
    void minorFault(CtxPtr c, Pfn cached);
    void majorFault(CtxPtr c);
    void allocateFrame(CtxPtr c);
    void submitIo(CtxPtr c);
    void ioFinished(CtxPtr c);
    void finish(CtxPtr c, bool minor);

    /**
     * Attempt a 2 MB transparent-huge-page fill for an anonymous
     * fault. Returns true when the huge path took over; false falls
     * through to the 4 KB path (mode off, fastMmap VMA, ineligible
     * window, or no contiguous run free).
     */
    bool tryHugeAnon(CtxPtr c);

    /**
     * Attempt a 2 MB file-backed fill: one faultRead covers the whole
     * window (the single-command 2 MB read simplification, see
     * DESIGN.md §6j). Registers all 512 in-flight keys so concurrent
     * 4 KB faulters inside the window pile up on the huge read.
     */
    bool tryHugeMajor(CtxPtr c);

    /** Wake waiters on and release all 512 keys of c->hugeWin. */
    void unlockWindow(CtxPtr c);

    /**
     * Allocation retries are exhausted: offer the thread an OOM kill.
     * Returns true when the thread absorbed it (the fault is dropped);
     * false means the caller must panic — a thread that cannot die
     * here (a kthread) with no memory left is bookkeeping corruption.
     */
    bool oomKill(CtxPtr c, bool major);

    /**
     * Major faults in flight, keyed by (file id, page index). Later
     * faulters on the same page wait for the first one's I/O instead
     * of issuing a duplicate read (the lock_page serialisation in a
     * real kernel).
     */
    std::unordered_map<std::uint64_t, std::vector<CtxPtr>> inflight;
};

} // namespace hwdp::os

#endif // HWDP_OS_FAULT_HANDLER_HH

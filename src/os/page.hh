/**
 * @file
 * Per-frame OS metadata (the moral equivalent of struct page).
 *
 * Exactly the state the paper's control-plane work manipulates: LRU
 * membership, dirty/referenced bits, the page-cache identity
 * (file, index) and the reverse mapping back to the single virtual
 * mapping (the design reverts to OS paging on fork, so a page has at
 * most one mapping — Section V).
 */

#ifndef HWDP_OS_PAGE_HH
#define HWDP_OS_PAGE_HH

#include <cstdint>

#include "sim/types.hh"

namespace hwdp::os {

class AddressSpace;
class File;

struct Page
{
    Pfn pfn = 0;

    /** Page-cache identity; nullptr for anonymous/free pages. */
    File *file = nullptr;
    std::uint64_t index = 0;

    /** Reverse mapping (single mapping by design). */
    AddressSpace *as = nullptr;
    VAddr vaddr = 0;

    bool inUse = false;        ///< Frame allocated to someone.
    bool dirty = false;        ///< Needs writeback before reuse.
    bool referenced = false;   ///< Second-chance bit for the clock.
    bool active = false;       ///< On the active (vs inactive) list.
    bool lruLinked = false;    ///< Present on an LRU list at all.
    bool inPageCache = false;  ///< Indexed by the page cache.
    bool underWriteback = false;
    bool inSmuQueue = false;   ///< Donated to the SMU free page queue.

    /**
     * Compound-page shape (pageMode != off; always 0/false at off).
     * The head of a 2 MB mapping carries order 9 and is the only
     * LRU-linked page of the unit; its 511 tails carry the head's PFN
     * so any frame resolves to its unit in O(1). Dirty/referenced
     * tracking stays per 4 KB frame.
     */
    std::uint8_t order = 0;    ///< log2(pages) of the unit (head only).
    bool tail = false;         ///< Member (not head) of a compound unit.
    Pfn headPfn = 0;           ///< Head frame when tail is set.

    bool isCompoundHead() const { return order > 0; }

    void
    resetMetadata()
    {
        file = nullptr;
        index = 0;
        as = nullptr;
        vaddr = 0;
        inUse = false;
        dirty = false;
        referenced = false;
        active = false;
        lruLinked = false;
        inPageCache = false;
        underWriteback = false;
        inSmuQueue = false;
        order = 0;
        tail = false;
        headPfn = 0;
    }
};

} // namespace hwdp::os

#endif // HWDP_OS_PAGE_HH

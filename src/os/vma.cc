#include "os/vma.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace hwdp::os {

AddressSpace::AddressSpace(std::uint32_t id) : asid(id)
{
}

Vma *
AddressSpace::addVma(File *file, std::uint64_t file_page_offset,
                     std::uint64_t n_pages, bool fast_mmap, pte::Entry prot)
{
    if (n_pages == 0)
        fatal("addVma: zero-length mapping");
    auto vma = std::make_unique<Vma>();
    vma->start = nextMapBase;
    vma->end = nextMapBase + n_pages * pageSize;
    vma->file = file;
    vma->filePageOffset = file_page_offset;
    vma->fastMmap = fast_mmap;
    vma->prot = prot;
    nextMapBase = vma->end + pageSize; // one-page guard gap
    areas.push_back(std::move(vma));
    return areas.back().get();
}

void
AddressSpace::removeVma(Vma *vma)
{
    auto it = std::find_if(areas.begin(), areas.end(),
                           [vma](const auto &p) { return p.get() == vma; });
    if (it == areas.end())
        panic("removeVma: VMA not part of this address space");
    areas.erase(it);
}

Vma *
AddressSpace::findVma(VAddr va)
{
    for (auto &vma : areas) {
        if (vma->contains(va))
            return vma.get();
    }
    return nullptr;
}

} // namespace hwdp::os

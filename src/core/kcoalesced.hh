/**
 * @file
 * kcoalesced: Mosaic-style transparent coalescing daemon.
 *
 * In pageMode=coalesce, demand-paged 4 KB frames (HWDP fast-mmap
 * areas included — the SMU keeps its 4 KB miss granularity) that
 * happen to land contiguously are promoted to 2 MB PMD leaves in the
 * background, khugepaged-style: every period the daemon resumes an
 * incremental cursor over all address spaces, checks a bounded number
 * of naturally aligned 2 MB windows for eligibility (512 present,
 * synchronised PTEs mapping an aligned contiguous run) and collapses
 * the ones that qualify. A promotion keeps the same frames, so it is
 * never a correctness hazard — but the stale 4 KB TLB entries would
 * starve the wide entry forever, so each promoting batch ends with a
 * range shootdown (an IPI per remote socket on multi-socket machines,
 * reusing the PR 7 epoch machinery).
 */

#ifndef HWDP_CORE_KCOALESCED_HH
#define HWDP_CORE_KCOALESCED_HH

#include "os/kthread.hh"

namespace hwdp::os {
class Kernel;
}

namespace hwdp::core {

class Kcoalesced : public os::KThread
{
  public:
    /** @param batch_windows 2 MB windows examined per wakeup. */
    Kcoalesced(os::Kernel &kernel, unsigned core, Tick period,
               std::uint64_t batch_windows);

    void batch(std::function<void()> done) override;

    /** See Kpted::setCrossSocketIpis. */
    void setCrossSocketIpis(unsigned n) { crossSocketIpis = n; }

    /**
     * hugeCoalesceAbort fault site: consulted once per window that
     * passed the eligibility check; returning true skips the
     * promotion (the window stays 4 KB-mapped until a later pass).
     */
    void setAbortHook(std::function<bool()> fn)
    {
        abortHook = std::move(fn);
    }

    std::uint64_t windowsScanned() const { return nWindows; }
    std::uint64_t windowsPromoted() const { return nPromoted; }
    std::uint64_t promotionsAborted() const { return nAborts; }
    std::uint64_t shootdownIpisSent() const { return nIpis; }

    /** Checkpoint the kthread state, scan cursor and counters. */
    void serialize(sim::Serializer &s);

  private:
    os::Kernel &kernel;
    std::uint64_t batchWindows;
    unsigned crossSocketIpis = 0;
    std::function<bool()> abortHook;

    /** Incremental scan cursor: address-space index + next VA. */
    std::uint64_t cursorAs = 0;
    VAddr cursorVa = 0;

    std::uint64_t nWindows = 0;
    std::uint64_t nPromoted = 0;
    std::uint64_t nAborts = 0;
    std::uint64_t nIpis = 0; ///< Serialized only when multi-socket.
};

} // namespace hwdp::core

#endif // HWDP_CORE_KCOALESCED_HH

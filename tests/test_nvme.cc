/**
 * @file
 * Tests for the NVMe queue-pair ring model (including the phase-tag
 * protocol the SMU's snooping completion unit depends on).
 */

#include <gtest/gtest.h>

#include <deque>

#include "nvme/queue_pair.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

using namespace hwdp;
using namespace hwdp::nvme;

TEST(NvmeQueuePair, WireSizesMatchSpec)
{
    EXPECT_EQ(SubmissionEntry::wireBytes, 64u);
    EXPECT_EQ(CompletionEntry::wireBytes, 16u);
}

TEST(NvmeQueuePair, SqFifoOrder)
{
    QueuePair qp(1, 8, 0x1000, 0x2000);
    for (std::uint16_t i = 0; i < 5; ++i) {
        SubmissionEntry e;
        e.cid = i;
        ASSERT_TRUE(qp.pushSqe(e));
    }
    for (std::uint16_t i = 0; i < 5; ++i)
        EXPECT_EQ(qp.popSqe().cid, i);
    EXPECT_TRUE(qp.sqEmpty());
}

TEST(NvmeQueuePair, SqFullRejectsPush)
{
    QueuePair qp(1, 2, 0, 0);
    SubmissionEntry e;
    EXPECT_TRUE(qp.pushSqe(e));
    EXPECT_TRUE(qp.pushSqe(e));
    EXPECT_TRUE(qp.sqFull());
    EXPECT_FALSE(qp.pushSqe(e));
}

TEST(NvmeQueuePair, PopEmptySqPanics)
{
    QueuePair qp(1, 2, 0, 0);
    EXPECT_THROW(qp.popSqe(), PanicError);
}

TEST(NvmeQueuePair, CqPhaseTagSignalsWork)
{
    QueuePair qp(1, 4, 0, 0);
    EXPECT_FALSE(qp.cqHasWork());
    CompletionEntry c;
    c.cid = 7;
    ASSERT_TRUE(qp.pushCqe(c));
    EXPECT_TRUE(qp.cqHasWork());
    EXPECT_EQ(qp.popCqe().cid, 7u);
    EXPECT_FALSE(qp.cqHasWork());
}

TEST(NvmeQueuePair, CqPhaseSurvivesWrap)
{
    QueuePair qp(1, 4, 0, 0);
    // Push/pop through multiple wraps; the phase protocol must keep
    // cqHasWork() accurate the whole way.
    std::uint16_t next = 0;
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 3; ++i) {
            CompletionEntry c;
            c.cid = next++;
            ASSERT_TRUE(qp.pushCqe(c));
        }
        for (int i = 0; i < 3; ++i) {
            ASSERT_TRUE(qp.cqHasWork());
            qp.popCqe();
        }
        ASSERT_FALSE(qp.cqHasWork());
    }
}

TEST(NvmeQueuePair, CqeCarriesSqHeadAndQid)
{
    QueuePair qp(9, 4, 0, 0);
    SubmissionEntry s;
    qp.pushSqe(s);
    qp.popSqe();
    CompletionEntry c;
    qp.pushCqe(c);
    auto out = qp.popCqe();
    EXPECT_EQ(out.sqid, 9u);
    EXPECT_EQ(out.sqHead, 1u);
}

TEST(NvmeQueuePair, CqHeadAddrAdvancesAndWraps)
{
    QueuePair qp(1, 2, 0x1000, 0x2000);
    EXPECT_EQ(qp.cqHeadAddr(), 0x2000u);
    CompletionEntry c;
    qp.pushCqe(c);
    qp.popCqe();
    EXPECT_EQ(qp.cqHeadAddr(), 0x2000u + CompletionEntry::wireBytes);
    qp.pushCqe(c);
    qp.popCqe();
    EXPECT_EQ(qp.cqHeadAddr(), 0x2000u); // wrapped
}

TEST(NvmeQueuePair, ZeroDepthRejected)
{
    EXPECT_THROW(QueuePair(1, 0, 0, 0), FatalError);
}

TEST(NvmeQueuePair, RandomizedAgainstReferenceModel)
{
    QueuePair qp(1, 16, 0, 0);
    sim::Rng rng(99);
    std::deque<std::uint16_t> ref_sq, ref_cq;
    std::uint16_t next = 0;
    for (int i = 0; i < 20000; ++i) {
        switch (rng.range(4)) {
          case 0: {
            SubmissionEntry e;
            e.cid = next;
            bool ok = qp.pushSqe(e);
            ASSERT_EQ(ok, ref_sq.size() < 16);
            if (ok) {
                ref_sq.push_back(next);
                ++next;
            }
            break;
          }
          case 1:
            ASSERT_EQ(!qp.sqEmpty(), !ref_sq.empty());
            if (!ref_sq.empty()) {
                ASSERT_EQ(qp.popSqe().cid, ref_sq.front());
                ref_sq.pop_front();
            }
            break;
          case 2: {
            CompletionEntry c;
            c.cid = next;
            bool ok = qp.pushCqe(c);
            ASSERT_EQ(ok, ref_cq.size() < 16);
            if (ok) {
                ref_cq.push_back(next);
                ++next;
            }
            break;
          }
          case 3:
            ASSERT_EQ(qp.cqHasWork(), !ref_cq.empty());
            if (!ref_cq.empty()) {
                ASSERT_EQ(qp.popCqe().cid, ref_cq.front());
                ref_cq.pop_front();
            }
            break;
        }
    }
}

/**
 * @file
 * A miniature RocksDB-shaped NoSQL store over mmap'ed files.
 *
 * Layout: a data file mapped into the process (this is where demand
 * paging happens — one 4 KB record per key, like the paper's 4 KB
 * record configuration), a WAL file appended through the write()
 * syscall path, and an amortised compaction write stream. The class
 * does not execute anything itself: it describes the layout and emits
 * the Op sequences for each request type; the YCSB and DBBench
 * workload drivers pull from it.
 */

#ifndef HWDP_WORKLOADS_KV_STORE_HH
#define HWDP_WORKLOADS_KV_STORE_HH

#include <deque>

#include "os/file_system.hh"
#include "os/vma.hh"
#include "workloads/workload.hh"

namespace hwdp::workloads {

class KvStore
{
  public:
    /**
     * @param data_vma  The mmap'ed data file (one record per page).
     * @param wal_file  WAL appended on updates/inserts.
     * @param n_keys    Loaded keys (records).
     */
    KvStore(os::Vma *data_vma, os::File *wal_file, std::uint64_t n_keys);

    std::uint64_t numKeys() const { return nKeys; }

    /** Grow the key space by one (insert); wraps at file capacity. */
    std::uint64_t insertKey();

    /** Virtual address of the record page for @p key. */
    VAddr recordAddr(std::uint64_t key) const;

    // ---- Request recipes: push the Op sequence for one request ------
    void emitRead(std::deque<Op> &ops, std::uint64_t key) const;
    void emitUpdate(std::deque<Op> &ops, std::uint64_t key);
    void emitInsert(std::deque<Op> &ops);
    void emitScan(std::deque<Op> &ops, std::uint64_t key,
                  unsigned length) const;
    void emitReadModifyWrite(std::deque<Op> &ops, std::uint64_t key);

    os::Vma *dataVma() const { return data; }

    /** Checkpoint the mutable store state (key count, WAL cursor). */
    void serialize(sim::Serializer &s);

  private:
    os::Vma *data;
    os::File *wal;
    std::uint64_t nKeys;
    std::uint64_t walCursor = 0;

    ComputeSpec indexLookup;   ///< Memtable + index block search.
    ComputeSpec valueProcess;  ///< Deserialise + checksum the record.
    ComputeSpec memtableInsert;
};

} // namespace hwdp::workloads

#endif // HWDP_WORKLOADS_KV_STORE_HH

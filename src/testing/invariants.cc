#include "testing/invariants.hh"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "mem/phys_mem.hh"
#include "os/file_system.hh"
#include "os/kernel.hh"
#include "os/pte.hh"
#include "system/system.hh"

namespace hwdp::testing {

namespace {

std::string
hex(std::uint64_t v)
{
    std::ostringstream os;
    os << "0x" << std::hex << v;
    return os.str();
}

} // namespace

std::vector<std::string>
checkInvariants(system::System &sys)
{
    using namespace os::pte;

    std::vector<std::string> v;
    os::Kernel &kern = sys.kernel();
    mem::PhysMem &pm = sys.physMem();

    // ---- 1. Page-table sanity -------------------------------------------
    std::unordered_map<Pfn, std::string> mapped;
    for (const auto &as : kern.addressSpaces()) {
        for (const auto &vma : as->vmas()) {
            for (std::uint64_t i = 0; i < vma->numPages(); ++i) {
                VAddr va = vma->start + (i << pageShift);
                Entry e = as->pageTable().readPte(va);
                std::string where = "as " + std::to_string(as->id()) +
                                    " va " + hex(va);
                if (isPresent(e)) {
                    Pfn pfn = pfnOf(e);
                    if (pfn >= kern.numFrames()) {
                        v.push_back(where + ": PTE pfn " +
                                    std::to_string(pfn) +
                                    " beyond frame count");
                        continue;
                    }
                    if (!pm.isAllocated(pfn))
                        v.push_back(where + ": mapped frame " +
                                    std::to_string(pfn) +
                                    " not allocated");
                    if (!kern.page(pfn).inUse)
                        v.push_back(where + ": mapped frame " +
                                    std::to_string(pfn) +
                                    " not marked inUse");
                    auto [it, fresh] = mapped.emplace(pfn, where);
                    if (!fresh)
                        v.push_back("frame " + std::to_string(pfn) +
                                    " mapped twice: " + it->second +
                                    " and " + where);
                } else if (hasLbaBit(e)) {
                    if (vma->file) {
                        Lba want =
                            vma->file->lbaOf(vma->fileIndexOf(va));
                        if (lbaOf(e) != want)
                            v.push_back(
                                where + ": LBA-augmented PTE lba " +
                                std::to_string(lbaOf(e)) +
                                " != file lba " + std::to_string(want));
                        if (deviceIdOf(e) != vma->file->device().dev)
                            v.push_back(
                                where + ": PTE device id " +
                                std::to_string(deviceIdOf(e)) +
                                " != file device " +
                                std::to_string(vma->file->device().dev));
                        if (socketIdOf(e) != vma->file->device().sid)
                            v.push_back(
                                where + ": PTE socket id " +
                                std::to_string(socketIdOf(e)) +
                                " != file device socket " +
                                std::to_string(vma->file->device().sid));
                    } else if (lbaOf(e) != zeroFillLba) {
                        v.push_back(where +
                                    ": anonymous PTE carries lba " +
                                    std::to_string(lbaOf(e)) +
                                    " instead of the zero-fill LBA");
                    } else if (socketIdOf(e) != 0) {
                        v.push_back(where +
                                    ": anonymous PTE carries socket id " +
                                    std::to_string(socketIdOf(e)) +
                                    " instead of 0");
                    }
                    if (socketIdOf(e) >= sys.numSockets())
                        v.push_back(where + ": PTE routes to socket " +
                                    std::to_string(socketIdOf(e)) +
                                    " beyond the machine's " +
                                    std::to_string(sys.numSockets()));
                }
            }
        }
    }

    // ---- 2. Free-page-queue frames --------------------------------------
    // On a multi-socket machine every queue belongs to a socket, and
    // kpoold only donates home-socket frames to it.
    auto checkFpq = [&](const core::FreePageQueue &q, unsigned idx,
                        unsigned home) {
        q.forEachPfn([&](Pfn pfn) {
            std::string where =
                "free page queue " + std::to_string(idx) + " frame " +
                std::to_string(pfn);
            auto it = mapped.find(pfn);
            if (it != mapped.end())
                v.push_back(where + ": also mapped at " + it->second);
            if (pfn >= kern.numFrames()) {
                v.push_back(where + ": beyond frame count");
                return;
            }
            if (!pm.isAllocated(pfn))
                v.push_back(where + ": not allocated");
            if (!kern.page(pfn).inSmuQueue)
                v.push_back(where + ": not flagged inSmuQueue");
            if (sys.numSockets() > 1 && pm.socketOf(pfn) != home)
                v.push_back(where + ": home socket " +
                            std::to_string(pm.socketOf(pfn)) +
                            " but queued on socket " +
                            std::to_string(home));
        });
    };
    {
        unsigned qi = 0;
        for (const system::Socket &sk : sys.socketTopology())
            for (core::FreePageQueue *q : sk.freePageQueues())
                checkFpq(*q, qi++, sk.id);
    }

    // ---- 3. PMSHR <-> in-flight NVMe commands ---------------------------
    for (const system::Socket &sk : sys.socketTopology()) {
        if (!sk.smu)
            continue;
        const core::Pmshr &p = sk.smu->pmshr();
        std::string tag = "socket " + std::to_string(sk.id) + " pmshr";
        std::unordered_set<PAddr> pteAddrs;
        unsigned valid = 0;
        for (unsigned i = 0; i < p.capacity(); ++i) {
            if (!p.validAt(static_cast<int>(i)))
                continue;
            const auto &en = p.entry(static_cast<int>(i));
            ++valid;
            if (!pteAddrs.insert(en.pteAddr).second)
                v.push_back(tag + ": duplicate pte address " +
                            hex(en.pteAddr));
        }
        if (valid != p.occupancy())
            v.push_back(tag + ": occupancy " +
                        std::to_string(p.occupancy()) + " != " +
                        std::to_string(valid) + " valid entries");
        // The host controller numbers devices locally; sk.devices holds
        // the same local order.
        for (unsigned d = 0; d < sk.devices.size(); ++d) {
            if (!sk.smu->hostController().deviceConfigured(d))
                continue;
            std::uint16_t qid = sk.smu->hostController().queueIdOf(d);
            ssd::SsdDevice &dev = *sk.devices[d];
            std::uint64_t cmds = dev.queuePair(qid).sqOccupancy() +
                                 dev.queueInflight(qid);
            if (cmds > p.occupancy())
                v.push_back("socket " + std::to_string(sk.id) +
                            " smu queue on local device " +
                            std::to_string(d) + ": " +
                            std::to_string(cmds) +
                            " commands in flight but only " +
                            std::to_string(p.occupancy()) +
                            " pmshr entries");
        }
    }

    // ---- 4. Frame flag composition --------------------------------------
    for (Pfn pfn = 0; pfn < kern.numFrames(); ++pfn) {
        const os::Page &pg = kern.page(pfn);
        std::string where = "frame " + std::to_string(pfn);
        if (pg.inPageCache && !pg.file)
            v.push_back(where + ": inPageCache without a file");
        if (pg.lruLinked && !pg.inUse)
            v.push_back(where + ": on an LRU list but not inUse");
        if (pg.inSmuQueue && pg.lruLinked)
            v.push_back(where + ": inSmuQueue and on an LRU list");
    }

    // ---- 5. Translation-reach audits -------------------------------------
    // Wide PTEs promise the hardware contiguity; a promotion that lied
    // (or a demotion that missed a stamp) is a silent wrong-data bug,
    // so audit every leaf and every NAPOT window structurally.
    if (sys.config().pageMode != PageMode::off) {
        constexpr VAddr hugeSpan = pmdLeafPages << pageShift;
        constexpr VAddr napotSpan = napotPages << pageShift;
        for (const auto &as : kern.addressSpaces()) {
            for (const auto &vma : as->vmas()) {
                // 2 MB PMD leaves: aligned window, 512-aligned head,
                // coherent compound metadata, page-cache agreement.
                as->pageTable().forEachHugeLeaf(
                    vma->start, vma->end,
                    [&](VAddr win, os::EntryRef ref) {
                        if (win < vma->start)
                            return; // neighbour VMA's leaf
                        std::string where = "as " +
                                            std::to_string(as->id()) +
                                            " 2MB leaf " + hex(win);
                        Entry leaf = ref.value();
                        Pfn head = pfnOf(leaf);
                        if (win % hugeSpan != 0)
                            v.push_back(where +
                                        ": window not 2 MB aligned");
                        if (head % pmdLeafPages != 0) {
                            v.push_back(where + ": head pfn " +
                                        std::to_string(head) +
                                        " not 512-frame aligned");
                            return;
                        }
                        const os::Page &hp = kern.page(head);
                        if (hp.order != pmdLeafShift || hp.tail)
                            v.push_back(where +
                                        ": head frame metadata is not "
                                        "a compound head");
                        if (!hp.lruLinked)
                            v.push_back(where +
                                        ": head frame off the LRU");
                        for (std::uint64_t i = 0; i < pmdLeafPages;
                             ++i) {
                            const os::Page &pg = kern.page(head + i);
                            VAddr va = win + (i << pageShift);
                            if (!pg.inUse || pg.as != as.get() ||
                                pg.vaddr != va) {
                                v.push_back(
                                    where + ": subframe " +
                                    std::to_string(head + i) +
                                    " metadata disagrees with the leaf");
                                break;
                            }
                            if (i > 0 &&
                                (!pg.tail || pg.headPfn != head)) {
                                v.push_back(where + ": subframe " +
                                            std::to_string(head + i) +
                                            " not flagged as a tail");
                                break;
                            }
                            if (i > 0 && pg.lruLinked) {
                                v.push_back(where + ": tail frame " +
                                            std::to_string(head + i) +
                                            " on an LRU list");
                                break;
                            }
                            if (vma->file &&
                                kern.pageCache().lookup(
                                    *vma->file, vma->fileIndexOf(va)) !=
                                    head + i) {
                                v.push_back(
                                    where + ": page cache disagrees at "
                                    "index " +
                                    std::to_string(vma->fileIndexOf(va)));
                                break;
                            }
                        }
                    });

                // NAPOT windows: every stamped PTE implies its whole
                // aligned 16-page window is stamped, present and maps
                // an equally aligned contiguous run.
                std::unordered_set<VAddr> napotWins;
                for (std::uint64_t i = 0; i < vma->numPages(); ++i) {
                    VAddr va = vma->start + (i << pageShift);
                    Entry e = as->pageTable().readPte(va);
                    if (isPresent(e) && hasNapotBit(e) && !isHugeLeaf(e))
                        napotWins.insert(va & ~(napotSpan - 1));
                }
                for (VAddr wb : napotWins) {
                    std::string where = "as " + std::to_string(as->id()) +
                                        " NAPOT window " + hex(wb);
                    if (wb < vma->start ||
                        wb + napotSpan > vma->end) {
                        v.push_back(where + ": crosses the VMA bounds");
                        continue;
                    }
                    Entry base = as->pageTable().readPte(wb);
                    Pfn bpfn = pfnOf(base);
                    if (bpfn % napotPages != 0)
                        v.push_back(where + ": base pfn " +
                                    std::to_string(bpfn) +
                                    " not 16-frame aligned");
                    for (std::uint64_t i = 0; i < napotPages; ++i) {
                        Entry e = as->pageTable().readPte(
                            wb + (i << pageShift));
                        if (!isPresent(e) || !hasNapotBit(e) ||
                            pfnOf(e) != bpfn + i) {
                            v.push_back(
                                where +
                                ": member PTEs are not uniformly "
                                "stamped/contiguous");
                            break;
                        }
                    }
                }
            }
        }
    }

    // ---- 6. Socket topology ---------------------------------------------
    // Every shootdown broadcast bumps every socket's epoch — dropped or
    // deferred remote invalidations change PWC contents, never the
    // epoch — so the epochs must agree at all times, fault plan or not.
    if (sys.numSockets() > 1) {
        const system::Socket &s0 = sys.socketAt(0);
        for (const system::Socket &sk : sys.socketTopology()) {
            if (sk.shootdownEpoch != s0.shootdownEpoch)
                v.push_back("socket " + std::to_string(sk.id) +
                            ": shootdown epoch " +
                            std::to_string(sk.shootdownEpoch) +
                            " != socket 0's " +
                            std::to_string(s0.shootdownEpoch));
            if (sk.shootdownsDropped + sk.shootdownsDelayed >
                sk.remoteShootdownsIn)
                v.push_back("socket " + std::to_string(sk.id) +
                            ": dropped+delayed shootdowns exceed "
                            "remote broadcasts received");
        }
    }

    return v;
}

} // namespace hwdp::testing

/**
 * @file
 * Reverse mapping: from a physical page back to the PTE mapping it.
 *
 * The design supports exactly one mapping per page (fork reverts
 * LBA-augmented PTEs, Section V), so the reverse map is a pair of
 * fields on struct Page plus the logic to tear a mapping down. On
 * eviction of a page belonging to a fast-mmap VMA the PTE is rewritten
 * as an LBA-augmented entry — the step that keeps hardware-handled
 * demand paging possible after page replacement (Section IV-B).
 */

#ifndef HWDP_OS_RMAP_HH
#define HWDP_OS_RMAP_HH

#include <functional>

#include "os/page.hh"
#include "sim/types.hh"

namespace hwdp::sim {
class Serializer;
}

namespace hwdp::os {

class AddressSpace;
class File;

class Rmap
{
  public:
    /** Invoked after a PTE teardown to shoot down stale TLB entries. */
    using ShootdownFn = std::function<void(AddressSpace &, VAddr)>;

    explicit Rmap(ShootdownFn shootdown);

    /** Record that @p page is mapped at (@p as, @p vaddr). */
    void setMapping(Page &page, AddressSpace &as, VAddr vaddr);

    /** Forget the mapping without touching the PTE (munmap path). */
    void clearMapping(Page &page);

    /**
     * Unmap @p page from its address space for eviction: rewrites the
     * PTE (LBA-augmented for fast-mmap VMAs, empty otherwise), fires
     * the TLB shootdown, transfers the PTE dirty bit to the page and
     * clears the reverse mapping.
     *
     * @return true when the page was dirty (needs writeback).
     */
    bool unmapForEviction(Page &page);

    std::uint64_t evictionsToLba() const { return nLbaEvictions; }
    std::uint64_t evictionsPlain() const { return nPlainEvictions; }

    /** Checkpoint the eviction counters (mappings live on Page). */
    void serialize(sim::Serializer &s);

  private:
    ShootdownFn shootdown;
    std::uint64_t nLbaEvictions = 0;
    std::uint64_t nPlainEvictions = 0;
};

} // namespace hwdp::os

#endif // HWDP_OS_RMAP_HH

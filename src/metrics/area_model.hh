/**
 * @file
 * McPAT-style area estimation for the SMU (Section VI-D).
 *
 * The paper sizes the SMU with McPAT's SRAM and register models at
 * 22 nm: a 32-entry, 300-bit fully-associative CAM (the PMSHR)
 * dominates at 87.6% of the unit; eight 352-bit NVMe descriptor
 * register sets take 6.7%; the 16-entry free-page prefetch buffer
 * 3.7%; miscellaneous registers 2.0% — 0.014 mm^2 total, 0.004% of a
 * 354 mm^2 Xeon E5-2640 v3 die. This module reimplements that
 * estimation with per-bit area coefficients calibrated to land on the
 * same budget, so the components can be resized (the PMSHR ablation)
 * and re-priced.
 */

#ifndef HWDP_METRICS_AREA_MODEL_HH
#define HWDP_METRICS_AREA_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace hwdp::metrics {

struct AreaComponent
{
    std::string name;
    double areaMm2;
};

class AreaModel
{
  public:
    /** Technology node in nm (area scales quadratically). */
    explicit AreaModel(double tech_nm = 22.0);

    /**
     * Fully-associative CAM: storage cells plus per-entry match logic
     * (comparators on the tag bits make CAM cells ~2x SRAM cells).
     */
    double camArea(unsigned entries, unsigned bits_per_entry,
                   unsigned tag_bits) const;

    /** Plain register/flip-flop storage. */
    double registerArea(unsigned bits) const;

    /** SRAM array (the prefetch buffer). */
    double sramArea(unsigned entries, unsigned bits_per_entry) const;

    /**
     * Price the SMU configuration the paper describes.
     * @param pmshr_entries PMSHR size (32 in the paper).
     * @param devices       NVMe descriptor register sets (8).
     * @param prefetch_entries Free-page prefetch buffer entries (16).
     */
    std::vector<AreaComponent> smuArea(unsigned pmshr_entries = 32,
                                       unsigned devices = 8,
                                       unsigned prefetch_entries = 16)
        const;

    /** Sum of smuArea components. */
    double smuTotalMm2(unsigned pmshr_entries = 32, unsigned devices = 8,
                       unsigned prefetch_entries = 16) const;

    /** Reference die: Xeon E5-2640 v3 at 22 nm. */
    static constexpr double xeonDieMm2 = 354.0;

  private:
    double techNm;
    double scale; // (tech/22)^2

    // Per-bit areas at 22 nm, calibrated to the paper's budget
    // (PMSHR 87.6% / descriptors 6.7% / prefetch 3.7% / misc 2.0% of
    // 0.014 mm^2).
    static constexpr double sramBitUm2 = 0.253;
    static constexpr double camBitUm2 = 0.95;
    static constexpr double camMatchPortUm2PerTagBit = 1.70;
    static constexpr double registerBitUm2 = 0.333;

    /** PMSHR match width: the PTE physical address tag. */
    static constexpr unsigned pmshrTagBits = 58;

    /** Control/state registers outside the named structures. */
    static constexpr unsigned miscBits = 840;
};

} // namespace hwdp::metrics

#endif // HWDP_METRICS_AREA_MODEL_HH

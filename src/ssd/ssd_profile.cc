#include "ssd/ssd_profile.hh"

#include "sim/logging.hh"

namespace hwdp::ssd {

SsdProfile
zssdProfile()
{
    SsdProfile p;
    p.name = "zssd";
    p.cmdFetch = nanoseconds(500);
    p.readMedia = nanoseconds(8900);
    p.writeMedia = microseconds(16.0);
    p.xfer4k = nanoseconds(1300);
    p.cqeWrite = nanoseconds(200);
    p.channels = 8;
    p.mediaCv = 0.06;
    return p; // unloaded 4 KB read = 10.9 us
}

SsdProfile
optaneSsdProfile()
{
    SsdProfile p;
    p.name = "optane_ssd";
    p.cmdFetch = nanoseconds(500);
    p.readMedia = nanoseconds(4500);
    p.writeMedia = microseconds(5.0);
    p.xfer4k = nanoseconds(1300);
    p.cqeWrite = nanoseconds(200);
    p.channels = 16;
    p.mediaCv = 0.03;
    return p; // unloaded 4 KB read = 6.5 us
}

SsdProfile
optanePmmProfile()
{
    SsdProfile p;
    p.name = "optane_pmm";
    p.cmdFetch = nanoseconds(300);
    p.readMedia = nanoseconds(1000);
    p.writeMedia = nanoseconds(1400);
    p.xfer4k = nanoseconds(700);
    p.cqeWrite = nanoseconds(100);
    p.channels = 24;
    p.mediaCv = 0.02;
    return p; // unloaded 4 KB read = 2.1 us
}

SsdProfile
nvmeFlashProfile()
{
    SsdProfile p;
    p.name = "nvme_flash";
    p.cmdFetch = nanoseconds(500);
    p.readMedia = microseconds(78.0);
    p.writeMedia = microseconds(250.0);
    p.xfer4k = nanoseconds(1300);
    p.cqeWrite = nanoseconds(200);
    p.channels = 8;
    p.mediaCv = 0.15;
    return p; // ~80 us read
}

SsdProfile
sataSsdProfile()
{
    SsdProfile p;
    p.name = "sata_ssd";
    p.cmdFetch = microseconds(5.0); // AHCI protocol overhead
    p.readMedia = microseconds(90.0);
    p.writeMedia = microseconds(300.0);
    p.xfer4k = microseconds(7.0); // 600 MB/s link
    p.cqeWrite = microseconds(1.0);
    p.channels = 4;
    p.mediaCv = 0.2;
    return p; // ~100 us read
}

SsdProfile
hddProfile()
{
    SsdProfile p;
    p.name = "hdd";
    p.cmdFetch = microseconds(10.0);
    p.readMedia = milliseconds(9.5); // seek + rotational latency
    p.writeMedia = milliseconds(9.5);
    p.xfer4k = microseconds(25.0);
    p.cqeWrite = microseconds(1.0);
    p.channels = 1;
    p.mediaCv = 0.35;
    return p; // ~10 ms access
}

SsdProfile
profileByName(const std::string &name)
{
    if (name == "zssd")
        return zssdProfile();
    if (name == "optane_ssd")
        return optaneSsdProfile();
    if (name == "optane_pmm")
        return optanePmmProfile();
    if (name == "nvme_flash")
        return nvmeFlashProfile();
    if (name == "sata_ssd")
        return sataSsdProfile();
    if (name == "hdd")
        return hddProfile();
    fatal("unknown SSD profile '", name, "'");
}

} // namespace hwdp::ssd

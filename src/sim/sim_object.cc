#include "sim/sim_object.hh"

namespace hwdp::sim {

SimObject::SimObject(std::string name, EventQueue &eq)
    : eq(eq), _name(name), _stats(name)
{
}

SimObject::~SimObject() = default;

} // namespace hwdp::sim

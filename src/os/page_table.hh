/**
 * @file
 * Four-level x86-64-style page table with LBA-augmented entries.
 *
 * Levels follow Linux naming: PGD -> PUD -> PMD -> PT(E). Each table
 * has 512 eight-byte entries and a unique simulated physical address,
 * so components that operate on *entry addresses* — the SMU's page
 * table updater receives the PUD-entry, PMD-entry and PTE addresses
 * with every page-miss request (Section III-C) — have real, unique
 * keys to work with.
 */

#ifndef HWDP_OS_PAGE_TABLE_HH
#define HWDP_OS_PAGE_TABLE_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <memory>

#include "os/pte.hh"
#include "sim/types.hh"

namespace hwdp::sim {
class Serializer;
}

namespace hwdp::os {

/** Levels of the tree, leaf first. */
enum class PtLevel : unsigned { pt = 0, pmd = 1, pud = 2, pgd = 3 };

/** A reference to one entry: its storage and its simulated address. */
struct EntryRef
{
    pte::Entry *slot = nullptr;
    PAddr addr = 0;

    bool valid() const { return slot != nullptr; }
    pte::Entry value() const { return *slot; }
    void write(pte::Entry e) const { *slot = e; }
};

/** The three entry references a page-miss request carries to the SMU. */
struct WalkRefs
{
    EntryRef pud;
    EntryRef pmd;
    EntryRef pte;
};

class PageTable
{
  public:
    static constexpr unsigned entriesPerTable = 512;
    static constexpr unsigned bitsPerLevel = 9;

    PageTable();
    ~PageTable();

    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;

    /**
     * Read the leaf PTE for @p vaddr; returns 0 (not-present,
     * OS-handled) when intermediate tables are absent.
     */
    pte::Entry readPte(VAddr vaddr) const;

    /**
     * Write the leaf PTE, creating intermediate tables as needed
     * (the fast-mmap population path allocates the whole tree,
     * Section IV-B).
     */
    void writePte(VAddr vaddr, pte::Entry e);

    /**
     * Write @p n consecutive leaf PTEs starting at @p start, where
     * fn(i) produces the entry for page i. Exactly equivalent to n
     * writePte calls — same tree structure, same table-allocation
     * order — but descends the tree once per 512-entry leaf table
     * instead of once per page, so the bulk mmap-population sweeps
     * (a million pages for the paper-scale datasets) stop paying
     * four levels of pointer chasing per page.
     */
    template <typename Fn>
    void writePteRun(VAddr start, std::uint64_t n, Fn &&fn)
    {
        std::uint64_t i = 0;
        while (i < n) {
            VAddr va = start + i * pageSize;
            Table *t = root.get();
            for (int level = 3; level >= 1; --level) {
                t = childTable(
                    *t, levelIndex(va, static_cast<PtLevel>(level)),
                    true);
            }
            unsigned idx = levelIndex(va, PtLevel::pt);
            std::uint64_t chunk = std::min<std::uint64_t>(
                n - i, entriesPerTable - idx);
            for (std::uint64_t k = 0; k < chunk; ++k)
                t->e[idx + k] = fn(i + k);
            i += chunk;
        }
    }

    /**
     * Get references to the PUD entry, PMD entry and PTE covering
     * @p vaddr, creating tables when @p allocate. Refs are invalid
     * when tables are absent and !allocate.
     */
    WalkRefs walkRefs(VAddr vaddr, bool allocate);

    /** Set the LBA bit on the PMD and PUD entries covering @p vaddr. */
    void markUpperLba(VAddr vaddr);

    // ---- 2 MB PMD leaves (pageMode != off) ---------------------------
    /**
     * Reference to the PMD entry covering @p vaddr (the slot a 2 MB
     * leaf occupies), creating upper tables when @p allocate. Invalid
     * when the PUD/PMD path is absent and !allocate.
     */
    EntryRef hugeLeafRef(VAddr vaddr, bool allocate);

    /**
     * Install @p leaf (pte::makeHugeLeaf) as the PMD entry covering
     * @p vaddr. Any child PT kept from an earlier demotion stays
     * allocated (entry addresses are forever) but is zeroed and
     * unreachable while the leaf is live.
     */
    void writeHugeLeaf(VAddr vaddr, pte::Entry leaf);

    /**
     * Demote the 2 MB leaf covering @p vaddr into a child PT of 512
     * per-4 KB PTEs with the leaf's flags and consecutive frames.
     */
    void splitHugeLeaf(VAddr vaddr);

    /** Invoke @p fn for every 2 MB leaf whose window intersects
     * [start, end), with the window base address and the PMD ref. */
    void forEachHugeLeaf(VAddr start, VAddr end,
                         const std::function<void(VAddr, EntryRef)> &fn);

    /**
     * kpted scan over [start, end): visits only subtrees whose upper
     * -level LBA bits are set, clearing those bits before descending
     * (Section IV-C), then invokes @p fn for every PTE with both
     * present and LBA bits set.
     *
     * @param fn            Called with (vaddr, EntryRef of the PTE).
     * @param entries_visited Out: upper+leaf entries inspected, the
     *                      scan-cost metric for the kpted ablation.
     * @return number of PTEs synchronised (fn invocations).
     */
    std::uint64_t scanUnsynced(VAddr start, VAddr end,
                               const std::function<void(VAddr,
                                                        EntryRef)> &fn,
                               std::uint64_t *entries_visited = nullptr);

    /**
     * Exhaustive variant that ignores upper-level LBA bits (the
     * baseline the ablation compares against).
     */
    std::uint64_t scanUnsyncedFull(VAddr start, VAddr end,
                                   const std::function<void(VAddr,
                                                            EntryRef)> &fn,
                                   std::uint64_t *entries_visited = nullptr);

    /**
     * Iterate every populated leaf PTE in [start, end) (used by
     * munmap and fork-revert).
     */
    void forEachPte(VAddr start, VAddr end,
                    const std::function<void(VAddr, EntryRef)> &fn);

    /** Number of table pages currently allocated (space accounting). */
    std::uint64_t tablePages() const { return nTables; }

    /**
     * Checkpoint the tree *structurally*: every table's simulated
     * base address rides along with its entries, because entry
     * addresses key the SMU's page-table updater and the walkers'
     * PWCs — a restored tree must hand out the identical addresses.
     * Tables present in the blob but absent in the (identically
     * booted, never-run) target are created with their recorded
     * bases; a target table whose base disagrees is a boot mismatch.
     */
    void serialize(sim::Serializer &s);

  private:
    struct Table
    {
        std::array<pte::Entry, entriesPerTable> e{};
        std::array<std::unique_ptr<Table>, entriesPerTable> child{};
        PAddr base = 0;
    };

    std::unique_ptr<Table> root; // the PGD
    std::uint64_t nTables = 0;
    PAddr nextTableBase;

    Table *childTable(Table &t, unsigned idx, bool allocate);

    void serializeTable(sim::Serializer &s, Table &t);

    static unsigned levelIndex(VAddr vaddr, PtLevel level);

    std::uint64_t scanImpl(VAddr start, VAddr end, bool guided,
                           const std::function<void(VAddr, EntryRef)> &fn,
                           std::uint64_t *entries_visited);
};

} // namespace hwdp::os

#endif // HWDP_OS_PAGE_TABLE_HH

#include "os/file_system.hh"

#include "os/pte.hh"
#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::os {

void
FileSystem::serialize(sim::Serializer &s)
{
    s.section("filesystem");
    rng.serialize(s);
    s.io(nextLba);
    std::uint64_t n = files.size();
    s.check(n, "file count");
    for (auto &f : files) {
        s.check(f->fid, "file id");
        std::uint64_t pages = f->blockMap.size();
        s.check(pages, "file size");
        s.ioRange(f->blockMap.begin(), f->blockMap.end());
        s.io(f->marked);
    }
}

File::File(std::uint32_t id, std::string name, std::uint64_t n_pages,
           BlockDeviceId bdev)
    : fid(id), fname(std::move(name)), bdev(bdev), blockMap(n_pages, 0)
{
}

Lba
File::lbaOf(std::uint64_t index) const
{
    if (index >= blockMap.size())
        panic("file '", fname, "': page index ", index, " beyond EOF");
    return blockMap[index];
}

FileSystem::FileSystem(sim::Rng rng, std::uint64_t extent_pages)
    : rng(rng), extentPages(extent_pages)
{
    if (extent_pages == 0)
        fatal("file system: extent size must be positive");
}

File *
FileSystem::createFile(const std::string &name, std::uint64_t n_pages,
                       BlockDeviceId bdev)
{
    if (n_pages == 0)
        fatal("file system: cannot create empty file '", name, "'");
    if (lookup(name))
        fatal("file system: file '", name, "' already exists");
    auto id = static_cast<std::uint32_t>(files.size());
    files.push_back(std::make_unique<File>(id, name, n_pages, bdev));
    File &f = *files.back();
    allocateExtents(f);
    return &f;
}

void
FileSystem::allocateExtents(File &f)
{
    std::uint64_t idx = 0;
    while (idx < f.blockMap.size()) {
        // Extent lengths vary around the mean; seams skip a few blocks
        // to model allocation by other files.
        std::uint64_t len = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   rng.normal(static_cast<double>(extentPages),
                              static_cast<double>(extentPages) / 4.0)));
        len = std::min(len, f.blockMap.size() - idx);
        for (std::uint64_t i = 0; i < len; ++i)
            f.blockMap[idx + i] = nextLba + i;
        nextLba += len + rng.range(16);
        idx += len;
        // The top LBA is reserved as the anonymous zero-fill marker.
        if (nextLba >= pte::zeroFillLba)
            fatal("file system: device LBA space exhausted");
    }
}

File *
FileSystem::lookup(const std::string &name)
{
    for (auto &f : files) {
        if (f->name() == name)
            return f.get();
    }
    return nullptr;
}

File *
FileSystem::byId(std::uint32_t id)
{
    if (id >= files.size())
        return nullptr;
    return files[id].get();
}

void
FileSystem::remapPage(File &file, std::uint64_t index)
{
    if (index >= file.blockMap.size())
        panic("remapPage: index ", index, " beyond EOF of '", file.name(),
              "'");
    file.blockMap[index] = nextLba;
    nextLba += 1 + rng.range(4);
    if (onRemap)
        onRemap(file, index, file.blockMap[index]);
}

} // namespace hwdp::os

/**
 * @file
 * Fundamental simulation types and time-unit helpers.
 *
 * The simulator models time in integer ticks of one picosecond, the
 * same convention gem5 uses. All latency parameters elsewhere in the
 * code are expressed with the helpers below so that the units are
 * visible at the point of use.
 */

#ifndef HWDP_SIM_TYPES_HH
#define HWDP_SIM_TYPES_HH

#include <cstdint>

namespace hwdp {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A count of CPU clock cycles (frequency-dependent). */
using Cycles = std::uint64_t;

/** Virtual address of a simulated process. */
using VAddr = std::uint64_t;

/** Physical (host DRAM) address in the simulated machine. */
using PAddr = std::uint64_t;

/** Logical block address on a simulated storage device. */
using Lba = std::uint64_t;

/** Physical frame number (PAddr >> pageShift). */
using Pfn = std::uint64_t;

/** The maximum representable tick; used as "never scheduled". */
inline constexpr Tick maxTick = ~Tick(0);

/**
 * Privilege mode of simulated execution. The paper's indirect-cost
 * analysis hinges on separating user-mode microarchitectural behaviour
 * from the kernel activity that pollutes it, so every cache and branch
 * predictor access is attributed to one of these.
 */
enum class ExecMode { user, kernel };

/** Page geometry: the design targets 4 KB pages (Section V). */
inline constexpr unsigned pageShift = 12;
inline constexpr std::uint64_t pageSize = 1ULL << pageShift;
inline constexpr std::uint64_t pageOffsetMask = pageSize - 1;

/**
 * Translation-reach mode (MachineConfig::pageMode). `off` keeps the
 * 4 KB-only machine byte-identical to its pre-huge-page behaviour.
 * The other modes grow reach without changing what the workloads see:
 *
 *  - thp:      2 MB transparent huge pages on the OS fault path (PMD
 *              leaves) when a naturally aligned 512-frame run is free.
 *  - napot:    SVNAPOT-style 64 KB contiguous-PTE ranges stamped on
 *              demand-paged 4 KB pages as they become OS-visible, so
 *              HWDP keeps its fault granularity but gains TLB reach.
 *  - coalesce: both of the above plus a Mosaic-style background
 *              kcoalesced pass that promotes 4 KB runs that happened
 *              to land contiguously, with demotion on reclaim/munmap.
 */
enum class PageMode : unsigned { off = 0, thp, napot, coalesce };

/** 64 KB NAPOT range: 16 contiguous, naturally aligned 4 KB pages. */
inline constexpr unsigned napotShift = 4;
inline constexpr std::uint64_t napotPages = 1ULL << napotShift;

/** 2 MB PMD leaf: 512 contiguous, naturally aligned 4 KB frames. */
inline constexpr unsigned pmdLeafShift = 9;
inline constexpr std::uint64_t pmdLeafPages = 1ULL << pmdLeafShift;

/** Cache-line geometry used by the tag-array models. */
inline constexpr unsigned lineShift = 6;
inline constexpr std::uint64_t lineSize = 1ULL << lineShift;

/** One picosecond is one tick. */
inline constexpr Tick tickPerPs = 1;

/** Convert common time units to ticks. */
constexpr Tick
nanoseconds(double ns)
{
    return static_cast<Tick>(ns * 1000.0 + 0.5);
}

constexpr Tick
microseconds(double us)
{
    return static_cast<Tick>(us * 1000.0 * 1000.0 + 0.5);
}

constexpr Tick
milliseconds(double ms)
{
    return static_cast<Tick>(ms * 1000.0 * 1000.0 * 1000.0 + 0.5);
}

constexpr Tick
seconds(double s)
{
    return static_cast<Tick>(s * 1e12 + 0.5);
}

/** Convert ticks back to floating-point time units for reporting. */
constexpr double
toNanoseconds(Tick t)
{
    return static_cast<double>(t) / 1e3;
}

constexpr double
toMicroseconds(Tick t)
{
    return static_cast<double>(t) / 1e6;
}

constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / 1e12;
}

} // namespace hwdp

#endif // HWDP_SIM_TYPES_HH

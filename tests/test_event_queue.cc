/**
 * @file
 * Unit tests for the discrete-event core.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

using namespace hwdp;
using namespace hwdp::sim;

namespace {

class RecordingEvent : public Event
{
  public:
    RecordingEvent(std::vector<int> &log, int id)
        : Event("rec" + std::to_string(id)), log(log), id(id)
    {
    }
    void process() override { log.push_back(id); }

  private:
    std::vector<int> &log;
    int id;
};

} // namespace

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.size(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ProcessesInTickOrder)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2), c(log, 3);
    eq.schedule(&b, 200);
    eq.schedule(&a, 100);
    eq.schedule(&c, 300);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 300u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2), c(log, 3);
    eq.schedule(&a, 50);
    eq.schedule(&b, 50);
    eq.schedule(&c, 50);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, ScheduledFlagTracksLifecycle)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    EXPECT_FALSE(a.scheduled());
    eq.schedule(&a, 10);
    EXPECT_TRUE(a.scheduled());
    EXPECT_EQ(a.when(), 10u);
    eq.run();
    EXPECT_FALSE(a.scheduled());
}

TEST(EventQueue, DoubleSchedulePanics)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    eq.schedule(&a, 10);
    EXPECT_THROW(eq.schedule(&a, 20), PanicError);
    // Leave the event idle: destroying it while scheduled is itself a
    // (debug-checked) bug.
    eq.deschedule(&a);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2);
    eq.schedule(&a, 100);
    eq.run();
    EXPECT_THROW(eq.schedule(&b, 50), PanicError);
}

TEST(EventQueue, DescheduleRemovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2}));
}

TEST(EventQueue, DescheduleIdlePanics)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    EXPECT_THROW(eq.deschedule(&a), PanicError);
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1), b(log, 2);
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);
    eq.reschedule(&a, 30);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{2, 1}));
}

TEST(EventQueue, PostedOneShotsFireAndRecycle)
{
    EventQueue eq;
    int fired = 0;
    eq.post(10, [&] { ++fired; });
    eq.postIn(20, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.poolStats().released, 2u);
}

TEST(EventQueue, RescheduleAcceptsUnscheduledEvent)
{
    // Regression: reschedule is deschedule-if-scheduled + schedule,
    // so an idle event is simply scheduled.
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent a(log, 1);
    EXPECT_FALSE(a.scheduled());
    eq.reschedule(&a, 40);
    EXPECT_TRUE(a.scheduled());
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1}));
    // And again after it has fired (idle once more).
    eq.reschedule(&a, 80);
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 1}));
}

TEST(EventQueue, DescheduledEventCanBeDestroyedImmediately)
{
    // Regression for the skipDead() dangling-pointer hazard: a
    // descheduled far-future event may be destroyed straight away;
    // the queue must drop its stale entry without touching it.
    EventQueue eq;
    std::vector<int> log;
    auto *far = new RecordingEvent(log, 9);
    eq.schedule(far, seconds(1.0)); // far beyond the ring horizon
    RecordingEvent near_ev(log, 1);
    eq.schedule(&near_ev, 10);
    eq.deschedule(far);
    delete far; // entry for seq still sits in the far heap
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1}));
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RunHonoursLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.post(10, [&] { ++fired; });
    eq.post(100, [&] { ++fired; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunWhileStopsOnCondition)
{
    EventQueue eq;
    int fired = 0;
    for (Tick t = 10; t <= 100; t += 10)
        eq.post(t, [&] { ++fired; });
    eq.runWhile([&] { return fired < 3; });
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    std::vector<Tick> ticks;
    std::function<void()> chain = [&] {
        ticks.push_back(eq.now());
        if (ticks.size() < 5)
            eq.postIn(7, chain);
    };
    eq.post(1, chain);
    eq.run();
    EXPECT_EQ(ticks, (std::vector<Tick>{1, 8, 15, 22, 29}));
}

TEST(EventQueue, ProcessedCountAccumulates)
{
    EventQueue eq;
    for (int i = 0; i < 10; ++i)
        eq.post(i + 1, [] {});
    eq.run();
    EXPECT_EQ(eq.processedCount(), 10u);
}

TEST(EventQueue, ZeroDelayFiresAtCurrentTick)
{
    EventQueue eq;
    eq.post(5, [] {});
    eq.run();
    Tick before = eq.now();
    bool fired = false;
    eq.postIn(0, [&] { fired = true; });
    eq.run();
    EXPECT_TRUE(fired);
    EXPECT_EQ(eq.now(), before);
}

// ---- Two-tier scheduler (near-horizon ring + far heap) --------------

TEST(TwoTier, FarEventsBeyondHorizonStillFireInOrder)
{
    EventQueue eq;
    std::vector<int> log;
    RecordingEvent near_a(log, 1), far_b(log, 2), far_c(log, 3);
    // Beyond the ~8.4 us ring horizon -> far heap.
    eq.schedule(&far_c, milliseconds(2.0));
    eq.schedule(&far_b, milliseconds(1.0));
    eq.schedule(&near_a, nanoseconds(5.0));
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), milliseconds(2.0));
}

TEST(TwoTier, SameTickFifoAcrossRingHeapBoundary)
{
    // An event scheduled long in advance lands in the far heap; a
    // second event for the same tick scheduled shortly before lands in
    // the ring. Scheduling (seq) order must still decide the tie.
    EventQueue eq;
    std::vector<int> log;
    const Tick w = milliseconds(1.0);
    RecordingEvent first(log, 1), second(log, 2);
    eq.schedule(&first, w); // far heap (horizon is ~8.4 us)
    eq.post(w - nanoseconds(100.0),
            [&] { eq.schedule(&second, w); }); // ring by then
    eq.run();
    EXPECT_TRUE(second.scheduled() == false);
    EXPECT_EQ(log, (std::vector<int>{1, 2}));
}

TEST(TwoTier, RunLimitStopsAcrossBothTiers)
{
    EventQueue eq;
    int fired = 0;
    eq.post(nanoseconds(1.0), [&] { ++fired; });        // ring
    eq.post(milliseconds(5.0), [&] { ++fired; });       // far heap
    eq.run(microseconds(1.0));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), microseconds(1.0));
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), milliseconds(5.0));
}

TEST(TwoTier, DenseSameBucketBurstKeepsFifo)
{
    // Many events in one bucket window exercise the per-bucket heap.
    EventQueue eq;
    std::vector<int> log;
    std::vector<std::unique_ptr<RecordingEvent>> evs;
    for (int i = 0; i < 256; ++i) {
        evs.push_back(std::make_unique<RecordingEvent>(log, i));
        eq.schedule(evs.back().get(), 500); // same tick, same bucket
    }
    eq.run();
    ASSERT_EQ(log.size(), 256u);
    for (int i = 0; i < 256; ++i)
        EXPECT_EQ(log[i], i);
}

TEST(TwoTier, WrapAroundKeepsTickOrder)
{
    // March time far enough that ring buckets wrap several times.
    EventQueue eq;
    std::vector<Tick> fired;
    const Tick step = microseconds(3.0); // ~1/3 of the ring horizon
    std::function<void()> chain = [&] {
        fired.push_back(eq.now());
        if (fired.size() < 64)
            eq.postIn(step, chain);
    };
    eq.post(1, chain);
    eq.run();
    ASSERT_EQ(fired.size(), 64u);
    for (std::size_t i = 1; i < fired.size(); ++i)
        EXPECT_EQ(fired[i], fired[i - 1] + step);
}

TEST(TwoTier, InterleavedNearAndFarRespectGlobalOrder)
{
    EventQueue eq;
    std::vector<int> log;
    std::vector<std::unique_ptr<RecordingEvent>> evs;
    auto add = [&](int id, Tick when) {
        evs.push_back(std::make_unique<RecordingEvent>(log, id));
        eq.schedule(evs.back().get(), when);
    };
    add(4, milliseconds(1.0));    // far
    add(2, microseconds(2.0));    // ring
    add(1, nanoseconds(50.0));    // ring
    add(5, milliseconds(2.0));    // far
    add(3, microseconds(7.0));    // ring
    eq.run();
    EXPECT_EQ(log, (std::vector<int>{1, 2, 3, 4, 5}));
}

/**
 * @file
 * Hardware page-table walker, extended for LBA-augmented PTEs.
 *
 * On a TLB miss the walker reads the four levels of the tree through
 * the cache hierarchy. The extension (Section III-B): when the leaf
 * PTE has present=0 and LBA=1 the walker does not raise an exception —
 * it classifies the access as a hardware-handled page miss and hands
 * the MMU the three entry references plus the <SID, device, LBA>
 * triple the SMU request needs.
 *
 * The walker carries a small page-walk cache (PWC) over the upper
 * levels, the MMU-cache structure real walkers (and gem5's walker
 * model) rely on: PUD and PMD entry reads that hit the PWC skip their
 * cache-hierarchy charge entirely — upper entries cover 1 GB / 2 MB
 * regions, so a handful of entries captures nearly all walks. The PGD
 * entry is modelled as always cached (no charge), and the leaf PTE
 * read is always charged. The PWC is keyed by entry physical address
 * and is timing-only — the walker still reads the live page table, so
 * a stale PWC entry can never produce a wrong translation — but it is
 * shot down alongside the TLB when kpted/reclaim rewrite PTEs, the
 * coherence a real design needs.
 */

#ifndef HWDP_CPU_WALKER_HH
#define HWDP_CPU_WALKER_HH

#include <vector>

#include "mem/cache_hierarchy.hh"
#include "os/page_table.hh"
#include "os/vma.hh"
#include "sim/types.hh"

namespace hwdp::sim {
class Serializer;
}

namespace hwdp::cpu {

class Walker
{
  public:
    enum class Classification {
        present,  ///< Translation available; PTE (or a 2 MB PMD
                  ///  leaf — test pte::isHugeLeaf) returned.
        osFault,  ///< present=0, LBA=0: raise an exception.
        hwMiss,   ///< present=0, LBA=1: send to the SMU.
    };

    struct Outcome
    {
        Classification kind = Classification::osFault;
        Tick latency = 0;        ///< Walk latency (cache accesses).
        os::pte::Entry entry = 0;
        os::WalkRefs refs;       ///< Valid for present/hwMiss.
    };

    /**
     * @param pwc_entries Fully-associative page-walk-cache capacity
     *                    over PUD/PMD entries; 0 disables the PWC.
     */
    Walker(mem::CacheHierarchy &caches, unsigned phys_core,
           Tick cycle_period, unsigned pwc_entries = 16);

    /**
     * Walk the tree for @p vaddr, charging cache accesses. Sets the
     * accessed bit on a present PTE (the hardware A-bit update).
     */
    Outcome walk(os::AddressSpace &as, VAddr vaddr);

    /** Drop the PWC entry caching the upper entry at @p entry_addr. */
    void pwcInvalidate(PAddr entry_addr);

    /** Drop every PWC entry (address-space-wide shootdowns, tests). */
    void pwcFlush();

    /**
     * True when no PWC entry is valid — shootdown broadcasts check
     * this before paying for a walk of the invalidation targets (most
     * cores never walk and keep an empty PWC).
     */
    bool pwcEmpty() const { return nPwcValid == 0; }

    std::uint64_t walks() const { return nWalks; }
    std::uint64_t pwcHits() const { return nPwcHits; }
    std::uint64_t pwcMisses() const { return nPwcMisses; }

    /**
     * NUMA model for walk steps. Page-table pages are kernel
     * allocations interleaved across sockets (the entry address —
     * page-granular — picks the node); a walk step that misses the
     * LLC and lands on a remote node pays @p remote_extra cycles.
     * Default (n_sockets 1) charges nothing extra.
     */
    void
    setNuma(unsigned my_socket, unsigned n_sockets, Cycles remote_extra)
    {
        mySocket = my_socket;
        numaSockets = n_sockets;
        numaRemoteExtra = remote_extra;
    }

    /** Walk steps that paid the remote-node premium. */
    std::uint64_t remoteWalkSteps() const { return nRemoteSteps; }

    /** Checkpoint the PWC contents, recency clock and counters. */
    void serialize(sim::Serializer &s);

  private:
    struct PwcEntry
    {
        PAddr addr = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    mem::CacheHierarchy &caches;
    unsigned physCore;
    Tick period;
    std::vector<PwcEntry> pwc;
    std::uint64_t pwcClock = 0;
    unsigned nPwcValid = 0;
    std::uint64_t nWalks = 0;
    std::uint64_t nPwcHits = 0;
    std::uint64_t nPwcMisses = 0;

    unsigned mySocket = 0;
    unsigned numaSockets = 1;
    Cycles numaRemoteExtra = 0;
    std::uint64_t nRemoteSteps = 0; ///< Serialized only when sockets > 1.

    /** True (and recency bumped) when @p addr is PWC-resident. */
    bool pwcLookup(PAddr addr);
    void pwcInsert(PAddr addr);
};

} // namespace hwdp::cpu

#endif // HWDP_CPU_WALKER_HH

#include "core/kpted.hh"

#include "sim/serialize.hh"

namespace hwdp::core {

void
Kpted::serialize(sim::Serializer &s)
{
    s.section("kpted");
    KThread::serialize(s);
    s.check(guided, "kpted guided-scan flag");
    s.io(nSynced);
    s.io(nVisited);
    // Guarded so single-socket blobs keep the pre-NUMA layout.
    if (crossSocketIpis > 0)
        s.io(nIpis);
}

Kpted::Kpted(os::Kernel &kernel, HwdpOsSupport &support, unsigned core,
             Tick period, bool guided_scan)
    : os::KThread("kpted", core, kernel.scheduler(), kernel.eventQueue(),
                  period),
      kernel(kernel), support(support), guided(guided_scan)
{
}

std::pair<std::uint64_t, std::uint64_t>
Kpted::scan(os::AddressSpace &as, VAddr lo, VAddr hi)
{
    std::uint64_t visited = 0;
    auto fn = [this, &as](VAddr va, os::EntryRef ref) {
        kernel.syncHardwareHandledPte(as, va, ref);
    };
    std::uint64_t synced =
        guided ? as.pageTable().scanUnsynced(lo, hi, fn, &visited)
               : as.pageTable().scanUnsyncedFull(lo, hi, fn, &visited);
    nSynced += synced;
    nVisited += visited;
    return {synced, visited};
}

void
Kpted::batch(std::function<void()> done)
{
    std::uint64_t synced = 0;
    std::uint64_t visited = 0;
    for (const FastVma &fv : support.fastVmas()) {
        auto [s, v] = scan(*fv.as, fv.vma->start, fv.vma->end);
        synced += s;
        visited += v;
    }

    unsigned phys = sched.physCoreOf(core());
    Tick dur = sched.kernelExec().runBatch(
        phys, os::phases::kptedScanEntry, visited);
    dur += sched.kernelExec().runBatch(phys, os::phases::kptedPerPage,
                                       synced);
    // One batched shootdown round covers every PTE this pass rewrote.
    if (crossSocketIpis > 0 && synced > 0) {
        dur += sched.kernelExec().runBatch(
            phys, os::phases::shootdownIpi, crossSocketIpis);
        nIpis += crossSocketIpis;
    }
    eq.postIn(dur, std::move(done), "kpted.batch");
}

void
Kpted::syncRange(os::AddressSpace &as, VAddr lo, VAddr hi,
                 unsigned caller_core, std::function<void()> done)
{
    auto [synced, visited] = scan(as, lo, hi);
    unsigned phys = sched.physCoreOf(caller_core);
    Tick dur = sched.kernelExec().runBatch(
        phys, os::phases::kptedScanEntry, visited);
    dur += sched.kernelExec().runBatch(phys, os::phases::kptedPerPage,
                                       synced);
    if (crossSocketIpis > 0 && synced > 0) {
        dur += sched.kernelExec().runBatch(
            phys, os::phases::shootdownIpi, crossSocketIpis);
        nIpis += crossSocketIpis;
    }
    eq.postIn(dur, std::move(done), "kpted.syncRange");
}

} // namespace hwdp::core

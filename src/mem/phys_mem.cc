#include "mem/phys_mem.hh"

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::mem {

void
PhysMem::serialize(sim::Serializer &s)
{
    s.section("physmem");
    s.check(nFrames, "physmem frame count");
    s.check(reservedFrames, "physmem reserved frames");
    // One list per socket in index order: a single-socket blob is
    // byte-identical to the pre-NUMA single-list layout.
    for (auto &l : freeLists)
        s.io(l);
    if (s.loading()) {
        allocated.assign(nFrames, true);
        for (const auto &l : freeLists)
            for (Pfn pfn : l)
                allocated[pfn] = false;
        // Reserved frames are the highest-numbered and never handed
        // out; keep their flags clear as at construction.
        for (std::uint64_t pfn = nFrames - reservedFrames; pfn < nFrames;
             ++pfn)
            allocated[pfn] = false;
    }
    stats().serialize(s);
}

PhysMem::PhysMem(sim::EventQueue &eq, std::uint64_t n_frames,
                 std::uint64_t reserved, unsigned n_sockets)
    : sim::SimObject("physmem", eq), nFrames(n_frames),
      reservedFrames(reserved), nSockets(n_sockets),
      allocated(n_frames, false),
      allocs(stats().counter("allocs", "frames allocated")),
      frees(stats().counter("frees", "frames freed")),
      failedAllocs(stats().counter("failed_allocs",
                                   "allocations that found no free frame"))
{
    if (reserved >= n_frames)
        fatal("physmem: reserved (", reserved, ") >= total frames (",
              n_frames, ")");
    if (n_sockets == 0)
        fatal("physmem: zero sockets");
    const std::uint64_t allocatable = n_frames - reserved;
    if (n_sockets > allocatable)
        fatal("physmem: more sockets (", n_sockets,
              ") than allocatable frames (", allocatable, ")");
    socketSpan = allocatable / n_sockets;
    freeLists.resize(n_sockets);
    // Hand out low frame numbers first within each span (reserved
    // frames are the highest-numbered ones) so tests get predictable
    // PFNs; the last socket's span absorbs any remainder.
    for (unsigned s = 0; s < n_sockets; ++s) {
        std::uint64_t lo = s * socketSpan;
        std::uint64_t hi =
            (s + 1 == n_sockets) ? allocatable : (s + 1) * socketSpan;
        freeLists[s].reserve(hi - lo);
        for (std::uint64_t pfn = hi; pfn-- > lo;)
            freeLists[s].push_back(pfn);
    }
}

Pfn
PhysMem::alloc(unsigned socket)
{
    for (unsigned i = 0; i < nSockets; ++i) {
        auto &l = freeLists[(socket + i) % nSockets];
        if (l.empty())
            continue;
        Pfn pfn = l.back();
        l.pop_back();
        allocated[pfn] = true;
        ++allocs;
        return pfn;
    }
    ++failedAllocs;
    return invalidPfn;
}

Pfn
PhysMem::allocOnSocket(unsigned socket)
{
    auto &l = freeLists[socket];
    if (l.empty()) {
        ++failedAllocs;
        return invalidPfn;
    }
    Pfn pfn = l.back();
    l.pop_back();
    allocated[pfn] = true;
    ++allocs;
    return pfn;
}

void
PhysMem::free(Pfn pfn)
{
    if (pfn >= nFrames)
        panic("physmem: freeing out-of-range pfn ", pfn);
    if (!allocated[pfn])
        panic("physmem: double free of pfn ", pfn);
    allocated[pfn] = false;
    freeLists[socketOf(pfn)].push_back(pfn);
    ++frees;
}

bool
PhysMem::isAllocated(Pfn pfn) const
{
    return pfn < nFrames && allocated[pfn];
}

} // namespace hwdp::mem

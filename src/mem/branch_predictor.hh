/**
 * @file
 * Gshare branch predictor with a BTB-less interface.
 *
 * Kernel entries on every page fault execute thousands of kernel
 * branches, shifting the global history and retraining pattern-table
 * counters away from the user application's branches — one of the
 * "hidden costs" the paper attributes to OS-based demand paging. The
 * model keeps user/kernel accuracy separately so that cost is visible.
 */

#ifndef HWDP_MEM_BRANCH_PREDICTOR_HH
#define HWDP_MEM_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace hwdp::mem {

class BranchPredictor
{
  public:
    /**
     * @param history_bits Global-history length; the pattern table has
     *                     2^history_bits two-bit counters.
     */
    explicit BranchPredictor(unsigned history_bits = 14);

    /**
     * Predict the branch at @p pc, then update with the actual
     * @p taken outcome.
     * @return true when the prediction was correct.
     */
    bool predictAndUpdate(std::uint64_t pc, bool taken, ExecMode mode);

    std::uint64_t lookups(ExecMode mode) const;
    std::uint64_t mispredicts(ExecMode mode) const;

    /** Fraction of mispredicted branches in @p mode. */
    double missRate(ExecMode mode) const;

    /** Reset tables and counters. */
    void reset();

  private:
    unsigned historyBits;
    std::uint64_t historyMask;
    std::uint64_t ghr = 0;
    std::vector<std::uint8_t> pht; // 2-bit saturating counters

    std::uint64_t nLookups[2] = {0, 0};
    std::uint64_t nMiss[2] = {0, 0};

    std::uint64_t index(std::uint64_t pc) const;
};

} // namespace hwdp::mem

#endif // HWDP_MEM_BRANCH_PREDICTOR_HH

#include "metrics/area_model.hh"

#include "core/nvme_host_controller.hh"
#include "core/pmshr.hh"
#include "sim/logging.hh"

namespace hwdp::metrics {

AreaModel::AreaModel(double tech_nm) : techNm(tech_nm)
{
    if (tech_nm <= 0.0)
        fatal("area model: nonsense technology node");
    scale = (tech_nm / 22.0) * (tech_nm / 22.0);
}

double
AreaModel::camArea(unsigned entries, unsigned bits_per_entry,
                   unsigned tag_bits) const
{
    double cells = static_cast<double>(entries) * bits_per_entry *
                   camBitUm2;
    double match = static_cast<double>(entries) * tag_bits *
                   camMatchPortUm2PerTagBit;
    return (cells + match) * scale / 1e6; // um^2 -> mm^2
}

double
AreaModel::registerArea(unsigned bits) const
{
    return static_cast<double>(bits) * registerBitUm2 * scale / 1e6;
}

double
AreaModel::sramArea(unsigned entries, unsigned bits_per_entry) const
{
    return static_cast<double>(entries) * bits_per_entry * sramBitUm2 *
           scale / 1e6;
}

std::vector<AreaComponent>
AreaModel::smuArea(unsigned pmshr_entries, unsigned devices,
                   unsigned prefetch_entries) const
{
    std::vector<AreaComponent> v;
    v.push_back({"pmshr",
                 camArea(pmshr_entries, core::Pmshr::entryBits,
                         pmshrTagBits)});
    v.push_back({"nvme_descriptor_regs",
                 registerArea(devices *
                              core::NvmeHostController::descriptorBits)});
    // Prefetch buffer entries: <PFN, DMA address> = 64 + 64 bits.
    v.push_back({"prefetch_buffer", sramArea(prefetch_entries, 128)});
    v.push_back({"misc_registers", registerArea(miscBits)});
    return v;
}

double
AreaModel::smuTotalMm2(unsigned pmshr_entries, unsigned devices,
                       unsigned prefetch_entries) const
{
    double t = 0.0;
    for (const auto &c : smuArea(pmshr_entries, devices,
                                 prefetch_entries))
        t += c.areaMm2;
    return t;
}

} // namespace hwdp::metrics

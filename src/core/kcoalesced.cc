#include "core/kcoalesced.hh"

#include <algorithm>

#include "os/kernel.hh"
#include "sim/serialize.hh"

namespace hwdp::core {

void
Kcoalesced::serialize(sim::Serializer &s)
{
    s.section("kcoalesced");
    KThread::serialize(s);
    s.io(cursorAs);
    s.io(cursorVa);
    s.io(nWindows);
    s.io(nPromoted);
    s.io(nAborts);
    // Guarded so single-socket blobs keep the single-socket layout.
    if (crossSocketIpis > 0)
        s.io(nIpis);
}

Kcoalesced::Kcoalesced(os::Kernel &kernel, unsigned core, Tick period,
                       std::uint64_t batch_windows)
    : os::KThread("kcoalesced", core, kernel.scheduler(),
                  kernel.eventQueue(), period),
      kernel(kernel), batchWindows(batch_windows)
{
}

void
Kcoalesced::batch(std::function<void()> done)
{
    constexpr VAddr span = pmdLeafPages << pageShift;
    auto &spaces = kernel.addressSpaces();
    std::uint64_t visited = 0;
    std::uint64_t promoted = 0;

    // Resume the cursor; a full wrap of every space (plus slack for
    // spaces created mid-pass) without finding a window ends the
    // batch early.
    std::uint64_t idle = 0;
    while (visited < batchWindows && !spaces.empty() &&
           idle <= spaces.size()) {
        if (cursorAs >= spaces.size()) {
            cursorAs = 0;
            cursorVa = 0;
        }
        os::AddressSpace &as = *spaces[cursorAs];
        // Next aligned window at or above the cursor in this space.
        // Address spaces hold a handful of VMAs, so the linear min
        // scan per window is cheap on the host.
        os::Vma *vma = nullptr;
        VAddr win = 0;
        for (const auto &v : as.vmas()) {
            VAddr w = std::max(v->start, cursorVa);
            w = (w + span - 1) & ~(span - 1);
            if (w + span <= v->end && (!vma || w < win)) {
                vma = v.get();
                win = w;
            }
        }
        if (!vma) {
            ++cursorAs;
            cursorVa = 0;
            ++idle;
            continue;
        }
        idle = 0;
        ++visited;
        cursorVa = win + span;
        if (kernel.hugeWindowPromotable(as, *vma, win)) {
            if (abortHook && abortHook())
                ++nAborts;
            else if (kernel.promoteWindowHuge(as, *vma, win))
                ++promoted;
        }
    }
    nWindows += visited;
    nPromoted += promoted;

    unsigned phys = sched.physCoreOf(core());
    Tick dur = sched.kernelExec().runBatch(
        phys, os::phases::coalesceScan, visited);
    dur += sched.kernelExec().runBatch(phys, os::phases::coalescePromote,
                                       promoted);
    // One batched shootdown round covers every window promoted here.
    if (crossSocketIpis > 0 && promoted > 0) {
        dur += sched.kernelExec().runBatch(
            phys, os::phases::shootdownIpi, crossSocketIpis);
        nIpis += crossSocketIpis;
    }
    eq.postIn(dur, std::move(done), "kcoalesced.batch");
}

} // namespace hwdp::core

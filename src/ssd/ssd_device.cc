#include "ssd/ssd_device.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::ssd {

void
SsdDevice::serialize(sim::Serializer &s)
{
    s.section("ssddevice");
    if (s.saving()) {
        if (nInflight != 0 || fetchScheduled)
            throw sim::SerializeError(
                "checkpoint: ssd '" + name() +
                "' has commands in flight; quiesce the machine first");
        for (auto &qs : queues)
            if (qs.doorbellPending)
                throw sim::SerializeError(
                    "checkpoint: ssd '" + name() +
                    "' has a pending doorbell; quiesce the machine "
                    "first");
    }
    rng.serialize(s);
    std::uint64_t nq = queues.size();
    s.check(nq, "queue pair count");
    for (auto &qs : queues) {
        s.check(qs.interrupts, "queue interrupt mode");
        qs.qp->serialize(s);
        s.io(qs.inflight);
    }
    s.io(channelFreeAt);
    s.io(nReads);
    s.io(nWrites);
    s.io(nErrors);
    if (s.loading()) {
        nInflight = 0;
        fetchScheduled = false;
        for (auto &qs : queues)
            qs.doorbellPending = false;
    }
    stats().serialize(s);
}

SsdDevice::SsdDevice(std::string name, sim::EventQueue &eq,
                     const SsdProfile &profile, sim::Rng rng)
    : sim::SimObject(std::move(name), eq), prof(profile), rng(rng),
      channelFreeAt(profile.channels, 0),
      statReads(stats().counter("reads", "4KB read commands completed")),
      statWrites(stats().counter("writes", "write commands completed")),
      statErrors(stats().counter("error_completions",
                                 "commands completed with error status")),
      statDeviceTime(stats().histogram(
          "device_time_us", "doorbell-to-CQE-write time (us)", 0.5, 400))
{
    if (prof.channels == 0)
        fatal("ssd '", this->name(), "': profile needs >= 1 channel");
}

std::uint16_t
SsdDevice::createQueuePair(std::uint16_t depth, nvme::Priority prio,
                           bool interrupts)
{
    auto qid = static_cast<std::uint16_t>(queues.size() + 1);
    QueueState qs;
    // Ring placement in simulated physical memory is symbolic: distinct
    // non-overlapping regions so CQ-head snoop addresses are unique.
    PAddr sq_base = 0xfee0'0000'0000ULL + qid * 0x10000ULL;
    PAddr cq_base = sq_base + 0x8000ULL;
    qs.qp = std::make_unique<nvme::QueuePair>(qid, depth, sq_base, cq_base,
                                              prio);
    qs.interrupts = interrupts;
    queues.push_back(std::move(qs));
    return qid;
}

SsdDevice::QueueState &
SsdDevice::state(std::uint16_t qid)
{
    if (qid == 0 || qid > queues.size())
        panic("ssd '", name(), "': bad queue id ", qid);
    return queues[qid - 1];
}

nvme::QueuePair &
SsdDevice::queuePair(std::uint16_t qid)
{
    return *state(qid).qp;
}

const nvme::QueuePair &
SsdDevice::queuePair(std::uint16_t qid) const
{
    if (qid == 0 || qid > queues.size())
        panic("ssd '", name(), "': bad queue id ", qid);
    return *queues[qid - 1].qp;
}

void
SsdDevice::setCompletionListener(std::uint16_t qid, CompletionListener fn)
{
    state(qid).listener = std::move(fn);
}

std::uint64_t
SsdDevice::queueInflight(std::uint16_t qid) const
{
    if (qid == 0 || qid > queues.size())
        panic("ssd '", name(), "': bad queue id ", qid);
    return queues[qid - 1].inflight;
}

void
SsdDevice::ringSqDoorbell(std::uint16_t qid)
{
    state(qid).doorbellPending = true;
    // An injected "dropped" doorbell defers the device-side fetch; the
    // write is never truly lost (forward progress is preserved), the
    // device just notices it late.
    Tick drop = injector ? injector->doorbellDropDelay(qid) : 0;
    if (!fetchScheduled) {
        fetchScheduled = true;
        eq.postIn(prof.cmdFetch + drop, [this] { fetchCommands(); },
                            "ssd.fetch");
    }
}

void
SsdDevice::ringCqDoorbell(std::uint16_t qid)
{
    // The host advanced its CQ head; the device needs no timing action,
    // but validate the queue id to catch wiring bugs.
    state(qid);
}

void
SsdDevice::fetchCommands()
{
    fetchScheduled = false;

    // Urgent-priority queues are drained first (NVMe arbitration;
    // Section V notes SMU queues can use this to dodge queueing
    // behind bulk OS traffic).
    std::vector<std::size_t> order(queues.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [this](std::size_t a, std::size_t b) {
                         return static_cast<unsigned>(queues[a].qp->priority()) <
                                static_cast<unsigned>(queues[b].qp->priority());
                     });

    for (std::size_t qi : order) {
        QueueState &qs = queues[qi];
        if (!qs.doorbellPending)
            continue;
        qs.doorbellPending = false;
        while (!qs.qp->sqEmpty())
            serviceCommand(qi, qs.qp->popSqe());
    }
}

void
SsdDevice::serviceCommand(std::size_t qidx, const nvme::SubmissionEntry &sqe)
{
    ++nInflight;
    ++queues[qidx].inflight;
    Tick issued = now() >= prof.cmdFetch ? now() - prof.cmdFetch : 0;

    IoFaultDecision fault;
    if (injector)
        fault = injector->onCommand(sqe, queues[qidx].qp->qid());

    Tick media;
    switch (sqe.opcode) {
      case nvme::Opcode::read:
        media = prof.readMedia;
        break;
      case nvme::Opcode::write:
        media = prof.writeMedia;
        break;
      case nvme::Opcode::flush:
        media = prof.cqeWrite; // effectively immediate in the model
        break;
      default:
        panic("ssd '", name(), "': unknown opcode");
    }

    if (media > 0 && prof.mediaCv > 0.0) {
        double jitter = rng.normal(1.0, prof.mediaCv);
        jitter = std::max(jitter, 0.5);
        media = static_cast<Tick>(static_cast<double>(media) * jitter);
    }

    unsigned ch = static_cast<unsigned>(sqe.slba % prof.channels);
    if (fault.channelStall > 0) {
        channelFreeAt[ch] =
            std::max(now(), channelFreeAt[ch]) + fault.channelStall;
    }
    Tick start = std::max(now(), channelFreeAt[ch]);
    Tick media_done = start + media;
    channelFreeAt[ch] = media_done;

    Tick cqe_written =
        media_done + prof.xfer4k + prof.cqeWrite + fault.extraLatency;
    auto status = fault.status;
    eq.post(cqe_written,
                      [this, qidx, sqe, issued, status] {
                          complete(qidx, sqe, issued, status);
                      },
                      "ssd.complete");
}

void
SsdDevice::complete(std::size_t qidx, const nvme::SubmissionEntry &sqe,
                    Tick issued, std::uint16_t status)
{
    --nInflight;
    QueueState &qs = queues[qidx];
    --qs.inflight;

    nvme::CompletionEntry cqe;
    cqe.cid = sqe.cid;
    cqe.status = status;
    if (!qs.qp->pushCqe(cqe))
        panic("ssd '", name(), "': CQ overflow on qid ", qs.qp->qid());

    if (status != 0) {
        ++nErrors;
        ++statErrors;
    } else if (sqe.opcode == nvme::Opcode::read) {
        ++nReads;
        ++statReads;
    } else if (sqe.opcode == nvme::Opcode::write) {
        ++nWrites;
        ++statWrites;
    }
    statDeviceTime.sample(toMicroseconds(now() - issued));

    if (!qs.listener)
        return;
    if (qs.interrupts) {
        // MSI-X delivery to the interrupt handler on some core.
        auto listener = qs.listener;
        auto qid = qs.qp->qid();
        eq.postIn(prof.interruptLatency,
                            [listener, qid, cqe] { listener(qid, cqe); },
                            "ssd.irq");
    } else {
        // The SMU completion unit snoops the CQ memory write itself:
        // no interrupt, the listener sees it immediately.
        qs.listener(qs.qp->qid(), cqe);
    }
}

} // namespace hwdp::ssd

/**
 * @file
 * Host-memory model of one NVMe submission/completion queue pair.
 *
 * The rings live "in host memory": the host produces SQ entries and
 * advances the tail, the device consumes them and advances the head;
 * the device produces CQ entries with a phase tag and the host (or the
 * SMU's snooping completion unit) consumes them. Doorbell writes are
 * modelled by the SSD device; this class is pure ring bookkeeping so
 * both the kernel block layer and the SMU host controller can share it.
 */

#ifndef HWDP_NVME_QUEUE_PAIR_HH
#define HWDP_NVME_QUEUE_PAIR_HH

#include <cstdint>
#include <vector>

#include "nvme/nvme_types.hh"

namespace hwdp::sim { class Serializer; }

namespace hwdp::nvme {

class QueuePair
{
  public:
    /**
     * @param qid        Queue id (0 is reserved for admin by the spec;
     *                   the simulator only creates I/O queues, qid>=1).
     * @param depth      Entries per ring (up to 64 Ki per the spec).
     * @param sq_base    Simulated physical address of the SQ ring.
     * @param cq_base    Simulated physical address of the CQ ring.
     * @param priority   Arbitration class.
     */
    QueuePair(std::uint16_t qid, std::uint16_t depth, PAddr sq_base,
              PAddr cq_base, Priority priority = Priority::medium);

    std::uint16_t qid() const { return id; }
    std::uint16_t depth() const { return nEntries; }
    Priority priority() const { return prio; }
    PAddr sqBase() const { return sqBaseAddr; }
    PAddr cqBase() const { return cqBaseAddr; }

    /** Host-memory address the next CQ entry will be written to. */
    PAddr cqHeadAddr() const;

    // --- Host (producer) side of the SQ -------------------------------
    bool sqFull() const;
    std::uint16_t sqOccupancy() const;

    /**
     * Write one entry at the tail and advance it.
     * @return false when the ring is full (entry not queued).
     */
    bool pushSqe(const SubmissionEntry &sqe);

    // --- Device (consumer) side of the SQ -----------------------------
    bool sqEmpty() const;

    /** Consume the entry at the head. @pre !sqEmpty() */
    SubmissionEntry popSqe();

    // --- Device (producer) side of the CQ -----------------------------
    bool cqFull() const;

    /**
     * Write a completion at the CQ tail with the correct phase tag.
     * @return false when the CQ is full.
     */
    bool pushCqe(CompletionEntry cqe);

    // --- Host (consumer) side of the CQ -------------------------------
    /**
     * True when the entry at the host's CQ head has a fresh phase tag,
     * i.e. a completion is waiting.
     */
    bool cqHasWork() const;

    /** Consume the completion at the CQ head. @pre cqHasWork() */
    CompletionEntry popCqe();

    /**
     * Checkpoint the ring positions and phase tags. Both rings must be
     * drained (quiesced) — the entries themselves are never saved
     * because consumed slots are dead; only the head/tail/phase state
     * determines future behaviour.
     */
    void serialize(sim::Serializer &s);

  private:
    std::uint16_t id;
    std::uint16_t nEntries;
    PAddr sqBaseAddr;
    PAddr cqBaseAddr;
    Priority prio;

    std::vector<SubmissionEntry> sqRing;
    std::vector<CompletionEntry> cqRing;
    std::vector<bool> cqValidPhase;

    std::uint16_t sqHead = 0;
    std::uint16_t sqTail = 0;
    std::uint16_t cqHead = 0;
    std::uint16_t cqTail = 0;
    bool cqPhase = true;      ///< Phase the device writes this lap.
    bool hostPhase = true;    ///< Phase the host expects this lap.
    std::uint16_t sqCount = 0;
    std::uint16_t cqCount = 0;
};

} // namespace hwdp::nvme

#endif // HWDP_NVME_QUEUE_PAIR_HH

/**
 * @file
 * Figure 1: execution-time breakdown of YCSB-C under OSDP as the
 * dataset grows past physical memory.
 *
 * Paper: with dataset:memory at X:1, the fraction of time spent in
 * demand paging grows to dominate while compute time stays similar.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace hwdp;
using metrics::Table;

int
main()
{
    metrics::banner(
        "Figure 1: YCSB-C time breakdown vs dataset:memory ratio",
        "OSDP, 4 threads; page-fault share grows with the ratio");

    Table t({"dataset:memory", "ops/s", "compute+hit share",
             "page-fault share"});
    for (double ratio : {0.5, 1.0, 2.0, 3.0, 4.0}) {
        auto pages = static_cast<std::uint64_t>(
            static_cast<double>(bench::defaultMemFrames) * ratio);
        auto r = bench::runKv(
            bench::paperConfig(system::PagingMode::osdp), 'C', 4, 8000,
            pages);
        double share =
            r.threadTicks
                ? static_cast<double>(r.faultStallTicks) /
                      static_cast<double>(r.threadTicks)
                : 0.0;
        char label[32];
        std::snprintf(label, sizeof(label), "%.1f:1", ratio);
        t.addRow({label, Table::num(r.opsPerSec, 0),
                  Table::pct(1.0 - share), Table::pct(share)});
    }
    t.print();
    std::printf("\npaper shape: near-zero fault share when the dataset "
                "fits, a majority of time from 2:1 up\n");
    return 0;
}

#include "nvme/queue_pair.hh"

#include "sim/logging.hh"
#include "sim/serialize.hh"

namespace hwdp::nvme {

void
QueuePair::serialize(sim::Serializer &s)
{
    s.section("queuepair");
    if (s.saving() && (sqCount != 0 || cqCount != 0))
        throw sim::SerializeError(
            "checkpoint: nvme queue pair has entries in flight; "
            "quiesce the machine first");
    s.check(id, "queue id");
    s.check(nEntries, "queue depth");
    auto prio_word = static_cast<std::uint8_t>(prio);
    s.check(prio_word, "queue priority");
    s.io(sqHead);
    s.io(sqTail);
    s.io(cqHead);
    s.io(cqTail);
    s.io(cqPhase);
    s.io(hostPhase);
    s.io(sqCount);
    s.io(cqCount);
    // vector<bool> proxies can't bind to io(); element-wise copy.
    for (std::size_t i = 0; i < cqValidPhase.size(); ++i) {
        bool b = cqValidPhase[i];
        s.io(b);
        if (s.loading())
            cqValidPhase[i] = b;
    }
}

QueuePair::QueuePair(std::uint16_t qid, std::uint16_t depth, PAddr sq_base,
                     PAddr cq_base, Priority priority)
    : id(qid), nEntries(depth), sqBaseAddr(sq_base), cqBaseAddr(cq_base),
      prio(priority), sqRing(depth), cqRing(depth),
      cqValidPhase(depth, false)
{
    if (depth == 0)
        fatal("nvme queue pair ", qid, ": zero depth");
}

PAddr
QueuePair::cqHeadAddr() const
{
    return cqBaseAddr + static_cast<PAddr>(cqHead) *
                            CompletionEntry::wireBytes;
}

bool
QueuePair::sqFull() const
{
    return sqCount == nEntries;
}

std::uint16_t
QueuePair::sqOccupancy() const
{
    return sqCount;
}

bool
QueuePair::pushSqe(const SubmissionEntry &sqe)
{
    if (sqFull())
        return false;
    sqRing[sqTail] = sqe;
    sqTail = static_cast<std::uint16_t>((sqTail + 1) % nEntries);
    ++sqCount;
    return true;
}

bool
QueuePair::sqEmpty() const
{
    return sqCount == 0;
}

SubmissionEntry
QueuePair::popSqe()
{
    if (sqEmpty())
        panic("nvme qp ", id, ": pop from empty SQ");
    SubmissionEntry e = sqRing[sqHead];
    sqHead = static_cast<std::uint16_t>((sqHead + 1) % nEntries);
    --sqCount;
    return e;
}

bool
QueuePair::cqFull() const
{
    return cqCount == nEntries;
}

bool
QueuePair::pushCqe(CompletionEntry cqe)
{
    if (cqFull())
        return false;
    cqe.phase = cqPhase;
    cqe.sqHead = sqHead;
    cqe.sqid = id;
    cqRing[cqTail] = cqe;
    cqValidPhase[cqTail] = cqPhase;
    cqTail = static_cast<std::uint16_t>((cqTail + 1) % nEntries);
    if (cqTail == 0)
        cqPhase = !cqPhase; // wrapped: device flips its phase
    ++cqCount;
    return true;
}

bool
QueuePair::cqHasWork() const
{
    return cqCount > 0 && cqValidPhase[cqHead] == hostPhase;
}

CompletionEntry
QueuePair::popCqe()
{
    if (!cqHasWork())
        panic("nvme qp ", id, ": pop from empty CQ");
    CompletionEntry e = cqRing[cqHead];
    cqHead = static_cast<std::uint16_t>((cqHead + 1) % nEntries);
    if (cqHead == 0)
        hostPhase = !hostPhase; // wrapped: host flips expected phase
    --cqCount;
    return e;
}

} // namespace hwdp::nvme
